// anahy-lint: replays a saved execution trace and emits DAG lint
// diagnostics (stable ANAHY-Wxxx codes; table in docs/CHECKING.md).
//
//   anahy-lint [--summary] [--jobs] [--stats] [--dot] <trace-file>
//
// The trace file is the text format written by TraceGraph::save (see
// examples/race_demo.cpp for a producer): `anahy-trace v3` with per-node
// job-id/vp columns and per-edge timestamp/vp columns; the loader still
// accepts `v1`/`v2` traces. `--jobs` prints a per-job breakdown of a
// multi-job server trace; `--stats` prints the deterministic rollup
// (node/edge counts, fork-depth histogram, per-job datalen and work/span)
// from anahy::trace_stats_text. Exit code: 0 clean, 1 diagnostics found,
// 2 the file could not be read or parsed (loading is all-or-nothing: a
// truncated or corrupted file yields a one-line ANAHY-F004 error naming
// the offending line, never a lint of a silently partial graph).
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "anahy/trace.hpp"
#include "anahy/trace_analysis.hpp"

namespace {

int usage() {
  std::cerr << "usage: anahy-lint [--summary] [--jobs] [--stats] [--dot] "
               "<trace-file>\n";
  return 2;
}

/// Per-job rollup of a served runtime's trace (job 0 = context-free tasks).
void print_job_table(const anahy::TraceGraph& trace) {
  struct JobAgg {
    std::size_t tasks = 0;
    std::size_t never_ran = 0;
    std::int64_t work_ns = 0;
  };
  std::map<std::uint64_t, JobAgg> jobs;  // ordered by job id
  for (const auto& n : trace.nodes()) {
    JobAgg& agg = jobs[n.job];
    ++agg.tasks;
    if (n.start_ns < 0) ++agg.never_ran;
    agg.work_ns += n.exec_ns;
  }
  std::cout << "job      tasks  never-ran  work-ns\n";
  for (const auto& [job, agg] : jobs) {
    std::cout << (job == 0 ? std::string("(none)") : std::to_string(job));
    std::cout << "  " << agg.tasks << "  " << agg.never_ran << "  "
              << agg.work_ns << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool summary = false;
  bool jobs = false;
  bool stats = false;
  bool dot = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--summary") summary = true;
    else if (arg == "--jobs") jobs = true;
    else if (arg == "--stats") stats = true;
    else if (arg == "--dot") dot = true;
    else if (!arg.empty() && arg.front() == '-') return usage();
    else if (path.empty()) path = arg;
    else return usage();
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "anahy-lint: cannot open '" << path << "'\n";
    return 2;
  }

  anahy::TraceGraph trace;
  std::string error;
  if (!trace.load(in, &error)) {
    // All-or-nothing: a truncated/corrupt file is an error, not a lint of
    // whatever prefix happened to parse. ANAHY-F004 matches the wire
    // layer's "malformed body" code — same disease, different medium.
    std::cerr << "anahy-lint: ANAHY-F004: '" << path
              << "' is not a readable anahy trace (" << error << ")\n";
    return 2;
  }

  const auto diags = anahy::lint_trace(trace);
  std::cout << anahy::format_diagnostics(diags);

  if (summary) {
    const auto nodes = trace.nodes();
    std::size_t continuations = 0;
    for (const auto& n : nodes) continuations += n.is_continuation ? 1 : 0;
    std::cout << "trace: " << nodes.size() << " node(s) (" << continuations
              << " continuation(s)), " << trace.edges().size()
              << " edge(s), work " << trace.work_ns() << " ns, span "
              << trace.span_ns() << " ns, " << diags.size()
              << " diagnostic(s)\n";
  }
  if (jobs) print_job_table(trace);
  if (stats) std::cout << anahy::trace_stats_text(trace);
  if (dot) std::cout << trace.to_dot();

  return diags.empty() ? 0 : 1;
}
