// anahy-profile: converts a saved execution trace into Chrome trace-event
// JSON (open with chrome://tracing or https://ui.perfetto.dev) and prints
// per-job work/span summaries.
//
//   anahy-profile [--out=FILE] [--work-span] [--no-json] <trace-file>
//
// The trace file is the text format written by TraceGraph::save (an
// `anahy-trace v3` file produced under Options::profile carries per-task
// VP identity and per-edge fork/join timestamps, which become one track
// per VP plus flow arrows; older traces still convert, with every span on
// an "(untracked)" track and no arrows). See docs/OBSERVE.md.
//
// Exit code: 0 on success, 2 when the file cannot be read or the flags
// are malformed.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "anahy/observe/chrome_trace.hpp"
#include "anahy/trace.hpp"
#include "anahy/trace_analysis.hpp"

namespace {

int usage() {
  std::cerr << "usage: anahy-profile [--out=FILE] [--work-span] [--no-json] "
               "<trace-file>\n";
  return 2;
}

/// "job 3: work 12345 ns, span 678 ns, parallelism 18.21 (42 tasks)"
void print_work_span(const anahy::TraceGraph& trace) {
  const auto profiles = anahy::job_profiles(trace);
  if (profiles.empty()) {
    std::cout << "work/span: trace holds no tasks\n";
    return;
  }
  for (const auto& p : profiles) {
    std::cout << "job " << p.job << ": work " << p.work_ns << " ns, span "
              << p.span_ns << " ns, parallelism ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", p.parallelism());
    std::cout << buf << " (" << p.tasks << " tasks, " << p.continuations
              << " continuations)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool work_span = false;
  bool json = true;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    else if (arg == "--work-span") work_span = true;
    else if (arg == "--no-json") json = false;
    else if (!arg.empty() && arg.front() == '-') return usage();
    else if (path.empty()) path = arg;
    else return usage();
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "anahy-profile: cannot open '" << path << "'\n";
    return 2;
  }

  anahy::TraceGraph trace;
  std::string error;
  if (!trace.load(in, &error)) {
    // Loading is all-or-nothing (see anahy-lint): converting a silently
    // partial trace would produce a misleading profile.
    std::cerr << "anahy-profile: ANAHY-F004: '" << path
              << "' is not a readable anahy trace (" << error << ")\n";
    return 2;
  }

  if (json) {
    if (out_path.empty()) {
      anahy::observe::write_chrome_trace(std::cout, trace);
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "anahy-profile: cannot write '" << out_path << "'\n";
        return 2;
      }
      anahy::observe::write_chrome_trace(out, trace);
      std::cerr << "anahy-profile: wrote " << out_path << "\n";
    }
  }
  if (work_span) print_work_span(trace);
  return 0;
}
