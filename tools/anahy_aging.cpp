// anahy-aging: offline memory-state analysis of an `anahy-series v1` file
// (aging/leak detection; stable ANAHY-A00x codes, table in docs/AGING.md).
//
//   anahy-aging [--json] [--summary] [--gap-min-ns=N]
//               [--baseline=<series>] <series-file>
//   anahy-aging --rejuvenate=<host:port>
//
// The series file is the text format written by aging::Series::save — a
// JobServer records one via record_aging_sample() (see examples/job_server
// or bench/aging_soak for producers). The detectors look for the signatures
// the title paper (DSN 2003) ties to software aging: sustained heap growth,
// fragmentation creep, latency creep correlated with memory, per-size-class
// leaks, and a widening multifractal spectrum of the allocation series.
//
// --gap-min-ns=N raises the A005 gap detector's absolute floor: a series
// sampled live on a time-shared (or sanitized) host picks up scheduler
// stalls that are environmental, not data corruption — CI passes a
// stall-sized floor when linting a series it just recorded.
//
// --baseline=<series> analyzes a second series with the same options and
// reports per-metric slope deltas (current minus baseline) — the question
// "did this build/config age faster than the last one?" answered without a
// spreadsheet. The exit code still reflects the *current* series alone.
//
// --rejuvenate=<host:port> is the operator command of docs/REJUV.md: it
// connects to a serve deployment bootstrapped via tcp_coordinator (the CLI
// joins as a tcp_worker), sends one kRejuvenate frame and prints the cycle
// report. No series file is read in this mode. Against an anahy::mesh,
// --node=N addresses any node: the connected server forwards the command
// to mesh node rank N (docs/MESH.md) and that node replies directly —
// one entry point rejuvenates the whole fleet, node by node.
//
// Exit code: 0 clean (or rejuvenation performed), 2 findings, 1 the file
// could not be read or parsed, or the rejuvenation target was unreachable
// (loading is all-or-nothing; a truncated file yields a one-line error
// naming the offending line, never an analysis of a silent prefix).
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "anahy/aging/analyze.hpp"
#include "anahy/aging/series.hpp"
#include "cluster/serve_frontend.hpp"
#include "cluster/transport.hpp"

namespace {

int usage() {
  std::cerr << "usage: anahy-aging [--json] [--summary] [--gap-min-ns=N] "
               "[--baseline=<series>] <series-file>\n"
               "       anahy-aging --rejuvenate=<host:port> [--node=N]\n";
  return 1;
}

/// Loads an anahy-series file, mapping every failure to a one-line error
/// and the CLI's exit-1 convention.
bool load_series(const std::string& path, anahy::aging::Series& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "anahy-aging: cannot open '" << path << "'\n";
    return false;
  }
  std::string error;
  if (!out.load(in, &error)) {
    std::cerr << "anahy-aging: '" << path
              << "' is not a readable anahy-series file (" << error << ")\n";
    return false;
  }
  return true;
}

/// `--rejuvenate=<host:port>`: join the coordinator's mesh as a worker and
/// issue one kRejuvenate command through the serve client's retry envelope.
/// `node` addresses a specific mesh node (kRejuvTargetSelf = the server
/// we connect to cycles itself).
int run_rejuvenate(const std::string& target, std::uint32_t node) {
  const auto colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == target.size())
    return usage();
  const std::string host = target.substr(0, colon);
  std::uint16_t port = 0;
  try {
    const int p = std::stoi(target.substr(colon + 1));
    if (p <= 0 || p > 65535) return usage();
    port = static_cast<std::uint16_t>(p);
  } catch (...) {
    return usage();
  }

  std::unique_ptr<cluster::Transport> tp;
  try {
    tp = cluster::tcp_worker(host, port);
  } catch (const std::exception& e) {
    std::cerr << "anahy-aging: cannot join coordinator at " << target << " ("
              << e.what() << ")\n";
    return 1;
  }
  cluster::ServeClient client(*tp, /*server_node=*/0);
  std::string report;
  if (client.rejuvenate(report, cluster::CallOptions{}, node) != anahy::kOk) {
    std::cerr << "anahy-aging: rejuvenation command to " << target
              << (node != cluster::kRejuvTargetSelf
                      ? " (node " + std::to_string(node) + ")"
                      : "")
              << " went unanswered (server unreachable)\n";
    return 1;
  }
  std::cout << report << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool summary = false;
  anahy::aging::AnalyzeOptions opt;
  std::string path;
  std::string baseline_path;
  std::string rejuv_target;
  std::uint32_t rejuv_node = cluster::kRejuvTargetSelf;
  const std::string gap_flag = "--gap-min-ns=";
  const std::string baseline_flag = "--baseline=";
  const std::string rejuv_flag = "--rejuvenate=";
  const std::string node_flag = "--node=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json = true;
    else if (arg == "--summary") summary = true;
    else if (arg.rfind(gap_flag, 0) == 0) {
      try {
        opt.gap_min_ns = std::stoll(arg.substr(gap_flag.size()));
      } catch (...) {
        return usage();
      }
    }
    else if (arg.rfind(baseline_flag, 0) == 0) {
      baseline_path = arg.substr(baseline_flag.size());
      if (baseline_path.empty()) return usage();
    }
    else if (arg.rfind(rejuv_flag, 0) == 0) {
      rejuv_target = arg.substr(rejuv_flag.size());
      if (rejuv_target.empty()) return usage();
    }
    else if (arg.rfind(node_flag, 0) == 0) {
      try {
        const long n = std::stol(arg.substr(node_flag.size()));
        if (n < 0) return usage();
        rejuv_node = static_cast<std::uint32_t>(n);
      } catch (...) {
        return usage();
      }
    }
    else if (!arg.empty() && arg.front() == '-') return usage();
    else if (path.empty()) path = arg;
    else return usage();
  }
  if (!rejuv_target.empty()) return run_rejuvenate(rejuv_target, rejuv_node);
  if (rejuv_node != cluster::kRejuvTargetSelf) return usage();
  if (path.empty()) return usage();

  anahy::aging::Series series;
  if (!load_series(path, series)) return 1;
  const anahy::aging::Analysis a = anahy::aging::analyze(series, opt);

  if (baseline_path.empty()) {
    if (json) {
      std::cout << anahy::aging::to_json(a);
    } else {
      std::cout << anahy::aging::format_findings(a.findings);
      if (summary) {
        std::cout << "series: " << a.points << " point(s), " << a.jobs
                  << " job(s); heap " << a.heap_slope_per_job
                  << " bytes/job; slack " << a.frag_slope_per_job
                  << " bytes/job; latency " << a.lat_slope_per_job
                  << " ns/job (corr " << a.heap_lat_corr << "); hurst "
                  << a.hurst << "; " << a.findings.size() << " finding(s)\n";
      }
    }
    return a.findings.empty() ? 0 : 2;
  }

  // --baseline: same detectors, same options, then current-minus-baseline
  // deltas on the trend statistics dashboards actually track.
  anahy::aging::Series base_series;
  if (!load_series(baseline_path, base_series)) return 1;
  const anahy::aging::Analysis b = anahy::aging::analyze(base_series, opt);

  if (json) {
    std::cout << "{\n\"current\": " << anahy::aging::to_json(a)
              << ",\n\"baseline\": " << anahy::aging::to_json(b)
              << ",\n\"delta\": {"
              << "\"heap_slope_per_job\": "
              << (a.heap_slope_per_job - b.heap_slope_per_job)
              << ", \"frag_slope_per_job\": "
              << (a.frag_slope_per_job - b.frag_slope_per_job)
              << ", \"lat_slope_per_job\": "
              << (a.lat_slope_per_job - b.lat_slope_per_job)
              << ", \"heap_lat_corr\": " << (a.heap_lat_corr - b.heap_lat_corr)
              << ", \"hurst\": " << (a.hurst - b.hurst)
              << ", \"findings\": "
              << (static_cast<long long>(a.findings.size()) -
                  static_cast<long long>(b.findings.size()))
              << "}\n}\n";
  } else {
    std::cout << anahy::aging::format_findings(a.findings);
    std::cout << "baseline: " << baseline_path << " (" << b.points
              << " point(s), " << b.findings.size() << " finding(s))\n"
              << "delta: heap " << (a.heap_slope_per_job - b.heap_slope_per_job)
              << " bytes/job; slack "
              << (a.frag_slope_per_job - b.frag_slope_per_job)
              << " bytes/job; latency "
              << (a.lat_slope_per_job - b.lat_slope_per_job)
              << " ns/job; corr " << (a.heap_lat_corr - b.heap_lat_corr)
              << "; hurst " << (a.hurst - b.hurst) << "\n";
    if (summary) {
      std::cout << "series: " << a.points << " point(s), " << a.jobs
                << " job(s); heap " << a.heap_slope_per_job
                << " bytes/job; slack " << a.frag_slope_per_job
                << " bytes/job; latency " << a.lat_slope_per_job
                << " ns/job (corr " << a.heap_lat_corr << "); hurst "
                << a.hurst << "; " << a.findings.size() << " finding(s)\n";
    }
  }
  return a.findings.empty() ? 0 : 2;
}
