// anahy-aging: offline memory-state analysis of an `anahy-series v1` file
// (aging/leak detection; stable ANAHY-A00x codes, table in docs/AGING.md).
//
//   anahy-aging [--json] [--summary] [--gap-min-ns=N] <series-file>
//
// The series file is the text format written by aging::Series::save — a
// JobServer records one via record_aging_sample() (see examples/job_server
// or bench/aging_soak for producers). The detectors look for the signatures
// the title paper (DSN 2003) ties to software aging: sustained heap growth,
// fragmentation creep, latency creep correlated with memory, per-size-class
// leaks, and a widening multifractal spectrum of the allocation series.
//
// --gap-min-ns=N raises the A005 gap detector's absolute floor: a series
// sampled live on a time-shared (or sanitized) host picks up scheduler
// stalls that are environmental, not data corruption — CI passes a
// stall-sized floor when linting a series it just recorded.
//
// Exit code: 0 clean, 2 findings, 1 the file could not be read or parsed
// (loading is all-or-nothing; a truncated file yields a one-line error
// naming the offending line, never an analysis of a silent prefix).
#include <fstream>
#include <iostream>
#include <string>

#include "anahy/aging/analyze.hpp"
#include "anahy/aging/series.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: anahy-aging [--json] [--summary] [--gap-min-ns=N] "
         "<series-file>\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool summary = false;
  anahy::aging::AnalyzeOptions opt;
  std::string path;
  const std::string gap_flag = "--gap-min-ns=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json = true;
    else if (arg == "--summary") summary = true;
    else if (arg.rfind(gap_flag, 0) == 0) {
      try {
        opt.gap_min_ns = std::stoll(arg.substr(gap_flag.size()));
      } catch (...) {
        return usage();
      }
    }
    else if (!arg.empty() && arg.front() == '-') return usage();
    else if (path.empty()) path = arg;
    else return usage();
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "anahy-aging: cannot open '" << path << "'\n";
    return 1;
  }

  anahy::aging::Series series;
  std::string error;
  if (!series.load(in, &error)) {
    std::cerr << "anahy-aging: '" << path
              << "' is not a readable anahy-series file (" << error << ")\n";
    return 1;
  }

  const anahy::aging::Analysis a = anahy::aging::analyze(series, opt);

  if (json) {
    std::cout << anahy::aging::to_json(a);
  } else {
    std::cout << anahy::aging::format_findings(a.findings);
    if (summary) {
      std::cout << "series: " << a.points << " point(s), " << a.jobs
                << " job(s); heap " << a.heap_slope_per_job
                << " bytes/job; slack " << a.frag_slope_per_job
                << " bytes/job; latency " << a.lat_slope_per_job
                << " ns/job (corr " << a.heap_lat_corr << "); hurst "
                << a.hurst << "; " << a.findings.size() << " finding(s)\n";
    }
  }

  return a.findings.empty() ? 0 : 2;
}
