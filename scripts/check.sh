#!/usr/bin/env bash
# The single CI entry point (docs/CHECKING.md): tier-1 build + full test
# suite, the sanitizer matrix (with an ASan leak-detection pass over the
# serve demo and tools), clang-tidy (when installed), an anahy-lint
# round-trip over the race demo's saved trace, and an anahy-aging pass
# over the serve demo's recorded memory-state series.
#
#   scripts/check.sh              # everything
#   scripts/check.sh --tier1      # just the tier-1 build + tests
#   scripts/check.sh --no-san     # skip the sanitizer rebuilds (slow part)
#   scripts/check.sh --rejuv      # just the rejuvenation stage (soak smoke
#                                 # + JSON + tidy over src/anahy/rejuv)
#   scripts/check.sh --mesh       # just the mesh stage (multiprocess TCP
#                                 # demo with seeded sever/heal + scaling
#                                 # bench JSON)
#
# Every build goes into its own directory (build/, build-asan/, ...) so the
# tier-1 build is never clobbered by a sanitizer reconfigure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

tier1_only=0
run_san=1
rejuv_only=0
mesh_only=0
for arg in "$@"; do
  case "$arg" in
    --tier1) tier1_only=1 ;;
    --no-san) run_san=0 ;;
    --rejuv) rejuv_only=1 ;;
    --mesh) mesh_only=1 ;;
    *) echo "usage: scripts/check.sh [--tier1] [--no-san] [--rejuv] [--mesh]" >&2
       exit 2 ;;
  esac
done

step() { printf '\n=== %s ===\n' "$*"; }

# The rejuvenation stage (docs/REJUV.md): a scaled-down rejuv_soak must
# still close the loop — baseline leaky leg trips A001, the rejuv-on leg
# stays flat, A007 marks present (the bench exits non-zero otherwise) —
# and emit valid JSON; then clang-tidy over the subsystem alone, cheap
# enough to run even when the full tidy pass is skipped.
rejuv_stage() {
  step "rejuv: soak smoke — loop must close, JSON must validate"
  ./build/bench/rejuv_soak --fib=20 --reps=3 --jobs=200 --seeds=1 \
      --every=25 --out=check_rejuv.json > /dev/null
  python3 -m json.tool check_rejuv.json > /dev/null
  rm -f check_rejuv.json
  if command -v clang-tidy > /dev/null; then
    step "rejuv: clang-tidy over src/anahy/rejuv"
    clang-tidy -p build --quiet src/anahy/rejuv/*.cpp
  fi
}

if [ "$rejuv_only" = 1 ]; then
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target rejuv_soak
  rejuv_stage
  echo; echo "check.sh: rejuv OK"
  exit 0
fi

# The mesh stage (docs/MESH.md): three REAL worker processes over TCP
# with a seeded sever/heal schedule on the router's links — the demo
# audits fleet-wide exactly-once (per-worker execution counts must sum
# to the resolved jobs) and exits non-zero otherwise; then the scaling
# bench's node-sweep and steal gates, whose JSON must validate.
mesh_stage() {
  step "mesh: multiprocess TCP demo — seeded chaos, exactly-once audit"
  ./build/examples/mesh_demo --seed=20030623 --port=7841
  step "mesh: scaling bench — node sweep + steal gates, JSON must validate"
  ./build/bench/ext_cluster_scaling --jobs=160 \
      --out=BENCH_cluster_scaling.json > /dev/null
  python3 -m json.tool BENCH_cluster_scaling.json > /dev/null
}

if [ "$mesh_only" = 1 ]; then
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target mesh_demo ext_cluster_scaling
  mesh_stage
  echo; echo "check.sh: mesh OK"
  exit 0
fi

step "tier-1: build + full test suite"
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

step "checker demo: seeded race must be caught, trace must lint"
./build/examples/race_demo
# race_demo exits 0 only when the race IS reported. Its trace must replay
# with diagnostics (the demo leaks a task on purpose), i.e. lint exits 1.
if ./build/tools/anahy-lint --summary race_demo.trace; then
  echo "anahy-lint: expected diagnostics on race_demo.trace" >&2; exit 1
fi
rm -f race_demo.trace

step "serve demo: 8 clients, per-job race attribution, drained trace"
# job_server asserts its own invariants (every handle resolves, callbacks
# fire exactly once, checked job reports its race) and exits non-zero on
# any violation. Its drained trace must lint CLEAN — drain() finishing with
# a leaked task (ANAHY-W005) would mean the service dropped queued work.
./build/examples/job_server > /dev/null
./build/tools/anahy-lint --summary --jobs --stats job_server.trace > /dev/null

step "aging: demo's memory-state series must analyze clean, JSON validate"
# The serve demo records an `anahy-series v1` soak series (docs/AGING.md).
# A healthy demo must come back with zero ANAHY-A00x findings (anahy-aging
# exits 2 on findings, 1 on unreadable input) and machine-readable output.
# The gap floor forgives scheduler stalls of a time-shared CI host in the
# live-sampled series; gap detection is pinned by the aging unit tests.
gap=--gap-min-ns=1000000000
./build/tools/anahy-aging --summary "$gap" job_server.series > /dev/null
./build/tools/anahy-aging --json "$gap" job_server.series > aging_check.json
python3 -m json.tool aging_check.json > /dev/null
rm -f aging_check.json job_server.series

step "chaos: seeded fault-injection suite (fixed seed, replayable)"
# The chaos label is the serve/cluster stack under a scripted lossy link
# (docs/FAULT.md). The seed is pinned so CI failures replay exactly:
#   ANAHY_CHAOS_SEED=0xC0FFEE ./build/tests/test_chaos
ANAHY_CHAOS_SEED=0xC0FFEE \
    ctest --test-dir build --output-on-failure -L chaos

step "wire bench smoke: epoll transport end-to-end, JSON must validate"
# A scaled-down serve_wire_throughput run (docs/WIRE.md) exercises the
# whole async wire path — blocking baseline, epoll sync, epoll async with
# writev coalescing — and its BENCH_wire.json must be valid JSON.
./build/bench/serve_wire_throughput --clients=4 --jobs=100 --window=8 \
    --out=check_wire.json > /dev/null
python3 -m json.tool check_wire.json > /dev/null
rm -f check_wire.json

mesh_stage

rejuv_stage

step "profiler: chrome trace JSON from the serve demo's v3 trace"
# The demo runs under profile mode, so its trace carries per-task VP
# identity and stamped edges. anahy-profile must turn that into valid
# JSON (chrome://tracing input) and a per-job work/span report.
./build/tools/anahy-profile --out=job_server.json --work-span \
    job_server.trace > /dev/null
python3 -m json.tool job_server.json > /dev/null
rm -f job_server.trace job_server.json

if [ "$tier1_only" = 1 ]; then
  echo; echo "check.sh: tier-1 OK"
  exit 0
fi

step "clang-tidy (skipped automatically when not installed)"
cmake --build build --target tidy

if [ "$run_san" = 1 ]; then
  for san in address undefined thread; do
    case "$san" in
      address)   label=asan ;;
      undefined) label=ubsan ;;
      thread)    label=tsan ;;
    esac
    # Each labeled suite rides the matching build: the tsan run is what
    # certifies the serve subsystem's submit/drain/shutdown races
    # (tests/serve/test_serve_races.cpp carries all three labels).
    step "sanitizer: ANAHY_SAN=$san, ctest -L $label"
    cmake -B "build-$label" -S . -DANAHY_SAN="$san" > /dev/null
    cmake --build "build-$label" -j "$JOBS"
    ctest --test-dir "build-$label" --output-on-failure -j "$JOBS" -L "$label"

    if [ "$san" = address ]; then
      step "asan leaks: serve demo + tools end-to-end, detect_leaks=1"
      # LeakSanitizer over the full demo (fork/join DAGs, drain, recorder)
      # and every tool reading the artifacts it wrote. The pool cache is a
      # passthrough under ASan, so each task block is tracked individually
      # — a stranded TaskPtr or an unfreed pool block fails this stage.
      (
        cd "build-$label"
        export ASAN_OPTIONS=detect_leaks=1
        ./examples/job_server > /dev/null
        ./tools/anahy-lint --summary --jobs --stats job_server.trace \
            > /dev/null
        ./tools/anahy-profile --out=job_server.json job_server.trace \
            > /dev/null
        ./tools/anahy-aging --json --gap-min-ns=1000000000 \
            job_server.series > /dev/null
        rm -f job_server.trace job_server.json job_server.series
      )
    fi
  done
fi

echo; echo "check.sh: all checks OK"
