#include "raytracer/objects.hpp"

#include <gtest/gtest.h>

namespace {

using namespace raytracer;

TEST(Sphere, HeadOnHit) {
  const Sphere s{{0, 0, -5}, 1.0, 0};
  const Hit h = s.intersect({{0, 0, 0}, {0, 0, -1}});
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h.t, 4.0, 1e-9);
  EXPECT_NEAR(h.point.z, -4.0, 1e-9);
  EXPECT_NEAR(h.normal.z, 1.0, 1e-9);  // faces the ray
}

TEST(Sphere, MissReturnsNoHit) {
  const Sphere s{{0, 3, -5}, 1.0, 0};
  EXPECT_FALSE(s.intersect({{0, 0, 0}, {0, 0, -1}}).ok());
}

TEST(Sphere, RayFromInsideHitsFarSide) {
  const Sphere s{{0, 0, 0}, 2.0, 0};
  const Hit h = s.intersect({{0, 0, 0}, {0, 0, -1}});
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h.t, 2.0, 1e-9);
}

TEST(Sphere, BehindRayIsIgnored) {
  const Sphere s{{0, 0, 5}, 1.0, 0};  // behind a ray pointing at -z
  EXPECT_FALSE(s.intersect({{0, 0, 0}, {0, 0, -1}}).ok());
}

TEST(Plane, PerpendicularHit) {
  const Plane p{{0, -1, 0}, {0, 1, 0}, 0};
  const Hit h = p.intersect({{0, 0, 0}, Vec3{0, -1, 0}});
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h.t, 1.0, 1e-9);
  EXPECT_NEAR(h.normal.y, 1.0, 1e-9);
}

TEST(Plane, ParallelRayMisses) {
  const Plane p{{0, -1, 0}, {0, 1, 0}, 0};
  EXPECT_FALSE(p.intersect({{0, 0, 0}, {1, 0, 0}}).ok());
}

TEST(Triangle, InteriorHitAndBarycentricEdges) {
  const Triangle t{{-1, -1, -2}, {1, -1, -2}, {0, 1, -2}, 0};
  EXPECT_TRUE(t.intersect({{0, 0, 0}, {0, 0, -1}}).ok());
  // Ray aimed well outside the triangle misses.
  EXPECT_FALSE(t.intersect({{5, 5, 0}, {0, 0, -1}}).ok());
}

TEST(ClosestHit, PicksNearestObject) {
  std::vector<Object> objects;
  objects.push_back(Sphere{{0, 0, -10}, 1.0, 7});
  objects.push_back(Sphere{{0, 0, -5}, 1.0, 3});
  const Hit h = closest_hit(objects, {{0, 0, 0}, {0, 0, -1}});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.material, 3);
  EXPECT_NEAR(h.t, 4.0, 1e-9);
}

TEST(Occluded, RespectsMaxDistance) {
  std::vector<Object> objects;
  objects.push_back(Sphere{{0, 0, -5}, 1.0, 0});
  const Ray ray{{0, 0, 0}, {0, 0, -1}};
  EXPECT_TRUE(occluded(objects, ray, 100.0));
  EXPECT_FALSE(occluded(objects, ray, 3.0));  // blocker is beyond max_t
}

}  // namespace
