#include "raytracer/scene_file.hpp"

#include <gtest/gtest.h>

#include "raytracer/render.hpp"

namespace {

using namespace raytracer;

constexpr const char* kValidScene = R"(
# a tiny test scene
material 0.9 0.2 0.2  0.5 0.5 0.5  32 0      # red matte
material 0.6 0.6 0.7  0.9 0.9 0.9  128 0.6   # mirror
sphere 0 0 -5  1.5  0
sphere 2 0.5 -6  1.0  1
plane 0 -1 0  0 1 0  0
triangle -1 0 -3  1 0 -3  0 1 -3  0
light 5 8 2  0.9 0.9 0.8
ambient 0.1 0.1 0.12
background 0.02 0.02 0.05
camera 0 1 2  0 0 -5  0 1 0  55
maxdepth 3
)";

TEST(SceneFile, ParsesAllDirectives) {
  const SceneFile sf = parse_scene_string(kValidScene);
  EXPECT_EQ(sf.scene.materials.size(), 2u);
  EXPECT_EQ(sf.scene.objects.size(), 4u);
  EXPECT_EQ(sf.scene.lights.size(), 1u);
  EXPECT_EQ(sf.scene.max_depth, 3);
  EXPECT_DOUBLE_EQ(sf.cam_vfov, 55.0);
  EXPECT_DOUBLE_EQ(sf.scene.materials[1].reflectivity, 0.6);
  ASSERT_TRUE(std::holds_alternative<Sphere>(sf.scene.objects[0]));
  EXPECT_DOUBLE_EQ(std::get<Sphere>(sf.scene.objects[0]).radius, 1.5);
}

TEST(SceneFile, EmptyAndCommentOnlyInputIsLegal) {
  const SceneFile sf = parse_scene_string("# nothing\n\n   \n");
  EXPECT_TRUE(sf.scene.objects.empty());
  EXPECT_EQ(sf.cam_vfov, 60.0);  // defaults apply
}

TEST(SceneFile, RendersWithoutCrashing) {
  const SceneFile sf = parse_scene_string(kValidScene);
  Framebuffer fb(32, 32);
  render(sf.scene, sf.camera(1.0), fb);
  // The sphere must be visible: not all pixels are background.
  bool non_background = false;
  for (int y = 0; y < 32 && !non_background; ++y)
    for (int x = 0; x < 32; ++x)
      if (!(fb.get(x, y) == sf.scene.background)) {
        non_background = true;
        break;
      }
  EXPECT_TRUE(non_background);
}

TEST(SceneFile, RoundTripsThroughSerialization) {
  const SceneFile a = parse_scene_string(kValidScene);
  const SceneFile b = parse_scene_string(scene_to_string(a));
  EXPECT_EQ(b.scene.materials.size(), a.scene.materials.size());
  EXPECT_EQ(b.scene.objects.size(), a.scene.objects.size());
  EXPECT_EQ(b.scene.lights.size(), a.scene.lights.size());
  EXPECT_EQ(b.cam_vfov, a.cam_vfov);
  // Rendering both must give identical pixels.
  Framebuffer fa(24, 24), fb(24, 24);
  render(a.scene, a.camera(1.0), fa);
  render(b.scene, b.camera(1.0), fb);
  EXPECT_EQ(fa, fb);
}

struct BadLine {
  const char* name;
  const char* text;
};

class SceneFileErrors : public ::testing::TestWithParam<BadLine> {};

TEST_P(SceneFileErrors, MalformedInputThrowsWithLineNumber) {
  try {
    (void)parse_scene_string(GetParam().text);
    FAIL() << "expected parse error for " << GetParam().name;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SceneFileErrors,
    ::testing::Values(
        BadLine{"unknown_keyword", "blob 1 2 3\n"},
        BadLine{"sphere_without_material", "sphere 0 0 0 1 0\n"},
        BadLine{"material_out_of_range",
                "material 1 1 1 0 0 0 8 0\nsphere 0 0 0 1 5\n"},
        BadLine{"negative_radius",
                "material 1 1 1 0 0 0 8 0\nsphere 0 0 0 -1 0\n"},
        BadLine{"zero_normal",
                "material 1 1 1 0 0 0 8 0\nplane 0 0 0 0 0 0 0\n"},
        BadLine{"bad_reflectivity", "material 1 1 1 0 0 0 8 2.0\n"},
        BadLine{"short_vector", "light 1 2\n"},
        BadLine{"trailing_garbage", "ambient 1 1 1 junk\n"},
        BadLine{"bad_vfov", "camera 0 0 0 0 0 -1 0 1 0 200\n"},
        BadLine{"bad_maxdepth", "maxdepth 0\n"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SceneFile, MissingFileThrows) {
  EXPECT_THROW((void)load_scene_file("/nonexistent/file.scn"),
               std::runtime_error);
}

}  // namespace
