#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "raytracer/raytracer.hpp"

namespace {

using namespace raytracer;

TEST(SplitRows, EvenSplit) {
  const auto bands = split_rows(100, 4);
  ASSERT_EQ(bands.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bands[static_cast<std::size_t>(i)].y0, i * 25);
    EXPECT_EQ(bands[static_cast<std::size_t>(i)].y1, (i + 1) * 25);
  }
}

TEST(SplitRows, RemainderGoesToLastBand) {
  const auto bands = split_rows(10, 3);
  ASSERT_EQ(bands.size(), 3u);
  EXPECT_EQ(bands[0].y1 - bands[0].y0, 3);
  EXPECT_EQ(bands[1].y1 - bands[1].y0, 3);
  EXPECT_EQ(bands[2].y1 - bands[2].y0, 4);  // 10 = 3+3+4
}

TEST(SplitRows, MoreBandsThanRowsClamps) {
  const auto bands = split_rows(3, 10);
  EXPECT_EQ(bands.size(), 3u);
}

TEST(SplitRows, CoversAllRowsWithoutOverlap) {
  for (const int h : {1, 7, 64, 255, 800}) {
    for (const int b : {1, 2, 3, 8, 256}) {
      const auto bands = split_rows(h, b);
      int expect_y = 0;
      for (const auto& band : bands) {
        EXPECT_EQ(band.y0, expect_y);
        EXPECT_LT(band.y0, band.y1);
        expect_y = band.y1;
      }
      EXPECT_EQ(expect_y, h);
    }
  }
}

TEST(SplitRows, RejectsBadArguments) {
  EXPECT_THROW((void)split_rows(0, 4), std::invalid_argument);
  EXPECT_THROW((void)split_rows(10, 0), std::invalid_argument);
}

TEST(Render, BandsComposeToFullFrame) {
  const auto bench = build_bench_scene(20);
  Framebuffer whole(64, 64);
  render(bench.scene, bench.camera, whole);

  Framebuffer banded(64, 64);
  for (const auto& band : split_rows(64, 7))
    render_rows(bench.scene, bench.camera, banded, band.y0, band.y1);

  EXPECT_EQ(whole, banded);
}

TEST(Render, SceneIsDeterministic) {
  const auto a = build_bench_scene(20);
  const auto b = build_bench_scene(20);
  Framebuffer fa(32, 32), fb(32, 32);
  render(a.scene, a.camera, fa);
  render(b.scene, b.camera, fb);
  EXPECT_EQ(fa, fb);
}

TEST(Render, ImageHasStructure) {
  // Guards against degenerate all-background output.
  const auto bench = build_bench_scene(40);
  Framebuffer fb(48, 48);
  render(bench.scene, bench.camera, fb);
  const auto rgb = fb.to_rgb8();
  int distinct = 0;
  std::uint8_t last = rgb[0];
  for (const auto v : rgb)
    if (v != last) {
      ++distinct;
      last = v;
    }
  EXPECT_GT(distinct, 100);
}

TEST(Render, RowCostIsIrregular) {
  // The paper's load-imbalance premise: some bands cost much more than
  // others. Proxy: bands differ strongly in non-background content.
  const auto bench = build_bench_scene(60);
  Framebuffer fb(64, 64);
  render(bench.scene, bench.camera, fb);
  auto band_content = [&](int y0, int y1) {
    double sum = 0;
    for (int y = y0; y < y1; ++y)
      for (int x = 0; x < 64; ++x) sum += fb.get(x, y).length();
    return sum;
  };
  const double top = band_content(0, 16);
  const double bottom = band_content(48, 64);
  EXPECT_GT(std::max(top, bottom), 2.0 * std::min(top, bottom));
}

TEST(Framebuffer, PpmRoundTripHeader) {
  namespace fs = std::filesystem;
  Framebuffer fb(5, 3);
  fb.set(0, 0, {1.0, 0.0, 0.0});
  const auto path = (fs::temp_directory_path() / "anahy_test.ppm").string();
  fb.write_ppm(path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxv;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 5);
  EXPECT_EQ(h, 3);
  EXPECT_EQ(maxv, 255);
  in.get();
  std::uint8_t rgb[3];
  in.read(reinterpret_cast<char*>(rgb), 3);
  EXPECT_EQ(rgb[0], 255);
  EXPECT_EQ(rgb[1], 0);
  fs::remove(path);
}

TEST(Framebuffer, RejectsBadDimensions) {
  EXPECT_THROW(Framebuffer(0, 5), std::invalid_argument);
  EXPECT_THROW(Framebuffer(5, -1), std::invalid_argument);
}

}  // namespace
