#include "raytracer/vec3.hpp"

#include <gtest/gtest.h>

namespace {

using raytracer::Vec3;

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
  EXPECT_EQ(a * b, Vec3(4, 10, 18));  // component-wise
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  const Vec3 z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_DOUBLE_EQ(x.dot(x), 1.0);
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_EQ(y.cross(x), -z);  // anti-commutative
}

TEST(Vec3, LengthAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.length(), 5.0);
  EXPECT_DOUBLE_EQ(v.length_squared(), 25.0);
  const Vec3 n = v.normalized();
  EXPECT_NEAR(n.length(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});  // zero vector stays zero
}

TEST(Vec3, Reflect) {
  // Incoming 45 degrees onto the XZ plane reflects symmetrically.
  const Vec3 v = Vec3{1, -1, 0}.normalized();
  const Vec3 n{0, 1, 0};
  const Vec3 r = reflect(v, n);
  EXPECT_NEAR(r.x, v.x, 1e-12);
  EXPECT_NEAR(r.y, -v.y, 1e-12);
  EXPECT_NEAR(r.length(), 1.0, 1e-12);
}

TEST(Vec3, Clamp01) {
  const auto c = raytracer::clamp01({-0.5, 0.5, 1.5});
  EXPECT_EQ(c, Vec3(0.0, 0.5, 1.0));
}

}  // namespace
