#include "image/image.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace {

using image::Image;

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.at(2, 1), 7);
  img.set(2, 1, 200);
  EXPECT_EQ(img.at(2, 1), 200);
}

TEST(Image, RejectsBadDimensions) {
  EXPECT_THROW(Image(0, 3), std::invalid_argument);
  EXPECT_THROW(Image(3, -2), std::invalid_argument);
}

TEST(Image, ClampedAccessAtEdges) {
  Image img(3, 3);
  img.set(0, 0, 10);
  img.set(2, 2, 20);
  EXPECT_EQ(img.at_clamped(-5, -5), 10);
  EXPECT_EQ(img.at_clamped(7, 9), 20);
  EXPECT_EQ(img.at_clamped(1, -1), img.at(1, 0));
}

TEST(Image, PgmRoundTrip) {
  namespace fs = std::filesystem;
  const auto src = image::make_test_image(33, 17, 5);
  const auto path = (fs::temp_directory_path() / "anahy_test.pgm").string();
  src.write_pgm(path);
  const Image back = Image::read_pgm(path);
  EXPECT_EQ(back, src);
  fs::remove(path);
}

TEST(Image, ReadPgmSkipsComments) {
  namespace fs = std::filesystem;
  const auto path = (fs::temp_directory_path() / "anahy_comment.pgm").string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "P5\n# written by some tool\n2 # width then height\n# more\n2\n255\n";
    const char pixels[4] = {10, 20, 30, 40};
    f.write(pixels, 4);
  }
  const Image img = Image::read_pgm(path);
  EXPECT_EQ(img.width(), 2);
  EXPECT_EQ(img.height(), 2);
  EXPECT_EQ(img.at(0, 0), 10);
  EXPECT_EQ(img.at(1, 1), 40);
  fs::remove(path);
}

TEST(Image, ReadPgmRejectsNonNumericHeader) {
  namespace fs = std::filesystem;
  const auto path = (fs::temp_directory_path() / "anahy_badhdr.pgm").string();
  {
    std::ofstream f(path);
    f << "P5\nwide tall 255\n";
  }
  EXPECT_THROW((void)Image::read_pgm(path), std::runtime_error);
  fs::remove(path);
}

TEST(Image, ReadPgmRejectsGarbage) {
  namespace fs = std::filesystem;
  const auto path = (fs::temp_directory_path() / "anahy_bad.pgm").string();
  {
    std::ofstream f(path);
    f << "NOTPGM 1 2 3";
  }
  EXPECT_THROW((void)Image::read_pgm(path), std::runtime_error);
  fs::remove(path);
}

TEST(Image, TestImageIsDeterministicPerSeed) {
  EXPECT_EQ(image::make_test_image(64, 64, 9), image::make_test_image(64, 64, 9));
  EXPECT_NE(image::make_test_image(64, 64, 9).data(),
            image::make_test_image(64, 64, 10).data());
}

TEST(Image, TestImageHasDynamicRange) {
  const auto img = image::make_test_image(128, 128);
  std::uint8_t lo = 255, hi = 0;
  for (const auto v : img.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 40);
  EXPECT_GT(hi, 200);
}

}  // namespace
