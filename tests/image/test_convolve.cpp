#include "image/image_lib.hpp"

#include <gtest/gtest.h>

namespace {

using namespace image;

TEST(Kernel, WeightsMatchDefinitions) {
  EXPECT_EQ(Kernel::box3().weight(), 9);
  EXPECT_EQ(Kernel::gaussian3().weight(), 16);
  EXPECT_EQ(Kernel::gaussian5().weight(), 256);
  EXPECT_EQ(Kernel::sharpen3().weight(), 5);
  EXPECT_EQ(Kernel::sobel_x().weight(), 1);  // zero-sum normalizes by 1
  EXPECT_EQ(Kernel::identity3().weight(), 1);
}

TEST(Kernel, RejectsEvenOrMismatchedSizes) {
  EXPECT_THROW(Kernel(2, {1, 1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(Kernel(3, {1, 1}), std::invalid_argument);
  EXPECT_THROW((void)Kernel::by_name("nope"), std::invalid_argument);
}

TEST(Kernel, ByNameRoundTrips) {
  for (const char* name : {"box3", "gaussian3", "gaussian5", "sharpen3",
                           "sobel_x", "sobel_y", "emboss3", "identity3"}) {
    const Kernel k = Kernel::by_name(name);
    EXPECT_GT(k.size(), 0) << name;
  }
}

TEST(Convolve, IdentityKernelPreservesImage) {
  const auto src = make_test_image(40, 30, 2);
  EXPECT_EQ(convolve(src, Kernel::identity3()), src);
}

TEST(Convolve, BoxBlurOfConstantImageIsConstant) {
  const Image src(16, 16, 123);
  const Image dst = convolve(src, Kernel::box3());
  for (const auto v : dst.data()) EXPECT_EQ(v, 123);
}

TEST(Convolve, BoxBlurAveragesNeighborhood) {
  Image src(3, 3, 0);
  src.set(1, 1, 90);
  const Image dst = convolve(src, Kernel::box3());
  EXPECT_EQ(dst.at(1, 1), 10);  // 90 / 9
}

TEST(Convolve, SobelOnConstantImageIsZero) {
  const Image src(20, 20, 77);
  const Image dst = convolve(src, Kernel::sobel_x());
  for (const auto v : dst.data()) EXPECT_EQ(v, 0);
}

TEST(Convolve, SobelDetectsVerticalEdge) {
  Image src(20, 20, 0);
  for (int y = 0; y < 20; ++y)
    for (int x = 10; x < 20; ++x) src.set(x, y, 200);
  const Image dst = convolve(src, Kernel::sobel_x());
  EXPECT_GT(dst.at(10, 10), 100);  // strong response on the edge
  EXPECT_EQ(dst.at(3, 10), 0);     // flat region
}

TEST(Convolve, ResultsClampToByteRange) {
  Image src(8, 8, 250);
  const Image sharp = convolve(src, Kernel::sharpen3());
  for (const auto v : sharp.data()) EXPECT_LE(v, 255);
}

TEST(SplitBands, MatchesPaperRule) {
  // "when the image size is not a multiple of the task count, the last
  // task may receive a few extra rows"
  const auto bands = split_bands(256, 3);
  ASSERT_EQ(bands.size(), 3u);
  EXPECT_EQ(bands[0].y1 - bands[0].y0, 85);
  EXPECT_EQ(bands[1].y1 - bands[1].y0, 85);
  EXPECT_EQ(bands[2].y1 - bands[2].y0, 86);
}

TEST(SplitBands, CoverageProperty) {
  for (const int h : {1, 9, 256, 1000}) {
    for (const int t : {1, 2, 7, 64}) {
      int y = 0;
      for (const auto& b : split_bands(h, t)) {
        EXPECT_EQ(b.y0, y);
        y = b.y1;
      }
      EXPECT_EQ(y, h);
    }
  }
}

TEST(Convolve, BandedEqualsWhole) {
  const auto src = make_test_image(64, 50, 3);
  for (const auto& kernel : {Kernel::box3(), Kernel::gaussian5(),
                             Kernel::sobel_y(), Kernel::emboss3()}) {
    const Image whole = convolve(src, kernel);
    Image banded(src.width(), src.height());
    for (const auto& band : split_bands(src.height(), 7))
      convolve_rows(src, banded, kernel, band.y0, band.y1);
    EXPECT_EQ(banded, whole);
  }
}

TEST(Convolve, RowsRejectsMismatchedDst) {
  const auto src = make_test_image(10, 10);
  Image wrong(5, 5);
  EXPECT_THROW(convolve_rows(src, wrong, Kernel::box3(), 0, 5),
               std::invalid_argument);
}

class KernelSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelSweep, DeterministicAcrossRuns) {
  const auto src = make_test_image(48, 48, 8);
  const Kernel k = Kernel::by_name(GetParam());
  EXPECT_EQ(convolve(src, k), convolve(src, k));
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweep,
                         ::testing::Values("box3", "gaussian3", "gaussian5",
                                           "sharpen3", "sobel_x", "sobel_y",
                                           "emboss3", "identity3"));

}  // namespace
