#include "compress/huffman.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace {

using namespace compress;

std::uint64_t kraft_sum(std::span<const std::uint8_t> lengths, int max_len) {
  std::uint64_t sum = 0;
  for (const auto l : lengths)
    if (l > 0) sum += 1ull << (max_len - l);
  return sum;
}

TEST(Huffman, AllZeroFrequenciesYieldNoCodes) {
  const std::vector<std::uint32_t> freqs(10, 0);
  const auto lengths = huffman_code_lengths(freqs, 15);
  for (const auto l : lengths) EXPECT_EQ(l, 0);
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  std::vector<std::uint32_t> freqs(10, 0);
  freqs[4] = 100;
  const auto lengths = huffman_code_lengths(freqs, 15);
  EXPECT_EQ(lengths[4], 1);
}

TEST(Huffman, TwoSymbolsGetOneBitEach) {
  std::vector<std::uint32_t> freqs = {7, 0, 3};
  const auto lengths = huffman_code_lengths(freqs, 15);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[2], 1);
  EXPECT_EQ(lengths[1], 0);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  const std::vector<std::uint32_t> freqs = {100, 50, 20, 5, 1};
  const auto lengths = huffman_code_lengths(freqs, 15);
  for (std::size_t i = 1; i < freqs.size(); ++i)
    EXPECT_LE(lengths[i - 1], lengths[i]);
}

TEST(Huffman, KraftEqualityHolds) {
  const std::vector<std::uint32_t> freqs = {5, 9, 12, 13, 16, 45};
  const auto lengths = huffman_code_lengths(freqs, 15);
  EXPECT_EQ(kraft_sum(lengths, 15), 1ull << 15);
}

TEST(Huffman, LengthLimitIsEnforced) {
  // Fibonacci frequencies force maximally skewed trees.
  std::vector<std::uint32_t> freqs(30);
  std::uint32_t a = 1, b = 1;
  for (auto& f : freqs) {
    f = a;
    const std::uint32_t next = a + b;
    a = b;
    b = next;
  }
  for (const int limit : {7, 10, 15}) {
    const auto lengths = huffman_code_lengths(freqs, limit);
    int max_len = 0;
    for (const auto l : lengths) max_len = std::max<int>(max_len, l);
    EXPECT_LE(max_len, limit);
    EXPECT_LE(kraft_sum(lengths, limit), 1ull << limit)
        << "limit " << limit << " over-subscribed";
  }
}

TEST(Huffman, CanonicalCodesArePrefixFree) {
  const std::vector<std::uint32_t> freqs = {10, 7, 7, 3, 2, 1, 1};
  const auto lengths = huffman_code_lengths(freqs, 15);
  const auto codes = canonical_codes(lengths);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    for (std::size_t j = 0; j < codes.size(); ++j) {
      if (i == j || lengths[i] == 0 || lengths[j] == 0) continue;
      if (lengths[i] > lengths[j]) continue;
      // code_i must not be a prefix of code_j.
      const auto shifted = codes[j] >> (lengths[j] - lengths[i]);
      EXPECT_FALSE(shifted == codes[i] && i != j &&
                   lengths[i] < lengths[j])
          << "code " << i << " prefixes code " << j;
    }
  }
}

TEST(Huffman, Rfc1951WorkedExample) {
  // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) yield these codes.
  const std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  const auto codes = canonical_codes(lengths);
  const std::vector<std::uint32_t> expect = {0b010, 0b011,  0b100,  0b101,
                                             0b110, 0b00,   0b1110, 0b1111};
  EXPECT_EQ(codes, expect);
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  const std::vector<std::uint32_t> freqs = {50, 30, 10, 5, 3, 1, 1};
  const auto lengths = huffman_code_lengths(freqs, 15);
  const auto codes = canonical_codes(lengths);
  const HuffmanDecoder dec(lengths);

  std::mt19937 rng(3);
  std::vector<int> symbols;
  for (int i = 0; i < 2000; ++i)
    symbols.push_back(static_cast<int>(rng() % freqs.size()));

  BitWriter bw;
  for (const int s : symbols)
    bw.write_huffman(codes[static_cast<std::size_t>(s)],
                     lengths[static_cast<std::size_t>(s)]);
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (const int s : symbols) ASSERT_EQ(dec.decode(br), s);
}

TEST(Huffman, DecoderRejectsOversubscribedCode) {
  // Three 1-bit codes cannot coexist.
  const std::vector<std::uint8_t> bad = {1, 1, 1};
  EXPECT_THROW(HuffmanDecoder{bad}, std::runtime_error);
}

TEST(Huffman, DecoderRejectsEmptyCode) {
  const std::vector<std::uint8_t> empty = {0, 0, 0};
  EXPECT_THROW(HuffmanDecoder{empty}, std::runtime_error);
}

class HuffmanRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanRandomRoundTrip, RandomFrequencyTables) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const std::size_t nsym = 2 + rng() % 100;
  std::vector<std::uint32_t> freqs(nsym);
  for (auto& f : freqs) f = rng() % 1000;  // zeros allowed
  freqs[0] = 1;  // ensure at least one used symbol
  freqs[1] = 1;

  const auto lengths = huffman_code_lengths(freqs, 15);
  EXPECT_LE(kraft_sum(lengths, 15), 1ull << 15);
  const auto codes = canonical_codes(lengths);
  const HuffmanDecoder dec(lengths);

  std::vector<int> symbols;
  for (int i = 0; i < 500; ++i) {
    const int s = static_cast<int>(rng() % nsym);
    if (freqs[static_cast<std::size_t>(s)] == 0) continue;
    symbols.push_back(s);
  }
  BitWriter bw;
  for (const int s : symbols)
    bw.write_huffman(codes[static_cast<std::size_t>(s)],
                     lengths[static_cast<std::size_t>(s)]);
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (const int s : symbols) ASSERT_EQ(dec.decode(br), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanRandomRoundTrip,
                         ::testing::Range(0, 20));

}  // namespace
