#include "compress/bitstream.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace compress;

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter bw;
  const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (const int b : pattern) bw.write_bits(static_cast<std::uint32_t>(b), 1);
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (const int b : pattern)
    EXPECT_EQ(br.read_bit(), static_cast<std::uint32_t>(b));
}

TEST(BitStream, LsbFirstByteLayout) {
  BitWriter bw;
  bw.write_bits(0b1, 1);   // bit 0
  bw.write_bits(0b10, 2);  // bits 1-2
  bw.write_bits(0b11111, 5);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  // bit0=1, bits1-2=0b10 -> 0,1 ; bits3-7 all 1 => 0b11111101.
  EXPECT_EQ(bytes[0], 0b11111101);
}

TEST(BitStream, MultiWidthRoundTrip) {
  BitWriter bw;
  bw.write_bits(0x5, 3);
  bw.write_bits(0xABC, 12);
  bw.write_bits(0x1FFFF, 17);
  bw.write_bits(0xDEADBEEF, 32);
  const auto bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.read_bits(3), 0x5u);
  EXPECT_EQ(br.read_bits(12), 0xABCu);
  EXPECT_EQ(br.read_bits(17), 0x1FFFFu);
  EXPECT_EQ(br.read_bits(32), 0xDEADBEEFu);
}

TEST(BitStream, AlignAndRawBytes) {
  BitWriter bw;
  bw.write_bits(0b101, 3);
  bw.align_to_byte();
  const std::uint8_t raw[] = {0x11, 0x22, 0x33};
  bw.write_bytes(raw);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 4u);

  BitReader br(bytes);
  EXPECT_EQ(br.read_bits(3), 0b101u);
  br.align_to_byte();
  std::uint8_t out[3];
  br.read_bytes(out, 3);
  EXPECT_EQ(out[0], 0x11);
  EXPECT_EQ(out[2], 0x33);
  EXPECT_TRUE(br.exhausted());
}

TEST(BitStream, WriteBytesRequiresAlignment) {
  BitWriter bw;
  bw.write_bits(1, 1);
  const std::uint8_t raw[] = {0x00};
  EXPECT_THROW(bw.write_bytes(raw), std::logic_error);
}

TEST(BitStream, ReaderThrowsOnExhaustion) {
  const std::uint8_t one = 0xFF;
  BitReader br({&one, 1});
  EXPECT_EQ(br.read_bits(8), 0xFFu);
  EXPECT_THROW((void)br.read_bit(), std::runtime_error);
}

TEST(BitStream, HuffmanCodesAreBitReversed) {
  // Code 0b110 (MSB-first) of length 3 must appear as bits 0,1,1.
  BitWriter bw;
  bw.write_huffman(0b110, 3);
  const auto bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.read_bit(), 1u);
  EXPECT_EQ(br.read_bit(), 1u);
  EXPECT_EQ(br.read_bit(), 0u);
}

TEST(BitStream, RandomizedRoundTrip) {
  std::mt19937 rng(99);
  std::vector<std::pair<std::uint32_t, int>> writes;
  BitWriter bw;
  for (int i = 0; i < 5000; ++i) {
    const int width = 1 + static_cast<int>(rng() % 24);
    const std::uint32_t value = rng() & ((1u << width) - 1u);
    writes.emplace_back(value, width);
    bw.write_bits(value, width);
  }
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (const auto& [value, width] : writes)
    ASSERT_EQ(br.read_bits(width), value);
}

TEST(BitStream, BitCountTracksWrites) {
  BitWriter bw;
  EXPECT_EQ(bw.bit_count(), 0u);
  bw.write_bits(0, 5);
  EXPECT_EQ(bw.bit_count(), 5u);
  bw.write_bits(0, 11);
  EXPECT_EQ(bw.bit_count(), 16u);
}

}  // namespace
