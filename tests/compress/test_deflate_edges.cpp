// DEFLATE corner cases: block-type selection, degenerate alphabets,
// window-crossing references, and header boundary values.
#include <gtest/gtest.h>

#include "compress/compress.hpp"

namespace {

using namespace compress;

/// First 3 bits of a deflate stream: BFINAL + BTYPE of the first block.
std::uint32_t first_btype(std::span<const std::uint8_t> stream) {
  BitReader br(stream);
  (void)br.read_bit();  // BFINAL
  return br.read_bits(2);
}

TEST(DeflateEdges, RandomDataPrefersStoredBlocks) {
  std::vector<std::uint8_t> data(70000);
  std::uint32_t state = 123;
  for (auto& v : data) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<std::uint8_t>(state >> 24);
  }
  const auto out = deflate_compress(data);
  EXPECT_EQ(first_btype(out), 0u) << "incompressible data should be stored";
  EXPECT_EQ(inflate_decompress(out), data);
}

TEST(DeflateEdges, TextPrefersDynamicHuffman) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 3000; ++i) {
    const char* s = "the rain in spain stays mainly in the plain. ";
    data.insert(data.end(), s, s + 46);
  }
  const auto out = deflate_compress(data);
  EXPECT_EQ(first_btype(out), 2u) << "repetitive text should use dynamic";
  EXPECT_EQ(inflate_decompress(out), data);
}

TEST(DeflateEdges, SingleDistinctByteAlphabet) {
  // Lit/len alphabet of {value, EOB} plus one distance code: the most
  // degenerate dynamic header possible.
  const std::vector<std::uint8_t> data(100000, 0x00);
  const auto out = deflate_compress(data);
  EXPECT_LT(out.size(), 1024u);
  EXPECT_EQ(inflate_decompress(out), data);
}

TEST(DeflateEdges, MatchAtMaximumDistance) {
  // A repeated 64-byte motif separated by exactly (32768 - 64) filler
  // bytes: matches must work right at the window edge.
  std::vector<std::uint8_t> data;
  std::vector<std::uint8_t> motif;
  for (int i = 0; i < 64; ++i)
    motif.push_back(static_cast<std::uint8_t>(200 + i % 50));
  data.insert(data.end(), motif.begin(), motif.end());
  std::uint32_t state = 9;
  while (data.size() < 32768)
    data.push_back(static_cast<std::uint8_t>((state = state * 69069u + 1) >> 24));
  data.resize(32768);
  data.insert(data.end(), motif.begin(), motif.end());  // distance = 32768
  EXPECT_EQ(inflate_decompress(deflate_compress(data)), data);
}

TEST(DeflateEdges, MaxLengthMatches) {
  // Runs much longer than 258 force repeated max-length matches.
  std::vector<std::uint8_t> data(258 * 40 + 17, 'q');
  const auto tokens = lz77_tokenize(data);
  bool saw_max = false;
  for (const auto& t : tokens)
    if (t.is_match && t.length == kMaxMatch) saw_max = true;
  EXPECT_TRUE(saw_max);
  EXPECT_EQ(lz77_reconstruct(tokens), data);
  EXPECT_EQ(inflate_decompress(deflate_compress(data)), data);
}

TEST(DeflateEdges, LengthCodeBoundaries) {
  using detail::length_code;
  EXPECT_EQ(length_code(3).code, 257);
  EXPECT_EQ(length_code(10).code, 264);
  EXPECT_EQ(length_code(11).code, 265);  // first extra-bit code
  EXPECT_EQ(length_code(11).extra_bits, 1);
  EXPECT_EQ(length_code(257).code, 284);
  EXPECT_EQ(length_code(258).code, 285);  // special: 0 extra bits
  EXPECT_EQ(length_code(258).extra_bits, 0);
  EXPECT_THROW((void)length_code(2), std::invalid_argument);
  EXPECT_THROW((void)length_code(259), std::invalid_argument);
}

TEST(DeflateEdges, DistanceCodeBoundaries) {
  using detail::dist_code;
  EXPECT_EQ(dist_code(1).code, 0);
  EXPECT_EQ(dist_code(4).code, 3);
  EXPECT_EQ(dist_code(5).code, 4);  // first extra-bit code
  EXPECT_EQ(dist_code(5).extra_bits, 1);
  EXPECT_EQ(dist_code(24577).code, 29);
  EXPECT_EQ(dist_code(32768).code, 29);
  EXPECT_THROW((void)dist_code(0), std::invalid_argument);
  EXPECT_THROW((void)dist_code(32769), std::invalid_argument);
}

TEST(DeflateEdges, FixedHuffmanTableShape) {
  const auto lit = detail::fixed_litlen_lengths();
  ASSERT_EQ(lit.size(), 288u);
  EXPECT_EQ(lit[0], 8);
  EXPECT_EQ(lit[143], 8);
  EXPECT_EQ(lit[144], 9);
  EXPECT_EQ(lit[255], 9);
  EXPECT_EQ(lit[256], 7);
  EXPECT_EQ(lit[279], 7);
  EXPECT_EQ(lit[280], 8);
  EXPECT_EQ(lit[287], 8);
  const auto dist = detail::fixed_dist_lengths();
  ASSERT_EQ(dist.size(), 30u);
  for (const auto l : dist) EXPECT_EQ(l, 5);
}

TEST(DeflateEdges, AllByteValuesRoundTrip) {
  std::vector<std::uint8_t> data;
  for (int rep = 0; rep < 300; ++rep)
    for (int b = 0; b < 256; ++b)
      data.push_back(static_cast<std::uint8_t>(b));
  EXPECT_EQ(inflate_decompress(deflate_compress(data)), data);
  EXPECT_EQ(gzip_decompress(gzip_compress(data)), data);
}

TEST(DeflateEdges, GzipHeaderWithOptionalFieldsDecodes) {
  // Hand-build a member with FNAME + FCOMMENT + FEXTRA set.
  const std::vector<std::uint8_t> payload = {'h', 'i'};
  const auto deflated = deflate_compress(payload);
  std::vector<std::uint8_t> gz = {0x1F, 0x8B, 8, 0x1C,  // FLG: FEXTRA|FNAME|FCOMMENT
                                  0, 0, 0, 0, 0, 3};
  gz.push_back(4);  // XLEN = 4
  gz.push_back(0);
  gz.insert(gz.end(), {9, 9, 9, 9});               // extra field
  gz.insert(gz.end(), {'f', 'i', 'l', 'e', 0});    // FNAME
  gz.insert(gz.end(), {'c', 'm', 't', 0});         // FCOMMENT
  gz.insert(gz.end(), deflated.begin(), deflated.end());
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i)
    gz.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  const std::uint32_t isize = 2;
  for (int i = 0; i < 4; ++i)
    gz.push_back(static_cast<std::uint8_t>(isize >> (8 * i)));
  EXPECT_EQ(gzip_decompress(gz), payload);
}

}  // namespace
