#include "compress/crc32.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

namespace {

using namespace compress;

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors) {
  // The canonical check value of CRC-32/IEEE.
  EXPECT_EQ(crc32(bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(bytes("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  const auto data = bytes("hello, streaming crc world");
  std::uint32_t crc = 0;
  for (const auto b : data) crc = crc32_update(crc, {&b, 1});
  EXPECT_EQ(crc, crc32(data));
}

TEST(Crc32, StreamingArbitrarySplit) {
  const auto data = bytes("0123456789abcdefghijklmnopqrstuvwxyz");
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = crc32_update(0, {data.data(), split});
    crc = crc32_update(crc, {data.data() + split, data.size() - split});
    EXPECT_EQ(crc, crc32(data)) << "split at " << split;
  }
}

TEST(Crc32, CombineMatchesConcatenation) {
  const auto a = bytes("first chunk of the file");
  const auto b = bytes("second chunk, compressed independently");
  auto ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(crc32_combine(crc32(a), crc32(b), b.size()), crc32(ab));
}

TEST(Crc32, CombineWithEmptySides) {
  const auto a = bytes("payload");
  EXPECT_EQ(crc32_combine(crc32(a), 0, 0), crc32(a));
  EXPECT_EQ(crc32_combine(0, crc32(a), a.size()), crc32(a));
}

TEST(Crc32, CombineIsAssociativeOverChunks) {
  std::mt19937 rng(7);
  std::vector<std::uint8_t> whole(4096);
  for (auto& v : whole) v = static_cast<std::uint8_t>(rng());

  // Combine 8 chunks of varying size left to right.
  const std::size_t cuts[] = {0, 100, 531, 1024, 1100, 2047, 3000, 4000, 4096};
  std::uint32_t crc = 0;
  std::size_t combined_len = 0;
  for (int i = 0; i + 1 < 9; ++i) {
    const std::size_t len = cuts[i + 1] - cuts[i];
    const std::uint32_t part = crc32({whole.data() + cuts[i], len});
    crc = crc32_combine(crc, part, len);
    combined_len += len;
  }
  ASSERT_EQ(combined_len, whole.size());
  EXPECT_EQ(crc, crc32(whole));
}

class Crc32SplitSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Crc32SplitSweep, CombineEqualsDirect) {
  std::mt19937 rng(GetParam());
  std::vector<std::uint8_t> data(2000);
  for (auto& v : data) v = static_cast<std::uint8_t>(rng());
  const std::size_t split = GetParam() % data.size();
  const std::uint32_t a = crc32({data.data(), split});
  const std::uint32_t b = crc32({data.data() + split, data.size() - split});
  EXPECT_EQ(crc32_combine(a, b, data.size() - split), crc32(data));
}

INSTANTIATE_TEST_SUITE_P(Splits, Crc32SplitSweep,
                         ::testing::Values(1, 13, 128, 999, 1024, 1999));

}  // namespace
