#include "compress/lz77.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace {

using namespace compress;

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Lz77, EmptyInputYieldsNoTokens) {
  EXPECT_TRUE(lz77_tokenize({}).empty());
}

TEST(Lz77, IncompressibleShortInputIsAllLiterals) {
  const auto data = bytes("abc");
  const auto tokens = lz77_tokenize(data);
  ASSERT_EQ(tokens.size(), 3u);
  for (const auto& t : tokens) EXPECT_FALSE(t.is_match);
}

TEST(Lz77, RepetitionProducesMatches) {
  const auto data = bytes("abcabcabcabcabcabc");
  const auto tokens = lz77_tokenize(data);
  bool any_match = false;
  for (const auto& t : tokens) any_match |= t.is_match;
  EXPECT_TRUE(any_match);
  EXPECT_LT(tokens.size(), data.size());  // actually compressed
  EXPECT_EQ(lz77_reconstruct(tokens), data);
}

TEST(Lz77, RunOfOneByteUsesOverlappingMatch) {
  const std::vector<std::uint8_t> data(300, 'x');
  const auto tokens = lz77_tokenize(data);
  // Expect one literal plus overlapping distance-1 matches.
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_FALSE(tokens[0].is_match);
  EXPECT_TRUE(tokens[1].is_match);
  EXPECT_EQ(tokens[1].distance, 1);
  EXPECT_EQ(lz77_reconstruct(tokens), data);
}

TEST(Lz77, MatchLengthNeverExceedsProtocolMax) {
  const std::vector<std::uint8_t> data(5000, 'y');
  for (const auto& t : lz77_tokenize(data)) {
    if (!t.is_match) continue;
    EXPECT_GE(t.length, kMinMatch);
    EXPECT_LE(t.length, kMaxMatch);
    EXPECT_GE(t.distance, 1);
    EXPECT_LE(t.distance, kWindowSize);
  }
}

TEST(Lz77, LazyOffFindsMatchesToo) {
  Lz77Params params;
  params.lazy = false;
  const auto data = bytes("the cat sat on the mat, the cat sat on the mat");
  const auto tokens = lz77_tokenize(data, params);
  EXPECT_EQ(lz77_reconstruct(tokens), data);
  bool any_match = false;
  for (const auto& t : tokens) any_match |= t.is_match;
  EXPECT_TRUE(any_match);
}

TEST(Lz77, ReconstructRejectsBadDistance) {
  std::vector<Token> bad = {Token::lit('a'), Token::match(3, 5)};
  EXPECT_THROW((void)lz77_reconstruct(bad), std::runtime_error);
}

struct Lz77Case {
  int seed;
  std::size_t size;
  int alphabet;  // small alphabet => lots of matches
  bool lazy;
};

class Lz77RoundTrip : public ::testing::TestWithParam<Lz77Case> {};

TEST_P(Lz77RoundTrip, TokenizeReconstructIdentity) {
  const auto& p = GetParam();
  std::mt19937 rng(static_cast<unsigned>(p.seed));
  std::vector<std::uint8_t> data(p.size);
  for (auto& v : data)
    v = static_cast<std::uint8_t>('a' + rng() % static_cast<unsigned>(p.alphabet));

  Lz77Params params;
  params.lazy = p.lazy;
  const auto tokens = lz77_tokenize(data, params);
  EXPECT_EQ(lz77_reconstruct(tokens), data);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Lz77RoundTrip,
    ::testing::Values(Lz77Case{1, 0, 2, true}, Lz77Case{2, 1, 2, true},
                      Lz77Case{3, 100, 2, true}, Lz77Case{4, 1000, 3, true},
                      Lz77Case{5, 1000, 3, false},
                      Lz77Case{6, 10000, 2, true},
                      Lz77Case{7, 10000, 26, true},
                      Lz77Case{8, 70000, 4, true},   // spans the window
                      Lz77Case{9, 70000, 255, false},
                      Lz77Case{10, 200000, 5, true}));

}  // namespace
