// End-to-end DEFLATE and gzip tests: round-trips across data shapes, block
// type selection, framing errors, multi-member streams, and (when a system
// gzip binary exists) interoperability with the reference implementation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>

#include "compress/compress.hpp"

namespace {

using namespace compress;

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> pseudo_text(std::size_t size, unsigned seed) {
  // Word-like data: compressible but not trivial.
  static const char* words[] = {"alpha", "bravo",  "charlie", "delta ",
                                "echo ", "foxtrot", " golf",  "hotel\n"};
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> out;
  while (out.size() < size) {
    const auto w = bytes(words[rng() % 8]);
    out.insert(out.end(), w.begin(), w.end());
  }
  out.resize(size);
  return out;
}

std::vector<std::uint8_t> random_bytes(std::size_t size, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> out(size);
  for (auto& v : out) v = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(Deflate, EmptyInputRoundTrips) {
  const auto compressed = deflate_compress({});
  EXPECT_FALSE(compressed.empty());
  EXPECT_TRUE(inflate_decompress(compressed).empty());
}

TEST(Deflate, TinyInputsRoundTrip) {
  for (const std::string s : {"a", "ab", "abc", "aaaa", "\x00\x01\x02"}) {
    const auto data = bytes(s);
    EXPECT_EQ(inflate_decompress(deflate_compress(data)), data) << s;
  }
}

TEST(Deflate, CompressibleTextShrinks) {
  const auto data = pseudo_text(100000, 1);
  const auto compressed = deflate_compress(data);
  EXPECT_LT(compressed.size(), data.size() / 2);
  EXPECT_EQ(inflate_decompress(compressed), data);
}

TEST(Deflate, IncompressibleDataSurvives) {
  const auto data = random_bytes(65536, 2);
  const auto compressed = deflate_compress(data);
  // Random bytes cannot shrink much, but must round-trip and the stored
  // fallback caps the blow-up at ~0.1%.
  EXPECT_LT(compressed.size(), data.size() + data.size() / 100 + 64);
  EXPECT_EQ(inflate_decompress(compressed), data);
}

TEST(Deflate, LongSingleByteRun) {
  const std::vector<std::uint8_t> data(1 << 20, 'z');
  const auto compressed = deflate_compress(data);
  EXPECT_LT(compressed.size(), 8192u);  // ~258x reduction at least
  EXPECT_EQ(inflate_decompress(compressed), data);
}

TEST(Deflate, MultiBlockStreams) {
  // > 65536 tokens forces several blocks.
  const auto data = random_bytes(200000, 3);
  EXPECT_EQ(inflate_decompress(deflate_compress(data)), data);
}

TEST(Inflate, RejectsReservedBlockType) {
  // First 3 bits: BFINAL=1, BTYPE=11 (reserved).
  const std::vector<std::uint8_t> bad = {0x07};
  EXPECT_THROW((void)inflate_decompress(bad), std::runtime_error);
}

TEST(Inflate, RejectsStoredLenMismatch) {
  // BFINAL=1 BTYPE=00, aligned, LEN=1 NLEN=1 (not complements).
  const std::vector<std::uint8_t> bad = {0x01, 0x01, 0x00, 0x01, 0x00};
  EXPECT_THROW((void)inflate_decompress(bad), std::runtime_error);
}

TEST(Inflate, RejectsTruncatedStream) {
  const auto data = pseudo_text(5000, 4);
  auto compressed = deflate_compress(data);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW((void)inflate_decompress(compressed), std::runtime_error);
}

TEST(Gzip, RoundTripWithHeaderAndTrailer) {
  const auto data = pseudo_text(10000, 5);
  const auto gz = gzip_compress(data);
  ASSERT_GE(gz.size(), 18u);
  EXPECT_EQ(gz[0], 0x1F);
  EXPECT_EQ(gz[1], 0x8B);
  EXPECT_EQ(gz[2], 8);  // deflate
  EXPECT_EQ(gzip_decompress(gz), data);
  EXPECT_EQ(gzip_member_count(gz), 1u);
}

TEST(Gzip, MultiMemberConcatenationDecodesAsWhole) {
  // The parallel compressor's output format: one member per chunk.
  const auto a = pseudo_text(3000, 6);
  const auto b = random_bytes(2000, 7);
  const auto c = bytes("tail");
  auto gz = gzip_compress(a);
  const auto gb = gzip_compress(b);
  const auto gc = gzip_compress(c);
  gz.insert(gz.end(), gb.begin(), gb.end());
  gz.insert(gz.end(), gc.begin(), gc.end());

  auto expect = a;
  expect.insert(expect.end(), b.begin(), b.end());
  expect.insert(expect.end(), c.begin(), c.end());
  EXPECT_EQ(gzip_decompress(gz), expect);
  EXPECT_EQ(gzip_member_count(gz), 3u);
}

TEST(Gzip, WrapMatchesCompress) {
  const auto data = pseudo_text(4096, 8);
  const auto manual =
      gzip_wrap(deflate_compress(data), crc32(data),
                static_cast<std::uint32_t>(data.size()));
  EXPECT_EQ(gzip_decompress(manual), data);
}

TEST(Gzip, DetectsCorruptedCrc) {
  const auto data = pseudo_text(1000, 9);
  auto gz = gzip_compress(data);
  gz[gz.size() - 5] ^= 0xFF;  // flip a CRC byte
  EXPECT_THROW((void)gzip_decompress(gz), std::runtime_error);
}

TEST(Gzip, DetectsCorruptedSize) {
  const auto data = pseudo_text(1000, 10);
  auto gz = gzip_compress(data);
  gz[gz.size() - 1] ^= 0xFF;  // flip an ISIZE byte
  EXPECT_THROW((void)gzip_decompress(gz), std::runtime_error);
}

TEST(Gzip, RejectsGarbage) {
  const auto junk = random_bytes(64, 11);
  EXPECT_THROW((void)gzip_decompress(junk), std::runtime_error);
}

TEST(Gzip, SystemGunzipAcceptsOurOutput) {
  // Interop cross-check against the reference implementation, when present.
  if (std::system("command -v gzip > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no system gzip available";

  const auto data = pseudo_text(50000, 12);
  const auto gz = gzip_compress(data);

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "anahy_gzip_interop";
  fs::create_directories(dir);
  const fs::path gz_path = dir / "ours.gz";
  {
    std::ofstream f(gz_path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(gz.data()),
            static_cast<std::streamsize>(gz.size()));
  }
  const std::string cmd = "gzip -dc " + gz_path.string() + " > " +
                          (dir / "out.bin").string() + " 2>/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << "system gunzip rejected output";

  std::ifstream f(dir / "out.bin", std::ios::binary);
  std::vector<std::uint8_t> round((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  EXPECT_EQ(round, data);
  fs::remove_all(dir);
}

struct RoundTripCase {
  const char* name;
  std::size_t size;
  int kind;  // 0 text, 1 random, 2 runs, 3 alternating
};

class DeflateRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(DeflateRoundTrip, DeflateAndGzip) {
  const auto& p = GetParam();
  std::vector<std::uint8_t> data;
  switch (p.kind) {
    case 0: data = pseudo_text(p.size, 100); break;
    case 1: data = random_bytes(p.size, 101); break;
    case 2: data.assign(p.size, 'r'); break;
    default:
      data.resize(p.size);
      for (std::size_t i = 0; i < p.size; ++i)
        data[i] = static_cast<std::uint8_t>(i % 7);
  }
  EXPECT_EQ(inflate_decompress(deflate_compress(data)), data);
  EXPECT_EQ(gzip_decompress(gzip_compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DeflateRoundTrip,
    ::testing::Values(RoundTripCase{"text_1k", 1024, 0},
                      RoundTripCase{"text_64k", 65536, 0},
                      RoundTripCase{"text_1m", 1 << 20, 0},
                      RoundTripCase{"random_1k", 1024, 1},
                      RoundTripCase{"random_512k", 512 << 10, 1},
                      RoundTripCase{"runs_100k", 100000, 2},
                      RoundTripCase{"cycle_333k", 333333, 3}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
