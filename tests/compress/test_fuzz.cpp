// Robustness fuzzing of the decoders: arbitrary bytes, truncations and
// bit flips must raise std::runtime_error or decode cleanly — never
// crash, hang, or allocate unboundedly.
#include <gtest/gtest.h>

#include <random>

#include "compress/compress.hpp"

namespace {

using namespace compress;

std::vector<std::uint8_t> random_bytes(std::size_t size, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> out(size);
  for (auto& v : out) v = static_cast<std::uint8_t>(rng());
  return out;
}

class InflateFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(InflateFuzz, RandomBytesNeverCrash) {
  std::mt19937 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const auto junk = random_bytes(1 + rng() % 2048, rng());
    try {
      const auto out = inflate_decompress(junk);
      // Decoding random bytes CAN succeed (e.g. a stored block that the
      // bytes happen to spell); output stays bounded by the input window.
      EXPECT_LT(out.size(), (1u << 26));
    } catch (const std::runtime_error&) {
      // expected for almost all inputs
    }
  }
}

TEST_P(InflateFuzz, GzipRandomBytesNeverCrash) {
  std::mt19937 rng(GetParam() + 1000);
  for (int round = 0; round < 50; ++round) {
    const auto junk = random_bytes(1 + rng() % 2048, rng());
    try {
      (void)gzip_decompress(junk);
    } catch (const std::runtime_error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InflateFuzz, ::testing::Range(0u, 8u));

TEST(InflateFuzz, EveryTruncationOfAValidStreamIsHandled) {
  const auto data = random_bytes(4096, 42);
  const auto good = deflate_compress(data);
  for (std::size_t cut = 0; cut < good.size(); cut += 7) {
    const std::span<const std::uint8_t> prefix{good.data(), cut};
    try {
      const auto out = inflate_decompress(prefix);
      // A truncation can only "succeed" if it still contains a final
      // block; then the output must be a prefix of the original data.
      ASSERT_LE(out.size(), data.size());
      EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(InflateFuzz, SingleBitFlipsDetectedOrSane) {
  const auto data = random_bytes(2048, 43);
  const auto good = gzip_compress(data);
  std::mt19937 rng(44);
  int silent_corruptions = 0;
  for (int round = 0; round < 200; ++round) {
    auto bad = good;
    bad[rng() % bad.size()] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    try {
      const auto out = gzip_decompress(bad);
      // gzip's CRC32 makes silent corruption astronomically unlikely.
      if (out != data) ++silent_corruptions;
    } catch (const std::runtime_error&) {
    }
  }
  EXPECT_EQ(silent_corruptions, 0);
}

TEST(InflateFuzz, DeepStoredBlockChainsTerminate) {
  // Many empty non-final stored blocks: the decoder must walk them all
  // and then fail on exhaustion rather than looping.
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 1000; ++i) {
    stream.push_back(0x00);  // BFINAL=0, BTYPE=00, aligned
    stream.push_back(0x00);  // LEN = 0
    stream.push_back(0x00);
    stream.push_back(0xFF);  // NLEN
    stream.push_back(0xFF);
  }
  EXPECT_THROW((void)inflate_decompress(stream), std::runtime_error);
}

}  // namespace
