// Compression-level presets: monotonic effort, round-trip at every level.
#include <gtest/gtest.h>

#include <random>

#include "compress/compress.hpp"

namespace {

using namespace compress;

std::vector<std::uint8_t> wordy(std::size_t size, unsigned seed) {
  static const char* words[] = {"the",  "quick", "brown ", "fox",
                                "jumps ", "over",  "lazy ",  "dog\n"};
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> out;
  while (out.size() < size) {
    const std::string w = words[rng() % 8];
    out.insert(out.end(), w.begin(), w.end());
  }
  out.resize(size);
  return out;
}

TEST(Levels, RejectsOutOfRange) {
  EXPECT_THROW((void)lz77_level(0), std::invalid_argument);
  EXPECT_THROW((void)lz77_level(10), std::invalid_argument);
}

TEST(Levels, EffortGrowsWithLevel) {
  for (int l = 2; l <= 9; ++l) {
    EXPECT_GE(lz77_level(l).max_chain, lz77_level(l - 1).max_chain);
    EXPECT_GE(lz77_level(l).nice_length, lz77_level(l - 1).nice_length);
  }
  EXPECT_FALSE(lz77_level(1).lazy);
  EXPECT_TRUE(lz77_level(9).lazy);
}

class LevelRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LevelRoundTrip, EveryLevelRoundTrips) {
  const int level = GetParam();
  const auto data = wordy(200000, 7);
  const auto gz = gzip_compress(data, lz77_level(level));
  EXPECT_EQ(gzip_decompress(gz), data) << "level " << level;
  EXPECT_LT(gz.size(), data.size() / 2) << "level " << level;
}

INSTANTIATE_TEST_SUITE_P(AllLevels, LevelRoundTrip, ::testing::Range(1, 10));

TEST(Levels, HigherLevelNeverMuchWorse) {
  // Ratios should be weakly improving; allow 2% slack for heuristics.
  const auto data = wordy(300000, 9);
  std::size_t prev = static_cast<std::size_t>(-1);
  for (int l = 1; l <= 9; ++l) {
    const auto out = deflate_compress(data, lz77_level(l));
    EXPECT_LT(out.size(), prev + prev / 50) << "level " << l;
    prev = out.size();
  }
}

TEST(Levels, Level9BeatsLevel1OnRepetitiveData) {
  const auto data = wordy(300000, 11);
  const auto fast = deflate_compress(data, lz77_level(1)).size();
  const auto best = deflate_compress(data, lz77_level(9)).size();
  EXPECT_LT(best, fast);
}

}  // namespace
