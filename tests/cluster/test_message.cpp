#include "cluster/message.hpp"

#include <gtest/gtest.h>

#include "anahy/types.hpp"

namespace {

using namespace cluster;

TEST(Message, TaskShipRoundTrip) {
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const Message m = make_task_ship(3, 42, "compress_chunk", payload);
  const Message d = decode(encode(m));
  EXPECT_EQ(d.type, MsgType::kTaskShip);
  EXPECT_EQ(d.task.origin, 3u);
  EXPECT_EQ(d.task.task_id, 42u);
  EXPECT_EQ(d.task.function, "compress_chunk");
  EXPECT_EQ(d.task.payload, payload);
}

TEST(Message, ResultRoundTripOkAndError) {
  const Message ok = decode(encode(make_result(7, true, {1, 2})));
  EXPECT_EQ(ok.type, MsgType::kResult);
  EXPECT_TRUE(ok.result.ok);
  EXPECT_EQ(ok.result.task_id, 7u);

  const std::string error = "unregistered function";
  const Message bad = decode(encode(
      make_result(8, false, {error.begin(), error.end()})));
  EXPECT_FALSE(bad.result.ok);
  EXPECT_EQ(std::string(bad.result.payload.begin(), bad.result.payload.end()),
            error);
}

TEST(Message, ControlMessagesRoundTrip) {
  EXPECT_EQ(decode(encode(make_steal_request(5))).type,
            MsgType::kStealRequest);
  EXPECT_EQ(decode(encode(make_steal_request(5))).steal.requester, 5u);
  EXPECT_EQ(decode(encode(make_steal_none())).type, MsgType::kStealNone);
  EXPECT_EQ(decode(encode(make_shutdown())).type, MsgType::kShutdown);
}

TEST(Message, StatsQueryRoundTrip) {
  const Message d = decode(encode(make_stats_query(4, 99)));
  EXPECT_EQ(d.type, MsgType::kStatsQuery);
  EXPECT_EQ(d.stats_query.client, 4u);
  EXPECT_EQ(d.stats_query.request_id, 99u);
}

TEST(Message, StatsReplyRoundTrip) {
  const std::string text =
      "anahy_observe_epoch 3\nanahy_observe_anomaly{code=\"ANAHY-P001\"} 1\n";
  const Message d = decode(encode(make_stats_reply(99, text)));
  EXPECT_EQ(d.type, MsgType::kStatsReply);
  EXPECT_EQ(d.stats_reply.request_id, 99u);
  EXPECT_EQ(d.stats_reply.text, text);

  const Message empty = decode(encode(make_stats_reply(1, "")));
  EXPECT_TRUE(empty.stats_reply.text.empty());
}

TEST(Message, RejectsTruncatedStatsReply) {
  auto frame = encode(make_stats_reply(7, "some exposition text"));
  frame.resize(frame.size() - 5);
  EXPECT_THROW((void)decode(frame), std::runtime_error);
}

TEST(Message, RejectsUnknownType) {
  const std::vector<std::uint8_t> junk = {99};
  EXPECT_THROW((void)decode(junk), std::runtime_error);
}

TEST(Message, RejectsTrailingGarbage) {
  auto frame = encode(make_steal_none());
  frame.push_back(0xFF);
  EXPECT_THROW((void)decode(frame), std::runtime_error);
}

TEST(Message, RejectsTruncatedTaskShip) {
  auto frame = encode(make_task_ship(1, 2, "fn", {1, 2, 3, 4}));
  frame.resize(frame.size() - 3);
  EXPECT_THROW((void)decode(frame), std::runtime_error);
}

TEST(Message, EmptyPayloadIsLegal) {
  const Message d = decode(encode(make_task_ship(0, 1, "noop", {})));
  EXPECT_TRUE(d.task.payload.empty());
}

// --- Hardened envelope: magic + version + length + CRC-32 ------------------

TEST(Message, FrameCarriesTheMagicBytes) {
  const auto frame = encode(make_steal_none());
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  // Little-endian u16 0xA4A1.
  EXPECT_EQ(frame[0], 0xA1);
  EXPECT_EQ(frame[1], 0xA4);
  EXPECT_EQ(frame[2], kFrameVersion);
}

TEST(Message, BitCorruptionTripsTheChecksum) {
  // Flip every single bit of the body in turn: CRC-32 must catch each one
  // (single-bit flips are its bread and butter).
  const auto clean = encode(make_task_ship(1, 2, "fn", {1, 2, 3}));
  for (std::size_t bit = kFrameHeaderBytes * 8; bit < clean.size() * 8;
       ++bit) {
    auto frame = clean;
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto d = decode_frame(frame);
    ASSERT_FALSE(d.ok) << "bit " << bit;
    EXPECT_EQ(d.diagnostic.rfind(frame_diag::kChecksum, 0), 0u)
        << d.diagnostic;
  }
}

TEST(Message, BadMagicIsRejectedAsNotAnAnahyFrame) {
  auto frame = encode(make_steal_none());
  frame[0] ^= 0xFF;
  const auto d = decode_frame(frame);
  ASSERT_FALSE(d.ok);
  EXPECT_EQ(d.diagnostic.rfind(frame_diag::kBadMagic, 0), 0u) << d.diagnostic;
}

TEST(Message, ShortAndLengthMismatchedFramesAreTruncations) {
  // Shorter than the envelope itself.
  for (std::size_t n = 0; n < kFrameHeaderBytes; ++n) {
    const std::vector<std::uint8_t> tiny(n, 0xA1);
    const auto d = decode_frame(tiny);
    ASSERT_FALSE(d.ok) << n;
    EXPECT_EQ(d.diagnostic.rfind(frame_diag::kTruncated, 0), 0u)
        << d.diagnostic;
  }
  // Envelope intact but the body shorter than the declared length.
  auto frame = encode(make_stats_reply(7, "some exposition text"));
  frame.resize(frame.size() - 5);
  const auto d = decode_frame(frame);
  ASSERT_FALSE(d.ok);
  EXPECT_EQ(d.diagnostic.rfind(frame_diag::kTruncated, 0), 0u)
      << d.diagnostic;
}

TEST(Message, UnsupportedVersionIsItsOwnDiagnostic) {
  auto frame = encode(make_steal_none());
  frame[2] = kFrameVersion + 1;
  const auto d = decode_frame(frame);
  ASSERT_FALSE(d.ok);
  EXPECT_EQ(d.diagnostic.rfind(frame_diag::kVersion, 0), 0u) << d.diagnostic;
}

TEST(Message, DecodeFrameNeverThrowsOnGarbage) {
  // Arbitrary junk — including junk that passes no header check at all —
  // must come back as a rejection, not UB or an exception.
  const std::vector<std::vector<std::uint8_t>> garbage = {
      {},
      {0x00},
      {0xA1, 0xA4},
      std::vector<std::uint8_t>(11, 0x00),
      std::vector<std::uint8_t>(64, 0xFF),
  };
  for (const auto& g : garbage) {
    const auto d = decode_frame(g);
    EXPECT_FALSE(d.ok);
    EXPECT_EQ(d.diagnostic.rfind("ANAHY-F00", 0), 0u) << d.diagnostic;
  }
}

TEST(Message, PingPongRoundTrip) {
  const Message ping = decode(encode(make_ping(3, 77)));
  EXPECT_EQ(ping.type, MsgType::kPing);
  EXPECT_EQ(ping.ping.from, 3u);
  EXPECT_EQ(ping.ping.token, 77u);

  const Message pong = decode(encode(make_pong(4, 77)));
  EXPECT_EQ(pong.type, MsgType::kPong);
  EXPECT_EQ(pong.ping.from, 4u);
  EXPECT_EQ(pong.ping.token, 77u);
}

TEST(Message, RejuvenateRoundTrip) {
  const Message d = decode(encode(make_rejuvenate(6, 1234)));
  EXPECT_EQ(d.type, MsgType::kRejuvenate);
  EXPECT_EQ(d.rejuv.client, 6u);
  EXPECT_EQ(d.rejuv.request_id, 1234u);
}

TEST(Message, RejectsTruncatedRejuvenate) {
  auto frame = encode(make_rejuvenate(1, 2));
  frame.resize(frame.size() - 4);
  EXPECT_FALSE(decode_frame(frame).ok);
}

TEST(Message, RejuvenateCarriesItsTargetNode) {
  // Default: self-addressed.
  EXPECT_EQ(decode(encode(make_rejuvenate(6, 1))).rejuv.target,
            kRejuvTargetSelf);
  // Mesh addressing: any node reachable through any other (docs/MESH.md).
  const Message d = decode(encode(make_rejuvenate(6, 2, /*target=*/4)));
  EXPECT_EQ(d.rejuv.target, 4u);
}

TEST(Message, JobDoneFlagsRoundTrip) {
  const Message d =
      decode(encode(make_job_done(9, anahy::kAborted, 0, {},
                                  kJobDoneWithdrawn)));
  EXPECT_EQ(d.type, MsgType::kJobDone);
  EXPECT_EQ(d.job_done.flags, kJobDoneWithdrawn);
  // Flags default to zero so pre-mesh peers decode pre-mesh frames.
  EXPECT_EQ(decode(encode(make_job_done(9, 0, 0, {1, 2}))).job_done.flags, 0);
}

TEST(Message, JobStealRoundTrip) {
  const Message d = decode(encode(make_job_steal(2, 404, 1, 8)));
  EXPECT_EQ(d.type, MsgType::kJobSteal);
  EXPECT_EQ(d.job_steal.thief, 2u);
  EXPECT_EQ(d.job_steal.token, 404u);
  EXPECT_EQ(d.job_steal.priority, 1);
  EXPECT_EQ(d.job_steal.max_jobs, 8u);
}

TEST(Message, JobMigrateRoundTripPreservesWholeJobs) {
  std::vector<JobSubmitMsg> jobs(2);
  jobs[0].client = 7;
  jobs[0].request_id = 100;
  jobs[0].priority = 2;
  jobs[0].timeout_ns = 5'000'000;
  jobs[0].check = 1;
  jobs[0].function = "fn_a";
  jobs[0].payload = {1, 2, 3};
  jobs[1].client = 7;
  jobs[1].request_id = 101;
  jobs[1].function = "fn_b";
  const Message d = decode(encode(make_job_migrate(3, 404, jobs)));
  EXPECT_EQ(d.type, MsgType::kJobMigrate);
  EXPECT_EQ(d.job_migrate.from, 3u);
  EXPECT_EQ(d.job_migrate.token, 404u);
  ASSERT_EQ(d.job_migrate.jobs.size(), 2u);
  EXPECT_EQ(d.job_migrate.jobs[0].client, 7u);
  EXPECT_EQ(d.job_migrate.jobs[0].request_id, 100u);
  EXPECT_EQ(d.job_migrate.jobs[0].priority, 2);
  EXPECT_EQ(d.job_migrate.jobs[0].timeout_ns, 5'000'000);
  EXPECT_EQ(d.job_migrate.jobs[0].check, 1);
  EXPECT_EQ(d.job_migrate.jobs[0].function, "fn_a");
  EXPECT_EQ(d.job_migrate.jobs[0].payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(d.job_migrate.jobs[1].request_id, 101u);
  EXPECT_EQ(d.job_migrate.jobs[1].function, "fn_b");

  // The negative grant: zero jobs is a legal, meaningful frame.
  const Message none = decode(encode(make_job_migrate(3, 405, {})));
  EXPECT_TRUE(none.job_migrate.jobs.empty());
}

TEST(Message, MeshGossipRoundTrip) {
  std::vector<MeshGossipEntry> entries(2);
  entries[0].client = 9;
  entries[0].request_id = 1;
  entries[0].frame = encode(make_job_done(1, 0, 0, {42}));
  entries[1].client = 9;
  entries[1].request_id = 2;
  entries[1].frame = encode(make_job_done(2, anahy::kFaulted, 0, {}));
  const Message d = decode(encode(make_mesh_gossip(5, entries)));
  EXPECT_EQ(d.type, MsgType::kMeshGossip);
  EXPECT_EQ(d.gossip.from, 5u);
  ASSERT_EQ(d.gossip.entries.size(), 2u);
  EXPECT_EQ(d.gossip.entries[0].client, 9u);
  EXPECT_EQ(d.gossip.entries[0].request_id, 1u);
  // The carried frame replays verbatim: decode it and check the verdict.
  const Message inner = decode(d.gossip.entries[0].frame);
  EXPECT_EQ(inner.type, MsgType::kJobDone);
  EXPECT_EQ(inner.job_done.payload, (std::vector<std::uint8_t>{42}));
  EXPECT_EQ(decode(d.gossip.entries[1].frame).job_done.error,
            static_cast<std::uint32_t>(anahy::kFaulted));
}

TEST(Message, JobStartedRoundTrip) {
  const Message d = decode(encode(make_job_started(2, 909)));
  EXPECT_EQ(d.type, MsgType::kJobStarted);
  EXPECT_EQ(d.job_started.node, 2u);
  EXPECT_EQ(d.job_started.request_id, 909u);
}

TEST(Message, RejectsTruncatedMeshFrames) {
  for (const Message& m :
       {make_job_steal(1, 2, 2, 4), make_job_migrate(1, 2, {}),
        make_mesh_gossip(1, {{3, 4, {9, 9}}}), make_job_started(1, 2)}) {
    auto frame = encode(m);
    frame.resize(frame.size() - 2);
    EXPECT_FALSE(decode_frame(frame).ok);
  }
}

}  // namespace
