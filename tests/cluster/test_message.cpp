#include "cluster/message.hpp"

#include <gtest/gtest.h>

namespace {

using namespace cluster;

TEST(Message, TaskShipRoundTrip) {
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const Message m = make_task_ship(3, 42, "compress_chunk", payload);
  const Message d = decode(encode(m));
  EXPECT_EQ(d.type, MsgType::kTaskShip);
  EXPECT_EQ(d.task.origin, 3u);
  EXPECT_EQ(d.task.task_id, 42u);
  EXPECT_EQ(d.task.function, "compress_chunk");
  EXPECT_EQ(d.task.payload, payload);
}

TEST(Message, ResultRoundTripOkAndError) {
  const Message ok = decode(encode(make_result(7, true, {1, 2})));
  EXPECT_EQ(ok.type, MsgType::kResult);
  EXPECT_TRUE(ok.result.ok);
  EXPECT_EQ(ok.result.task_id, 7u);

  const std::string error = "unregistered function";
  const Message bad = decode(encode(
      make_result(8, false, {error.begin(), error.end()})));
  EXPECT_FALSE(bad.result.ok);
  EXPECT_EQ(std::string(bad.result.payload.begin(), bad.result.payload.end()),
            error);
}

TEST(Message, ControlMessagesRoundTrip) {
  EXPECT_EQ(decode(encode(make_steal_request(5))).type,
            MsgType::kStealRequest);
  EXPECT_EQ(decode(encode(make_steal_request(5))).steal.requester, 5u);
  EXPECT_EQ(decode(encode(make_steal_none())).type, MsgType::kStealNone);
  EXPECT_EQ(decode(encode(make_shutdown())).type, MsgType::kShutdown);
}

TEST(Message, StatsQueryRoundTrip) {
  const Message d = decode(encode(make_stats_query(4, 99)));
  EXPECT_EQ(d.type, MsgType::kStatsQuery);
  EXPECT_EQ(d.stats_query.client, 4u);
  EXPECT_EQ(d.stats_query.request_id, 99u);
}

TEST(Message, StatsReplyRoundTrip) {
  const std::string text =
      "anahy_observe_epoch 3\nanahy_observe_anomaly{code=\"ANAHY-P001\"} 1\n";
  const Message d = decode(encode(make_stats_reply(99, text)));
  EXPECT_EQ(d.type, MsgType::kStatsReply);
  EXPECT_EQ(d.stats_reply.request_id, 99u);
  EXPECT_EQ(d.stats_reply.text, text);

  const Message empty = decode(encode(make_stats_reply(1, "")));
  EXPECT_TRUE(empty.stats_reply.text.empty());
}

TEST(Message, RejectsTruncatedStatsReply) {
  auto frame = encode(make_stats_reply(7, "some exposition text"));
  frame.resize(frame.size() - 5);
  EXPECT_THROW((void)decode(frame), std::runtime_error);
}

TEST(Message, RejectsUnknownType) {
  const std::vector<std::uint8_t> junk = {99};
  EXPECT_THROW((void)decode(junk), std::runtime_error);
}

TEST(Message, RejectsTrailingGarbage) {
  auto frame = encode(make_steal_none());
  frame.push_back(0xFF);
  EXPECT_THROW((void)decode(frame), std::runtime_error);
}

TEST(Message, RejectsTruncatedTaskShip) {
  auto frame = encode(make_task_ship(1, 2, "fn", {1, 2, 3, 4}));
  frame.resize(frame.size() - 3);
  EXPECT_THROW((void)decode(frame), std::runtime_error);
}

TEST(Message, EmptyPayloadIsLegal) {
  const Message d = decode(encode(make_task_ship(0, 1, "noop", {})));
  EXPECT_TRUE(d.task.payload.empty());
}

}  // namespace
