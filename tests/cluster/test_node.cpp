// End-to-end cluster tests: fork/join across nodes, task migration via
// inter-node stealing, error propagation, and a distributed application.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "apps/agzip_app.hpp"
#include "cluster/cluster_lib.hpp"
#include "compress/compress.hpp"

namespace {

using namespace cluster;
using namespace std::chrono_literals;

std::shared_ptr<Registry> math_registry() {
  auto reg = std::make_shared<Registry>();
  reg->add("sum_bytes", [](std::span<const std::uint8_t> in) {
    std::uint64_t sum = 0;
    for (const auto b : in) sum += b;
    ByteWriter w;
    w.u64(sum);
    return w.take();
  });
  reg->add("echo", [](std::span<const std::uint8_t> in) {
    return std::vector<std::uint8_t>(in.begin(), in.end());
  });
  reg->add("boom", [](std::span<const std::uint8_t>) -> std::vector<std::uint8_t> {
    throw std::runtime_error("intentional failure");
  });
  reg->add("spin", [](std::span<const std::uint8_t> in) {
    volatile std::uint64_t acc = 0;
    ByteReader r(in);
    const std::uint64_t spins = r.u64();
    for (std::uint64_t i = 0; i < spins; ++i) acc = acc + i;
    ByteWriter w;
    w.u64(acc);
    return w.take();
  });
  return reg;
}

Cluster::Options mem_cluster(int nodes) {
  Cluster::Options o;
  o.nodes = nodes;
  o.fabric = FabricKind::kMemory;
  o.node.num_vps = 2;
  return o;
}

TEST(ClusterRegistry, AddLookupAndDuplicates) {
  Registry reg;
  EXPECT_TRUE(reg.add("f", [](std::span<const std::uint8_t>) {
    return std::vector<std::uint8_t>{};
  }));
  EXPECT_FALSE(reg.add("f", [](std::span<const std::uint8_t>) {
    return std::vector<std::uint8_t>{1};
  }));
  EXPECT_TRUE(reg.contains("f"));
  EXPECT_FALSE(reg.contains("g"));
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_THROW((void)reg.get("g"), std::out_of_range);
}

TEST(ClusterNodeTest, SingleNodeForkJoin) {
  Cluster cl(mem_cluster(1), math_registry());
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto id = cl.node(0).fork("sum_bytes", payload);
  const auto out = cl.node(0).join(id);
  ByteReader r(out);
  EXPECT_EQ(r.u64(), 15u);
}

TEST(ClusterNodeTest, ManyTasksAllComplete) {
  Cluster cl(mem_cluster(1), math_registry());
  std::vector<GlobalTaskId> ids;
  for (std::uint8_t i = 0; i < 100; ++i)
    ids.push_back(cl.node(0).fork("echo", {i}));
  for (std::uint8_t i = 0; i < 100; ++i) {
    const auto out = cl.node(0).join(ids[i]);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], i);
  }
}

TEST(ClusterNodeTest, ErrorsPropagateToJoin) {
  Cluster cl(mem_cluster(1), math_registry());
  const auto id = cl.node(0).fork("boom", {});
  EXPECT_THROW((void)cl.node(0).join(id), std::runtime_error);
}

TEST(ClusterNodeTest, UnknownFunctionReportsError) {
  Cluster cl(mem_cluster(1), math_registry());
  const auto id = cl.node(0).fork("no_such_fn", {});
  EXPECT_THROW((void)cl.node(0).join(id), std::runtime_error);
}

TEST(ClusterNodeTest, JoinAtWrongNodeIsRejected) {
  Cluster cl(mem_cluster(2), math_registry());
  const auto id = cl.node(0).fork("echo", {1});
  EXPECT_THROW((void)cl.node(1).join(id), std::invalid_argument);
  (void)cl.node(0).join(id);
}

TEST(ClusterNodeTest, IdleNodesStealWork) {
  // All tasks forked at node 0; idle peers must pull some via stealing.
  Cluster cl(mem_cluster(3), math_registry());
  std::vector<GlobalTaskId> ids;
  ByteWriter w;
  w.u64(2'000'000);  // enough spinning that stealing has time to happen
  const auto payload = w.take();
  for (int i = 0; i < 24; ++i)
    ids.push_back(cl.node(0).fork("spin", payload));
  // Peers start their pumps (they only auto-start on fork).
  cl.node(1).start();
  cl.node(2).start();
  for (const auto& id : ids) (void)cl.node(0).join(id);

  const auto s1 = cl.node(1).stats();
  const auto s2 = cl.node(2).stats();
  EXPECT_GT(s1.tasks_received + s2.tasks_received, 0u)
      << "no task migrated despite idle peers";
  const auto s0 = cl.node(0).stats();
  EXPECT_GT(s0.tasks_shipped_out, 0u);
  EXPECT_EQ(s0.tasks_forked, 24u);
}

TEST(ClusterNodeTest, StealDisabledKeepsWorkLocal) {
  Cluster::Options o = mem_cluster(2);
  o.node.steal_enabled = false;
  Cluster cl(o, math_registry());
  cl.node(1).start();
  std::vector<GlobalTaskId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(cl.node(0).fork("echo", {9}));
  for (const auto& id : ids) (void)cl.node(0).join(id);
  EXPECT_EQ(cl.node(0).stats().tasks_shipped_out, 0u);
  EXPECT_EQ(cl.node(1).stats().tasks_received, 0u);
}

TEST(ClusterNodeTest, ForksFromEveryNodeConcurrently) {
  Cluster cl(mem_cluster(3), math_registry());
  std::vector<std::thread> users;
  std::atomic<int> failures{0};
  for (int n = 0; n < 3; ++n) {
    users.emplace_back([&, n] {
      for (std::uint8_t i = 0; i < 30; ++i) {
        const auto id = cl.node(n).fork("echo", {i});
        const auto out = cl.node(n).join(id);
        if (out.size() != 1 || out[0] != i) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : users) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ClusterNodeTest, WorksOverRealTcpSockets) {
  Cluster::Options o = mem_cluster(2);
  o.fabric = FabricKind::kTcp;
  Cluster cl(o, math_registry());
  cl.node(1).start();
  std::vector<GlobalTaskId> ids;
  for (std::uint8_t i = 0; i < 20; ++i)
    ids.push_back(cl.node(0).fork("echo", {i}));
  for (std::uint8_t i = 0; i < 20; ++i)
    EXPECT_EQ(cl.node(0).join(ids[i])[0], i);
}

TEST(ClusterNodeTest, SimulatedLatencyStillCorrect) {
  Cluster::Options o = mem_cluster(2);
  o.latency = 2ms;  // a LAN-ish round trip at our scale
  Cluster cl(o, math_registry());
  cl.node(1).start();
  const auto id = cl.node(0).fork("sum_bytes", {10, 20, 30});
  const auto out = cl.node(0).join(id);
  ByteReader r(out);
  EXPECT_EQ(r.u64(), 60u);
}

TEST(ClusterApp, DistributedCompressionMatchesLocal) {
  // The paper's future-work scenario: the compressor's streams executed
  // across cluster nodes, results identical to the local run.
  auto reg = std::make_shared<Registry>();
  reg->add("gzip_chunk", [](std::span<const std::uint8_t> in) {
    return compress::gzip_wrap(compress::deflate_compress(in),
                               compress::crc32(in),
                               static_cast<std::uint32_t>(in.size()));
  });

  Cluster cl(mem_cluster(3), reg);
  cl.node(1).start();
  cl.node(2).start();

  const auto data = apps::make_binary_workload(256 * 1024);
  const auto chunks = apps::split_chunks(data.size(), 6);
  std::vector<GlobalTaskId> ids;
  for (const auto& c : chunks) {
    std::vector<std::uint8_t> payload(data.begin() + static_cast<std::ptrdiff_t>(c.offset),
                                      data.begin() + static_cast<std::ptrdiff_t>(c.offset + c.size));
    ids.push_back(cl.node(0).fork("gzip_chunk", std::move(payload)));
  }
  std::vector<std::uint8_t> gz;
  for (const auto& id : ids) {
    const auto member = cl.node(0).join(id);
    gz.insert(gz.end(), member.begin(), member.end());
  }
  EXPECT_EQ(compress::gzip_decompress(gz), data);
  EXPECT_EQ(compress::gzip_member_count(gz), chunks.size());
}

}  // namespace
