// Distributed application tests: the paper's workloads executed across
// cluster nodes, with results identical to the local sequential runs.
#include <gtest/gtest.h>

#include "cluster/cluster_lib.hpp"
#include "raytracer/raytracer.hpp"

namespace {

using namespace cluster;

/// render_band payload: scene text | width | height | y0 | y1.
/// Result: RGB8 bytes of rows [y0, y1).
std::vector<std::uint8_t> render_band_fn(std::span<const std::uint8_t> in) {
  ByteReader r(in);
  const std::string scene_text = r.str();
  const int width = static_cast<int>(r.u32());
  const int height = static_cast<int>(r.u32());
  const int y0 = static_cast<int>(r.u32());
  const int y1 = static_cast<int>(r.u32());

  const auto sf = raytracer::parse_scene_string(scene_text);
  const auto camera = sf.camera(static_cast<double>(width) / height);
  raytracer::Framebuffer fb(width, height);
  raytracer::render_rows(sf.scene, camera, fb, y0, y1);

  const auto rgb = fb.to_rgb8();
  const std::size_t row_bytes = static_cast<std::size_t>(width) * 3;
  ByteWriter w;
  w.bytes({rgb.data() + static_cast<std::size_t>(y0) * row_bytes,
           static_cast<std::size_t>(y1 - y0) * row_bytes});
  return w.take();
}

std::shared_ptr<Registry> render_registry() {
  auto reg = std::make_shared<Registry>();
  reg->add("render_band", render_band_fn);
  return reg;
}

/// Serialize the procedural benchmark scene once (the cluster nodes each
/// re-parse it, exactly like shipping a scene file to render farm nodes).
std::string bench_scene_text() {
  const auto bench = raytracer::build_bench_scene(30);
  raytracer::SceneFile sf;
  sf.scene = bench.scene;
  // Match build_bench_scene's camera parameters (aspect handled at parse).
  sf.cam_from = {0.0, 1.2, 2.5};
  sf.cam_at = {0.0, 0.2, -6.0};
  sf.cam_up = {0.0, 1.0, 0.0};
  sf.cam_vfov = 55.0;
  return scene_to_string(sf);
}

TEST(ClusterRaytrace, DistributedBandsMatchLocalRender) {
  constexpr int kSize = 48;
  constexpr int kBands = 6;
  const std::string scene_text = bench_scene_text();

  // Local reference from the same serialized description.
  const auto sf = raytracer::parse_scene_string(scene_text);
  raytracer::Framebuffer reference(kSize, kSize);
  raytracer::render(sf.scene, sf.camera(1.0), reference);
  const auto ref_rgb = reference.to_rgb8();

  Cluster::Options opts;
  opts.nodes = 3;
  opts.node.num_vps = 2;
  Cluster cl(opts, render_registry());
  cl.node(1).start();
  cl.node(2).start();

  const auto bands = raytracer::split_rows(kSize, kBands);
  std::vector<GlobalTaskId> ids;
  for (const auto& band : bands) {
    ByteWriter w;
    w.str(scene_text);
    w.u32(kSize);
    w.u32(kSize);
    w.u32(static_cast<std::uint32_t>(band.y0));
    w.u32(static_cast<std::uint32_t>(band.y1));
    ids.push_back(cl.node(0).fork("render_band", w.take()));
  }

  std::vector<std::uint8_t> assembled;
  for (const auto& id : ids) {
    const auto out = cl.node(0).join(id);
    ByteReader r(out);
    const auto band_rgb = r.bytes();
    assembled.insert(assembled.end(), band_rgb.begin(), band_rgb.end());
  }
  EXPECT_EQ(assembled, ref_rgb);
}

TEST(ClusterRaytrace, ExplicitPlacementWithForkOn) {
  constexpr int kSize = 24;
  const std::string scene_text = bench_scene_text();

  Cluster::Options opts;
  opts.nodes = 2;
  opts.node.num_vps = 1;
  opts.node.steal_enabled = false;  // isolate the placement path
  Cluster cl(opts, render_registry());
  cl.node(1).start();

  ByteWriter w;
  w.str(scene_text);
  w.u32(kSize);
  w.u32(kSize);
  w.u32(0);
  w.u32(kSize);
  const auto id = cl.node(0).fork_on(1, "render_band", w.take());
  const auto out = cl.node(0).join(id);
  EXPECT_FALSE(out.empty());
  // The whole frame must have been rendered remotely.
  EXPECT_EQ(cl.node(1).stats().tasks_received, 1u);
  EXPECT_EQ(cl.node(1).stats().tasks_executed_local, 1u);
  EXPECT_EQ(cl.node(0).stats().tasks_shipped_out, 1u);
}

TEST(ClusterForkOn, ValidatesTarget) {
  Cluster::Options opts;
  opts.nodes = 2;
  Cluster cl(opts, render_registry());
  EXPECT_THROW((void)cl.node(0).fork_on(7, "render_band", {}),
               std::invalid_argument);
  EXPECT_THROW((void)cl.node(0).fork_on(-1, "render_band", {}),
               std::invalid_argument);
}

TEST(ClusterForkOn, SelfTargetFallsBackToLocalFork) {
  auto reg = std::make_shared<Registry>();
  reg->add("echo", [](std::span<const std::uint8_t> in) {
    return std::vector<std::uint8_t>(in.begin(), in.end());
  });
  Cluster::Options opts;
  opts.nodes = 2;
  Cluster cl(opts, reg);
  const auto id = cl.node(0).fork_on(0, "echo", {5});
  EXPECT_EQ(cl.node(0).join(id), (std::vector<std::uint8_t>{5}));
  EXPECT_EQ(cl.node(0).stats().tasks_shipped_out, 0u);
}

}  // namespace
