#include "cluster/transport.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace {

using namespace cluster;
using namespace std::chrono_literals;

class FabricTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::vector<std::unique_ptr<Transport>> make(int n) {
    const std::string kind(GetParam());
    if (kind == "memory") return make_memory_fabric(n);
    if (kind == "epoll") return make_epoll_fabric(n);
    return make_tcp_fabric(n);
  }
};

TEST_P(FabricTest, PointToPointDelivery) {
  auto fabric = make(2);
  fabric[0]->send(1, {1, 2, 3});
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(fabric[1]->recv(frame, 500ms));
  EXPECT_EQ(frame, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_P(FabricTest, RecvTimesOutWhenSilent) {
  auto fabric = make(2);
  std::vector<std::uint8_t> frame;
  EXPECT_FALSE(fabric[0]->recv(frame, 5ms));
}

TEST_P(FabricTest, SelfSendWorks) {
  auto fabric = make(2);
  fabric[0]->send(0, {42});
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(fabric[0]->recv(frame, 500ms));
  EXPECT_EQ(frame, (std::vector<std::uint8_t>{42}));
}

TEST_P(FabricTest, OrderPreservedPerSenderPair) {
  auto fabric = make(2);
  for (std::uint8_t i = 0; i < 50; ++i) fabric[0]->send(1, {i});
  for (std::uint8_t i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(fabric[1]->recv(frame, 500ms));
    EXPECT_EQ(frame[0], i);
  }
}

TEST_P(FabricTest, AllPairsInAMesh) {
  constexpr int kN = 4;
  auto fabric = make(kN);
  for (int src = 0; src < kN; ++src)
    for (int dst = 0; dst < kN; ++dst)
      if (src != dst)
        fabric[static_cast<std::size_t>(src)]->send(
            dst, {static_cast<std::uint8_t>(src * 16 + dst)});

  for (int dst = 0; dst < kN; ++dst) {
    int received = 0;
    std::vector<std::uint8_t> frame;
    while (fabric[static_cast<std::size_t>(dst)]->recv(frame, 200ms)) {
      EXPECT_EQ(frame[0] % 16, dst);
      ++received;
      if (received == kN - 1) break;
    }
    EXPECT_EQ(received, kN - 1) << "node " << dst;
  }
}

TEST_P(FabricTest, LargeFramesSurvive) {
  auto fabric = make(2);
  std::vector<std::uint8_t> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i * 31);
  fabric[0]->send(1, big);
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(fabric[1]->recv(frame, 2s));
  EXPECT_EQ(frame, big);
}

TEST_P(FabricTest, ConcurrentSendersDoNotCorruptFrames) {
  auto fabric = make(3);
  constexpr int kEach = 200;
  auto sender = [&](int src) {
    for (int i = 0; i < kEach; ++i) {
      std::vector<std::uint8_t> frame(17, static_cast<std::uint8_t>(src));
      fabric[static_cast<std::size_t>(src)]->send(2, std::move(frame));
    }
  };
  std::thread t0(sender, 0);
  std::thread t1(sender, 1);
  int got = 0;
  std::vector<std::uint8_t> frame;
  while (got < 2 * kEach && fabric[2]->recv(frame, 1s)) {
    ASSERT_EQ(frame.size(), 17u);
    for (const auto b : frame) EXPECT_EQ(b, frame[0]);  // no interleaving
    ++got;
  }
  t0.join();
  t1.join();
  EXPECT_EQ(got, 2 * kEach);
}

TEST_P(FabricTest, NodeIdentity) {
  auto fabric = make(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fabric[static_cast<std::size_t>(i)]->node_id(), i);
    EXPECT_EQ(fabric[static_cast<std::size_t>(i)]->node_count(), 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Fabrics, FabricTest,
                         ::testing::Values("memory", "tcp", "epoll"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(MemoryFabric, SimulatedLatencyDelaysDelivery) {
  auto fabric = make_memory_fabric(2, 30ms);
  fabric[0]->send(1, {7});
  std::vector<std::uint8_t> frame;
  // Too early: nothing deliverable yet.
  EXPECT_FALSE(fabric[1]->recv(frame, 5ms));
  // Within the latency budget it arrives.
  ASSERT_TRUE(fabric[1]->recv(frame, 500ms));
  EXPECT_EQ(frame[0], 7);
}

}  // namespace
