// The event-loop wire path under a magnifying glass: coalesced writev
// batches, short-IO resume correctness, wire telemetry, and the
// multiplexed AsyncServeClient on top (docs/WIRE.md).
//
// FabricTest (test_transport.cpp) already proves EpollEndpoint is a
// correct Transport. These tests pin the properties that motivated it:
// frames queued together leave in fewer syscalls, partial reads/writes
// resume exactly, and many callers can share one endpoint.
#include "cluster/epoll_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "cluster/serve_frontend.hpp"
#include "cluster/transport.hpp"

namespace {

using namespace cluster;
using namespace std::chrono_literals;

WireCounters counters_of(const Transport& t) {
  const auto* src = dynamic_cast<const WireStatsSource*>(&t);
  EXPECT_NE(src, nullptr);
  return src != nullptr ? src->wire_counters() : WireCounters{};
}

TEST(EpollWire, CountersTallyFramesAndBytes) {
  auto fabric = make_epoll_fabric(2);
  constexpr int kFrames = 100;
  std::size_t payload_bytes = 0;
  for (int i = 0; i < kFrames; ++i) {
    std::vector<std::uint8_t> f(static_cast<std::size_t>(1 + i % 13),
                                static_cast<std::uint8_t>(i));
    payload_bytes += f.size();
    fabric[0]->send(1, std::move(f));
  }
  std::vector<std::uint8_t> frame;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(fabric[1]->recv(frame, 2s)) << i;
    EXPECT_EQ(frame[0], static_cast<std::uint8_t>(i));
  }

  const WireCounters tx = counters_of(*fabric[0]);
  EXPECT_EQ(tx.tx_frames, static_cast<std::uint64_t>(kFrames));
  // Each frame costs its 4-byte prefix on the wire.
  EXPECT_EQ(tx.tx_bytes, payload_bytes + 4u * kFrames);
  EXPECT_GE(tx.writev_calls, 1u);
  EXPECT_LE(tx.writev_calls, tx.tx_frames);

  const WireCounters rx = counters_of(*fabric[1]);
  EXPECT_EQ(rx.rx_frames, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(rx.rx_bytes, payload_bytes + 4u * kFrames);
}

TEST(EpollWire, BurstCoalescesIntoFewerSyscalls) {
  auto fabric = make_epoll_fabric(2);
  // A burst enqueued faster than the loop thread can wake MUST leave in
  // batched writevs — that is the whole point of the outbound queue.
  constexpr int kFrames = 4000;
  for (int i = 0; i < kFrames; ++i)
    fabric[0]->send(1, {static_cast<std::uint8_t>(i), 1, 2, 3});
  std::vector<std::uint8_t> frame;
  for (int i = 0; i < kFrames; ++i) ASSERT_TRUE(fabric[1]->recv(frame, 2s));

  const WireCounters tx = counters_of(*fabric[0]);
  EXPECT_EQ(tx.tx_frames, static_cast<std::uint64_t>(kFrames));
  EXPECT_LT(tx.writev_calls, tx.tx_frames)
      << "a 4000-frame burst never batched: " << tx.writev_calls
      << " writevs for " << tx.tx_frames << " frames";
}

TEST(EpollWire, TinyIoCapDribblesFramesIntact) {
  // 7 bytes per syscall: every frame crosses in pieces, exercising the
  // partial-write resume offsets and the streaming decoder's tail
  // retention on every single transfer.
  EpollOptions opts;
  opts.max_io_bytes = 7;
  auto fabric = make_epoll_fabric(2, opts);

  constexpr int kFrames = 25;
  for (int i = 0; i < kFrames; ++i) {
    std::vector<std::uint8_t> f(40 + static_cast<std::size_t>(i));
    std::iota(f.begin(), f.end(), static_cast<std::uint8_t>(i));
    fabric[0]->send(1, std::move(f));
  }
  std::vector<std::uint8_t> frame;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(fabric[1]->recv(frame, 5s)) << i;
    ASSERT_EQ(frame.size(), 40u + static_cast<std::size_t>(i));
    std::vector<std::uint8_t> want(frame.size());
    std::iota(want.begin(), want.end(), static_cast<std::uint8_t>(i));
    EXPECT_EQ(frame, want) << "frame " << i << " corrupted by short IO";
  }

  const WireCounters tx = counters_of(*fabric[0]);
  const WireCounters rx = counters_of(*fabric[1]);
  EXPECT_GT(tx.tx_partial_writes, 0u);
  EXPECT_GT(rx.rx_partial_reads, 0u);
  EXPECT_GT(tx.writev_calls, tx.tx_frames);  // many dribbles per frame
}

TEST(EpollWire, SelfSendNeverTouchesTheSocket) {
  auto fabric = make_epoll_fabric(2);
  fabric[0]->send(0, {9, 8, 7});
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(fabric[0]->recv(frame, 1s));
  EXPECT_EQ(frame, (std::vector<std::uint8_t>{9, 8, 7}));
  const WireCounters c = counters_of(*fabric[0]);
  EXPECT_EQ(c.writev_calls, 0u);
  EXPECT_EQ(c.tx_frames, 0u);
}

TEST(EpollWire, SendsToADeadPeerAreCountedNotThrown) {
  auto fabric = make_epoll_fabric(2);
  fabric[0]->send(1, {1});  // link is live
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(fabric[1]->recv(frame, 1s));

  fabric[1].reset();  // peer dies; node 0's loop reaps the connection

  // The reap is asynchronous: keep sending until the drop counter moves.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    EXPECT_NO_THROW(fabric[0]->send(1, {2}));
    if (counters_of(*fabric[0]).tx_dropped_dead > 0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "dead-peer sends never hit tx_dropped_dead";
    std::this_thread::sleep_for(1ms);
  }
}

TEST(EpollWire, CounterRowsCarryTheWireNames) {
  auto fabric = make_epoll_fabric(2);
  fabric[0]->send(1, {1, 2, 3});
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(fabric[1]->recv(frame, 1s));

  const auto rows = wire_counter_rows(counters_of(*fabric[0]));
  auto value_of = [&rows](const std::string& name) -> std::uint64_t {
    for (const auto& r : rows)
      if (r.name == name) return r.value;
    ADD_FAILURE() << "missing exposition row " << name;
    return 0;
  };
  EXPECT_GE(value_of("anahy_wire_writev_total"), 1u);
  EXPECT_EQ(value_of("anahy_wire_tx_frames_total"), 1u);
  EXPECT_EQ(value_of("anahy_wire_tx_bytes_total"), 7u);  // 4 prefix + 3
  EXPECT_EQ(value_of("anahy_wire_rx_partial_reads_total"), 0u);
}

// ---------------------------------------------------------------------------
// AsyncServeClient over the event-loop fabric.

std::vector<std::uint8_t> echo(std::span<const std::uint8_t> in) {
  return {in.begin(), in.end()};
}

std::vector<std::uint8_t> sum_bytes(std::span<const std::uint8_t> in) {
  std::uint32_t sum = 0;
  for (const std::uint8_t b : in) sum += b;
  ByteWriter w;
  w.u32(sum);
  return w.take();
}

TEST(AsyncClient, ManyInFlightOverOneEndpoint) {
  auto fabric = make_epoll_fabric(2);
  Registry reg;
  reg.add("echo", echo);
  anahy::serve::ServerOptions sopts;
  sopts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(sopts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  AsyncServeClient client(*fabric[1], /*server_node=*/0);
  constexpr int kJobs = 64;
  std::vector<std::future<AsyncServeClient::Reply>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i)
    futures.push_back(
        client.submit_async("echo", {static_cast<std::uint8_t>(i)}));
  for (int i = 0; i < kJobs; ++i) {
    const auto r = futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(r.error, anahy::kOk);
    ASSERT_EQ(r.payload.size(), 1u);
    EXPECT_EQ(r.payload[0], static_cast<std::uint8_t>(i)) << "cross-talk";
  }
  EXPECT_EQ(client.inflight(), 0u);
}

TEST(AsyncClient, ConcurrentSubmittersShareTheSocket) {
  auto fabric = make_epoll_fabric(2);
  Registry reg;
  reg.add("sum_bytes", sum_bytes);
  anahy::serve::ServerOptions sopts;
  sopts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(sopts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  AsyncServeClient client(*fabric[1], 0);
  constexpr int kThreads = 8;
  constexpr int kEach = 25;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&client, &wrong, t] {
      for (int i = 0; i < kEach; ++i) {
        // Payload of `n` ones sums to n — each caller can check its own.
        const auto n = static_cast<std::size_t>(t * kEach + i + 1);
        const auto r =
            client.call("sum_bytes", std::vector<std::uint8_t>(n, 1));
        if (r.error != anahy::kOk) {
          ++wrong;
          continue;
        }
        ByteReader reader(r.payload);
        if (reader.u32() != n) ++wrong;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(client.inflight(), 0u);
}

TEST(AsyncClient, CallbackFiresBeforeTheFutureResolves) {
  auto fabric = make_epoll_fabric(2);
  Registry reg;
  reg.add("echo", echo);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  AsyncServeClient client(*fabric[1], 0);
  std::atomic<int> called{0};
  std::atomic<int> cb_error{-1};
  auto fut = client.submit_async(
      "echo", {42}, {}, anahy::Priority::kNormal, -1, false,
      [&called, &cb_error](const AsyncServeClient::Reply& r) {
        cb_error = r.error;
        ++called;
      });
  const auto r = fut.get();
  EXPECT_EQ(r.error, anahy::kOk);
  EXPECT_EQ(called.load(), 1);
  EXPECT_EQ(cb_error.load(), anahy::kOk);
}

TEST(AsyncClient, UnreachableServerResolvesDefinitely) {
  auto fabric = make_epoll_fabric(2);  // nothing listening on node 0
  AsyncServeClient client(*fabric[1], 0);
  CallOptions copts;
  copts.deadline = 120'000us;
  copts.initial_backoff = 10'000us;
  const auto r = client.call("echo", {1}, copts);
  EXPECT_EQ(r.error, anahy::kUnreachable);
  EXPECT_GT(client.retries(), 0u);  // it did try again before giving up
  EXPECT_EQ(client.inflight(), 0u);
}

TEST(AsyncClient, DestructionResolvesOrphansUnreachable) {
  auto fabric = make_epoll_fabric(2);  // nothing listening on node 0
  std::future<AsyncServeClient::Reply> orphan;
  {
    AsyncServeClient client(*fabric[1], 0);
    CallOptions copts;
    copts.deadline = 60'000'000us;  // would outlive the client by far
    orphan = client.submit_async("echo", {1}, copts);
  }
  const auto r = orphan.get();  // must not hang
  EXPECT_EQ(r.error, anahy::kUnreachable);
}

TEST(AsyncClient, QueryStatsReturnsExposition) {
  auto fabric = make_epoll_fabric(2);
  Registry reg;
  reg.add("echo", echo);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  AsyncServeClient client(*fabric[1], 0);
  ASSERT_EQ(client.call("echo", {1}).error, anahy::kOk);
  std::string text;
  ASSERT_EQ(client.query_stats(text), anahy::kOk);
  EXPECT_NE(text.find("anahy_"), std::string::npos);
}

TEST(AsyncClient, SaturatesTheTinyIoPath) {
  // Async multiplexing composed with forced short IO: everything still
  // resolves correctly when every frame dribbles across in 16-byte slices.
  EpollOptions opts;
  opts.max_io_bytes = 16;
  auto fabric = make_epoll_fabric(2, opts);
  Registry reg;
  reg.add("echo", echo);
  anahy::serve::ServerOptions sopts;
  sopts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(sopts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  AsyncServeClient client(*fabric[1], 0);
  CallOptions copts;
  copts.deadline = 10'000'000us;
  std::vector<std::future<AsyncServeClient::Reply>> futures;
  constexpr int kJobs = 32;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i)
    futures.push_back(client.submit_async(
        "echo", std::vector<std::uint8_t>(64, static_cast<std::uint8_t>(i)),
        copts));
  for (int i = 0; i < kJobs; ++i) {
    const auto r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.error, anahy::kOk) << i;
    ASSERT_EQ(r.payload.size(), 64u);
    EXPECT_EQ(r.payload[0], static_cast<std::uint8_t>(i));
  }
  EXPECT_GT(counters_of(*fabric[1]).rx_partial_reads, 0u);
}

}  // namespace
