// AsyncServeClient against a failing mesh (docs/MESH.md): orphaned
// requests resolve kUnreachable instead of hanging, and a client that
// reconnects to a *different* node and retries its request ids is
// answered from the replicated done-cache without re-executing bodies.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "anahy/fault/fault.hpp"
#include "cluster/mesh/mesh_node.hpp"
#include "cluster/mesh/router.hpp"

namespace {

using namespace cluster;
using namespace cluster::mesh;
using anahy::fault::FaultProfile;
using anahy::fault::FaultyTransport;
using namespace std::chrono_literals;

TEST(AsyncFailover, OrphanedRequestsResolveUnreachable) {
  // Ranks: 0 = mesh node, 1 = async client. Both endpoints are wrapped
  // so the link can be cut in both directions mid-flight.
  auto fabric = make_memory_fabric(2);
  auto node_ep = std::make_unique<FaultyTransport>(std::move(fabric[0]),
                                                   FaultProfile{});
  auto client_ep = std::make_unique<FaultyTransport>(std::move(fabric[1]),
                                                     FaultProfile{});
  Registry reg;
  std::atomic<std::uint64_t> executions{0};
  reg.add("sleepy", [&executions](std::span<const std::uint8_t> in) {
    executions.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(2ms);
    return std::vector<std::uint8_t>(in.begin(), in.end());
  });
  MeshNodeOptions o;
  o.self = 0;
  o.server.runtime.num_vps = 1;
  MeshNode node(*node_ep, reg, o);

  // Cut the reply direction only: submits keep arriving and executing,
  // but every kJobDone vanishes. The ids are orphans from the client's
  // point of view.
  node_ep->sever(1);

  AsyncServeClient client(*client_ep, /*server_node=*/0);
  CallOptions copts;
  copts.deadline = 400ms;
  std::vector<std::future<AsyncServeClient::Reply>> futures;
  for (int i = 0; i < 5; ++i)
    futures.push_back(client.submit_async("sleepy", {std::uint8_t(i)}, copts));

  // Every future resolves kUnreachable inside the deadline — no hangs,
  // no exceptions, no stuck pending entries.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(5s), std::future_status::ready);
    EXPECT_EQ(f.get().error, anahy::kUnreachable);
  }
  EXPECT_EQ(client.inflight(), 0u);

  // The bodies DID run — once each, the dedup window having eaten the
  // client's retransmissions. The loss was purely on the reply path.
  const auto until = std::chrono::steady_clock::now() + 2s;
  while (executions.load(std::memory_order_relaxed) < 5 &&
         std::chrono::steady_clock::now() < until)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(executions.load(std::memory_order_relaxed), 5u);
  node.stop();
}

TEST(AsyncFailover, ReconnectedClientReplaysFromTheReplicaNotTheBody) {
  // Ranks: 0-1 mesh nodes, 2 router (keeps fences open and gossip
  // flowing), 3 the client endpoint.
  auto fabric = make_memory_fabric(4);
  std::array<Registry, 2> regs;
  std::atomic<std::uint64_t> executions{0};
  std::vector<std::unique_ptr<MeshNode>> nodes;
  for (int i = 0; i < 2; ++i) {
    regs[static_cast<std::size_t>(i)].add(
        "tracked", [&executions](std::span<const std::uint8_t> in) {
          executions.fetch_add(1, std::memory_order_relaxed);
          return std::vector<std::uint8_t>(in.begin(), in.end());
        });
    MeshNodeOptions o;
    o.self = static_cast<std::uint32_t>(i);
    o.peers = {static_cast<std::uint32_t>(1 - i)};
    o.routers = {2};
    o.server.runtime.num_vps = 1;
    nodes.push_back(std::make_unique<MeshNode>(
        *fabric[static_cast<std::size_t>(i)],
        regs[static_cast<std::size_t>(i)], o));
  }
  MeshRouter router(*fabric[2], MeshRouterOptions{{0, 1}});

  const std::vector<std::uint8_t> payload{7, 7, 7};
  AsyncServeClient::Reply first;
  {
    AsyncServeClient client(*fabric[3], /*server_node=*/0);
    first = client.call("tracked", payload);
  }  // "node 0 became unreachable": the client is torn down
  ASSERT_EQ(first.error, anahy::kOk);
  ASSERT_EQ(executions.load(), 1u);

  // The completion gossips into node 1's replica.
  const auto until = std::chrono::steady_clock::now() + 2s;
  while (nodes[1]->counters().replica_entries == 0 &&
         std::chrono::steady_clock::now() < until)
    std::this_thread::sleep_for(1ms);
  ASSERT_GE(nodes[1]->counters().replica_entries, 1u);

  // Reconnect to the OTHER node. The fresh client reuses request id 1
  // from the same endpoint rank, so this is the wire-level retry of the
  // same job — answered from the replica, body not run again.
  AsyncServeClient retry(*fabric[3], /*server_node=*/1);
  const auto second = retry.call("tracked", payload);
  EXPECT_EQ(second.error, anahy::kOk);
  EXPECT_EQ(second.payload, first.payload);
  EXPECT_EQ(executions.load(), 1u);
  EXPECT_EQ(nodes[1]->frontend().replica_hits(), 1u);

  for (auto& n : nodes) n->stop();
  router.stop();
}

}  // namespace
