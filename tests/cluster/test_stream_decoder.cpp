// StreamDecoder: arbitrary stream chunking back into whole frames.
//
// The regression the suite pins: decode_frame used to be exercised one
// complete frame at a time, so nothing proved that a recv() delivering
// two-and-a-half coalesced envelopes yields both complete frames AND
// retains the half for the next feed. That is exactly what the batched
// writev path produces on the receiving side.
#include "cluster/stream_decoder.hpp"

#include <gtest/gtest.h>

#include "cluster/message.hpp"

namespace {

using namespace cluster;

/// One wire unit: 4-byte length prefix + the hardened envelope frame.
std::vector<std::uint8_t> wire_bytes(const Message& msg) {
  const std::vector<std::uint8_t> frame = encode(msg);
  std::vector<std::uint8_t> out(4);
  encode_wire_prefix(static_cast<std::uint32_t>(frame.size()), out.data());
  out.insert(out.end(), frame.begin(), frame.end());
  return out;
}

TEST(StreamDecoder, TwoAndAHalfCoalescedEnvelopesInOneBuffer) {
  const Message m1 = make_ping(7, 111);
  const Message m2 = make_job_done(42, 0, 0, {1, 2, 3});
  const Message m3 = make_stats_reply(9, "exposition text");

  const auto w1 = wire_bytes(m1);
  const auto w2 = wire_bytes(m2);
  const auto w3 = wire_bytes(m3);

  // One buffer: both complete frames plus half of the third.
  std::vector<std::uint8_t> buffer;
  buffer.insert(buffer.end(), w1.begin(), w1.end());
  buffer.insert(buffer.end(), w2.begin(), w2.end());
  const std::size_t half = w3.size() / 2;
  buffer.insert(buffer.end(), w3.begin(), w3.begin() + half);

  StreamDecoder dec;
  dec.feed(buffer.data(), buffer.size());

  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(dec.next(frame));
  DecodeResult d1 = decode_frame(frame);
  ASSERT_TRUE(d1.ok);
  EXPECT_EQ(d1.msg.type, MsgType::kPing);
  EXPECT_EQ(d1.msg.ping.token, 111u);

  ASSERT_TRUE(dec.next(frame));
  DecodeResult d2 = decode_frame(frame);
  ASSERT_TRUE(d2.ok);
  EXPECT_EQ(d2.msg.type, MsgType::kJobDone);
  EXPECT_EQ(d2.msg.job_done.request_id, 42u);
  EXPECT_EQ(d2.msg.job_done.payload, (std::vector<std::uint8_t>{1, 2, 3}));

  // The half envelope is NOT a frame yet — and it is retained, not lost.
  EXPECT_FALSE(dec.next(frame));
  EXPECT_EQ(dec.buffered_bytes(), half);

  // Feeding the rest completes the third frame exactly.
  dec.feed(w3.data() + half, w3.size() - half);
  ASSERT_TRUE(dec.next(frame));
  DecodeResult d3 = decode_frame(frame);
  ASSERT_TRUE(d3.ok);
  EXPECT_EQ(d3.msg.type, MsgType::kStatsReply);
  EXPECT_EQ(d3.msg.stats_reply.text, "exposition text");
  EXPECT_FALSE(dec.next(frame));
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(StreamDecoder, ByteAtATimeDribble) {
  const auto w = wire_bytes(make_job_done(5, 0, 0, {9, 9, 9, 9}));
  StreamDecoder dec;
  std::vector<std::uint8_t> frame;
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    dec.feed(&w[i], 1);
    EXPECT_FALSE(dec.next(frame)) << "completed early at byte " << i;
  }
  dec.feed(&w[w.size() - 1], 1);
  ASSERT_TRUE(dec.next(frame));
  DecodeResult d = decode_frame(frame);
  ASSERT_TRUE(d.ok);
  EXPECT_EQ(d.msg.job_done.request_id, 5u);
}

TEST(StreamDecoder, PrefixSplitAcrossFeeds) {
  const auto w = wire_bytes(make_ping(1, 2));
  StreamDecoder dec;
  std::vector<std::uint8_t> frame;
  dec.feed(w.data(), 2);  // half the length prefix
  EXPECT_FALSE(dec.next(frame));
  EXPECT_EQ(dec.buffered_bytes(), 2u);
  dec.feed(w.data() + 2, w.size() - 2);
  ASSERT_TRUE(dec.next(frame));
  EXPECT_TRUE(decode_frame(frame).ok);
}

TEST(StreamDecoder, ZeroLengthFrame) {
  std::uint8_t prefix[4];
  encode_wire_prefix(0, prefix);
  StreamDecoder dec;
  dec.feed(prefix, 4);
  std::vector<std::uint8_t> frame{1, 2, 3};  // must be overwritten
  ASSERT_TRUE(dec.next(frame));
  EXPECT_TRUE(frame.empty());
}

TEST(StreamDecoder, ManyFramesOneFeed) {
  std::vector<std::uint8_t> buffer;
  constexpr int kFrames = 100;
  for (int i = 0; i < kFrames; ++i) {
    const auto w = wire_bytes(make_ping(0, static_cast<std::uint64_t>(i)));
    buffer.insert(buffer.end(), w.begin(), w.end());
  }
  StreamDecoder dec;
  dec.feed(buffer.data(), buffer.size());
  std::vector<std::uint8_t> frame;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(dec.next(frame)) << i;
    DecodeResult d = decode_frame(frame);
    ASSERT_TRUE(d.ok);
    EXPECT_EQ(d.msg.ping.token, static_cast<std::uint64_t>(i));
  }
  EXPECT_FALSE(dec.next(frame));
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(StreamDecoder, HostileLengthOverflows) {
  std::uint8_t prefix[4];
  encode_wire_prefix(kMaxWireFrameBytes + 1, prefix);
  StreamDecoder dec;
  dec.feed(prefix, 4);
  std::vector<std::uint8_t> frame;
  EXPECT_FALSE(dec.next(frame));
  EXPECT_TRUE(dec.overflowed());
}

}  // namespace
