#include "cluster/serialize.hpp"

#include <gtest/gtest.h>

namespace {

using namespace cluster;

TEST(Serialize, ScalarsRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  const auto buf = w.take();
  EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  const auto buf = w.take();
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(Serialize, BytesAndStringsRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 0, 255};
  w.bytes(blob);
  w.str("athread");
  w.str("");  // empty string is legal
  const auto buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_EQ(r.str(), "athread");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, TruncatedReadsThrow) {
  ByteWriter w;
  w.u32(42);
  const auto buf = w.take();
  ByteReader r(buf);
  (void)r.u16();
  EXPECT_THROW((void)r.u32(), std::runtime_error);  // only 2 bytes left
}

TEST(Serialize, TruncatedBlockThrows) {
  ByteWriter w;
  w.u32(100);  // claims a 100-byte block with no payload behind it
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW((void)r.bytes(), std::runtime_error);
}

TEST(Serialize, RemainingTracksConsumption) {
  ByteWriter w;
  w.u64(7);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

}  // namespace
