// Multi-process cluster integration: spawns real worker processes (the
// cluster_multiprocess example binary) and bootstraps a TCP cluster with
// the coordinator running inside this test.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>

#include "cluster/cluster_lib.hpp"

#ifndef ANAHY_WORKER_BINARY
#define ANAHY_WORKER_BINARY ""
#endif

namespace {

using namespace cluster;

std::uint16_t pick_port() {
  // Spread across runs; collisions just fail fast and loudly.
  return static_cast<std::uint16_t>(
      20000 + (::getpid() * 131 + static_cast<int>(::time(nullptr))) % 20000);
}

TEST(TcpBootstrap, SingleNodeClusterNeedsNoWorkers) {
  auto transport = tcp_coordinator(0, 1);  // degenerate: just this process
  EXPECT_EQ(transport->node_id(), 0);
  EXPECT_EQ(transport->node_count(), 1);
  // Self-send still works.
  transport->send(0, {42});
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(transport->recv(frame, std::chrono::milliseconds(100)));
  EXPECT_EQ(frame, (std::vector<std::uint8_t>{42}));
}

TEST(TcpBootstrap, WorkerRejectsNonNumericHost) {
  EXPECT_THROW((void)tcp_worker("not-an-ip", 1), std::invalid_argument);
}

TEST(TcpBootstrap, CoordinatorRejectsZeroNodes) {
  EXPECT_THROW((void)tcp_coordinator(0, 0), std::invalid_argument);
}

TEST(MultiProcessCluster, BootstrapForkJoinShutdown) {
  const std::string worker_bin = ANAHY_WORKER_BINARY;
  if (worker_bin.empty() || std::system(nullptr) == 0)
    GTEST_SKIP() << "worker binary unavailable";

  const std::uint16_t port = pick_port();
  const std::string launch = worker_bin + " --role=worker --port=" +
                             std::to_string(port) +
                             " > /dev/null 2>&1 &";
  ASSERT_EQ(std::system(launch.c_str()), 0);
  ASSERT_EQ(std::system(launch.c_str()), 0);

  // Coordinator in-process. The workers register "gzip_chunk" (a real
  // gzip member producer); fork tasks under that name and check that the
  // members inflate back to the payloads.
  auto reg = std::make_shared<Registry>();
  reg->add("gzip_chunk", [](std::span<const std::uint8_t> in) {
    // Local fallback identical in *shape* (this test only validates the
    // remote path when a worker steals; either way the result is a valid
    // frame per the registered function of whoever executes it).
    return std::vector<std::uint8_t>(in.begin(), in.end());
  });

  ClusterNode::Options nopts;
  nopts.num_vps = 1;
  ClusterNode coordinator(tcp_coordinator(port, 3), reg, nopts);
  EXPECT_EQ(coordinator.id(), 0);
  EXPECT_EQ(coordinator.cluster_size(), 3);

  // Ship explicitly to each worker so the remote path is definitely
  // exercised (fork_on), then also fork locally-queued tasks.
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto id1 = coordinator.fork_on(1, "gzip_chunk", payload);
  const auto id2 = coordinator.fork_on(2, "gzip_chunk", payload);
  const auto out1 = coordinator.join(id1);
  const auto out2 = coordinator.join(id2);
  // The workers' gzip_chunk wraps the payload as a gzip member.
  EXPECT_FALSE(out1.empty());
  EXPECT_FALSE(out2.empty());
  EXPECT_EQ(out1.size(), out2.size());
  EXPECT_EQ(out1[0], 0x1F);  // gzip magic from the worker-side function
  EXPECT_EQ(out1[1], 0x8B);

  coordinator.broadcast_shutdown();
}

}  // namespace
