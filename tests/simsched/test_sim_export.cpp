#include "simsched/sim_export.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace simsched;

SimResult sample_result() {
  MachineModel m;
  m.processors = 2;
  m.context_switch_cost = 0.0;
  m.task_fork_cost = 0.0;
  m.task_join_cost = 0.0;
  const Program p = make_independent_tasks(std::vector<double>(6, 0.1));
  return simulate_anahy(p, 2, m);
}

TEST(SimExport, CsvHasHeaderAndOneRowPerTask) {
  const SimResult r = sample_result();
  const std::string csv = schedule_csv(r);
  EXPECT_NE(csv.find("task,vp,start,end,duration\n"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            r.schedule.size() + 1);
  EXPECT_NE(csv.find("T0,"), std::string::npos);  // the root flow appears
}

TEST(SimExport, PeakConcurrencyBoundedByVps) {
  const SimResult r = sample_result();
  const std::size_t peak = schedule_peak_concurrency(r);
  EXPECT_GE(peak, 1u);
  // Wall intervals nest when a VP inlines a task inside a join, so the
  // bound is VPs plus the nesting depth; for a flat farm of independent
  // tasks under one root the only nesting is root -> band.
  EXPECT_LE(peak, 3u);
}

TEST(SimExport, UtilizationSummaryCoversEveryVp) {
  const SimResult r = sample_result();
  const std::string summary = utilization_summary(r);
  EXPECT_NE(summary.find("vp0:"), std::string::npos);
  EXPECT_NE(summary.find("vp1:"), std::string::npos);
  EXPECT_NE(summary.find('%'), std::string::npos);
}

TEST(SimExport, EmptyScheduleIsWellFormed) {
  SimResult r;
  EXPECT_EQ(schedule_csv(r), "task,vp,start,end,duration\n");
  EXPECT_EQ(schedule_peak_concurrency(r), 0u);
  EXPECT_TRUE(utilization_summary(r).empty());
}

}  // namespace
