// Simulator validity: conservation laws (makespan >= span, >= work/P,
// busy == work), greedy-scheduling bounds, and the qualitative behaviours
// the bi-processor substitution relies on.
#include "simsched/simsched.hpp"

#include <gtest/gtest.h>

namespace {

using namespace simsched;

MachineModel ideal(int procs) {
  MachineModel m;
  m.processors = procs;
  m.context_switch_cost = 0.0;
  m.thread_create_cost = 0.0;
  m.thread_join_cost = 0.0;
  m.task_fork_cost = 0.0;
  m.task_join_cost = 0.0;
  return m;
}

TEST(SimulateSequential, MakespanIsWork) {
  const Program p = make_independent_tasks({1.0, 2.0, 3.0});
  const SimResult r = simulate_sequential(p);
  EXPECT_DOUBLE_EQ(r.makespan, 6.0);
}

TEST(SimulateSequential, CpuSpeedScalesMakespan) {
  const Program p = make_independent_tasks({2.0, 2.0});
  MachineModel faster = ideal(1);
  faster.cpu_speed = 1.25;
  EXPECT_DOUBLE_EQ(simulate_sequential(p, faster).makespan, 4.0 / 1.25);
  faster.cpu_speed = 0.0;
  EXPECT_THROW((void)simulate_sequential(p, faster), std::invalid_argument);
}

TEST(SimulateAnahy, OneVpOneCpuEqualsSequentialWithoutOverheads) {
  const Program p = make_independent_tasks({1.0, 2.0, 3.0}, 0.5, 0.5);
  const SimResult r = simulate_anahy(p, 1, ideal(1));
  EXPECT_NEAR(r.makespan, p.work(), 1e-9);
  EXPECT_NEAR(r.total_busy, p.work(), 1e-9);
}

TEST(SimulateAnahy, TwoCpusHalveIndependentWork) {
  // 8 equal tasks on 2 CPUs with enough VPs: near-perfect speedup.
  const Program p =
      make_independent_tasks(std::vector<double>(8, 1.0));
  const SimResult r = simulate_anahy(p, 2, ideal(2));
  EXPECT_NEAR(r.makespan, 4.0, 0.05);
}

TEST(SimulateAnahy, GreedyBoundsHold) {
  // Brent/greedy bound: span <= makespan <= work/P + span (plus overheads,
  // zero here) for any greedy schedule.
  for (const int procs : {1, 2, 4}) {
    for (const int vps : {1, 2, 4, 8}) {
      if (vps < procs) continue;
      const Program p = make_fib(12, 0.001, 0.0005);
      const SimResult r = simulate_anahy(p, vps, ideal(procs));
      EXPECT_GE(r.makespan + 1e-9, p.span()) << procs << "p " << vps << "vp";
      EXPECT_GE(r.makespan + 1e-9, p.work() / procs);
      if (vps >= procs) {
        EXPECT_LE(r.makespan, p.work() / procs + p.span() + 1e-9)
            << procs << "p " << vps << "vp";
      }
      EXPECT_NEAR(r.total_busy, p.work(), 1e-6);
    }
  }
}

TEST(SimulateAnahy, WorkIsConservedAcrossPolicies) {
  const Program p = make_fib(10, 0.002, 0.001);
  for (const auto policy :
       {anahy::PolicyKind::kFifo, anahy::PolicyKind::kLifo,
        anahy::PolicyKind::kWorkStealing}) {
    const SimResult r = simulate_anahy(p, 3, ideal(2), policy);
    EXPECT_NEAR(r.total_busy, p.work(), 1e-6) << to_string(policy);
    EXPECT_EQ(r.tasks_executed, p.tasks.size());
  }
}

TEST(SimulateAnahy, StealsHappenOnlyWithMultipleVps) {
  const Program p = make_independent_tasks(std::vector<double>(16, 0.1));
  const SimResult one = simulate_anahy(p, 1, ideal(1));
  EXPECT_EQ(one.steals, 0u);
  const SimResult four = simulate_anahy(p, 4, ideal(2));
  EXPECT_GT(four.steals, 0u);  // workers must steal from VP 0's deque
}

TEST(SimulateAnahy, MoreVpsThanCpusStillCorrect) {
  const Program p = make_independent_tasks(std::vector<double>(20, 0.05));
  const SimResult r = simulate_anahy(p, 20, ideal(2));
  EXPECT_NEAR(r.total_busy, p.work(), 1e-6);
  EXPECT_GE(r.makespan + 1e-9, p.work() / 2);
}

TEST(SimulateAnahy, FourListAlgorithmHandlesDeepFib) {
  const Program p = make_fib(16, 0.0001, 0.00005);
  const SimResult r = simulate_anahy(p, 4, ideal(2));
  EXPECT_EQ(r.tasks_executed, p.tasks.size());
  EXPECT_NEAR(r.total_busy, p.work(), 1e-6);
}

TEST(SimulatePthreads, MatchesWorkOnIdealMachine) {
  const Program p = make_independent_tasks(std::vector<double>(6, 1.0));
  const SimResult r = simulate_pthreads(p, ideal(2));
  EXPECT_NEAR(r.total_busy, p.work(), 1e-6);
  EXPECT_NEAR(r.makespan, 3.0, 0.05);  // 6 tasks on 2 cpus
  EXPECT_EQ(r.threads_created, p.tasks.size());
}

TEST(SimulatePthreads, ThreadCreationCostHurtsOnOneCpu) {
  // The paper's Table 2 shape: on a mono-processor, thread-per-task is
  // strictly slower than sequential; Anahy with 1 VP is not.
  MachineModel m = ideal(1);
  m.thread_create_cost = 0.01;
  m.context_switch_cost = 0.001;
  const Program p = make_independent_tasks(std::vector<double>(64, 0.05));
  const SimResult pthreads = simulate_pthreads(p, m);
  const SimResult anahy = simulate_anahy(p, 1, m);
  const SimResult seq = simulate_sequential(p);
  EXPECT_GT(pthreads.makespan, 1.15 * seq.makespan);
  EXPECT_LT(anahy.makespan, 1.05 * seq.makespan);
}

TEST(SimulatePthreads, OversubscriptionAddsSwitchCost) {
  MachineModel cheap = ideal(1);
  MachineModel costly = ideal(1);
  costly.context_switch_cost = 0.002;
  costly.quantum = 0.01;
  const Program p = make_independent_tasks(std::vector<double>(32, 0.1));
  EXPECT_GT(simulate_pthreads(p, costly).makespan,
            simulate_pthreads(p, cheap).makespan);
}

TEST(SimulateAnahy, BiProcBeatsMonoProc) {
  // The headline substitution: same program, 1 vs 2 simulated CPUs.
  const Program p = make_independent_tasks(std::vector<double>(16, 0.25));
  const double mono = simulate_anahy(p, 4, ideal(1)).makespan;
  const double bi = simulate_anahy(p, 4, ideal(2)).makespan;
  EXPECT_GT(mono / bi, 1.8);
}

TEST(SimulateAnahy, IrregularLoadBenefitsFromMoreVps) {
  // Table 4's qualitative effect: with irregular task costs, more VPs than
  // CPUs cannot hurt much and often helps smooth the tail.
  std::vector<double> costs;
  for (int i = 0; i < 32; ++i) costs.push_back(i % 8 == 0 ? 0.8 : 0.05);
  const Program p = make_independent_tasks(costs);
  const double vps2 = simulate_anahy(p, 2, ideal(2)).makespan;
  const double vps8 = simulate_anahy(p, 8, ideal(2)).makespan;
  EXPECT_LE(vps8, vps2 * 1.10);
}

TEST(OsSim, DetectsDeadlock) {
  // A program whose root joins a task that is never forked... is caught by
  // validate; instead build a legal program and a broken machine: not
  // possible -> test the validator path.
  Program p;
  p.tasks.resize(2);
  p.tasks[0].segments.push_back(Segment::join(1));  // join without fork
  p.tasks[0].segments.push_back(Segment::fork(1));
  EXPECT_THROW((void)simulate_anahy(p, 1, ideal(1)), std::runtime_error);
}

TEST(SimulateAnahy, ScheduleRecordsEveryTaskExactlyOnce) {
  const Program p = make_fib(8, 0.001, 0.0005);
  const SimResult r = simulate_anahy(p, 3, ideal(2));
  ASSERT_EQ(r.schedule.size(), p.tasks.size());
  std::vector<bool> seen(p.tasks.size(), false);
  for (const auto& e : r.schedule) {
    ASSERT_GE(e.task, 0);
    ASSERT_LT(static_cast<std::size_t>(e.task), p.tasks.size());
    EXPECT_FALSE(seen[static_cast<std::size_t>(e.task)]) << "task ran twice";
    seen[static_cast<std::size_t>(e.task)] = true;
    EXPECT_GE(e.vp, 0);
    EXPECT_LT(e.vp, 3);
    EXPECT_LE(e.start, e.end);
    EXPECT_LE(e.end, r.makespan + 1e-12);
  }
}

TEST(SimulateAnahy, ScheduleIntervalsRespectVpSerialization) {
  // A VP executes nested frames, so intervals on one VP may nest, but a
  // task's interval always contains its inlined children's intervals.
  const Program p = make_independent_tasks(std::vector<double>(10, 0.1));
  const SimResult r = simulate_anahy(p, 2, ideal(2));
  for (const auto& a : r.schedule)
    for (const auto& b : r.schedule) {
      if (a.task == b.task || a.vp != b.vp) continue;
      // On the same VP: disjoint or nested, never partially overlapping.
      const bool disjoint = a.end <= b.start + 1e-12 || b.end <= a.start + 1e-12;
      const bool a_in_b = a.start >= b.start - 1e-12 && a.end <= b.end + 1e-12;
      const bool b_in_a = b.start >= a.start - 1e-12 && b.end <= a.end + 1e-12;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "T" << a.task << " and T" << b.task << " partially overlap on vp "
          << a.vp;
    }
}

TEST(SimulateAnahy, RejectsBadArguments) {
  const Program p = make_independent_tasks({1.0});
  EXPECT_THROW((void)simulate_anahy(p, 0, ideal(1)), std::invalid_argument);
  MachineModel m = ideal(0);
  EXPECT_THROW((void)simulate_anahy(p, 1, m), std::invalid_argument);
}

}  // namespace
