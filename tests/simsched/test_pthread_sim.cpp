// Focused tests of the one-thread-per-task POSIX model.
#include "simsched/simsched.hpp"

#include <gtest/gtest.h>

namespace {

using namespace simsched;

MachineModel ideal(int procs) {
  MachineModel m;
  m.processors = procs;
  m.context_switch_cost = 0.0;
  m.thread_create_cost = 0.0;
  m.thread_join_cost = 0.0;
  return m;
}

TEST(PthreadSim, OneThreadPerTaskExactly) {
  const Program p = make_fib(8, 0.001, 0.0005);
  const SimResult r = simulate_pthreads(p, ideal(2));
  EXPECT_EQ(r.threads_created, p.tasks.size());
  EXPECT_EQ(r.tasks_executed, p.tasks.size());
}

TEST(PthreadSim, BlockedJoinChainsResolve) {
  // A pure dependency chain: T0 forks T1 forks T2 ... each joins its
  // child; every join blocks (child must fully finish first).
  Program p;
  constexpr int kDepth = 50;
  p.tasks.resize(kDepth + 1);
  for (int i = 0; i < kDepth; ++i) {
    p.tasks[static_cast<std::size_t>(i)].segments = {
        Segment::compute(0.01), Segment::fork(i + 1), Segment::join(i + 1)};
  }
  p.tasks[kDepth].segments = {Segment::compute(0.01)};
  const SimResult r = simulate_pthreads(p, ideal(4));
  // A chain cannot be parallelized: makespan == work regardless of CPUs.
  EXPECT_NEAR(r.makespan, p.work(), 1e-9);
}

TEST(PthreadSim, ThreadCostsAccrueOnTheParent) {
  MachineModel m = ideal(1);
  m.thread_create_cost = 0.001;
  m.thread_join_cost = 0.0005;
  const Program p = make_independent_tasks(std::vector<double>(10, 0.0));
  const SimResult r = simulate_pthreads(p, m);
  // Ten creates + ten joins of zero-work children: all cost, no work.
  EXPECT_NEAR(r.makespan, 10 * 0.001 + 10 * 0.0005, 1e-9);
}

TEST(PthreadSim, FourCpusQuarterIndependentWork) {
  const Program p = make_independent_tasks(std::vector<double>(16, 1.0));
  const SimResult r = simulate_pthreads(p, ideal(4));
  EXPECT_NEAR(r.makespan, 4.0, 0.05);
  EXPECT_NEAR(r.total_busy, 16.0, 1e-6);
}

TEST(PthreadSim, MakespanRespectsGraphSpan) {
  const Program p = make_fib(10, 0.01, 0.005);
  const SimResult r = simulate_pthreads(p, ideal(8));
  EXPECT_GE(r.makespan + 1e-9, p.span());
}

}  // namespace
