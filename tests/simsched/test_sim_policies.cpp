// Scheduling-order semantics of the simulated kernel, observed through
// the recorded schedule: FIFO runs siblings in creation order, LIFO in
// reverse, and the work-stealing owner path runs newest-first.
#include "simsched/simsched.hpp"

#include <gtest/gtest.h>

#include <map>

namespace {

using namespace simsched;

MachineModel one_cpu() {
  MachineModel m;
  m.processors = 1;
  m.context_switch_cost = 0.0;
  m.task_fork_cost = 0.0;
  m.task_join_cost = 0.0;
  return m;
}

/// Start times of tasks 1..n (the root's children) with a single VP.
std::map<int, double> child_starts(anahy::PolicyKind policy, int n) {
  const Program p =
      make_independent_tasks(std::vector<double>(static_cast<std::size_t>(n), 0.1));
  const SimResult r = simulate_anahy(p, 1, one_cpu(), policy);
  std::map<int, double> starts;
  for (const auto& e : r.schedule)
    if (e.task >= 1) starts[e.task] = e.start;
  return starts;
}

TEST(SimPolicyOrder, JoinOrderDominatesWithInlining) {
  // With one VP the root joins children in creation order and INLINES the
  // join target whenever it is still ready, so all policies produce
  // creation order for a farm. (Policy order shows when tasks are pulled
  // by idle VPs rather than by joins - covered below.)
  for (const auto policy :
       {anahy::PolicyKind::kFifo, anahy::PolicyKind::kLifo,
        anahy::PolicyKind::kWorkStealing}) {
    const auto starts = child_starts(policy, 4);
    ASSERT_EQ(starts.size(), 4u);
    EXPECT_LT(starts.at(1), starts.at(2)) << to_string(policy);
    EXPECT_LT(starts.at(2), starts.at(3)) << to_string(policy);
  }
}

/// A program whose root forks n children and then only computes (no joins
/// until the very end): idle VPs pull from the ready list directly, so
/// the policy's pop order becomes observable.
Program farm_with_busy_root(int n, double root_compute) {
  Program p;
  p.tasks.resize(static_cast<std::size_t>(n) + 1);
  for (int i = 1; i <= n; ++i)
    p.tasks[0].segments.push_back(Segment::fork(i));
  p.tasks[0].segments.push_back(Segment::compute(root_compute));
  for (int i = 1; i <= n; ++i)
    p.tasks[0].segments.push_back(Segment::join(i));
  for (int i = 1; i <= n; ++i)
    p.tasks[static_cast<std::size_t>(i)].segments.push_back(
        Segment::compute(0.05));
  return p;
}

TEST(SimPolicyOrder, FifoWorkerRunsOldestFirst) {
  const Program p = farm_with_busy_root(4, 1.0);
  const SimResult r =
      simulate_anahy(p, 2, one_cpu(), anahy::PolicyKind::kFifo);
  // VP1 (idle) pops while the root computes on VP0: FIFO = task 1 first.
  std::map<int, double> starts;
  for (const auto& e : r.schedule) starts[e.task] = e.start;
  EXPECT_LT(starts.at(1), starts.at(2));
  EXPECT_LT(starts.at(2), starts.at(3));
}

TEST(SimPolicyOrder, LifoWorkerRunsNewestFirst) {
  const Program p = farm_with_busy_root(4, 1.0);
  const SimResult r =
      simulate_anahy(p, 2, one_cpu(), anahy::PolicyKind::kLifo);
  std::map<int, double> starts;
  for (const auto& e : r.schedule) starts[e.task] = e.start;
  EXPECT_GT(starts.at(1), starts.at(4));  // newest (4) runs before oldest (1)
}

TEST(SimPolicyOrder, StealingThiefTakesOldestFromVictim) {
  const Program p = farm_with_busy_root(4, 1.0);
  const SimResult r =
      simulate_anahy(p, 2, one_cpu(), anahy::PolicyKind::kWorkStealing);
  // The idle VP1 steals from VP0's deque top = the OLDEST fork (task 1).
  std::map<int, double> starts;
  for (const auto& e : r.schedule) starts[e.task] = e.start;
  EXPECT_LT(starts.at(1), starts.at(4));
  EXPECT_GE(r.steals, 1u);
}

TEST(SimPolicyOrder, HelpFirstOffStillCompletesChains) {
  // help_first=false must not deadlock: join-inlining keeps 1-VP chains
  // runnable.
  Program p;
  p.tasks.resize(4);
  p.tasks[0].segments = {Segment::fork(1), Segment::join(1)};
  p.tasks[1].segments = {Segment::fork(2), Segment::compute(0.01),
                         Segment::join(2)};
  p.tasks[2].segments = {Segment::fork(3), Segment::compute(0.01),
                         Segment::join(3)};
  p.tasks[3].segments = {Segment::compute(0.01)};
  for (const int vps : {1, 2}) {
    const SimResult r = simulate_anahy(p, vps, one_cpu(),
                                       anahy::PolicyKind::kWorkStealing,
                                       /*help_first=*/false);
    EXPECT_EQ(r.tasks_executed, p.tasks.size()) << vps << " VPs";
  }
}

}  // namespace
