// Direct tests of the discrete-event OS core (threads, quantum,
// round-robin, block/wake, deadlock and livelock detection).
#include "simsched/os_sim.hpp"

#include <gtest/gtest.h>

namespace {

using namespace simsched;

MachineModel machine(int procs, double quantum = 0.01, double switch_cost = 0.0) {
  MachineModel m;
  m.processors = procs;
  m.quantum = quantum;
  m.context_switch_cost = switch_cost;
  return m;
}

/// Agent that computes a fixed list of chunks, then finishes.
class ChunkAgent final : public Agent {
 public:
  explicit ChunkAgent(std::vector<double> chunks)
      : chunks_(std::move(chunks)) {}
  Action next(OsSim&) override {
    if (idx_ == chunks_.size()) return Action::finish();
    return Action::compute(chunks_[idx_++]);
  }

 private:
  std::vector<double> chunks_;
  std::size_t idx_ = 0;
};

/// Agent that blocks immediately and finishes after being woken.
class SleeperAgent final : public Agent {
 public:
  Action next(OsSim&) override {
    if (!slept_) {
      slept_ = true;
      return Action::block();
    }
    return Action::finish();
  }
  bool slept_ = false;
};

/// Agent that computes, then wakes a target thread, then finishes.
class WakerAgent final : public Agent {
 public:
  WakerAgent(int target, double cost) : target_(target), cost_(cost) {}
  Action next(OsSim& sim) override {
    if (!done_) {
      done_ = true;
      return Action::compute(cost_);
    }
    sim.wake(target_);
    return Action::finish();
  }

 private:
  int target_;
  double cost_;
  bool done_ = false;
};

TEST(OsSim, SingleThreadMakespanEqualsWork) {
  OsSim sim(machine(1));
  sim.spawn(std::make_unique<ChunkAgent>(std::vector<double>{0.5, 0.25}));
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 0.75);
  EXPECT_DOUBLE_EQ(sim.busy_time(0), 0.75);
}

TEST(OsSim, TwoThreadsOneCpuSerialize) {
  OsSim sim(machine(1));
  sim.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  sim.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  sim.run();
  EXPECT_NEAR(sim.now(), 2.0, 1e-9);
}

TEST(OsSim, TwoThreadsTwoCpusOverlap) {
  OsSim sim(machine(2));
  sim.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  sim.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  sim.run();
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);
}

TEST(OsSim, BlockedThreadIsWokenAndFinishes) {
  OsSim sim(machine(1));
  const int sleeper = sim.spawn(std::make_unique<SleeperAgent>());
  sim.spawn(std::make_unique<WakerAgent>(sleeper, 0.3));
  sim.run();  // must terminate: waker wakes sleeper
  EXPECT_NEAR(sim.now(), 0.3, 1e-9);
}

TEST(OsSim, DeadlockIsDetected) {
  OsSim sim(machine(1));
  sim.spawn(std::make_unique<SleeperAgent>());  // nobody will wake it
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(OsSim, WakingARunnableThreadIsANoop) {
  OsSim sim(machine(1));
  const int tid = sim.spawn(std::make_unique<ChunkAgent>(std::vector<double>{0.1}));
  sim.wake(tid);  // runnable, not blocked
  sim.run();
  EXPECT_NEAR(sim.now(), 0.1, 1e-9);
}

TEST(OsSim, QuantumForcesInterleaving) {
  // Two 1.0s threads, 0.1s quantum: ~20 dispatches instead of 2.
  OsSim coarse(machine(1, /*quantum=*/10.0));
  coarse.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  coarse.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  coarse.run();

  OsSim fine(machine(1, /*quantum=*/0.1));
  fine.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  fine.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  fine.run();

  EXPECT_GT(fine.context_switches(), coarse.context_switches());
  EXPECT_NEAR(fine.now(), coarse.now(), 1e-9);  // free switches: same time
}

TEST(OsSim, ContextSwitchCostExtendsMakespan) {
  OsSim sim(machine(1, /*quantum=*/0.1, /*switch=*/0.01));
  sim.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  sim.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  sim.run();
  // 2.0s of work + ~20 preemptions x 0.01s.
  EXPECT_GT(sim.now(), 2.05);
  // Useful busy time is unchanged.
  EXPECT_NEAR(sim.busy_time(0) + sim.busy_time(1), 2.0, 1e-9);
}

TEST(OsSim, LivelockGuardTrips) {
  class ZeroAgent final : public Agent {
   public:
    Action next(OsSim&) override { return Action::compute(0.0); }
  };
  OsSim sim(machine(1));
  sim.spawn(std::make_unique<ZeroAgent>());
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(OsSim, RejectsBadMachine) {
  EXPECT_THROW(OsSim sim(machine(0)), std::invalid_argument);
  MachineModel bad = machine(1);
  bad.quantum = 0.0;
  EXPECT_THROW(OsSim sim(bad), std::invalid_argument);
}

TEST(OsSim, CpuSpeedScalesComputeTime) {
  MachineModel fast = machine(1);
  fast.cpu_speed = 2.0;
  OsSim sim(fast);
  sim.spawn(std::make_unique<ChunkAgent>(std::vector<double>{1.0}));
  sim.run();
  EXPECT_NEAR(sim.now(), 0.5, 1e-9);  // 1.0s of work at 2x clock
}

TEST(OsSim, RejectsNonPositiveCpuSpeed) {
  MachineModel bad = machine(1);
  bad.cpu_speed = 0.0;
  EXPECT_THROW(OsSim sim(bad), std::invalid_argument);
}

TEST(OsSim, EmptySimulationTerminatesImmediately) {
  OsSim sim(machine(2));
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(OsSim, ManyThreadsConserveWork) {
  OsSim sim(machine(3, 0.05, 0.0));
  constexpr int kN = 50;
  for (int i = 0; i < kN; ++i)
    sim.spawn(std::make_unique<ChunkAgent>(std::vector<double>{0.2, 0.1}));
  sim.run();
  double busy = 0.0;
  for (int i = 0; i < kN; ++i) busy += sim.busy_time(i);
  EXPECT_NEAR(busy, kN * 0.3, 1e-9);
  EXPECT_GE(sim.now() + 1e-9, kN * 0.3 / 3);
}

}  // namespace
