#include "simsched/program.hpp"

#include <gtest/gtest.h>

namespace {

using namespace simsched;

TEST(Program, IndependentTasksWorkAndSpan) {
  const Program p = make_independent_tasks({1.0, 2.0, 3.0}, 0.5, 0.25);
  EXPECT_DOUBLE_EQ(p.work(), 6.75);
  // Critical path: pre + longest task + post.
  EXPECT_DOUBLE_EQ(p.span(), 0.5 + 3.0 + 0.25);
  p.validate();
}

TEST(Program, SingleTaskShape) {
  const Program p = make_independent_tasks({4.0});
  EXPECT_DOUBLE_EQ(p.work(), 4.0);
  EXPECT_DOUBLE_EQ(p.span(), 4.0);
}

TEST(Program, FibShapeCounts) {
  // fib(5): calls with n>=2 fork once each; fib(6)-1 = 7 forks -> 8 tasks.
  const Program p = make_fib(5, 0.01, 0.001);
  EXPECT_EQ(p.tasks.size(), 8u);
  p.validate();
}

TEST(Program, FibWorkScalesWithCallCount) {
  // Calls(n) = 2*fib(n+1)-1; nodes with n>=2 cost node_cost, leaves
  // (n<2) cost leaf_cost. For n=5: 15 calls = 7 internal + 8 leaves.
  const Program p = make_fib(5, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(p.work(), 7.0 * 1.0 + 8.0 * 0.5);
}

TEST(Program, SpanIsAtMostWork) {
  const Program p = make_fib(10, 0.01, 0.002);
  EXPECT_LE(p.span(), p.work());
  EXPECT_GT(p.span(), 0.0);
}

TEST(Program, FibSpanGrowsLinearly) {
  // The critical path of the fib graph is the leftmost chain: O(n) nodes,
  // far smaller than the exponential work.
  const Program p15 = make_fib(15, 1.0, 1.0);
  EXPECT_LT(p15.span(), 50.0);
  EXPECT_GT(p15.work(), 1500.0);
}

TEST(Program, ValidateCatchesDanglingChild) {
  Program p;
  p.tasks.resize(1);
  p.tasks[0].segments.push_back(Segment::fork(5));
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Program, ValidateCatchesDoubleFork) {
  Program p;
  p.tasks.resize(2);
  p.tasks[0].segments.push_back(Segment::fork(1));
  p.tasks[0].segments.push_back(Segment::fork(1));
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Program, ValidateCatchesUnforkedTask) {
  Program p;
  p.tasks.resize(2);  // task 1 never forked
  p.tasks[0].segments.push_back(Segment::compute(1.0));
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Program, ValidateCatchesSelfFork) {
  Program p;
  p.tasks.resize(1);
  p.tasks[0].segments.push_back(Segment::fork(0));
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Program, ValidateCatchesNegativeCost) {
  Program p;
  p.tasks.resize(1);
  p.tasks[0].segments.push_back(Segment::compute(-1.0));
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
