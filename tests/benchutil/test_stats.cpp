#include "benchutil/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using benchutil::RunStats;

TEST(RunStats, EmptyIsZero) {
  RunStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunStats, SingleSample) {
  RunStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);  // N-1 undefined for N=1
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.median(), 3.5);
}

TEST(RunStats, KnownMeanAndSampleStddev) {
  RunStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunStats, MinMaxAndPercentiles) {
  RunStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(100.0), 100.0, 1e-12);
  EXPECT_NEAR(s.percentile(25.0), 25.75, 1e-12);
}

TEST(RunStats, PercentileRejectsOutOfRange) {
  RunStats s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1.0), std::out_of_range);
  EXPECT_THROW((void)s.percentile(101.0), std::out_of_range);
}

TEST(RunStats, OrderInsensitive) {
  RunStats a, b;
  for (double v : {5.0, 1.0, 3.0}) a.add(v);
  for (double v : {1.0, 3.0, 5.0}) b.add(v);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.stddev(), b.stddev());
  EXPECT_DOUBLE_EQ(a.median(), b.median());
}

}  // namespace
