#include "benchutil/cli.hpp"

#include <gtest/gtest.h>

namespace {

using benchutil::Cli;

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const Cli cli = make({"--reps=7", "--verbose", "--size=2.5"});
  EXPECT_EQ(cli.get_int("reps", 0), 7);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(cli.get_double("size", 0.0), 2.5);
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, FallbacksApplyWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("reps", 42), 42);
  EXPECT_FALSE(cli.has("reps"));
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.get_bool("flag", false));
  EXPECT_TRUE(cli.get_bool("flag", true));
}

TEST(Cli, RejectsPositionalArguments) {
  EXPECT_THROW(make({"positional"}), std::invalid_argument);
}

TEST(Cli, BoolParsesCommonSpellings) {
  EXPECT_TRUE(make({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=no"}).get_bool("a", true));
}

}  // namespace
