#include "benchutil/table.hpp"

#include <gtest/gtest.h>

namespace {

using benchutil::Table;

TEST(Table, NumFormatsFixedDecimals) {
  EXPECT_EQ(Table::num(131.615), "131.615");
  EXPECT_EQ(Table::num(0.1264, 3), "0.126");
  EXPECT_EQ(Table::num(1.0, 1), "1.0");
  EXPECT_EQ(Table::num(2.5, 0), "2");  // round-half-even via printf
}

TEST(Table, RejectsBadShapes) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, TextHasAlignedColumnsAndRule) {
  Table t({"PVs", "Media", "Desvio Padrao"});
  t.add_row({"1", "131.552", "0.124"});
  t.add_row({"10", "144.066", "0.105"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("PVs"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_NE(text.find("144.066"), std::string::npos);
  // Every line of the body must be as wide as the header line.
  const auto first_nl = text.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
}

TEST(Table, CsvRoundTripShape) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, MarkdownHasSeparatorRow) {
  Table t({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.to_markdown(), "| x |\n|---|\n| y |\n");
}

}  // namespace
