#include "benchutil/harness.hpp"

#include <gtest/gtest.h>

namespace {

using namespace benchutil;

TEST(Harness, MeasureCollectsExactlyRepsSamples) {
  int calls = 0;
  const RunStats stats = measure(5, [&] { ++calls; });
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_EQ(calls, 6);  // 5 measured + 1 warm-up
}

TEST(Harness, WarmupCanBeDisabled) {
  int calls = 0;
  const RunStats stats = measure(3, [&] { ++calls; }, /*warmup=*/false);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_EQ(calls, 3);
}

TEST(Harness, SamplesAreNonNegativeAndOrderedStatistics) {
  const RunStats stats = measure(4, [] {
    volatile int x = 0;
    for (int i = 0; i < 10000; ++i) x = x + i;
  });
  EXPECT_GT(stats.mean(), 0.0);
  EXPECT_LE(stats.min(), stats.mean());
  EXPECT_LE(stats.mean(), stats.max());
}

TEST(Harness, AvailableCpusIsPositive) {
  EXPECT_GE(available_cpus(), 1);
}

TEST(Harness, RestrictToCpusRejectsNonPositive) {
  EXPECT_FALSE(restrict_to_cpus(0));
  EXPECT_FALSE(restrict_to_cpus(-3));
}

TEST(Harness, RestrictToCurrentWidthIsANoopThatSucceeds) {
  // Pinning to at least as many CPUs as we already have must succeed on
  // Linux and leave availability unchanged.
  const int before = available_cpus();
  if (restrict_to_cpus(before)) {
    EXPECT_EQ(available_cpus(), before);
  }
}

}  // namespace
