// Seeded chaos for the mesh failover protocol (docs/MESH.md): the
// router<->node links are severed and healed mid-burst and every handle
// must still resolve exactly once — re-routes answered by peers, started
// keys sealed by the victim's done-cache or the gossip replica, and no
// request body ever executing twice.
//
// The cut is the router-side network partition the protocol is built
// for: node<->node links stay up, so completions keep gossiping and the
// reap window R > fence F + exec + gossip-hop invariant holds. Every run
// prints its seed; replay a failure with ANAHY_MESH_CHAOS_SEED=<seed>.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "anahy/fault/fault.hpp"
#include "cluster/mesh/mesh_node.hpp"
#include "cluster/mesh/router.hpp"

// Sanitizer builds run everything 2-10x slower, which eats the margin in
// the R > F + exec + gossip invariant the timings below encode. Scale
// every window by the same factor so the *ratios* under test are
// unchanged and the invariant keeps the headroom it has in production.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define ANAHY_CHAOS_SAN_SCALE 4
#endif
#endif
#if !defined(ANAHY_CHAOS_SAN_SCALE) && \
    (defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__))
#define ANAHY_CHAOS_SAN_SCALE 4
#endif
#ifndef ANAHY_CHAOS_SAN_SCALE
#define ANAHY_CHAOS_SAN_SCALE 1
#endif

namespace {

using namespace cluster;
using namespace cluster::mesh;
using anahy::fault::FaultProfile;
using anahy::fault::FaultyTransport;
using namespace std::chrono_literals;

constexpr int kNodes = 3;
constexpr std::uint32_t kRouterRank = kNodes;
constexpr int kJobs = 48;
constexpr int kScale = ANAHY_CHAOS_SAN_SCALE;

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("ANAHY_MESH_CHAOS_SEED");
      env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 10);
  return std::random_device{}();
}

/// Mesh + router where every endpoint is wrapped in a FaultyTransport
/// (zero fault probabilities — the chaos here is manual, scheduled
/// sever/heal of the router<->node links only).
struct ChaosRig {
  std::vector<std::unique_ptr<FaultyTransport>> endpoints;
  std::array<Registry, kNodes> registries;
  /// Per-request execution tally, indexed by the payload's first byte.
  /// Declared before the nodes so job bodies can never outlive it.
  std::array<std::atomic<std::uint32_t>, kJobs> executions{};
  std::vector<std::unique_ptr<MeshNode>> nodes;

  ChaosRig() {
    auto fabric = make_memory_fabric(kNodes + 1);
    endpoints.reserve(fabric.size());
    for (auto& t : fabric)
      endpoints.push_back(std::make_unique<FaultyTransport>(
          std::move(t), FaultProfile{}));
    for (int i = 0; i < kNodes; ++i) {
      registries[static_cast<std::size_t>(i)].add(
          "tracked", [this](std::span<const std::uint8_t> in) {
            if (!in.empty() && in[0] < kJobs)
              executions[in[0]].fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(2ms);
            return std::vector<std::uint8_t>(in.begin(), in.end());
          });
      MeshNodeOptions o;
      o.self = static_cast<std::uint32_t>(i);
      for (int p = 0; p < kNodes; ++p)
        if (p != i) o.peers.push_back(static_cast<std::uint32_t>(p));
      o.routers = {kRouterRank};
      o.server.runtime.num_vps = 1;
      o.fence_us = 50'000 * kScale;
      // Failover is the subject here; stealing has its own suite.
      o.steal_enabled = false;
      nodes.push_back(std::make_unique<MeshNode>(
          *endpoints[static_cast<std::size_t>(i)],
          registries[static_cast<std::size_t>(i)], o));
    }
  }

  /// Full router<->node cut, both directions (peer links stay up).
  void sever(int node) {
    endpoints[static_cast<std::size_t>(node)]->sever(
        static_cast<int>(kRouterRank));
    endpoints[kRouterRank]->sever(node);
  }
  void heal(int node) {
    endpoints[static_cast<std::size_t>(node)]->heal(
        static_cast<int>(kRouterRank));
    endpoints[kRouterRank]->heal(node);
  }

  Transport& router_endpoint() { return *endpoints[kRouterRank]; }
};

MeshRouterOptions chaos_router_options() {
  MeshRouterOptions o{{0, 1, 2}};
  o.reap_after *= kScale;
  o.retry_backoff *= kScale;
  return o;
}

/// Paced burst: one tracked job every ~3ms so the sever schedule cuts
/// through submission, queueing, execution and reply phases alike.
std::vector<std::uint64_t> paced_burst(MeshRouter& router,
                                       std::chrono::microseconds deadline) {
  std::vector<std::uint64_t> ids;
  ids.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    RouterSubmitOptions o;
    o.deadline = deadline;
    ids.push_back(
        router.submit("tracked", {static_cast<std::uint8_t>(i)}, o));
    std::this_thread::sleep_for(3ms * kScale);
  }
  return ids;
}

TEST(MeshChaos, SeverHealRoundsResolveEverythingExactlyOnce) {
  const std::uint64_t seed = chaos_seed();
  std::fprintf(stderr, "[chaos] ANAHY_MESH_CHAOS_SEED=%llu\n",
               static_cast<unsigned long long>(seed));
  ChaosRig rig;
  MeshRouter router(rig.router_endpoint(), chaos_router_options());

  // Chaos thread: random node loses its router link for 60-140ms, heals,
  // breathes 80-160ms, repeat. Runs through the whole burst.
  std::atomic<bool> done{false};
  std::thread chaos([&] {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> which(0, kNodes - 1);
    std::uniform_int_distribution<int> cut_ms(60 * kScale, 140 * kScale);
    std::uniform_int_distribution<int> calm_ms(80 * kScale, 160 * kScale);
    while (!done.load(std::memory_order_relaxed)) {
      const int victim = which(rng);
      rig.sever(victim);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(cut_ms(rng)));
      rig.heal(victim);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(calm_ms(rng)));
    }
  });

  const auto ids = paced_burst(router, 10s * kScale);
  int ok = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto r = router.wait(ids[i]);
    if (r.error == anahy::kOk) ++ok;
    EXPECT_EQ(r.error, anahy::kOk) << "job " << i << " seed " << seed;
  }
  done.store(true, std::memory_order_relaxed);
  chaos.join();

  // Exactly-once: every body ran exactly once somewhere, no matter how
  // many times its key was retried, withdrawn or re-routed.
  for (int i = 0; i < kJobs; ++i)
    EXPECT_EQ(rig.executions[static_cast<std::size_t>(i)].load(), 1u)
        << "job " << i << " seed " << seed;
  EXPECT_EQ(ok, kJobs) << "seed " << seed;

  for (auto& n : rig.nodes) n->stop();
  router.stop();
}

TEST(MeshChaos, PermanentSeverNeverExecutesTwice) {
  const std::uint64_t seed = chaos_seed();
  std::fprintf(stderr, "[chaos] ANAHY_MESH_CHAOS_SEED=%llu\n",
               static_cast<unsigned long long>(seed));
  ChaosRig rig;
  MeshRouter router(rig.router_endpoint(), chaos_router_options());

  // Cut one random node for good partway into the burst.
  std::mt19937_64 rng(seed);
  const int victim = static_cast<int>(rng() % kNodes);
  std::thread chaos([&] {
    std::this_thread::sleep_for(40ms * kScale);
    rig.sever(victim);
  });

  const auto ids = paced_burst(router, 3s * kScale);
  chaos.join();
  int ok = 0, unreachable = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto r = router.wait(ids[i]);  // never hangs: deadline resolves
    if (r.error == anahy::kOk) {
      ++ok;
      EXPECT_EQ(rig.executions[i].load(), 1u)
          << "job " << i << " seed " << seed;
    } else {
      ++unreachable;
    }
    EXPECT_LE(rig.executions[i].load(), 1u)
        << "job " << i << " seed " << seed;
  }
  // The fleet keeps working: the overwhelming majority of the burst
  // lands on the two surviving nodes.
  EXPECT_GE(ok, kJobs - 8) << "seed " << seed;
  EXPECT_EQ(ok + unreachable, kJobs);
  EXPECT_GE(router.counters().reaps, 1u);

  for (auto& n : rig.nodes) n->stop();
  router.stop();
}

}  // namespace
