// Job-level work stealing between mesh nodes: a skewed same-key burst on
// one node spills to the idle peer when stealing is on, stays put when it
// is off, and resolves exactly once either way (docs/MESH.md).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/mesh/mesh_node.hpp"
#include "cluster/mesh/router.hpp"

namespace {

using namespace cluster;
using namespace cluster::mesh;
using namespace std::chrono_literals;

constexpr int kNodes = 2;
constexpr std::uint32_t kRouterRank = kNodes;

struct StealRig {
  std::vector<std::unique_ptr<Transport>> fabric;
  std::array<Registry, kNodes> registries;
  std::array<std::atomic<std::uint64_t>, kNodes> executions{};
  std::vector<std::unique_ptr<MeshNode>> nodes;

  explicit StealRig(bool steal_enabled) {
    fabric = make_memory_fabric(kNodes + 1);
    for (int i = 0; i < kNodes; ++i) {
      auto* count = &executions[static_cast<std::size_t>(i)];
      registries[static_cast<std::size_t>(i)].add(
          "sleepy", [count](std::span<const std::uint8_t> in) {
            count->fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(3ms);
            return std::vector<std::uint8_t>(in.begin(), in.end());
          });
      MeshNodeOptions o;
      o.self = static_cast<std::uint32_t>(i);
      o.peers = {static_cast<std::uint32_t>(1 - i)};
      o.routers = {kRouterRank};
      o.server.runtime.num_vps = 1;
      o.steal_enabled = steal_enabled;
      // Aggressive thresholds so a modest burst triggers sharing fast.
      o.steal_wait_budget_ns = 1'000'000;  // 1ms of queue wait is too much
      o.steal_min_backlog = 2;
      nodes.push_back(std::make_unique<MeshNode>(
          *fabric[static_cast<std::size_t>(i)],
          registries[static_cast<std::size_t>(i)], o));
    }
  }

  [[nodiscard]] std::uint64_t total_executions() const {
    std::uint64_t n = 0;
    for (const auto& c : executions) n += c.load(std::memory_order_relaxed);
    return n;
  }
};

/// Fires `count` same-key batch jobs (all rendezvous to one home node) and
/// waits for every handle. Returns the per-test reply error tally.
int run_skewed_burst(MeshRouter& router, int count) {
  RouterSubmitOptions o;
  o.key = 0xD15EA5EDu;  // one home for the whole burst
  o.priority = 2;       // batch: first class the steal probe asks for
  o.deadline = 10s;     // serial worst case is count * 3ms; stay far away
  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    ids.push_back(router.submit("sleepy", {std::uint8_t(i)}, o));
  int ok = 0;
  for (std::uint64_t id : ids)
    if (router.wait(id).error == anahy::kOk) ++ok;
  return ok;
}

TEST(MeshSteal, IdlePeerStealsFromTheLoadedNode) {
  StealRig rig(/*steal_enabled=*/true);
  MeshRouter router(*rig.fabric[kRouterRank],
                    MeshRouterOptions{{0, 1}});
  constexpr int kJobs = 24;
  EXPECT_EQ(run_skewed_burst(router, kJobs), kJobs);

  // Exactly-once across the handoff: every body ran somewhere, once.
  EXPECT_EQ(rig.total_executions(), static_cast<std::uint64_t>(kJobs));

  // The burst spilled: someone exported, someone imported, and the
  // counters agree with each other.
  std::uint64_t exported = 0, imported = 0;
  for (const auto& n : rig.nodes) {
    exported += n->counters().jobs_exported;
    imported += n->counters().jobs_imported;
  }
  EXPECT_GE(imported, 1u);
  EXPECT_EQ(imported, exported);

  // Both nodes ended up executing part of the same-key burst.
  EXPECT_GT(rig.executions[0].load(), 0u);
  EXPECT_GT(rig.executions[1].load(), 0u);
}

TEST(MeshSteal, DisabledStealingKeepsTheBurstHome) {
  StealRig rig(/*steal_enabled=*/false);
  MeshRouter router(*rig.fabric[kRouterRank],
                    MeshRouterOptions{{0, 1}});
  constexpr int kJobs = 12;
  EXPECT_EQ(run_skewed_burst(router, kJobs), kJobs);
  EXPECT_EQ(rig.total_executions(), static_cast<std::uint64_t>(kJobs));
  for (const auto& n : rig.nodes) {
    EXPECT_EQ(n->counters().jobs_imported, 0u);
    EXPECT_EQ(n->counters().jobs_exported, 0u);
  }
  // With the key pinned and no stealing, one node did all the work.
  const std::uint64_t a = rig.executions[0].load();
  const std::uint64_t b = rig.executions[1].load();
  EXPECT_TRUE(a == 0 || b == 0) << a << " vs " << b;
}

TEST(MeshSteal, StealCountersShowOnTheExpositionPage) {
  StealRig rig(/*steal_enabled=*/true);
  MeshRouter router(*rig.fabric[kRouterRank],
                    MeshRouterOptions{{0, 1}});
  EXPECT_EQ(run_skewed_burst(router, 16), 16);
  const std::string text = router.stats_text(0);
  EXPECT_NE(text.find("anahy_mesh_steal_probes_sent_total"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_mesh_jobs_exported_total"), std::string::npos);
  EXPECT_NE(text.find("anahy_mesh_jobs_imported_total"), std::string::npos);
}

}  // namespace
