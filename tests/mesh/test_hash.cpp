// Weighted rendezvous hashing: determinism, weight-proportional load and
// the minimal-disruption property failover depends on (docs/MESH.md).
#include "cluster/mesh/hash.hpp"

#include <gtest/gtest.h>

#include <map>

namespace {

using namespace cluster::mesh;

TEST(MeshHash, SplitmixIsDeterministicAndMixes) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
  // Single-bit input changes should flip roughly half the output bits.
  const std::uint64_t d = splitmix64(1) ^ splitmix64(2);
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += (d >> i) & 1;
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(MeshHash, PickIsDeterministicAndInRange) {
  const std::vector<WeightedNode> nodes{{10, 1.0}, {11, 1.0}, {12, 1.0}};
  for (std::uint64_t k = 0; k < 64; ++k) {
    const std::size_t a = rendezvous_pick(k, nodes);
    const std::size_t b = rendezvous_pick(k, nodes);
    EXPECT_EQ(a, b);
    EXPECT_LT(a, nodes.size());
  }
}

TEST(MeshHash, EqualWeightsSpreadKeys) {
  const std::vector<WeightedNode> nodes{{0, 1.0}, {1, 1.0}, {2, 1.0}};
  std::map<std::size_t, int> counts;
  for (std::uint64_t k = 0; k < 3000; ++k)
    ++counts[rendezvous_pick(splitmix64(k), nodes)];
  // Every node gets a solid share (expected ~1000 each).
  for (const auto& [node, n] : counts) EXPECT_GT(n, 600) << "node " << node;
  EXPECT_EQ(counts.size(), 3u);
}

TEST(MeshHash, WeightsBiasTheSpread) {
  const std::vector<WeightedNode> nodes{{0, 2.0}, {1, 0.5}};
  int heavy = 0, light = 0;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    if (rendezvous_pick(splitmix64(k), nodes) == 0)
      ++heavy;
    else
      ++light;
  }
  // Expected split 80/20; insist on at least 2:1.
  EXPECT_GT(heavy, 2 * light);
  EXPECT_GT(light, 0);  // a low weight sheds load, never blackholes
}

TEST(MeshHash, RemovingANodeOnlyMovesItsOwnKeys) {
  const std::vector<WeightedNode> all{{0, 1.0}, {1, 1.0}, {2, 1.0}};
  const std::vector<WeightedNode> survivors{{0, 1.0}, {2, 1.0}};
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const std::uint64_t key = splitmix64(k);
    const std::uint32_t before = all[rendezvous_pick(key, all)].node;
    const std::uint32_t after = survivors[rendezvous_pick(key, survivors)].node;
    if (before != 1) {
      // A key that did not live on the removed node must not move: the
      // property that makes router re-routing surgical.
      EXPECT_EQ(before, after) << "key " << k;
    } else {
      EXPECT_NE(after, 1u);
    }
  }
}

TEST(MeshHash, RankOrdersByScoreAndStartsWithPick) {
  const std::vector<WeightedNode> nodes{{7, 1.0}, {8, 1.5}, {9, 0.7}};
  for (std::uint64_t k = 0; k < 32; ++k) {
    const auto order = rendezvous_rank(k, nodes);
    ASSERT_EQ(order.size(), nodes.size());
    EXPECT_EQ(order[0], rendezvous_pick(k, nodes));
    double prev = -1.0;
    for (const std::size_t i : order) {
      const double s = rendezvous_score(k, nodes[i].node, nodes[i].weight);
      EXPECT_GE(s, prev);
      prev = s;
    }
  }
}

}  // namespace
