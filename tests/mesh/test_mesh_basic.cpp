// anahy::mesh end-to-end over the in-memory fabric: weighted rendezvous
// routing, same-key locality, done-cache replication (exactly-once across
// retries landing on *different* nodes), liveness plumbing and
// kRejuvenate addressing (docs/MESH.md).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/mesh/mesh_node.hpp"
#include "cluster/mesh/router.hpp"
#include "cluster/message.hpp"

namespace {

using namespace cluster;
using namespace cluster::mesh;
using namespace std::chrono_literals;

constexpr int kNodes = 3;
constexpr std::uint32_t kRouterRank = kNodes;      // rank 3
constexpr std::uint32_t kProbeRank = kNodes + 1;   // rank 4

/// A 3-node mesh + router + raw probe endpoint, with per-node execution
/// counters so tests can prove where (and how many times) a body ran.
struct MeshRig {
  std::vector<std::unique_ptr<Transport>> fabric;
  std::array<Registry, kNodes> registries;
  std::array<std::atomic<std::uint64_t>, kNodes> executions{};
  std::vector<std::unique_ptr<MeshNode>> nodes;

  explicit MeshRig(bool steal_enabled = true) {
    fabric = make_memory_fabric(kNodes + 2);
    for (int i = 0; i < kNodes; ++i) {
      auto* count = &executions[static_cast<std::size_t>(i)];
      registries[static_cast<std::size_t>(i)].add(
          "echo", [count](std::span<const std::uint8_t> in) {
            count->fetch_add(1, std::memory_order_relaxed);
            return std::vector<std::uint8_t>(in.begin(), in.end());
          });
      registries[static_cast<std::size_t>(i)].add(
          "sleepy", [count](std::span<const std::uint8_t> in) {
            count->fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(2ms);
            return std::vector<std::uint8_t>(in.begin(), in.end());
          });
      MeshNodeOptions o;
      o.self = static_cast<std::uint32_t>(i);
      for (int p = 0; p < kNodes; ++p)
        if (p != i) o.peers.push_back(static_cast<std::uint32_t>(p));
      o.routers = {kRouterRank};
      o.server.runtime.num_vps = 1;
      o.steal_enabled = steal_enabled;
      nodes.push_back(std::make_unique<MeshNode>(
          *fabric[static_cast<std::size_t>(i)],
          registries[static_cast<std::size_t>(i)], o));
    }
  }

  [[nodiscard]] std::uint64_t total_executions() const {
    std::uint64_t n = 0;
    for (const auto& c : executions) n += c.load(std::memory_order_relaxed);
    return n;
  }

  [[nodiscard]] MeshRouterOptions router_options() const {
    MeshRouterOptions o;
    for (int i = 0; i < kNodes; ++i)
      o.nodes.push_back(static_cast<std::uint32_t>(i));
    return o;
  }

  Transport& probe() { return *fabric[kProbeRank]; }

  /// Pumps the probe endpoint until `pred(msg)` or the deadline.
  bool probe_recv(const std::function<bool(const Message&)>& pred,
                  std::chrono::milliseconds deadline = 2000ms) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    std::vector<std::uint8_t> frame;
    while (std::chrono::steady_clock::now() < until) {
      if (!probe().recv(frame, 10'000us)) continue;
      DecodeResult d = decode_frame(frame);
      if (d.ok && pred(d.msg)) return true;
    }
    return false;
  }
};

TEST(MeshBasic, RouterResolvesEverySubmitAcrossNodes) {
  MeshRig rig;
  MeshRouter router(*rig.fabric[kRouterRank], rig.router_options());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 60; ++i)
    ids.push_back(router.submit("echo", {std::uint8_t(i)}));
  int spread = 0;
  for (std::uint64_t id : ids) {
    const auto r = router.wait(id);
    EXPECT_EQ(r.error, anahy::kOk);
  }
  EXPECT_EQ(rig.total_executions(), 60u);
  for (const auto& c : rig.executions)
    if (c.load(std::memory_order_relaxed) > 0) ++spread;
  // Distinct keys rendezvous across the fleet: with 60 keys over 3 equal
  // nodes, all three see work (P(missing one) is astronomically small).
  EXPECT_EQ(spread, kNodes);
  EXPECT_EQ(router.counters().replies, 60u);
  EXPECT_EQ(router.counters().unreachable, 0u);
}

TEST(MeshBasic, SameKeyRoutesToSameNode) {
  MeshRig rig(/*steal_enabled=*/false);
  MeshRouter router(*rig.fabric[kRouterRank], rig.router_options());
  RouterSubmitOptions o;
  o.key = 0xFEEDFACEu;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(router.submit("echo", {}, o));
  for (std::uint64_t id : ids) EXPECT_EQ(router.wait(id).error, anahy::kOk);
  int owners = 0;
  for (const auto& c : rig.executions)
    if (c.load(std::memory_order_relaxed) > 0) ++owners;
  EXPECT_EQ(owners, 1);  // locality: one key, one home
  EXPECT_EQ(rig.total_executions(), 20u);
}

TEST(MeshBasic, ReplicatedDoneCacheAnswersRetriesOnOtherNodes) {
  MeshRig rig;
  // A router keeps the fences open and the gossip heartbeats ticking.
  MeshRouter router(*rig.fabric[kRouterRank], rig.router_options());

  // Forge a wire submit from the probe endpoint to node 0.
  const std::uint64_t rid = 777;
  const auto frame = encode(make_job_submit(kProbeRank, rid, 1, -1, false,
                                            "echo", {1, 2, 3}));
  rig.probe().send(0, frame);
  ASSERT_TRUE(rig.probe_recv([&](const Message& m) {
    return m.type == MsgType::kJobDone && m.job_done.request_id == rid;
  }));
  EXPECT_EQ(rig.total_executions(), 1u);

  // Wait for the completion to gossip into node 1's replica.
  const auto until = std::chrono::steady_clock::now() + 2s;
  while (rig.nodes[1]->counters().replica_entries == 0 &&
         std::chrono::steady_clock::now() < until)
    std::this_thread::sleep_for(1ms);
  ASSERT_GE(rig.nodes[1]->counters().replica_entries, 1u);

  // The same submit retried against a DIFFERENT node: answered from the
  // replica, executed nowhere.
  rig.probe().send(1, frame);
  ASSERT_TRUE(rig.probe_recv([&](const Message& m) {
    return m.type == MsgType::kJobDone && m.job_done.request_id == rid &&
           m.job_done.error == anahy::kOk;
  }));
  EXPECT_EQ(rig.total_executions(), 1u);
  EXPECT_EQ(rig.nodes[1]->frontend().replica_hits(), 1u);
}

TEST(MeshBasic, FrontEndAnswersPings) {
  MeshRig rig;
  rig.probe().send(0, encode(make_ping(kProbeRank, 99)));
  EXPECT_TRUE(rig.probe_recv([](const Message& m) {
    return m.type == MsgType::kPong && m.ping.token == 99;
  }));
}

TEST(MeshBasic, RejuvenateForwardsToTheAddressedNode) {
  MeshRig rig;
  // Addressed to node 1 but sent to node 0: the front-end forwards and
  // node 1 answers the probe directly.
  rig.probe().send(0, encode(make_rejuvenate(kProbeRank, 55, /*target=*/1)));
  ASSERT_TRUE(rig.probe_recv([](const Message& m) {
    return m.type == MsgType::kStatsReply && m.stats_reply.request_id == 55 &&
           !m.stats_reply.text.empty();
  }));
  EXPECT_EQ(rig.nodes[0]->frontend().rejuv_forwards(), 1u);
  EXPECT_EQ(rig.nodes[0]->frontend().rejuvenations(), 0u);
  EXPECT_EQ(rig.nodes[1]->frontend().rejuvenations(), 1u);
}

TEST(MeshBasic, ServeClientRejuvenatesATargetNodeThroughItsServer) {
  MeshRig rig;
  // The operator path of `anahy-aging --rejuvenate --node=N`: a plain
  // ServeClient connected to node 0 addresses node 2, the front-end
  // forwards, and node 2's cycle report comes back to the client.
  ServeClient client(rig.probe(), /*server_node=*/0);
  std::string report;
  EXPECT_EQ(client.rejuvenate(report, CallOptions{}, /*target=*/2),
            anahy::kOk);
  EXPECT_FALSE(report.empty());
  EXPECT_EQ(rig.nodes[0]->frontend().rejuv_forwards(), 1u);
  EXPECT_EQ(rig.nodes[2]->frontend().rejuvenations(), 1u);
}

TEST(MeshBasic, RouterRejuvenatesAndReadsStatsOfAnyNode) {
  MeshRig rig;
  MeshRouter router(*rig.fabric[kRouterRank], rig.router_options());
  const std::string report = router.rejuvenate(2);
  EXPECT_FALSE(report.empty());
  EXPECT_EQ(rig.nodes[2]->frontend().rejuvenations(), 1u);

  const std::string text = router.stats_text(0);
  // Satellite counters: front-end hardening and mesh state are rows on
  // the same page the health poller reads.
  EXPECT_NE(text.find("anahy_frontend_dedup_entries"), std::string::npos);
  EXPECT_NE(text.find("anahy_frontend_pings_sent_total"), std::string::npos);
  EXPECT_NE(text.find("anahy_mesh_gossip_rx_total"), std::string::npos);
}

TEST(MeshBasic, RouterHealthSnapshotTracksNodes) {
  MeshRig rig;
  MeshRouter router(*rig.fabric[kRouterRank], rig.router_options());
  // Health polls land within a few intervals.
  const auto until = std::chrono::steady_clock::now() + 2s;
  while (!router.health(0).parsed &&
         std::chrono::steady_clock::now() < until)
    std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(router.health(0).parsed);
  EXPECT_EQ(router.live_nodes().size(), static_cast<std::size_t>(kNodes));
}

}  // namespace
