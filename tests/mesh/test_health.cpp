// parse_health / routing_weight: the router's view of a node is whatever
// the exposition page says (docs/MESH.md).
#include "cluster/mesh/health.hpp"

#include <gtest/gtest.h>

namespace {

using namespace cluster::mesh;
using anahy::Priority;

const char kPage[] =
    "anahy_observe_epoch 3\n"
    "# a comment line\n"
    "anahy_observe_ready_tasks{class=\"high\"} 1\n"
    "anahy_observe_ready_tasks{class=\"normal\"} 4\n"
    "anahy_observe_ready_tasks{class=\"batch\"} 9\n"
    "anahy_observe_idle_fraction 0.250000\n"
    "anahy_serve_jobs_pending_by_class{class=\"high\"} 0\n"
    "anahy_serve_jobs_pending_by_class{class=\"normal\"} 2\n"
    "anahy_serve_jobs_pending_by_class{class=\"batch\"} 7\n"
    "anahy_admission_over{class=\"high\"} 0\n"
    "anahy_admission_over{class=\"normal\"} 0\n"
    "anahy_admission_over{class=\"batch\"} 1\n"
    "anahy_admission_score_milli{class=\"batch\"} 1250\n"
    "anahy_frontend_inflight_entries 3\n"
    "anahy_unrelated_row 77\n";

TEST(MeshHealth, ParsesTheRoutingRows) {
  const NodeHealth h = parse_health(kPage);
  EXPECT_TRUE(h.parsed);
  EXPECT_EQ(h.ready[0], 1u);
  EXPECT_EQ(h.ready[1], 4u);
  EXPECT_EQ(h.ready[2], 9u);
  EXPECT_EQ(h.pending[1], 2u);
  EXPECT_EQ(h.pending[2], 7u);
  EXPECT_FALSE(h.admission_over[1]);
  EXPECT_TRUE(h.admission_over[2]);
  EXPECT_EQ(h.admission_score_milli[2], 1250u);
  EXPECT_DOUBLE_EQ(h.idle_fraction, 0.25);
  EXPECT_EQ(h.inflight, 3u);
}

TEST(MeshHealth, EmptyOrForeignTextParsesToNothing) {
  EXPECT_FALSE(parse_health("").parsed);
  EXPECT_FALSE(parse_health("# only comments\nsome_other_metric 5\n").parsed);
}

TEST(MeshHealth, UnparsedNodeRoutesAtFullWeight) {
  EXPECT_DOUBLE_EQ(routing_weight(NodeHealth{}, Priority::kNormal), 1.0);
}

TEST(MeshHealth, BacklogShedsWeight) {
  NodeHealth idle;
  idle.parsed = true;
  idle.idle_fraction = 1.0;
  NodeHealth busy = idle;
  busy.ready[1] = 32;
  busy.pending[1] = 32;
  EXPECT_LT(routing_weight(busy, Priority::kNormal),
            routing_weight(idle, Priority::kNormal));
}

TEST(MeshHealth, OverBudgetVerdictShedsHard) {
  NodeHealth ok;
  ok.parsed = true;
  ok.idle_fraction = 1.0;
  NodeHealth over = ok;
  over.admission_over[2] = true;
  const double w_ok = routing_weight(ok, Priority::kBatch);
  const double w_over = routing_weight(over, Priority::kBatch);
  EXPECT_LT(w_over, 0.5 * w_ok);
  // The verdict is per class: normal routing is untouched.
  EXPECT_DOUBLE_EQ(routing_weight(over, Priority::kNormal),
                   routing_weight(ok, Priority::kNormal));
}

TEST(MeshHealth, WeightNeverFallsBelowTheFloor)
{
  NodeHealth h;
  h.parsed = true;
  h.idle_fraction = 0.0;
  h.ready[2] = 100000;
  h.pending[2] = 100000;
  h.inflight = 100000;
  h.admission_over[2] = true;
  EXPECT_GE(routing_weight(h, Priority::kBatch), kMinRoutingWeight);
}

}  // namespace
