// Golden tests of the anahy-lint CLI against corrupted input files.
//
// The contract under test (tools/anahy_lint.cpp): loading is
// all-or-nothing. A truncated or garbage trace file produces ONE line on
// stderr carrying the ANAHY-F004 diagnostic and exit code 2 — never a lint
// report of whatever prefix happened to parse. The binary path arrives via
// the ANAHY_LINT_BINARY compile definition (same mechanism as
// ANAHY_WORKER_BINARY in test_cluster).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr merged
};

CliResult run_lint(const std::string& args) {
  const std::string cmd = std::string(ANAHY_LINT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  CliResult r;
  if (pipe == nullptr) return r;
  char buf[512];
  while (fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string write_temp(const std::string& name, const std::string& content) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path.string();
}

TEST(LintCli, CleanTraceExitsZero) {
  const auto path = write_temp("lint_cli_clean.trace",
                               "anahy-trace v1\n"
                               "node 0 -1 0 0 -1 0 -1 0 0\n"
                               "node 1 0 1 0 0 100 1 1 0\n"
                               "edge 0 1 fork\n"
                               "edge 1 0 join\n");
  const auto r = run_lint("--summary " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("2 node(s)"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("ANAHY-F004"), std::string::npos) << r.output;
}

TEST(LintCli, DiagnosticsExitOne) {
  // A fork cycle is a W006: diagnostics found, exit 1 (distinct from the
  // unreadable-file exit 2).
  const auto path = write_temp("lint_cli_cycle.trace",
                               "anahy-trace v1\n"
                               "node 1 -1 0 0 -1 0 1 1 0\n"
                               "node 2 1 1 0 -1 0 1 1 0\n"
                               "edge 1 2 fork\n"
                               "edge 2 1 fork\n");
  const auto r = run_lint(path);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("ANAHY-W"), std::string::npos) << r.output;
}

TEST(LintCli, TruncatedTraceIsRejectedWholesale) {
  // A node record chopped mid-field: the parsed prefix (one good node) must
  // NOT be linted — one F004 line, exit 2, no lint output.
  const auto path = write_temp("lint_cli_truncated.trace",
                               "anahy-trace v1\n"
                               "node 1 -1 0 0 -1 0 1 1 0\n"
                               "node 2 1 1\n");
  const auto r = run_lint("--summary " + path);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("ANAHY-F004"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("not a readable anahy trace"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("node(s)"), std::string::npos)
      << "no summary of a partial parse: " << r.output;
}

TEST(LintCli, BinaryGarbageIsRejectedWithCleanError) {
  std::string junk = std::string(64, '\xAB') + "\nnot a trace at all\n";
  junk.push_back('\0');
  junk += std::string(32, '\xFF');
  const auto path = write_temp("lint_cli_garbage.trace", junk);
  const auto r = run_lint(path);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("ANAHY-F004"), std::string::npos) << r.output;
}

TEST(LintCli, MissingFileExitsTwo) {
  const auto r = run_lint("/nonexistent/anahy-definitely-missing.trace");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("cannot open"), std::string::npos) << r.output;
}

}  // namespace
