// Golden tests of the anahy-aging CLI.
//
// The contract under test (tools/anahy_aging.cpp): exit 0 on a clean
// series, exit 2 when any ANAHY-A00x detector fires, exit 1 when the file
// cannot be read or parsed (loading is all-or-nothing — a truncated file
// yields one error line, never an analysis of a silent prefix). The binary
// path comes from the ANAHY_AGING_BINARY environment variable when set
// (CI drives an out-of-tree binary that way) and falls back to the
// same-build compile definition.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr merged
};

std::string aging_binary() {
  if (const char* env = std::getenv("ANAHY_AGING_BINARY")) return env;
  return ANAHY_AGING_BINARY;
}

CliResult run_aging(const std::string& args) {
  const std::string cmd = aging_binary() + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  CliResult r;
  if (pipe == nullptr) return r;
  char buf[512];
  while (fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string write_temp(const std::string& name, const std::string& content) {
  // Pid-qualified: ctest runs each TEST as its own process, possibly in
  // parallel, so a fixed shared name would let one test read a series
  // file while a sibling is mid-write.
  const auto path = std::filesystem::temp_directory_path() /
                    (std::to_string(getpid()) + "-" + name);
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path.string();
}

/// 64 samples of a flat-heap healthy server at 10 ms cadence.
std::string clean_series_text() {
  std::ostringstream os;
  os << "anahy-series v1 classes=0\n";
  for (int i = 0; i < 64; ++i)
    os << "point " << i * 10'000'000 << ' ' << i * 10 << ' ' << (1 << 20)
       << ' ' << ((1 << 20) + 4096) << " 0 0 100000\n";
  return os.str();
}

/// The same server leaking 2000 heap bytes per sample (200 bytes/job).
std::string leaky_series_text() {
  std::ostringstream os;
  os << "anahy-series v1 classes=0\n";
  for (int i = 0; i < 64; ++i)
    os << "point " << i * 10'000'000 << ' ' << i * 10 << ' '
       << ((1 << 20) + i * 2000) << ' ' << ((1 << 20) + i * 2000 + 4096)
       << " 0 0 100000\n";
  return os.str();
}

TEST(AgingCli, CleanSeriesExitsZeroSilently) {
  const auto path = write_temp("aging_cli_clean.series", clean_series_text());
  const auto r = run_aging(path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("ANAHY-A"), std::string::npos) << r.output;
}

TEST(AgingCli, SummaryOnCleanSeries) {
  const auto path = write_temp("aging_cli_clean.series", clean_series_text());
  const auto r = run_aging("--summary " + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("64 point(s)"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0 finding(s)"), std::string::npos) << r.output;
}

TEST(AgingCli, LeakySeriesExitsTwoWithA001) {
  const auto path = write_temp("aging_cli_leaky.series", leaky_series_text());
  const auto r = run_aging(path);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("ANAHY-A001"), std::string::npos) << r.output;
}

TEST(AgingCli, JsonOutputIsWellFormedOnBothOutcomes) {
  const auto clean =
      run_aging("--json " +
                write_temp("aging_cli_clean.series", clean_series_text()));
  EXPECT_EQ(clean.exit_code, 0) << clean.output;
  EXPECT_NE(clean.output.find("\"findings\": []"), std::string::npos)
      << clean.output;

  const auto leaky =
      run_aging("--json " +
                write_temp("aging_cli_leaky.series", leaky_series_text()));
  EXPECT_EQ(leaky.exit_code, 2) << leaky.output;
  EXPECT_NE(leaky.output.find("\"code\": \"ANAHY-A001\""), std::string::npos)
      << leaky.output;
  EXPECT_EQ(leaky.output.front(), '{');
}

TEST(AgingCli, TruncatedSeriesIsRejectedWholesale) {
  std::string text = clean_series_text();
  text.resize(text.rfind(' ') + 1);  // chop the last point mid-field
  const auto path = write_temp("aging_cli_truncated.series", text);
  const auto r = run_aging("--summary " + path);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("not a readable anahy-series"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("point(s)"), std::string::npos)
      << "no summary of a partial parse: " << r.output;
}

TEST(AgingCli, GarbageAndMissingFilesExitOne) {
  const auto garbage = run_aging(
      write_temp("aging_cli_garbage.series", "\xAB\xFF not a series\n"));
  EXPECT_EQ(garbage.exit_code, 1) << garbage.output;

  const auto missing = run_aging("/nonexistent/anahy-missing.series");
  EXPECT_EQ(missing.exit_code, 1) << missing.output;
  EXPECT_NE(missing.output.find("cannot open"), std::string::npos)
      << missing.output;

  const auto flag = run_aging("--no-such-flag x");
  EXPECT_EQ(flag.exit_code, 1) << flag.output;
  EXPECT_NE(flag.output.find("usage:"), std::string::npos) << flag.output;
}

TEST(AgingCli, NodeFlagOnlyValidWithRejuvenate) {
  // --node=N addresses a mesh node for --rejuvenate (docs/MESH.md); on
  // its own, or malformed, it is a usage error — not a silent no-op that
  // quietly analyzes the series while the operator thinks they cycled
  // node 2.
  const auto path = write_temp("aging_cli_node.series",
                               "anahy-series v1 classes=0\n");
  const auto orphan = run_aging("--node=2 " + path);
  EXPECT_EQ(orphan.exit_code, 1) << orphan.output;
  EXPECT_NE(orphan.output.find("usage:"), std::string::npos) << orphan.output;

  const auto garbage = run_aging("--rejuvenate=127.0.0.1:1 --node=x");
  EXPECT_EQ(garbage.exit_code, 1) << garbage.output;
  EXPECT_NE(garbage.output.find("usage:"), std::string::npos)
      << garbage.output;

  const auto negative = run_aging("--rejuvenate=127.0.0.1:1 --node=-3");
  EXPECT_EQ(negative.exit_code, 1) << negative.output;
  EXPECT_NE(negative.output.find("usage:"), std::string::npos)
      << negative.output;
}

TEST(AgingCli, GapFloorFlagForgivesEnvironmentalStalls) {
  // A clean series with one 10 s hole: by default that is an A005 gap
  // (exit 2); with a floor above the hole the same file analyzes clean —
  // the knob CI uses when linting a series it just recorded on a busy box.
  std::ostringstream os;
  os << "anahy-series v1 classes=0\n";
  for (int i = 0; i < 64; ++i) {
    const std::int64_t stall = i >= 32 ? 10'000'000'000 : 0;
    os << "point " << (i * 10'000'000 + stall) << ' ' << i * 10 << ' '
       << (1 << 20) << ' ' << ((1 << 20) + 4096) << " 0 0 100000\n";
  }
  const auto path = write_temp("aging_cli_gappy.series", os.str());

  const auto strict = run_aging(path);
  EXPECT_EQ(strict.exit_code, 2) << strict.output;
  EXPECT_NE(strict.output.find("ANAHY-A005"), std::string::npos)
      << strict.output;

  const auto forgiving = run_aging("--gap-min-ns=20000000000 " + path);
  EXPECT_EQ(forgiving.exit_code, 0) << forgiving.output;

  const auto bad = run_aging("--gap-min-ns=banana " + path);
  EXPECT_EQ(bad.exit_code, 1) << bad.output;
}

TEST(AgingCli, BaselineDiffsTwoSeriesWithSlopeDeltas) {
  // Leaky current vs clean baseline: the delta line carries the slope
  // difference (here the full 200 bytes/job leak) and the exit code is
  // still the *current* series' verdict — the baseline never gates.
  const auto leaky = write_temp("aging_cli_leaky.series", leaky_series_text());
  const auto clean = write_temp("aging_cli_clean.series", clean_series_text());

  const auto r = run_aging("--baseline=" + clean + " " + leaky);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("ANAHY-A001"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("baseline: " + clean), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("delta: heap 200 bytes/job"), std::string::npos)
      << r.output;

  // Same series against itself: deltas vanish, clean exits 0.
  const auto same = run_aging("--baseline=" + clean + " " + clean);
  EXPECT_EQ(same.exit_code, 0) << same.output;
  EXPECT_NE(same.output.find("delta: heap 0 bytes/job"), std::string::npos)
      << same.output;
}

TEST(AgingCli, BaselineJsonCarriesBothAnalysesAndDeltaObject) {
  const auto leaky = write_temp("aging_cli_leaky.series", leaky_series_text());
  const auto clean = write_temp("aging_cli_clean.series", clean_series_text());
  const auto r = run_aging("--json --baseline=" + clean + " " + leaky);
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("\"current\":"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"baseline\":"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"delta\":"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"findings\": 1"), std::string::npos) << r.output;

  const auto missing = run_aging("--baseline=/nonexistent.series " + leaky);
  EXPECT_EQ(missing.exit_code, 1) << missing.output;
}

}  // namespace
