// Integration tests of the four paper applications: every parallel variant
// must produce exactly the sequential result (the paper's determinism
// claim), across VP counts and task counts.
#include <gtest/gtest.h>

#include "apps/agzip_app.hpp"
#include "apps/convop_app.hpp"
#include "apps/fib_app.hpp"
#include "apps/raytrace_app.hpp"

namespace {

using namespace apps;

anahy::Options vps(int n) {
  anahy::Options o;
  o.num_vps = n;
  return o;
}

// ---------------------------------------------------------------- raytrace

TEST(RaytraceApp, PthreadsMatchesSequential) {
  const auto bench = raytracer::build_bench_scene(25);
  raytracer::Framebuffer seq(48, 48), par(48, 48);
  raytrace_sequential(bench.scene, bench.camera, seq);
  raytrace_pthreads(bench.scene, bench.camera, par, 9);
  EXPECT_EQ(par, seq);
}

TEST(RaytraceApp, AnahyMatchesSequentialAcrossVps) {
  const auto bench = raytracer::build_bench_scene(25);
  raytracer::Framebuffer seq(48, 48);
  raytrace_sequential(bench.scene, bench.camera, seq);
  for (const int nvps : {1, 2, 4}) {
    anahy::Runtime rt(vps(nvps));
    raytracer::Framebuffer par(48, 48);
    raytrace_anahy(rt, bench.scene, bench.camera, par, 16);
    EXPECT_EQ(par, seq) << nvps << " VPs";
  }
}

TEST(RaytraceApp, TaskCountDoesNotChangeResult) {
  const auto bench = raytracer::build_bench_scene(25);
  anahy::Runtime rt(vps(3));
  raytracer::Framebuffer a(40, 40), b(40, 40);
  raytrace_anahy(rt, bench.scene, bench.camera, a, 1);
  raytrace_anahy(rt, bench.scene, bench.camera, b, 40);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------------ agzip

TEST(AgzipApp, WorkloadIsDeterministicAndMixed) {
  const auto a = make_binary_workload(64 * 1024);
  const auto b = make_binary_workload(64 * 1024);
  EXPECT_EQ(a, b);
  // Mixed entropy: compresses, but not to nothing.
  const auto gz = agzip_sequential(a);
  EXPECT_LT(gz.size(), a.size());
  EXPECT_GT(gz.size(), a.size() / 20);
}

TEST(AgzipApp, SequentialRoundTrips) {
  const auto data = make_binary_workload(100000);
  EXPECT_EQ(compress::gzip_decompress(agzip_sequential(data)), data);
}

TEST(AgzipApp, SplitChunksCoverInput) {
  for (const std::size_t size : {1000u, 65537u, 100000u}) {
    for (const int tasks : {1, 2, 5, 7}) {
      const auto chunks = split_chunks(size, tasks);
      ASSERT_EQ(chunks.size(), static_cast<std::size_t>(tasks));
      std::size_t expect_off = 0;
      for (const auto& c : chunks) {
        EXPECT_EQ(c.offset, expect_off);
        expect_off += c.size;
      }
      EXPECT_EQ(expect_off, size);
    }
  }
}

TEST(AgzipApp, PthreadsOutputDecompressesToInput) {
  const auto data = make_binary_workload(150000);
  for (const int tasks : {1, 3, 5}) {
    const auto gz = agzip_pthreads(data, tasks);
    EXPECT_EQ(compress::gzip_decompress(gz), data) << tasks << " tasks";
    EXPECT_EQ(compress::gzip_member_count(gz),
              static_cast<std::size_t>(tasks));
  }
}

TEST(AgzipApp, AnahyOutputMatchesPthreadsOutput) {
  // Same split, same per-chunk algorithm: byte-identical output.
  const auto data = make_binary_workload(120000);
  anahy::Runtime rt(vps(3));
  for (const int tasks : {1, 2, 4}) {
    EXPECT_EQ(agzip_anahy(rt, data, tasks), agzip_pthreads(data, tasks));
  }
}

TEST(AgzipApp, AnahyRoundTripsAcrossVpTaskMatrix) {
  const auto data = make_binary_workload(80000);
  for (const int nvps : {1, 2, 5}) {
    anahy::Runtime rt(vps(nvps));
    for (const int tasks : {1, 4, 5}) {
      EXPECT_EQ(compress::gzip_decompress(agzip_anahy(rt, data, tasks)), data)
          << nvps << " VPs, " << tasks << " tasks";
    }
  }
}

TEST(AgzipApp, ChunkedCrcMatchesWholeFileCrc) {
  const auto data = make_binary_workload(77777);
  const auto whole = compress::crc32(data);
  for (const int tasks : {1, 2, 3, 8}) {
    EXPECT_EQ(chunked_crc(data, tasks), whole) << tasks << " tasks";
  }
}

// ----------------------------------------------------------------- convop

TEST(ConvopApp, AllVariantsAgree) {
  const auto src = image::make_test_image(96, 64, 4);
  const auto kernel = image::Kernel::gaussian3();
  const auto seq = convop_sequential(src, kernel);
  EXPECT_EQ(convop_pthreads(src, kernel, 8), seq);
  anahy::Runtime rt(vps(4));  // the paper's default PV count
  for (const int tasks : {2, 4, 8}) {
    EXPECT_EQ(convop_anahy(rt, src, kernel, tasks), seq) << tasks << " tasks";
  }
}

TEST(ConvopApp, NonMultipleImageSizes) {
  // 67 rows, 4 tasks: the last block gets the 3 extra rows.
  const auto src = image::make_test_image(50, 67, 6);
  const auto kernel = image::Kernel::sharpen3();
  const auto seq = convop_sequential(src, kernel);
  anahy::Runtime rt(vps(2));
  EXPECT_EQ(convop_anahy(rt, src, kernel, 4), seq);
  EXPECT_EQ(convop_pthreads(src, kernel, 4), seq);
}

// -------------------------------------------------------------------- fib

TEST(FibApp, SequentialValues) {
  EXPECT_EQ(fib_sequential(0), 0);
  EXPECT_EQ(fib_sequential(1), 1);
  EXPECT_EQ(fib_sequential(2), 1);
  EXPECT_EQ(fib_sequential(10), 55);
  EXPECT_EQ(fib_sequential(15), 610);
  EXPECT_EQ(fib_sequential(20), 6765);
}

TEST(FibApp, PthreadsMatchesSequential) {
  // Small n: this spawns ~fib(n) system threads, the paper's pain point.
  EXPECT_EQ(fib_pthreads(10), 55);
  EXPECT_EQ(fib_pthreads(13), 233);
}

TEST(FibApp, AnahyMatchesSequentialAcrossVpsAndPolicies) {
  for (const auto policy : {anahy::PolicyKind::kFifo, anahy::PolicyKind::kLifo,
                            anahy::PolicyKind::kWorkStealing}) {
    for (const int nvps : {1, 2, 4}) {
      anahy::Options o;
      o.num_vps = nvps;
      o.policy = policy;
      anahy::Runtime rt(o);
      EXPECT_EQ(fib_anahy(rt, 16), 987)
          << to_string(policy) << " with " << nvps << " VPs";
    }
  }
}

TEST(FibApp, GrainVariantMatches) {
  anahy::Runtime rt(vps(2));
  for (const long cutoff : {2L, 5L, 10L, 100L}) {
    EXPECT_EQ(fib_anahy_grain(rt, 17, cutoff), 1597) << "cutoff " << cutoff;
  }
}

TEST(FibApp, TaskCountFormula) {
  // fib_anahy forks fib(n+1) - 1 tasks.
  EXPECT_EQ(fib_task_count(2), 1);
  EXPECT_EQ(fib_task_count(5), 7);        // fib(6)=8
  EXPECT_EQ(fib_task_count(10), 88);      // fib(11)=89
  anahy::Runtime rt(vps(2));
  ASSERT_EQ(fib_anahy(rt, 10), 55);
  EXPECT_EQ(rt.stats().tasks_created,
            static_cast<std::uint64_t>(fib_task_count(10)));
}

}  // namespace
