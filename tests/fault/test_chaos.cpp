// Seeded chaos suite: the full serve/cluster stack under injected faults.
//
// A FaultyTransport sits under the client endpoint and drops, duplicates,
// corrupts, truncates and delays its frames per a seeded schedule. The
// stack's contract under that abuse:
//
//   * every call resolves exactly once, with a definite outcome;
//   * execution stays exactly-once (retries hit the dedup cache, never a
//     second run);
//   * throwing job bodies come back kFaulted with their message — faults
//     and network loss compose;
//   * a severed client is reaped and its jobs cancelled, and the link
//     works again after healing.
//
// Replayability: the injection schedule is a pure function of the seed,
// which every test logs. Re-run a failure with
//   ANAHY_CHAOS_SEED=<seed> ./test_chaos
// and the injector makes the same decisions on the same frames. (VP
// scheduling still varies; the *faults* do not.)
//
// Runs under the tsan/asan/ubsan matrix (and its own `chaos` ctest label).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include "anahy/fault/fault.hpp"
#include "cluster/serve_frontend.hpp"

namespace {

using namespace cluster;
using namespace std::chrono_literals;
using anahy::fault::FaultProfile;
using anahy::fault::FaultyTransport;

/// Seed for this process: ANAHY_CHAOS_SEED overrides the baked-in default
/// (that is the replay knob the file comment advertises).
std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("ANAHY_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 0);
  return 0xC0FFEEull;
}

std::atomic<std::uint64_t> g_executions{0};

std::vector<std::uint8_t> counted_sum(std::span<const std::uint8_t> in) {
  g_executions.fetch_add(1, std::memory_order_relaxed);
  std::uint32_t sum = 0;
  for (const std::uint8_t b : in) sum += b;
  ByteWriter w;
  w.u32(sum);
  return w.take();
}

std::vector<std::uint8_t> boom(std::span<const std::uint8_t>) {
  throw std::runtime_error("chaos boom");
}

/// Holds a VP long enough for heartbeat/reap machinery to observe an
/// in-flight job.
std::vector<std::uint8_t> slow_nop(std::span<const std::uint8_t>) {
  std::this_thread::sleep_for(300ms);
  return {};
}

void fill_chaos_registry(Registry& reg) {
  reg.add("counted_sum", counted_sum);
  reg.add("boom", boom);
  reg.add("slow_nop", slow_nop);
}

TEST(Chaos, LossyLinkEveryCallResolvesExactlyOnce) {
  const std::uint64_t seed = chaos_seed();
  RecordProperty("chaos_seed", std::to_string(seed));
  SCOPED_TRACE("replay with ANAHY_CHAOS_SEED=" + std::to_string(seed));

  auto fabric = make_memory_fabric(2);
  Registry reg;
  fill_chaos_registry(reg);
  anahy::serve::ServerOptions sopts;
  sopts.runtime.num_vps = 4;
  anahy::serve::JobServer server(std::move(sopts));
  FrontEndOptions fopts;
  fopts.heartbeat_interval = 50'000us;
  fopts.dead_after = 2'000'000us;
  ServeFrontEnd frontend(server, *fabric[0], reg, fopts);

  FaultProfile profile;
  profile.seed = seed;
  profile.drop = 0.10;
  profile.duplicate = 0.10;
  profile.corrupt = 0.08;
  profile.truncate = 0.04;
  profile.delay = 0.08;
  profile.delay_min = 200us;
  profile.delay_max = 2'000us;
  FaultyTransport faulty(std::move(fabric[1]), profile);
  ServeClient client(faulty, /*server_node=*/0, seed);

  g_executions.store(0);
  CallOptions copts;
  copts.deadline = 5'000'000us;
  copts.initial_backoff = 3'000us;
  copts.max_backoff = 50'000us;

  constexpr int kCalls = 60;
  int ok = 0, faulted = 0, other = 0;
  for (int i = 0; i < kCalls; ++i) {
    const bool wants_boom = i % 7 == 3;
    std::vector<std::uint8_t> payload{static_cast<std::uint8_t>(i), 1, 2};
    const auto reply = client.call(wants_boom ? "boom" : "counted_sum",
                                   payload, copts);
    // Definite outcome, never a hang: with a 5 s deadline against ~20%
    // request loss the retries always get through.
    if (wants_boom) {
      EXPECT_EQ(reply.error, anahy::kFaulted) << "call " << i;
      EXPECT_NE(reply.text().find("chaos boom"), std::string::npos)
          << "call " << i;
      ++faulted;
    } else if (reply.error == anahy::kOk) {
      ByteReader r(reply.payload);
      EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(i + 3)) << "call " << i;
      ++ok;
    } else {
      ++other;
    }
  }

  EXPECT_EQ(ok, kCalls - kCalls / 7 - (kCalls % 7 > 3 ? 1 : 0)) << "losses";
  EXPECT_EQ(other, 0) << "no call may end indefinite under retries";
  // Exactly-once: the server ran each distinct sum request once, no matter
  // how many times the lossy link made the client resend it. (Replies
  // travel the clean server endpoint, so every execution was consumed.)
  EXPECT_EQ(g_executions.load(), static_cast<std::uint64_t>(ok));

  // The abuse was real: the injector actually dropped/mangled frames, and
  // the front-end saw and rejected the mangled ones.
  const auto fstats = faulty.stats();
  EXPECT_GT(fstats.drops + fstats.corruptions + fstats.truncations, 0u);
  EXPECT_GT(client.retries(), 0u);
  // Every mangled frame was rejected at the envelope (a frame that was
  // both duplicated and corrupted arrives — and is rejected — twice).
  EXPECT_GE(frontend.rejected_frames(),
            fstats.corruptions + fstats.truncations);
  EXPECT_GT(frontend.retransmits() + frontend.duplicates_suppressed(), 0u)
      << "duplicates hit the dedup path, not a second execution";
}

TEST(Chaos, SeveredPeerIsReapedAndHealsClean) {
  const std::uint64_t seed = chaos_seed();
  RecordProperty("chaos_seed", std::to_string(seed));
  SCOPED_TRACE("replay with ANAHY_CHAOS_SEED=" + std::to_string(seed));

  auto fabric = make_memory_fabric(2);
  Registry reg;
  fill_chaos_registry(reg);
  anahy::serve::ServerOptions sopts;
  sopts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(sopts));
  FrontEndOptions fopts;
  fopts.heartbeat_interval = 20'000us;
  fopts.dead_after = 100'000us;
  ServeFrontEnd frontend(server, *fabric[0], reg, fopts);

  FaultyTransport faulty(std::move(fabric[1]), FaultProfile{.seed = seed});
  ServeClient client(faulty, 0, seed);

  // Healthy link first: a call goes straight through.
  CallOptions copts;
  copts.deadline = 2'000'000us;
  copts.initial_backoff = 5'000us;
  auto reply = client.call("counted_sum", {1, 2, 3}, copts);
  ASSERT_EQ(reply.error, anahy::kOk);

  // Park a slow job on the server so this client has work in flight, then
  // cut the uplink: our pongs stop arriving.
  const auto slow_id = client.submit("slow_nop", {});
  faulty.sever(0);

  // A call over the severed link fails definitively with kUnreachable —
  // never a hang, never an exception.
  CallOptions short_opts;
  short_opts.deadline = 120'000us;
  short_opts.initial_backoff = 5'000us;
  reply = client.call("counted_sum", {9}, short_opts);
  EXPECT_EQ(reply.error, anahy::kUnreachable);

  // The server pings, hears nothing for dead_after, and reaps us —
  // cancelling the abandoned slow job.
  const auto deadline = std::chrono::steady_clock::now() + 3s;
  while (frontend.clients_reaped() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);
  EXPECT_EQ(frontend.clients_reaped(), 1u);
  EXPECT_GT(frontend.pings_sent(), 0u);

  // After healing, the link works again (fresh request ids, clean state).
  faulty.heal(0);
  reply = client.call("counted_sum", {1, 1}, copts);
  EXPECT_EQ(reply.error, anahy::kOk);
  ByteReader r(reply.payload);
  EXPECT_EQ(r.u32(), 2u);
  // The abandoned job resolved exactly once server-side; its reply to a
  // reaped client is at most a harmless frame the client never consumed.
  (void)slow_id;
}

TEST(Chaos, FaultedJobsSurviveTheLossyLink) {
  // kFaulted (a throwing body) and network faults compose: the exception
  // message crosses the wire even when the request needed retries.
  const std::uint64_t seed = chaos_seed() ^ 0x5EEDull;
  RecordProperty("chaos_seed", std::to_string(seed));

  auto fabric = make_memory_fabric(2);
  Registry reg;
  fill_chaos_registry(reg);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  FaultProfile profile;
  profile.seed = seed;
  profile.drop = 0.25;
  FaultyTransport faulty(std::move(fabric[1]), profile);
  ServeClient client(faulty, 0, seed);

  CallOptions copts;
  copts.deadline = 5'000'000us;
  copts.initial_backoff = 2'000us;
  for (int i = 0; i < 12; ++i) {
    const auto reply = client.call("boom", {}, copts);
    ASSERT_EQ(reply.error, anahy::kFaulted) << "call " << i;
    EXPECT_NE(reply.text().find("chaos boom"), std::string::npos);
  }
  EXPECT_EQ(server.stats().of(anahy::Priority::kNormal).faulted, 12u);
}

}  // namespace
