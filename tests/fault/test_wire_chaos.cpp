// Seeded chaos against the event-loop wire path (docs/WIRE.md): a
// FaultyTransport decorating an EpollEndpoint truncates, drops and
// duplicates frames while the endpoint itself is forced through short
// reads and short writes with a tiny max_io_bytes cap. The contract is
// the same as test_chaos.cpp's — every async call resolves exactly once
// with a definite outcome, truncated frames die on the CRC envelope —
// now proven on the transport the serve stack actually ships on.
//
// Replay any failure with ANAHY_CHAOS_SEED=<seed> (printed by each test).
// Runs under the tsan/asan/ubsan matrix and the `chaos` ctest label.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "anahy/fault/fault.hpp"
#include "cluster/serve_frontend.hpp"

namespace {

using namespace cluster;
using namespace std::chrono_literals;
using anahy::fault::FaultProfile;
using anahy::fault::FaultyTransport;

/// Seed for this process: ANAHY_CHAOS_SEED overrides the baked-in default
/// (same replay knob as test_chaos.cpp).
std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("ANAHY_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 0);
  return 0xC0FFEEull;
}

std::vector<std::uint8_t> echo(std::span<const std::uint8_t> in) {
  return {in.begin(), in.end()};
}

/// Epoll fabric with the 9-byte IO cap: every frame crosses the wire in
/// dribbles, so chaos faults land on top of partial reads and writes.
std::vector<std::unique_ptr<Transport>> tiny_io_fabric() {
  EpollOptions opts;
  opts.max_io_bytes = 9;
  return make_epoll_fabric(2, opts);
}

TEST(WireChaos, TruncatedFramesDieOnTheEnvelopeNotInTheDecoder) {
  const std::uint64_t seed = chaos_seed();
  RecordProperty("chaos_seed", std::to_string(seed));
  SCOPED_TRACE("replay with ANAHY_CHAOS_SEED=" + std::to_string(seed));

  auto fabric = tiny_io_fabric();
  Registry reg;
  reg.add("echo", echo);
  anahy::serve::ServerOptions sopts;
  sopts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(sopts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  // Truncation cuts the tail off the CRC envelope *before* the wire
  // prefix is written, so the stream stays parseable — the damage must
  // be caught by the envelope (ANAHY-F00x reject), not corrupt the
  // stream decoder's framing.
  FaultProfile profile;
  profile.seed = seed;
  profile.truncate = 0.25;
  FaultyTransport faulty(std::move(fabric[1]), profile);

  AsyncServeClient client(faulty, /*server_node=*/0, seed);
  CallOptions copts;
  copts.deadline = 10'000'000us;
  copts.initial_backoff = 5'000us;

  constexpr int kCalls = 40;
  std::vector<std::future<AsyncServeClient::Reply>> futures;
  futures.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i)
    futures.push_back(client.submit_async(
        "echo", std::vector<std::uint8_t>(20, static_cast<std::uint8_t>(i)),
        copts));
  int ok = 0;
  for (int i = 0; i < kCalls; ++i) {
    const auto r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(r.error == anahy::kOk || r.error == anahy::kUnreachable)
        << "indefinite outcome " << r.error;
    if (r.error == anahy::kOk) {
      ASSERT_EQ(r.payload.size(), 20u);
      EXPECT_EQ(r.payload[0], static_cast<std::uint8_t>(i));
      ++ok;
    }
  }
  // At 25% truncation with retries, the stack should get real work done.
  EXPECT_GT(ok, kCalls / 2);
  EXPECT_GT(faulty.stats().truncations, 0u);
  // The endpoint under the injector really was dribbling.
  EXPECT_GT(faulty.wire_counters().rx_partial_reads, 0u);
  EXPECT_EQ(client.inflight(), 0u);
}

TEST(WireChaos, LossyDuplicatingLinkStaysExactlyOnce) {
  const std::uint64_t seed = chaos_seed();
  RecordProperty("chaos_seed", std::to_string(seed));
  SCOPED_TRACE("replay with ANAHY_CHAOS_SEED=" + std::to_string(seed));

  auto fabric = tiny_io_fabric();
  Registry reg;
  reg.add("echo", echo);
  anahy::serve::ServerOptions sopts;
  sopts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(sopts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  FaultProfile profile;
  profile.seed = seed;
  profile.drop = 0.10;
  profile.duplicate = 0.15;
  profile.truncate = 0.10;
  FaultyTransport faulty(std::move(fabric[1]), profile);

  AsyncServeClient client(faulty, 0, seed);
  CallOptions copts;
  copts.deadline = 10'000'000us;
  copts.initial_backoff = 5'000us;

  constexpr int kCalls = 50;
  std::vector<std::future<AsyncServeClient::Reply>> futures;
  futures.reserve(kCalls);
  for (int i = 0; i < kCalls; ++i)
    futures.push_back(client.submit_async(
        "echo", {static_cast<std::uint8_t>(i)}, copts));
  int ok = 0;
  for (auto& f : futures) {
    const auto r = f.get();  // exactly once: every future resolves
    ASSERT_TRUE(r.error == anahy::kOk || r.error == anahy::kUnreachable);
    if (r.error == anahy::kOk) ++ok;
  }
  EXPECT_GT(ok, kCalls / 2);
  // Duplicated submissions must have been absorbed by the dedup window,
  // not run twice: submissions seen >= unique ids, executions == replies.
  EXPECT_EQ(client.inflight(), 0u);
  const auto st = faulty.stats();
  EXPECT_GT(st.drops + st.duplicates + st.truncations, 0u);
}

TEST(WireChaos, FaultWrapperStillExposesWireRows) {
  auto fabric = tiny_io_fabric();
  FaultyTransport faulty(std::move(fabric[1]), FaultProfile{});
  // Traffic through the wrapper reaches the inner endpoint's tallies.
  // 20 body bytes + 4 prefix at 9 bytes per syscall: guaranteed dribble.
  faulty.send(0, std::vector<std::uint8_t>(20, 0x5A));
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(fabric[0]->recv(frame, 2s));
  EXPECT_EQ(frame.size(), 20u);

  bool saw_writev = false;
  bool saw_partial = false;
  for (const auto& row : faulty.counters()) {
    if (row.name == "anahy_wire_writev_total" && row.value > 0)
      saw_writev = true;
    if (row.name == "anahy_wire_tx_partial_writes_total" && row.value > 0)
      saw_partial = true;
  }
  EXPECT_TRUE(saw_writev) << "wrapping hid the wire telemetry";
  EXPECT_TRUE(saw_partial) << "9-byte cap produced no partial writes";
}

}  // namespace
