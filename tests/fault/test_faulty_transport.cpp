// Unit tests of anahy::fault::FaultyTransport: every fault kind injects
// what it promises, decisions replay deterministically from the seed, and
// the injected-fault tallies surface through observe::render_text.
#include "anahy/fault/fault.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "anahy/observe/exposition.hpp"
#include "cluster/message.hpp"

namespace {

using namespace std::chrono_literals;
using anahy::fault::FaultProfile;
using anahy::fault::FaultStats;
using anahy::fault::FaultyTransport;
using anahy::fault::SeverEvent;

/// A valid hardened frame with a recognizable payload.
std::vector<std::uint8_t> test_frame(std::uint64_t tag) {
  return cluster::encode(cluster::make_ping(7, tag));
}

/// Drains everything currently deliverable at `t` (waits up to `grace` for
/// stragglers, e.g. delayed frames).
std::vector<std::vector<std::uint8_t>> drain(
    cluster::Transport& t, std::chrono::microseconds grace = 20'000us) {
  std::vector<std::vector<std::uint8_t>> out;
  std::vector<std::uint8_t> frame;
  while (t.recv(frame, grace)) out.push_back(frame);
  return out;
}

TEST(FaultyTransport, ZeroProfileIsTransparent) {
  auto fabric = cluster::make_memory_fabric(2);
  FaultyTransport faulty(std::move(fabric[0]), FaultProfile{});

  for (std::uint64_t i = 0; i < 16; ++i) faulty.send(1, test_frame(i));
  const auto got = drain(*fabric[1], 1000us);
  ASSERT_EQ(got.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    auto d = cluster::decode_frame(got[i]);
    ASSERT_TRUE(d.ok);
    EXPECT_EQ(d.msg.ping.token, i) << "order preserved with no faults";
  }
  const FaultStats s = faulty.stats();
  EXPECT_EQ(s.sends, 16u);
  EXPECT_EQ(s.drops + s.duplicates + s.corruptions + s.truncations + s.delays +
                s.severed_sends,
            0u);
}

TEST(FaultyTransport, DropEverything) {
  auto fabric = cluster::make_memory_fabric(2);
  FaultProfile p;
  p.drop = 1.0;
  FaultyTransport faulty(std::move(fabric[0]), p);

  for (std::uint64_t i = 0; i < 8; ++i) faulty.send(1, test_frame(i));
  EXPECT_TRUE(drain(*fabric[1], 1000us).empty());
  EXPECT_EQ(faulty.stats().drops, 8u);
}

TEST(FaultyTransport, DuplicateEverything) {
  auto fabric = cluster::make_memory_fabric(2);
  FaultProfile p;
  p.duplicate = 1.0;
  FaultyTransport faulty(std::move(fabric[0]), p);

  for (std::uint64_t i = 0; i < 8; ++i) faulty.send(1, test_frame(i));
  EXPECT_EQ(drain(*fabric[1], 1000us).size(), 16u);
  EXPECT_EQ(faulty.stats().duplicates, 8u);
}

TEST(FaultyTransport, CorruptedFramesDieOnTheChecksum) {
  auto fabric = cluster::make_memory_fabric(2);
  FaultProfile p;
  p.corrupt = 1.0;
  FaultyTransport faulty(std::move(fabric[0]), p);

  for (std::uint64_t i = 0; i < 32; ++i) faulty.send(1, test_frame(i));
  const auto got = drain(*fabric[1], 1000us);
  ASSERT_EQ(got.size(), 32u) << "corruption mangles frames, not delivery";
  for (const auto& f : got) {
    auto d = cluster::decode_frame(f);
    // CRC-32 catches every single-bit flip in the body; a flip in the
    // envelope trips magic/version/length instead. Either way: rejected,
    // with a diagnostic in the ANAHY-F00x namespace.
    ASSERT_FALSE(d.ok);
    EXPECT_EQ(d.diagnostic.rfind("ANAHY-F00", 0), 0u) << d.diagnostic;
  }
  EXPECT_EQ(faulty.stats().corruptions, 32u);
}

TEST(FaultyTransport, TruncatedFramesAreRejectedNotMisparsed) {
  auto fabric = cluster::make_memory_fabric(2);
  FaultProfile p;
  p.truncate = 1.0;
  FaultyTransport faulty(std::move(fabric[0]), p);

  for (std::uint64_t i = 0; i < 32; ++i) faulty.send(1, test_frame(i));
  for (const auto& f : drain(*fabric[1], 1000us)) {
    auto d = cluster::decode_frame(f);
    ASSERT_FALSE(d.ok);
    EXPECT_EQ(d.diagnostic.rfind("ANAHY-F00", 0), 0u) << d.diagnostic;
  }
  EXPECT_EQ(faulty.stats().truncations, 32u);
}

TEST(FaultyTransport, DelayedFramesStillArrive) {
  auto fabric = cluster::make_memory_fabric(2);
  FaultProfile p;
  p.delay = 1.0;
  p.delay_min = 1'000us;
  p.delay_max = 5'000us;
  FaultyTransport faulty(std::move(fabric[0]), p);

  for (std::uint64_t i = 0; i < 8; ++i) faulty.send(1, test_frame(i));
  // Held frames are released when the faulty endpoint is next pumped
  // (send or recv), like a real slow link that needs its owner to turn the
  // crank. Pump until everything flushed, then drain the peer.
  std::size_t got = 0;
  std::vector<std::uint8_t> unused, frame;
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (got < 8 && std::chrono::steady_clock::now() < deadline) {
    faulty.recv(unused, 2'000us);  // flushes frames whose hold expired
    while (fabric[1]->recv(frame, 0us)) ++got;
  }
  EXPECT_EQ(got, 8u) << "delay reorders, never loses";
  EXPECT_EQ(faulty.stats().delays, 8u);
}

TEST(FaultyTransport, SeverScheduleCutsTheLinkMidRun) {
  auto fabric = cluster::make_memory_fabric(2);
  FaultyTransport faulty(std::move(fabric[0]), FaultProfile{},
                         {SeverEvent{/*after_op=*/5, /*peer=*/1}});

  for (std::uint64_t i = 0; i < 10; ++i) faulty.send(1, test_frame(i));
  const auto got = drain(*fabric[1], 1000us);
  ASSERT_EQ(got.size(), 5u) << "ops 0..4 delivered, 5..9 severed";
  for (std::uint64_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(cluster::decode_frame(got[i]).msg.ping.token, i);
  EXPECT_EQ(faulty.stats().severed_sends, 5u);

  faulty.heal(1);
  faulty.send(1, test_frame(99));
  const auto after = drain(*fabric[1], 1000us);
  ASSERT_EQ(after.size(), 1u) << "healed link delivers again";
}

TEST(FaultyTransport, SameSeedSameFaultSequence) {
  // Two injectors with identical seeds fed the identical send sequence
  // must make identical decisions — the chaos-replay guarantee.
  const auto run = [](std::uint64_t seed) {
    auto fabric = cluster::make_memory_fabric(2);
    FaultProfile p;
    p.seed = seed;
    p.drop = 0.2;
    p.duplicate = 0.15;
    p.corrupt = 0.1;
    p.truncate = 0.05;
    FaultyTransport faulty(std::move(fabric[0]), p);
    for (std::uint64_t i = 0; i < 500; ++i) faulty.send(1, test_frame(i));
    // Which ops survived, and how they were mangled, must replay exactly:
    // fingerprint the delivered byte stream.
    std::vector<std::vector<std::uint8_t>> delivered;
    std::vector<std::uint8_t> frame;
    while (fabric[1]->recv(frame, std::chrono::microseconds{1000}))
      delivered.push_back(frame);
    return std::make_pair(faulty.stats(), delivered);
  };

  const auto [stats_a, frames_a] = run(42);
  const auto [stats_b, frames_b] = run(42);
  EXPECT_EQ(stats_a.drops, stats_b.drops);
  EXPECT_EQ(stats_a.duplicates, stats_b.duplicates);
  EXPECT_EQ(stats_a.corruptions, stats_b.corruptions);
  EXPECT_EQ(stats_a.truncations, stats_b.truncations);
  EXPECT_EQ(frames_a, frames_b) << "same seed must replay byte-identically";

  // A different seed makes different decisions (overwhelmingly likely
  // over 500 ops; pinned here so a degenerate RNG regression is caught).
  const auto [stats_c, frames_c] = run(43);
  EXPECT_NE(frames_a, frames_c);
}

TEST(FaultyTransport, CountersRideTheExposition) {
  auto fabric = cluster::make_memory_fabric(2);
  FaultProfile p;
  p.drop = 1.0;
  FaultyTransport faulty(std::move(fabric[0]), p);
  for (std::uint64_t i = 0; i < 3; ++i) faulty.send(1, test_frame(i));

  const std::string text =
      anahy::observe::render_text(anahy::observe::Snapshot{}, {},
                                  faulty.counters());
  EXPECT_NE(text.find("anahy_fault_sends_total 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("anahy_fault_injected_total{kind=\"drop\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("anahy_fault_injected_total{kind=\"corrupt\"} 0"),
            std::string::npos)
      << text;
}

TEST(FaultyTransport, ForwardsIdentityAndOpIndex) {
  auto fabric = cluster::make_memory_fabric(3);
  FaultyTransport faulty(std::move(fabric[2]), FaultProfile{});
  EXPECT_EQ(faulty.node_id(), 2);
  EXPECT_EQ(faulty.node_count(), 3);
  EXPECT_EQ(faulty.op_index(), 0u);
  faulty.send(0, test_frame(0));
  EXPECT_EQ(faulty.op_index(), 1u);
}

}  // namespace
