// anahy::rejuv::RejuvPolicy — the trip/cooldown state machine over the
// rolling window's analysis (docs/REJUV.md). The detectors themselves are
// covered by tests/aging; here only the policy semantics matter, so the
// Analysis inputs are synthesized directly.
#include <gtest/gtest.h>

#include "anahy/aging/analyze.hpp"
#include "anahy/rejuv/policy.hpp"

namespace {

using anahy::aging::Analysis;
using anahy::rejuv::PolicyOptions;
using anahy::rejuv::RejuvPolicy;
namespace code = anahy::aging::code;

Analysis with_finding(const char* finding_code, std::size_t points = 100) {
  Analysis a;
  a.points = points;
  if (finding_code != nullptr)
    a.findings.push_back({finding_code, "synthetic evidence"});
  return a;
}

TEST(RejuvPolicy, NoVerdictBelowMinPoints) {
  PolicyOptions o;
  o.min_points = 32;
  RejuvPolicy p(o);
  const auto v = p.evaluate(with_finding(code::kHeapGrowth, 31), 0);
  EXPECT_FALSE(v.trip);
  EXPECT_EQ(p.trips(), 0u);
}

TEST(RejuvPolicy, TripsOnHeapGrowthWithReasonCarryingCode) {
  RejuvPolicy p;
  const auto v = p.evaluate(with_finding(code::kHeapGrowth), 1'000);
  EXPECT_TRUE(v.trip);
  EXPECT_EQ(v.reason, std::string(code::kHeapGrowth) +
                          ": synthetic evidence");
  EXPECT_EQ(p.trips(), 1u);
}

TEST(RejuvPolicy, CleanAnalysisNeverTrips) {
  RejuvPolicy p;
  EXPECT_FALSE(p.evaluate(with_finding(nullptr), 1'000).trip);
}

TEST(RejuvPolicy, CooldownSuppressesRetripThenRearms) {
  PolicyOptions o;
  o.cooldown_ns = 1'000;
  RejuvPolicy p(o);
  EXPECT_TRUE(p.evaluate(with_finding(code::kHeapGrowth), 0).trip);
  // Still dirty window inside the cooldown: no re-trip.
  EXPECT_FALSE(p.evaluate(with_finding(code::kHeapGrowth), 999).trip);
  // Cooldown elapsed: trips again.
  EXPECT_TRUE(p.evaluate(with_finding(code::kHeapGrowth), 1'000).trip);
  EXPECT_EQ(p.trips(), 2u);
}

TEST(RejuvPolicy, DisarmedDetectorIsIgnored) {
  PolicyOptions o;
  o.trip_on_heap_growth = false;
  RejuvPolicy p(o);
  EXPECT_FALSE(p.evaluate(with_finding(code::kHeapGrowth), 0).trip);
  // The other armed detectors still work.
  EXPECT_TRUE(p.evaluate(with_finding(code::kFragmentationCreep), 0).trip);
}

TEST(RejuvPolicy, NonAgingCodesNeverTrip) {
  RejuvPolicy p;
  // A004 (class leak), A005 (series gap) and A006 (spectrum widening) are
  // diagnoses, not rejuvenation triggers: a restart fixes none of them.
  EXPECT_FALSE(p.evaluate(with_finding(code::kPoolClassLeak), 0).trip);
  EXPECT_FALSE(p.evaluate(with_finding(code::kSeriesGap), 0).trip);
  EXPECT_FALSE(p.evaluate(with_finding(code::kSpectrumWidening), 0).trip);
  EXPECT_EQ(p.trips(), 0u);
}

TEST(RejuvPolicy, FirstArmedFindingWins) {
  PolicyOptions o;
  o.trip_on_heap_growth = false;  // first finding disarmed
  RejuvPolicy p(o);
  Analysis a = with_finding(code::kHeapGrowth);
  a.findings.push_back({code::kLatencyCreep, "latency evidence"});
  const auto v = p.evaluate(a, 0);
  EXPECT_TRUE(v.trip);
  EXPECT_EQ(v.reason, std::string(code::kLatencyCreep) +
                          ": latency evidence");
}

}  // namespace
