// anahy::rejuv::MemoryBudget / AdmissionController — the pressure model
// and its cached submit-path verdicts (docs/REJUV.md). The invariants:
// the share ladder sheds batch first, high never sheds below the hard
// total, and a disabled budget (total_bytes == 0) never sheds anything.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "anahy/rejuv/budget.hpp"
#include "anahy/rejuv/controller.hpp"
#include "anahy/task_pool.hpp"

namespace {

using anahy::kNumPriorities;
using anahy::PoolSnapshot;
using anahy::Priority;
using anahy::rejuv::AdmissionController;
using anahy::rejuv::ControllerOptions;
using anahy::rejuv::Decision;
using anahy::rejuv::MemoryBudget;

constexpr std::uint64_t kMiB = 1024 * 1024;

TEST(MemoryBudget, DisabledBudgetScoresZeroForEveryClass) {
  MemoryBudget b;  // default options: total_bytes == 0
  EXPECT_FALSE(b.enabled());
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    const auto cls = static_cast<Priority>(c);
    EXPECT_EQ(b.score(/*live_bytes=*/1ull << 40, cls), 0.0);
    EXPECT_FALSE(b.over(1ull << 40, cls));
  }
}

TEST(MemoryBudget, ShareLadderShedsBatchFirstThenNormal) {
  MemoryBudget::Options o;
  o.total_bytes = kMiB;  // shares: high 1.0, normal 0.75, batch 0.5
  MemoryBudget b(o);

  // At 60% occupancy only batch (slice 512 KiB) is over.
  const std::uint64_t live = 600 * 1024;
  EXPECT_TRUE(b.over(live, Priority::kBatch));
  EXPECT_FALSE(b.over(live, Priority::kNormal));
  EXPECT_FALSE(b.over(live, Priority::kHigh));

  // At 80% normal (slice 768 KiB) is over too; high still flows.
  const std::uint64_t live2 = 800 * 1024;
  EXPECT_TRUE(b.over(live2, Priority::kBatch));
  EXPECT_TRUE(b.over(live2, Priority::kNormal));
  EXPECT_FALSE(b.over(live2, Priority::kHigh));

  // At the hard total even high is over.
  EXPECT_TRUE(b.over(kMiB, Priority::kHigh));
}

TEST(MemoryBudget, ScoreIsForwardLookingViaExpectedJobBytes) {
  MemoryBudget::Options o;
  o.total_bytes = kMiB;
  o.class_share = {1.0, 1.0, 1.0};
  MemoryBudget b(o);
  // No history: the default prior is the projection.
  EXPECT_EQ(b.expected_job_bytes(Priority::kNormal), o.default_job_bytes);
  // live + prior == total → score exactly 1.0 (over).
  EXPECT_TRUE(b.over(kMiB - o.default_job_bytes, Priority::kNormal));
  EXPECT_FALSE(b.over(kMiB - o.default_job_bytes - 1, Priority::kNormal));
}

TEST(MemoryBudget, EwmaSeedsOnFirstPeakThenConverges) {
  MemoryBudget::Options o;
  o.total_bytes = kMiB;
  o.ewma_alpha = 0.5;
  MemoryBudget b(o);

  b.note_job_peak(Priority::kNormal, 1000);
  EXPECT_EQ(b.expected_job_bytes(Priority::kNormal), 1000u);  // seeded
  b.note_job_peak(Priority::kNormal, 2000);
  EXPECT_EQ(b.expected_job_bytes(Priority::kNormal), 1500u);  // 1000+.5*1000
  b.note_job_peak(Priority::kNormal, 2000);
  EXPECT_EQ(b.expected_job_bytes(Priority::kNormal), 1750u);
  // History is per class: batch still sits on the prior.
  EXPECT_EQ(b.expected_job_bytes(Priority::kBatch), o.default_job_bytes);
}

TEST(MemoryBudget, ZeroShareAdmitsNothingAndSharesAreClamped) {
  MemoryBudget::Options o;
  o.total_bytes = kMiB;
  o.class_share = {2.0, -1.0, 0.0};  // clamped to {1.0, 0.0, 0.0}
  MemoryBudget b(o);
  EXPECT_EQ(b.options().class_share[0], 1.0);
  EXPECT_EQ(b.options().class_share[1], 0.0);
  // A zero slice is over at any occupancy, even zero.
  EXPECT_TRUE(b.over(0, Priority::kNormal));
  EXPECT_TRUE(b.over(0, Priority::kBatch));
  EXPECT_FALSE(b.over(0, Priority::kHigh));
}

PoolSnapshot snapshot_with_live(std::uint64_t bytes) {
  PoolSnapshot s{};
  s.live_bytes = bytes;
  return s;
}

TEST(AdmissionController, VerdictsFollowRefreshedPressure) {
  ControllerOptions o;
  o.budget.total_bytes = kMiB;
  AdmissionController c(o);
  ASSERT_TRUE(c.enabled());

  // Fresh controller: nothing scored yet, everything admits.
  EXPECT_EQ(c.admit(Priority::kBatch), Decision::kAdmit);

  c.refresh(snapshot_with_live(800 * 1024));  // batch + normal over
  EXPECT_EQ(c.admit(Priority::kHigh), Decision::kAdmit);
  EXPECT_EQ(c.admit(Priority::kNormal), Decision::kReject);
  EXPECT_EQ(c.admit(Priority::kBatch), Decision::kDefer);
  EXPECT_TRUE(c.over(Priority::kBatch));
  EXPECT_GE(c.last_score(Priority::kBatch), 1.0);
  EXPECT_LT(c.last_score(Priority::kHigh), 1.0);

  c.refresh(snapshot_with_live(0));  // pressure cleared
  EXPECT_EQ(c.admit(Priority::kBatch), Decision::kAdmit);
  EXPECT_FALSE(c.over(Priority::kBatch));
}

TEST(AdmissionController, BatchShedModeSelectsDeferOrReject) {
  ControllerOptions o;
  o.budget.total_bytes = kMiB;
  o.batch_shed = ControllerOptions::BatchShed::kReject;
  AdmissionController c(o);
  c.refresh(snapshot_with_live(kMiB));
  EXPECT_EQ(c.admit(Priority::kBatch), Decision::kReject);
}

TEST(AdmissionController, HighNeverShedsBelowHardTotal) {
  ControllerOptions o;
  o.budget.total_bytes = kMiB;
  AdmissionController c(o);
  c.refresh(snapshot_with_live(2 * kMiB));  // everyone over, even high
  // admit() still lets high through: the class is shed by queueing
  // pressure (max_pending), never by the budget.
  EXPECT_EQ(c.admit(Priority::kHigh), Decision::kAdmit);
  EXPECT_TRUE(c.over(Priority::kHigh));
}

// ----------------------------------------------------------------------
// kAuto environment sizing (fake cgroup/statm files; docs/REJUV.md).

/// Writes `content` to a fresh temp file and returns its path.
std::string fake_file(const std::string& name, const std::string& content) {
  const std::string path =
      ::testing::TempDir() + "anahy_budget_" + name + ".txt";
  std::FILE* f = std::fopen(path.c_str(), "we");
  EXPECT_NE(f, nullptr) << path;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return path;
}

TEST(MemoryBudgetAuto, CgroupLimitWins) {
  const std::string cg = fake_file("cg_limited", "268435456\n");
  const std::string sm = fake_file("statm_a", "100000 50000 100 1 0 1 0\n");
  EXPECT_EQ(MemoryBudget::auto_total_bytes(cg, sm), 268435456u);
}

TEST(MemoryBudgetAuto, UnlimitedCgroupFallsBackToRss) {
  const std::string cg = fake_file("cg_max", "max\n");
  const std::string sm = fake_file("statm_b", "9999 1000 100 1 0 1 0\n");
  const long page = sysconf(_SC_PAGESIZE);
  const std::uint64_t page_bytes =
      page > 0 ? static_cast<std::uint64_t>(page) : 4096;
  // 8x current RSS: headroom for a leaking server, well short of swap.
  EXPECT_EQ(MemoryBudget::auto_total_bytes(cg, sm), 8 * 1000 * page_bytes);
}

TEST(MemoryBudgetAuto, NothingToSizeFromDisablesTheBudget) {
  const std::string none = "/nonexistent/anahy-budget-test";
  EXPECT_EQ(MemoryBudget::auto_total_bytes(none, none), 0u);

  MemoryBudget::Options o;
  o.total_bytes = MemoryBudget::kAuto;
  o.cgroup_max_path = none;
  o.statm_path = none;
  const MemoryBudget b(o);
  EXPECT_FALSE(b.enabled());
  EXPECT_EQ(b.score(1ull << 30, Priority::kBatch), 0.0);
}

TEST(MemoryBudgetAuto, AutoFractionScalesTheResolvedTotal) {
  const std::string cg = fake_file("cg_frac", "1048576\n");
  const std::string sm = fake_file("statm_c", "100 10 1 1 0 1 0\n");
  MemoryBudget::Options o;
  o.total_bytes = MemoryBudget::kAuto;
  o.auto_fraction = 0.25;
  o.cgroup_max_path = cg;
  o.statm_path = sm;
  const MemoryBudget b(o);
  EXPECT_TRUE(b.enabled());
  EXPECT_EQ(b.options().total_bytes, 1048576u / 4);
}

TEST(MemoryBudgetAuto, GarbageCgroupValueFallsThrough) {
  // A cgroup file with a non-numeric value must not poison the budget —
  // the resolver falls through to the statm anchor.
  const std::string cg = fake_file("cg_junk", "not-a-number\n");
  const std::string sm = fake_file("statm_d", "50 5 1 1 0 1 0\n");
  const long page = sysconf(_SC_PAGESIZE);
  const std::uint64_t page_bytes =
      page > 0 ? static_cast<std::uint64_t>(page) : 4096;
  EXPECT_EQ(MemoryBudget::auto_total_bytes(cg, sm), 8 * 5 * page_bytes);
}

}  // namespace
