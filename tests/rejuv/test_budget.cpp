// anahy::rejuv::MemoryBudget / AdmissionController — the pressure model
// and its cached submit-path verdicts (docs/REJUV.md). The invariants:
// the share ladder sheds batch first, high never sheds below the hard
// total, and a disabled budget (total_bytes == 0) never sheds anything.
#include <gtest/gtest.h>

#include "anahy/rejuv/budget.hpp"
#include "anahy/rejuv/controller.hpp"
#include "anahy/task_pool.hpp"

namespace {

using anahy::kNumPriorities;
using anahy::PoolSnapshot;
using anahy::Priority;
using anahy::rejuv::AdmissionController;
using anahy::rejuv::ControllerOptions;
using anahy::rejuv::Decision;
using anahy::rejuv::MemoryBudget;

constexpr std::uint64_t kMiB = 1024 * 1024;

TEST(MemoryBudget, DisabledBudgetScoresZeroForEveryClass) {
  MemoryBudget b;  // default options: total_bytes == 0
  EXPECT_FALSE(b.enabled());
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    const auto cls = static_cast<Priority>(c);
    EXPECT_EQ(b.score(/*live_bytes=*/1ull << 40, cls), 0.0);
    EXPECT_FALSE(b.over(1ull << 40, cls));
  }
}

TEST(MemoryBudget, ShareLadderShedsBatchFirstThenNormal) {
  MemoryBudget::Options o;
  o.total_bytes = kMiB;  // shares: high 1.0, normal 0.75, batch 0.5
  MemoryBudget b(o);

  // At 60% occupancy only batch (slice 512 KiB) is over.
  const std::uint64_t live = 600 * 1024;
  EXPECT_TRUE(b.over(live, Priority::kBatch));
  EXPECT_FALSE(b.over(live, Priority::kNormal));
  EXPECT_FALSE(b.over(live, Priority::kHigh));

  // At 80% normal (slice 768 KiB) is over too; high still flows.
  const std::uint64_t live2 = 800 * 1024;
  EXPECT_TRUE(b.over(live2, Priority::kBatch));
  EXPECT_TRUE(b.over(live2, Priority::kNormal));
  EXPECT_FALSE(b.over(live2, Priority::kHigh));

  // At the hard total even high is over.
  EXPECT_TRUE(b.over(kMiB, Priority::kHigh));
}

TEST(MemoryBudget, ScoreIsForwardLookingViaExpectedJobBytes) {
  MemoryBudget::Options o;
  o.total_bytes = kMiB;
  o.class_share = {1.0, 1.0, 1.0};
  MemoryBudget b(o);
  // No history: the default prior is the projection.
  EXPECT_EQ(b.expected_job_bytes(Priority::kNormal), o.default_job_bytes);
  // live + prior == total → score exactly 1.0 (over).
  EXPECT_TRUE(b.over(kMiB - o.default_job_bytes, Priority::kNormal));
  EXPECT_FALSE(b.over(kMiB - o.default_job_bytes - 1, Priority::kNormal));
}

TEST(MemoryBudget, EwmaSeedsOnFirstPeakThenConverges) {
  MemoryBudget::Options o;
  o.total_bytes = kMiB;
  o.ewma_alpha = 0.5;
  MemoryBudget b(o);

  b.note_job_peak(Priority::kNormal, 1000);
  EXPECT_EQ(b.expected_job_bytes(Priority::kNormal), 1000u);  // seeded
  b.note_job_peak(Priority::kNormal, 2000);
  EXPECT_EQ(b.expected_job_bytes(Priority::kNormal), 1500u);  // 1000+.5*1000
  b.note_job_peak(Priority::kNormal, 2000);
  EXPECT_EQ(b.expected_job_bytes(Priority::kNormal), 1750u);
  // History is per class: batch still sits on the prior.
  EXPECT_EQ(b.expected_job_bytes(Priority::kBatch), o.default_job_bytes);
}

TEST(MemoryBudget, ZeroShareAdmitsNothingAndSharesAreClamped) {
  MemoryBudget::Options o;
  o.total_bytes = kMiB;
  o.class_share = {2.0, -1.0, 0.0};  // clamped to {1.0, 0.0, 0.0}
  MemoryBudget b(o);
  EXPECT_EQ(b.options().class_share[0], 1.0);
  EXPECT_EQ(b.options().class_share[1], 0.0);
  // A zero slice is over at any occupancy, even zero.
  EXPECT_TRUE(b.over(0, Priority::kNormal));
  EXPECT_TRUE(b.over(0, Priority::kBatch));
  EXPECT_FALSE(b.over(0, Priority::kHigh));
}

PoolSnapshot snapshot_with_live(std::uint64_t bytes) {
  PoolSnapshot s{};
  s.live_bytes = bytes;
  return s;
}

TEST(AdmissionController, VerdictsFollowRefreshedPressure) {
  ControllerOptions o;
  o.budget.total_bytes = kMiB;
  AdmissionController c(o);
  ASSERT_TRUE(c.enabled());

  // Fresh controller: nothing scored yet, everything admits.
  EXPECT_EQ(c.admit(Priority::kBatch), Decision::kAdmit);

  c.refresh(snapshot_with_live(800 * 1024));  // batch + normal over
  EXPECT_EQ(c.admit(Priority::kHigh), Decision::kAdmit);
  EXPECT_EQ(c.admit(Priority::kNormal), Decision::kReject);
  EXPECT_EQ(c.admit(Priority::kBatch), Decision::kDefer);
  EXPECT_TRUE(c.over(Priority::kBatch));
  EXPECT_GE(c.last_score(Priority::kBatch), 1.0);
  EXPECT_LT(c.last_score(Priority::kHigh), 1.0);

  c.refresh(snapshot_with_live(0));  // pressure cleared
  EXPECT_EQ(c.admit(Priority::kBatch), Decision::kAdmit);
  EXPECT_FALSE(c.over(Priority::kBatch));
}

TEST(AdmissionController, BatchShedModeSelectsDeferOrReject) {
  ControllerOptions o;
  o.budget.total_bytes = kMiB;
  o.batch_shed = ControllerOptions::BatchShed::kReject;
  AdmissionController c(o);
  c.refresh(snapshot_with_live(kMiB));
  EXPECT_EQ(c.admit(Priority::kBatch), Decision::kReject);
}

TEST(AdmissionController, HighNeverShedsBelowHardTotal) {
  ControllerOptions o;
  o.budget.total_bytes = kMiB;
  AdmissionController c(o);
  c.refresh(snapshot_with_live(2 * kMiB));  // everyone over, even high
  // admit() still lets high through: the class is shed by queueing
  // pressure (max_pending), never by the budget.
  EXPECT_EQ(c.admit(Priority::kHigh), Decision::kAdmit);
  EXPECT_TRUE(c.over(Priority::kHigh));
}

}  // namespace
