// TSan regression tests for the ServeFrontEnd teardown path.
//
// The historical bug: ServeFrontEnd::stop() joined the pump thread and
// returned, but completion callbacks of still-resolving jobs kept a raw
// reference to the transport — destroying the transport right after stop()
// let a late on_complete send on a dead object. The fix routes every
// callback through a shared Link whose transport pointer stop() nulls
// under the Link mutex; these tests hammer exactly that window and are
// meant to run under -DANAHY_SAN=thread (ctest -L tsan).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cluster/serve_frontend.hpp"

namespace {

using namespace cluster;
using namespace std::chrono_literals;

std::vector<std::uint8_t> echo(std::span<const std::uint8_t> in) {
  return {in.begin(), in.end()};
}

TEST(FrontEndRaces, StopThenDestroyTransportWhileJobsResolve) {
  // Submit a burst, then stop the front-end and destroy the fabric while
  // the server is still resolving: no completion callback may touch the
  // destroyed transport (TSan/ASan would flag it).
  for (int round = 0; round < 20; ++round) {
    auto fabric = make_memory_fabric(2);
    Registry reg;
    reg.add("echo", echo);
    anahy::serve::ServerOptions opts;
    opts.runtime.num_vps = 2;
    anahy::serve::JobServer server(std::move(opts));
    auto frontend =
        std::make_unique<ServeFrontEnd>(server, *fabric[0], reg);

    ServeClient client(*fabric[1], 0);
    for (int i = 0; i < 16; ++i) client.submit("echo", {1, 2, 3});

    // Give the pump a moment to hand some submissions to the server, then
    // tear down mid-flight.
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    frontend->stop();
    fabric.clear();     // transports gone
    server.drain();     // jobs resolve; callbacks must drop their replies
    frontend.reset();
  }
}

TEST(FrontEndRaces, StopRacesCompletionCallbacks) {
  // stop() from the test thread races the VPs' on_complete callbacks
  // directly (no sleep staging): the Link mutex must order "detach
  // transport" against every in-flight send.
  for (int round = 0; round < 20; ++round) {
    auto fabric = make_memory_fabric(2);
    Registry reg;
    reg.add("echo", echo);
    anahy::serve::ServerOptions opts;
    opts.runtime.num_vps = 4;
    anahy::serve::JobServer server(std::move(opts));
    ServeFrontEnd frontend(server, *fabric[0], reg);

    ServeClient client(*fabric[1], 0);
    for (int i = 0; i < 32; ++i) client.submit("echo", {9});

    std::thread stopper([&] { frontend.stop(); });
    stopper.join();
    fabric.clear();
    server.drain();
  }
}

TEST(FrontEndRaces, DestructorAfterServerDrainIsClean) {
  // The benign order (drain first, then stop) must also stay clean.
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("echo", echo);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  {
    ServeFrontEnd frontend(server, *fabric[0], reg);
    ServeClient client(*fabric[1], 0);
    const auto id = client.submit("echo", {4, 2});
    ServeClient::Reply reply;
    ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
    EXPECT_EQ(reply.error, anahy::kOk);
    server.drain();
  }  // ~ServeFrontEnd after drain
}

}  // namespace
