// Functional tests of the anahy::serve job service: the submit -> handle
// contract, admission control, priorities, timeouts, per-job checking and
// the drain/shutdown/destruction lifecycle.
#include "anahy/serve/job_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace anahy;
using namespace anahy::serve;

constexpr std::int64_t kMs = 1'000'000;
constexpr std::int64_t kSec = 1'000 * kMs;

ServerOptions small_server(int vps = 2) {
  ServerOptions o;
  o.runtime.num_vps = vps;
  return o;
}

/// Body returning its input pointer (identity job).
void* identity(void* in) { return in; }

/// Body that spins until the pointed-to flag becomes true.
void* wait_for_flag(void* in) {
  auto* flag = static_cast<std::atomic<bool>*>(in);
  while (!flag->load(std::memory_order_acquire))
    std::this_thread::yield();
  return nullptr;
}

TEST(JobServer, SubmitRunsBodyAndResolvesHandle) {
  JobServer server(small_server());
  int value = 41;
  JobSpec spec;
  spec.body = [](void* in) -> void* {
    ++*static_cast<int*>(in);
    return in;
  };
  spec.input = &value;
  spec.label = "inc";
  JobHandle h = server.submit(std::move(spec));
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.wait(), kOk);
  EXPECT_TRUE(h.done());
  EXPECT_EQ(h.state(), JobState::kDone);
  EXPECT_EQ(h.result().value, &value);
  EXPECT_EQ(value, 42);
  EXPECT_GT(h.id(), 0u);
}

TEST(JobServer, EmptyBodyIsRejectedInvalid) {
  JobServer server(small_server());
  JobHandle h = server.submit(JobSpec{});
  EXPECT_EQ(h.wait(), kInvalid);
}

TEST(JobServer, CheckWithoutServerSupportIsRejectedInvalid) {
  JobServer server(small_server());  // ServerOptions::check off
  JobSpec spec;
  spec.body = identity;
  spec.check = true;
  EXPECT_EQ(server.submit(std::move(spec)).wait(), kInvalid);
}

TEST(JobServer, DescendantForksInheritTheJobContext) {
  JobServer server(small_server(4));
  Runtime& rt = server.runtime();
  std::atomic<int> leaves{0};
  JobSpec spec;
  spec.body = [&](void*) -> void* {
    std::vector<TaskPtr> children;
    for (int i = 0; i < 16; ++i)
      children.push_back(rt.fork(
          [](void* in) -> void* {
            static_cast<std::atomic<int>*>(in)->fetch_add(1);
            return nullptr;
          },
          &leaves));
    for (auto& c : children) rt.join(c, nullptr);
    return nullptr;
  };
  JobHandle h = server.submit(std::move(spec));
  ASSERT_EQ(h.wait(), kOk);
  EXPECT_EQ(leaves.load(), 16);
  // Root + 16 children, all attributed to the job via its context.
  EXPECT_EQ(h.result().stats.tasks_created, 17u);
  EXPECT_EQ(h.result().stats.tasks_executed, 17u);
  EXPECT_EQ(h.result().stats.tasks_cancelled, 0u);
  EXPECT_GE(h.result().stats.queue_wait_ns, 0);
  EXPECT_GT(h.result().stats.exec_ns, 0);
}

TEST(JobServer, PerClassStatsAreAccounted) {
  JobServer server(small_server());
  const Priority classes[] = {Priority::kHigh, Priority::kNormal,
                              Priority::kBatch};
  std::vector<JobHandle> handles;
  for (Priority p : classes) {
    JobSpec spec;
    spec.body = identity;
    spec.priority = p;
    handles.push_back(server.submit(std::move(spec)));
  }
  for (auto& h : handles) EXPECT_EQ(h.wait(), kOk);
  const ServerStats s = server.stats();
  for (Priority p : classes) {
    EXPECT_EQ(s.of(p).submitted, 1u) << to_string(p);
    EXPECT_EQ(s.of(p).completed, 1u) << to_string(p);
  }
  EXPECT_EQ(s.submitted_total(), 3u);
  EXPECT_EQ(s.resolved_total(), 3u);
}

TEST(JobServer, MetricsTextExposesCounters) {
  JobServer server(small_server());
  JobSpec spec;
  spec.body = identity;
  server.submit(std::move(spec)).wait();
  const std::string text = server.metrics_text();
  EXPECT_NE(text.find("anahy_serve_jobs_submitted_total{class=\"normal\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("anahy_serve_jobs_active"), std::string::npos);
  EXPECT_NE(text.find("anahy_serve_queue_wait_ns_sum"), std::string::npos);
}

TEST(JobServer, RejectPolicyResolvesOverloadedWhenQueueFull) {
  ServerOptions opts = small_server();
  opts.max_pending = 1;
  opts.max_active = 1;
  opts.admission = ServerOptions::Admission::kReject;
  JobServer server(std::move(opts));

  std::atomic<bool> release{false};
  JobSpec blocker;
  blocker.body = wait_for_flag;
  blocker.input = &release;
  JobHandle active = server.submit(std::move(blocker));
  // Wait until the blocker occupies the single active slot.
  while (server.stats().active == 0) std::this_thread::yield();

  JobSpec queued;
  queued.body = identity;
  JobHandle pending = server.submit(std::move(queued));  // fills the queue

  JobSpec excess;
  excess.body = identity;
  JobHandle rejected = server.submit(std::move(excess));
  EXPECT_EQ(rejected.wait(), kOverloaded);
  EXPECT_EQ(server.stats().of(Priority::kNormal).rejected, 1u);

  release.store(true, std::memory_order_release);
  EXPECT_EQ(active.wait(), kOk);
  EXPECT_EQ(pending.wait(), kOk);
}

TEST(JobServer, BlockPolicyAppliesBackpressureThenAdmits) {
  ServerOptions opts = small_server();
  opts.max_pending = 1;
  opts.max_active = 1;
  opts.admission = ServerOptions::Admission::kBlock;
  JobServer server(std::move(opts));

  std::atomic<bool> release{false};
  JobSpec blocker;
  blocker.body = wait_for_flag;
  blocker.input = &release;
  JobHandle active = server.submit(std::move(blocker));
  while (server.stats().active == 0) std::this_thread::yield();
  JobSpec filler;
  filler.body = identity;
  JobHandle queued = server.submit(std::move(filler));  // queue now full

  std::atomic<bool> admitted{false};
  JobHandle blocked;
  std::thread submitter([&] {
    JobSpec spec;
    spec.body = identity;
    blocked = server.submit(std::move(spec));  // blocks until space frees
    admitted.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load(std::memory_order_acquire));

  release.store(true, std::memory_order_release);
  submitter.join();
  EXPECT_EQ(active.wait(), kOk);
  EXPECT_EQ(queued.wait(), kOk);
  EXPECT_EQ(blocked.wait(), kOk);
}

TEST(JobServer, TimeoutCancelsNotYetStartedDescendants) {
  JobServer server(small_server(2));
  Runtime& rt = server.runtime();
  JobSpec spec;
  spec.timeout_ns = 20 * kMs;
  spec.body = [&](void*) -> void* {
    // Outlive the deadline, then fork: the children must be cancelled.
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    std::vector<TaskPtr> children;
    for (int i = 0; i < 8; ++i)
      children.push_back(rt.fork([](void*) -> void* {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return nullptr;
      }, nullptr));
    for (auto& c : children) rt.join(c, nullptr);
    return nullptr;
  };
  JobHandle h = server.submit(std::move(spec));
  EXPECT_EQ(h.wait(), kTimedOut);
  EXPECT_GT(h.result().stats.tasks_cancelled, 0u);
  EXPECT_EQ(server.stats().of(Priority::kNormal).timed_out, 1u);
}

TEST(JobServer, ExpiredBeforeDispatchResolvesTimedOutWithoutRunning) {
  ServerOptions opts = small_server();
  opts.max_active = 1;
  JobServer server(std::move(opts));

  std::atomic<bool> release{false};
  JobSpec blocker;
  blocker.body = wait_for_flag;
  blocker.input = &release;
  JobHandle active = server.submit(std::move(blocker));
  while (server.stats().active == 0) std::this_thread::yield();

  std::atomic<bool> ran{false};
  JobSpec doomed;
  doomed.timeout_ns = 5 * kMs;  // expires while stuck behind the blocker
  doomed.body = [&ran](void*) -> void* {
    ran.store(true);
    return nullptr;
  };
  JobHandle h = server.submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.store(true, std::memory_order_release);
  EXPECT_EQ(active.wait(), kOk);
  EXPECT_EQ(h.wait(), kTimedOut);
  EXPECT_FALSE(ran.load());
}

TEST(JobServer, CancelQueuedJobResolvesAbortedWithoutRunning) {
  ServerOptions opts = small_server();
  opts.max_active = 1;
  JobServer server(std::move(opts));

  std::atomic<bool> release{false};
  JobSpec blocker;
  blocker.body = wait_for_flag;
  blocker.input = &release;
  JobHandle active = server.submit(std::move(blocker));
  while (server.stats().active == 0) std::this_thread::yield();

  std::atomic<bool> ran{false};
  JobSpec victim;
  victim.body = [&ran](void*) -> void* {
    ran.store(true);
    return nullptr;
  };
  JobHandle h = server.submit(std::move(victim));
  h.cancel();
  release.store(true, std::memory_order_release);
  EXPECT_EQ(active.wait(), kOk);
  EXPECT_EQ(h.wait(), kAborted);
  EXPECT_FALSE(ran.load());
}

TEST(JobServer, DrainFinishesQueuedWorkThenRejectsSubmits) {
  JobServer server(small_server());
  std::atomic<int> done{0};
  std::vector<JobHandle> handles;
  for (int i = 0; i < 32; ++i) {
    JobSpec spec;
    spec.body = [&done](void*) -> void* {
      done.fetch_add(1);
      return nullptr;
    };
    handles.push_back(server.submit(std::move(spec)));
  }
  server.drain();
  EXPECT_EQ(done.load(), 32);
  for (auto& h : handles) EXPECT_EQ(h.wait(), kOk);

  JobSpec late;
  late.body = identity;
  EXPECT_EQ(server.submit(std::move(late)).wait(), kPerm);
}

TEST(JobServer, OnCompleteCallbackFiresExactlyOnce) {
  JobServer server(small_server());
  std::atomic<int> calls{0};
  JobSpec spec;
  spec.body = identity;
  spec.on_complete = [&calls](const JobResult& r) {
    EXPECT_EQ(r.error, kOk);
    calls.fetch_add(1);
  };
  JobHandle h = server.submit(std::move(spec));
  EXPECT_EQ(h.wait(), kOk);
  server.drain();
  EXPECT_EQ(calls.load(), 1);
}

TEST(JobServer, ShutdownAbortsPendingAndReportsBusyActive) {
  ServerOptions opts = small_server();
  opts.max_active = 1;
  JobServer server(std::move(opts));

  // The blocker announces when its body is actually running: a job counts
  // as "active" from dispatch, but run_root's cancellation pre-check can
  // still resolve it without running the body until then.
  struct Gate {
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
  } gate;
  JobSpec blocker;
  blocker.body = [](void* in) -> void* {
    auto* g = static_cast<Gate*>(in);
    g->started.store(true, std::memory_order_release);
    while (!g->release.load(std::memory_order_acquire))
      std::this_thread::yield();
    return nullptr;
  };
  blocker.input = &gate;
  JobHandle active = server.submit(std::move(blocker));
  while (!gate.started.load(std::memory_order_acquire))
    std::this_thread::yield();

  std::vector<JobHandle> queued;
  for (int i = 0; i < 4; ++i) {
    JobSpec spec;
    spec.body = identity;
    queued.push_back(server.submit(std::move(spec)));
  }

  // The active job ignores cancellation (it spins on our flag), so a
  // bounded shutdown must time out; the queued jobs resolve kAborted.
  EXPECT_FALSE(server.shutdown(30 * kMs));
  for (auto& h : queued) EXPECT_EQ(h.wait(), kAborted);
  EXPECT_EQ(server.stats().of(Priority::kNormal).aborted, 4u);

  gate.release.store(true, std::memory_order_release);
  // Cancelled while running -> the job resolves kAborted, not kOk.
  EXPECT_EQ(active.wait(), kAborted);
  EXPECT_TRUE(server.shutdown(kSec));
}

TEST(JobServer, DestructionResolvesEveryOutstandingHandle) {
  std::vector<JobHandle> handles;
  {
    JobServer server(small_server());
    for (int i = 0; i < 64; ++i) {
      JobSpec spec;
      spec.body = identity;
      handles.push_back(server.submit(std::move(spec)));
    }
    // Destructor runs with jobs in every stage: queued, active, done.
  }
  for (auto& h : handles) {
    ASSERT_TRUE(h.done()) << "handle left unresolved by destruction";
    const int err = h.result().error;
    EXPECT_TRUE(err == kOk || err == kAborted) << err;
  }
}

TEST(JobServer, CheckedJobSurfacesItsRacesOnly) {
  ServerOptions opts;
  opts.runtime.num_vps = 1;  // one worker: canonical access order
  opts.check = true;
  JobServer server(std::move(opts));
  Runtime& rt = server.runtime();

  static long shared = 0;
  const auto racy_child = [](void* in) -> void* {
    check::write(&shared, sizeof shared);
    shared = reinterpret_cast<long>(in);
    return nullptr;
  };

  JobSpec racy;
  racy.check = true;
  racy.body = [&](void*) -> void* {
    TaskPtr a = rt.fork(racy_child, reinterpret_cast<void*>(1L));
    TaskPtr b = rt.fork(racy_child, reinterpret_cast<void*>(2L));
    rt.join(a, nullptr);
    rt.join(b, nullptr);
    return nullptr;
  };
  JobHandle rh = server.submit(std::move(racy));

  std::atomic<long> clean_acc{0};
  JobSpec clean;
  clean.check = true;
  clean.body = [&](void*) -> void* {
    TaskPtr a = rt.fork(
        [](void* in) -> void* {
          static_cast<std::atomic<long>*>(in)->fetch_add(1);
          return nullptr;
        },
        &clean_acc);
    rt.join(a, nullptr);
    return nullptr;
  };
  JobHandle ch = server.submit(std::move(clean));

  ASSERT_EQ(rh.wait(), kOk);
  ASSERT_EQ(ch.wait(), kOk);
  ASSERT_FALSE(rh.result().races.empty()) << "seeded race must be caught";
  EXPECT_TRUE(ch.result().races.empty()) << "clean job blamed for a race";
  for (const auto& r : rh.result().races) {
    EXPECT_TRUE(r.first_job == rh.id() || r.second_job == rh.id());
    EXPECT_NE(r.to_string().find("ANAHY-R001"), std::string::npos);
  }
}

TEST(JobServer, UncheckedJobCollectsNoRacesOnCheckServer) {
  ServerOptions opts;
  opts.runtime.num_vps = 1;
  opts.check = true;
  JobServer server(std::move(opts));
  Runtime& rt = server.runtime();

  static long shared2 = 0;
  const auto racy_child = [](void* in) -> void* {
    check::write(&shared2, sizeof shared2);
    shared2 = reinterpret_cast<long>(in);
    return nullptr;
  };
  JobSpec racy;  // check NOT requested: no reports attached to the result
  racy.body = [&](void*) -> void* {
    TaskPtr a = rt.fork(racy_child, reinterpret_cast<void*>(1L));
    TaskPtr b = rt.fork(racy_child, reinterpret_cast<void*>(2L));
    rt.join(a, nullptr);
    rt.join(b, nullptr);
    return nullptr;
  };
  JobHandle h = server.submit(std::move(racy));
  ASSERT_EQ(h.wait(), kOk);
  EXPECT_TRUE(h.result().races.empty());
}

TEST(ServeStats, CountersWrapAroundModularly) {
  // ServerStats counters are uint64 and monotonic for the server's
  // lifetime; a synthetic near-max snapshot must wrap modularly (defined
  // behavior) and keep rendering — a scraper sees the wrapped value and
  // its rate logic (delta with wraparound) still works.
  ServerStats s;
  ServerStats::ClassStats& c = s.of(Priority::kNormal);
  c.submitted = std::numeric_limits<std::uint64_t>::max();
  ++c.submitted;
  EXPECT_EQ(c.submitted, 0u);
  c.submitted = std::numeric_limits<std::uint64_t>::max() - 1;
  c.submitted += 3;  // wraps past max
  EXPECT_EQ(c.submitted, 1u);
  EXPECT_EQ(s.submitted_total(), 1u);
  const std::string text = s.to_metrics_text();
  EXPECT_NE(
      text.find("anahy_serve_jobs_submitted_total{class=\"normal\"} 1"),
      std::string::npos);

  // The same wraparound-delta contract holds for the observe counters.
  // delta() recomputes totals from the per-VP deltas, so wrap a VP slot.
  observe::Snapshot earlier, later;
  earlier.per_vp.resize(1);
  later.per_vp.resize(1);
  earlier.per_vp[0].forks = std::numeric_limits<std::uint64_t>::max() - 2;
  later.per_vp[0].forks = 5;  // 8 increments later, post-wrap
  const observe::Snapshot d = later.delta(earlier);
  EXPECT_EQ(d.per_vp[0].forks, 8u);
  EXPECT_EQ(d.total.forks, 8u);
}

TEST(JobServer, ObserveSnapshotMatchesResolvedJobsAfterDrain) {
  ServerOptions opts;
  opts.runtime.num_vps = 2;
  JobServer server(std::move(opts));
  Runtime& rt = server.runtime();

  // Each job forks 2 children: 3 tasks per job including the root.
  constexpr int kJobs = 20;
  const auto leaf = [](void*) -> void* { return nullptr; };
  std::vector<JobHandle> handles;
  for (int i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.priority = static_cast<Priority>(i % kNumPriorities);
    spec.body = [&](void*) -> void* {
      TaskPtr a = rt.fork(leaf, nullptr);
      TaskPtr b = rt.fork(leaf, nullptr);
      rt.join(a, nullptr);
      rt.join(b, nullptr);
      return nullptr;
    };
    handles.push_back(server.submit(std::move(spec)));
  }
  for (auto& h : handles) ASSERT_EQ(h.wait(), kOk);
  server.drain();

  // Drained and quiesced: every handle resolved, so the telemetry totals
  // must account for every task — each fork ran, each job contributed its
  // root + 2 children, and the per-VP breakdown sums to the totals.
  const observe::Snapshot s = rt.observe_snapshot();
  EXPECT_EQ(s.total.forks, s.total.tasks_run);
  EXPECT_GE(s.total.tasks_run, static_cast<std::uint64_t>(3 * kJobs));
  observe::VpCounters sum;
  for (const auto& vp : s.per_vp) sum += vp;
  EXPECT_EQ(sum.tasks_run, s.total.tasks_run);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.active, 0u);
  std::uint64_t resolved = 0, serve_tasks = 0;
  for (const auto& c : stats.by_class) {
    resolved += c.completed;
    serve_tasks += c.tasks;
  }
  EXPECT_EQ(resolved, static_cast<std::uint64_t>(kJobs));
  // The runtime ran at least the tasks the serve layer attributed to jobs.
  EXPECT_GE(s.total.tasks_run, serve_tasks);
}

TEST(ServeObserve, DeadlineRiskAnomaliesFromSyntheticStats) {
  ServerStats s;
  EXPECT_TRUE(deadline_risk_anomalies(s, 100).empty());

  // Backlog at 80% of max_pending: P003.
  s.pending = 80;
  auto a = deadline_risk_anomalies(s, 100);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].code, observe::anomaly_code::kDeadlineRisk);
  s.pending = 79;
  EXPECT_TRUE(deadline_risk_anomalies(s, 100).empty());

  // Jobs already timed out: P003 regardless of backlog.
  s.of(Priority::kBatch).timed_out = 2;
  a = deadline_risk_anomalies(s, 100);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_NE(a[0].detail.find("2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault containment: a throwing job body resolves kFaulted, never
// terminates the process.
// ---------------------------------------------------------------------------

TEST(JobServer, ThrowingBodyResolvesFaultedWithMessage) {
  JobServer server(small_server());
  JobSpec spec;
  spec.body = [](void*) -> void* {
    throw std::runtime_error("kaboom at task level");
  };
  spec.label = "thrower";
  JobHandle h = server.submit(std::move(spec));
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.wait(), kFaulted);
  EXPECT_EQ(h.state(), JobState::kDone);
  EXPECT_NE(h.result().message.find("kaboom at task level"),
            std::string::npos)
      << h.result().message;
  EXPECT_EQ(h.result().value, nullptr);
  EXPECT_EQ(server.stats().of(Priority::kNormal).faulted, 1u);
}

TEST(JobServer, NonStdExceptionIsContainedToo) {
  JobServer server(small_server());
  JobSpec spec;
  spec.body = [](void*) -> void* { throw 42; };
  JobHandle h = server.submit(std::move(spec));
  EXPECT_EQ(h.wait(), kFaulted);
  EXPECT_NE(h.result().message.find("non-standard"), std::string::npos)
      << h.result().message;
}

TEST(JobServer, ThrowingDescendantFaultsTheJob) {
  // The throw happens in a forked child, not the root body: the context
  // records the fault, cancels the job's remaining work, and the job
  // resolves kFaulted (first fault wins).
  JobServer server(small_server(4));
  Runtime& rt = server.runtime();
  JobSpec spec;
  spec.body = [&](void*) -> void* {
    std::vector<TaskPtr> children;
    for (int i = 0; i < 4; ++i)
      children.push_back(rt.fork([](void* in) -> void* {
        if (in == nullptr) throw std::runtime_error("child kaboom");
        return nullptr;
      }, i == 2 ? nullptr : &i));
    for (auto& c : children) rt.join(c, nullptr);
    return nullptr;
  };
  JobHandle h = server.submit(std::move(spec));
  EXPECT_EQ(h.wait(), kFaulted);
  EXPECT_NE(h.result().message.find("child kaboom"), std::string::npos)
      << h.result().message;
}

TEST(JobServer, FaultedJobStillFiresOnCompleteAndDrainCounts) {
  JobServer server(small_server());
  std::atomic<int> callbacks{0};
  std::atomic<int> callback_error{0};
  JobSpec spec;
  spec.body = [](void*) -> void* { throw std::runtime_error("boom"); };
  spec.on_complete = [&](const JobResult& r) {
    callbacks.fetch_add(1);
    callback_error.store(r.error);
  };
  JobHandle h = server.submit(std::move(spec));
  EXPECT_EQ(h.wait(), kFaulted);
  EXPECT_EQ(callbacks.load(), 1) << "kFaulted must fire on_complete once";
  EXPECT_EQ(callback_error.load(), kFaulted);
  server.drain();  // a faulted job is resolved work, not a drain leak
  const ServerStats s = server.stats();
  EXPECT_EQ(s.resolved_total(), 1u);
  EXPECT_EQ(s.of(Priority::kNormal).faulted, 1u);
  EXPECT_EQ(s.of(Priority::kNormal).completed, 0u);
}

TEST(JobServer, FaultedCountRidesTheExposition) {
  JobServer server(small_server());
  JobSpec spec;
  spec.body = [](void*) -> void* { throw std::runtime_error("boom"); };
  ASSERT_EQ(server.submit(std::move(spec)).wait(), kFaulted);
  const std::string text = server.observe_text();
  EXPECT_NE(
      text.find("anahy_serve_jobs_faulted_total{class=\"normal\"} 1"),
      std::string::npos)
      << text;
}

TEST(JobServer, HealthyJobsUnaffectedByAFaultedNeighbor) {
  // Containment means *isolation*: one faulted job must not poison
  // concurrent healthy jobs sharing the VPs.
  JobServer server(small_server(4));
  std::vector<JobHandle> good;
  JobSpec bad;
  bad.body = [](void*) -> void* { throw std::runtime_error("boom"); };
  JobHandle hbad = server.submit(std::move(bad));
  for (int i = 0; i < 8; ++i) {
    JobSpec spec;
    spec.body = identity;
    good.push_back(server.submit(std::move(spec)));
  }
  EXPECT_EQ(hbad.wait(), kFaulted);
  for (auto& h : good) EXPECT_EQ(h.wait(), kOk);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.of(Priority::kNormal).completed, 8u);
  EXPECT_EQ(s.of(Priority::kNormal).faulted, 1u);
}

TEST(JobServer, ObserveTextMergesTelemetryAndServeMetrics) {
  JobServer server(small_server());
  JobSpec spec;
  spec.body = identity;
  ASSERT_EQ(server.submit(std::move(spec)).wait(), kOk);
  server.drain();

  const std::string text = server.observe_text();
  // One document, both layers: runtime telemetry first, serve counters
  // after (the kStatsQuery payload shape).
  EXPECT_NE(text.find("anahy_observe_epoch"), std::string::npos);
  EXPECT_NE(text.find("anahy_observe_steal_success_ratio"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_serve_jobs_pending "), std::string::npos);
  EXPECT_LT(text.find("anahy_observe_epoch"),
            text.find("anahy_serve_jobs_pending "));
}

// ----------------------------------------------------------------------
// export_queued — the mesh-migration primitive (docs/MESH.md). Queued,
// never-dispatched, exportable jobs may change owner; everything else is
// untouchable.

/// One VP, blocked: everything submitted afterwards stays queued until
/// the flag flips.
struct BlockedServer {
  JobServer server{small_server(1)};
  std::atomic<bool> flag{false};
  JobHandle blocker;

  BlockedServer() {
    JobSpec spec;
    spec.body = wait_for_flag;
    spec.input = &flag;
    spec.priority = Priority::kHigh;
    spec.exportable = true;  // running jobs must still never export
    blocker = server.submit(std::move(spec));
    // The blocker must actually occupy the VP before tests queue behind it.
    while (server.stats().active == 0) std::this_thread::yield();
  }
  ~BlockedServer() {
    flag.store(true, std::memory_order_release);
    if (blocker.valid()) blocker.wait();
  }

  JobHandle queue_one(bool exportable, Priority pr = Priority::kBatch,
                      std::atomic<int>* ran = nullptr) {
    JobSpec spec;
    spec.body = [](void* in) -> void* {
      if (in != nullptr)
        static_cast<std::atomic<int>*>(in)->fetch_add(1,
                                                      std::memory_order_relaxed);
      return nullptr;
    };
    spec.input = ran;
    spec.priority = pr;
    spec.exportable = exportable;
    return server.submit(std::move(spec));
  }
};

TEST(JobServerExport, ExportsOnlyQueuedExportableJobsOfTheClass) {
  BlockedServer rig;
  std::atomic<int> ran{0};
  JobHandle e1 = rig.queue_one(true, Priority::kBatch, &ran);
  JobHandle e2 = rig.queue_one(true, Priority::kBatch, &ran);
  JobHandle local = rig.queue_one(false, Priority::kBatch, &ran);
  JobHandle other = rig.queue_one(true, Priority::kNormal, &ran);

  EXPECT_EQ(rig.server.export_queued(Priority::kBatch, 10), 2u);
  EXPECT_EQ(e1.wait(), kMigrated);
  EXPECT_EQ(e2.wait(), kMigrated);
  EXPECT_EQ(ran.load(), 0);  // migrated bodies never ran here

  // The local closure and the other class survive and run normally.
  rig.flag.store(true, std::memory_order_release);
  EXPECT_EQ(local.wait(), kOk);
  EXPECT_EQ(other.wait(), kOk);
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(rig.server.stats().by_class[2].migrated, 2u);
}

TEST(JobServerExport, RespectsMaxAndTakesTheNewestFirst) {
  BlockedServer rig;
  JobHandle oldest = rig.queue_one(true);
  JobHandle newest = rig.queue_one(true);
  EXPECT_EQ(rig.server.export_queued(Priority::kBatch, 1), 1u);
  // Newest-first: the job with the least sunk queue wait moves; the one
  // that already waited keeps its position.
  EXPECT_EQ(newest.wait(), kMigrated);
  rig.flag.store(true, std::memory_order_release);
  EXPECT_EQ(oldest.wait(), kOk);
}

TEST(JobServerExport, EligibleFilterAndRunningJobsAreRespected) {
  BlockedServer rig;
  JobHandle queued = rig.queue_one(true);
  // Filter rejects everything: nothing moves (the running blocker is
  // exportable but dispatched — it must not even be offered).
  EXPECT_EQ(rig.server.export_queued(Priority::kBatch, 10,
                                     [](const Job&) { return false; }),
            0u);
  // The blocker is kHigh and running; exporting kHigh finds nothing.
  EXPECT_EQ(rig.server.export_queued(Priority::kHigh, 10), 0u);
  rig.flag.store(true, std::memory_order_release);
  EXPECT_EQ(queued.wait(), kOk);
}

TEST(JobServerExport, CancelledAndDrainingJobsNeverExport) {
  {
    BlockedServer rig;
    JobHandle victim = rig.queue_one(true);
    victim.cancel();
    EXPECT_EQ(rig.server.export_queued(Priority::kBatch, 10), 0u);
    rig.flag.store(true, std::memory_order_release);
    EXPECT_EQ(victim.wait(), kAborted);
  }
  JobServer server(small_server(1));
  server.drain();
  EXPECT_EQ(server.export_queued(Priority::kBatch, 10), 0u);
}

TEST(JobServerExport, OnCompleteFiresForMigratedJobs) {
  BlockedServer rig;
  std::atomic<int> completions{0};
  JobSpec spec;
  spec.body = [](void*) -> void* { return nullptr; };
  spec.priority = Priority::kBatch;
  spec.exportable = true;
  spec.on_complete = [&completions](const JobResult& r) {
    if (r.error == kMigrated)
      completions.fetch_add(1, std::memory_order_relaxed);
  };
  JobHandle h = rig.server.submit(std::move(spec));
  EXPECT_EQ(rig.server.export_queued(Priority::kBatch, 1), 1u);
  EXPECT_EQ(h.wait(), kMigrated);
  EXPECT_EQ(completions.load(), 1);
}

}  // namespace
