// Concurrency stress of the job service: many client threads hammering
// submit while drain/shutdown/cancel race in. Run under the sanitizer
// matrix (tsan/asan/ubsan labels); the invariant everywhere is the handle
// contract — every handle resolves exactly once, with a legal error code.
#include "anahy/serve/job_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace {

using namespace anahy;
using namespace anahy::serve;

constexpr int kClientThreads = 8;

ServerOptions stress_server() {
  ServerOptions o;
  o.runtime.num_vps = 4;
  o.max_pending = 64;
  return o;
}

Priority class_of(int i) { return static_cast<Priority>(i % kNumPriorities); }

TEST(ServeRaces, ConcurrentSubmittersNeverLoseOrDoubleCompleteHandles) {
  JobServer server(stress_server());
  constexpr int kJobsPerThread = 50;
  std::atomic<int> bodies_run{0};
  std::atomic<int> callbacks{0};
  std::vector<std::vector<JobHandle>> handles(kClientThreads);

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t)
    clients.emplace_back([&, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        JobSpec spec;
        spec.priority = class_of(i);
        spec.body = [&bodies_run](void*) -> void* {
          bodies_run.fetch_add(1, std::memory_order_relaxed);
          return nullptr;
        };
        spec.on_complete = [&callbacks](const JobResult&) {
          callbacks.fetch_add(1, std::memory_order_relaxed);
        };
        handles[t].push_back(server.submit(std::move(spec)));
      }
    });
  for (auto& c : clients) c.join();

  server.drain();
  int resolved = 0;
  for (auto& per_thread : handles)
    for (auto& h : per_thread) {
      ASSERT_TRUE(h.done());
      EXPECT_EQ(h.result().error, kOk);
      ++resolved;
    }
  EXPECT_EQ(resolved, kClientThreads * kJobsPerThread);
  EXPECT_EQ(bodies_run.load(), resolved);
  // on_complete fired exactly once per job: no double completion.
  EXPECT_EQ(callbacks.load(), resolved);
  EXPECT_EQ(server.stats().resolved_total(),
            static_cast<std::uint64_t>(resolved));
}

TEST(ServeRaces, SubmitRacingDrainEitherRunsOrRejectsCleanly) {
  JobServer server(stress_server());
  std::atomic<bool> go{false};
  std::vector<std::vector<JobHandle>> handles(kClientThreads);

  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t)
    clients.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 40; ++i) {
        JobSpec spec;
        spec.priority = class_of(i);
        spec.body = [](void*) -> void* { return nullptr; };
        handles[t].push_back(server.submit(std::move(spec)));
      }
    });
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::microseconds(200));
  server.drain();  // races the submitters
  for (auto& c : clients) c.join();
  server.drain();  // now quiescent for sure

  for (auto& per_thread : handles)
    for (auto& h : per_thread) {
      const int err = h.wait();
      EXPECT_TRUE(err == kOk || err == kPerm) << err;
    }
}

TEST(ServeRaces, SubmitRacingShutdownResolvesEveryHandle) {
  JobServer server(stress_server());
  std::atomic<bool> go{false};
  std::vector<std::vector<JobHandle>> handles(kClientThreads);

  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t)
    clients.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 40; ++i) {
        JobSpec spec;
        spec.priority = class_of(i + t);
        spec.body = [](void*) -> void* { return nullptr; };
        handles[t].push_back(server.submit(std::move(spec)));
      }
    });
  go.store(true, std::memory_order_release);
  EXPECT_TRUE(server.shutdown(/*deadline_ns=*/2'000'000'000));
  for (auto& c : clients) c.join();

  for (auto& per_thread : handles)
    for (auto& h : per_thread) {
      const int err = h.wait();
      EXPECT_TRUE(err == kOk || err == kAborted || err == kPerm) << err;
    }
}

TEST(ServeRaces, ConcurrentCancelRacingCompletionIsSingleResolution) {
  JobServer server(stress_server());
  std::vector<JobHandle> handles;
  std::atomic<int> callbacks{0};
  for (int i = 0; i < 200; ++i) {
    JobSpec spec;
    spec.body = [](void*) -> void* { return nullptr; };
    spec.on_complete = [&callbacks](const JobResult&) {
      callbacks.fetch_add(1, std::memory_order_relaxed);
    };
    handles.push_back(server.submit(std::move(spec)));
  }
  // Cancel from one thread while VPs complete the same jobs.
  std::thread canceller([&] {
    for (auto& h : handles) h.cancel();
  });
  canceller.join();
  server.drain();
  for (auto& h : handles) {
    const int err = h.wait();
    EXPECT_TRUE(err == kOk || err == kAborted) << err;
  }
  EXPECT_EQ(callbacks.load(), 200);
}

TEST(ServeRaces, DestructionUnderFireResolvesAllHandles) {
  std::vector<std::vector<JobHandle>> handles(kClientThreads);
  std::atomic<bool> stop_submitting{false};
  {
    JobServer server(stress_server());
    std::vector<std::thread> clients;
    for (int t = 0; t < kClientThreads; ++t)
      clients.emplace_back([&, t] {
        for (int i = 0; i < 64 && !stop_submitting.load(); ++i) {
          JobSpec spec;
          spec.body = [](void*) -> void* { return nullptr; };
          handles[t].push_back(server.submit(std::move(spec)));
        }
      });
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    stop_submitting.store(true);
    for (auto& c : clients) c.join();
    // Server destroyed with an unknown mix of queued/active/done jobs.
  }
  for (auto& per_thread : handles)
    for (auto& h : per_thread) {
      ASSERT_TRUE(h.done());
      const int err = h.result().error;
      EXPECT_TRUE(err == kOk || err == kAborted || err == kPerm) << err;
    }
}

// Regression: shutdown() clearing the pending queues made a concurrent
// drain()'s idle predicate true, but the doomed-jobs path never notified
// idle_cv_ — a drain parked with active_ already empty hung forever. The
// stable pending-but-not-active state is a deferred batch job (docs/
// REJUV.md): a 1-byte budget keeps batch scored over, so the dispatcher
// holds the job instead of dispatching it. Iterated because the buggy
// interleaving needs drain to park before the dispatcher's deferral tick
// notices draining_; under the fix every iteration completes promptly.
TEST(ServeRaces, ShutdownWakesDrainParkedOnHeldWork) {
  for (int iter = 0; iter < 20; ++iter) {
    ServerOptions opts;
    opts.runtime.num_vps = 1;
    opts.rejuv_admission.budget.total_bytes = 1;  // batch always over budget
    opts.rejuv_admission.max_defer_ns = 10'000'000'000;
    JobServer server(std::move(opts));
    // Refresh the cached admission verdicts so the batch submit below is
    // deferred (the controller only scores at refresh points).
    server.record_aging_sample();

    JobSpec spec;
    spec.priority = Priority::kBatch;
    spec.body = [](void*) -> void* { return nullptr; };
    JobHandle held = server.submit(std::move(spec));

    std::thread drainer([&] { server.drain(); });
    // Let drain park on idle_cv_ with the held job pending, nothing active.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    EXPECT_TRUE(server.shutdown(/*deadline_ns=*/2'000'000'000));
    drainer.join();  // hung forever before the idle_cv_ wake in shutdown()

    const int err = held.wait();
    EXPECT_TRUE(err == kOk || err == kAborted) << err;
  }
}

TEST(ServeRaces, HighPriorityOvertakesBatchUnderSaturation) {
  // One active slot + one VP: the pending queue is the contention point.
  // Fill it with batch work, then submit high; the dispatcher must pick
  // the high job next even though every batch job arrived first.
  ServerOptions opts;
  opts.runtime.num_vps = 1;
  opts.max_active = 1;
  JobServer server(std::move(opts));

  std::atomic<bool> release{false};
  JobSpec blocker;
  blocker.body = [](void* in) -> void* {
    auto* flag = static_cast<std::atomic<bool>*>(in);
    while (!flag->load(std::memory_order_acquire)) std::this_thread::yield();
    return nullptr;
  };
  blocker.input = &release;
  JobHandle gate = server.submit(std::move(blocker));
  while (server.stats().active == 0) std::this_thread::yield();

  std::vector<std::uint64_t> order;
  std::mutex order_mu;
  const auto record = [&](std::uint64_t tag) {
    std::lock_guard lock(order_mu);
    order.push_back(tag);
  };

  std::vector<JobHandle> batch;
  for (int i = 0; i < 6; ++i) {
    JobSpec spec;
    spec.priority = Priority::kBatch;
    spec.on_complete = [&record](const JobResult&) { record(0); };
    spec.body = [](void*) -> void* { return nullptr; };
    batch.push_back(server.submit(std::move(spec)));
  }
  JobSpec urgent;
  urgent.priority = Priority::kHigh;
  urgent.on_complete = [&record](const JobResult&) { record(1); };
  urgent.body = [](void*) -> void* { return nullptr; };
  JobHandle high = server.submit(std::move(urgent));

  release.store(true, std::memory_order_release);
  EXPECT_EQ(gate.wait(), kOk);
  EXPECT_EQ(high.wait(), kOk);
  for (auto& h : batch) EXPECT_EQ(h.wait(), kOk);
  // wait() may return before the job's on_complete has run (the handle is
  // resolved first); drain() returns only after every callback finished.
  server.drain();

  std::lock_guard lock(order_mu);
  ASSERT_EQ(order.size(), 7u);
  EXPECT_EQ(order.front(), 1u) << "high-priority job must complete first";
}

}  // namespace
