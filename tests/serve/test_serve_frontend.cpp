// Tests of the remote serve front-end: kJobSubmit/kJobDone over the
// in-memory fabric and the TCP loopback mesh — the same submit -> reply
// contract the in-process JobHandle gives, across a transport.
#include "cluster/serve_frontend.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

namespace {

using namespace cluster;
using namespace std::chrono_literals;

/// sum of u32 little-endian words in the payload -> one u32 result.
std::vector<std::uint8_t> sum_u32(std::span<const std::uint8_t> in) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 4 <= in.size(); i += 4)
    sum += static_cast<std::uint32_t>(in[i]) |
           static_cast<std::uint32_t>(in[i + 1]) << 8 |
           static_cast<std::uint32_t>(in[i + 2]) << 16 |
           static_cast<std::uint32_t>(in[i + 3]) << 24;
  ByteWriter w;
  w.u32(sum);
  return w.take();
}

std::vector<std::uint8_t> numbers_payload(std::uint32_t n) {
  ByteWriter w;
  for (std::uint32_t i = 1; i <= n; ++i) w.u32(i);
  return w.take();
}

std::uint32_t result_u32(const ServeClient::Reply& r) {
  ByteReader reader(r.payload);
  return reader.u32();
}

TEST(ServeFrontend, RoundTripOverMemoryFabric) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::ServerOptions opts;
  opts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(opts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], /*server_node=*/0);
  const auto id = client.submit("sum_u32", numbers_payload(10));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kOk);
  EXPECT_EQ(result_u32(reply), 55u);
  EXPECT_EQ(frontend.submissions(), 1u);
}

TEST(ServeFrontend, UnknownFunctionRepliesInvalid) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("no_such_fn", {});
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kInvalid);
}

TEST(ServeFrontend, InterleavedRequestsCorrelateById) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto a = client.submit("sum_u32", numbers_payload(3));   // 6
  const auto b = client.submit("sum_u32", numbers_payload(100)); // 5050
  const auto c = client.submit("sum_u32", numbers_payload(1));   // 1

  // Wait out of submission order: replies must correlate, not interleave.
  ServeClient::Reply rc, ra, rb;
  ASSERT_TRUE(client.wait(c, rc, 2'000'000us));
  ASSERT_TRUE(client.wait(a, ra, 2'000'000us));
  ASSERT_TRUE(client.wait(b, rb, 2'000'000us));
  EXPECT_EQ(result_u32(ra), 6u);
  EXPECT_EQ(result_u32(rb), 5050u);
  EXPECT_EQ(result_u32(rc), 1u);
}

TEST(ServeFrontend, SubmitAfterDrainRepliesPerm) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);
  server.drain();

  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(4));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kPerm);
}

TEST(ServeFrontend, PriorityAndTimeoutTravelTheWire) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(8),
                                anahy::Priority::kHigh,
                                /*timeout_ns=*/5'000'000'000, false);
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kOk);
  EXPECT_EQ(result_u32(reply), 36u);
  EXPECT_EQ(server.stats().of(anahy::Priority::kHigh).completed, 1u);
}

/// The exposition keys a kStatsQuery reply must carry to be useful to a
/// scraper: derived gauges, per-class queue depth, and the serve counters.
void expect_exposition(const std::string& text) {
  EXPECT_NE(text.find("anahy_observe_steal_success_ratio"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_idle_fraction"), std::string::npos);
  EXPECT_NE(text.find("anahy_observe_ready_tasks{class=\"high\"}"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_ready_tasks{class=\"batch\"}"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_tasks_run{vp=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_serve_jobs_pending "), std::string::npos);
  EXPECT_NE(text.find("anahy_serve_jobs_completed_total{class=\"normal\"}"),
            std::string::npos);
}

TEST(ServeFrontend, StatsQueryOverMemoryFabric) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::ServerOptions opts;
  opts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(opts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(10));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));

  std::string text;
  ASSERT_TRUE(client.query_stats(text, 2'000'000us));
  expect_exposition(text);
  EXPECT_EQ(frontend.stats_queries(), 1u);
}

TEST(ServeFrontend, StatsQueryBuffersInterleavedJobReplies) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  // Submit first, then query stats immediately: the kJobDone frame may
  // arrive while query_stats is pumping and must not be lost.
  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(100));
  std::string text;
  ASSERT_TRUE(client.query_stats(text, 5'000'000us));
  expect_exposition(text);

  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 5'000'000us));
  EXPECT_EQ(reply.error, anahy::kOk);
  EXPECT_EQ(result_u32(reply), 5050u);
}

TEST(ServeFrontend, StatsQueryOverTcpLoopback) {
  auto fabric = make_tcp_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::ServerOptions opts;
  opts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(opts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(20));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 5'000'000us));
  EXPECT_EQ(result_u32(reply), 210u);

  std::string text;
  ASSERT_TRUE(client.query_stats(text, 5'000'000us));
  expect_exposition(text);
  // The completed job is visible in the scraped counters.
  EXPECT_NE(
      text.find("anahy_serve_jobs_completed_total{class=\"normal\"} 1"),
      std::string::npos);
}

TEST(ServeFrontend, MultipleClientsOverTcpLoopback) {
  auto fabric = make_tcp_fabric(3);  // node 0 serves, nodes 1-2 are clients
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::ServerOptions opts;
  opts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(opts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient c1(*fabric[1], 0);
  ServeClient c2(*fabric[2], 0);
  const auto id1 = c1.submit("sum_u32", numbers_payload(10));
  const auto id2 = c2.submit("sum_u32", numbers_payload(20));
  ServeClient::Reply r1, r2;
  ASSERT_TRUE(c1.wait(id1, r1, 5'000'000us));
  ASSERT_TRUE(c2.wait(id2, r2, 5'000'000us));
  EXPECT_EQ(result_u32(r1), 55u);
  EXPECT_EQ(result_u32(r2), 210u);
}

}  // namespace
