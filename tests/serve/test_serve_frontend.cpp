// Tests of the remote serve front-end: kJobSubmit/kJobDone over the
// in-memory fabric and the TCP loopback mesh — the same submit -> reply
// contract the in-process JobHandle gives, across a transport.
#include "cluster/serve_frontend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

namespace {

using namespace cluster;
using namespace std::chrono_literals;

/// sum of u32 little-endian words in the payload -> one u32 result.
std::vector<std::uint8_t> sum_u32(std::span<const std::uint8_t> in) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 4 <= in.size(); i += 4)
    sum += static_cast<std::uint32_t>(in[i]) |
           static_cast<std::uint32_t>(in[i + 1]) << 8 |
           static_cast<std::uint32_t>(in[i + 2]) << 16 |
           static_cast<std::uint32_t>(in[i + 3]) << 24;
  ByteWriter w;
  w.u32(sum);
  return w.take();
}

std::vector<std::uint8_t> numbers_payload(std::uint32_t n) {
  ByteWriter w;
  for (std::uint32_t i = 1; i <= n; ++i) w.u32(i);
  return w.take();
}

std::uint32_t result_u32(const ServeClient::Reply& r) {
  ByteReader reader(r.payload);
  return reader.u32();
}

TEST(ServeFrontend, RoundTripOverMemoryFabric) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::ServerOptions opts;
  opts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(opts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], /*server_node=*/0);
  const auto id = client.submit("sum_u32", numbers_payload(10));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kOk);
  EXPECT_EQ(result_u32(reply), 55u);
  EXPECT_EQ(frontend.submissions(), 1u);
}

TEST(ServeFrontend, UnknownFunctionRepliesInvalid) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("no_such_fn", {});
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kInvalid);
}

TEST(ServeFrontend, InterleavedRequestsCorrelateById) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto a = client.submit("sum_u32", numbers_payload(3));   // 6
  const auto b = client.submit("sum_u32", numbers_payload(100)); // 5050
  const auto c = client.submit("sum_u32", numbers_payload(1));   // 1

  // Wait out of submission order: replies must correlate, not interleave.
  ServeClient::Reply rc, ra, rb;
  ASSERT_TRUE(client.wait(c, rc, 2'000'000us));
  ASSERT_TRUE(client.wait(a, ra, 2'000'000us));
  ASSERT_TRUE(client.wait(b, rb, 2'000'000us));
  EXPECT_EQ(result_u32(ra), 6u);
  EXPECT_EQ(result_u32(rb), 5050u);
  EXPECT_EQ(result_u32(rc), 1u);
}

TEST(ServeFrontend, SubmitAfterDrainRepliesPerm) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);
  server.drain();

  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(4));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kPerm);
}

TEST(ServeFrontend, PriorityAndTimeoutTravelTheWire) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(8),
                                anahy::Priority::kHigh,
                                /*timeout_ns=*/5'000'000'000, false);
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kOk);
  EXPECT_EQ(result_u32(reply), 36u);
  EXPECT_EQ(server.stats().of(anahy::Priority::kHigh).completed, 1u);
}

/// The exposition keys a kStatsQuery reply must carry to be useful to a
/// scraper: derived gauges, per-class queue depth, and the serve counters.
void expect_exposition(const std::string& text) {
  EXPECT_NE(text.find("anahy_observe_steal_success_ratio"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_idle_fraction"), std::string::npos);
  EXPECT_NE(text.find("anahy_observe_ready_tasks{class=\"high\"}"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_ready_tasks{class=\"batch\"}"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_tasks_run{vp=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_serve_jobs_pending "), std::string::npos);
  EXPECT_NE(text.find("anahy_serve_jobs_completed_total{class=\"normal\"}"),
            std::string::npos);
}

TEST(ServeFrontend, StatsQueryOverMemoryFabric) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::ServerOptions opts;
  opts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(opts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(10));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));

  std::string text;
  ASSERT_TRUE(client.query_stats(text, 2'000'000us));
  expect_exposition(text);
  EXPECT_EQ(frontend.stats_queries(), 1u);
}

TEST(ServeFrontend, RejuvenateOverMemoryFabric) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::ServerOptions opts;
  opts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(opts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  // The operator command: a kRejuvenate frame runs one cycle on the
  // server and the one-line report rides back on kStatsReply.
  ServeClient client(*fabric[1], 0);
  std::string report;
  ASSERT_EQ(client.rejuvenate(report), anahy::kOk);
  EXPECT_NE(report.find("reaped"), std::string::npos) << report;
  EXPECT_NE(report.find("restarted 2 VP(s)"), std::string::npos) << report;
  EXPECT_EQ(frontend.rejuvenations(), 1u);
  EXPECT_EQ(server.rejuv_counters().cycles, 1u);

  // The restarted server still serves over the same wire.
  const auto id = client.submit("sum_u32", numbers_payload(10));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kOk);
  EXPECT_EQ(result_u32(reply), 55u);
}

TEST(ServeFrontend, RejuvenateUnreachableIsADefiniteOutcome) {
  auto fabric = make_memory_fabric(2);
  ServeClient client(*fabric[1], 0);  // nobody serving node 0
  CallOptions copts;
  copts.deadline = 150'000us;
  copts.initial_backoff = 20'000us;
  std::string report = "untouched";
  EXPECT_EQ(client.rejuvenate(report, copts), anahy::kUnreachable);
  EXPECT_EQ(report, "untouched");
}

TEST(ServeFrontend, StatsQueryBuffersInterleavedJobReplies) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  // Submit first, then query stats immediately: the kJobDone frame may
  // arrive while query_stats is pumping and must not be lost.
  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(100));
  std::string text;
  ASSERT_TRUE(client.query_stats(text, 5'000'000us));
  expect_exposition(text);

  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 5'000'000us));
  EXPECT_EQ(reply.error, anahy::kOk);
  EXPECT_EQ(result_u32(reply), 5050u);
}

TEST(ServeFrontend, StatsQueryOverTcpLoopback) {
  auto fabric = make_tcp_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::ServerOptions opts;
  opts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(opts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(20));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 5'000'000us));
  EXPECT_EQ(result_u32(reply), 210u);

  std::string text;
  ASSERT_TRUE(client.query_stats(text, 5'000'000us));
  expect_exposition(text);
  // The completed job is visible in the scraped counters.
  EXPECT_NE(
      text.find("anahy_serve_jobs_completed_total{class=\"normal\"} 1"),
      std::string::npos);
}

TEST(ServeFrontend, StatsQueryUnreachableIsADefiniteOutcome) {
  // Nothing listening on node 0: the pull must come back kUnreachable
  // inside the deadline, with the same retry envelope as call() — not
  // hang, and not a bare false that hides *why* it failed.
  auto fabric = make_memory_fabric(2);
  ServeClient client(*fabric[1], 0);

  CallOptions copts;
  copts.deadline = 150'000us;
  copts.initial_backoff = 20'000us;
  std::string text = "untouched";
  EXPECT_EQ(client.query_stats(text, copts), anahy::kUnreachable);
  EXPECT_EQ(text, "untouched");
  EXPECT_GT(client.retries(), 0u) << "no retransmission before giving up";

  // The boolean convenience wrapper agrees.
  EXPECT_FALSE(client.query_stats(text, 100'000us));
}

TEST(ServeFrontend, StatsQueryAttemptBudgetCapsRetries) {
  auto fabric = make_memory_fabric(2);
  ServeClient client(*fabric[1], 0);

  CallOptions copts;
  copts.deadline = 5'000'000us;  // generous: attempts must bound us first
  copts.initial_backoff = 5'000us;
  copts.max_attempts = 3;
  std::string text;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(client.query_stats(text, copts), anahy::kUnreachable);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 2s)
      << "attempt budget did not cut the deadline short";
  EXPECT_EQ(client.retries(), 2u);  // 3 attempts = 2 retransmissions
}

/// Transport decorator that swallows the first `n` sends — the cheapest
/// lossy link there is, enough to force the stats retry path.
class DropFirstSends : public Transport {
 public:
  DropFirstSends(Transport& inner, int n) : inner_(inner), drop_(n) {}
  void send(int dst, std::vector<std::uint8_t> frame) override {
    if (drop_ > 0) {
      --drop_;
      return;
    }
    inner_.send(dst, std::move(frame));
  }
  bool recv(std::vector<std::uint8_t>& frame,
            std::chrono::microseconds timeout) override {
    return inner_.recv(frame, timeout);
  }
  [[nodiscard]] int node_id() const override { return inner_.node_id(); }
  [[nodiscard]] int node_count() const override {
    return inner_.node_count();
  }

 private:
  Transport& inner_;
  int drop_;
};

TEST(ServeFrontend, StatsQueryRetransmitsThroughLoss) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  DropFirstSends lossy(*fabric[1], 1);  // the first kStatsQuery vanishes
  ServeClient client(lossy, 0);
  CallOptions copts;
  copts.deadline = 5'000'000us;
  copts.initial_backoff = 10'000us;
  std::string text;
  ASSERT_EQ(client.query_stats(text, copts), anahy::kOk);
  expect_exposition(text);
  EXPECT_GE(client.retries(), 1u) << "reply without a retransmission?";
  EXPECT_EQ(frontend.stats_queries(), 1u);
}

// ---------------------------------------------------------------------------
// Hardened-path tests: dedup, retries, heartbeats, kFaulted, rejection.
// ---------------------------------------------------------------------------

std::atomic<int> g_counted_calls{0};

std::vector<std::uint8_t> counted_echo(std::span<const std::uint8_t> in) {
  g_counted_calls.fetch_add(1, std::memory_order_relaxed);
  return {in.begin(), in.end()};
}

std::vector<std::uint8_t> throwing_fn(std::span<const std::uint8_t>) {
  throw std::runtime_error("remote boom");
}

/// Drives the raw wire (no ServeClient): lets tests choose request ids.
std::vector<std::uint8_t> raw_submit_frame(std::uint32_t client,
                                           std::uint64_t request_id,
                                           const std::string& fn) {
  return encode(make_job_submit(client, request_id, /*priority=*/1,
                                /*timeout_ns=*/-1, /*check=*/false, fn, {}));
}

/// Receives kJobDone frames until one matches `request_id` (true) or
/// `timeout` passes (false).
bool raw_wait_done(Transport& t, std::uint64_t request_id,
                   std::chrono::microseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::vector<std::uint8_t> frame;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!t.recv(frame, 10'000us)) continue;
    const auto d = decode_frame(frame);
    if (d.ok && d.msg.type == MsgType::kJobDone &&
        d.msg.job_done.request_id == request_id)
      return true;
  }
  return false;
}

TEST(ServeFrontend, RetryInsideDedupWindowIsExactlyOnce) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("counted_echo", counted_echo);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);
  g_counted_calls.store(0);

  // Submit request 7, consume its reply, then retry the same id: the
  // cached reply comes back, the body does NOT run again.
  fabric[1]->send(0, raw_submit_frame(1, 7, "counted_echo"));
  ASSERT_TRUE(raw_wait_done(*fabric[1], 7, 2'000'000us));
  EXPECT_EQ(g_counted_calls.load(), 1);

  fabric[1]->send(0, raw_submit_frame(1, 7, "counted_echo"));
  ASSERT_TRUE(raw_wait_done(*fabric[1], 7, 2'000'000us))
      << "retry must be answered from the dedup cache";
  EXPECT_EQ(g_counted_calls.load(), 1) << "retry re-executed the body";
  EXPECT_EQ(frontend.retransmits(), 1u);
  EXPECT_EQ(frontend.duplicates_suppressed(), 0u);
}

TEST(ServeFrontend, DuplicateOfInflightRequestIsSuppressed) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  std::atomic<bool> release{false};
  std::atomic<int> runs{0};
  reg.add("gate", [&](std::span<const std::uint8_t>)
                      -> std::vector<std::uint8_t> {
    runs.fetch_add(1, std::memory_order_relaxed);
    while (!release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(1ms);
    return {};
  });
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  fabric[1]->send(0, raw_submit_frame(1, 1, "gate"));
  // Wait until the job is actually running, then send the duplicate.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (runs.load() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(runs.load(), 1);

  fabric[1]->send(0, raw_submit_frame(1, 1, "gate"));
  while (frontend.duplicates_suppressed() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(frontend.duplicates_suppressed(), 1u);

  release.store(true, std::memory_order_release);
  ASSERT_TRUE(raw_wait_done(*fabric[1], 1, 2'000'000us));
  EXPECT_EQ(runs.load(), 1) << "suppressed duplicate must not re-execute";
  // Exactly one reply: no second kJobDone for the suppressed duplicate.
  EXPECT_FALSE(raw_wait_done(*fabric[1], 1, 50'000us));
}

TEST(ServeFrontend, RetryOutsideDedupWindowReExecutes) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("counted_echo", counted_echo);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  FrontEndOptions opts;
  opts.dedup_window = 1;  // only the most recent reply survives
  ServeFrontEnd frontend(server, *fabric[0], reg, opts);
  g_counted_calls.store(0);

  fabric[1]->send(0, raw_submit_frame(1, 1, "counted_echo"));
  ASSERT_TRUE(raw_wait_done(*fabric[1], 1, 2'000'000us));
  fabric[1]->send(0, raw_submit_frame(1, 2, "counted_echo"));
  ASSERT_TRUE(raw_wait_done(*fabric[1], 2, 2'000'000us));
  EXPECT_EQ(g_counted_calls.load(), 2);

  // Request 1 was evicted by request 2: its retry re-executes (the
  // documented at-least-once degradation beyond the window).
  fabric[1]->send(0, raw_submit_frame(1, 1, "counted_echo"));
  ASSERT_TRUE(raw_wait_done(*fabric[1], 1, 2'000'000us));
  EXPECT_EQ(g_counted_calls.load(), 3);
  EXPECT_EQ(frontend.retransmits(), 0u);
}

TEST(ServeFrontend, DuplicateJobDoneIsDroppedByClient) {
  // A raw "server" that answers every submit twice: the client must
  // consume the reply once and drop the duplicate.
  auto fabric = make_memory_fabric(2);
  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("anything", {1});

  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(fabric[0]->recv(frame, 2'000'000us));
  const auto d = decode_frame(frame);
  ASSERT_TRUE(d.ok);
  ASSERT_EQ(d.msg.type, MsgType::kJobSubmit);
  const auto done =
      encode(make_job_done(d.msg.job_submit.request_id, anahy::kOk, 0, {7}));
  fabric[0]->send(1, done);
  fabric[0]->send(1, done);  // duplicate delivery

  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kOk);
  // Pump once more: the duplicate must be classified and dropped, never
  // resurface as a phantom reply.
  EXPECT_FALSE(client.wait(id, reply, 50'000us));
  EXPECT_EQ(client.duplicate_replies(), 1u);
}

TEST(ServeFrontend, CallRetriesThenReportsUnreachable) {
  // Node 0 exists but runs no front-end: submissions vanish into its
  // inbox. call() must retry, then give up with kUnreachable — not hang.
  auto fabric = make_memory_fabric(2);
  ServeClient client(*fabric[1], 0);
  CallOptions opts;
  opts.deadline = 150'000us;
  opts.initial_backoff = 10'000us;
  opts.max_backoff = 40'000us;
  const auto t0 = std::chrono::steady_clock::now();
  const auto reply = client.call("void", {}, opts);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(reply.error, anahy::kUnreachable);
  EXPECT_GE(client.retries(), 1u) << "backoff must actually retransmit";
  EXPECT_LT(elapsed, 2s) << "deadline must bound the call";
}

TEST(ServeFrontend, CallSurvivesAnUnansweredFirstAttempt) {
  // The first submit lands in a dead letter box (no front-end yet); the
  // front-end starts while call() is backing off, and a retry succeeds —
  // same request id, one execution.
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("counted_echo", counted_echo);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  g_counted_calls.store(0);

  std::unique_ptr<ServeFrontEnd> frontend;
  std::thread starter([&] {
    std::this_thread::sleep_for(60ms);
    frontend = std::make_unique<ServeFrontEnd>(server, *fabric[0], reg);
  });
  ServeClient client(*fabric[1], 0);
  CallOptions opts;
  opts.deadline = 5'000'000us;
  opts.initial_backoff = 20'000us;
  const auto reply = client.call("counted_echo", {5}, opts);
  starter.join();
  EXPECT_EQ(reply.error, anahy::kOk);
  ASSERT_EQ(reply.payload.size(), 1u);
  EXPECT_EQ(reply.payload[0], 5u);
  // The pre-front-end submits sat in the inbox and were *all* pumped when
  // it started; dedup collapsed them into one execution.
  EXPECT_EQ(g_counted_calls.load(), 1);
}

TEST(ServeFrontend, FaultedJobCarriesMessageOverMemoryFabric) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("throwing_fn", throwing_fn);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto reply = client.call("throwing_fn", {});
  EXPECT_EQ(reply.error, anahy::kFaulted);
  EXPECT_NE(reply.text().find("remote boom"), std::string::npos)
      << "exception message must cross the wire: " << reply.text();
  EXPECT_EQ(server.stats().of(anahy::Priority::kNormal).faulted, 1u);
}

TEST(ServeFrontend, FaultedJobCarriesMessageOverTcp) {
  auto fabric = make_tcp_fabric(2);
  Registry reg;
  reg.add("throwing_fn", throwing_fn);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient client(*fabric[1], 0);
  const auto reply = client.call("throwing_fn", {});
  EXPECT_EQ(reply.error, anahy::kFaulted);
  EXPECT_NE(reply.text().find("remote boom"), std::string::npos);
}

TEST(ServeFrontend, GarbageFramesAreCountedAndSurvived) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  ServeFrontEnd frontend(server, *fabric[0], reg);

  // Garbage, a truncated real frame, and a bit-corrupted real frame.
  fabric[1]->send(0, {0x99, 0x01, 0x02});
  auto real = raw_submit_frame(1, 50, "sum_u32");
  auto truncated = real;
  truncated.resize(real.size() - 3);
  fabric[1]->send(0, truncated);
  auto corrupted = real;
  corrupted[corrupted.size() / 2] ^= 0x10;
  fabric[1]->send(0, corrupted);

  // The pump survives all three and still serves real traffic.
  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(10));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 2'000'000us));
  EXPECT_EQ(reply.error, anahy::kOk);
  EXPECT_EQ(frontend.rejected_frames(), 3u);
  EXPECT_EQ(frontend.last_reject_diagnostic().rfind("ANAHY-F00", 0), 0u)
      << frontend.last_reject_diagnostic();
}

TEST(ServeFrontend, HeartbeatCancelsJobsOfSilentClient) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  std::atomic<bool> release{false};
  reg.add("slow_gate", [&](std::span<const std::uint8_t>)
                           -> std::vector<std::uint8_t> {
    // Slow enough for the reaper to observe the job in flight; bounded so
    // a failed reap cannot wedge the test.
    for (int i = 0; i < 500 && !release.load(std::memory_order_acquire); ++i)
      std::this_thread::sleep_for(1ms);
    return {};
  });
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  FrontEndOptions opts;
  opts.heartbeat_interval = 10'000us;
  opts.dead_after = 60'000us;
  ServeFrontEnd frontend(server, *fabric[0], reg, opts);

  // Raw client that submits and then never answers pings.
  fabric[1]->send(0, raw_submit_frame(1, 1, "slow_gate"));

  const auto deadline = std::chrono::steady_clock::now() + 3s;
  while (frontend.clients_reaped() == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(2ms);
  EXPECT_EQ(frontend.clients_reaped(), 1u) << "silent client never reaped";
  EXPECT_GT(frontend.pings_sent(), 0u);
  release.store(true, std::memory_order_release);
  server.drain();
}

TEST(ServeFrontend, PingedClientThatPongsIsNotReaped) {
  auto fabric = make_memory_fabric(2);
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::JobServer server(anahy::serve::ServerOptions{});
  FrontEndOptions opts;
  opts.heartbeat_interval = 10'000us;
  opts.dead_after = 50'000us;
  ServeFrontEnd frontend(server, *fabric[0], reg, opts);

  // wait() pumps and answers pings, so a client that is merely *slow* to
  // collect a long job is never declared dead.
  ServeClient client(*fabric[1], 0);
  const auto id = client.submit("sum_u32", numbers_payload(1000));
  ServeClient::Reply reply;
  ASSERT_TRUE(client.wait(id, reply, 5'000'000us));
  EXPECT_EQ(reply.error, anahy::kOk);
  EXPECT_EQ(frontend.clients_reaped(), 0u);
}

using ServeClientDeathTest = ::testing::Test;

TEST(ServeClientDeathTest, ConcurrentUseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto fabric = make_memory_fabric(2);
  ServeClient client(*fabric[1], 0);
  EXPECT_DEATH(
      {
        // One thread parks inside wait() while another calls submit():
        // the documented NOT-thread-safe contract must abort loudly, not
        // corrupt the pending-reply map.
        std::thread waiter([&] {
          ServeClient::Reply r;
          client.wait(1, r, std::chrono::microseconds{1'000'000});
        });
        std::this_thread::sleep_for(100ms);
        client.submit("x", {});
        waiter.join();
      },
      "NOT thread-safe");
}

TEST(ServeFrontend, MultipleClientsOverTcpLoopback) {
  auto fabric = make_tcp_fabric(3);  // node 0 serves, nodes 1-2 are clients
  Registry reg;
  reg.add("sum_u32", sum_u32);
  anahy::serve::ServerOptions opts;
  opts.runtime.num_vps = 2;
  anahy::serve::JobServer server(std::move(opts));
  ServeFrontEnd frontend(server, *fabric[0], reg);

  ServeClient c1(*fabric[1], 0);
  ServeClient c2(*fabric[2], 0);
  const auto id1 = c1.submit("sum_u32", numbers_payload(10));
  const auto id2 = c2.submit("sum_u32", numbers_payload(20));
  ServeClient::Reply r1, r2;
  ASSERT_TRUE(c1.wait(id1, r1, 5'000'000us));
  ASSERT_TRUE(c2.wait(id2, r2, 5'000'000us));
  EXPECT_EQ(result_u32(r1), 55u);
  EXPECT_EQ(result_u32(r2), 210u);
}

}  // namespace
