// The serve layer's aging surface: per-job pool accounting flowing into
// JobStats/ServerStats, the server-owned series recorder, the in-process
// aging_report(), and the pool gauges in metrics/observe expositions.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "anahy/serve/job_server.hpp"
#include "anahy/task_pool.hpp"

namespace {

using namespace anahy;
using namespace anahy::serve;

ServerOptions small_server(int vps = 2) {
  ServerOptions o;
  o.runtime.num_vps = vps;
  return o;
}

void* identity(void* in) { return in; }

TEST(AgingServer, JobStatsCarryPoolAccounting) {
  JobServer server(small_server());
  Runtime& rt = server.runtime();
  JobSpec spec;
  spec.body = [&rt](void*) -> void* {
    std::vector<TaskPtr> children;
    for (int i = 0; i < 8; ++i)
      children.push_back(
          rt.fork([](void*) -> void* { return nullptr; }, nullptr));
    for (auto& c : children) rt.join(c, nullptr);
    return nullptr;
  };
  JobHandle h = server.submit(std::move(spec));
  ASSERT_EQ(h.wait(), kOk);
  const JobStats& st = h.result().stats;
  // Root + 8 children, each one charged pool block.
  EXPECT_EQ(st.pool_allocs, 9u);
  EXPECT_GT(st.pool_peak_bytes, 0u);
  // Peak is bounded by total charged bytes (it is a concurrency peak).
  EXPECT_LE(st.pool_peak_bytes, st.pool_allocs * 1024u);
}

TEST(AgingServer, ServerStatsFoldPerJobPoolCounters) {
  JobServer server(small_server());
  for (int i = 0; i < 3; ++i) {
    JobSpec spec;
    spec.body = identity;
    server.submit(std::move(spec)).wait();
  }
  const ServerStats s = server.stats();
  const auto& c = s.of(Priority::kNormal);
  EXPECT_EQ(c.pool_allocs, 3u);  // one root task per job
  EXPECT_GT(c.pool_peak_bytes, 0u);
  // The process-wide pool gauges are filled at snapshot time.
  EXPECT_GT(s.pool_arena_bytes, 0u);
}

TEST(AgingServer, MetricsAndObserveTextExposePoolRows) {
  JobServer server(small_server());
  JobSpec spec;
  spec.body = identity;
  server.submit(std::move(spec)).wait();
  const std::string metrics = server.metrics_text();
  EXPECT_NE(metrics.find("anahy_serve_job_pool_allocs_total"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("anahy_serve_pool_live_bytes"), std::string::npos);
  EXPECT_NE(metrics.find("anahy_serve_pool_outstanding_blocks{class=\"64\"}"),
            std::string::npos)
      << metrics;

  const std::string observed = server.observe_text();
  EXPECT_NE(observed.find("anahy_pool_live_bytes"), std::string::npos)
      << observed;
  EXPECT_NE(observed.find("anahy_pool_outstanding_blocks{class=\"64\"}"),
            std::string::npos);
}

TEST(AgingServer, RecordsSeriesAndReportsClean) {
  ServerOptions opts = small_server();
  opts.aging_capacity = 128;
  JobServer server(opts);
  for (int i = 0; i < 20; ++i) {
    JobSpec spec;
    spec.body = identity;
    server.submit(std::move(spec)).wait();
    server.record_aging_sample();
  }
  const aging::Series series = server.aging_series();
  ASSERT_EQ(series.size(), 20u);
  // The jobs column is monotonic and ends at the resolved total minus the
  // baseline sample's share.
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_GE(series[i].jobs, series[i - 1].jobs);
  EXPECT_GT(series.back().jobs, 0u);
  EXPECT_GT(series.back().rss_bytes, 0u);  // /proc/self/statm is readable

  // A tiny healthy run yields no findings (too short for trend verdicts).
  // The samples here are event-driven (one per job, back-to-back), so the
  // median interval is tens of µs and any scheduler stall on a loaded CI
  // host would read as an A005 gap; give the gap detector a stall-sized
  // floor — gap detection itself is pinned by tests/aging/test_analyze.
  aging::AnalyzeOptions ao;
  ao.gap_min_ns = std::int64_t{3600} * 1'000'000'000;
  const aging::Analysis report = server.aging_report(ao);
  EXPECT_TRUE(report.findings.empty())
      << aging::format_findings(report.findings);

  // The series round-trips through the on-disk format.
  std::ostringstream out;
  series.save(out);
  aging::Series loaded;
  std::istringstream in(out.str());
  std::string error;
  ASSERT_TRUE(loaded.load(in, &error)) << error;
  EXPECT_EQ(loaded.size(), series.size());
}

TEST(AgingServer, SeriesSurvivesServerRestartMonotonically) {
  // Two server generations feeding one offline series: the per-generation
  // recorders reset, but a concatenated series must still be analyzable.
  // (The in-server Recorder handles in-process restarts; this exercises
  // the same clamped arithmetic end to end through real servers.)
  aging::Recorder rec;
  for (int gen = 0; gen < 2; ++gen) {
    JobServer server(small_server());
    for (int i = 0; i < 5; ++i) {
      JobSpec spec;
      spec.body = identity;
      server.submit(std::move(spec)).wait();
      aging::Cumulative c;
      c.t_ns = TaskContext::now_ns();
      const ServerStats s = server.stats();
      for (const auto& cls : s.by_class) {
        c.jobs_resolved +=
            cls.completed + cls.timed_out + cls.aborted + cls.faulted;
        c.queue_wait_ns_sum += cls.queue_wait_ns_sum;
        c.exec_ns_sum += cls.exec_ns_sum;
      }
      c.heap_bytes = s.pool_live_bytes;
      c.arena_bytes = s.pool_arena_bytes;
      rec.sample(c);
    }
  }
  ASSERT_EQ(rec.samples(), 10u);
  const aging::Series& s = rec.series();
  for (std::size_t i = 1; i < s.size(); ++i)
    EXPECT_GE(s[i].jobs, s[i - 1].jobs) << "negative delta at " << i;
  // 4 deltas per generation land on top of each generation's baseline.
  EXPECT_EQ(s.back().jobs, 8u);
}

TEST(AgingServer, AccountingKillSwitchStopsCharging) {
  set_pool_accounting(false);
  JobServer server(small_server());
  JobSpec spec;
  spec.body = identity;
  JobHandle h = server.submit(std::move(spec));
  ASSERT_EQ(h.wait(), kOk);
  EXPECT_EQ(h.result().stats.pool_allocs, 0u);
  set_pool_accounting(true);
}

}  // namespace
