// JobServer x anahy::rejuv end-to-end (docs/REJUV.md): the admission
// controller shedding by class under a tiny budget, a rejuvenation cycle
// reaping a real stranded-fork leak out of a live server, exactly-once
// handle resolution across concurrent cycles, and the automatic policy
// thread closing the loop on its own.
#include "anahy/serve/job_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "anahy/task_pool.hpp"

namespace {

using namespace anahy;
using namespace anahy::serve;

/// A job whose body strands one fork: the join budget of the last child is
/// never consumed, so its registry guard pins the task's pool block until
/// a rejuvenation cycle reaps it (the aging_soak / rejuv_soak leak).
JobSpec leaky_spec(Runtime& rt, int width = 3) {
  JobSpec spec;
  spec.label = "leaky";
  spec.body = [&rt, width](void*) -> void* {
    std::vector<TaskPtr> children;
    for (int c = 0; c < width; ++c)
      children.push_back(rt.fork([](void*) -> void* { return nullptr; },
                                 nullptr));
    for (std::size_t c = 0; c + 1 < children.size(); ++c)
      rt.join(children[c], nullptr);
    return nullptr;
  };
  return spec;
}

TEST(RejuvServer, CycleReapsStrandedTasksAndAnnotatesSeries) {
  ServerOptions opts;
  opts.runtime.num_vps = 2;
  JobServer server(std::move(opts));

  server.record_aging_sample();
  for (int i = 0; i < 40; ++i)
    ASSERT_EQ(server.submit(leaky_spec(server.runtime())).wait(), kOk);
  server.record_aging_sample();
  const std::uint64_t live_before = pool_snapshot().live_bytes;

  const rejuv::CycleReport rep = server.rejuvenate();
  EXPECT_GT(rep.reaped_bytes, 0u);
  EXPECT_EQ(rep.vps_restarted, 2);
  EXPECT_NE(rep.summary().find("reaped"), std::string::npos);
  // One stranded fork per job — but a child forked by the very last jobs
  // may still be on a VP when the first cycle runs (reap only retires
  // *finished* tasks); follow-up cycles collect such stragglers.
  std::uint64_t reaped = rep.tasks_reaped;
  for (int retry = 0; retry < 100 && reaped < 40; ++retry) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    reaped += server.rejuvenate().tasks_reaped;
  }
  EXPECT_EQ(reaped, 40u);
  EXPECT_LT(pool_snapshot().live_bytes, live_before);

  const JobServer::RejuvCounters c = server.rejuv_counters();
  EXPECT_GE(c.cycles, 1u);
  EXPECT_EQ(c.reaped_tasks, reaped);
  EXPECT_GT(c.reclaimed_bytes, 0u);

  // Cycles leave their provenance: ANAHY-A007 marks on the aging series
  // (carried into the analysis as annotations, never findings) and the
  // counter rows in the observability exposition.
  const aging::Series s = server.aging_series();
  ASSERT_GE(s.annotations().size(), 1u);
  EXPECT_EQ(s.annotations()[0].code, aging::code::kRejuvenation);
  const aging::Analysis a = server.aging_report();
  EXPECT_EQ(a.annotations.size(), s.annotations().size());
  for (const auto& f : a.findings)
    EXPECT_NE(f.code, aging::code::kRejuvenation);
  const std::string text = server.observe_text();
  EXPECT_NE(text.find("anahy_rejuv_cycles_total"), std::string::npos);
  EXPECT_NE(text.find("anahy_rejuv_reaped_tasks_total"), std::string::npos);

  // The server is still a server after the rolling restart.
  JobSpec after;
  after.body = [](void*) -> void* { return nullptr; };
  EXPECT_EQ(server.submit(std::move(after)).wait(), kOk);
}

TEST(RejuvServer, TinyBudgetShedsByClassLadder) {
  ServerOptions opts;
  opts.runtime.num_vps = 1;
  opts.rejuv_admission.budget.total_bytes = 1;  // everything scores over
  opts.rejuv_admission.max_defer_ns = 20'000'000;  // 20 ms bounded hold
  JobServer server(std::move(opts));
  ASSERT_NE(server.admission(), nullptr);
  // Verdicts are computed at refresh points, not construction.
  server.record_aging_sample();

  std::atomic<int> batch_ran{0};
  JobSpec batch;
  batch.priority = Priority::kBatch;
  batch.body = [&batch_ran](void*) -> void* {
    batch_ran.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  };
  JobHandle deferred = server.submit(std::move(batch));

  JobSpec normal;
  normal.priority = Priority::kNormal;
  normal.body = [](void*) -> void* { return nullptr; };
  JobHandle rejected = server.submit(std::move(normal));
  EXPECT_EQ(rejected.wait(), kOverloaded);

  JobSpec high;
  high.priority = Priority::kHigh;
  high.body = [](void*) -> void* { return nullptr; };
  EXPECT_EQ(server.submit(std::move(high)).wait(), kOk);

  // Bounded deferral, never starvation: the held batch job runs once its
  // defer deadline passes even though the pressure never cleared.
  EXPECT_EQ(deferred.wait(), kOk);
  EXPECT_EQ(batch_ran.load(), 1);

  const JobServer::RejuvCounters c = server.rejuv_counters();
  EXPECT_GE(c.deferred, 1u);
  EXPECT_GE(c.shed, 1u);
  EXPECT_GE(server.stats().of(Priority::kNormal).rejected, 1u);
}

TEST(RejuvServer, DeferredBatchRunsEarlyWhenPressureClears) {
  ServerOptions opts;
  opts.runtime.num_vps = 1;
  opts.rejuv_admission.budget.total_bytes = 1;
  opts.rejuv_admission.max_defer_ns = 10'000'000'000;  // far beyond the test
  JobServer server(std::move(opts));
  server.record_aging_sample();

  JobSpec batch;
  batch.priority = Priority::kBatch;
  batch.body = [](void*) -> void* { return nullptr; };
  JobHandle held = server.submit(std::move(batch));

  // Lift the budget's pressure: a rejuvenation cycle refreshes the cached
  // verdicts... but a 1-byte budget stays over, so instead mutate nothing
  // and verify the hold is real first.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(held.done());

  // drain() cancels holds: deferred work is finished, not discarded.
  server.drain();
  EXPECT_EQ(held.wait(), kOk);
}

TEST(RejuvServer, JobsResolveExactlyOnceAcrossConcurrentCycles) {
  ServerOptions opts;
  opts.runtime.num_vps = 2;
  JobServer server(std::move(opts));

  std::atomic<int> callbacks{0};
  std::vector<JobHandle> handles;
  std::atomic<bool> stop_rejuv{false};
  std::thread rejuvenator([&] {
    while (!stop_rejuv.load(std::memory_order_acquire))
      (void)server.rejuvenate();
  });

  for (int i = 0; i < 150; ++i) {
    JobSpec spec = leaky_spec(server.runtime(), 2);
    spec.on_complete = [&callbacks](const JobResult&) {
      callbacks.fetch_add(1, std::memory_order_relaxed);
    };
    handles.push_back(server.submit(std::move(spec)));
  }
  for (auto& h : handles) EXPECT_EQ(h.wait(), kOk);
  stop_rejuv.store(true, std::memory_order_release);
  rejuvenator.join();
  server.drain();  // callbacks may trail wait(); drain waits them out

  EXPECT_EQ(callbacks.load(), 150);
  EXPECT_EQ(server.stats().resolved_total(), 150u);
  EXPECT_GE(server.rejuv_counters().cycles, 1u);
}

TEST(RejuvServer, PolicyThreadTripsOnLeakAndRejuvenates) {
  ServerOptions opts;
  opts.runtime.num_vps = 2;
  opts.aging_capacity = 0;
  opts.rejuv_period_ns = 2'000'000;  // 2 ms sampling/evaluation cadence
  opts.rejuv_policy.min_points = 16;
  opts.rejuv_policy.cooldown_ns = 0;
  // A strong leak against soft thresholds so the trip is prompt: any
  // sustained growth past a few hundred bytes counts.
  opts.rejuv_policy.analyze.warmup_fraction = 0.0;
  opts.rejuv_policy.analyze.min_points = 8;
  opts.rejuv_policy.analyze.heap_slope_min = 1.0;
  opts.rejuv_policy.analyze.heap_growth_min = 256.0;
  JobServer server(std::move(opts));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.rejuv_counters().cycles == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 8; ++i)
      ASSERT_EQ(server.submit(leaky_spec(server.runtime(), 4)).wait(), kOk);
  }
  EXPECT_GE(server.rejuv_counters().cycles, 1u)
      << "policy thread never tripped on a strong leak";
}

}  // namespace
