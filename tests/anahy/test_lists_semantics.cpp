// Deterministic observation of the paper's four task lists (§2.2.1) using
// gate tasks whose progress the test controls.
#include "anahy/anahy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace {

using namespace anahy;
using namespace std::chrono_literals;

/// Busy-gate a worker task until the test releases it.
struct Gate {
  std::atomic<bool> open{false};
  std::atomic<bool> entered{false};
  void wait() {
    entered.store(true);
    while (!open.load()) std::this_thread::yield();
  }
  void release() { open.store(true); }
};

bool eventually(const std::function<bool()>& cond,
                std::chrono::milliseconds budget = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::yield();
  }
  return cond();
}

TEST(ListSemantics, ReadyTasksWaitWhenNoVpIsFree) {
  // 2 VPs total, main not participating -> 2 workers. Occupy both with
  // gates; further tasks must sit in the READY list.
  Options o;
  o.num_vps = 2;
  o.main_participates = false;
  Runtime rt(o);

  Gate g1, g2;
  TaskPtr a = rt.fork([&](void*) -> void* { g1.wait(); return nullptr; }, nullptr);
  TaskPtr b = rt.fork([&](void*) -> void* { g2.wait(); return nullptr; }, nullptr);
  ASSERT_TRUE(eventually([&] { return g1.entered.load() && g2.entered.load(); }));

  TaskPtr c = rt.fork([](void*) -> void* { return nullptr; }, nullptr);
  // Both VPs are gated: c stays ready.
  EXPECT_EQ(rt.lists().ready, 1u);
  EXPECT_EQ(c->state(), TaskState::kReady);

  g1.release();
  g2.release();
  EXPECT_EQ(rt.join(a, nullptr), kOk);
  EXPECT_EQ(rt.join(b, nullptr), kOk);
  EXPECT_EQ(rt.join(c, nullptr), kOk);
  const auto lists = rt.lists();
  EXPECT_EQ(lists.ready + lists.finished, 0u);
}

TEST(ListSemantics, FinishedTasksParkUntilJoined) {
  Options o;
  o.num_vps = 2;
  o.main_participates = false;
  Runtime rt(o);
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < 5; ++i)
    tasks.push_back(rt.fork([](void*) -> void* { return nullptr; }, nullptr));
  ASSERT_TRUE(eventually([&] { return rt.lists().finished == 5; }));
  // Join consumes them one by one from the FINISHED list.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(rt.join(tasks[i], nullptr), kOk);
    EXPECT_EQ(rt.lists().finished, 4 - i);
  }
}

TEST(ListSemantics, BlockedFlowIsVisibleWhileTargetRuns) {
  Options o;
  o.num_vps = 3;
  o.main_participates = false;
  Runtime rt(o);

  Gate slow;
  TaskPtr target =
      rt.fork([&](void*) -> void* { slow.wait(); return nullptr; }, nullptr);
  ASSERT_TRUE(eventually([&] { return slow.entered.load(); }));

  // A second task joins the running target: its flow must show up as
  // BLOCKED (no other ready work to help with).
  std::atomic<int> join_rc{-1};
  TaskPtr joiner = rt.fork(
      [&](void*) -> void* {
        join_rc.store(rt.join(target, nullptr));
        return nullptr;
      },
      nullptr);
  ASSERT_TRUE(eventually([&] { return rt.lists().blocked == 1; }));
  EXPECT_EQ(rt.stats().continuations, 1u);

  slow.release();
  EXPECT_EQ(rt.join(joiner, nullptr), kOk);
  EXPECT_EQ(join_rc.load(), kOk);
  EXPECT_EQ(rt.lists().blocked, 0u);
}

TEST(ListSemantics, HelpingJoinerDrainsReadyInsteadOfBlocking) {
  // One worker is gated; the main flow joins the gated task and must
  // execute the other ready tasks itself while waiting (paper: the VP of
  // a split flow takes new work from the ready list).
  Options o;
  o.num_vps = 2;  // main + 1 worker
  Runtime rt(o);

  Gate gate;
  TaskPtr gated =
      rt.fork([&](void*) -> void* { gate.wait(); return nullptr; }, nullptr);
  ASSERT_TRUE(eventually([&] { return gate.entered.load(); }));

  std::vector<TaskPtr> extra;
  for (int i = 0; i < 10; ++i)
    extra.push_back(rt.fork([](void*) -> void* { return nullptr; }, nullptr));

  std::thread releaser([&] {
    // Release the gate only after main has had a chance to help.
    while (rt.stats().joins_helped + rt.stats().tasks_run_by_main < 10)
      std::this_thread::yield();
    gate.release();
  });
  EXPECT_EQ(rt.join(gated, nullptr), kOk);
  releaser.join();
  EXPECT_GE(rt.stats().tasks_run_by_main, 10u);
  for (auto& t : extra) EXPECT_EQ(rt.join(t, nullptr), kOk);
}

}  // namespace
