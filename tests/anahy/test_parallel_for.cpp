#include "anahy/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

namespace {

using namespace anahy;

TEST(SplitRange, BasicPartition) {
  const auto r = split_range(0, 10, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].begin, 0);
  EXPECT_EQ(r[0].end, 3);
  EXPECT_EQ(r[1].end, 6);
  EXPECT_EQ(r[2].end, 10);  // remainder in the last range
}

TEST(SplitRange, EmptyAndDegenerate) {
  EXPECT_TRUE(split_range(5, 5, 4).empty());
  const auto one = split_range(3, 4, 8);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 3);
  EXPECT_EQ(one[0].end, 4);
  EXPECT_THROW((void)split_range(4, 3, 1), std::invalid_argument);
  EXPECT_THROW((void)split_range(0, 4, 0), std::invalid_argument);
}

TEST(SplitRange, CoverageProperty) {
  for (const long n : {1L, 7L, 100L, 1001L}) {
    for (const int tasks : {1, 2, 3, 16}) {
      long expect = 0;
      for (const auto& r : split_range(0, n, tasks)) {
        EXPECT_EQ(r.begin, expect);
        EXPECT_LT(r.begin, r.end);
        expect = r.end;
      }
      EXPECT_EQ(expect, n);
    }
  }
}

TEST(ParallelFor, TouchesEveryIndexOnce) {
  Runtime rt(Options{.num_vps = 4});
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(rt, 0, 1000, 16, [&](long i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  Runtime rt(Options{.num_vps = 2});
  int calls = 0;
  parallel_for(rt, 10, 10, 4, [&](long) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleTaskFallsBackInline) {
  Runtime rt(Options{.num_vps = 2});
  const auto before = rt.stats().tasks_created;
  long sum = 0;
  parallel_for(rt, 0, 100, 1, [&](long i) { sum += i; });
  EXPECT_EQ(sum, 4950);
  EXPECT_EQ(rt.stats().tasks_created, before);  // inline, no tasks
}

TEST(ParallelReduce, SumMatchesFormula) {
  Runtime rt(Options{.num_vps = 4});
  const long n = 100000;
  const long total = parallel_reduce(
      rt, 1, n + 1, 8, 0L, [](long i) { return i; },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(total, n * (n + 1) / 2);
}

TEST(ParallelReduce, NonCommutativeAssociativeOperator) {
  // String concatenation: associative, NOT commutative. Deterministic
  // range-ordered combination must preserve the sequence.
  Runtime rt(Options{.num_vps = 3});
  const std::string result = parallel_reduce(
      rt, 0, 26, 5, std::string{},
      [](long i) { return std::string(1, static_cast<char>('a' + i)); },
      [](std::string a, std::string b) { return a + b; });
  EXPECT_EQ(result, "abcdefghijklmnopqrstuvwxyz");
}

TEST(ParallelReduce, MatchesAcrossVpCountsAndPolicies) {
  long reference = -1;
  for (const int vps : {1, 2, 4}) {
    for (const auto policy :
         {PolicyKind::kFifo, PolicyKind::kWorkStealing}) {
      Options o;
      o.num_vps = vps;
      o.policy = policy;
      Runtime rt(o);
      const long v = parallel_reduce(
          rt, 0, 5000, 7, 0L, [](long i) { return i * i % 97; },
          [](long a, long b) { return a + b; });
      if (reference < 0) reference = v;
      EXPECT_EQ(v, reference) << vps << " VPs " << to_string(policy);
    }
  }
}

}  // namespace
