// Concurrency stress tests for the lock-free scheduling fast path: deque
// grow-under-steal, claim exactly-once semantics, eventcount wakeups, and
// registry churn. Labelled `tsan` in CMake: run them under a
// -DANAHY_SAN=thread build to let ThreadSanitizer check the memory-ordering
// arguments in docs/SCHEDULER.md.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "anahy/anahy.hpp"
#include "anahy/eventcount.hpp"
#include "anahy/policy_steal.hpp"
#include "anahy/steal_deque.hpp"

namespace {

using namespace anahy;

/// Satellite regression: grow() used to publish the new buffer with plain
/// stores; a thief could observe the buffer pointer without the copied
/// slots. Start from capacity 2 so the owner grows repeatedly *while*
/// several thieves are stealing, and check conservation of elements.
TEST(ChaseLevDequeGrow, MultiThiefGrowUnderStealConservesElements) {
  constexpr int kRounds = 50;
  constexpr int kBurst = 400;  // >> initial capacity: every round grows
  constexpr int kThieves = 3;

  ChaseLevDeque<int> d(2);
  std::atomic<long long> stolen_sum{0};
  std::atomic<long long> stolen_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || !d.empty()) {
        if (auto v = d.steal_top()) {
          stolen_sum.fetch_add(*v, std::memory_order_relaxed);
          stolen_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  long long pushed_sum = 0;
  long long owner_sum = 0;
  long long owner_count = 0;
  int next = 0;
  for (int round = 0; round < kRounds; ++round) {
    // Push a burst larger than the current capacity can have shrunk to,
    // forcing a grow while the thieves are mid-steal...
    for (int i = 0; i < kBurst; ++i) {
      d.push_bottom(next);
      pushed_sum += next;
      ++next;
    }
    // ...then drain roughly half from the bottom so indices keep wrapping.
    for (int i = 0; i < kBurst / 2; ++i) {
      if (auto v = d.pop_bottom()) {
        owner_sum += *v;
        ++owner_count;
      }
    }
  }
  while (auto v = d.pop_bottom()) {
    owner_sum += *v;
    ++owner_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  while (auto v = d.pop_bottom()) {  // a thief may race the done flag
    owner_sum += *v;
    ++owner_count;
  }

  EXPECT_EQ(owner_count + stolen_count.load(), 1LL * kRounds * kBurst);
  EXPECT_EQ(owner_sum + stolen_sum.load(), pushed_sum);
}

TaskPtr make_task(TaskId id) {
  return std::make_shared<Task>(
      id, [](void*) -> void* { return nullptr; }, nullptr, TaskAttributes{},
      kRootTaskId, 1);
}

/// try_claim is the single consumption point: concurrent pops, steals and
/// remove_specific calls over the same tasks must hand out each task to
/// exactly one caller.
TEST(WorkStealingClaim, ConcurrentPopsAndRemovesClaimEachTaskOnce) {
  constexpr int kTasks = 4000;
  constexpr int kPoppers = 2;

  WorkStealingPolicy policy(kPoppers);
  std::vector<TaskPtr> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(make_task(static_cast<TaskId>(i + 1)));
    policy.push(tasks.back(), i % kPoppers);
  }

  std::atomic<long long> claimed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int vp = 0; vp < kPoppers; ++vp) {
    threads.emplace_back([&, vp] {
      while (!stop.load(std::memory_order_acquire)) {
        if (policy.pop(vp) != nullptr)
          claimed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // The joiner: tries to inline specific tasks while the poppers drain.
  threads.emplace_back([&] {
    for (const auto& t : tasks) {
      if (policy.remove_specific(t, SchedulingPolicy::kExternalVp))
        claimed.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (claimed.load(std::memory_order_acquire) < kTasks &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_EQ(claimed.load(), kTasks);
  EXPECT_EQ(policy.pop(0), nullptr);
  EXPECT_EQ(policy.approx_size(), 0u);
  for (const auto& t : tasks) EXPECT_EQ(t->state(), TaskState::kRunning);
}

/// remove_specific claims in O(1) and leaves the deque entry behind; the
/// owner's next pop must recognize the stale entry and skip past it.
TEST(WorkStealingClaim, PopDiscardsStaleEntryLeftByRemoveSpecific) {
  WorkStealingPolicy policy(1);
  auto a = make_task(1);
  auto b = make_task(2);
  policy.push(a, 0);
  policy.push(b, 0);  // owner end: b is on top of a
  EXPECT_TRUE(policy.remove_specific(b, 0));
  EXPECT_EQ(policy.pop(0), a);  // b's stale entry is silently discarded
  EXPECT_EQ(policy.pop(0), nullptr);
  EXPECT_EQ(policy.approx_size(), 0u);
}

TEST(EventCountTest, NotifyWithNoSleepersSkipsTheSlowPath) {
  EventCount ec;
  ec.notify_one();
  ec.notify_all();
  EXPECT_EQ(ec.wakeups(), 0u);
  EXPECT_EQ(ec.wakeups_skipped(), 2u);
}

TEST(EventCountTest, CancelledWaitLeavesNoSleeper) {
  EventCount ec;
  (void)ec.prepare_wait();
  ec.cancel_wait();
  ec.notify_one();  // nobody should be woken...
  EXPECT_EQ(ec.wakeups(), 0u);
  EXPECT_EQ(ec.wakeups_skipped(), 1u);
}

TEST(EventCountTest, WaiterWakesOnNotify) {
  EventCount ec;
  std::atomic<bool> work{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    for (;;) {
      if (work.load(std::memory_order_acquire)) break;
      const auto e = ec.prepare_wait();
      if (work.load(std::memory_order_acquire)) {  // the mandatory re-check
        ec.cancel_wait();
        break;
      }
      ec.commit_wait(e);
    }
    woke.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  work.store(true, std::memory_order_release);
  ec.notify_all();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

/// Hammer prepare/notify from several threads: no waiter may sleep through
/// a notify that observed it (the Dekker argument in eventcount.hpp).
TEST(EventCountTest, NoLostWakeupsUnderChurn) {
  EventCount ec;
  std::atomic<int> pending{0};  // "work items" published before notify
  std::atomic<int> consumed{0};
  std::atomic<bool> stop{false};
  constexpr int kItems = 20000;

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        int p = pending.load(std::memory_order_acquire);
        if (p > 0 &&
            pending.compare_exchange_weak(p, p - 1,
                                          std::memory_order_acq_rel)) {
          consumed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const auto e = ec.prepare_wait();
        if (pending.load(std::memory_order_acquire) > 0 ||
            stop.load(std::memory_order_acquire)) {
          ec.cancel_wait();
          continue;
        }
        ec.commit_wait(e);
      }
    });
  }

  for (int i = 0; i < kItems; ++i) {
    pending.fetch_add(1, std::memory_order_release);
    ec.notify_one();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (consumed.load() < kItems &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  ec.notify_all();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kItems);
}

/// Sharded-registry churn: several external threads fork and join through
/// the same runtime; every result must come back exactly once.
TEST(SchedulerConcurrency, ExternalThreadsForkJoinChurn) {
  Runtime rt(Options{.num_vps = 2});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  std::vector<std::thread> threads;
  std::atomic<long long> total{0};
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      long long local = 0;
      for (int i = 0; i < kPerThread; ++i) {
        auto h = spawn(rt, [tid, i] { return tid * 100000 + i; });
        local += h.join();
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  long long expected = 0;
  for (int tid = 0; tid < kThreads; ++tid)
    for (int i = 0; i < kPerThread; ++i) expected += tid * 100000 + i;
  EXPECT_EQ(total.load(), expected);
  const auto s = rt.stats();
  EXPECT_EQ(s.tasks_executed, 1ULL * kThreads * kPerThread);
  EXPECT_EQ(s.joins_total, 1ULL * kThreads * kPerThread);
}

/// Satellite (c): with one VP the joiner *must* inline join targets out of
/// the ready list (remove_specific) to make progress; the stats counter
/// proves the O(1) claim path actually fires.
TEST(SchedulerConcurrency, JoinInliningFiresOnDeepFib) {
  Runtime rt(Options{.num_vps = 1});
  std::function<long(long)> fib = [&](long n) -> long {
    if (n < 2) return n;
    auto h = spawn(rt, fib, n - 1);
    const long b = fib(n - 2);
    return h.join() + b;
  };
  EXPECT_EQ(fib(15), 610);
  const auto s = rt.stats();
  EXPECT_GT(s.joins_inlined, 0u);
  EXPECT_EQ(s.tasks_run_by_main, s.tasks_executed);  // no worker threads
}

/// The lock-free and mutex-based work-stealing policies must compute the
/// same results (determinism criterion used by the benchmark comparison).
TEST(SchedulerConcurrency, LockFreeAndMutexPoliciesAgree) {
  for (const PolicyKind policy :
       {PolicyKind::kWorkStealing, PolicyKind::kWorkStealingMutex}) {
    for (const int vps : {1, 2, 4}) {
      Options o;
      o.num_vps = vps;
      o.policy = policy;
      Runtime rt(o);
      std::function<long(long)> fib = [&](long n) -> long {
        if (n < 2) return n;
        auto h = spawn(rt, fib, n - 1);
        const long b = fib(n - 2);
        return h.join() + b;
      };
      EXPECT_EQ(fib(16), 987)
          << "policy " << to_string(policy) << " vps " << vps;
    }
  }
}

}  // namespace
