// Tests of the synchronization extension set (mutex/cond/sem/barrier),
// including the documented VP-count requirement for blocking primitives.
#include "anahy/anahy.hpp"
#include "anahy/sync_ext.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace {

using namespace anahy;

TEST(SyncMutex, LifecycleAndArgChecks) {
  athread_mutex_t m;
  EXPECT_EQ(athread_mutex_init(nullptr), kInvalid);
  EXPECT_EQ(athread_mutex_init(&m), kOk);
  EXPECT_EQ(athread_mutex_lock(&m), kOk);
  EXPECT_EQ(athread_mutex_trylock(&m), kAgain);  // already held
  EXPECT_EQ(athread_mutex_unlock(&m), kOk);
  EXPECT_EQ(athread_mutex_trylock(&m), kOk);
  EXPECT_EQ(athread_mutex_unlock(&m), kOk);
  EXPECT_EQ(athread_mutex_destroy(&m), kOk);
  EXPECT_EQ(athread_mutex_lock(&m), kInvalid);  // destroyed
}

TEST(SyncMutex, ProtectsSharedCounterAcrossTasks) {
  Runtime rt(Options{.num_vps = 4});
  athread_mutex_t m;
  athread_mutex_init(&m);
  long counter = 0;
  std::vector<Handle<int>> handles;
  for (int t = 0; t < 8; ++t) {
    handles.push_back(spawn(rt, [&counter, &m] {
      for (int i = 0; i < 1000; ++i) {
        athread_mutex_lock(&m);
        ++counter;  // non-atomic on purpose: the mutex must protect it
        athread_mutex_unlock(&m);
      }
      return 0;
    }));
  }
  for (auto& h : handles) h.join();
  EXPECT_EQ(counter, 8000);
  athread_mutex_destroy(&m);
}

TEST(SyncCond, ProducerConsumerHandshake) {
  // Needs >= 2 VPs: a blocked consumer parks its VP (documented caveat).
  Runtime rt(Options{.num_vps = 3});
  athread_mutex_t m;
  athread_cond_t c;
  athread_mutex_init(&m);
  athread_cond_init(&c);
  int stage = 0;

  auto consumer = spawn(rt, [&] {
    athread_mutex_lock(&m);
    while (stage == 0) athread_cond_wait(&c, &m);
    const int seen = stage;
    athread_mutex_unlock(&m);
    return seen;
  });
  auto producer = spawn(rt, [&] {
    athread_mutex_lock(&m);
    stage = 42;
    athread_mutex_unlock(&m);
    athread_cond_broadcast(&c);
    return 0;
  });
  producer.join();
  EXPECT_EQ(consumer.join(), 42);
  athread_cond_destroy(&c);
  athread_mutex_destroy(&m);
}

TEST(SyncSem, CountingSemantics) {
  athread_sem_t s;
  EXPECT_EQ(athread_sem_init(&s, -1), kInvalid);
  ASSERT_EQ(athread_sem_init(&s, 2), kOk);
  EXPECT_EQ(athread_sem_value(&s), 2);
  EXPECT_EQ(athread_sem_trywait(&s), kOk);
  EXPECT_EQ(athread_sem_trywait(&s), kOk);
  EXPECT_EQ(athread_sem_trywait(&s), kAgain);  // drained
  EXPECT_EQ(athread_sem_post(&s), kOk);
  EXPECT_EQ(athread_sem_wait(&s), kOk);
  EXPECT_EQ(athread_sem_value(&s), 0);
  athread_sem_destroy(&s);
}

TEST(SyncSem, BoundsConcurrentEntry) {
  Runtime rt(Options{.num_vps = 4});
  athread_sem_t s;
  athread_sem_init(&s, 2);  // at most 2 tasks inside
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<Handle<int>> handles;
  for (int t = 0; t < 12; ++t) {
    handles.push_back(spawn(rt, [&] {
      athread_sem_wait(&s);
      const int now = inside.fetch_add(1) + 1;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      for (int spin = 0; spin < 2000; ++spin) {
        std::atomic_signal_fence(std::memory_order_seq_cst);  // no unroll-away
      }
      inside.fetch_sub(1);
      athread_sem_post(&s);
      return 0;
    }));
  }
  for (auto& h : handles) h.join();
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
  athread_sem_destroy(&s);
}

TEST(SyncBarrier, AllPartiesMeetExactlyOneSerial) {
  Runtime rt(Options{.num_vps = 4});
  athread_barrier_t b;
  ASSERT_EQ(athread_barrier_init(&b, 4), kOk);
  std::atomic<int> serials{0};
  std::atomic<int> passed{0};
  std::vector<Handle<int>> handles;
  // Exactly as many tasks as VPs: each blocked waiter parks a VP, the
  // last arriver releases the cycle.
  for (int t = 0; t < 4; ++t) {
    handles.push_back(spawn(rt, [&] {
      const int rc = athread_barrier_wait(&b);
      if (rc == kBarrierSerial) serials.fetch_add(1);
      passed.fetch_add(1);
      return rc;
    }));
  }
  for (auto& h : handles) h.join();
  EXPECT_EQ(passed.load(), 4);
  EXPECT_EQ(serials.load(), 1);
  athread_barrier_destroy(&b);
}

TEST(SyncBarrier, ReusableAcrossCycles) {
  Runtime rt(Options{.num_vps = 3});
  athread_barrier_t b;
  athread_barrier_init(&b, 2);
  std::atomic<int> serials{0};
  for (int cycle = 0; cycle < 5; ++cycle) {
    auto a = spawn(rt, [&] { return athread_barrier_wait(&b); });
    auto c = spawn(rt, [&] { return athread_barrier_wait(&b); });
    const int ra = a.join();
    const int rc = c.join();
    EXPECT_EQ((ra == kBarrierSerial) + (rc == kBarrierSerial), 1);
    serials += (ra == kBarrierSerial) + (rc == kBarrierSerial);
  }
  EXPECT_EQ(serials.load(), 5);
  athread_barrier_destroy(&b);
}

TEST(SyncBarrier, RejectsZeroCount) {
  athread_barrier_t b;
  EXPECT_EQ(athread_barrier_init(&b, 0), kInvalid);
}

}  // namespace
