// Tests of the anahy::observe subsystem: per-VP telemetry counters and
// wait-free snapshots (including a snapshot taken concurrently with a
// stealing workload — the TSan-certified half of the contract), threshold
// anomaly detection, text exposition, the span profiler, the chrome
// trace-event export, and work/span growth on the fib workload.
#include "anahy/anahy.hpp"
#include "anahy/observe/chrome_trace.hpp"
#include "anahy/observe/exposition.hpp"
#include "anahy/observe/profiler.hpp"
#include "anahy/observe/telemetry.hpp"
#include "anahy/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace anahy;
using observe::Snapshot;
using observe::Telemetry;
using observe::VpCounters;

// ---------------------------------------------------------------------------
// Telemetry counter bank
// ---------------------------------------------------------------------------

TEST(Telemetry, CountersLandOnTheirSlot) {
  Telemetry t(2);
  t.on_fork(0);
  t.on_fork(0);
  t.on_join(1);
  t.on_task_run(1);
  t.on_steal_attempt(0);
  t.on_steal_success(0);
  t.on_idle_spin(1);
  t.on_idle_park(1, 500);

  const Snapshot s = t.snapshot();
  ASSERT_EQ(s.num_vps, 2);
  ASSERT_EQ(s.per_vp.size(), 3u);  // 2 workers + external
  EXPECT_EQ(s.per_vp[0].forks, 2u);
  EXPECT_EQ(s.per_vp[1].forks, 0u);
  EXPECT_EQ(s.per_vp[1].joins, 1u);
  EXPECT_EQ(s.per_vp[1].tasks_run, 1u);
  EXPECT_EQ(s.per_vp[0].steal_attempts, 1u);
  EXPECT_EQ(s.per_vp[0].steal_successes, 1u);
  EXPECT_EQ(s.per_vp[1].idle_spins, 1u);
  EXPECT_EQ(s.per_vp[1].idle_parks, 1u);
  EXPECT_EQ(s.per_vp[1].idle_park_ns, 500u);
  EXPECT_EQ(s.total.forks, 2u);
  EXPECT_EQ(s.total.joins, 1u);
}

TEST(Telemetry, OutOfRangeVpLandsOnExternalSlot) {
  Telemetry t(2);
  t.on_fork(-1);   // SchedulingPolicy::kExternalVp
  t.on_fork(2);    // the policy's external slot index (== num_vps)
  t.on_fork(99);   // garbage: still must not crash or corrupt a worker slot
  const Snapshot s = t.snapshot();
  EXPECT_EQ(s.per_vp[0].forks, 0u);
  EXPECT_EQ(s.per_vp[1].forks, 0u);
  EXPECT_EQ(s.per_vp[2].forks, 3u);  // external aggregate
  EXPECT_EQ(s.total.forks, 3u);
}

TEST(Telemetry, DequeDepthSamplesTrackSumAndPeak) {
  Telemetry t(1);
  t.sample_deque_depth(0, 3);
  t.sample_deque_depth(0, 7);
  t.sample_deque_depth(0, 1);
  const Snapshot s = t.snapshot();
  EXPECT_EQ(s.per_vp[0].deque_depth_samples, 3u);
  EXPECT_EQ(s.per_vp[0].deque_depth_sum, 11u);
  EXPECT_EQ(s.per_vp[0].deque_depth_peak, 7u);
  EXPECT_DOUBLE_EQ(s.avg_deque_depth(), 11.0 / 3.0);
}

TEST(Telemetry, SnapshotEpochIsMonotonic) {
  Telemetry t(1);
  const Snapshot a = t.snapshot();
  const Snapshot b = t.snapshot();
  EXPECT_GE(a.epoch, 1u);
  EXPECT_GT(b.epoch, a.epoch);
  EXPECT_GE(b.elapsed_ns, a.elapsed_ns);
}

TEST(Telemetry, DeltaSubtractsCountersButKeepsPeak) {
  Telemetry t(1);
  t.on_fork(0);
  t.sample_deque_depth(0, 9);
  const Snapshot a = t.snapshot();
  t.on_fork(0);
  t.on_fork(0);
  t.sample_deque_depth(0, 2);
  const Snapshot b = t.snapshot();

  const Snapshot d = b.delta(a);
  EXPECT_EQ(d.total.forks, 2u);
  EXPECT_EQ(d.total.deque_depth_samples, 1u);
  EXPECT_EQ(d.total.deque_depth_sum, 2u);
  // Peak is a high-water mark, not a rate: the delta keeps the later one.
  EXPECT_EQ(d.total.deque_depth_peak, 9u);
  EXPECT_GE(d.elapsed_ns, 0);
}

TEST(Telemetry, DeltaIsModularAcrossCounterWraparound) {
  // VpCounters::minus is plain unsigned subtraction, which is exactly the
  // modular arithmetic that stays correct when a 64-bit counter wraps:
  // (earlier near max, later small) must yield the true small increment,
  // never a negative-looking huge value. Consumers that cannot trust
  // modular deltas (the aging Recorder, whose counters may *reset*, not
  // wrap) do their own clamping on top — this pins the layering contract.
  VpCounters earlier;
  earlier.forks = std::numeric_limits<std::uint64_t>::max() - 2;
  earlier.joins = std::numeric_limits<std::uint64_t>::max();
  VpCounters later;
  later.forks = 4;   // wrapped: 7 real forks happened
  later.joins = 0;   // wrapped: 1 real join happened
  later.tasks_run = 5;
  const VpCounters d = later.minus(earlier);
  EXPECT_EQ(d.forks, 7u);
  EXPECT_EQ(d.joins, 1u);
  EXPECT_EQ(d.tasks_run, 5u);
}

TEST(Telemetry, GaugesHandleEmptyAndSaturatedInputs) {
  Snapshot s;
  s.num_vps = 2;
  // No attempts: a thief that never had to try is not starving.
  EXPECT_DOUBLE_EQ(s.steal_success_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(s.avg_deque_depth(), 0.0);
  EXPECT_DOUBLE_EQ(s.idle_fraction(), 0.0);  // elapsed == 0

  s.total.steal_attempts = 100;
  s.total.steal_successes = 25;
  EXPECT_DOUBLE_EQ(s.steal_success_ratio(), 0.25);

  // Park time can only over-count by clock skew; the gauge is capped.
  s.elapsed_ns = 1000;
  s.total.idle_park_ns = 999'999;
  EXPECT_DOUBLE_EQ(s.idle_fraction(), 1.0);
}

// The satellite contract: snapshotting is safe while workers are actively
// forking/stealing. Run under -DANAHY_SAN=thread (label: tsan) this test
// certifies the wait-free reader; the assertions also pin that the final
// quiesced snapshot agrees with the program's own count.
TEST(Telemetry, SnapshotConcurrentWithStealingWorkload) {
  Options o;
  o.num_vps = 4;
  Runtime rt(o);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots_taken{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const Snapshot s = rt.observe_snapshot();
      // Totals are sums of monotonic counters: never torn below zero and
      // tasks cannot complete without having been forked first... but the
      // reader races the writers, so only per-counter sanity holds.
      EXPECT_EQ(s.per_vp.size(), 5u);
      (void)observe::render_text(s);  // rendering must also be safe
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Fine-grained fib: every branch forks, so the 4 VPs steal constantly.
  std::function<long(long)> fib = [&](long n) -> long {
    if (n < 2) return n;
    auto a = spawn(rt, fib, n - 1);
    auto b = spawn(rt, fib, n - 2);
    return a.join() + b.join();
  };
  constexpr long kN = 14;
  const long expect = [] {
    long x = 0, y = 1;
    for (long i = 0; i < kN; ++i) {
      const long z = x + y;
      x = y;
      y = z;
    }
    return x;
  }();
  // One fib wave can finish before the OS even schedules the reader; keep
  // the stealing workload alive until the reader has provably raced it a
  // few times (bounded so a wedged reader fails instead of hanging).
  int rounds = 0;
  do {
    EXPECT_EQ(fib(kN), expect);
    ++rounds;
  } while (snapshots_taken.load(std::memory_order_relaxed) < 8 &&
           rounds < 500);

  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(snapshots_taken.load(), 0u);

  // Quiesced: every forked task ran, and the per-VP breakdown adds up to
  // the totals.
  const Snapshot s = rt.observe_snapshot();
  EXPECT_GT(s.total.forks, 0u);
  EXPECT_EQ(s.total.tasks_run, s.total.forks);
  VpCounters sum;
  for (const VpCounters& vp : s.per_vp) sum += vp;
  EXPECT_EQ(sum.forks, s.total.forks);
  EXPECT_EQ(sum.tasks_run, s.total.tasks_run);
  EXPECT_EQ(sum.steal_attempts, s.total.steal_attempts);
}

TEST(Telemetry, DisabledTelemetryStillYieldsAWellFormedSnapshot) {
  Options o;
  o.num_vps = 2;
  o.telemetry = false;
  Runtime rt(o);
  spawn(rt, [] { return 1; }).join();
  const Snapshot s = rt.observe_snapshot();
  EXPECT_EQ(s.num_vps, 2);
  ASSERT_EQ(s.per_vp.size(), 3u);
  EXPECT_EQ(s.total.forks, 0u);  // nothing recorded
  // The exposition must still render (operators can scrape a disabled
  // runtime and see zeros, not a crash).
  const std::string text = observe::render_text(s);
  EXPECT_NE(text.find("anahy_observe_num_vps 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Anomaly thresholds + exposition text
// ---------------------------------------------------------------------------

Snapshot healthy_snapshot() {
  Snapshot s;
  s.num_vps = 2;
  s.elapsed_ns = 1'000'000'000;
  s.per_vp.resize(3);
  s.total.tasks_run = 1000;
  s.total.steal_attempts = 1000;
  s.total.steal_successes = 500;
  s.total.idle_park_ns = 100'000'000;  // 5% of 2 VPs * 1s
  return s;
}

TEST(Anomalies, HealthySnapshotRaisesNoFlags) {
  EXPECT_TRUE(observe::detect_anomalies(healthy_snapshot()).empty());
}

TEST(Anomalies, StealStarvationNeedsVolumeAndFailure) {
  Snapshot s = healthy_snapshot();
  s.total.steal_attempts = observe::kStarvationMinAttempts;
  s.total.steal_successes = 0;
  auto a = observe::detect_anomalies(s);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].code, observe::anomaly_code::kStealStarvation);

  // Below the attempt floor the same ratio is just a quiet runtime.
  s.total.steal_attempts = observe::kStarvationMinAttempts - 1;
  EXPECT_TRUE(observe::detect_anomalies(s).empty());
}

TEST(Anomalies, IdleDominatedNeedsWorkToHaveRun) {
  Snapshot s = healthy_snapshot();
  s.total.idle_park_ns = static_cast<std::uint64_t>(s.elapsed_ns) * 2;
  auto a = observe::detect_anomalies(s);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].code, observe::anomaly_code::kIdleDominated);

  // An idle fleet that never ran anything is just... off.
  s.total.tasks_run = 0;
  EXPECT_TRUE(observe::detect_anomalies(s).empty());
}

TEST(Exposition, RenderTextCarriesCountersGaugesAndAnomalies) {
  Snapshot s = healthy_snapshot();
  s.epoch = 7;
  s.per_vp[0].forks = 11;
  s.per_vp[2].forks = 3;  // external
  s.total.forks = 14;
  s.ready_by_class = {5, 2, 9};
  s.total.steal_attempts = observe::kStarvationMinAttempts;
  s.total.steal_successes = 0;

  const std::string text = observe::render_text(
      s, {{observe::anomaly_code::kDeadlineRisk, "synthetic"}});
  EXPECT_NE(text.find("anahy_observe_epoch 7"), std::string::npos);
  EXPECT_NE(text.find("anahy_observe_forks{vp=\"0\"} 11"), std::string::npos);
  EXPECT_NE(text.find("anahy_observe_forks{vp=\"external\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_forks_total 14"), std::string::npos);
  EXPECT_NE(text.find("anahy_observe_steal_success_ratio 0.000000"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_idle_fraction"), std::string::npos);
  EXPECT_NE(text.find("anahy_observe_ready_tasks{class=\"high\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_ready_tasks{class=\"batch\"} 9"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_anomaly_count 2"), std::string::npos);
  EXPECT_NE(text.find("anahy_observe_anomaly{code=\"ANAHY-P001\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("anahy_observe_anomaly{code=\"ANAHY-P003\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("synthetic"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span profiler
// ---------------------------------------------------------------------------

TEST(SpanProfiler, RecordsAndFlushesIntoTheTrace) {
  observe::SpanProfiler p(2);
  EXPECT_EQ(p.pending(), 0u);
  p.record(0, /*task=*/1, /*job=*/42, /*start_ns=*/100, /*dur_ns=*/50);
  p.record(1, 2, 0, 200, 25);
  p.record(-1, 3, 0, 300, 10);  // external thread
  EXPECT_EQ(p.pending(), 3u);

  TraceGraph trace;
  trace.set_enabled(true);
  // Job identity lives on the node from creation; the span flush fills in
  // timing and VP without disturbing it.
  trace.record_task(1, 0, 0, false, /*job=*/42);
  trace.record_task(2, 0, 0, false);
  trace.record_task(3, 0, 0, false);
  p.flush_into(trace);
  EXPECT_EQ(p.pending(), 0u);  // flush drains; re-flush is a no-op
  p.flush_into(trace);

  const auto nodes = trace.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0].start_ns, 100);
  EXPECT_EQ(nodes[0].exec_ns, 50);
  EXPECT_EQ(nodes[0].vp, 0);
  EXPECT_EQ(nodes[0].job, 42u);
  EXPECT_EQ(nodes[1].vp, 1);
  EXPECT_EQ(nodes[2].vp, -1);  // external identity survives
}

TEST(SpanProfiler, ConcurrentRecordersAndFlusherLoseNothing) {
  observe::SpanProfiler p(4);
  TraceGraph trace;
  trace.set_enabled(true);
  constexpr int kPerThread = 2000;
  for (TaskId id = 1; id <= 4 * kPerThread; ++id)
    trace.record_task(id, 0, 0, false);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) p.flush_into(trace);
  });
  std::vector<std::thread> writers;
  for (int vp = 0; vp < 4; ++vp) {
    writers.emplace_back([&, vp] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto id = static_cast<TaskId>(vp * kPerThread + i + 1);
        p.record(vp, id, 0, i, 1);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  flusher.join();
  p.flush_into(trace);  // whatever the last racing flush missed

  std::size_t spanned = 0;
  for (const auto& n : trace.nodes()) spanned += n.start_ns >= 0 ? 1 : 0;
  EXPECT_EQ(spanned, static_cast<std::size_t>(4 * kPerThread));
  EXPECT_EQ(p.pending(), 0u);
}

// ---------------------------------------------------------------------------
// Profile mode end to end: v3 trace, chrome JSON, work/span
// ---------------------------------------------------------------------------

long run_profiled_fib(Runtime& rt, long n) {
  std::function<long(long)> fib = [&](long x) -> long {
    if (x < 2) return x;
    auto a = spawn(rt, fib, x - 1);
    auto b = spawn(rt, fib, x - 2);
    return a.join() + b.join();
  };
  return fib(n);
}

TEST(ProfileMode, TraceCarriesVpIdentityAndStampedEdges) {
  Options o;
  o.num_vps = 2;
  o.profile = true;  // implies trace
  Runtime rt(o);
  EXPECT_EQ(run_profiled_fib(rt, 8), 21);

  const TraceGraph& trace = rt.trace();  // trace() flushes the profiler
  std::size_t tracked = 0;
  for (const TraceNode& n : trace.nodes()) {
    if (n.is_continuation || n.start_ns < 0) continue;
    if (n.vp != TraceNode::kUnknownVp) ++tracked;
  }
  EXPECT_GT(tracked, 0u);

  std::size_t stamped = 0;
  for (const TraceEdge& e : trace.edges())
    if (e.ts_ns >= 0 && e.vp != TraceNode::kUnknownVp) ++stamped;
  EXPECT_GT(stamped, 0u);

  // The stamped trace round-trips through the v3 text format.
  std::stringstream io;
  trace.save(io);
  TraceGraph reloaded;
  std::string err;
  ASSERT_TRUE(reloaded.load(io, &err)) << err;
  EXPECT_EQ(reloaded.nodes().size(), trace.nodes().size());
  EXPECT_EQ(reloaded.edges().size(), trace.edges().size());
}

TEST(ProfileMode, ChromeTraceJsonHasTracksSpansAndFlows) {
  Options o;
  o.num_vps = 2;
  o.profile = true;
  Runtime rt(o);
  EXPECT_EQ(run_profiled_fib(rt, 9), 34);

  const std::string json = observe::chrome_trace_json(rt.trace());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Named tracks exist. Which tids carried spans is scheduling-dependent
  // (on a loaded 1-core host every span can land on one executor), so
  // assert the metadata shape, not a specific VP number.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_sort_index\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);  // flow start
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);  // flow finish
  // Balanced braces/brackets — cheap structural validity check (check.sh
  // runs the real `python3 -m json.tool` validation on the demo's trace).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ProfileMode, FibParallelismGrowsWithInputSize) {
  // Work grows ~phi^n while span grows ~n, so T1/Tinf climbs with the
  // input. Measured intervals nest — a parent's span covers any child it
  // join-inlined — so the observed ratio saturates well below the DAG
  // bound; what stays robust is the growth from a near-serial small input
  // to a saturated large one. Best-of-3 per size irons out OS noise.
  const auto parallelism_of = [](long n) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      Options o;
      o.num_vps = 2;
      o.profile = true;
      Runtime rt(o);
      run_profiled_fib(rt, n);
      const auto profiles = job_profiles(rt.trace());
      double work = 0, span = 0;
      for (const auto& p : profiles) {
        work += static_cast<double>(p.work_ns);
        span = std::max(span, static_cast<double>(p.span_ns));
      }
      if (span > 0) best = std::max(best, work / span);
    }
    return best;
  };
  const double small = parallelism_of(5);
  const double large = parallelism_of(16);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small * 1.1);
}

}  // namespace
