// Integration tests of the runtime: fork/join semantics across VP counts
// and policies, list bookkeeping, error paths, and statistics.
#include "anahy/anahy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

using namespace anahy;

struct RuntimeCase {
  int num_vps;
  PolicyKind policy;
};

class RuntimeTest : public ::testing::TestWithParam<RuntimeCase> {
 protected:
  Options make_options() const {
    Options o;
    o.num_vps = GetParam().num_vps;
    o.policy = GetParam().policy;
    return o;
  }
};

TEST_P(RuntimeTest, SpawnJoinReturnsValue) {
  Runtime rt(make_options());
  auto h = spawn(rt, [] { return 21 * 2; });
  EXPECT_EQ(h.join(), 42);
}

TEST_P(RuntimeTest, ManyIndependentTasks) {
  Runtime rt(make_options());
  constexpr int kN = 200;
  std::vector<Handle<int>> handles;
  handles.reserve(kN);
  for (int i = 0; i < kN; ++i)
    handles.push_back(spawn(rt, [i] { return i * i; }));
  long long sum = 0;
  for (auto& h : handles) sum += h.join();
  long long expect = 0;
  for (int i = 0; i < kN; ++i) expect += 1LL * i * i;
  EXPECT_EQ(sum, expect);
}

TEST_P(RuntimeTest, NestedForkJoinComputesFibonacci) {
  Runtime rt(make_options());
  // Recursive fork/join: every invocation forks one child, the paper's
  // high-sync workload in miniature.
  std::function<int(int)> fib = [&](int n) -> int {
    if (n < 2) return n;
    auto h = spawn(rt, fib, n - 1);
    const int b = fib(n - 2);
    return h.join() + b;
  };
  EXPECT_EQ(fib(15), 610);
}

TEST_P(RuntimeTest, SequentialEquivalence) {
  // The paper's determinism claim: the concurrent result equals the
  // sequential result of the same code.
  Runtime rt(make_options());
  std::vector<int> data(64);
  std::iota(data.begin(), data.end(), 1);

  std::vector<Handle<long long>> handles;
  for (int start = 0; start < 64; start += 8) {
    handles.push_back(spawn(rt, [&data, start] {
      long long s = 0;
      for (int i = start; i < start + 8; ++i) s += data[i] * data[i];
      return s;
    }));
  }
  long long parallel = 0;
  for (auto& h : handles) parallel += h.join();

  long long sequential = 0;
  for (int v : data) sequential += 1LL * v * v;
  EXPECT_EQ(parallel, sequential);
}

TEST_P(RuntimeTest, StatsCountTasksAndJoins) {
  Runtime rt(make_options());
  for (int i = 0; i < 10; ++i) spawn(rt, [] { return 0; }).join();
  const auto s = rt.stats();
  EXPECT_EQ(s.tasks_created, 10u);
  EXPECT_EQ(s.tasks_executed, 10u);
  EXPECT_EQ(s.joins_total, 10u);
  EXPECT_EQ(s.joins_immediate + s.joins_inlined + s.joins_helped +
                s.joins_slept + s.continuations,
            s.continuations + s.joins_total - s.joins_immediate +
                s.joins_immediate);  // identity: counters are consistent
}

INSTANTIATE_TEST_SUITE_P(
    VpAndPolicySweep, RuntimeTest,
    ::testing::Values(RuntimeCase{1, PolicyKind::kFifo},
                      RuntimeCase{1, PolicyKind::kLifo},
                      RuntimeCase{1, PolicyKind::kWorkStealing},
                      RuntimeCase{2, PolicyKind::kFifo},
                      RuntimeCase{2, PolicyKind::kWorkStealing},
                      RuntimeCase{4, PolicyKind::kFifo},
                      RuntimeCase{4, PolicyKind::kLifo},
                      RuntimeCase{4, PolicyKind::kWorkStealing},
                      RuntimeCase{8, PolicyKind::kWorkStealing}),
    [](const auto& info) {
      return std::to_string(info.param.num_vps) + "vp_" +
             std::string(to_string(info.param.policy));
    });

TEST(Runtime, OneVpCreatesNoSystemThread) {
  // Table 3/7 behaviour: Anahy with 1 VP runs everything on the caller.
  Runtime rt(Options{.num_vps = 1});
  EXPECT_EQ(rt.worker_threads(), 0);
  auto h = spawn(rt, [] { return 7; });
  EXPECT_EQ(h.join(), 7);
  EXPECT_EQ(rt.stats().tasks_run_by_main, 1u);
}

TEST(Runtime, MainNotParticipatingSpawnsAllWorkers) {
  Options o;
  o.num_vps = 3;
  o.main_participates = false;
  Runtime rt(o);
  EXPECT_EQ(rt.worker_threads(), 3);
  auto h = spawn(rt, [] { return 1; });
  EXPECT_EQ(h.join(), 1);
  EXPECT_EQ(rt.stats().tasks_run_by_main, 0u);
}

TEST(Runtime, RejectsZeroVps) {
  EXPECT_THROW(Runtime rt(Options{.num_vps = 0}), std::invalid_argument);
}

TEST(Runtime, RawForkJoinMovesPointers) {
  Runtime rt(Options{.num_vps = 2});
  int in = 5;
  TaskPtr t = rt.fork(
      [](void* p) -> void* {
        auto* v = static_cast<int*>(p);
        *v *= 3;
        return v;
      },
      &in);
  void* out = nullptr;
  EXPECT_EQ(rt.join(t, &out), kOk);
  EXPECT_EQ(out, &in);
  EXPECT_EQ(in, 15);
}

TEST(Runtime, DoubleJoinExhaustsBudget) {
  Runtime rt(Options{.num_vps = 1});
  TaskPtr t = rt.fork([](void*) -> void* { return nullptr; }, nullptr);
  EXPECT_EQ(rt.join(t, nullptr), kOk);
  EXPECT_EQ(rt.join(t, nullptr), kNotFound);  // budget of 1 already used
}

TEST(Runtime, MultiJoinBudgetAllowsNJoins) {
  Runtime rt(Options{.num_vps = 2});
  TaskAttributes attr;
  attr.set_join_number(3);
  int value = 9;
  TaskPtr t = rt.fork([](void* p) -> void* { return p; }, &value, attr);
  for (int i = 0; i < 3; ++i) {
    void* out = nullptr;
    EXPECT_EQ(rt.join(t, &out), kOk) << "join #" << i;
    EXPECT_EQ(out, &value);
  }
  EXPECT_EQ(rt.join(t, nullptr), kNotFound);
}

TEST(Runtime, DetachedTaskRunsButCannotBeJoined) {
  Runtime rt(Options{.num_vps = 2});
  std::atomic<bool> ran{false};
  TaskAttributes attr;
  attr.set_join_number(0);
  TaskPtr t = rt.fork(
      [&ran](void*) -> void* {
        ran = true;
        return nullptr;
      },
      nullptr, attr);
  EXPECT_EQ(rt.join(t, nullptr), kNotFound);
  // Ensure it runs before the runtime shuts down: spin on a real join task.
  spawn(rt, [] { return 0; }).join();
  while (!ran) {
  }
  EXPECT_TRUE(ran);
}

TEST(Runtime, SelfJoinReturnsDeadlock) {
  Runtime rt(Options{.num_vps = 1});
  TaskPtr captured;
  int rc = -1;
  TaskPtr t = rt.fork(
      [&](void*) -> void* {
        rc = rt.join(captured, nullptr);  // join on the running task itself
        return nullptr;
      },
      nullptr);
  captured = t;
  EXPECT_EQ(rt.join(t, nullptr), kOk);
  EXPECT_EQ(rc, kDeadlock);
}

TEST(Runtime, JoinNullTaskReturnsNotFound) {
  Runtime rt(Options{.num_vps = 1});
  EXPECT_EQ(rt.join(nullptr, nullptr), kNotFound);
}

TEST(Runtime, ListsDrainToEmpty) {
  Runtime rt(Options{.num_vps = 2});
  std::vector<Handle<int>> handles;
  for (int i = 0; i < 50; ++i) handles.push_back(spawn(rt, [i] { return i; }));
  for (auto& h : handles) h.join();
  const auto lists = rt.lists();
  EXPECT_EQ(lists.ready, 0u);
  EXPECT_EQ(lists.finished, 0u);
  EXPECT_EQ(lists.blocked, 0u);
  EXPECT_EQ(lists.unblocked, 0u);
}

TEST(Runtime, FinishedListHoldsUnjoinedResults) {
  Runtime rt(Options{.num_vps = 1});
  // With 1 VP and main participating, nothing runs until we join; join the
  // first task and the second gets run (inlined) too only when joined.
  TaskPtr a = rt.fork([](void*) -> void* { return nullptr; }, nullptr);
  TaskPtr b = rt.fork([](void*) -> void* { return nullptr; }, nullptr);
  EXPECT_EQ(rt.join(a, nullptr), kOk);
  const auto lists = rt.lists();
  // b is either still ready (never run) or finished-but-unjoined, never lost.
  EXPECT_EQ(lists.ready + lists.finished, 1u);
  EXPECT_EQ(rt.join(b, nullptr), kOk);
  EXPECT_EQ(rt.lists().ready + rt.lists().finished, 0u);
}

TEST(Runtime, WorkStealingStatsAreExposed) {
  Options o;
  o.num_vps = 4;
  o.policy = PolicyKind::kWorkStealing;
  Runtime rt(o);
  std::vector<Handle<int>> handles;
  for (int i = 0; i < 100; ++i) handles.push_back(spawn(rt, [] { return 1; }));
  for (auto& h : handles) h.join();
  const auto s = rt.stats();
  // All pushes came from the external deque; any worker execution required
  // a steal, so with 3 workers there must have been some.
  EXPECT_GE(s.steal_attempts, s.steals);
}

TEST(Runtime, EnvOptionsParse) {
  ::setenv("ANAHY_NUM_VPS", "7", 1);
  ::setenv("ANAHY_POLICY", "lifo", 1);
  ::setenv("ANAHY_TRACE", "1", 1);
  ::setenv("ANAHY_DRAIN_ON_EXIT", "1", 1);
  const Options o = Options::from_env();
  EXPECT_EQ(o.num_vps, 7);
  EXPECT_EQ(o.policy, PolicyKind::kLifo);
  EXPECT_TRUE(o.trace);
  EXPECT_TRUE(o.drain_on_exit);
  ::unsetenv("ANAHY_NUM_VPS");
  ::unsetenv("ANAHY_POLICY");
  ::unsetenv("ANAHY_TRACE");
  ::unsetenv("ANAHY_DRAIN_ON_EXIT");
}

// Regression: destroying a Runtime with tasks still queued used to drop
// them silently — the VPs were stopped before ever popping the work. With
// drain_on_exit every forked task must execute before the VPs stop.
TEST(Runtime, DrainOnExitRunsQueuedTasksAtDestruction) {
  std::atomic<int> executed{0};
  constexpr int kN = 512;
  {
    Options o;
    o.num_vps = 2;
    o.drain_on_exit = true;
    Runtime rt(o);
    TaskAttributes detached;
    detached.set_join_number(0);
    for (int i = 0; i < kN; ++i)
      rt.fork(
          [](void* in) -> void* {
            static_cast<std::atomic<int>*>(in)->fetch_add(1);
            return nullptr;
          },
          &executed, detached);
    // No joins: destruction must finish the backlog, not discard it.
  }
  EXPECT_EQ(executed.load(), kN);
}

TEST(Runtime, WithoutDrainOnExitQueuedTasksMayBeDropped) {
  // Documents the historical default: forked-but-unjoined tasks are not
  // guaranteed to run when the runtime dies. (They *may* run; what the
  // default must NOT do is hang the destructor waiting for them.)
  std::atomic<int> executed{0};
  {
    Options o;
    o.num_vps = 2;
    Runtime rt(o);
    TaskAttributes detached;
    detached.set_join_number(0);
    for (int i = 0; i < 64; ++i)
      rt.fork(
          [](void* in) -> void* {
            static_cast<std::atomic<int>*>(in)->fetch_add(1);
            return nullptr;
          },
          &executed, detached);
  }
  EXPECT_LE(executed.load(), 64);
}

TEST(Runtime, DrainOnExitDrainsTasksForkedWhileDraining) {
  // A draining task that forks more work: the fixpoint must cover the
  // newly forked tasks too.
  std::atomic<int> executed{0};
  {
    struct Ctx {
      Runtime* rt = nullptr;
      std::atomic<int>* executed = nullptr;
      TaskAttributes detached;
    } ctx;  // declared before rt: outlives the draining destructor
    Options o;
    o.num_vps = 2;
    o.drain_on_exit = true;
    Runtime rt(o);
    TaskAttributes detached;
    detached.set_join_number(0);
    ctx = {&rt, &executed, detached};
    for (int i = 0; i < 16; ++i)
      rt.fork(
          [](void* in) -> void* {
            auto* c = static_cast<Ctx*>(in);
            c->executed->fetch_add(1);
            c->rt->fork(
                [](void* in2) -> void* {
                  static_cast<std::atomic<int>*>(in2)->fetch_add(1);
                  return nullptr;
                },
                c->executed, c->detached);
            return nullptr;
          },
          &ctx, detached);
  }
  EXPECT_EQ(executed.load(), 32);
}

}  // namespace
