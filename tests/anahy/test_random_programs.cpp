// Property tests over randomized fork/join programs: for any random task
// tree, any policy and any VP count, the parallel result must equal the
// sequential evaluation (the paper's determinism guarantee), no task may
// be lost, and the runtime must drain cleanly.
#include "anahy/anahy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

namespace {

using namespace anahy;

/// Random program specification: a tree where each node owns a value,
/// forks its children, does some "work" between forks and joins, and
/// joins every child a specified number of times (1 or 2).
struct Spec {
  long value = 0;
  std::vector<Spec> children;
  std::vector<int> join_counts;   // per child: 1 or 2
  std::vector<int> join_order;    // permutation of child indices
};

Spec gen(std::mt19937& rng, int depth) {
  Spec s;
  s.value = static_cast<long>(rng() % 1000);
  if (depth <= 0) return s;
  const int nchildren = static_cast<int>(rng() % 4);  // 0..3
  for (int i = 0; i < nchildren; ++i) {
    s.children.push_back(gen(rng, depth - 1 - static_cast<int>(rng() % 2)));
    s.join_counts.push_back(1 + static_cast<int>(rng() % 2));
  }
  s.join_order.resize(s.children.size());
  std::iota(s.join_order.begin(), s.join_order.end(), 0);
  std::shuffle(s.join_order.begin(), s.join_order.end(), rng);
  return s;
}

/// Reference semantics: value + sum over children of count * eval(child).
long eval_seq(const Spec& s) {
  long total = s.value;
  for (std::size_t i = 0; i < s.children.size(); ++i)
    total += s.join_counts[i] * eval_seq(s.children[i]);
  return total;
}

long eval_anahy(Runtime& rt, const Spec& s) {
  struct Forked {
    TaskPtr task;
    std::shared_ptr<long> slot;
  };
  std::vector<Forked> forked;
  forked.reserve(s.children.size());
  for (std::size_t i = 0; i < s.children.size(); ++i) {
    auto slot = std::make_shared<long>(0);
    TaskAttributes attr;
    attr.set_join_number(s.join_counts[i]);
    const Spec* child = &s.children[i];
    TaskPtr task = rt.fork(
        [&rt, child, slot](void*) -> void* {
          *slot = eval_anahy(rt, *child);
          return nullptr;
        },
        nullptr, attr);
    forked.push_back({std::move(task), std::move(slot)});
  }
  long total = s.value;
  // Join children in the shuffled order, each as many times as budgeted.
  for (const int idx : s.join_order) {
    for (int k = 0; k < s.join_counts[static_cast<std::size_t>(idx)]; ++k) {
      // No gtest assertion here: this runs on worker threads too. A failed
      // join skips the accumulation, which the main-thread sum check
      // catches deterministically.
      const int rc =
          rt.join(forked[static_cast<std::size_t>(idx)].task, nullptr);
      if (rc == kOk) total += *forked[static_cast<std::size_t>(idx)].slot;
    }
  }
  return total;
}

std::size_t count_tasks(const Spec& s) {
  std::size_t n = s.children.size();
  for (const auto& c : s.children) n += count_tasks(c);
  return n;
}

struct RandomCase {
  unsigned seed;
  int depth;
  int vps;
  PolicyKind policy;
};

class RandomProgram : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomProgram, ParallelEqualsSequential) {
  const auto& p = GetParam();
  std::mt19937 rng(p.seed);
  const Spec spec = gen(rng, p.depth);

  Options o;
  o.num_vps = p.vps;
  o.policy = p.policy;
  Runtime rt(o);
  EXPECT_EQ(eval_anahy(rt, spec), eval_seq(spec));

  // No task lost, all lists drained.
  EXPECT_EQ(rt.stats().tasks_created, count_tasks(spec));
  EXPECT_EQ(rt.stats().tasks_executed, count_tasks(spec));
  const auto lists = rt.lists();
  EXPECT_EQ(lists.ready + lists.finished + lists.blocked + lists.unblocked,
            0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomProgram,
    ::testing::Values(
        RandomCase{1, 3, 1, PolicyKind::kFifo},
        RandomCase{2, 3, 2, PolicyKind::kLifo},
        RandomCase{3, 4, 2, PolicyKind::kWorkStealing},
        RandomCase{4, 4, 4, PolicyKind::kFifo},
        RandomCase{5, 4, 4, PolicyKind::kWorkStealing},
        RandomCase{6, 5, 3, PolicyKind::kLifo},
        RandomCase{7, 5, 8, PolicyKind::kWorkStealing},
        RandomCase{8, 6, 4, PolicyKind::kWorkStealing},
        RandomCase{9, 6, 2, PolicyKind::kFifo},
        RandomCase{10, 5, 5, PolicyKind::kLifo},
        RandomCase{11, 4, 1, PolicyKind::kWorkStealing},
        RandomCase{12, 6, 6, PolicyKind::kWorkStealing}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_d" +
             std::to_string(info.param.depth) + "_" +
             std::to_string(info.param.vps) + "vp_" +
             std::string(to_string(info.param.policy));
    });

TEST(RandomProgramTrace, GraphInvariantsHoldOnRandomPrograms) {
  for (unsigned seed = 100; seed < 105; ++seed) {
    std::mt19937 rng(seed);
    const Spec spec = gen(rng, 4);
    Options o;
    o.num_vps = 2;
    o.trace = true;
    Runtime rt(o);
    EXPECT_EQ(eval_anahy(rt, spec), eval_seq(spec)) << "seed " << seed;

    // Invariants: every fork edge connects existing nodes with child level
    // = parent level + 1 (for non-continuations); every non-root task has
    // a parent; work >= span >= 0.
    const auto nodes = rt.trace().nodes();
    const auto find = [&](TaskId id) {
      return std::find_if(nodes.begin(), nodes.end(),
                          [&](const auto& n) { return n.id == id; });
    };
    for (const auto& e : rt.trace().edges()) {
      ASSERT_NE(find(e.from), nodes.end());
      ASSERT_NE(find(e.to), nodes.end());
      if (e.kind == TraceEdgeKind::kFork) {
        const auto& child = *find(e.to);
        if (!child.is_continuation) {
          EXPECT_EQ(child.level, find(e.from)->level + 1);
        }
      }
    }
    EXPECT_GE(rt.trace().work_ns(), rt.trace().span_ns());
  }
}

}  // namespace
