// Tests of the determinacy-race detector (anahy::check, docs/CHECKING.md).
//
// The load-bearing property: in serial-elision mode (1 VP) ONE execution
// certifies every schedule - a seeded race is reported with both task ids
// even though the serial run never actually interleaves the accesses, and
// the same program with the race removed (a join ordering the accesses)
// runs clean.
#include "anahy/anahy.hpp"
#include "anahy/check/detector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace {

using namespace anahy;

Options serial_checked() {
  Options o;
  o.num_vps = 1;  // serial elision: canonical mode
  o.check = true;
  return o;
}

long g_shared = 0;

void* racy_increment(void* arg) {
  check::read(&g_shared, sizeof g_shared);
  const long cur = g_shared;
  check::write(&g_shared, sizeof g_shared);
  g_shared = cur + reinterpret_cast<long>(arg);
  return nullptr;
}

bool reports_mention(const std::vector<check::RaceReport>& reports,
                     TaskId a, TaskId b) {
  return std::any_of(reports.begin(), reports.end(), [&](const auto& r) {
    return (r.first_task == a && r.second_task == b) ||
           (r.first_task == b && r.second_task == a);
  });
}

TEST(CheckRaces, SeededRaceIsReportedWithBothTaskIds) {
  Runtime rt(serial_checked());
  g_shared = 0;

  // Two tasks write g_shared; the graph orders neither before the other.
  TaskPtr a = rt.fork(racy_increment, reinterpret_cast<void*>(1L));
  TaskPtr b = rt.fork(racy_increment, reinterpret_cast<void*>(2L));
  rt.join(a, nullptr);
  rt.join(b, nullptr);

  const auto reports = check::reports();
  ASSERT_FALSE(reports.empty()) << "the seeded race must be caught";
  EXPECT_TRUE(reports_mention(reports, a->id(), b->id()));
  // The report names both tasks, the address, and the fork paths.
  const auto& r = reports.front();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&g_shared) & ~std::uintptr_t{7},
            r.addr);
  const std::string text = r.to_string();
  EXPECT_NE(text.find("ANAHY-R001"), std::string::npos);
  EXPECT_NE(text.find("T" + std::to_string(a->id())), std::string::npos);
  EXPECT_NE(text.find("T" + std::to_string(b->id())), std::string::npos);
  EXPECT_NE(text.find("T0"), std::string::npos) << "fork path starts at T0";
}

TEST(CheckRaces, JoinOrderingRemovesTheRace) {
  Runtime rt(serial_checked());
  g_shared = 0;

  // Same program with the race removed: the first task is joined BEFORE
  // the second is forked, so the join edge orders the accesses.
  TaskPtr a = rt.fork(racy_increment, reinterpret_cast<void*>(1L));
  rt.join(a, nullptr);
  TaskPtr b = rt.fork(racy_increment, reinterpret_cast<void*>(2L));
  rt.join(b, nullptr);

  EXPECT_TRUE(check::reports().empty())
      << check::reports().front().to_string();
  EXPECT_EQ(g_shared, 3);
}

TEST(CheckRaces, ParentChildWithoutJoinRaces) {
  Runtime rt(serial_checked());
  g_shared = 0;

  TaskPtr a = rt.fork(racy_increment, reinterpret_cast<void*>(5L));
  // The parent touches the shared variable after the fork but before the
  // join: unordered with the child's accesses.
  check::write(&g_shared, sizeof g_shared);
  g_shared = 10;
  rt.join(a, nullptr);

  const auto reports = check::reports();
  ASSERT_FALSE(reports.empty());
  EXPECT_TRUE(reports_mention(reports, kRootTaskId, a->id()));
}

TEST(CheckRaces, ParentAccessAfterJoinIsOrdered) {
  Runtime rt(serial_checked());
  g_shared = 0;

  TaskPtr a = rt.fork(racy_increment, reinterpret_cast<void*>(5L));
  rt.join(a, nullptr);
  // After the join the parent is ordered after the child's accesses.
  check::write(&g_shared, sizeof g_shared);
  g_shared = 10;

  EXPECT_TRUE(check::reports().empty());
}

TEST(CheckRaces, ConcurrentReadsDoNotRace) {
  Runtime rt(serial_checked());
  g_shared = 42;

  auto reader = [](void*) -> void* {
    check::read(&g_shared, sizeof g_shared);
    return reinterpret_cast<void*>(g_shared);
  };
  TaskPtr a = rt.fork(reader, nullptr);
  TaskPtr b = rt.fork(reader, nullptr);
  rt.join(a, nullptr);
  rt.join(b, nullptr);

  EXPECT_TRUE(check::reports().empty());
}

TEST(CheckRaces, SiblingJoinOrdersGrandchildren) {
  // a forks a1 and joins it; main joins a, then forks b which touches the
  // same location as a1: ordered through the two joins, no race.
  Runtime rt(serial_checked());
  g_shared = 0;

  TaskPtr a = rt.fork(
      [&rt](void*) -> void* {
        TaskPtr a1 = rt.fork(racy_increment, reinterpret_cast<void*>(1L));
        rt.join(a1, nullptr);
        return nullptr;
      },
      nullptr);
  rt.join(a, nullptr);
  TaskPtr b = rt.fork(racy_increment, reinterpret_cast<void*>(2L));
  rt.join(b, nullptr);

  EXPECT_TRUE(check::reports().empty());
  EXPECT_EQ(g_shared, 3);
}

TEST(CheckRaces, DatalenAutoInstrumentationCatchesSharedBuffer) {
  // Two tasks created with datalen pointing at the SAME buffer: the
  // auto-instrumented result write at finish collides.
  Runtime rt(serial_checked());
  static long buffer = 0;

  auto writer = [](void* in) -> void* {
    auto* p = static_cast<long*>(in);
    *p += 1;
    return p;  // result == the shared buffer
  };
  TaskAttributes attr;
  attr.set_data_len(sizeof buffer);
  TaskPtr a = rt.fork(writer, &buffer, attr);
  TaskPtr b = rt.fork(writer, &buffer, attr);
  rt.join(a, nullptr);
  rt.join(b, nullptr);

  const auto reports = check::reports();
  ASSERT_FALSE(reports.empty());
  EXPECT_TRUE(reports_mention(reports, a->id(), b->id()));
}

TEST(CheckRaces, UncheckedAttrOptsOutOfAutoInstrumentation) {
  Runtime rt(serial_checked());
  static long buffer = 0;

  auto writer = [](void* in) -> void* { return in; };
  TaskAttributes attr;
  attr.set_data_len(sizeof buffer);
  attr.set_checked(false);
  TaskPtr a = rt.fork(writer, &buffer, attr);
  TaskPtr b = rt.fork(writer, &buffer, attr);
  rt.join(a, nullptr);
  rt.join(b, nullptr);

  EXPECT_TRUE(check::reports().empty());
}

TEST(CheckRaces, DetectorOffByDefaultAndZeroReports) {
  Runtime rt(Options{.num_vps = 1});
  EXPECT_FALSE(check::enabled());
  EXPECT_EQ(rt.scheduler().detector(), nullptr);
  // Entry points are inert no-ops when off.
  check::write(&g_shared, sizeof g_shared);
  g_shared = 7;
  EXPECT_TRUE(check::reports().empty());
}

TEST(CheckRaces, SerialModeFlagTracksVpCount) {
  {
    Runtime rt(serial_checked());
    ASSERT_NE(rt.scheduler().detector(), nullptr);
    EXPECT_TRUE(rt.scheduler().detector()->serial_mode());
  }
  {
    Options o = serial_checked();
    o.num_vps = 4;
    Runtime rt(o);
    ASSERT_NE(rt.scheduler().detector(), nullptr);
    EXPECT_FALSE(rt.scheduler().detector()->serial_mode());
  }
}

TEST(CheckRaces, ConcurrentBestEffortModeStaysSafe) {
  // 4 VPs: detection is best-effort but must be memory-safe and must not
  // produce false positives for a well-synchronized program.
  Options o;
  o.num_vps = 4;
  o.check = true;
  Runtime rt(o);

  static long cells[16] = {};
  std::vector<TaskPtr> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back(rt.fork(
        [i](void*) -> void* {
          check::write(&cells[i], sizeof(long));
          cells[i] = i;
          return nullptr;
        },
        nullptr));
  }
  for (auto& t : tasks) rt.join(t, nullptr);
  EXPECT_TRUE(check::reports().empty());
}

TEST(CheckRaces, ReportsClearedBetweenRuns) {
  Runtime rt(serial_checked());
  g_shared = 0;
  TaskPtr a = rt.fork(racy_increment, reinterpret_cast<void*>(1L));
  TaskPtr b = rt.fork(racy_increment, reinterpret_cast<void*>(2L));
  rt.join(a, nullptr);
  rt.join(b, nullptr);
  ASSERT_FALSE(check::reports().empty());
  check::clear_reports();
  EXPECT_TRUE(check::reports().empty());
}

}  // namespace
