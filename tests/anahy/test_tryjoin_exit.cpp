// Tests for the non-blocking join and for athread_exit / exception
// semantics through nested (inlined) task frames.
#include "anahy/anahy.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace {

using namespace anahy;

TEST(TryJoin, BusyWhileUnstartedThenOkAfterJoin) {
  Runtime rt(Options{.num_vps = 1});  // nothing runs until we make it run
  TaskPtr t = rt.fork([](void*) -> void* { return nullptr; }, nullptr);
  EXPECT_EQ(rt.try_join(t, nullptr), kBusy);  // still in the ready list
  EXPECT_EQ(rt.join(t, nullptr), kOk);        // blocking join inlines it
  EXPECT_EQ(rt.try_join(t, nullptr), kNotFound);  // budget consumed
}

TEST(TryJoin, SucceedsOnceFinished) {
  Runtime rt(Options{.num_vps = 2});
  int payload = 7;
  TaskPtr t = rt.fork([](void* p) -> void* { return p; }, &payload);
  // Wait until a worker finishes it, then try_join must succeed.
  while (rt.lists().finished == 0) {
  }
  void* out = nullptr;
  EXPECT_EQ(rt.try_join(t, &out), kOk);
  EXPECT_EQ(out, &payload);
}

TEST(TryJoin, NullAndSelfChecks) {
  Runtime rt(Options{.num_vps = 1});
  EXPECT_EQ(rt.try_join(nullptr, nullptr), kNotFound);
  TaskPtr captured;
  int rc = -1;
  TaskPtr t = rt.fork(
      [&](void*) -> void* {
        rc = rt.try_join(captured, nullptr);
        return nullptr;
      },
      nullptr);
  captured = t;
  EXPECT_EQ(rt.join(t, nullptr), kOk);
  EXPECT_EQ(rc, kDeadlock);
}

TEST(TryJoin, AthreadApiVariant) {
  ASSERT_EQ(athread_init(1), kOk);
  athread_t th;
  ASSERT_EQ(athread_create(
                &th, nullptr, [](void* p) -> void* { return p; }, nullptr),
            kOk);
  EXPECT_EQ(athread_tryjoin(th, nullptr), kBusy);
  EXPECT_EQ(athread_join(th, nullptr), kOk);
  EXPECT_EQ(athread_tryjoin(th, nullptr), kNotFound);
  athread_terminate();
}

TEST(TryJoin, WithoutRuntimeIsRejected) {
  athread_t th{1};
  EXPECT_EQ(athread_tryjoin(th, nullptr), kPerm);
}

TEST(AthreadExit, UnwindsOnlyTheInnermostInlinedTask) {
  // Task A joins (and therefore inlines, on 1 VP) task B; B exits early.
  // B's TaskExit must not unwind A.
  ASSERT_EQ(athread_init(1), kOk);
  static std::atomic<bool> a_continued{false};
  struct Bodies {
    static void* inner(void*) {
      athread_exit(reinterpret_cast<void*>(0x22L));
      return nullptr;  // unreachable
    }
    static void* outer(void*) {
      athread_t inner_th;
      athread_create(&inner_th, nullptr, &Bodies::inner, nullptr);
      void* inner_out = nullptr;
      athread_join(inner_th, &inner_out);  // inlines inner on this VP
      a_continued = true;                  // A resumes after B's exit
      return inner_out;
    }
  };
  athread_t a;
  ASSERT_EQ(athread_create(&a, nullptr, &Bodies::outer, nullptr), kOk);
  void* out = nullptr;
  ASSERT_EQ(athread_join(a, &out), kOk);
  EXPECT_TRUE(a_continued.load());
  EXPECT_EQ(reinterpret_cast<long>(out), 0x22L);
  athread_terminate();
}

TEST(Exceptions, PropagateToTheInliningJoiner) {
  // With one VP and main participating, the task body runs inside the
  // caller's join; an ordinary C++ exception therefore surfaces there
  // (task bodies should not throw - POSIX semantics - but when they do,
  // the error is not silently swallowed).
  Runtime rt(Options{.num_vps = 1});
  TaskPtr t = rt.fork(
      [](void*) -> void* { throw std::logic_error("task body bug"); },
      nullptr);
  EXPECT_THROW((void)rt.join(t, nullptr), std::logic_error);
}

}  // namespace
