// Tests of the trace-analysis toolkit: intervals, parallelism profile,
// critical path and Gantt export.
#include "anahy/anahy.hpp"
#include "anahy/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace anahy;

Options traced(int vps) {
  Options o;
  o.num_vps = vps;
  o.trace = true;
  return o;
}

int spin_value() {
  volatile long x = 0;
  for (int k = 0; k < 100000; ++k) x = x + k;
  return static_cast<int>(x != 0);
}

TEST(TraceAnalysis, IntervalsCoverExecutedTasks) {
  Runtime rt(traced(2));
  std::vector<Handle<int>> handles;
  for (int i = 0; i < 6; ++i) handles.push_back(spawn(rt, spin_value));
  for (auto& h : handles) h.join();

  const auto intervals = exec_intervals(rt.trace());
  EXPECT_EQ(intervals.size(), 6u);  // root/continuations carry no interval
  for (const auto& iv : intervals) {
    EXPECT_GE(iv.start_ns, 0);
    EXPECT_GT(iv.end_ns, iv.start_ns);
  }
  // Sorted by start.
  EXPECT_TRUE(std::is_sorted(
      intervals.begin(), intervals.end(),
      [](const auto& a, const auto& b) { return a.start_ns < b.start_ns; }));
}

TEST(TraceAnalysis, ProfileCountsConcurrency) {
  // Hand-built intervals: two overlapping, one detached later.
  std::vector<ExecInterval> ivs = {
      {1, 0, 100, 1, ""}, {2, 50, 150, 1, ""}, {3, 300, 400, 1, ""}};
  const auto profile = parallelism_profile(ivs, 50);
  // Buckets: [0,50) [50,100) [100,150) [150,200) [200,250) [250,300) [300,350) [350,400)
  ASSERT_EQ(profile.size(), 8u);
  EXPECT_EQ(profile[0], 1u);  // task 1
  EXPECT_EQ(profile[1], 2u);  // 1 and 2 overlap
  EXPECT_EQ(profile[2], 1u);  // task 2
  EXPECT_EQ(profile[3], 0u);
  EXPECT_EQ(profile[6], 1u);  // task 3
  EXPECT_EQ(profile[7], 1u);
}

TEST(TraceAnalysis, ProfileHandlesDegenerateInput) {
  EXPECT_TRUE(parallelism_profile({}, 100).empty());
  const std::vector<ExecInterval> one = {{1, 10, 10, 0, ""}};  // zero length
  EXPECT_TRUE(parallelism_profile(one, 0).empty());
}

TEST(TraceAnalysis, MaxConcurrencyExactSweep) {
  const std::vector<ExecInterval> ivs = {{1, 0, 10, 0, ""},
                                         {2, 5, 15, 0, ""},
                                         {3, 7, 9, 0, ""},
                                         {4, 20, 30, 0, ""}};
  EXPECT_EQ(max_concurrency(ivs), 3u);
  EXPECT_EQ(max_concurrency({}), 0u);
}

TEST(TraceAnalysis, SingleVpRunsAreSequential) {
  Runtime rt(traced(1));
  std::vector<Handle<int>> handles;
  for (int i = 0; i < 5; ++i) handles.push_back(spawn(rt, spin_value));
  for (auto& h : handles) h.join();
  // One VP: no two tasks may overlap.
  EXPECT_EQ(max_concurrency(exec_intervals(rt.trace())), 1u);
}

TEST(TraceAnalysis, AverageParallelismOfFlatFarm) {
  // 1 VP: tasks run back-to-back, so each measured duration is clean CPU
  // time (no timeslicing inflation on a 1-core host). work/span is a graph
  // property: 12 equal independent tasks support ~12-way parallelism even
  // though this run executed them sequentially. An OS preemption during
  // one task stretches its wall duration and with it the measured span,
  // so a corrupted measurement is retried — the property still has to
  // show up in an unpreempted run.
  double best = 0.0;
  for (int attempt = 0; attempt < 5 && best <= 2.0; ++attempt) {
    Runtime rt(traced(1));
    std::vector<Handle<int>> handles;
    for (int i = 0; i < 12; ++i) handles.push_back(spawn(rt, spin_value));
    for (auto& h : handles) h.join();
    best = std::max(best, average_parallelism(rt.trace()));
  }
  EXPECT_GT(best, 2.0);
}

TEST(TraceAnalysis, CriticalPathOfAChain) {
  Runtime rt(traced(1));
  std::function<int(int)> chain = [&](int depth) -> int {
    if (depth == 0) return spin_value();
    auto h = spawn(rt, chain, depth - 1);
    return h.join();
  };
  chain(5);
  const auto path = critical_path(rt.trace());
  // The chain dominates: the path must contain several of its tasks and
  // start at (or near) the chain's deepest task.
  EXPECT_GE(path.size(), 5u);
}

TEST(TraceAnalysis, GanttCsvWellFormed) {
  Runtime rt(traced(2));
  spawn_labeled(rt, "alpha", spin_value).join();
  const std::string csv = gantt_csv(rt.trace());
  EXPECT_NE(csv.find("task,label,level,start_ns,end_ns,duration_ns\n"),
            std::string::npos);
  EXPECT_NE(csv.find("alpha"), std::string::npos);
  // Exactly 1 executed task -> header + 1 row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(TraceAnalysis, JobProfilesSliceWorkAndSpanPerJob) {
  // Hand-built two-job trace. Job 1: a 2-task chain (span = sum). Job 2:
  // two independent tasks under a zero-cost root (span = the longer one).
  TraceGraph g;
  g.set_enabled(true);
  g.record_task(1, 0, 0, false, 1);
  g.record_task(2, 1, 1, false, 1);
  g.record_edge(1, 2, TraceEdgeKind::kFork);
  g.record_exec_interval(1, 0, 100);
  g.record_exec_interval(2, 100, 50);

  g.record_task(3, 0, 0, false, 2);
  g.record_task(4, 3, 1, false, 2);
  g.record_task(5, 3, 1, false, 2);
  g.record_edge(3, 4, TraceEdgeKind::kFork);
  g.record_edge(3, 5, TraceEdgeKind::kFork);
  g.record_exec_interval(3, 0, 0);
  g.record_exec_interval(4, 10, 70);
  g.record_exec_interval(5, 10, 30);

  const auto profiles = job_profiles(g);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].job, 1u);
  EXPECT_EQ(profiles[0].tasks, 2u);
  EXPECT_EQ(profiles[0].work_ns, 150);
  EXPECT_EQ(profiles[0].span_ns, 150);  // chain: span == work
  EXPECT_DOUBLE_EQ(profiles[0].parallelism(), 1.0);
  EXPECT_EQ(profiles[1].job, 2u);
  EXPECT_EQ(profiles[1].tasks, 3u);
  EXPECT_EQ(profiles[1].work_ns, 100);
  EXPECT_EQ(profiles[1].span_ns, 70);  // fan-out: the longer branch
  EXPECT_DOUBLE_EQ(profiles[1].parallelism(), 100.0 / 70.0);
}

TEST(TraceAnalysis, StatsTextGoldenOutput) {
  // The `anahy-lint --stats` rollup is deterministic; pin it exactly.
  TraceGraph g;
  g.set_enabled(true);
  g.record_task(1, 0, 0, false, 1);
  g.record_task(2, 1, 1, false, 1);
  g.record_edge(1, 2, TraceEdgeKind::kFork);
  g.record_edge_stamped(2, 1, TraceEdgeKind::kJoin, 160, 0);
  g.record_exec_interval(1, 0, 100);
  g.record_exec_interval(2, 100, 50);
  g.record_task_attrs(2, 1, 8);

  EXPECT_EQ(trace_stats_text(g),
            "anahy-trace stats\n"
            "nodes 2 (continuations 0, executed 2)\n"
            "edges 2 (fork 1, join 1, continue 0, stamped 1)\n"
            "anomalies 0\n"
            "fork-depth histogram:\n"
            "  level 0: 1\n"
            "  level 1: 1\n"
            "jobs:\n"
            "  job 1: tasks 2 (continuations 0), datalen 8, work_ns 150, "
            "span_ns 150, parallelism 1.00\n");
}

TEST(TraceAnalysis, StatsTextHandlesEmptyTrace) {
  const std::string text = trace_stats_text(TraceGraph{});
  EXPECT_NE(text.find("nodes 0"), std::string::npos);
  EXPECT_NE(text.find("anomalies 0"), std::string::npos);
}

TEST(TraceAnalysis, DisabledTraceYieldsNothing) {
  Runtime rt(Options{.num_vps = 1});
  spawn(rt, spin_value).join();
  EXPECT_TRUE(exec_intervals(rt.trace()).empty());
  EXPECT_EQ(average_parallelism(rt.trace()), 0.0);
  EXPECT_TRUE(critical_path(rt.trace()).empty());
}

}  // namespace
