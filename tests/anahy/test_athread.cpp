// Tests of the POSIX-shaped C API (paper §2.4.1). The global runtime is
// process-wide, so this suite serializes init/terminate in each test.
#include "anahy/athread.hpp"

#include <gtest/gtest.h>

namespace {

using namespace anahy;

/// RAII init/terminate so a failing test cannot poison later ones.
struct GlobalRuntime {
  explicit GlobalRuntime(int vps = 2) {
    EXPECT_EQ(athread_init(vps), kOk);
  }
  ~GlobalRuntime() { athread_terminate(); }
};

void* triple(void* p) {
  auto* v = static_cast<int*>(p);
  *v *= 3;
  return v;
}

void* identity(void* p) { return p; }

void* early_exit(void* p) {
  athread_exit(p);  // never returns
  ADD_FAILURE() << "athread_exit returned";
  return nullptr;
}

void* self_reporter(void*) {
  static athread_t id;
  id = athread_self();
  return &id;
}

TEST(Athread, CreateJoinRoundTrip) {
  GlobalRuntime rt;
  int value = 5;
  athread_t th;
  ASSERT_EQ(athread_create(&th, nullptr, triple, &value), kOk);
  void* out = nullptr;
  ASSERT_EQ(athread_join(th, &out), kOk);
  EXPECT_EQ(out, &value);
  EXPECT_EQ(value, 15);
}

TEST(Athread, InitTwiceFails) {
  GlobalRuntime rt;
  EXPECT_EQ(athread_init(2), kAgain);
}

TEST(Athread, TerminateWithoutInitFails) {
  EXPECT_EQ(athread_terminate(), kPerm);
}

TEST(Athread, CreateWithoutInitFails) {
  athread_t th;
  EXPECT_EQ(athread_create(&th, nullptr, identity, nullptr), kPerm);
}

TEST(Athread, CreateValidatesArguments) {
  GlobalRuntime rt;
  EXPECT_EQ(athread_create(nullptr, nullptr, identity, nullptr), kInvalid);
  athread_t th;
  EXPECT_EQ(athread_create(&th, nullptr, nullptr, nullptr), kInvalid);
  athread_attr_t uninit;  // never athread_attr_init'ed
  EXPECT_EQ(athread_create(&th, &uninit, identity, nullptr), kInvalid);
}

TEST(Athread, JoinUnknownIdFails) {
  GlobalRuntime rt;
  athread_t bogus{99999};
  EXPECT_EQ(athread_join(bogus, nullptr), kNotFound);
}

TEST(Athread, AttrLifeCycle) {
  athread_attr_t attr;
  ASSERT_EQ(athread_attr_init(&attr), kOk);

  int joins = 0;
  EXPECT_EQ(athread_attr_getjoinnumber(&attr, &joins), kOk);
  EXPECT_EQ(joins, 1);

  EXPECT_EQ(athread_attr_setjoinnumber(&attr, 4), kOk);
  EXPECT_EQ(athread_attr_getjoinnumber(&attr, &joins), kOk);
  EXPECT_EQ(joins, 4);
  EXPECT_EQ(athread_attr_setjoinnumber(&attr, -2), kInvalid);

  std::size_t len = 0;
  EXPECT_EQ(athread_attr_setdatalen(&attr, 128), kOk);
  EXPECT_EQ(athread_attr_getdatalen(&attr, &len), kOk);
  EXPECT_EQ(len, 128u);

  EXPECT_EQ(athread_attr_destroy(&attr), kOk);
  EXPECT_EQ(athread_attr_destroy(&attr), kInvalid);  // double destroy
  EXPECT_EQ(athread_attr_setjoinnumber(&attr, 2), kInvalid);
}

TEST(Athread, AttrNullArgumentsFail) {
  EXPECT_EQ(athread_attr_init(nullptr), kInvalid);
  athread_attr_t attr;
  athread_attr_init(&attr);
  EXPECT_EQ(athread_attr_getjoinnumber(&attr, nullptr), kInvalid);
  EXPECT_EQ(athread_attr_getdatalen(&attr, nullptr), kInvalid);
}

TEST(Athread, JoinNumberAttrAllowsMultipleJoins) {
  GlobalRuntime rt;
  athread_attr_t attr;
  athread_attr_init(&attr);
  athread_attr_setjoinnumber(&attr, 2);

  int value = 1;
  athread_t th;
  ASSERT_EQ(athread_create(&th, &attr, identity, &value), kOk);
  void* out1 = nullptr;
  void* out2 = nullptr;
  EXPECT_EQ(athread_join(th, &out1), kOk);
  EXPECT_EQ(athread_join(th, &out2), kOk);
  EXPECT_EQ(out1, &value);
  EXPECT_EQ(out2, &value);
  EXPECT_EQ(athread_join(th, nullptr), kNotFound);
  athread_attr_destroy(&attr);
}

TEST(Athread, ExitShortCircuitsTaskBody) {
  GlobalRuntime rt;
  int payload = 77;
  athread_t th;
  ASSERT_EQ(athread_create(&th, nullptr, early_exit, &payload), kOk);
  void* out = nullptr;
  ASSERT_EQ(athread_join(th, &out), kOk);
  EXPECT_EQ(out, &payload);
}

TEST(Athread, ExitOutsideTaskIsRejected) {
  GlobalRuntime rt;
  EXPECT_EQ(athread_exit(nullptr), kPerm);
}

TEST(Athread, SelfReturnsRootOutsideTasks) {
  GlobalRuntime rt;
  EXPECT_EQ(athread_self().id, kRootTaskId);
}

TEST(Athread, SelfInsideTaskIsNotRoot) {
  GlobalRuntime rt;
  athread_t th;
  ASSERT_EQ(athread_create(&th, nullptr, self_reporter, nullptr), kOk);
  void* out = nullptr;
  ASSERT_EQ(athread_join(th, &out), kOk);
  EXPECT_NE(static_cast<athread_t*>(out)->id, kRootTaskId);
}

TEST(Athread, ExhaustedJoinBudgetReturnsEsrch) {
  // Regression: joining past the budget must fail loudly with ESRCH on
  // every path - a silent 0 here masks use-after-reclaim of the result.
  GlobalRuntime rt;
  athread_t th;
  ASSERT_EQ(athread_create(&th, nullptr, identity, nullptr), kOk);
  ASSERT_EQ(athread_join(th, nullptr), kOk);
  EXPECT_EQ(athread_join(th, nullptr), kNotFound);   // budget (1) spent
  EXPECT_EQ(athread_tryjoin(th, nullptr), kNotFound);
}

TEST(Athread, DetachedTaskCannotBeJoined) {
  GlobalRuntime rt;
  athread_attr_t attr;
  ASSERT_EQ(athread_attr_init(&attr), kOk);
  ASSERT_EQ(athread_attr_setjoinnumber(&attr, 0), kOk);
  athread_t th;
  ASSERT_EQ(athread_create(&th, &attr, identity, nullptr), kOk);
  EXPECT_EQ(athread_join(th, nullptr), kNotFound);
}

TEST(Athread, MultiJoinBudgetExhaustsExactly) {
  GlobalRuntime rt;
  athread_attr_t attr;
  ASSERT_EQ(athread_attr_init(&attr), kOk);
  ASSERT_EQ(athread_attr_setjoinnumber(&attr, 3), kOk);
  int value = 2;
  athread_t th;
  ASSERT_EQ(athread_create(&th, &attr, triple, &value), kOk);
  for (int i = 0; i < 3; ++i) {
    void* out = nullptr;
    EXPECT_EQ(athread_join(th, &out), kOk) << "join " << i;
    EXPECT_EQ(out, &value);
  }
  EXPECT_EQ(athread_join(th, nullptr), kNotFound);
}

TEST(Athread, JoinLenMatchesPlainJoinSemantics) {
  GlobalRuntime rt;
  athread_attr_t attr;
  ASSERT_EQ(athread_attr_init(&attr), kOk);
  ASSERT_EQ(athread_attr_setdatalen(&attr, sizeof(int)), kOk);
  int value = 7;
  athread_t th;
  ASSERT_EQ(athread_create(&th, &attr, triple, &value), kOk);
  void* out = nullptr;
  // Matching length: behaves exactly like athread_join.
  EXPECT_EQ(athread_join_len(th, &out, sizeof(int)), kOk);
  EXPECT_EQ(out, &value);
  EXPECT_EQ(value, 21);
  // And it inherits the exhausted-budget ESRCH contract.
  EXPECT_EQ(athread_join_len(th, nullptr, sizeof(int)), kNotFound);
}

TEST(Athread, CheckedAttrRoundTrip) {
  athread_attr_t attr;
  ASSERT_EQ(athread_attr_init(&attr), kOk);
  int checked = 0;
  EXPECT_EQ(athread_attr_getchecked(&attr, &checked), kOk);
  EXPECT_EQ(checked, 1);  // tasks are checked by default
  EXPECT_EQ(athread_attr_setchecked(&attr, 0), kOk);
  EXPECT_EQ(athread_attr_getchecked(&attr, &checked), kOk);
  EXPECT_EQ(checked, 0);
  // Uninitialized / null attrs are rejected like the other attr calls.
  EXPECT_EQ(athread_attr_setchecked(nullptr, 1), kInvalid);
  EXPECT_EQ(athread_attr_getchecked(&attr, nullptr), kInvalid);
  ASSERT_EQ(athread_attr_destroy(&attr), kOk);
  EXPECT_EQ(athread_attr_setchecked(&attr, 1), kInvalid);
}

TEST(Athread, FibonacciThroughCApi) {
  // The paper's Fibonacci scheme: each recursive call forks a task.
  GlobalRuntime rt(4);
  struct Fib {
    static void* run(void* p) {
      const long n = reinterpret_cast<long>(p);
      if (n < 2) return reinterpret_cast<void*>(n);
      athread_t th;
      EXPECT_EQ(athread_create(&th, nullptr, &Fib::run,
                               reinterpret_cast<void*>(n - 1)),
                kOk);
      void* a = nullptr;
      void* b = run(reinterpret_cast<void*>(n - 2));
      EXPECT_EQ(athread_join(th, &a), kOk);
      return reinterpret_cast<void*>(reinterpret_cast<long>(a) +
                                     reinterpret_cast<long>(b));
    }
  };
  void* r = Fib::run(reinterpret_cast<void*>(12));
  EXPECT_EQ(reinterpret_cast<long>(r), 144);
}

}  // namespace
