// Trace-graph tests: Figure 2 style structure, levels, continuations,
// work/span accounting and DOT output.
#include "anahy/anahy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace {

using namespace anahy;

Options traced(int vps, PolicyKind policy = PolicyKind::kFifo) {
  Options o;
  o.num_vps = vps;
  o.policy = policy;
  o.trace = true;
  return o;
}

TEST(Trace, RecordsForkTreeLevels) {
  Runtime rt(traced(1));
  // T0 forks 3 children; each child forks one grandchild.
  std::vector<Handle<int>> children;
  for (int i = 0; i < 3; ++i) {
    children.push_back(spawn(rt, [&rt] {
      auto g = spawn(rt, [] { return 1; });
      return g.join() + 1;
    }));
  }
  for (auto& h : children) EXPECT_EQ(h.join(), 2);

  // Count real tasks per level; continuations stay at their flow's level
  // and are excluded here.
  std::map<std::uint32_t, int> real;
  for (const auto& n : rt.trace().nodes())
    if (!n.is_continuation) ++real[n.level];
  EXPECT_EQ(real.at(0), 1);  // the root flow
  EXPECT_EQ(real.at(1), 3);  // children
  EXPECT_EQ(real.at(2), 3);  // grandchildren

  // The full histogram (with continuations) dominates the real counts.
  const auto hist = rt.trace().level_histogram();
  for (const auto& [level, count] : real)
    EXPECT_GE(hist.at(level), static_cast<std::size_t>(count));
}

TEST(Trace, ChildLevelIsParentPlusOne) {
  Runtime rt(traced(1));
  spawn(rt, [&rt] {
    auto inner = spawn(rt, [] { return 0; });
    return inner.join();
  }).join();

  const auto nodes = rt.trace().nodes();
  for (const auto& n : nodes) {
    if (n.parent == kInvalidTaskId || n.is_continuation) continue;
    const auto parent =
        std::find_if(nodes.begin(), nodes.end(),
                     [&](const TraceNode& p) { return p.id == n.parent; });
    ASSERT_NE(parent, nodes.end()) << "dangling parent for T" << n.id;
    EXPECT_EQ(n.level, parent->level + 1);
  }
}

TEST(Trace, BlockingJoinCreatesContinuation) {
  Runtime rt(traced(1));
  // With 1 VP the forked task is not finished when we join -> the main
  // flow must split (T0 -> continuation), paper §2.2.1.
  auto h = spawn(rt, [] { return 3; });
  EXPECT_EQ(h.join(), 3);

  const auto nodes = rt.trace().nodes();
  const auto conts = std::count_if(nodes.begin(), nodes.end(),
                                   [](const auto& n) { return n.is_continuation; });
  EXPECT_EQ(conts, 1);
  EXPECT_EQ(rt.stats().continuations, 1u);

  const auto edges = rt.trace().edges();
  const auto has = [&](TraceEdgeKind k) {
    return std::any_of(edges.begin(), edges.end(),
                       [&](const auto& e) { return e.kind == k; });
  };
  EXPECT_TRUE(has(TraceEdgeKind::kFork));
  EXPECT_TRUE(has(TraceEdgeKind::kJoin));
  EXPECT_TRUE(has(TraceEdgeKind::kContinue));
}

TEST(Trace, ImmediateJoinCreatesNoContinuation) {
  Runtime rt(traced(2, PolicyKind::kWorkStealing));
  auto h = spawn(rt, [] { return 5; });
  // Let the worker finish it first so the join is immediate.
  for (int spin = 0; spin < 100000 && rt.lists().finished == 0; ++spin) {
  }
  EXPECT_EQ(h.join(), 5);
  if (rt.stats().joins_immediate == 1) {
    EXPECT_EQ(rt.stats().continuations, 0u);
  }
}

TEST(Trace, EveryForkEdgeConnectsKnownNodes) {
  Runtime rt(traced(1));
  std::function<int(int)> fib = [&](int n) -> int {
    if (n < 2) return n;
    auto h = spawn(rt, fib, n - 1);
    int b = fib(n - 2);
    return h.join() + b;
  };
  EXPECT_EQ(fib(8), 21);

  const auto nodes = rt.trace().nodes();
  const auto edges = rt.trace().edges();
  const auto known = [&](TaskId id) {
    return std::any_of(nodes.begin(), nodes.end(),
                       [&](const auto& n) { return n.id == id; });
  };
  for (const auto& e : edges) {
    EXPECT_TRUE(known(e.from)) << "edge from unknown T" << e.from;
    EXPECT_TRUE(known(e.to)) << "edge to unknown T" << e.to;
  }
}

TEST(Trace, WorkIsAtLeastSpan) {
  Runtime rt(traced(2));
  std::vector<Handle<int>> handles;
  for (int i = 0; i < 8; ++i)
    handles.push_back(spawn(rt, [] {
      volatile long x = 0;
      for (int k = 0; k < 200000; ++k) x = x + k;
      return static_cast<int>(x != 0);
    }));
  for (auto& h : handles) h.join();

  const auto work = rt.trace().work_ns();
  const auto span = rt.trace().span_ns();
  EXPECT_GT(work, 0);
  EXPECT_GT(span, 0);
  EXPECT_GE(work, span);
}

TEST(Trace, DotContainsAllTasks) {
  Runtime rt(traced(1));
  spawn_labeled(rt, "alpha", [] { return 1; }).join();
  const std::string dot = rt.trace().to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("t0"), std::string::npos);  // root flow present
  EXPECT_NE(dot.find("-> "), std::string::npos);
}

TEST(Trace, DisabledTraceRecordsNothing) {
  Runtime rt(Options{.num_vps = 1});  // trace off
  spawn(rt, [] { return 1; }).join();
  EXPECT_TRUE(rt.trace().nodes().empty());
  EXPECT_TRUE(rt.trace().edges().empty());
}

TEST(Trace, ClearEmptiesGraph) {
  Runtime rt(traced(1));
  spawn(rt, [] { return 1; }).join();
  EXPECT_FALSE(rt.trace().nodes().empty());
  rt.trace().clear();
  EXPECT_TRUE(rt.trace().nodes().empty());
  EXPECT_TRUE(rt.trace().edges().empty());
}

}  // namespace
