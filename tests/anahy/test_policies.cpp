// Unit tests of the ready-list policies, exercised directly (no runtime).
#include "anahy/policy.hpp"
#include "anahy/policy_steal.hpp"

#include <gtest/gtest.h>

namespace {

using namespace anahy;

TaskPtr make_task(TaskId id) {
  return std::make_shared<Task>(
      id, [](void*) -> void* { return nullptr; }, nullptr, TaskAttributes{},
      kRootTaskId, 1);
}

class PolicyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyTest, PushPopSingle) {
  auto policy = make_policy(GetParam(), 2);
  auto t = make_task(1);
  policy->push(t, 0);
  EXPECT_EQ(policy->approx_size(), 1u);
  EXPECT_EQ(policy->pop(0), t);
  EXPECT_EQ(policy->approx_size(), 0u);
  EXPECT_EQ(policy->pop(0), nullptr);
}

TEST_P(PolicyTest, PopFromOtherVpFindsWork) {
  auto policy = make_policy(GetParam(), 4);
  auto t = make_task(1);
  policy->push(t, 0);
  // A different VP must still be able to acquire the task (stealing or a
  // shared queue, depending on the policy).
  EXPECT_EQ(policy->pop(3), t);
}

TEST_P(PolicyTest, ExternalCallersAreAccepted) {
  auto policy = make_policy(GetParam(), 2);
  auto t = make_task(7);
  policy->push(t, SchedulingPolicy::kExternalVp);
  EXPECT_EQ(policy->pop(SchedulingPolicy::kExternalVp), t);
}

TEST_P(PolicyTest, RemoveSpecificTakesExactTask) {
  auto policy = make_policy(GetParam(), 2);
  auto a = make_task(1);
  auto b = make_task(2);
  auto c = make_task(3);
  policy->push(a, 0);
  policy->push(b, 1);
  policy->push(c, 0);
  EXPECT_TRUE(policy->remove_specific(b, SchedulingPolicy::kExternalVp));
  EXPECT_FALSE(policy->remove_specific(
      b, SchedulingPolicy::kExternalVp));  // already removed
  EXPECT_EQ(policy->approx_size(), 2u);
  // The remaining pops never return b.
  const TaskPtr p1 = policy->pop(0);
  const TaskPtr p2 = policy->pop(1);
  EXPECT_TRUE((p1 == a && p2 == c) || (p1 == c && p2 == a));
}

TEST_P(PolicyTest, DrainsManyTasks) {
  auto policy = make_policy(GetParam(), 3);
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i) policy->push(make_task(TaskId(i)), i % 3);
  int drained = 0;
  while (policy->pop(drained % 3) != nullptr) ++drained;
  EXPECT_EQ(drained, kN);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(PolicyKind::kFifo,
                                           PolicyKind::kLifo,
                                           PolicyKind::kWorkStealing,
                                           PolicyKind::kWorkStealingMutex),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(FifoPolicy, IsFirstInFirstOut) {
  auto policy = make_policy(PolicyKind::kFifo, 1);
  auto a = make_task(1);
  auto b = make_task(2);
  policy->push(a, 0);
  policy->push(b, 0);
  EXPECT_EQ(policy->pop(0), a);
  EXPECT_EQ(policy->pop(0), b);
}

TEST(LifoPolicy, IsLastInFirstOut) {
  auto policy = make_policy(PolicyKind::kLifo, 1);
  auto a = make_task(1);
  auto b = make_task(2);
  policy->push(a, 0);
  policy->push(b, 0);
  EXPECT_EQ(policy->pop(0), b);
  EXPECT_EQ(policy->pop(0), a);
}

TEST(WorkStealingPolicy, OwnerPopsLifoThiefStealsFifo) {
  WorkStealingPolicy policy(2);
  auto a = make_task(1);
  auto b = make_task(2);
  auto c = make_task(3);
  policy.push(a, 0);
  policy.push(b, 0);
  policy.push(c, 0);
  // Owner end: newest first.
  EXPECT_EQ(policy.pop(0), c);
  // Thief (VP 1): oldest first.
  EXPECT_EQ(policy.pop(1), a);
  EXPECT_GE(policy.steals(), 1u);
  EXPECT_GE(policy.steal_attempts(), policy.steals());
}

TEST(WorkStealingPolicy, StealCountersOnlyCountCrossDequeTakes) {
  WorkStealingPolicy policy(2);
  policy.push(make_task(1), 0);
  EXPECT_NE(policy.pop(0), nullptr);  // owner pop: not a steal
  EXPECT_EQ(policy.steals(), 0u);
}

TEST(WorkStealingPolicy, RejectsZeroVps) {
  EXPECT_THROW(WorkStealingPolicy(0), std::invalid_argument);
}

TaskPtr make_task_with_priority(TaskId id, Priority p) {
  TaskAttributes attr;
  attr.set_priority(p);
  return std::make_shared<Task>(
      id, [](void*) -> void* { return nullptr; }, nullptr, attr, kRootTaskId,
      1);
}

TEST(WorkStealingPolicy, OwnerPopServicesClassesInPriorityOrder) {
  WorkStealingPolicy policy(1);
  auto batch = make_task_with_priority(1, Priority::kBatch);
  auto high = make_task_with_priority(2, Priority::kHigh);
  auto normal = make_task_with_priority(3, Priority::kNormal);
  policy.push(batch, 0);
  policy.push(high, 0);
  policy.push(normal, 0);
  // Strict class order beats push order: high, then normal, then batch.
  EXPECT_EQ(policy.pop(0), high);
  EXPECT_EQ(policy.pop(0), normal);
  EXPECT_EQ(policy.pop(0), batch);
}

TEST(WorkStealingPolicy, ThiefSweepsHighClassAcrossVictimsFirst) {
  WorkStealingPolicy policy(3);
  auto batch0 = make_task_with_priority(1, Priority::kBatch);
  auto high1 = make_task_with_priority(2, Priority::kHigh);
  policy.push(batch0, 0);  // victim 0 has only batch work
  policy.push(high1, 1);   // victim 1 has high work
  // VP 2 steals: the class-major sweep must take victim 1's high task
  // before victim 0's batch task, whatever the round-robin seed.
  EXPECT_EQ(policy.pop(2), high1);
  EXPECT_EQ(policy.pop(2), batch0);
}

TEST(WorkStealingPolicy, ExternalQueueHonorsClasses) {
  WorkStealingPolicy policy(1);
  auto batch = make_task_with_priority(1, Priority::kBatch);
  auto high = make_task_with_priority(2, Priority::kHigh);
  policy.push(batch, SchedulingPolicy::kExternalVp);
  policy.push(high, SchedulingPolicy::kExternalVp);
  EXPECT_EQ(policy.pop(SchedulingPolicy::kExternalVp), high);
  EXPECT_EQ(policy.pop(SchedulingPolicy::kExternalVp), batch);
}

TEST(WorkStealingPolicy, SameClassKeepsLifoOwnerFifoThief) {
  WorkStealingPolicy policy(2);
  auto a = make_task_with_priority(1, Priority::kHigh);
  auto b = make_task_with_priority(2, Priority::kHigh);
  policy.push(a, 0);
  policy.push(b, 0);
  EXPECT_EQ(policy.pop(0), b);  // owner: newest of the class first
  EXPECT_EQ(policy.pop(1), a);  // thief: oldest of the class first
}

}  // namespace
