#include "anahy/attr.hpp"

#include <gtest/gtest.h>

namespace {

using anahy::TaskAttributes;

TEST(TaskAttributes, DefaultsMatchPaper) {
  const TaskAttributes attr;
  EXPECT_EQ(attr.join_number(), 1);  // one join per task by default
  EXPECT_EQ(attr.data_len(), 0u);
}

TEST(TaskAttributes, JoinNumberAcceptsZeroForDetached) {
  TaskAttributes attr;
  EXPECT_TRUE(attr.set_join_number(0));
  EXPECT_EQ(attr.join_number(), 0);
}

TEST(TaskAttributes, JoinNumberRejectsNegative) {
  TaskAttributes attr;
  EXPECT_FALSE(attr.set_join_number(-1));
  EXPECT_EQ(attr.join_number(), 1);  // unchanged
}

TEST(TaskAttributes, MultiJoinBudget) {
  TaskAttributes attr;
  EXPECT_TRUE(attr.set_join_number(5));
  EXPECT_EQ(attr.join_number(), 5);
}

TEST(TaskAttributes, DataLenRoundTrips) {
  TaskAttributes attr;
  attr.set_data_len(4096);
  EXPECT_EQ(attr.data_len(), 4096u);
}

}  // namespace
