#include "anahy/task_group.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace {

using namespace anahy;

TEST(TaskGroup, RunsEveryMember) {
  Runtime rt(Options{.num_vps = 3});
  std::atomic<int> count{0};
  {
    TaskGroup group(rt);
    for (int i = 0; i < 50; ++i)
      group.run([&count] { count.fetch_add(1); });
    EXPECT_EQ(group.pending(), 50u);
    group.wait();
    EXPECT_EQ(group.pending(), 0u);
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(TaskGroup, DestructorJoins) {
  Runtime rt(Options{.num_vps = 2});
  std::atomic<int> count{0};
  {
    TaskGroup group(rt);
    for (int i = 0; i < 20; ++i)
      group.run([&count] { count.fetch_add(1); });
    // No explicit wait(): the destructor must join all members before the
    // captured atomic goes out of scope.
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(TaskGroup, ReusableAfterWait) {
  Runtime rt(Options{.num_vps = 2});
  std::atomic<int> count{0};
  TaskGroup group(rt);
  group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 1);
  group.run([&count] { count.fetch_add(10); });
  group.wait();
  EXPECT_EQ(count.load(), 11);
}

TEST(TaskGroup, NestedGroupsInsideTasks) {
  Runtime rt(Options{.num_vps = 4});
  std::atomic<int> leaves{0};
  {
    TaskGroup outer(rt);
    for (int i = 0; i < 4; ++i) {
      outer.run([&rt, &leaves] {
        TaskGroup inner(rt);
        for (int j = 0; j < 4; ++j)
          inner.run([&leaves] { leaves.fetch_add(1); });
      });
    }
  }
  EXPECT_EQ(leaves.load(), 16);
}

TEST(TaskGroup, EmptyGroupIsFine) {
  Runtime rt(Options{.num_vps = 1});
  TaskGroup group(rt);
  group.wait();
  EXPECT_EQ(group.pending(), 0u);
}

}  // namespace
