// Stress and failure-injection tests: deep recursion, wide fan-out, many
// runtimes, churn across policies. Kept in a separate binary so a hang is
// attributable.
#include "anahy/anahy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <vector>

namespace {

using namespace anahy;

TEST(Stress, WideFanOutTenThousandTasks) {
  Runtime rt(Options{.num_vps = 4});
  constexpr int kN = 10000;
  std::atomic<int> executed{0};
  std::vector<TaskPtr> tasks;
  tasks.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    tasks.push_back(rt.fork(
        [&executed](void*) -> void* {
          executed.fetch_add(1, std::memory_order_relaxed);
          return nullptr;
        },
        nullptr));
  }
  for (auto& t : tasks) ASSERT_EQ(rt.join(t, nullptr), kOk);
  EXPECT_EQ(executed.load(), kN);
  EXPECT_EQ(rt.stats().tasks_executed, static_cast<std::uint64_t>(kN));
}

TEST(Stress, RecursiveFibonacciEveryPolicy) {
  for (const PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLifo, PolicyKind::kWorkStealing}) {
    Options o;
    o.num_vps = 3;
    o.policy = policy;
    Runtime rt(o);
    std::function<long(long)> fib = [&](long n) -> long {
      if (n < 2) return n;
      auto h = spawn(rt, fib, n - 1);
      const long b = fib(n - 2);
      return h.join() + b;
    };
    EXPECT_EQ(fib(18), 2584) << "policy " << to_string(policy);
  }
}

TEST(Stress, DeepChainOfDependentTasks) {
  // T_k joins T_{k-1}: a pure dependency chain, worst case for the
  // blocked/unblocked machinery.
  Runtime rt(Options{.num_vps = 2});
  constexpr int kDepth = 1000;
  std::function<int(int)> chain = [&](int depth) -> int {
    if (depth == 0) return 0;
    auto h = spawn(rt, chain, depth - 1);
    return h.join() + 1;
  };
  EXPECT_EQ(chain(kDepth), kDepth);
}

TEST(Stress, RepeatedRuntimeConstruction) {
  for (int round = 0; round < 20; ++round) {
    Runtime rt(Options{.num_vps = (round % 4) + 1});
    auto h = spawn(rt, [round] { return round; });
    EXPECT_EQ(h.join(), round);
  }
}

TEST(Stress, TasksForkingFromWorkers) {
  // Forks happen inside worker-executed tasks, not just from main.
  Runtime rt(Options{.num_vps = 4});
  std::function<int(int, int)> tree = [&](int depth, int fan) -> int {
    if (depth == 0) return 1;
    std::vector<Handle<int>> handles;
    handles.reserve(static_cast<std::size_t>(fan));
    for (int i = 0; i < fan; ++i)
      handles.push_back(spawn(rt, tree, depth - 1, fan));
    int total = 1;
    for (auto& h : handles) total += h.join();
    return total;
  };
  // Nodes of a complete 3-ary tree of depth 5: (3^6 - 1) / 2 = 364.
  EXPECT_EQ(tree(5, 3), 364);
}

TEST(Stress, MixedDetachedAndJoinedTasks) {
  Runtime rt(Options{.num_vps = 2});
  std::atomic<int> detached_runs{0};
  TaskAttributes detached;
  detached.set_join_number(0);
  std::vector<Handle<int>> joined;
  for (int i = 0; i < 200; ++i) {
    rt.fork(
        [&detached_runs](void*) -> void* {
          detached_runs.fetch_add(1, std::memory_order_relaxed);
          return nullptr;
        },
        nullptr, detached);
    joined.push_back(spawn(rt, [i] { return i; }));
  }
  int sum = 0;
  for (auto& h : joined) sum += h.join();
  EXPECT_EQ(sum, 199 * 200 / 2);
  // Detached tasks may still be queued; drain by forking+joining a fence
  // until all have run (the scheduler never drops tasks).
  while (detached_runs.load() < 200) spawn(rt, [] { return 0; }).join();
  EXPECT_EQ(detached_runs.load(), 200);
}

TEST(Stress, ManySmallTasksAcrossVpCounts) {
  for (int vps = 1; vps <= 8; vps *= 2) {
    Runtime rt(Options{.num_vps = vps});
    std::vector<Handle<int>> handles;
    for (int i = 0; i < 500; ++i)
      handles.push_back(spawn(rt, [i] { return i % 7; }));
    int sum = 0;
    for (auto& h : handles) sum += h.join();
    EXPECT_EQ(sum, 500 / 7 * (0 + 1 + 2 + 3 + 4 + 5 + 6) + 0 + 1 + 2)
        << "vps=" << vps;
  }
}

}  // namespace
