// Property and concurrency tests of the lock-free Chase-Lev deque.
#include "anahy/steal_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace {

using anahy::ChaseLevDeque;

TEST(ChaseLevDeque, EmptyPopsReturnNothing) {
  ChaseLevDeque<int> d;
  EXPECT_FALSE(d.pop_bottom().has_value());
  EXPECT_FALSE(d.steal_top().has_value());
  EXPECT_TRUE(d.empty());
}

TEST(ChaseLevDeque, OwnerLifoOrder) {
  ChaseLevDeque<int> d;
  for (int i = 0; i < 5; ++i) d.push_bottom(i);
  for (int i = 4; i >= 0; --i) {
    auto v = d.pop_bottom();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(ChaseLevDeque, ThiefFifoOrder) {
  ChaseLevDeque<int> d;
  for (int i = 0; i < 5; ++i) d.push_bottom(i);
  for (int i = 0; i < 5; ++i) {
    auto v = d.steal_top();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<int> d(2);
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i) d.push_bottom(i);
  EXPECT_EQ(d.approx_size(), static_cast<std::size_t>(kN));
  long long sum = 0;
  while (auto v = d.pop_bottom()) sum += *v;
  EXPECT_EQ(sum, 1LL * kN * (kN - 1) / 2);
}

TEST(ChaseLevDeque, MixedEndsSeeEveryElementOnce) {
  ChaseLevDeque<int> d;
  for (int i = 0; i < 100; ++i) d.push_bottom(i);
  std::set<int> seen;
  bool from_top = true;
  for (int i = 0; i < 100; ++i) {
    auto v = from_top ? d.steal_top() : d.pop_bottom();
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
    from_top = !from_top;
  }
  EXPECT_FALSE(d.pop_bottom().has_value());
}

/// Concurrency property: with one owner and several thieves, every pushed
/// element is taken exactly once (no loss, no duplication). On a 1-core
/// host the threads interleave via preemption, which still exercises the
/// CAS races on the last element.
TEST(ChaseLevDeque, ConcurrentOwnerAndThievesConserveElements) {
  constexpr int kN = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> d;
  std::atomic<long long> stolen_sum{0};
  std::atomic<int> stolen_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || !d.empty()) {
        if (auto v = d.steal_top()) {
          stolen_sum.fetch_add(*v, std::memory_order_relaxed);
          stolen_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  long long owner_sum = 0;
  int owner_count = 0;
  for (int i = 0; i < kN; ++i) {
    d.push_bottom(i);
    if (i % 3 == 0) {
      if (auto v = d.pop_bottom()) {
        owner_sum += *v;
        ++owner_count;
      }
    }
  }
  // Owner drains what the thieves have not taken yet.
  while (auto v = d.pop_bottom()) {
    owner_sum += *v;
    ++owner_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  // A thief may sneak the very last element between our final pop and the
  // done flag; drain once more to be exact.
  while (auto v = d.pop_bottom()) {
    owner_sum += *v;
    ++owner_count;
  }

  EXPECT_EQ(owner_count + stolen_count.load(), kN);
  EXPECT_EQ(owner_sum + stolen_sum.load(), 1LL * kN * (kN - 1) / 2);
}

class DequeSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(DequeSizeSweep, PushThenDrainPreservesSum) {
  const int n = GetParam();
  ChaseLevDeque<long long> d(4);
  for (int i = 0; i < n; ++i) d.push_bottom(i);
  long long sum = 0;
  while (auto v = d.pop_bottom()) sum += *v;
  EXPECT_EQ(sum, 1LL * n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DequeSizeSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 63, 64, 65, 1000));

}  // namespace
