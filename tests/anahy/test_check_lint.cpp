// Tests of the DAG structural linter (lint_trace / anahy-lint) and the
// trace save/load format it replays. Every ANAHY-W0xx code gets at least
// one positive and one negative test; the loader is exercised on empty,
// single-task, truncated and hand-corrupted (cyclic) traces.
#include "anahy/anahy.hpp"
#include "anahy/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

namespace {

using namespace anahy;

void* trivial(void* arg) { return arg; }

bool has_code(const std::vector<LintDiagnostic>& diags,
              const std::string& code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const auto& d) { return d.code == code; });
}

bool has_code_for(const std::vector<LintDiagnostic>& diags,
                  const std::string& code, TaskId task) {
  return std::any_of(diags.begin(), diags.end(), [&](const auto& d) {
    return d.code == code && d.task == task;
  });
}

/// Runs `body` against a fresh traced 1-VP global runtime and returns the
/// lint diagnostics of the resulting trace.
template <typename Body>
std::vector<LintDiagnostic> lint_traced_run(Body body) {
  Options opts;
  opts.num_vps = 1;
  opts.trace = true;
  EXPECT_EQ(athread_init_opts(opts), kOk);
  body();
  const auto diags = lint_trace(athread_runtime()->trace());
  EXPECT_EQ(athread_terminate(), kOk);
  return diags;
}

// ---------------------------------------------------------------------------
// W001 join-number mismatch
// ---------------------------------------------------------------------------

TEST(CheckLint, W001PartiallyConsumedBudgetIsReported) {
  athread_t t{};
  const auto diags = lint_traced_run([&] {
    athread_attr_t attr;
    athread_attr_init(&attr);
    athread_attr_setjoinnumber(&attr, 2);
    athread_create(&t, &attr, trivial, nullptr);
    EXPECT_EQ(athread_join(t, nullptr), kOk);  // 1 of 2 joins
  });
  EXPECT_TRUE(has_code_for(diags, lint_code::kJoinMismatch, t.id));
  EXPECT_FALSE(has_code(diags, lint_code::kLeakedTask));
}

TEST(CheckLint, W001AbsentWhenBudgetFullyConsumed) {
  const auto diags = lint_traced_run([] {
    athread_attr_t attr;
    athread_attr_init(&attr);
    athread_attr_setjoinnumber(&attr, 2);
    athread_t t{};
    athread_create(&t, &attr, trivial, nullptr);
    EXPECT_EQ(athread_join(t, nullptr), kOk);
    EXPECT_EQ(athread_join(t, nullptr), kOk);
  });
  EXPECT_FALSE(has_code(diags, lint_code::kJoinMismatch));
}

// ---------------------------------------------------------------------------
// W002 double-join
// ---------------------------------------------------------------------------

TEST(CheckLint, W002DoubleJoinIsReportedAndReturnsEsrch) {
  athread_t t{};
  const auto diags = lint_traced_run([&] {
    athread_create(&t, nullptr, trivial, nullptr);
    EXPECT_EQ(athread_join(t, nullptr), kOk);
    // The budget (1) is spent: POSIX contract says ESRCH, linter says W002.
    EXPECT_EQ(athread_join(t, nullptr), kNotFound);
  });
  EXPECT_TRUE(has_code_for(diags, lint_code::kDoubleJoin, t.id));
  // It is a double-join, NOT a join-on-nonexistent: the id did exist.
  EXPECT_FALSE(has_code(diags, lint_code::kJoinNonexistent));
}

TEST(CheckLint, W002AbsentOnSingleJoin) {
  const auto diags = lint_traced_run([] {
    athread_t t{};
    athread_create(&t, nullptr, trivial, nullptr);
    EXPECT_EQ(athread_join(t, nullptr), kOk);
  });
  EXPECT_FALSE(has_code(diags, lint_code::kDoubleJoin));
}

// ---------------------------------------------------------------------------
// W003 join on a nonexistent id
// ---------------------------------------------------------------------------

TEST(CheckLint, W003JoinOnNeverCreatedIdIsReported) {
  const TaskId bogus = 987654;
  const auto diags = lint_traced_run([&] {
    EXPECT_EQ(athread_join(athread_t{bogus}, nullptr), kNotFound);
  });
  EXPECT_TRUE(has_code_for(diags, lint_code::kJoinNonexistent, bogus));
  EXPECT_FALSE(has_code(diags, lint_code::kDoubleJoin));
}

TEST(CheckLint, W003AbsentWhenAllJoinsHitLiveTasks) {
  const auto diags = lint_traced_run([] {
    athread_t t{};
    athread_create(&t, nullptr, trivial, nullptr);
    EXPECT_EQ(athread_join(t, nullptr), kOk);
  });
  EXPECT_FALSE(has_code(diags, lint_code::kJoinNonexistent));
}

// ---------------------------------------------------------------------------
// W004 datalen mismatch
// ---------------------------------------------------------------------------

TEST(CheckLint, W004DatalenMismatchIsReportedButJoinSucceeds) {
  athread_t t{};
  const auto diags = lint_traced_run([&] {
    athread_attr_t attr;
    athread_attr_init(&attr);
    athread_attr_setdatalen(&attr, 64);
    athread_create(&t, &attr, trivial, nullptr);
    // The mismatch is a lint finding, not an error: the join still works.
    EXPECT_EQ(athread_join_len(t, nullptr, 128), kOk);
  });
  EXPECT_TRUE(has_code_for(diags, lint_code::kDatalenMismatch, t.id));
}

TEST(CheckLint, W004AbsentWhenDatalenMatches) {
  const auto diags = lint_traced_run([] {
    athread_attr_t attr;
    athread_attr_init(&attr);
    athread_attr_setdatalen(&attr, 64);
    athread_t t{};
    athread_create(&t, &attr, trivial, nullptr);
    EXPECT_EQ(athread_join_len(t, nullptr, 64), kOk);
  });
  EXPECT_FALSE(has_code(diags, lint_code::kDatalenMismatch));
}

// ---------------------------------------------------------------------------
// W005 leaked task
// ---------------------------------------------------------------------------

TEST(CheckLint, W005NeverJoinedTaskIsReported) {
  athread_t leaked{};
  const auto diags = lint_traced_run([&] {
    athread_create(&leaked, nullptr, trivial, nullptr);
    // never joined
  });
  EXPECT_TRUE(has_code_for(diags, lint_code::kLeakedTask, leaked.id));
}

TEST(CheckLint, W005AbsentForJoinedAndDetachedTasks) {
  const auto diags = lint_traced_run([] {
    athread_t joined{};
    athread_create(&joined, nullptr, trivial, nullptr);
    EXPECT_EQ(athread_join(joined, nullptr), kOk);
    // A detached task (join budget 0) cannot leak by definition.
    athread_attr_t attr;
    athread_attr_init(&attr);
    athread_attr_setjoinnumber(&attr, 0);
    athread_t detached{};
    athread_create(&detached, &attr, trivial, nullptr);
  });
  EXPECT_FALSE(has_code(diags, lint_code::kLeakedTask));
}

// ---------------------------------------------------------------------------
// W006 cycle through fork/continue edges
// ---------------------------------------------------------------------------

TEST(CheckLint, W006ForkCycleInCorruptTraceIsReported) {
  // Hand-corrupted trace: a fork cycle T1 -> T2 -> T3 -> T1 can never come
  // out of a real run; the linter must flag it, not hang or crash.
  std::istringstream in(
      "anahy-trace v1\n"
      "node 1 -1 0 0 -1 0 1 1 0\n"
      "node 2 1 1 0 -1 0 1 1 0\n"
      "node 3 2 2 0 -1 0 1 1 0\n"
      "edge 1 2 fork\n"
      "edge 2 3 fork\n"
      "edge 3 1 fork\n");
  TraceGraph trace;
  ASSERT_TRUE(trace.load(in));
  const auto diags = lint_trace(trace);
  ASSERT_TRUE(has_code(diags, lint_code::kCycle));
  const auto it = std::find_if(diags.begin(), diags.end(), [](const auto& d) {
    return d.code == lint_code::kCycle;
  });
  EXPECT_NE(it->message.find("T1"), std::string::npos);
  EXPECT_NE(it->message.find("T2"), std::string::npos);
  EXPECT_NE(it->message.find("T3"), std::string::npos);
}

TEST(CheckLint, W006NotTriggeredByImmediateJoinBackEdge) {
  // An immediate join's dataflow edge points back into the forking flow
  // (see TraceGraph::span_ns); only fork/continue edges may form cycles.
  std::istringstream in(
      "anahy-trace v1\n"
      "node 0 -1 0 0 -1 0 -1 0 0\n"
      "node 1 0 1 0 -1 0 1 1 0\n"
      "edge 0 1 fork\n"
      "edge 1 0 join\n");
  TraceGraph trace;
  ASSERT_TRUE(trace.load(in));
  EXPECT_FALSE(has_code(lint_trace(trace), lint_code::kCycle));
}

TEST(CheckLint, W006AbsentOnRealRun) {
  const auto diags = lint_traced_run([] {
    athread_t t{};
    athread_create(&t, nullptr, trivial, nullptr);
    EXPECT_EQ(athread_join(t, nullptr), kOk);
  });
  EXPECT_FALSE(has_code(diags, lint_code::kCycle));
}

// ---------------------------------------------------------------------------
// Trace file format: save/load round-trip and degenerate inputs
// ---------------------------------------------------------------------------

TEST(CheckLint, SaveLoadRoundTripPreservesLintResult) {
  Options opts;
  opts.num_vps = 1;
  opts.trace = true;
  ASSERT_EQ(athread_init_opts(opts), kOk);
  athread_t joined{}, leaked{};
  athread_create(&joined, nullptr, trivial, nullptr);
  ASSERT_EQ(athread_join(joined, nullptr), kOk);
  athread_create(&leaked, nullptr, trivial, nullptr);
  ASSERT_EQ(athread_join(athread_t{424242}, nullptr), kNotFound);  // W003

  std::stringstream file;
  athread_runtime()->trace().save(file);
  const auto live = lint_trace(athread_runtime()->trace());
  const std::size_t live_nodes = athread_runtime()->trace().nodes().size();
  const std::size_t live_edges = athread_runtime()->trace().edges().size();
  ASSERT_EQ(athread_terminate(), kOk);

  TraceGraph reloaded;
  std::string error;
  ASSERT_TRUE(reloaded.load(file, &error)) << error;
  EXPECT_EQ(reloaded.nodes().size(), live_nodes);
  EXPECT_EQ(reloaded.edges().size(), live_edges);

  const auto replayed = lint_trace(reloaded);
  ASSERT_EQ(replayed.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(replayed[i].code, live[i].code);
    EXPECT_EQ(replayed[i].task, live[i].task);
  }
  EXPECT_TRUE(has_code_for(replayed, lint_code::kLeakedTask, leaked.id));
  EXPECT_TRUE(has_code(replayed, lint_code::kJoinNonexistent));
}

TEST(CheckLint, RoundTripPreservesNodeFields) {
  TraceGraph trace;
  trace.set_enabled(true);
  trace.record_task(7, 3, 2, false);
  trace.record_task_attrs(7, 4, 128);
  trace.record_join_performed(7);
  trace.record_exec_interval(7, 100, 250);
  trace.record_label(7, "a label with spaces");
  trace.record_edge(3, 7, TraceEdgeKind::kFork);
  trace.record_anomaly("ANAHY-W004", 7, "detail text with spaces");

  std::stringstream file;
  trace.save(file);
  TraceGraph back;
  ASSERT_TRUE(back.load(file));
  const auto nodes = back.nodes();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].id, 7u);
  EXPECT_EQ(nodes[0].parent, 3u);
  EXPECT_EQ(nodes[0].level, 2u);
  EXPECT_EQ(nodes[0].join_number, 4);
  EXPECT_EQ(nodes[0].joins_performed, 1);
  EXPECT_EQ(nodes[0].data_len, 128u);
  EXPECT_EQ(nodes[0].start_ns, 100);
  EXPECT_EQ(nodes[0].exec_ns, 250);
  EXPECT_EQ(nodes[0].label, "a label with spaces");
  const auto anomalies = back.anomalies();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].code, "ANAHY-W004");
  EXPECT_EQ(anomalies[0].detail, "detail text with spaces");
}

TEST(CheckLint, SaveWritesV3HeaderAndJobColumnRoundTrips) {
  TraceGraph trace;
  trace.set_enabled(true);
  trace.record_task(7, 3, 2, false, /*job=*/42);
  trace.record_task_attrs(7, 1, 8);
  trace.record_label(7, "job task");

  std::stringstream file;
  trace.save(file);
  EXPECT_EQ(file.str().rfind("anahy-trace v3\n", 0), 0u)
      << "saved traces carry the v3 header";

  TraceGraph back;
  ASSERT_TRUE(back.load(file));
  const auto nodes = back.nodes();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].job, 42u);
  EXPECT_EQ(nodes[0].vp, TraceNode::kUnknownVp);
  EXPECT_EQ(nodes[0].label, "job task");
}

TEST(CheckLint, V2TracesLoadWithUnknownVp) {
  // Pre-v3 traces have no vp column on nodes and no ts/vp on edges.
  std::istringstream in(
      "anahy-trace v2\n"
      "node 1 -1 0 0 -1 0 1 1 0 9 v2 label\n"
      "edge 0 1 fork\n");
  TraceGraph trace;
  std::string error;
  ASSERT_TRUE(trace.load(in, &error)) << error;
  const auto nodes = trace.nodes();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].job, 9u);
  EXPECT_EQ(nodes[0].vp, TraceNode::kUnknownVp);
  EXPECT_EQ(nodes[0].label, "v2 label");
  const auto edges = trace.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].ts_ns, -1);
  EXPECT_EQ(edges[0].vp, TraceNode::kUnknownVp);
}

TEST(CheckLint, V1TracesLoadWithJobZero) {
  // The tolerant loader must keep reading pre-job-column traces: the node
  // record simply has no job field, which defaults to 0 (no job).
  std::istringstream in(
      "anahy-trace v1\n"
      "node 1 -1 0 0 -1 0 1 1 0 legacy label\n");
  TraceGraph trace;
  std::string error;
  ASSERT_TRUE(trace.load(in, &error)) << error;
  const auto nodes = trace.nodes();
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].job, 0u);
  EXPECT_EQ(nodes[0].label, "legacy label");
}

TEST(CheckLint, ForeignHeaderVersionIsRejected) {
  std::istringstream in("anahy-trace v4\nnode 1 -1 0 0 -1 0 1 1 0 0 0 x\n");
  TraceGraph trace;
  std::string error;
  EXPECT_FALSE(trace.load(in, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(CheckLint, EmptyTraceLintsClean) {
  TraceGraph trace;
  EXPECT_TRUE(lint_trace(trace).empty());
  // And an empty trace survives a save/load round-trip.
  std::stringstream file;
  trace.save(file);
  TraceGraph back;
  EXPECT_TRUE(back.load(file));
  EXPECT_TRUE(back.nodes().empty());
  EXPECT_TRUE(lint_trace(back).empty());
}

TEST(CheckLint, SingleTaskTraceIsHandledGracefully) {
  // A trace holding just the root flow: no budget, no edges - clean.
  std::istringstream in(
      "anahy-trace v1\n"
      "node 0 -1 0 0 -1 0 -1 0 0 main\n");
  TraceGraph trace;
  ASSERT_TRUE(trace.load(in));
  EXPECT_TRUE(lint_trace(trace).empty());
  EXPECT_EQ(trace.nodes().size(), 1u);
}

TEST(CheckLint, TruncatedFileIsRejectedAtomically) {
  // Save a real-looking trace, then cut the file mid-record: the loader
  // reports the failure with the offending line and loads *nothing* — a
  // half-parsed graph would lint as if tasks leaked when the file merely
  // lost its tail.
  const std::string full =
      "anahy-trace v1\n"
      "node 0 -1 0 0 -1 0 -1 0 0\n"
      "node 1 0 1 0 -1 0 1 0 0\n"
      "edge 0 1 fork\n";
  const std::string truncated = full.substr(0, full.size() - 7);  // "1 fo"...
  std::istringstream in(truncated);
  TraceGraph trace;
  std::string error;
  EXPECT_FALSE(trace.load(in, &error));
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
  EXPECT_TRUE(trace.nodes().empty());  // all-or-nothing
  EXPECT_TRUE(trace.edges().empty());
}

TEST(CheckLint, FailedLoadPreservesPreviousContents) {
  // A graph that already holds a good trace must survive a failed reload
  // untouched (the operator re-points anahy-lint at a bad file; the good
  // in-memory data must not be clobbered).
  std::istringstream good(
      "anahy-trace v1\n"
      "node 0 -1 0 0 -1 0 -1 0 0 main\n");
  TraceGraph trace;
  ASSERT_TRUE(trace.load(good));
  ASSERT_EQ(trace.nodes().size(), 1u);

  std::istringstream bad("anahy-trace v1\nnode not-a-number\n");
  std::string error;
  EXPECT_FALSE(trace.load(bad, &error));
  EXPECT_EQ(trace.nodes().size(), 1u) << "failed load clobbered the graph";
  EXPECT_EQ(trace.nodes()[0].label, "main");
}

TEST(CheckLint, MissingHeaderIsRejected) {
  std::istringstream in("not a trace file\n");
  TraceGraph trace;
  std::string error;
  EXPECT_FALSE(trace.load(in, &error));
  EXPECT_NE(error.find("header"), std::string::npos) << error;
  EXPECT_TRUE(trace.nodes().empty());
}

TEST(CheckLint, UnknownRecordKindIsRejectedWithLineNumber) {
  std::istringstream in(
      "anahy-trace v1\n"
      "node 0 -1 0 0 -1 0 -1 0 0\n"
      "gibberish 1 2 3\n");
  TraceGraph trace;
  std::string error;
  EXPECT_FALSE(trace.load(in, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("gibberish"), std::string::npos) << error;
  EXPECT_TRUE(trace.nodes().empty());  // all-or-nothing
}

TEST(CheckLint, MalformedEdgeKindIsRejected) {
  std::istringstream in(
      "anahy-trace v1\n"
      "edge 0 1 sideways\n");
  TraceGraph trace;
  std::string error;
  EXPECT_FALSE(trace.load(in, &error));
  EXPECT_NE(error.find("edge"), std::string::npos) << error;
}

TEST(CheckLint, FormatDiagnosticsRendersStableLines) {
  std::vector<LintDiagnostic> diags{
      {lint_code::kLeakedTask, 5, "joinable task was never joined"},
      {lint_code::kCycle, kInvalidTaskId, "cycle through fork edges"},
  };
  const std::string text = format_diagnostics(diags);
  EXPECT_NE(text.find("ANAHY-W005: task T5: joinable task was never joined"),
            std::string::npos);
  // Graph-level findings carry no task prefix.
  EXPECT_NE(text.find("ANAHY-W006: cycle through fork edges"),
            std::string::npos);
}

TEST(CheckLint, DiagnosticsAreSortedByCodeThenTask) {
  // One run that produces W003 (task 424242), W005 (leaked) and W002
  // (double join): lint output must come back sorted by code then task.
  const auto diags = lint_traced_run([] {
    athread_t a{}, leaked{};
    athread_create(&a, nullptr, trivial, nullptr);
    EXPECT_EQ(athread_join(a, nullptr), kOk);
    EXPECT_EQ(athread_join(a, nullptr), kNotFound);  // W002
    athread_create(&leaked, nullptr, trivial, nullptr);  // W005
    EXPECT_EQ(athread_join(athread_t{424242}, nullptr), kNotFound);  // W003
  });
  ASSERT_GE(diags.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      diags.begin(), diags.end(), [](const auto& a, const auto& b) {
        return a.code != b.code ? a.code < b.code : a.task < b.task;
      }));
}

}  // namespace
