// Satellite of docs/REJUV.md: an aging::Recorder sampling live pool
// gauges while other threads grow and shrink the arena underneath it.
// pool_snapshot() is a racy read of sharded relaxed counters by design;
// the contract under the sanitizer matrix (tsan/asan labels) is that a
// concurrent snapshot is *well-formed* — clamped, never wrapped — and the
// recorder built on it emits a well-formed series. This is exactly what
// JobServer::record_aging_sample() does while VPs churn the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "anahy/aging/recorder.hpp"
#include "anahy/task_pool.hpp"

namespace {

using anahy::PoolSnapshot;
using anahy::aging::Cumulative;
using anahy::aging::Recorder;

constexpr int kChurnThreads = 4;
constexpr int kSamples = 200;

/// Alloc/free churn sized to cross the thread-cache capacity so blocks
/// really travel arena -> cache -> arena (grow *and* shrink), across
/// several size classes plus the large fallthrough.
void churn(std::atomic<bool>& stop, unsigned seed) {
  std::vector<std::pair<void*, std::size_t>> held;
  held.reserve(anahy::pool_detail::kCacheCap * 2);
  std::uint32_t rng = seed * 2654435761u + 1;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 17;
    rng ^= rng << 5;
    return rng;
  };
  while (!stop.load(std::memory_order_acquire)) {
    // Burst past the cache cap, then release everything.
    for (std::size_t i = 0; i < anahy::pool_detail::kCacheCap + 32; ++i) {
      const std::size_t bytes = 64 + (next() % 2048);  // pooled and large
      held.emplace_back(
          anahy::pool_detail::pool_alloc(bytes, alignof(std::max_align_t)),
          bytes);
    }
    for (auto& [p, bytes] : held)
      anahy::pool_detail::pool_free(p, bytes, alignof(std::max_align_t));
    held.clear();
    // Hand the cache back so the arena visibly shrinks mid-run.
    if ((next() & 7u) == 0) anahy::pool_trim_thread_cache();
  }
}

TEST(AgingRecorderConcurrent, SamplesStayWellFormedUnderPoolChurn) {
  Recorder rec(/*capacity=*/0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  churners.reserve(kChurnThreads);
  for (int t = 0; t < kChurnThreads; ++t)
    churners.emplace_back([&stop, t] {
      churn(stop, static_cast<unsigned>(t + 1));
    });

  std::uint64_t fake_jobs = 0;
  for (int i = 0; i < kSamples; ++i) {
    const PoolSnapshot snap = anahy::pool_snapshot();
    Cumulative cum;
    cum.t_ns = static_cast<std::int64_t>(i + 1) * 1'000'000;
    cum.jobs_resolved = fake_jobs += 3;
    cum.heap_bytes = snap.live_bytes;
    cum.arena_bytes = snap.arena_bytes;
    cum.ready_tasks = snap.live_blocks;
    for (std::size_t c = 0; c < anahy::aging::kPoolClasses; ++c)
      cum.class_outstanding[c] = snap.classes[c].outstanding;
    rec.sample(cum);
    if (i % 16 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& c : churners) c.join();

  // Every sample landed and the series is well-formed: jobs monotonic,
  // and no clamped gauge wrapped into a "negative" huge value.
  ASSERT_EQ(rec.samples(), static_cast<std::size_t>(kSamples));
  const anahy::aging::Series& s = rec.series();
  constexpr std::uint64_t kSane = 1ull << 40;  // far above any real gauge
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_LT(s[i].heap_bytes, kSane);
    EXPECT_LT(s[i].arena_bytes, kSane);
    if (i > 0) {
      EXPECT_GE(s[i].jobs, s[i - 1].jobs);
    }
  }
}

}  // namespace
