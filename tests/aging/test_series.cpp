// anahy-series v1 persistence: round-trip fidelity, the all-or-nothing
// loader contract, and the bounded-ring eviction discipline.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "anahy/aging/series.hpp"

namespace {

using anahy::aging::kPoolClasses;
using anahy::aging::Series;
using anahy::aging::SeriesPoint;

SeriesPoint point(std::int64_t t, std::uint64_t jobs, std::uint64_t heap) {
  SeriesPoint p;
  p.t_ns = t;
  p.jobs = jobs;
  p.heap_bytes = heap;
  p.arena_bytes = heap + 512;
  p.rss_bytes = heap * 4;
  p.ready_tasks = jobs % 7;
  p.lat_ns = static_cast<std::int64_t>(1000 + jobs);
  for (std::size_t c = 0; c < kPoolClasses; ++c)
    p.class_outstanding[c] = jobs + c;
  return p;
}

TEST(AgingSeries, SaveLoadRoundTrip) {
  Series s;
  for (int i = 0; i < 5; ++i)
    s.push(point(1000 + i * 10, static_cast<std::uint64_t>(i * 3),
                 4096 + static_cast<std::uint64_t>(i) * 64));

  std::ostringstream out;
  s.save(out);
  EXPECT_NE(out.str().find("anahy-series v1"), std::string::npos);

  Series loaded;
  std::istringstream in(out.str());
  std::string error;
  ASSERT_TRUE(loaded.load(in, &error)) << error;
  ASSERT_EQ(loaded.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(loaded[i].t_ns, s[i].t_ns);
    EXPECT_EQ(loaded[i].jobs, s[i].jobs);
    EXPECT_EQ(loaded[i].heap_bytes, s[i].heap_bytes);
    EXPECT_EQ(loaded[i].arena_bytes, s[i].arena_bytes);
    EXPECT_EQ(loaded[i].rss_bytes, s[i].rss_bytes);
    EXPECT_EQ(loaded[i].ready_tasks, s[i].ready_tasks);
    EXPECT_EQ(loaded[i].lat_ns, s[i].lat_ns);
    EXPECT_EQ(loaded[i].class_outstanding, s[i].class_outstanding);
  }
}

TEST(AgingSeries, MarkRecordsRoundTripInterleavedByTimestamp) {
  Series s;
  s.push(point(100, 1, 4096));
  s.push(point(200, 2, 4160));
  s.push(point(300, 3, 4224));
  s.annotate({150, "ANAHY-A007", "rejuvenation performed: reaped 2 task(s)"});
  s.annotate({250, "ANAHY-A007", "rejuvenation performed: reaped 1 task(s)"});

  std::ostringstream out;
  s.save(out);
  const std::string text = out.str();
  // Marks are written in timeline order, between the points they follow.
  const auto p200 = text.find("point 200");
  const auto m150 = text.find("mark 150 ANAHY-A007");
  ASSERT_NE(p200, std::string::npos);
  ASSERT_NE(m150, std::string::npos);
  EXPECT_LT(m150, p200);

  Series loaded;
  std::istringstream in(text);
  std::string error;
  ASSERT_TRUE(loaded.load(in, &error)) << error;
  ASSERT_EQ(loaded.size(), 3u);
  ASSERT_EQ(loaded.annotations().size(), 2u);
  EXPECT_EQ(loaded.annotations()[0].t_ns, 150);
  EXPECT_EQ(loaded.annotations()[0].code, "ANAHY-A007");
  EXPECT_EQ(loaded.annotations()[0].detail,
            "rejuvenation performed: reaped 2 task(s)");
  EXPECT_EQ(loaded.annotations()[1].t_ns, 250);
}

TEST(AgingSeries, LoadRejectsTruncatedMark) {
  Series s;
  std::istringstream in("anahy-series v1 classes=0\nmark 100\n");
  std::string error;
  EXPECT_FALSE(s.load(in, &error));
  EXPECT_NE(error.find("mark"), std::string::npos) << error;
}

TEST(AgingSeries, RingEvictsHeadAndCountsDrops) {
  Series s(3);
  for (int i = 0; i < 7; ++i)
    s.push(point(i, static_cast<std::uint64_t>(i), 0));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dropped(), 4u);
  EXPECT_EQ(s.front().t_ns, 4);  // oldest survivors are 4, 5, 6
  EXPECT_EQ(s.back().t_ns, 6);
}

TEST(AgingSeries, LoadRejectsMissingHeader) {
  Series s;
  std::istringstream in("point 1 2 3 4 5 6 7\n");
  std::string error;
  EXPECT_FALSE(s.load(in, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(AgingSeries, LoadRejectsTruncatedPointKeepingOldContents) {
  Series s;
  s.push(point(42, 1, 2));  // pre-existing contents must survive a bad load

  std::ostringstream good;
  Series donor;
  donor.push(point(1, 1, 1));
  donor.push(point(2, 2, 2));
  donor.save(good);
  std::string text = good.str();
  // Chop the last point line mid-field.
  text.resize(text.rfind(' ') + 1);

  std::istringstream in(text);
  std::string error;
  EXPECT_FALSE(s.load(in, &error));
  EXPECT_NE(error.find("class columns"), std::string::npos) << error;
  ASSERT_EQ(s.size(), 1u);  // all-or-nothing: old contents intact
  EXPECT_EQ(s[0].t_ns, 42);
}

TEST(AgingSeries, LoadRejectsUnknownRecordAndTrailingData) {
  std::string error;
  {
    Series s;
    std::istringstream in("anahy-series v1 classes=0\nnode 1 2 3\n");
    EXPECT_FALSE(s.load(in, &error));
    EXPECT_NE(error.find("unknown record"), std::string::npos) << error;
  }
  {
    Series s;
    std::istringstream in(
        "anahy-series v1 classes=0\npoint 1 2 3 4 5 6 7 extra\n");
    EXPECT_FALSE(s.load(in, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
  }
}

TEST(AgingSeries, LoadRejectsGarbageAndBadClassCount) {
  std::string error;
  {
    Series s;
    std::istringstream in("\xAB\xCD garbage\n");
    EXPECT_FALSE(s.load(in, &error));
  }
  {
    Series s;
    std::istringstream in("anahy-series v1 classes=-3\npoint 1\n");
    EXPECT_FALSE(s.load(in, &error));
    EXPECT_NE(error.find("classes"), std::string::npos) << error;
  }
}

TEST(AgingSeries, LoadAcceptsCommentsBlanksAndForeignClassCount) {
  // A file from a build with more classes: extra columns are dropped; one
  // with fewer: missing ones read zero.
  std::ostringstream text;
  text << "anahy-series v1 classes=2\n";
  text << "# a comment\n\n";
  text << "point 10 1 100 200 400 0 999 7 8\n";
  Series s;
  std::istringstream in(text.str());
  std::string error;
  ASSERT_TRUE(s.load(in, &error)) << error;
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].class_outstanding[0], 7u);
  EXPECT_EQ(s[0].class_outstanding[1], 8u);
  for (std::size_t c = 2; c < kPoolClasses; ++c)
    EXPECT_EQ(s[0].class_outstanding[c], 0u);
}

}  // namespace
