// Recorder delta discipline: counters that reset (server drain/restart) or
// wrap must never produce a negative or wrapped-huge sample, the jobs
// column stays monotonic across generations, and idle intervals carry the
// latency proxy forward.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "anahy/aging/recorder.hpp"

namespace {

using anahy::aging::Cumulative;
using anahy::aging::Recorder;

Cumulative cum(std::int64_t t, std::uint64_t jobs, std::int64_t wait_sum,
               std::int64_t exec_sum) {
  Cumulative c;
  c.t_ns = t;
  c.jobs_resolved = jobs;
  c.queue_wait_ns_sum = wait_sum;
  c.exec_ns_sum = exec_sum;
  return c;
}

TEST(AgingRecorder, FirstSampleIsBaseline) {
  Recorder r;
  r.sample(cum(100, 50, 1000, 2000));
  ASSERT_EQ(r.samples(), 1u);
  EXPECT_EQ(r.series()[0].jobs, 0u);    // deltas start at the baseline
  EXPECT_EQ(r.series()[0].lat_ns, 0);
}

TEST(AgingRecorder, AccumulatesDeltasAndLatency) {
  Recorder r;
  r.sample(cum(0, 0, 0, 0));
  r.sample(cum(10, 4, 400, 800));   // 4 jobs, (400+800)/4 = 300 ns each
  r.sample(cum(20, 10, 1000, 2000));  // +6 jobs, (600+1200)/6 = 300 ns
  ASSERT_EQ(r.samples(), 3u);
  EXPECT_EQ(r.series()[1].jobs, 4u);
  EXPECT_EQ(r.series()[1].lat_ns, 300);
  EXPECT_EQ(r.series()[2].jobs, 10u);
  EXPECT_EQ(r.series()[2].lat_ns, 300);
}

TEST(AgingRecorder, ServerRestartNeverGoesNegative) {
  Recorder r;
  r.sample(cum(0, 0, 0, 0));
  r.sample(cum(10, 100, 10000, 20000));
  // The server was torn down and rebuilt: every cumulative counter reset.
  r.sample(cum(20, 3, 30, 60));
  ASSERT_EQ(r.samples(), 3u);
  // The reset interval contributes zero delta — not a wrapped huge value.
  EXPECT_EQ(r.series()[2].jobs, 100u);
  // The next generation's deltas resume accumulation on top.
  r.sample(cum(30, 8, 80, 160));  // +5 jobs
  EXPECT_EQ(r.series()[3].jobs, 105u);
  // The jobs column is monotonic throughout.
  for (std::size_t i = 1; i < r.samples(); ++i)
    EXPECT_GE(r.series()[i].jobs, r.series()[i - 1].jobs) << i;
}

TEST(AgingRecorder, CounterWraparoundIsClamped) {
  Recorder r;
  const std::uint64_t near_max = std::numeric_limits<std::uint64_t>::max() - 5;
  r.sample(cum(0, near_max, 0, 0));
  r.sample(cum(10, 2, 0, 0));  // wrapped past the 64-bit boundary
  // Unsigned subtraction would say "7 jobs"; the recorder refuses to guess
  // and clamps the backwards step to zero.
  EXPECT_EQ(r.series()[1].jobs, 0u);
}

TEST(AgingRecorder, IdleIntervalCarriesLatencyForward) {
  Recorder r;
  r.sample(cum(0, 0, 0, 0));
  r.sample(cum(10, 2, 1000, 1000));  // 1000 ns/job
  r.sample(cum(20, 2, 1000, 1000));  // idle: nothing resolved
  EXPECT_EQ(r.series()[1].lat_ns, 1000);
  EXPECT_EQ(r.series()[2].lat_ns, 1000);  // carried, not a fake zero
}

TEST(AgingRecorder, GaugesPassThroughAndClearResets) {
  Recorder r;
  Cumulative c = cum(5, 1, 10, 10);
  c.heap_bytes = 4096;
  c.arena_bytes = 8192;
  c.rss_bytes = 1 << 20;
  c.ready_tasks = 3;
  c.class_outstanding[0] = 7;
  r.sample(c);
  EXPECT_EQ(r.series()[0].heap_bytes, 4096u);
  EXPECT_EQ(r.series()[0].arena_bytes, 8192u);
  EXPECT_EQ(r.series()[0].rss_bytes, 1u << 20);
  EXPECT_EQ(r.series()[0].ready_tasks, 3u);
  EXPECT_EQ(r.series()[0].class_outstanding[0], 7u);

  r.clear();
  EXPECT_EQ(r.samples(), 0u);
  // After clear() the next sample is a fresh baseline, not a delta against
  // the pre-clear cumulative state.
  r.sample(cum(100, 50, 0, 0));
  EXPECT_EQ(r.series()[0].jobs, 0u);
}

TEST(AgingRecorder, RingCapacityBoundsTheSeries) {
  Recorder r(4);
  for (int i = 0; i < 10; ++i)
    r.sample(cum(i * 10, static_cast<std::uint64_t>(i), 0, 0));
  EXPECT_EQ(r.samples(), 4u);
  EXPECT_EQ(r.series().dropped(), 6u);
}

}  // namespace
