// The aging detectors and their estimators on synthetic series: clean
// workloads stay silent, each ANAHY-A00x fires on the signature it names,
// and the MF-DFA estimator separates white noise from a multiplicative
// cascade (the multifractal signature the title paper ties to aging).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "anahy/aging/analyze.hpp"

namespace {

using anahy::aging::analyze;
using anahy::aging::Analysis;
using anahy::aging::AnalyzeOptions;
using anahy::aging::mfdfa_width;
using anahy::aging::pearson;
using anahy::aging::Series;
using anahy::aging::SeriesPoint;
using anahy::aging::theil_sen_slope;
namespace code = anahy::aging::code;

bool has_code(const Analysis& a, const char* c) {
  return std::any_of(a.findings.begin(), a.findings.end(),
                     [&](const auto& f) { return f.code == c; });
}

/// Deterministic uniform noise in [-0.5, 0.5) (SplitMix-style LCG).
struct Rng {
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  double next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) /
               static_cast<double>(1ULL << 53) -
           0.5;
  }
};

/// A series of `n` samples at 10 ms cadence, 10 jobs per sample, flat
/// ~1 MiB heap with a little deterministic jitter — a healthy server.
Series clean_series(std::size_t n) {
  Series s;
  Rng rng;
  for (std::size_t i = 0; i < n; ++i) {
    SeriesPoint p;
    p.t_ns = static_cast<std::int64_t>(i) * 10'000'000;
    p.jobs = i * 10;
    p.heap_bytes =
        static_cast<std::uint64_t>(1 << 20) +
        static_cast<std::uint64_t>((rng.next() + 0.5) * 1024.0);
    p.arena_bytes = p.heap_bytes + 4096;
    p.lat_ns = 100'000 + static_cast<std::int64_t>(rng.next() * 1000.0);
    s.push(p);
  }
  return s;
}

TEST(AgingEstimators, TheilSenExactOnLineRobustToOutliers) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0);
  }
  EXPECT_NEAR(theil_sen_slope(x, y), 3.0, 1e-9);
  // A fifth of the points wildly off does not move the median slope.
  for (int i = 0; i < 100; i += 5) y[static_cast<std::size_t>(i)] += 1e6;
  EXPECT_NEAR(theil_sen_slope(x, y), 3.0, 0.2);
  // Degenerate inputs.
  EXPECT_EQ(theil_sen_slope({}, {}), 0.0);
  EXPECT_EQ(theil_sen_slope({1, 1, 1}, {1, 2, 3}), 0.0);  // no x spread
}

TEST(AgingEstimators, PearsonEndpoints) {
  std::vector<double> x;
  std::vector<double> up;
  std::vector<double> down;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    up.push_back(2.0 * i + 1);
    down.push_back(-1.0 * i);
  }
  EXPECT_NEAR(pearson(x, up), 1.0, 1e-9);
  EXPECT_NEAR(pearson(x, down), -1.0, 1e-9);
  EXPECT_EQ(pearson(x, std::vector<double>(50, 4.0)), 0.0);  // constant
}

TEST(AgingEstimators, MfdfaSeparatesNoiseFromCascade) {
  constexpr std::size_t kN = 4096;
  Rng rng;
  std::vector<double> noise(kN);
  for (double& v : noise) v = rng.next();

  // Deterministic binomial cascade: repeatedly split every segment,
  // sending 80% of its mass to one side (chosen pseudo-randomly). The
  // result is the classic multifractal measure with a wide h(q) spread.
  std::vector<double> cascade(kN, 1.0);
  for (std::size_t seg = kN; seg >= 2; seg /= 2) {
    for (std::size_t base = 0; base < kN; base += seg) {
      const bool flip = rng.next() > 0;
      const double wl = flip ? 1.6 : 0.4;  // 2p and 2(1-p), p = 0.8
      const double wr = flip ? 0.4 : 1.6;
      for (std::size_t i = 0; i < seg / 2; ++i) cascade[base + i] *= wl;
      for (std::size_t i = seg / 2; i < seg; ++i) cascade[base + i] *= wr;
    }
  }

  const auto mono = mfdfa_width(noise);
  const auto multi = mfdfa_width(cascade);
  ASSERT_TRUE(mono.ok);
  ASSERT_TRUE(multi.ok);
  EXPECT_NEAR(mono.hurst, 0.5, 0.25);  // white noise: h(2) ~ 0.5
  EXPECT_LT(mono.width, 0.6);          // ... and a narrow spectrum
  EXPECT_GT(multi.width, 1.0);         // cascade: wide spectrum
  EXPECT_GT(multi.width, mono.width + 0.5);

  // Degenerate inputs are refused, not mis-measured: a constant series
  // (the differenced form of a perfectly linear leak) has no fluctuations
  // for the detrending to scale.
  EXPECT_FALSE(mfdfa_width(std::vector<double>(16, 1.0)).ok);   // too short
  EXPECT_FALSE(mfdfa_width(std::vector<double>(512, 3.0)).ok);  // constant
}

TEST(AgingAnalyze, CleanSeriesStaysSilent) {
  const Analysis a = analyze(clean_series(200));
  EXPECT_TRUE(a.findings.empty())
      << anahy::aging::format_findings(a.findings);
  EXPECT_EQ(a.points, 200u);
  EXPECT_EQ(a.jobs, 1990u);
}

TEST(AgingAnalyze, TooShortSeriesComputesNothing) {
  const Analysis a = analyze(clean_series(8));
  EXPECT_TRUE(a.findings.empty());
  EXPECT_EQ(a.heap_slope_per_job, 0.0);
}

TEST(AgingAnalyze, HeapGrowthFiresA001) {
  Series s;
  Rng rng;
  for (std::size_t i = 0; i < 200; ++i) {
    SeriesPoint p;
    p.t_ns = static_cast<std::int64_t>(i) * 10'000'000;
    p.jobs = i * 10;
    // 200 bytes/job of sustained growth, noise on top.
    p.heap_bytes = (1 << 20) + i * 2000 +
                   static_cast<std::uint64_t>((rng.next() + 0.5) * 512.0);
    p.arena_bytes = p.heap_bytes + 4096;
    p.lat_ns = 100'000;
    s.push(p);
  }
  const Analysis a = analyze(s);
  ASSERT_TRUE(has_code(a, code::kHeapGrowth))
      << anahy::aging::format_findings(a.findings);
  EXPECT_NEAR(a.heap_slope_per_job, 200.0, 20.0);
}

TEST(AgingAnalyze, FragmentationCreepFiresA002) {
  Series s;
  for (std::size_t i = 0; i < 200; ++i) {
    SeriesPoint p;
    p.t_ns = static_cast<std::int64_t>(i) * 10'000'000;
    p.jobs = i * 10;
    p.heap_bytes = 1 << 20;  // live is flat...
    p.arena_bytes = p.heap_bytes + 100'000 + i * 2000;  // ...the arena not
    p.lat_ns = 100'000;
    s.push(p);
  }
  const Analysis a = analyze(s);
  EXPECT_TRUE(has_code(a, code::kFragmentationCreep))
      << anahy::aging::format_findings(a.findings);
  EXPECT_FALSE(has_code(a, code::kHeapGrowth));
}

TEST(AgingAnalyze, CorrelatedLatencyCreepFiresA003) {
  Series s;
  for (std::size_t i = 0; i < 200; ++i) {
    SeriesPoint p;
    p.t_ns = static_cast<std::int64_t>(i) * 10'000'000;
    p.jobs = i * 10;
    p.heap_bytes = (1 << 20) + i * 2000;
    p.arena_bytes = p.heap_bytes + 4096;
    p.lat_ns = 100'000 + static_cast<std::int64_t>(i) * 500;  // 50 ns/job
    s.push(p);
  }
  const Analysis a = analyze(s);
  EXPECT_TRUE(has_code(a, code::kLatencyCreep))
      << anahy::aging::format_findings(a.findings);
  EXPECT_GT(a.heap_lat_corr, 0.9);
}

TEST(AgingAnalyze, PoolClassLeakFiresA004NamingTheClass) {
  Series s;
  for (std::size_t i = 0; i < 200; ++i) {
    SeriesPoint p;
    p.t_ns = static_cast<std::int64_t>(i) * 10'000'000;
    p.jobs = i * 10;
    p.heap_bytes = 1 << 20;
    p.arena_bytes = p.heap_bytes + 4096;
    p.lat_ns = 100'000;
    p.class_outstanding[2] = i;  // class index 2 = 192-byte blocks
    s.push(p);
  }
  const Analysis a = analyze(s);
  ASSERT_TRUE(has_code(a, code::kPoolClassLeak))
      << anahy::aging::format_findings(a.findings);
  bool named = false;
  for (const auto& f : a.findings)
    if (f.code == code::kPoolClassLeak &&
        f.detail.find("192B") != std::string::npos)
      named = true;
  EXPECT_TRUE(named) << anahy::aging::format_findings(a.findings);
}

TEST(AgingAnalyze, GapAndCorruptSamplesFireA005) {
  {
    Series s = clean_series(64);
    SeriesPoint p = s.back();
    p.t_ns += 10'000'000'000;  // a 10 s hole in a 10 ms cadence
    p.jobs += 10;
    s.push(p);
    const Analysis a = analyze(s);
    EXPECT_TRUE(has_code(a, code::kSeriesGap))
        << anahy::aging::format_findings(a.findings);
  }
  {
    Series s = clean_series(64);
    SeriesPoint p = s.back();
    p.t_ns += 10'000'000;
    p.jobs -= 5;  // the cumulative jobs counter cannot go backwards
    s.push(p);
    const Analysis a = analyze(s);
    EXPECT_TRUE(has_code(a, code::kSeriesGap))
        << anahy::aging::format_findings(a.findings);
  }
}

TEST(AgingAnalyze, SpectrumWideningFiresA006) {
  // First half: heap increments are calm white noise. Second half: the
  // increments turn into a bursty multiplicative cascade of the same mean
  // amplitude — the "allocation behaviour became multifractal" signature.
  // Increment amplitudes are kept in the thousands of bytes so the
  // uint64 quantization of heap_bytes cannot masquerade as structure.
  constexpr std::size_t kHalf = 1024;
  Rng rng;
  std::vector<double> inc;
  for (std::size_t i = 0; i < kHalf; ++i)
    inc.push_back(10'000.0 + 600.0 * rng.next());
  std::vector<double> cascade(kHalf, 1.0);
  for (std::size_t seg = kHalf; seg >= 2; seg /= 2) {
    for (std::size_t base = 0; base < kHalf; base += seg) {
      const bool flip = rng.next() > 0;
      const double wl = flip ? 1.6 : 0.4;
      const double wr = flip ? 0.4 : 1.6;
      for (std::size_t i = 0; i < seg / 2; ++i) cascade[base + i] *= wl;
      for (std::size_t i = seg / 2; i < seg; ++i) cascade[base + i] *= wr;
    }
  }
  for (const double c : cascade) inc.push_back(10'000.0 * c);

  Series s;
  double heap = 1 << 24;
  for (std::size_t i = 0; i < inc.size(); ++i) {
    SeriesPoint p;
    p.t_ns = static_cast<std::int64_t>(i) * 10'000'000;
    p.jobs = i * 10;
    heap += inc[i];
    p.heap_bytes = static_cast<std::uint64_t>(heap);
    p.arena_bytes = p.heap_bytes + 4096;
    p.lat_ns = 100'000;
    s.push(p);
  }
  AnalyzeOptions opt;
  opt.warmup_fraction = 0;  // keep the halves aligned with the synthesis
  const Analysis a = analyze(s, opt);
  ASSERT_TRUE(a.mf_valid);
  EXPECT_TRUE(has_code(a, code::kSpectrumWidening))
      << "early " << a.mf_width_early << " late " << a.mf_width_late << "\n"
      << anahy::aging::format_findings(a.findings);
  EXPECT_GT(a.mf_width_late, a.mf_width_early);
}

TEST(AgingAnalyze, JsonPayloadCarriesFindingsAndStats) {
  Series s;
  for (std::size_t i = 0; i < 200; ++i) {
    SeriesPoint p;
    p.t_ns = static_cast<std::int64_t>(i) * 10'000'000;
    p.jobs = i * 10;
    p.heap_bytes = (1 << 20) + i * 2000;
    p.arena_bytes = p.heap_bytes + 4096;
    p.lat_ns = 100'000;
    s.push(p);
  }
  const std::string json = anahy::aging::to_json(analyze(s));
  EXPECT_NE(json.find("\"points\": 200"), std::string::npos) << json;
  EXPECT_NE(json.find("\"heap_slope_per_job\""), std::string::npos);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("ANAHY-A001"), std::string::npos) << json;
}

TEST(AgingAnalyze, AnnotationsPassThroughWithoutBecomingFindings) {
  // A rejuvenated-but-healthy series: flat heap plus A007 marks. The
  // marks must survive into the analysis (and its JSON) as provenance,
  // never as findings — the CLI still exits 0 on such a series.
  Series s;
  for (std::size_t i = 0; i < 64; ++i) {
    SeriesPoint p;
    p.t_ns = static_cast<std::int64_t>(i) * 10'000'000;
    p.jobs = i * 10;
    p.heap_bytes = 1 << 20;
    p.arena_bytes = p.heap_bytes + 4096;
    p.lat_ns = 100'000;
    s.push(p);
  }
  s.annotate({315'000'000, code::kRejuvenation, "rejuvenation performed"});

  const Analysis a = analyze(s);
  ASSERT_EQ(a.annotations.size(), 1u);
  EXPECT_EQ(a.annotations[0].code, code::kRejuvenation);
  EXPECT_TRUE(a.findings.empty())
      << anahy::aging::format_findings(a.findings);

  const std::string json = anahy::aging::to_json(a);
  EXPECT_NE(json.find("\"annotations\""), std::string::npos) << json;
  EXPECT_NE(json.find("ANAHY-A007"), std::string::npos) << json;
}

}  // namespace
