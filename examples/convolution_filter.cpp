// Example: ConvoP, the paper's image-convolution application (S3.3).
//
// Applies a named kernel ("mask") to an image - a PGM you provide or the
// deterministic synthetic test image - splitting the rows into one block
// per task, the last block absorbing the remainder.
//
//   ./build/examples/convolution_filter --kernel=sobel_x --size=512
//   ./build/examples/convolution_filter --in=photo.pgm --kernel=gaussian5 --tasks=8
//
#include <cstdio>

#include "anahy/anahy.hpp"
#include "apps/convop_app.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/timer.hpp"

int main(int argc, char** argv) {
  const benchutil::Cli cli(argc, argv);
  const int tasks = cli.get_int("tasks", 8);
  const int vps = cli.get_int("vps", 4);  // the library default in the paper
  const std::string kernel_name = cli.get("kernel", "gaussian5");
  const std::string out_path = cli.get("out", "filtered.pgm");

  image::Image src;
  if (cli.has("in")) {
    src = image::Image::read_pgm(cli.get("in", ""));
  } else {
    const int size = cli.get_int("size", 512);
    src = image::make_test_image(size, size);
  }
  const auto kernel = image::Kernel::by_name(kernel_name);
  std::printf("convolving %dx%d with %s (weight %d), %d tasks on %d VPs\n",
              src.width(), src.height(), kernel_name.c_str(), kernel.weight(),
              tasks, vps);

  anahy::Runtime rt(anahy::Options{.num_vps = vps});
  benchutil::Timer timer;
  const image::Image dst = apps::convop_anahy(rt, src, kernel, tasks);
  const double par_s = timer.elapsed_seconds();

  benchutil::Timer t_seq;
  const image::Image ref = apps::convop_sequential(src, kernel);
  const double seq_s = t_seq.elapsed_seconds();

  std::printf("anahy: %.3f s | sequential: %.3f s | identical: %s\n", par_s,
              seq_s, dst == ref ? "yes" : "NO (bug!)");
  dst.write_pgm(out_path);
  std::printf("filtered image written to %s\n", out_path.c_str());
  return dst == ref ? 0 : 1;
}
