// Quickstart: the two faces of the Anahy API.
//
//   1. The paper's POSIX-flavoured C API (athread_*): explicit void*
//      dataflow, join-number attributes.
//   2. The typed C++ layer (anahy::spawn / Handle<T>::join).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "anahy/anahy.hpp"

namespace {

// ---- Part 1: the athread C API ------------------------------------------

/// A task body, exactly like a pthread start routine.
void* square(void* arg) {
  const long n = reinterpret_cast<long>(arg);
  return reinterpret_cast<void*>(n * n);
}

void c_api_demo() {
  std::printf("== athread C API ==\n");
  // 4 virtual processors: the paper's library default.
  anahy::athread_init(4);

  // Fork 8 tasks; synchronization is only via fork/join dataflow.
  std::vector<anahy::athread_t> tasks(8);
  for (long i = 0; i < 8; ++i)
    anahy::athread_create(&tasks[static_cast<std::size_t>(i)], nullptr,
                          square, reinterpret_cast<void*>(i));

  long sum = 0;
  for (auto& th : tasks) {
    void* result = nullptr;
    anahy::athread_join(th, &result);
    sum += reinterpret_cast<long>(result);
  }
  std::printf("sum of squares 0..7 = %ld (expect 140)\n", sum);

  // The Anahy attribute extensions: a task two consumers may join.
  anahy::athread_attr_t attr;
  anahy::athread_attr_init(&attr);
  anahy::athread_attr_setjoinnumber(&attr, 2);
  anahy::athread_attr_setdatalen(&attr, sizeof(long));

  anahy::athread_t shared;
  anahy::athread_create(&shared, &attr, square,
                        reinterpret_cast<void*>(21L));
  void* a = nullptr;
  void* b = nullptr;
  anahy::athread_join(shared, &a);
  anahy::athread_join(shared, &b);  // second join allowed by the attribute
  std::printf("both joins observed 21^2 = %ld, %ld\n",
              reinterpret_cast<long>(a), reinterpret_cast<long>(b));
  anahy::athread_attr_destroy(&attr);

  const auto stats = anahy::athread_runtime()->stats();
  std::printf("runtime stats: %s\n\n", stats.to_string().c_str());
  anahy::athread_terminate();
}

// ---- Part 2: the typed C++ layer ----------------------------------------

void cpp_api_demo() {
  std::printf("== typed C++ API ==\n");
  anahy::Options opts;
  opts.num_vps = 4;
  opts.policy = anahy::PolicyKind::kWorkStealing;
  anahy::Runtime rt(opts);

  // Nested fork/join: a parallel reduction over 1..100.
  std::function<long(long, long)> range_sum = [&](long lo, long hi) -> long {
    if (hi - lo <= 8) {
      long s = 0;
      for (long i = lo; i < hi; ++i) s += i;
      return s;
    }
    const long mid = lo + (hi - lo) / 2;
    auto left = anahy::spawn(rt, range_sum, lo, mid);
    const long right = range_sum(mid, hi);
    return left.join() + right;
  };
  std::printf("sum 1..100 = %ld (expect 5050)\n", range_sum(1, 101));

  // The determinism guarantee: no mutexes and no condition variables in
  // the API means the parallel result always equals the sequential one.
  std::printf("VPs: %d total, %d worker threads (the calling thread helps "
              "while joining)\n",
              rt.num_vps(), rt.worker_threads());
}

}  // namespace

int main() {
  c_api_demo();
  cpp_api_demo();
  return 0;
}
