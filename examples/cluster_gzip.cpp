// Example: the paper's future-work scenario — Anahy on a cluster of
// nodes, shipping tasks between them ("será possível enviar e receber
// tarefas a serem executadas").
//
// Builds an N-node cluster inside this process (in-memory fabric by
// default, real TCP loopback sockets with --fabric=tcp), registers the
// gzip-chunk function on every node, forks one shippable task per chunk
// at node 0 and lets idle nodes steal work. The concatenated members are
// verified against our own inflate.
//
//   ./build/examples/cluster_gzip --nodes=3 --chunks=12 --mib=4
//   ./build/examples/cluster_gzip --fabric=tcp --latency-us=200
#include <cstdio>

#include "apps/agzip_app.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/timer.hpp"
#include "cluster/cluster_lib.hpp"
#include "compress/compress.hpp"

int main(int argc, char** argv) {
  const benchutil::Cli cli(argc, argv);
  const int nodes = cli.get_int("nodes", 3);
  const int chunks = cli.get_int("chunks", 12);
  const std::size_t mib = static_cast<std::size_t>(cli.get_int("mib", 4));
  const std::string fabric = cli.get("fabric", "memory");

  auto registry = std::make_shared<cluster::Registry>();
  registry->add("gzip_chunk", [](std::span<const std::uint8_t> in) {
    return compress::gzip_wrap(compress::deflate_compress(in),
                               compress::crc32(in),
                               static_cast<std::uint32_t>(in.size()));
  });

  cluster::Cluster::Options opts;
  opts.nodes = nodes;
  opts.fabric = fabric == "tcp" ? cluster::FabricKind::kTcp
                                : cluster::FabricKind::kMemory;
  opts.latency = std::chrono::microseconds(cli.get_int("latency-us", 0));
  opts.node.num_vps = cli.get_int("vps", 2);
  cluster::Cluster cl(opts, registry);
  std::printf("cluster: %d nodes (%s fabric), %d VPs per node\n", nodes,
              fabric.c_str(), opts.node.num_vps);

  const auto data = apps::make_binary_workload(mib << 20);
  const auto parts = apps::split_chunks(data.size(), chunks);

  // Peers start idle; they will steal from node 0's queue.
  for (int n = 1; n < nodes; ++n) cl.node(n).start();

  benchutil::Timer timer;
  std::vector<cluster::GlobalTaskId> ids;
  ids.reserve(parts.size());
  for (const auto& c : parts) {
    std::vector<std::uint8_t> payload(
        data.begin() + static_cast<std::ptrdiff_t>(c.offset),
        data.begin() + static_cast<std::ptrdiff_t>(c.offset + c.size));
    ids.push_back(cl.node(0).fork("gzip_chunk", std::move(payload)));
  }
  std::vector<std::uint8_t> gz;
  for (const auto& id : ids) {
    const auto member = cl.node(0).join(id);
    gz.insert(gz.end(), member.begin(), member.end());
  }
  const double elapsed = timer.elapsed_seconds();

  std::printf("compressed %zu MiB into %zu bytes in %.3f s (%d chunks)\n",
              mib, gz.size(), elapsed, chunks);
  for (int n = 0; n < nodes; ++n) {
    const auto s = cl.node(n).stats();
    std::printf("  node %d: dispatched %llu, received %llu, shipped out "
                "%llu, steal req sent/served %llu/%llu\n",
                n, static_cast<unsigned long long>(s.tasks_executed_local),
                static_cast<unsigned long long>(s.tasks_received),
                static_cast<unsigned long long>(s.tasks_shipped_out),
                static_cast<unsigned long long>(s.steal_requests_sent),
                static_cast<unsigned long long>(s.steal_requests_served));
  }

  const bool ok = compress::gzip_decompress(gz) == data;
  std::printf("round-trip check: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
