// Example: a REAL multi-process anahy::mesh over TCP, with the network
// misbehaving on purpose (docs/MESH.md).
//
// Run it with no arguments and it forks three worker processes, boots a
// MeshRouter over them (coordinator rank 0, workers 1..3), and pushes a
// paced job burst through the mesh while a seeded chaos schedule severs
// and heals the router's link to random workers. The cuts close worker
// start fences, force withdrawals and re-routes — and every job must
// still resolve exactly once: each worker pipes its private execution
// count back to the parent, and the demo fails unless the counts sum to
// exactly the number of resolved jobs.
//
// Replay a run:  ./build/examples/mesh_demo --seed=12345
//
// The roles also run standalone across real machines:
//
//   ./build/examples/mesh_demo --role=node --host=10.0.0.1 --port=7808 &   # x3
//   ./build/examples/mesh_demo --role=router --port=7808 --jobs=80
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "anahy/fault/fault.hpp"
#include "benchutil/cli.hpp"
#include "cluster/mesh/mesh_node.hpp"
#include "cluster/mesh/router.hpp"
#include "cluster/transport.hpp"

namespace {

using namespace cluster;
using namespace std::chrono_literals;

constexpr int kWorkers = 3;

volatile std::sig_atomic_t g_quit = 0;
void on_term(int) { g_quit = 1; }

// ------------------------------------------------------------------ node

/// Joins the mesh, serves until SIGTERM, then reports how many job
/// bodies actually ran here (to stdout, and to `count_fd` if >= 0 so a
/// forking parent can audit the fleet-wide exactly-once sum).
int run_node(const std::string& host, std::uint16_t port, int count_fd) {
  std::signal(SIGTERM, &on_term);
  auto transport = tcp_worker(host, port);
  const auto self = static_cast<std::uint32_t>(transport->node_id());
  std::printf("[node %u] joined mesh at %s:%u (pid %d)\n", self,
              host.c_str(), port, ::getpid());
  std::fflush(stdout);

  std::atomic<std::uint64_t> executed{0};
  Registry reg;
  reg.add("work", [&executed](std::span<const std::uint8_t> in) {
    executed.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(2ms);
    return std::vector<std::uint8_t>(in.begin(), in.end());
  });

  mesh::MeshNodeOptions o;
  o.self = self;
  for (std::uint32_t p = 1; p <= kWorkers; ++p)
    if (p != self) o.peers.push_back(p);
  o.routers = {0};
  o.server.runtime.num_vps = 1;
  // Thieves should help as soon as a victim has any backlog: the demo
  // bodies sleep, so the default 20 ms wait-vs-migrate budget never trips.
  o.steal_wait_budget_ns = 1'000'000;
  o.steal_min_backlog = 2;
  mesh::MeshNode node(*transport, reg, o);

  while (g_quit == 0) std::this_thread::sleep_for(20ms);
  node.stop();

  const auto n = executed.load();
  std::printf("[node %u] executed %llu job bodies\n", self,
              static_cast<unsigned long long>(n));
  std::fflush(stdout);  // the forked demo worker exits via _Exit
  if (count_fd >= 0) {
    char buf[32];
    const int len = std::snprintf(buf, sizeof buf, "%llu\n",
                                  static_cast<unsigned long long>(n));
    (void)::write(count_fd, buf, static_cast<std::size_t>(len));
    ::close(count_fd);
  }
  return 0;
}

// ---------------------------------------------------------------- router

/// Boots the router over `kWorkers` TCP workers, runs the chaos burst,
/// returns the number of jobs that resolved kOk (-1 on bootstrap error).
int run_router(std::uint16_t port, int jobs, std::uint64_t seed) {
  std::printf("[router] waiting for %d workers on port %u "
              "(ANAHY_MESH_DEMO_SEED=%llu)...\n",
              kWorkers, port, static_cast<unsigned long long>(seed));
  anahy::fault::FaultyTransport endpoint(
      tcp_coordinator(port, kWorkers + 1), anahy::fault::FaultProfile{});

  mesh::MeshRouterOptions ro;
  ro.nodes = {1, 2, 3};
  ro.default_deadline = std::chrono::microseconds{10'000'000};
  mesh::MeshRouter router(endpoint, ro);
  std::printf("[router] mesh of %d nodes up, submitting %d jobs\n",
              kWorkers, jobs);

  // Seeded chaos: twice, cut the router's link to a random worker for
  // 80-140 ms (the 50 ms start fence closes mid-cut: the victim starts
  // withdrawing instead of risking a double execution), then heal and
  // breathe. Worker<->worker links stay up, so gossip keeps flowing.
  std::atomic<bool> burst_done{false};
  std::thread chaos([&] {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> victim(1, kWorkers);
    std::uniform_int_distribution<int> cut_ms(80, 140);
    std::uniform_int_distribution<int> calm_ms(100, 150);
    for (int round = 0; round < 2 && !burst_done.load(); ++round) {
      const int v = victim(rng);
      std::printf("[router] chaos: severing link to node %d\n", v);
      endpoint.sever(v);
      std::this_thread::sleep_for(std::chrono::milliseconds(cut_ms(rng)));
      endpoint.heal(v);
      std::printf("[router] chaos: healed link to node %d\n", v);
      std::this_thread::sleep_for(std::chrono::milliseconds(calm_ms(rng)));
    }
  });

  std::vector<std::uint64_t> ids;
  ids.reserve(static_cast<std::size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    ids.push_back(router.submit(
        "work", {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)}));
    std::this_thread::sleep_for(3ms);
  }
  int ok = 0;
  for (const auto id : ids)
    if (router.wait(id).error == anahy::kOk) ++ok;
  burst_done.store(true);
  chaos.join();

  const auto c = router.counters();
  std::printf("[router] %d/%d jobs ok; %llu withdrawals, %llu re-routes, "
              "%llu reaps, %llu heals, %llu retries\n",
              ok, jobs, static_cast<unsigned long long>(c.withdrawals),
              static_cast<unsigned long long>(c.reroutes),
              static_cast<unsigned long long>(c.reaps),
              static_cast<unsigned long long>(c.heals),
              static_cast<unsigned long long>(c.retries));
  router.stop();
  return ok;
}

// ------------------------------------------------------------------ demo

/// Forks the workers, runs the router, audits the exactly-once sum.
int run_demo(std::uint16_t port, int jobs, std::uint64_t seed) {
  int pipes[kWorkers][2];
  pid_t pids[kWorkers];
  for (int i = 0; i < kWorkers; ++i) {
    if (::pipe(pipes[i]) != 0) {
      std::perror("pipe");
      return 2;
    }
    pids[i] = ::fork();
    if (pids[i] < 0) {
      std::perror("fork");
      return 2;
    }
    if (pids[i] == 0) {  // child: become a worker, report via the pipe
      for (int j = 0; j <= i; ++j) ::close(pipes[j][0]);
      for (int j = 0; j < i; ++j) ::close(pipes[j][1]);
      std::_Exit(run_node("127.0.0.1", port, pipes[i][1]));
    }
    ::close(pipes[i][1]);
  }

  const int ok = run_router(port, jobs, seed);

  // Burst resolved: tell the workers to wind down and collect their
  // private execution tallies.
  for (int i = 0; i < kWorkers; ++i) ::kill(pids[i], SIGTERM);
  unsigned long long total = 0;
  for (int i = 0; i < kWorkers; ++i) {
    char buf[32];
    ssize_t len = 0, r;
    while ((r = ::read(pipes[i][0], buf + len,
                       sizeof buf - 1 - static_cast<std::size_t>(len))) > 0)
      len += r;
    buf[len] = '\0';
    ::close(pipes[i][0]);
    total += std::strtoull(buf, nullptr, 10);
    int status = 0;
    ::waitpid(pids[i], &status, 0);
  }

  const bool exact = static_cast<unsigned long long>(ok) == total;
  std::printf("[demo] %d jobs resolved ok, %llu bodies executed across the "
              "fleet -> exactly-once %s (seed %llu)\n",
              ok, total, exact ? "HOLDS" : "VIOLATED",
              static_cast<unsigned long long>(seed));
  return (ok == jobs && exact) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Cli cli(argc, argv);
  const std::string role = cli.get("role", "demo");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 7808));
  const int jobs = cli.get_int("jobs", 80);
  const auto seed = [&]() -> std::uint64_t {
    const int s = cli.get_int("seed", 0);
    return s != 0 ? static_cast<std::uint64_t>(s) : std::random_device{}();
  }();

  if (role == "node") return run_node(cli.get("host", "127.0.0.1"), port, -1);
  if (role == "router") {
    const int ok = run_router(port, jobs, seed);
    return ok == jobs ? 0 : 1;
  }
  if (role == "demo") return run_demo(port, jobs, seed);
  std::fprintf(stderr, "--role must be demo, node or router\n");
  return 2;
}
