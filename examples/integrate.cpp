// Example: numerical integration with anahy::parallel_reduce.
//
// Approximates pi = integral of 4/(1+x^2) over [0,1] with the midpoint
// rule, split across Anahy tasks, and shows that the parallel result is
// bit-identical to the sequential one (deterministic range-ordered
// combination - no floating-point reduction nondeterminism).
//
//   ./build/examples/integrate --steps=20000000 --tasks=16 --vps=4
#include <cmath>
#include <cstdio>

#include "anahy/anahy.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/timer.hpp"

int main(int argc, char** argv) {
  const benchutil::Cli cli(argc, argv);
  const long steps = cli.get_int("steps", 20'000'000);
  const int tasks = cli.get_int("tasks", 16);
  const int vps = cli.get_int("vps", 4);
  const double h = 1.0 / static_cast<double>(steps);

  const auto f = [h](long i) {
    const double x = (static_cast<double>(i) + 0.5) * h;
    return 4.0 / (1.0 + x * x);
  };

  anahy::Runtime rt(anahy::Options{.num_vps = vps});
  benchutil::Timer t_par;
  const double par = h * anahy::parallel_reduce(
                             rt, 0, steps, tasks, 0.0, f,
                             [](double a, double b) { return a + b; });
  const double par_s = t_par.elapsed_seconds();

  benchutil::Timer t_seq;
  double seq = 0.0;
  {
    // Same split, same order, no tasks: must be bit-identical.
    for (const auto r : anahy::split_range(0, steps, tasks)) {
      double acc = 0.0;
      for (long i = r.begin; i < r.end; ++i) acc += f(i);
      seq += acc;
    }
    seq *= h;
  }
  const double seq_s = t_seq.elapsed_seconds();

  std::printf("pi ~ %.15f (error %.2e) with %ld steps, %d tasks, %d VPs\n",
              par, std::abs(par - M_PI), steps, tasks, vps);
  std::printf("parallel: %.3f s | sequential: %.3f s | bit-identical: %s\n",
              par_s, seq_s, par == seq ? "yes" : "NO");
  return par == seq ? 0 : 1;
}
