// job_server: walkthrough of the anahy::serve subsystem — one resident
// runtime serving many concurrent clients.
//
// Eight client threads submit jobs in a high/normal/batch mix; each job is
// a small fork/join DAG (its forks inherit the job's context, class and
// all). On top of the steady load the demo shows the rest of the service
// surface:
//
//   * a checked job (JobSpec::check) whose seeded determinacy race comes
//     back attributed to THAT job in its JobResult (ANAHY-R001),
//   * an already-expired deadline resolving kTimedOut without running,
//   * the /metrics-style counter dump and the observe exposition
//     (per-VP telemetry + derived gauges + anomaly flags),
//   * drain() + a saved `anahy-trace v3` (profile mode: per-task VP
//     identity and stamped fork/join edges, the anahy-profile input) that
//     the DAG linter verifies is leak-free (no ANAHY-W005: drain finishes
//     queued work, never drops it),
//   * a recorded memory-state series (`anahy-series v1`, docs/AGING.md)
//     saved to job_server.series — the anahy-aging input CI lints.
//
// The demo is also an assertion harness: every handle must resolve, every
// completion callback must fire exactly once, the final trace must lint
// clean, and the aging report must have no findings — it exits non-zero
// otherwise.
//
// Build & run:
//   cmake -B build && cmake --build build --target job_server anahy-lint
//   ./build/examples/job_server            # prints the walkthrough
//   ./build/tools/anahy-lint --summary --jobs job_server.trace
//   ./build/tools/anahy-profile --out=job_server.json job_server.trace
//   ./build/tools/anahy-aging --summary job_server.series
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "anahy/serve/job_server.hpp"
#include "anahy/trace_analysis.hpp"

namespace {

using namespace anahy;
using namespace anahy::serve;

constexpr int kClients = 8;
constexpr int kJobsPerClient = 25;

long g_racy = 0;  // the checked job's seeded shared variable

/// One client job: fork two subtasks that sum halves of a local array,
/// join them, combine. The forks inherit the job's context, so they are
/// scheduled under the job's priority class and counted in its stats.
void* sum_job(void* in) {
  Runtime& rt = *static_cast<Runtime*>(in);
  long data[64];
  for (int i = 0; i < 64; ++i) data[i] = i;
  const auto part = [](void* p) -> void* {
    long* range = static_cast<long*>(p);
    long sum = 0;
    for (long i = range[0]; i < range[1]; ++i) sum += i;
    return reinterpret_cast<void*>(sum);
  };
  long lo[2] = {0, 32};
  long hi[2] = {32, 64};
  TaskPtr a = rt.fork(part, lo);
  TaskPtr b = rt.fork(part, hi);
  void* ra = nullptr;
  void* rb = nullptr;
  rt.join(a, &ra);
  rt.join(b, &rb);
  (void)data;
  return reinterpret_cast<void*>(reinterpret_cast<long>(ra) +
                                 reinterpret_cast<long>(rb));
}

/// Checked job body: two forks write the same location with no join
/// ordering them — a determinacy race the per-job detector must report.
void* racy_job(void* in) {
  Runtime& rt = *static_cast<Runtime*>(in);
  const auto bump = [](void*) -> void* {
    check::write(&g_racy, sizeof g_racy);
    ++g_racy;
    return nullptr;
  };
  TaskPtr a = rt.fork(bump, nullptr);
  TaskPtr b = rt.fork(bump, nullptr);
  rt.join(a, nullptr);
  rt.join(b, nullptr);
  return nullptr;
}

Priority class_of(int i) {
  switch (i % 3) {
    case 0: return Priority::kHigh;
    case 1: return Priority::kNormal;
    default: return Priority::kBatch;
  }
}

}  // namespace

int main() {
  ServerOptions opts;
  opts.runtime.num_vps = 4;
  opts.runtime.profile = true;  // spans + stamped edges (implies trace)
  opts.check = true;  // allow per-job JobSpec::check opt-in
  JobServer server(std::move(opts));
  server.record_aging_sample();  // series baseline, before any load

  // --- 1. Eight concurrent clients, mixed priority classes. -------------
  std::atomic<long> callbacks{0};
  std::atomic<long> completed_sum{0};
  std::vector<std::vector<JobHandle>> handles(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kJobsPerClient; ++i) {
        JobSpec spec;
        spec.priority = class_of(c + i);
        spec.label = "sum";
        spec.body = sum_job;
        spec.input = &server.runtime();
        spec.on_complete = [&](const JobResult& r) {
          callbacks.fetch_add(1);
          completed_sum.fetch_add(reinterpret_cast<long>(r.value));
        };
        handles[c].push_back(server.submit(std::move(spec)));
      }
    });
  }
  // Sample the memory-state series on a steady cadence while the load
  // runs, and keep the cadence through a short idle tail so the saved
  // series has enough points to analyze (the aging analyzers assume
  // roughly periodic samples; an event-driven burst would read as series
  // gaps, and this burst outruns any humane sampling interval).
  int samples = 0;
  while (callbacks.load() < kClients * kJobsPerClient || samples < 32) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    server.record_aging_sample();
    ++samples;
  }
  for (auto& t : clients) t.join();

  // --- 2. A checked job: the race is reported on ITS result. ------------
  JobSpec checked;
  checked.body = racy_job;
  checked.input = &server.runtime();
  checked.check = true;
  checked.label = "racy";
  JobHandle racy = server.submit(std::move(checked));

  // --- 3. A job whose deadline already passed: never runs. --------------
  JobSpec late;
  late.body = sum_job;
  late.input = &server.runtime();
  late.timeout_ns = 1;  // expires before the dispatcher can start it
  JobHandle timed_out = server.submit(std::move(late));

  // --- Verify every handle. ---------------------------------------------
  constexpr long kExpectedSum = 63 * 64 / 2;  // sum 0..63 per job
  long ok = 0;
  for (auto& per_client : handles)
    for (auto& h : per_client) {
      if (h.wait() != kOk ||
          reinterpret_cast<long>(h.result().value) != kExpectedSum) {
        std::fprintf(stderr, "FATAL: lost or wrong sum job\n");
        return 1;
      }
      ++ok;
    }
  if (racy.wait() != kOk || racy.result().races.empty()) {
    std::fprintf(stderr, "FATAL: checked job reported no race\n");
    return 1;
  }
  if (timed_out.wait() != kTimedOut) {
    std::fprintf(stderr, "FATAL: expired job did not time out\n");
    return 1;
  }
  server.drain();  // callbacks have all fired once drain returns
  if (callbacks.load() != kClients * kJobsPerClient ||
      completed_sum.load() != kExpectedSum * kClients * kJobsPerClient) {
    std::fprintf(stderr, "FATAL: completion callbacks lost or doubled\n");
    return 1;
  }

  std::printf("%d clients x %d jobs: all %ld handles resolved kOk, "
              "callbacks fired exactly once\n",
              kClients, kJobsPerClient, ok);
  const JobStats rs = racy.result().stats;
  std::printf("checked job #%llu: %zu race report(s), %llu task(s)\n",
              static_cast<unsigned long long>(racy.id()),
              racy.result().races.size(),
              static_cast<unsigned long long>(rs.tasks_executed));
  for (const auto& r : racy.result().races)
    std::printf("  %s\n", r.to_string().c_str());
  std::printf("expired job #%llu resolved %s without running (%llu tasks)\n",
              static_cast<unsigned long long>(timed_out.id()),
              to_string(JobState::kDone),
              static_cast<unsigned long long>(
                  timed_out.result().stats.tasks_executed));

  // observe_text = per-VP telemetry exposition + the /metrics counters.
  std::printf("\n--- observe ---\n%s", server.observe_text().c_str());

  // --- 4. The drained trace must be leak-free (no ANAHY-W005). ----------
  {
    std::ofstream out("job_server.trace");
    server.runtime().trace().save(out);
  }
  const auto diags = lint_trace(server.runtime().trace());
  if (!diags.empty()) {
    std::fprintf(stderr, "FATAL: drained server trace has diagnostics:\n%s",
                 format_diagnostics(diags).c_str());
    return 1;
  }
  std::printf("\ntrace: %zu node(s), lint clean (no leaked tasks) — saved "
              "to job_server.trace\n",
              server.runtime().trace().nodes().size());

  // --- 5. The aging series must load back and report healthy. -----------
  const aging::Series series = server.aging_series();
  {
    std::ofstream out("job_server.series");
    series.save(out);
  }
  // Stall-sized A005 floor: the 200 µs cadence above is honest data, but a
  // scheduler stall on a time-shared (or sanitizer-slowed) host can dwarf
  // the median interval without meaning the series is corrupt. Gap
  // detection itself is pinned by tests/aging/test_analyze.
  aging::AnalyzeOptions aging_opts;
  aging_opts.gap_min_ns = 1'000'000'000;
  const aging::Analysis aging_report = server.aging_report(aging_opts);
  if (!aging_report.findings.empty()) {
    std::fprintf(stderr, "FATAL: healthy demo tripped aging detectors:\n%s",
                 aging::format_findings(aging_report.findings).c_str());
    return 1;
  }
  std::printf("aging: %zu sample(s), report clean — saved to "
              "job_server.series\n",
              series.size());
  return 0;
}
