// Example: agzip, the paper's parallel file compressor (S3.2).
//
// Compresses a file (or a generated synthetic workload) by splitting it
// into equal streams, compressing each stream in an Anahy task (CRC-32 +
// DEFLATE), and writing gzip members in order - the output is accepted by
// standard `gzip -d`, exactly as the paper requires.
//
//   ./build/examples/parallel_gzip --in=/path/to/file --out=file.gz
//   ./build/examples/parallel_gzip --mib=8 --tasks=8 --vps=4
#include <cstdio>
#include <fstream>
#include <vector>

#include "anahy/anahy.hpp"
#include "apps/agzip_app.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/timer.hpp"

namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Cli cli(argc, argv);
  const int tasks = cli.get_int("tasks", 8);
  const int vps = cli.get_int("vps", 4);
  const std::string out_path = cli.get("out", "workload.gz");

  std::vector<std::uint8_t> data;
  if (cli.has("in")) {
    data = read_file(cli.get("in", ""));
    std::printf("input: %s (%zu bytes)\n", cli.get("in", "").c_str(),
                data.size());
  } else {
    const std::size_t mib = static_cast<std::size_t>(cli.get_int("mib", 8));
    data = apps::make_binary_workload(mib << 20);
    std::printf("input: synthetic binary workload (%zu MiB)\n", mib);
  }

  anahy::Runtime rt(anahy::Options{.num_vps = vps});
  benchutil::Timer timer;
  const auto gz = apps::agzip_anahy(rt, data, tasks);
  const double elapsed = timer.elapsed_seconds();

  std::printf("compressed %zu -> %zu bytes (ratio %.3f) in %.3f s, "
              "%d streams on %d VPs\n",
              data.size(), gz.size(),
              data.empty() ? 0.0
                           : static_cast<double>(gz.size()) /
                                 static_cast<double>(data.size()),
              elapsed, tasks, vps);
  std::printf("gzip members: %zu | whole-file CRC32 (combined): %08x\n",
              compress::gzip_member_count(gz),
              apps::chunked_crc(data, tasks));

  // Self-check: our own inflate must reproduce the input bit-for-bit.
  const bool ok = compress::gzip_decompress(gz) == data;
  std::printf("round-trip check: %s\n", ok ? "OK" : "FAILED");

  std::ofstream out(out_path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(gz.data()),
            static_cast<std::streamsize>(gz.size()));
  std::printf("wrote %s (try: gzip -t %s)\n", out_path.c_str(),
              out_path.c_str());
  return ok ? 0 : 1;
}
