// race_demo: a program with a seeded determinacy race that the
// anahy::check detector flags, plus a leaked task for the DAG linter.
//
// Two forked tasks accumulate into the SAME variable with no join between
// them - under Anahy's model that is a determinacy race: the final value
// depends on the schedule, which breaks the runtime's "parallel result ==
// sequential result" guarantee. The demo runs in serial-elision mode
// (1 VP), where a single execution certifies every schedule.
//
// Build & run:
//   cmake -B build && cmake --build build --target race_demo anahy-lint
//   ./build/examples/race_demo          # prints the ANAHY-R001 report
//   ./build/tools/anahy-lint race_demo.trace   # replays the saved trace
#include <cstdio>
#include <fstream>

#include "anahy/anahy.hpp"
#include "anahy/trace_analysis.hpp"

namespace {

long g_accumulator = 0;

/// Racy task body: read-modify-write of the shared accumulator, declared
/// to the checker via the instrumentation entry points.
void* add_unsynchronized(void* arg) {
  const long n = reinterpret_cast<long>(arg);
  anahy::check::read(&g_accumulator, sizeof g_accumulator);
  const long cur = g_accumulator;
  anahy::check::write(&g_accumulator, sizeof g_accumulator);
  g_accumulator = cur + n;
  return nullptr;
}

}  // namespace

int main() {
  anahy::Options opts;
  opts.num_vps = 1;  // serial elision: canonical detection mode
  opts.trace = true;
  opts.check = true;
  anahy::athread_init_opts(opts);

  // The seeded race: both tasks mutate g_accumulator; the fork/join graph
  // does not order them (they are only joined afterwards).
  anahy::athread_t a{};
  anahy::athread_t b{};
  anahy::athread_create(&a, nullptr, add_unsynchronized,
                        reinterpret_cast<void*>(1L));
  anahy::athread_create(&b, nullptr, add_unsynchronized,
                        reinterpret_cast<void*>(2L));
  anahy::athread_join(a, nullptr);
  anahy::athread_join(b, nullptr);

  // A task that is never joined: the linter reports it as leaked (W005).
  anahy::athread_t leaked{};
  anahy::athread_create(&leaked, nullptr, add_unsynchronized,
                        reinterpret_cast<void*>(0L));

  const auto races = anahy::check::reports();
  std::printf("detector found %zu race(s):\n", races.size());
  for (const auto& r : races) std::printf("  %s\n", r.to_string().c_str());

  // Save the trace so anahy-lint can replay it offline.
  {
    std::ofstream out("race_demo.trace");
    anahy::athread_runtime()->trace().save(out);
  }
  const auto diags =
      anahy::lint_trace(anahy::athread_runtime()->trace());
  std::printf("linter diagnostics (also in race_demo.trace):\n%s",
              anahy::format_diagnostics(diags).c_str());

  anahy::athread_terminate();
  return races.empty() ? 1 : 0;  // the demo EXPECTS the race to be caught
}
