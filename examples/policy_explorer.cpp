// Example: exploring the pluggable scheduler (paper S2.2).
//
// Runs the same irregular workload under each ready-list policy and
// prints the executive-kernel statistics side by side, making the
// scheduling behaviour observable: FIFO executes breadth-first, LIFO
// depth-first, work-stealing keeps forks local and steals when idle.
//
//   ./build/examples/policy_explorer --vps=4 --tasks=64
#include <cstdio>

#include "anahy/anahy.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/table.hpp"
#include "benchutil/timer.hpp"

namespace {

/// Irregular fan-out: task i spins proportionally to (i % 8)^2.
void run_workload(anahy::Runtime& rt, int tasks) {
  std::vector<anahy::Handle<long>> handles;
  handles.reserve(static_cast<std::size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    handles.push_back(anahy::spawn(rt, [i] {
      volatile long acc = 0;
      const long spins = 1000L * (i % 8) * (i % 8);
      for (long k = 0; k < spins; ++k) acc = acc + k;
      return static_cast<long>(acc);
    }));
  }
  for (auto& h : handles) (void)h.join();
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Cli cli(argc, argv);
  const int vps = cli.get_int("vps", 4);
  const int tasks = cli.get_int("tasks", 64);

  benchutil::Table table({"policy", "time (s)", "joins inlined", "helped",
                          "slept", "steals", "ready peak"});
  for (const auto policy :
       {anahy::PolicyKind::kFifo, anahy::PolicyKind::kLifo,
        anahy::PolicyKind::kWorkStealing}) {
    anahy::Options opts;
    opts.num_vps = vps;
    opts.policy = policy;
    anahy::Runtime rt(opts);
    benchutil::Timer timer;
    run_workload(rt, tasks);
    const double elapsed = timer.elapsed_seconds();
    const auto s = rt.stats();
    table.add_row({to_string(policy), benchutil::Table::num(elapsed),
                   std::to_string(s.joins_inlined),
                   std::to_string(s.joins_helped),
                   std::to_string(s.joins_slept), std::to_string(s.steals),
                   std::to_string(s.ready_peak)});
  }
  std::printf("%d irregular tasks on %d VPs under each policy:\n%s", tasks,
              vps, table.to_text().c_str());
  return 0;
}
