// Example: a REAL multi-process Anahy cluster (the paper's target
// deployment: nodes exchanging messages and tasks over the network).
//
// Start one coordinator and any number of workers, in separate processes
// (or separate machines - replace 127.0.0.1 with the coordinator's IP):
//
//   ./build/examples/cluster_multiprocess --role=worker --host=127.0.0.1 --port=7707 &
//   ./build/examples/cluster_multiprocess --role=worker --host=127.0.0.1 --port=7707 &
//   ./build/examples/cluster_multiprocess --role=coordinator --port=7707 --nodes=3
//
// The coordinator compresses a synthetic file by forking one gzip task
// per chunk; idle workers steal chunks over TCP, results stream back, and
// the coordinator verifies the output and shuts the cluster down.
#include <unistd.h>

#include <cstdio>

#include "apps/agzip_app.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/timer.hpp"
#include "cluster/cluster_lib.hpp"
#include "compress/compress.hpp"

namespace {

std::shared_ptr<cluster::Registry> demo_registry() {
  auto reg = std::make_shared<cluster::Registry>();
  reg->add("gzip_chunk", [](std::span<const std::uint8_t> in) {
    return compress::gzip_wrap(compress::deflate_compress(in),
                               compress::crc32(in),
                               static_cast<std::uint32_t>(in.size()));
  });
  return reg;
}

int run_worker(const std::string& host, std::uint16_t port, int vps) {
  std::printf("[worker %d] joining cluster at %s:%u...\n", ::getpid(),
              host.c_str(), port);
  cluster::ClusterNode node(cluster::tcp_worker(host, port), demo_registry(),
                            {.num_vps = vps});
  std::printf("[worker %d] joined as node %d of %d; serving\n", ::getpid(),
              node.id(), node.cluster_size());
  node.serve();  // returns when the coordinator broadcasts shutdown
  const auto s = node.stats();
  std::printf("[worker %d] done: executed %llu tasks (%llu stolen in)\n",
              ::getpid(),
              static_cast<unsigned long long>(s.tasks_executed_local),
              static_cast<unsigned long long>(s.tasks_received));
  return 0;
}

int run_coordinator(std::uint16_t port, int nodes, int vps,
                    std::size_t mib, int chunks) {
  std::printf("[coordinator] waiting for %d workers on port %u...\n",
              nodes - 1, port);
  cluster::ClusterNode node(cluster::tcp_coordinator(port, nodes),
                            demo_registry(), {.num_vps = vps});
  std::printf("[coordinator] cluster of %d nodes up\n", node.cluster_size());

  const auto data = apps::make_binary_workload(mib << 20);
  const auto parts = apps::split_chunks(data.size(), chunks);

  benchutil::Timer timer;
  std::vector<cluster::GlobalTaskId> ids;
  for (const auto& c : parts) {
    std::vector<std::uint8_t> payload(
        data.begin() + static_cast<std::ptrdiff_t>(c.offset),
        data.begin() + static_cast<std::ptrdiff_t>(c.offset + c.size));
    ids.push_back(node.fork("gzip_chunk", std::move(payload)));
  }
  std::vector<std::uint8_t> gz;
  for (const auto& id : ids) {
    const auto member = node.join(id);
    gz.insert(gz.end(), member.begin(), member.end());
  }
  const double elapsed = timer.elapsed_seconds();

  const bool ok = compress::gzip_decompress(gz) == data;
  const auto s = node.stats();
  std::printf("[coordinator] %zu MiB -> %zu bytes in %.3f s; shipped %llu "
              "of %d chunks to workers; round-trip %s\n",
              mib, gz.size(), elapsed,
              static_cast<unsigned long long>(s.tasks_shipped_out), chunks,
              ok ? "OK" : "FAILED");
  node.broadcast_shutdown();
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::Cli cli(argc, argv);
  const std::string role = cli.get("role", "coordinator");
  const auto port = static_cast<std::uint16_t>(cli.get_int("port", 7707));
  const int vps = cli.get_int("vps", 2);

  if (role == "worker")
    return run_worker(cli.get("host", "127.0.0.1"), port, vps);
  if (role == "coordinator")
    return run_coordinator(port, cli.get_int("nodes", 2), vps,
                           static_cast<std::size_t>(cli.get_int("mib", 2)),
                           cli.get_int("chunks", 8));
  std::fprintf(stderr, "--role must be coordinator or worker\n");
  return 2;
}
