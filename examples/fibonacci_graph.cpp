// Example: the paper's Fibonacci stress test (S3.4), with the execution
// graph made visible.
//
// Each recursive call forks a task, so fib(n) creates fib(n+1)-1 tasks and
// as many joins - the worst case for synchronization overhead. With
// --trace, the run also dumps the task graph (paper Figure 5) as DOT.
//
//   ./build/examples/fibonacci_graph --n=20 --vps=4
//   ./build/examples/fibonacci_graph --n=8 --trace --dot=fib.dot
#include <cstdio>

#include "anahy/anahy.hpp"
#include "anahy/trace_analysis.hpp"
#include "apps/fib_app.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/timer.hpp"

int main(int argc, char** argv) {
  const benchutil::Cli cli(argc, argv);
  const long n = cli.get_int("n", 20);
  const int vps = cli.get_int("vps", 4);
  const bool trace = cli.get_bool("trace", false);

  anahy::Options opts;
  opts.num_vps = vps;
  opts.trace = trace;
  anahy::Runtime rt(opts);

  benchutil::Timer timer;
  const long result = apps::fib_anahy(rt, n);
  const double elapsed = timer.elapsed_seconds();

  std::printf("fib(%ld) = %ld in %.4f s on %d VPs\n", n, result, elapsed, vps);
  std::printf("tasks forked: %ld (formula fib(n+1)-1)\n",
              apps::fib_task_count(n));
  std::printf("stats: %s\n", rt.stats().to_string().c_str());

  // Cross-check against the sequential recursion.
  const long expect = apps::fib_sequential(n);
  std::printf("sequential check: %s\n", result == expect ? "OK" : "FAILED");

  if (trace) {
    // Post-mortem schedule analysis from the trace.
    const auto intervals = anahy::exec_intervals(rt.trace());
    std::printf("\nschedule analysis:\n");
    std::printf("  executed tasks: %zu, peak concurrency: %zu\n",
                intervals.size(), anahy::max_concurrency(intervals));
    std::printf("  work/span (average parallelism the graph supports): %.2f\n",
                anahy::average_parallelism(rt.trace()));
    std::printf("  critical path length: %zu tasks\n",
                anahy::critical_path(rt.trace()).size());
    if (cli.has("gantt")) {
      const std::string gantt_path = cli.get("gantt", "fib_gantt.csv");
      if (std::FILE* f = std::fopen(gantt_path.c_str(), "w")) {
        std::fputs(anahy::gantt_csv(rt.trace()).c_str(), f);
        std::fclose(f);
        std::printf("  Gantt CSV written to %s\n", gantt_path.c_str());
      }
    }

    const std::string dot_path = cli.get("dot", "fib.dot");
    if (std::FILE* f = std::fopen(dot_path.c_str(), "w")) {
      std::fputs(rt.trace().to_dot().c_str(), f);
      std::fclose(f);
      std::printf("task graph (%zu nodes) written to %s - render with\n"
                  "  dot -Tpng %s -o fib.png\n",
                  rt.trace().nodes().size(), dot_path.c_str(),
                  dot_path.c_str());
    }
  }
  return result == expect ? 0 : 1;
}
