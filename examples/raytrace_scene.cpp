// Example: the paper's Ray-Tracer workload end-to-end.
//
// Renders the procedural benchmark scene with the split-compute-merge
// strategy (S3.1 of the paper): the image is cut into row bands, one
// Anahy task per band, and the shared framebuffer is the merge. Writes a
// PPM you can open with any image viewer.
//
//   ./build/examples/raytrace_scene --size=512 --tasks=256 --vps=4 --out=scene.ppm
//
#include <cstdio>

#include "anahy/anahy.hpp"
#include "apps/raytrace_app.hpp"
#include "raytracer/scene_file.hpp"
#include "benchutil/cli.hpp"
#include "benchutil/timer.hpp"

int main(int argc, char** argv) {
  const benchutil::Cli cli(argc, argv);
  const int size = cli.get_int("size", 384);
  const int tasks = cli.get_int("tasks", 256);  // the paper's fixed count
  const int vps = cli.get_int("vps", 4);
  const int complexity = cli.get_int("complexity", 100);
  const std::string out = cli.get("out", "scene.ppm");

  // --scene=file.scn renders a user scene (see raytracer/scene_file.hpp
  // for the text format); otherwise the procedural benchmark scene.
  const raytracer::BenchScene bench = [&] {
    if (cli.has("scene")) {
      const auto sf = raytracer::load_scene_file(cli.get("scene", ""));
      return raytracer::BenchScene{sf.scene, sf.camera(1.0)};
    }
    return raytracer::build_bench_scene(complexity);
  }();
  std::printf("rendering %dx%d (%zu objects), %d tasks on %d VPs...\n", size,
              size, bench.scene.objects.size(), tasks, vps);

  // Sequential reference first, to show the merge is exact.
  raytracer::Framebuffer seq(size, size);
  benchutil::Timer t_seq;
  apps::raytrace_sequential(bench.scene, bench.camera, seq);
  const double seq_s = t_seq.elapsed_seconds();

  raytracer::Framebuffer par(size, size);
  anahy::Runtime rt(anahy::Options{.num_vps = vps});
  benchutil::Timer t_par;
  apps::raytrace_anahy(rt, bench.scene, bench.camera, par, tasks);
  const double par_s = t_par.elapsed_seconds();

  std::printf("sequential: %.3f s | anahy: %.3f s | identical image: %s\n",
              seq_s, par_s, par == seq ? "yes" : "NO (bug!)");
  const auto stats = rt.stats();
  std::printf("tasks=%llu joins=%llu (inlined %llu, helped %llu) "
              "continuations=%llu\n",
              static_cast<unsigned long long>(stats.tasks_created),
              static_cast<unsigned long long>(stats.joins_total),
              static_cast<unsigned long long>(stats.joins_inlined),
              static_cast<unsigned long long>(stats.joins_helped),
              static_cast<unsigned long long>(stats.continuations));

  par.write_ppm(out);
  std::printf("image written to %s\n", out.c_str());
  return par == seq ? 0 : 1;
}
