file(REMOVE_RECURSE
  "CMakeFiles/ext_cluster_scaling.dir/ext_cluster_scaling.cpp.o"
  "CMakeFiles/ext_cluster_scaling.dir/ext_cluster_scaling.cpp.o.d"
  "ext_cluster_scaling"
  "ext_cluster_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cluster_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
