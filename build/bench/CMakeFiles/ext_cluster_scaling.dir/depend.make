# Empty dependencies file for ext_cluster_scaling.
# This may be replaced when dependencies are built.
