# Empty dependencies file for table07_gzip_anahy_mono.
# This may be replaced when dependencies are built.
