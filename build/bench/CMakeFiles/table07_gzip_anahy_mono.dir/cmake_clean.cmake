file(REMOVE_RECURSE
  "CMakeFiles/table07_gzip_anahy_mono.dir/table07_gzip_anahy_mono.cpp.o"
  "CMakeFiles/table07_gzip_anahy_mono.dir/table07_gzip_anahy_mono.cpp.o.d"
  "table07_gzip_anahy_mono"
  "table07_gzip_anahy_mono.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_gzip_anahy_mono.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
