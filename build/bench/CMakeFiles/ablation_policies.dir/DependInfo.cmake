
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_policies.cpp" "bench/CMakeFiles/ablation_policies.dir/ablation_policies.cpp.o" "gcc" "bench/CMakeFiles/ablation_policies.dir/ablation_policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/benchcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/compress.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/image.dir/DependInfo.cmake"
  "/root/repo/build/src/raytracer/CMakeFiles/raytracer.dir/DependInfo.cmake"
  "/root/repo/build/src/simsched/CMakeFiles/simsched.dir/DependInfo.cmake"
  "/root/repo/build/src/anahy/CMakeFiles/anahy.dir/DependInfo.cmake"
  "/root/repo/build/src/benchutil/CMakeFiles/benchutil.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
