file(REMOVE_RECURSE
  "libbenchcommon.a"
)
