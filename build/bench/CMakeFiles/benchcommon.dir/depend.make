# Empty dependencies file for benchcommon.
# This may be replaced when dependencies are built.
