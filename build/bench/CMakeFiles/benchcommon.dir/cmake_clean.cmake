file(REMOVE_RECURSE
  "CMakeFiles/benchcommon.dir/common/bench_common.cpp.o"
  "CMakeFiles/benchcommon.dir/common/bench_common.cpp.o.d"
  "libbenchcommon.a"
  "libbenchcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
