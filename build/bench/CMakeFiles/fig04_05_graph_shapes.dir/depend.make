# Empty dependencies file for fig04_05_graph_shapes.
# This may be replaced when dependencies are built.
