file(REMOVE_RECURSE
  "CMakeFiles/fig04_05_graph_shapes.dir/fig04_05_graph_shapes.cpp.o"
  "CMakeFiles/fig04_05_graph_shapes.dir/fig04_05_graph_shapes.cpp.o.d"
  "fig04_05_graph_shapes"
  "fig04_05_graph_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_05_graph_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
