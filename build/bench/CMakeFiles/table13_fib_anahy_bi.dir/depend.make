# Empty dependencies file for table13_fib_anahy_bi.
# This may be replaced when dependencies are built.
