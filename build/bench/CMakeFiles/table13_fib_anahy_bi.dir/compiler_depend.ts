# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table13_fib_anahy_bi.
