file(REMOVE_RECURSE
  "CMakeFiles/table13_fib_anahy_bi.dir/table13_fib_anahy_bi.cpp.o"
  "CMakeFiles/table13_fib_anahy_bi.dir/table13_fib_anahy_bi.cpp.o.d"
  "table13_fib_anahy_bi"
  "table13_fib_anahy_bi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table13_fib_anahy_bi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
