# Empty compiler generated dependencies file for table04_raytracer_anahy_bi.
# This may be replaced when dependencies are built.
