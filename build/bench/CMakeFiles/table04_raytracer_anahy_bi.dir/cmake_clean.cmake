file(REMOVE_RECURSE
  "CMakeFiles/table04_raytracer_anahy_bi.dir/table04_raytracer_anahy_bi.cpp.o"
  "CMakeFiles/table04_raytracer_anahy_bi.dir/table04_raytracer_anahy_bi.cpp.o.d"
  "table04_raytracer_anahy_bi"
  "table04_raytracer_anahy_bi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_raytracer_anahy_bi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
