file(REMOVE_RECURSE
  "CMakeFiles/table02_raytracer_pthreads.dir/table02_raytracer_pthreads.cpp.o"
  "CMakeFiles/table02_raytracer_pthreads.dir/table02_raytracer_pthreads.cpp.o.d"
  "table02_raytracer_pthreads"
  "table02_raytracer_pthreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_raytracer_pthreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
