# Empty compiler generated dependencies file for table02_raytracer_pthreads.
# This may be replaced when dependencies are built.
