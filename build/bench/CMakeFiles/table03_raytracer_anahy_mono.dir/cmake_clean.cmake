file(REMOVE_RECURSE
  "CMakeFiles/table03_raytracer_anahy_mono.dir/table03_raytracer_anahy_mono.cpp.o"
  "CMakeFiles/table03_raytracer_anahy_mono.dir/table03_raytracer_anahy_mono.cpp.o.d"
  "table03_raytracer_anahy_mono"
  "table03_raytracer_anahy_mono.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_raytracer_anahy_mono.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
