# Empty dependencies file for table03_raytracer_anahy_mono.
# This may be replaced when dependencies are built.
