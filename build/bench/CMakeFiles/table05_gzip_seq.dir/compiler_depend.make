# Empty compiler generated dependencies file for table05_gzip_seq.
# This may be replaced when dependencies are built.
