file(REMOVE_RECURSE
  "CMakeFiles/table05_gzip_seq.dir/table05_gzip_seq.cpp.o"
  "CMakeFiles/table05_gzip_seq.dir/table05_gzip_seq.cpp.o.d"
  "table05_gzip_seq"
  "table05_gzip_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_gzip_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
