file(REMOVE_RECURSE
  "CMakeFiles/table09_gzip_anahy_bi.dir/table09_gzip_anahy_bi.cpp.o"
  "CMakeFiles/table09_gzip_anahy_bi.dir/table09_gzip_anahy_bi.cpp.o.d"
  "table09_gzip_anahy_bi"
  "table09_gzip_anahy_bi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_gzip_anahy_bi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
