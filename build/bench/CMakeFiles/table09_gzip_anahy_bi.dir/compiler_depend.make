# Empty compiler generated dependencies file for table09_gzip_anahy_bi.
# This may be replaced when dependencies are built.
