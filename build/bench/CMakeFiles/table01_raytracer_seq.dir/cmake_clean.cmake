file(REMOVE_RECURSE
  "CMakeFiles/table01_raytracer_seq.dir/table01_raytracer_seq.cpp.o"
  "CMakeFiles/table01_raytracer_seq.dir/table01_raytracer_seq.cpp.o.d"
  "table01_raytracer_seq"
  "table01_raytracer_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_raytracer_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
