# Empty dependencies file for table01_raytracer_seq.
# This may be replaced when dependencies are built.
