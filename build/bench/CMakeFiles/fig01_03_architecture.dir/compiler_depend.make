# Empty compiler generated dependencies file for fig01_03_architecture.
# This may be replaced when dependencies are built.
