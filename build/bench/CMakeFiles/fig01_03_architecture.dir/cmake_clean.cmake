file(REMOVE_RECURSE
  "CMakeFiles/fig01_03_architecture.dir/fig01_03_architecture.cpp.o"
  "CMakeFiles/fig01_03_architecture.dir/fig01_03_architecture.cpp.o.d"
  "fig01_03_architecture"
  "fig01_03_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_03_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
