file(REMOVE_RECURSE
  "CMakeFiles/table12_convop.dir/table12_convop.cpp.o"
  "CMakeFiles/table12_convop.dir/table12_convop.cpp.o.d"
  "table12_convop"
  "table12_convop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_convop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
