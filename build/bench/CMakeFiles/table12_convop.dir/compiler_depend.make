# Empty compiler generated dependencies file for table12_convop.
# This may be replaced when dependencies are built.
