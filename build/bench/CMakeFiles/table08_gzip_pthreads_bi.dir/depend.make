# Empty dependencies file for table08_gzip_pthreads_bi.
# This may be replaced when dependencies are built.
