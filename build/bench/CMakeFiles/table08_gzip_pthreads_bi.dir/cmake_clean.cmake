file(REMOVE_RECURSE
  "CMakeFiles/table08_gzip_pthreads_bi.dir/table08_gzip_pthreads_bi.cpp.o"
  "CMakeFiles/table08_gzip_pthreads_bi.dir/table08_gzip_pthreads_bi.cpp.o.d"
  "table08_gzip_pthreads_bi"
  "table08_gzip_pthreads_bi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_gzip_pthreads_bi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
