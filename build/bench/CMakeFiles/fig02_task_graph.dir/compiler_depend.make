# Empty compiler generated dependencies file for fig02_task_graph.
# This may be replaced when dependencies are built.
