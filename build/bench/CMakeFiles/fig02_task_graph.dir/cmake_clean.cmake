file(REMOVE_RECURSE
  "CMakeFiles/fig02_task_graph.dir/fig02_task_graph.cpp.o"
  "CMakeFiles/fig02_task_graph.dir/fig02_task_graph.cpp.o.d"
  "fig02_task_graph"
  "fig02_task_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_task_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
