# Empty dependencies file for table06_gzip_pthreads_mono.
# This may be replaced when dependencies are built.
