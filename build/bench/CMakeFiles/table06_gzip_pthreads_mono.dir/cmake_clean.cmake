file(REMOVE_RECURSE
  "CMakeFiles/table06_gzip_pthreads_mono.dir/table06_gzip_pthreads_mono.cpp.o"
  "CMakeFiles/table06_gzip_pthreads_mono.dir/table06_gzip_pthreads_mono.cpp.o.d"
  "table06_gzip_pthreads_mono"
  "table06_gzip_pthreads_mono.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_gzip_pthreads_mono.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
