# Empty compiler generated dependencies file for table10_fib_pthreads.
# This may be replaced when dependencies are built.
