file(REMOVE_RECURSE
  "CMakeFiles/table10_fib_pthreads.dir/table10_fib_pthreads.cpp.o"
  "CMakeFiles/table10_fib_pthreads.dir/table10_fib_pthreads.cpp.o.d"
  "table10_fib_pthreads"
  "table10_fib_pthreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_fib_pthreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
