# Empty compiler generated dependencies file for ext_simulator_validation.
# This may be replaced when dependencies are built.
