file(REMOVE_RECURSE
  "CMakeFiles/ext_simulator_validation.dir/ext_simulator_validation.cpp.o"
  "CMakeFiles/ext_simulator_validation.dir/ext_simulator_validation.cpp.o.d"
  "ext_simulator_validation"
  "ext_simulator_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_simulator_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
