# Empty compiler generated dependencies file for table11_fib_anahy_mono.
# This may be replaced when dependencies are built.
