file(REMOVE_RECURSE
  "CMakeFiles/table11_fib_anahy_mono.dir/table11_fib_anahy_mono.cpp.o"
  "CMakeFiles/table11_fib_anahy_mono.dir/table11_fib_anahy_mono.cpp.o.d"
  "table11_fib_anahy_mono"
  "table11_fib_anahy_mono.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_fib_anahy_mono.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
