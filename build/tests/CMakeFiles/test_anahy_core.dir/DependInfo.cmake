
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/anahy/test_athread.cpp" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_athread.cpp.o" "gcc" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_athread.cpp.o.d"
  "/root/repo/tests/anahy/test_attr.cpp" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_attr.cpp.o" "gcc" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_attr.cpp.o.d"
  "/root/repo/tests/anahy/test_policies.cpp" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_policies.cpp.o" "gcc" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_policies.cpp.o.d"
  "/root/repo/tests/anahy/test_runtime.cpp" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_runtime.cpp.o.d"
  "/root/repo/tests/anahy/test_sync_ext.cpp" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_sync_ext.cpp.o" "gcc" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_sync_ext.cpp.o.d"
  "/root/repo/tests/anahy/test_trace.cpp" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_trace.cpp.o.d"
  "/root/repo/tests/anahy/test_trace_analysis.cpp" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_trace_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_trace_analysis.cpp.o.d"
  "/root/repo/tests/anahy/test_tryjoin_exit.cpp" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_tryjoin_exit.cpp.o" "gcc" "tests/CMakeFiles/test_anahy_core.dir/anahy/test_tryjoin_exit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchutil/CMakeFiles/benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/anahy/CMakeFiles/anahy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
