file(REMOVE_RECURSE
  "CMakeFiles/test_anahy_core.dir/anahy/test_athread.cpp.o"
  "CMakeFiles/test_anahy_core.dir/anahy/test_athread.cpp.o.d"
  "CMakeFiles/test_anahy_core.dir/anahy/test_attr.cpp.o"
  "CMakeFiles/test_anahy_core.dir/anahy/test_attr.cpp.o.d"
  "CMakeFiles/test_anahy_core.dir/anahy/test_policies.cpp.o"
  "CMakeFiles/test_anahy_core.dir/anahy/test_policies.cpp.o.d"
  "CMakeFiles/test_anahy_core.dir/anahy/test_runtime.cpp.o"
  "CMakeFiles/test_anahy_core.dir/anahy/test_runtime.cpp.o.d"
  "CMakeFiles/test_anahy_core.dir/anahy/test_sync_ext.cpp.o"
  "CMakeFiles/test_anahy_core.dir/anahy/test_sync_ext.cpp.o.d"
  "CMakeFiles/test_anahy_core.dir/anahy/test_trace.cpp.o"
  "CMakeFiles/test_anahy_core.dir/anahy/test_trace.cpp.o.d"
  "CMakeFiles/test_anahy_core.dir/anahy/test_trace_analysis.cpp.o"
  "CMakeFiles/test_anahy_core.dir/anahy/test_trace_analysis.cpp.o.d"
  "CMakeFiles/test_anahy_core.dir/anahy/test_tryjoin_exit.cpp.o"
  "CMakeFiles/test_anahy_core.dir/anahy/test_tryjoin_exit.cpp.o.d"
  "test_anahy_core"
  "test_anahy_core.pdb"
  "test_anahy_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anahy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
