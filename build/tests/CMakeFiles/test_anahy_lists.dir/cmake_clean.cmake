file(REMOVE_RECURSE
  "CMakeFiles/test_anahy_lists.dir/anahy/test_lists_semantics.cpp.o"
  "CMakeFiles/test_anahy_lists.dir/anahy/test_lists_semantics.cpp.o.d"
  "test_anahy_lists"
  "test_anahy_lists.pdb"
  "test_anahy_lists[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anahy_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
