# Empty dependencies file for test_anahy_lists.
# This may be replaced when dependencies are built.
