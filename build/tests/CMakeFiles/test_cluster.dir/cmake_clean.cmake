file(REMOVE_RECURSE
  "CMakeFiles/test_cluster.dir/cluster/test_cluster_apps.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_cluster_apps.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_message.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_message.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_multiprocess.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_multiprocess.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_node.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_node.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_serialize.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_serialize.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_transport.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_transport.cpp.o.d"
  "test_cluster"
  "test_cluster.pdb"
  "test_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
