file(REMOVE_RECURSE
  "CMakeFiles/test_anahy_task_group.dir/anahy/test_task_group.cpp.o"
  "CMakeFiles/test_anahy_task_group.dir/anahy/test_task_group.cpp.o.d"
  "test_anahy_task_group"
  "test_anahy_task_group.pdb"
  "test_anahy_task_group[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anahy_task_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
