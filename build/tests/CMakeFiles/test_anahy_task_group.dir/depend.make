# Empty dependencies file for test_anahy_task_group.
# This may be replaced when dependencies are built.
