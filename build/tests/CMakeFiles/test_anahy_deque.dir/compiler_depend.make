# Empty compiler generated dependencies file for test_anahy_deque.
# This may be replaced when dependencies are built.
