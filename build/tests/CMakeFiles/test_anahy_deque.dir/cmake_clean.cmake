file(REMOVE_RECURSE
  "CMakeFiles/test_anahy_deque.dir/anahy/test_steal_deque.cpp.o"
  "CMakeFiles/test_anahy_deque.dir/anahy/test_steal_deque.cpp.o.d"
  "test_anahy_deque"
  "test_anahy_deque.pdb"
  "test_anahy_deque[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anahy_deque.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
