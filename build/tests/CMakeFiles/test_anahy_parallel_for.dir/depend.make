# Empty dependencies file for test_anahy_parallel_for.
# This may be replaced when dependencies are built.
