file(REMOVE_RECURSE
  "CMakeFiles/test_anahy_parallel_for.dir/anahy/test_parallel_for.cpp.o"
  "CMakeFiles/test_anahy_parallel_for.dir/anahy/test_parallel_for.cpp.o.d"
  "test_anahy_parallel_for"
  "test_anahy_parallel_for.pdb"
  "test_anahy_parallel_for[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anahy_parallel_for.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
