file(REMOVE_RECURSE
  "CMakeFiles/test_benchutil.dir/benchutil/test_cli.cpp.o"
  "CMakeFiles/test_benchutil.dir/benchutil/test_cli.cpp.o.d"
  "CMakeFiles/test_benchutil.dir/benchutil/test_harness.cpp.o"
  "CMakeFiles/test_benchutil.dir/benchutil/test_harness.cpp.o.d"
  "CMakeFiles/test_benchutil.dir/benchutil/test_stats.cpp.o"
  "CMakeFiles/test_benchutil.dir/benchutil/test_stats.cpp.o.d"
  "CMakeFiles/test_benchutil.dir/benchutil/test_table.cpp.o"
  "CMakeFiles/test_benchutil.dir/benchutil/test_table.cpp.o.d"
  "test_benchutil"
  "test_benchutil.pdb"
  "test_benchutil[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
