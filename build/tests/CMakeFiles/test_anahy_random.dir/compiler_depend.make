# Empty compiler generated dependencies file for test_anahy_random.
# This may be replaced when dependencies are built.
