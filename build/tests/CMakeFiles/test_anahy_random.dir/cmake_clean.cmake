file(REMOVE_RECURSE
  "CMakeFiles/test_anahy_random.dir/anahy/test_random_programs.cpp.o"
  "CMakeFiles/test_anahy_random.dir/anahy/test_random_programs.cpp.o.d"
  "test_anahy_random"
  "test_anahy_random.pdb"
  "test_anahy_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anahy_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
