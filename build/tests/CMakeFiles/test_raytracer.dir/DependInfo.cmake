
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/raytracer/test_objects.cpp" "tests/CMakeFiles/test_raytracer.dir/raytracer/test_objects.cpp.o" "gcc" "tests/CMakeFiles/test_raytracer.dir/raytracer/test_objects.cpp.o.d"
  "/root/repo/tests/raytracer/test_render.cpp" "tests/CMakeFiles/test_raytracer.dir/raytracer/test_render.cpp.o" "gcc" "tests/CMakeFiles/test_raytracer.dir/raytracer/test_render.cpp.o.d"
  "/root/repo/tests/raytracer/test_scene_file.cpp" "tests/CMakeFiles/test_raytracer.dir/raytracer/test_scene_file.cpp.o" "gcc" "tests/CMakeFiles/test_raytracer.dir/raytracer/test_scene_file.cpp.o.d"
  "/root/repo/tests/raytracer/test_vec3.cpp" "tests/CMakeFiles/test_raytracer.dir/raytracer/test_vec3.cpp.o" "gcc" "tests/CMakeFiles/test_raytracer.dir/raytracer/test_vec3.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchutil/CMakeFiles/benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/raytracer/CMakeFiles/raytracer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
