file(REMOVE_RECURSE
  "CMakeFiles/test_raytracer.dir/raytracer/test_objects.cpp.o"
  "CMakeFiles/test_raytracer.dir/raytracer/test_objects.cpp.o.d"
  "CMakeFiles/test_raytracer.dir/raytracer/test_render.cpp.o"
  "CMakeFiles/test_raytracer.dir/raytracer/test_render.cpp.o.d"
  "CMakeFiles/test_raytracer.dir/raytracer/test_scene_file.cpp.o"
  "CMakeFiles/test_raytracer.dir/raytracer/test_scene_file.cpp.o.d"
  "CMakeFiles/test_raytracer.dir/raytracer/test_vec3.cpp.o"
  "CMakeFiles/test_raytracer.dir/raytracer/test_vec3.cpp.o.d"
  "test_raytracer"
  "test_raytracer.pdb"
  "test_raytracer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raytracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
