# Empty compiler generated dependencies file for test_raytracer.
# This may be replaced when dependencies are built.
