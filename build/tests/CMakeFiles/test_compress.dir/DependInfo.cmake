
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compress/test_bitstream.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_bitstream.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_bitstream.cpp.o.d"
  "/root/repo/tests/compress/test_crc32.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_crc32.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_crc32.cpp.o.d"
  "/root/repo/tests/compress/test_deflate.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_deflate.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_deflate.cpp.o.d"
  "/root/repo/tests/compress/test_deflate_edges.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_deflate_edges.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_deflate_edges.cpp.o.d"
  "/root/repo/tests/compress/test_fuzz.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_fuzz.cpp.o.d"
  "/root/repo/tests/compress/test_huffman.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_huffman.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_huffman.cpp.o.d"
  "/root/repo/tests/compress/test_levels.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_levels.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_levels.cpp.o.d"
  "/root/repo/tests/compress/test_lz77.cpp" "tests/CMakeFiles/test_compress.dir/compress/test_lz77.cpp.o" "gcc" "tests/CMakeFiles/test_compress.dir/compress/test_lz77.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchutil/CMakeFiles/benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
