file(REMOVE_RECURSE
  "CMakeFiles/test_compress.dir/compress/test_bitstream.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_bitstream.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_crc32.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_crc32.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_deflate.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_deflate.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_deflate_edges.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_deflate_edges.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_fuzz.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_fuzz.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_huffman.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_huffman.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_levels.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_levels.cpp.o.d"
  "CMakeFiles/test_compress.dir/compress/test_lz77.cpp.o"
  "CMakeFiles/test_compress.dir/compress/test_lz77.cpp.o.d"
  "test_compress"
  "test_compress.pdb"
  "test_compress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
