
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simsched/test_os_sim.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_os_sim.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_os_sim.cpp.o.d"
  "/root/repo/tests/simsched/test_program.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_program.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_program.cpp.o.d"
  "/root/repo/tests/simsched/test_pthread_sim.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_pthread_sim.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_pthread_sim.cpp.o.d"
  "/root/repo/tests/simsched/test_sim_export.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_sim_export.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_sim_export.cpp.o.d"
  "/root/repo/tests/simsched/test_sim_policies.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_sim_policies.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_sim_policies.cpp.o.d"
  "/root/repo/tests/simsched/test_simulate.cpp" "tests/CMakeFiles/test_simsched.dir/simsched/test_simulate.cpp.o" "gcc" "tests/CMakeFiles/test_simsched.dir/simsched/test_simulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchutil/CMakeFiles/benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/simsched/CMakeFiles/simsched.dir/DependInfo.cmake"
  "/root/repo/build/src/anahy/CMakeFiles/anahy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
