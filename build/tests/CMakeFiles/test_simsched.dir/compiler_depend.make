# Empty compiler generated dependencies file for test_simsched.
# This may be replaced when dependencies are built.
