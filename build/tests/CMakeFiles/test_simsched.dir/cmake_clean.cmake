file(REMOVE_RECURSE
  "CMakeFiles/test_simsched.dir/simsched/test_os_sim.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_os_sim.cpp.o.d"
  "CMakeFiles/test_simsched.dir/simsched/test_program.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_program.cpp.o.d"
  "CMakeFiles/test_simsched.dir/simsched/test_pthread_sim.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_pthread_sim.cpp.o.d"
  "CMakeFiles/test_simsched.dir/simsched/test_sim_export.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_sim_export.cpp.o.d"
  "CMakeFiles/test_simsched.dir/simsched/test_sim_policies.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_sim_policies.cpp.o.d"
  "CMakeFiles/test_simsched.dir/simsched/test_simulate.cpp.o"
  "CMakeFiles/test_simsched.dir/simsched/test_simulate.cpp.o.d"
  "test_simsched"
  "test_simsched.pdb"
  "test_simsched[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
