file(REMOVE_RECURSE
  "CMakeFiles/test_anahy_stress.dir/anahy/test_stress.cpp.o"
  "CMakeFiles/test_anahy_stress.dir/anahy/test_stress.cpp.o.d"
  "test_anahy_stress"
  "test_anahy_stress.pdb"
  "test_anahy_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anahy_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
