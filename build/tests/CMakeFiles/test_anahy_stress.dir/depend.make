# Empty dependencies file for test_anahy_stress.
# This may be replaced when dependencies are built.
