# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_benchutil[1]_include.cmake")
include("/root/repo/build/tests/test_anahy_core[1]_include.cmake")
include("/root/repo/build/tests/test_anahy_deque[1]_include.cmake")
include("/root/repo/build/tests/test_anahy_stress[1]_include.cmake")
include("/root/repo/build/tests/test_anahy_random[1]_include.cmake")
include("/root/repo/build/tests/test_anahy_parallel_for[1]_include.cmake")
include("/root/repo/build/tests/test_anahy_task_group[1]_include.cmake")
include("/root/repo/build/tests/test_anahy_lists[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_raytracer[1]_include.cmake")
include("/root/repo/build/tests/test_image[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_simsched[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
