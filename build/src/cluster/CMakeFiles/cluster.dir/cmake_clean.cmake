file(REMOVE_RECURSE
  "CMakeFiles/cluster.dir/cluster.cpp.o"
  "CMakeFiles/cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/cluster.dir/mem_transport.cpp.o"
  "CMakeFiles/cluster.dir/mem_transport.cpp.o.d"
  "CMakeFiles/cluster.dir/message.cpp.o"
  "CMakeFiles/cluster.dir/message.cpp.o.d"
  "CMakeFiles/cluster.dir/node.cpp.o"
  "CMakeFiles/cluster.dir/node.cpp.o.d"
  "CMakeFiles/cluster.dir/registry.cpp.o"
  "CMakeFiles/cluster.dir/registry.cpp.o.d"
  "CMakeFiles/cluster.dir/serialize.cpp.o"
  "CMakeFiles/cluster.dir/serialize.cpp.o.d"
  "CMakeFiles/cluster.dir/tcp_bootstrap.cpp.o"
  "CMakeFiles/cluster.dir/tcp_bootstrap.cpp.o.d"
  "CMakeFiles/cluster.dir/tcp_transport.cpp.o"
  "CMakeFiles/cluster.dir/tcp_transport.cpp.o.d"
  "libcluster.a"
  "libcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
