
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/mem_transport.cpp" "src/cluster/CMakeFiles/cluster.dir/mem_transport.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/mem_transport.cpp.o.d"
  "/root/repo/src/cluster/message.cpp" "src/cluster/CMakeFiles/cluster.dir/message.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/message.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/cluster/CMakeFiles/cluster.dir/node.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/node.cpp.o.d"
  "/root/repo/src/cluster/registry.cpp" "src/cluster/CMakeFiles/cluster.dir/registry.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/registry.cpp.o.d"
  "/root/repo/src/cluster/serialize.cpp" "src/cluster/CMakeFiles/cluster.dir/serialize.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/serialize.cpp.o.d"
  "/root/repo/src/cluster/tcp_bootstrap.cpp" "src/cluster/CMakeFiles/cluster.dir/tcp_bootstrap.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/tcp_bootstrap.cpp.o.d"
  "/root/repo/src/cluster/tcp_transport.cpp" "src/cluster/CMakeFiles/cluster.dir/tcp_transport.cpp.o" "gcc" "src/cluster/CMakeFiles/cluster.dir/tcp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/anahy/CMakeFiles/anahy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
