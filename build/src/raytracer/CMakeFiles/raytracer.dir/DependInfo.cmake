
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raytracer/camera.cpp" "src/raytracer/CMakeFiles/raytracer.dir/camera.cpp.o" "gcc" "src/raytracer/CMakeFiles/raytracer.dir/camera.cpp.o.d"
  "/root/repo/src/raytracer/framebuffer.cpp" "src/raytracer/CMakeFiles/raytracer.dir/framebuffer.cpp.o" "gcc" "src/raytracer/CMakeFiles/raytracer.dir/framebuffer.cpp.o.d"
  "/root/repo/src/raytracer/objects.cpp" "src/raytracer/CMakeFiles/raytracer.dir/objects.cpp.o" "gcc" "src/raytracer/CMakeFiles/raytracer.dir/objects.cpp.o.d"
  "/root/repo/src/raytracer/render.cpp" "src/raytracer/CMakeFiles/raytracer.dir/render.cpp.o" "gcc" "src/raytracer/CMakeFiles/raytracer.dir/render.cpp.o.d"
  "/root/repo/src/raytracer/scene.cpp" "src/raytracer/CMakeFiles/raytracer.dir/scene.cpp.o" "gcc" "src/raytracer/CMakeFiles/raytracer.dir/scene.cpp.o.d"
  "/root/repo/src/raytracer/scene_builder.cpp" "src/raytracer/CMakeFiles/raytracer.dir/scene_builder.cpp.o" "gcc" "src/raytracer/CMakeFiles/raytracer.dir/scene_builder.cpp.o.d"
  "/root/repo/src/raytracer/scene_file.cpp" "src/raytracer/CMakeFiles/raytracer.dir/scene_file.cpp.o" "gcc" "src/raytracer/CMakeFiles/raytracer.dir/scene_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
