file(REMOVE_RECURSE
  "libraytracer.a"
)
