file(REMOVE_RECURSE
  "CMakeFiles/raytracer.dir/camera.cpp.o"
  "CMakeFiles/raytracer.dir/camera.cpp.o.d"
  "CMakeFiles/raytracer.dir/framebuffer.cpp.o"
  "CMakeFiles/raytracer.dir/framebuffer.cpp.o.d"
  "CMakeFiles/raytracer.dir/objects.cpp.o"
  "CMakeFiles/raytracer.dir/objects.cpp.o.d"
  "CMakeFiles/raytracer.dir/render.cpp.o"
  "CMakeFiles/raytracer.dir/render.cpp.o.d"
  "CMakeFiles/raytracer.dir/scene.cpp.o"
  "CMakeFiles/raytracer.dir/scene.cpp.o.d"
  "CMakeFiles/raytracer.dir/scene_builder.cpp.o"
  "CMakeFiles/raytracer.dir/scene_builder.cpp.o.d"
  "CMakeFiles/raytracer.dir/scene_file.cpp.o"
  "CMakeFiles/raytracer.dir/scene_file.cpp.o.d"
  "libraytracer.a"
  "libraytracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raytracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
