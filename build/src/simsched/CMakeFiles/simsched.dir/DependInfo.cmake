
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simsched/anahy_sim.cpp" "src/simsched/CMakeFiles/simsched.dir/anahy_sim.cpp.o" "gcc" "src/simsched/CMakeFiles/simsched.dir/anahy_sim.cpp.o.d"
  "/root/repo/src/simsched/os_sim.cpp" "src/simsched/CMakeFiles/simsched.dir/os_sim.cpp.o" "gcc" "src/simsched/CMakeFiles/simsched.dir/os_sim.cpp.o.d"
  "/root/repo/src/simsched/program.cpp" "src/simsched/CMakeFiles/simsched.dir/program.cpp.o" "gcc" "src/simsched/CMakeFiles/simsched.dir/program.cpp.o.d"
  "/root/repo/src/simsched/pthread_sim.cpp" "src/simsched/CMakeFiles/simsched.dir/pthread_sim.cpp.o" "gcc" "src/simsched/CMakeFiles/simsched.dir/pthread_sim.cpp.o.d"
  "/root/repo/src/simsched/sim_export.cpp" "src/simsched/CMakeFiles/simsched.dir/sim_export.cpp.o" "gcc" "src/simsched/CMakeFiles/simsched.dir/sim_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/anahy/CMakeFiles/anahy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
