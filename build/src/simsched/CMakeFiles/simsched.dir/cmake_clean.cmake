file(REMOVE_RECURSE
  "CMakeFiles/simsched.dir/anahy_sim.cpp.o"
  "CMakeFiles/simsched.dir/anahy_sim.cpp.o.d"
  "CMakeFiles/simsched.dir/os_sim.cpp.o"
  "CMakeFiles/simsched.dir/os_sim.cpp.o.d"
  "CMakeFiles/simsched.dir/program.cpp.o"
  "CMakeFiles/simsched.dir/program.cpp.o.d"
  "CMakeFiles/simsched.dir/pthread_sim.cpp.o"
  "CMakeFiles/simsched.dir/pthread_sim.cpp.o.d"
  "CMakeFiles/simsched.dir/sim_export.cpp.o"
  "CMakeFiles/simsched.dir/sim_export.cpp.o.d"
  "libsimsched.a"
  "libsimsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
