file(REMOVE_RECURSE
  "libsimsched.a"
)
