# Empty compiler generated dependencies file for simsched.
# This may be replaced when dependencies are built.
