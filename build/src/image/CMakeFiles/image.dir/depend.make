# Empty dependencies file for image.
# This may be replaced when dependencies are built.
