file(REMOVE_RECURSE
  "CMakeFiles/image.dir/convolve.cpp.o"
  "CMakeFiles/image.dir/convolve.cpp.o.d"
  "CMakeFiles/image.dir/image.cpp.o"
  "CMakeFiles/image.dir/image.cpp.o.d"
  "CMakeFiles/image.dir/kernel.cpp.o"
  "CMakeFiles/image.dir/kernel.cpp.o.d"
  "libimage.a"
  "libimage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
