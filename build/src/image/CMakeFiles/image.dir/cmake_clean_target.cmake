file(REMOVE_RECURSE
  "libimage.a"
)
