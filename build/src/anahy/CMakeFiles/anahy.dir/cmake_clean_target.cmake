file(REMOVE_RECURSE
  "libanahy.a"
)
