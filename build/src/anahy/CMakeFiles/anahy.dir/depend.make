# Empty dependencies file for anahy.
# This may be replaced when dependencies are built.
