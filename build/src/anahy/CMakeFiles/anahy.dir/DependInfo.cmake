
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anahy/athread.cpp" "src/anahy/CMakeFiles/anahy.dir/athread.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/athread.cpp.o.d"
  "/root/repo/src/anahy/policy_central.cpp" "src/anahy/CMakeFiles/anahy.dir/policy_central.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/policy_central.cpp.o.d"
  "/root/repo/src/anahy/policy_factory.cpp" "src/anahy/CMakeFiles/anahy.dir/policy_factory.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/policy_factory.cpp.o.d"
  "/root/repo/src/anahy/policy_steal.cpp" "src/anahy/CMakeFiles/anahy.dir/policy_steal.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/policy_steal.cpp.o.d"
  "/root/repo/src/anahy/runtime.cpp" "src/anahy/CMakeFiles/anahy.dir/runtime.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/runtime.cpp.o.d"
  "/root/repo/src/anahy/scheduler.cpp" "src/anahy/CMakeFiles/anahy.dir/scheduler.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/scheduler.cpp.o.d"
  "/root/repo/src/anahy/stats.cpp" "src/anahy/CMakeFiles/anahy.dir/stats.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/stats.cpp.o.d"
  "/root/repo/src/anahy/sync_ext.cpp" "src/anahy/CMakeFiles/anahy.dir/sync_ext.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/sync_ext.cpp.o.d"
  "/root/repo/src/anahy/trace.cpp" "src/anahy/CMakeFiles/anahy.dir/trace.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/trace.cpp.o.d"
  "/root/repo/src/anahy/trace_analysis.cpp" "src/anahy/CMakeFiles/anahy.dir/trace_analysis.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/trace_analysis.cpp.o.d"
  "/root/repo/src/anahy/vp.cpp" "src/anahy/CMakeFiles/anahy.dir/vp.cpp.o" "gcc" "src/anahy/CMakeFiles/anahy.dir/vp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
