file(REMOVE_RECURSE
  "CMakeFiles/anahy.dir/athread.cpp.o"
  "CMakeFiles/anahy.dir/athread.cpp.o.d"
  "CMakeFiles/anahy.dir/policy_central.cpp.o"
  "CMakeFiles/anahy.dir/policy_central.cpp.o.d"
  "CMakeFiles/anahy.dir/policy_factory.cpp.o"
  "CMakeFiles/anahy.dir/policy_factory.cpp.o.d"
  "CMakeFiles/anahy.dir/policy_steal.cpp.o"
  "CMakeFiles/anahy.dir/policy_steal.cpp.o.d"
  "CMakeFiles/anahy.dir/runtime.cpp.o"
  "CMakeFiles/anahy.dir/runtime.cpp.o.d"
  "CMakeFiles/anahy.dir/scheduler.cpp.o"
  "CMakeFiles/anahy.dir/scheduler.cpp.o.d"
  "CMakeFiles/anahy.dir/stats.cpp.o"
  "CMakeFiles/anahy.dir/stats.cpp.o.d"
  "CMakeFiles/anahy.dir/sync_ext.cpp.o"
  "CMakeFiles/anahy.dir/sync_ext.cpp.o.d"
  "CMakeFiles/anahy.dir/trace.cpp.o"
  "CMakeFiles/anahy.dir/trace.cpp.o.d"
  "CMakeFiles/anahy.dir/trace_analysis.cpp.o"
  "CMakeFiles/anahy.dir/trace_analysis.cpp.o.d"
  "CMakeFiles/anahy.dir/vp.cpp.o"
  "CMakeFiles/anahy.dir/vp.cpp.o.d"
  "libanahy.a"
  "libanahy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anahy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
