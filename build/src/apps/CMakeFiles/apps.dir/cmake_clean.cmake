file(REMOVE_RECURSE
  "CMakeFiles/apps.dir/agzip_app.cpp.o"
  "CMakeFiles/apps.dir/agzip_app.cpp.o.d"
  "CMakeFiles/apps.dir/convop_app.cpp.o"
  "CMakeFiles/apps.dir/convop_app.cpp.o.d"
  "CMakeFiles/apps.dir/fib_app.cpp.o"
  "CMakeFiles/apps.dir/fib_app.cpp.o.d"
  "CMakeFiles/apps.dir/raytrace_app.cpp.o"
  "CMakeFiles/apps.dir/raytrace_app.cpp.o.d"
  "libapps.a"
  "libapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
