
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/agzip_app.cpp" "src/apps/CMakeFiles/apps.dir/agzip_app.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/agzip_app.cpp.o.d"
  "/root/repo/src/apps/convop_app.cpp" "src/apps/CMakeFiles/apps.dir/convop_app.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/convop_app.cpp.o.d"
  "/root/repo/src/apps/fib_app.cpp" "src/apps/CMakeFiles/apps.dir/fib_app.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/fib_app.cpp.o.d"
  "/root/repo/src/apps/raytrace_app.cpp" "src/apps/CMakeFiles/apps.dir/raytrace_app.cpp.o" "gcc" "src/apps/CMakeFiles/apps.dir/raytrace_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/anahy/CMakeFiles/anahy.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/compress.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/image.dir/DependInfo.cmake"
  "/root/repo/build/src/raytracer/CMakeFiles/raytracer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
