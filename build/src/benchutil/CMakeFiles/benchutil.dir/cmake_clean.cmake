file(REMOVE_RECURSE
  "CMakeFiles/benchutil.dir/cli.cpp.o"
  "CMakeFiles/benchutil.dir/cli.cpp.o.d"
  "CMakeFiles/benchutil.dir/harness.cpp.o"
  "CMakeFiles/benchutil.dir/harness.cpp.o.d"
  "CMakeFiles/benchutil.dir/stats.cpp.o"
  "CMakeFiles/benchutil.dir/stats.cpp.o.d"
  "CMakeFiles/benchutil.dir/table.cpp.o"
  "CMakeFiles/benchutil.dir/table.cpp.o.d"
  "libbenchutil.a"
  "libbenchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
