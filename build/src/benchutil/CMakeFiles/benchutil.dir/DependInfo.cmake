
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchutil/cli.cpp" "src/benchutil/CMakeFiles/benchutil.dir/cli.cpp.o" "gcc" "src/benchutil/CMakeFiles/benchutil.dir/cli.cpp.o.d"
  "/root/repo/src/benchutil/harness.cpp" "src/benchutil/CMakeFiles/benchutil.dir/harness.cpp.o" "gcc" "src/benchutil/CMakeFiles/benchutil.dir/harness.cpp.o.d"
  "/root/repo/src/benchutil/stats.cpp" "src/benchutil/CMakeFiles/benchutil.dir/stats.cpp.o" "gcc" "src/benchutil/CMakeFiles/benchutil.dir/stats.cpp.o.d"
  "/root/repo/src/benchutil/table.cpp" "src/benchutil/CMakeFiles/benchutil.dir/table.cpp.o" "gcc" "src/benchutil/CMakeFiles/benchutil.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
