file(REMOVE_RECURSE
  "libbenchutil.a"
)
