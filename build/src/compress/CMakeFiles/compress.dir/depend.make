# Empty dependencies file for compress.
# This may be replaced when dependencies are built.
