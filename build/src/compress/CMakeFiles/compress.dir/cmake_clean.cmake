file(REMOVE_RECURSE
  "CMakeFiles/compress.dir/bitstream.cpp.o"
  "CMakeFiles/compress.dir/bitstream.cpp.o.d"
  "CMakeFiles/compress.dir/crc32.cpp.o"
  "CMakeFiles/compress.dir/crc32.cpp.o.d"
  "CMakeFiles/compress.dir/deflate.cpp.o"
  "CMakeFiles/compress.dir/deflate.cpp.o.d"
  "CMakeFiles/compress.dir/gzip.cpp.o"
  "CMakeFiles/compress.dir/gzip.cpp.o.d"
  "CMakeFiles/compress.dir/huffman.cpp.o"
  "CMakeFiles/compress.dir/huffman.cpp.o.d"
  "CMakeFiles/compress.dir/inflate.cpp.o"
  "CMakeFiles/compress.dir/inflate.cpp.o.d"
  "CMakeFiles/compress.dir/lz77.cpp.o"
  "CMakeFiles/compress.dir/lz77.cpp.o.d"
  "libcompress.a"
  "libcompress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
