
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bitstream.cpp" "src/compress/CMakeFiles/compress.dir/bitstream.cpp.o" "gcc" "src/compress/CMakeFiles/compress.dir/bitstream.cpp.o.d"
  "/root/repo/src/compress/crc32.cpp" "src/compress/CMakeFiles/compress.dir/crc32.cpp.o" "gcc" "src/compress/CMakeFiles/compress.dir/crc32.cpp.o.d"
  "/root/repo/src/compress/deflate.cpp" "src/compress/CMakeFiles/compress.dir/deflate.cpp.o" "gcc" "src/compress/CMakeFiles/compress.dir/deflate.cpp.o.d"
  "/root/repo/src/compress/gzip.cpp" "src/compress/CMakeFiles/compress.dir/gzip.cpp.o" "gcc" "src/compress/CMakeFiles/compress.dir/gzip.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/compress/CMakeFiles/compress.dir/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/compress.dir/huffman.cpp.o.d"
  "/root/repo/src/compress/inflate.cpp" "src/compress/CMakeFiles/compress.dir/inflate.cpp.o" "gcc" "src/compress/CMakeFiles/compress.dir/inflate.cpp.o.d"
  "/root/repo/src/compress/lz77.cpp" "src/compress/CMakeFiles/compress.dir/lz77.cpp.o" "gcc" "src/compress/CMakeFiles/compress.dir/lz77.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
