file(REMOVE_RECURSE
  "libcompress.a"
)
