
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/raytrace_scene.cpp" "examples/CMakeFiles/raytrace_scene.dir/raytrace_scene.cpp.o" "gcc" "examples/CMakeFiles/raytrace_scene.dir/raytrace_scene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/apps.dir/DependInfo.cmake"
  "/root/repo/build/src/benchutil/CMakeFiles/benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/anahy/CMakeFiles/anahy.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/compress.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/image.dir/DependInfo.cmake"
  "/root/repo/build/src/raytracer/CMakeFiles/raytracer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
