# Empty dependencies file for convolution_filter.
# This may be replaced when dependencies are built.
