file(REMOVE_RECURSE
  "CMakeFiles/convolution_filter.dir/convolution_filter.cpp.o"
  "CMakeFiles/convolution_filter.dir/convolution_filter.cpp.o.d"
  "convolution_filter"
  "convolution_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolution_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
