file(REMOVE_RECURSE
  "CMakeFiles/parallel_gzip.dir/parallel_gzip.cpp.o"
  "CMakeFiles/parallel_gzip.dir/parallel_gzip.cpp.o.d"
  "parallel_gzip"
  "parallel_gzip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_gzip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
