# Empty dependencies file for parallel_gzip.
# This may be replaced when dependencies are built.
