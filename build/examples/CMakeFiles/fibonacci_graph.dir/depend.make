# Empty dependencies file for fibonacci_graph.
# This may be replaced when dependencies are built.
