file(REMOVE_RECURSE
  "CMakeFiles/fibonacci_graph.dir/fibonacci_graph.cpp.o"
  "CMakeFiles/fibonacci_graph.dir/fibonacci_graph.cpp.o.d"
  "fibonacci_graph"
  "fibonacci_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fibonacci_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
