file(REMOVE_RECURSE
  "CMakeFiles/integrate.dir/integrate.cpp.o"
  "CMakeFiles/integrate.dir/integrate.cpp.o.d"
  "integrate"
  "integrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
