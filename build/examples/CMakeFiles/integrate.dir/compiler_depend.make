# Empty compiler generated dependencies file for integrate.
# This may be replaced when dependencies are built.
