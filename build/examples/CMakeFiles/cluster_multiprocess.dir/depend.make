# Empty dependencies file for cluster_multiprocess.
# This may be replaced when dependencies are built.
