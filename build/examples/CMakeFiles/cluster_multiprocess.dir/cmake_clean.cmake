file(REMOVE_RECURSE
  "CMakeFiles/cluster_multiprocess.dir/cluster_multiprocess.cpp.o"
  "CMakeFiles/cluster_multiprocess.dir/cluster_multiprocess.cpp.o.d"
  "cluster_multiprocess"
  "cluster_multiprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_multiprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
