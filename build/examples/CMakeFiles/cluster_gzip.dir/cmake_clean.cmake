file(REMOVE_RECURSE
  "CMakeFiles/cluster_gzip.dir/cluster_gzip.cpp.o"
  "CMakeFiles/cluster_gzip.dir/cluster_gzip.cpp.o.d"
  "cluster_gzip"
  "cluster_gzip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_gzip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
