# Empty dependencies file for cluster_gzip.
# This may be replaced when dependencies are built.
