// Post-mortem analysis of an execution trace: parallelism profile, Gantt
// export, critical path and work/span summary. Complements TraceGraph;
// everything here is pure computation over a finished trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "anahy/trace.hpp"

namespace anahy {

/// One executed task's time interval (trace-epoch-relative nanoseconds).
struct ExecInterval {
  TaskId id = kInvalidTaskId;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::uint32_t level = 0;
  std::string label;
};

/// Executed-task intervals, sorted by start time. Tasks that never ran
/// (and continuation markers, which have no execution of their own) are
/// omitted.
[[nodiscard]] std::vector<ExecInterval> exec_intervals(
    const TraceGraph& trace);

/// Number of concurrently executing tasks sampled per `bucket_ns` bucket,
/// from the first start to the last end. Empty when nothing ran.
[[nodiscard]] std::vector<std::size_t> parallelism_profile(
    const std::vector<ExecInterval>& intervals, std::int64_t bucket_ns);

/// Maximum concurrency over the run (exact, via an event sweep).
[[nodiscard]] std::size_t max_concurrency(
    const std::vector<ExecInterval>& intervals);

/// Work / span: the average parallelism the graph could support.
[[nodiscard]] double average_parallelism(const TraceGraph& trace);

/// Longest chain of tasks through fork/join/continue edges, ending at the
/// task where the critical path terminates. Ids ordered source -> sink.
[[nodiscard]] std::vector<TaskId> critical_path(const TraceGraph& trace);

/// CSV: "task,label,level,start_ns,end_ns,duration_ns" rows, one per
/// executed task, ready for a spreadsheet Gantt chart.
[[nodiscard]] std::string gantt_csv(const TraceGraph& trace);

}  // namespace anahy
