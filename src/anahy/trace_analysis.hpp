// Post-mortem analysis of an execution trace: parallelism profile, Gantt
// export, critical path and work/span summary. Complements TraceGraph;
// everything here is pure computation over a finished trace.
//
// This header also hosts the DAG structural linter: `lint_trace` validates
// a (live or reloaded) trace graph and reports diagnostics with stable
// `ANAHY-Wxxx` codes, so tests and CI can assert on them. The same checks
// back the `anahy-lint` CLI (tools/anahy_lint.cpp) and the online anomaly
// records the scheduler emits while a traced program runs. The code table
// is documented in docs/CHECKING.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "anahy/trace.hpp"

namespace anahy {

/// One executed task's time interval (trace-epoch-relative nanoseconds).
struct ExecInterval {
  TaskId id = kInvalidTaskId;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::uint32_t level = 0;
  std::string label;
};

/// Executed-task intervals, sorted by start time. Tasks that never ran
/// (and continuation markers, which have no execution of their own) are
/// omitted.
[[nodiscard]] std::vector<ExecInterval> exec_intervals(
    const TraceGraph& trace);

/// Number of concurrently executing tasks sampled per `bucket_ns` bucket,
/// from the first start to the last end. Empty when nothing ran.
[[nodiscard]] std::vector<std::size_t> parallelism_profile(
    const std::vector<ExecInterval>& intervals, std::int64_t bucket_ns);

/// Maximum concurrency over the run (exact, via an event sweep).
[[nodiscard]] std::size_t max_concurrency(
    const std::vector<ExecInterval>& intervals);

/// Work / span: the average parallelism the graph could support.
[[nodiscard]] double average_parallelism(const TraceGraph& trace);

/// Longest chain of tasks through fork/join/continue edges, ending at the
/// task where the critical path terminates. Ids ordered source -> sink.
[[nodiscard]] std::vector<TaskId> critical_path(const TraceGraph& trace);

/// CSV: "task,label,level,start_ns,end_ns,duration_ns" rows, one per
/// executed task, ready for a spreadsheet Gantt chart.
[[nodiscard]] std::string gantt_csv(const TraceGraph& trace);

/// Work/span summary of one serve job's slice of the trace (job 0 collects
/// the tasks that belong to no job, e.g. a standalone program's whole run).
struct JobProfile {
  std::uint64_t job = 0;
  std::size_t tasks = 0;          ///< nodes owned by the job
  std::size_t continuations = 0;  ///< of which continuation markers
  std::uint64_t data_len = 0;     ///< summed declared payload bytes
  std::int64_t work_ns = 0;       ///< T1: summed execution time
  std::int64_t span_ns = 0;       ///< T-infinity within the job's subgraph

  /// T1 / T-infinity (0 when the job never executed anything).
  [[nodiscard]] double parallelism() const {
    return span_ns > 0 ? static_cast<double>(work_ns) /
                             static_cast<double>(span_ns)
                       : 0.0;
  }
};

/// Per-job work/span profiles, ordered by job id. The span is the longest
/// path through the edges whose endpoints both belong to the job (the same
/// back-edge-tolerant longest path as TraceGraph::span_ns).
[[nodiscard]] std::vector<JobProfile> job_profiles(const TraceGraph& trace);

/// Deterministic plain-text rollup of a trace: node/edge/anomaly counts,
/// fork-depth (level) histogram, and one work/span line per job. This is
/// the `anahy-lint --stats` output; tests pin the format.
[[nodiscard]] std::string trace_stats_text(const TraceGraph& trace);

// ---------------------------------------------------------------------------
// DAG structural linter
// ---------------------------------------------------------------------------

/// Stable diagnostic codes emitted by the linter (and, for W002-W004, by
/// the scheduler online as TraceGraph anomaly records). Never renumber:
/// tests and CI grep for these strings.
namespace lint_code {
/// Join-number mismatch: the declared join budget was only partially
/// consumed (0 < joins_performed < join_number).
inline constexpr const char* kJoinMismatch = "ANAHY-W001";
/// Double-join: a join was attempted on a task whose join budget was
/// already exhausted (recorded online).
inline constexpr const char* kDoubleJoin = "ANAHY-W002";
/// Join on a task id that was never created (recorded online).
inline constexpr const char* kJoinNonexistent = "ANAHY-W003";
/// Declared datalen at athread_create differs from the length expected at
/// the matching athread_join_len (recorded online).
inline constexpr const char* kDatalenMismatch = "ANAHY-W004";
/// Leaked task: a joinable task (join_number > 0) was never joined.
inline constexpr const char* kLeakedTask = "ANAHY-W005";
/// Cycle through fork/continue edges: the spawn structure is corrupt.
/// (Join edges are excluded: an immediate join legitimately points back
/// into the flow that forked the target - see TraceGraph::span_ns.)
inline constexpr const char* kCycle = "ANAHY-W006";
}  // namespace lint_code

/// One linter finding. `task` is the primary subject (kInvalidTaskId when
/// the finding is about the graph as a whole).
struct LintDiagnostic {
  std::string code;
  TaskId task = kInvalidTaskId;
  std::string message;
};

/// Validates the trace graph offline and merges in the anomalies the
/// scheduler recorded online. Deterministic order: sorted by code, then
/// task id. Safe on degenerate input (empty trace, single task, graphs
/// reloaded from truncated or hand-corrupted files): it diagnoses, never
/// crashes.
[[nodiscard]] std::vector<LintDiagnostic> lint_trace(const TraceGraph& trace);

/// Human-readable rendering, one "CODE: task Tn: message" line per
/// diagnostic (the `anahy-lint` output format).
[[nodiscard]] std::string format_diagnostics(
    const std::vector<LintDiagnostic>& diags);

}  // namespace anahy
