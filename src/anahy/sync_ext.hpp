// Synchronization extensions: mutexes, condition variables, semaphores and
// barriers in the athread style.
//
// The paper deliberately ships WITHOUT these ("por questões de desempenho
// operações de sincronização, tais como semáforos e variáveis de condição,
// não foram implementadas, mas estuda-se a entrada delas em um novo
// conjunto de serviços") — fork/join dataflow alone keeps programs
// deterministic. This header is that studied extension set.
//
// CAVEAT (why the paper hesitated): a task that blocks on one of these
// primitives parks its *virtual processor* — the scheduler cannot run
// other ready tasks on it, unlike a blocking join, which helps. Programs
// using them must ensure that the number of simultaneously blocked tasks
// stays below the VP count, or they deadlock. Determinism is also lost:
// results may depend on scheduling order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "anahy/types.hpp"

namespace anahy {

// ---------------------------------------------------------------- mutex

struct athread_mutex_t {
  std::mutex native;
  bool initialized = false;
};

int athread_mutex_init(athread_mutex_t* mutex);
int athread_mutex_destroy(athread_mutex_t* mutex);
int athread_mutex_lock(athread_mutex_t* mutex);
/// Returns kAgain when the mutex is already held.
int athread_mutex_trylock(athread_mutex_t* mutex);
int athread_mutex_unlock(athread_mutex_t* mutex);

// ------------------------------------------------------------- condvar

struct athread_cond_t {
  std::condition_variable_any native;
  bool initialized = false;
};

int athread_cond_init(athread_cond_t* cond);
int athread_cond_destroy(athread_cond_t* cond);
/// `mutex` must be held by the caller; atomically released while waiting.
int athread_cond_wait(athread_cond_t* cond, athread_mutex_t* mutex);
int athread_cond_signal(athread_cond_t* cond);
int athread_cond_broadcast(athread_cond_t* cond);

// ----------------------------------------------------------- semaphore

struct athread_sem_t {
  std::mutex mu;
  std::condition_variable cv;
  long value = 0;
  bool initialized = false;
};

int athread_sem_init(athread_sem_t* sem, long initial);
int athread_sem_destroy(athread_sem_t* sem);
int athread_sem_wait(athread_sem_t* sem);
/// Returns kAgain instead of blocking when the count is zero.
int athread_sem_trywait(athread_sem_t* sem);
int athread_sem_post(athread_sem_t* sem);
/// Current count (monitoring; racy by nature).
long athread_sem_value(athread_sem_t* sem);

// ------------------------------------------------------------- barrier

struct athread_barrier_t {
  std::mutex mu;
  std::condition_variable cv;
  unsigned count = 0;     ///< parties required
  unsigned waiting = 0;
  std::uint64_t cycle = 0;
  bool initialized = false;
};

/// `count` tasks must reach the barrier before any may pass.
int athread_barrier_init(athread_barrier_t* barrier, unsigned count);
int athread_barrier_destroy(athread_barrier_t* barrier);
/// Returns kBarrierSerial for exactly one task per cycle, 0 for the rest.
inline constexpr int kBarrierSerial = -1;
int athread_barrier_wait(athread_barrier_t* barrier);

}  // namespace anahy
