#include "anahy/stats.hpp"

#include <sstream>

namespace anahy {

RuntimeStats::Snapshot RuntimeStats::snapshot() const {
  Snapshot s;
  s.tasks_created = tasks_created_.load(relaxed);
  s.tasks_executed = tasks_executed_.load(relaxed);
  s.joins_total = joins_total_.load(relaxed);
  s.joins_immediate = joins_immediate_.load(relaxed);
  s.joins_inlined = joins_inlined_.load(relaxed);
  s.joins_helped = joins_helped_.load(relaxed);
  s.joins_slept = joins_slept_.load(relaxed);
  s.continuations = continuations_.load(relaxed);
  s.steals = steals_.load(relaxed);
  s.steal_attempts = steal_attempts_.load(relaxed);
  s.tasks_run_by_main = tasks_run_by_main_.load(relaxed);
  s.ready_peak = ready_peak_.load(relaxed);
  return s;
}

std::string RuntimeStats::Snapshot::to_string() const {
  std::ostringstream out;
  out << "tasks created=" << tasks_created << " executed=" << tasks_executed
      << " | joins total=" << joins_total << " immediate=" << joins_immediate
      << " inlined=" << joins_inlined << " helped=" << joins_helped
      << " slept=" << joins_slept << " | continuations=" << continuations
      << " | steals=" << steals << "/" << steal_attempts
      << " | run-by-main=" << tasks_run_by_main
      << " | ready-peak=" << ready_peak;
  return out.str();
}

}  // namespace anahy
