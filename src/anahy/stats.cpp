#include "anahy/stats.hpp"

#include <sstream>

namespace anahy {

namespace {
std::atomic<std::uint64_t> g_stats_instances{0};

thread_local std::uint64_t tls_stripe_owner = 0;
thread_local unsigned tls_stripe_index = 0;
}  // namespace

RuntimeStats::RuntimeStats()
    : instance_id_(g_stats_instances.fetch_add(1, relaxed) + 1) {}

RuntimeStats::Stripe& RuntimeStats::stripe() {
  if (tls_stripe_owner != instance_id_) {
    // First touch from this thread: claim the next free stripe. Threads
    // beyond kStripes-1 all land on the last stripe, which bump() treats
    // as shared (fetch_add), so totals stay exact under any thread count.
    const unsigned i = stripes_used_.fetch_add(1, relaxed);
    tls_stripe_index = i < kStripes - 1 ? i : kStripes - 1;
    tls_stripe_owner = instance_id_;
  }
  return stripes_[tls_stripe_index];
}

RuntimeStats::Snapshot RuntimeStats::snapshot() const {
  std::array<std::uint64_t, kNumHotCounters> sum{};
  for (const Stripe& s : stripes_)
    for (unsigned c = 0; c < kNumHotCounters; ++c)
      sum[c] += s.c[c].load(relaxed);

  Snapshot out;
  out.tasks_created = sum[kTasksCreated];
  out.tasks_executed = sum[kTasksExecuted];
  out.joins_total = sum[kJoinsTotal];
  out.joins_immediate = sum[kJoinsImmediate];
  out.joins_inlined = sum[kJoinsInlined];
  out.joins_helped = sum[kJoinsHelped];
  out.joins_slept = sum[kJoinsSlept];
  out.continuations = sum[kContinuations];
  out.tasks_run_by_main = sum[kTasksRunByMain];
  out.steals = steals_.load(relaxed);
  out.steal_attempts = steal_attempts_.load(relaxed);
  out.ready_peak = ready_peak_.load(relaxed);
  out.wakeups = wakeups_.load(relaxed);
  out.wakeups_skipped = wakeups_skipped_.load(relaxed);
  return out;
}

std::string RuntimeStats::Snapshot::to_string() const {
  std::ostringstream out;
  out << "tasks created=" << tasks_created << " executed=" << tasks_executed
      << " | joins total=" << joins_total << " immediate=" << joins_immediate
      << " inlined=" << joins_inlined << " helped=" << joins_helped
      << " slept=" << joins_slept << " | continuations=" << continuations
      << " | steals=" << steals << "/" << steal_attempts
      << " | run-by-main=" << tasks_run_by_main
      << " | ready-peak=" << ready_peak
      << " | wakeups=" << wakeups << " (+" << wakeups_skipped << " skipped)";
  return out.str();
}

}  // namespace anahy
