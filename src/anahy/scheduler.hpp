// The executive kernel: task creation, the four task lists, and join.
//
// Paper §2.2.1: the scheduling algorithm manages four task lists — READY
// (runnable), FINISHED (done, result not yet joined), BLOCKED (flows split
// at a join whose target has not finished) and UNBLOCKED (flows whose join
// target finished, pending resumption). The ready list lives inside the
// pluggable SchedulingPolicy; the other three are bookkeeping owned here.
//
// Join semantics follow the paper's mono-processor description: a flow that
// joins an unfinished task is split — the code after the join is a new
// continuation task T_{i+1}, blocked on the target (T_j < T_{i+1}). In this
// implementation the continuation is the native stack frame of the joining
// virtual processor: while "blocked" the VP keeps the machine busy by
// (1) pulling the join target itself out of the ready list and running it
// inline, or (2) running any other ready task, and only (3) sleeps when the
// target is running on another VP and nothing else is ready.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stop_token>
#include <string>
#include <unordered_map>
#include <vector>

#include "anahy/policy.hpp"
#include "anahy/stats.hpp"
#include "anahy/task.hpp"
#include "anahy/trace.hpp"
#include "anahy/types.hpp"

namespace anahy {

class Scheduler {
 public:
  struct Options {
    int num_vps = 4;
    PolicyKind policy = PolicyKind::kWorkStealing;
    bool trace = false;
    /// Whether external (non-VP) threads blocked in a join may execute
    /// ready tasks while waiting. When false they only sleep, so the task
    /// concurrency bound is exactly the number of worker VPs.
    bool external_helps = true;
  };

  /// Sizes of the four task lists at one instant (monitoring/tests).
  struct ListSnapshot {
    std::size_t ready = 0;
    std::size_t finished = 0;
    std::size_t blocked = 0;
    std::size_t unblocked = 0;
  };

  explicit Scheduler(const Options& opts);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Fork: creates a task in the READY list. `label` is kept in the trace.
  TaskPtr create_task(TaskBody body, void* input, const TaskAttributes& attr,
                      std::string label = {});

  /// Join: synchronizes with `task`'s completion and retrieves its result.
  /// `vp` identifies the calling virtual processor (kExternalVp for the
  /// program main flow). Returns an `Error` code (kOk on success).
  int join(const TaskPtr& task, void** result, int vp);

  /// Join by id (the athread_t path). Fails with kNotFound when the id was
  /// never created or its join budget is exhausted.
  int join_by_id(TaskId id, void** result, int vp);

  /// Non-blocking join: consumes the result when `task` already finished,
  /// otherwise returns kBusy without waiting (and without helping).
  int try_join(const TaskPtr& task, void** result);

  /// Looks up a live task by id (nullptr if unknown/already reclaimed).
  [[nodiscard]] TaskPtr find(TaskId id) const;

  /// Worker-loop entry: blocks until a ready task is available or stop is
  /// requested; returns nullptr on stop.
  TaskPtr wait_for_task(int vp, const std::stop_token& st);

  /// Executes `task` on the calling thread acting as VP `vp`.
  void run_task(const TaskPtr& task, int vp);

  /// Wakes all sleeping VPs/joiners (used at shutdown).
  void notify_all();

  /// Id of the flow executing on the calling thread (kRootTaskId for the
  /// main flow outside any task).
  [[nodiscard]] static TaskId current_flow_id();

  /// Nesting depth of task frames on the calling thread (0 = main flow).
  [[nodiscard]] static std::size_t current_stack_depth();

  [[nodiscard]] ListSnapshot lists() const;

  /// Counter snapshot, including steal counters from the active policy.
  [[nodiscard]] RuntimeStats::Snapshot stats_snapshot() const;

  [[nodiscard]] RuntimeStats& stats() { return stats_; }

  /// Binds the calling thread to VP `vp` for scheduling locality (called by
  /// VirtualProcessor at thread start; other threads are "external").
  static void bind_thread_to_vp(int vp);
  [[nodiscard]] TraceGraph& trace() { return trace_; }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  /// Per-thread execution frame: which task this thread is running and the
  /// current flow id (updated when a blocking join splits the flow).
  struct Frame {
    Task* task = nullptr;  // nullptr for the root/main flow
    TaskId flow_id = kRootTaskId;
    std::uint32_t level = 0;
  };

  /// Consumes one join on a finished task under `mu_`.
  void consume_finished(const TaskPtr& task, void** result);

  /// True when `task` appears in the calling thread's frame stack.
  static bool on_current_stack(const Task* task);

  /// Current frame of the calling thread (the root frame outside any
  /// task). The root frame is lazily re-initialized when the thread last
  /// touched a *different* scheduler instance, so continuation flow ids
  /// never leak across Runtime lifetimes.
  Frame& current_frame();
  Frame& root_frame();

  static thread_local std::vector<Frame> tls_frames_;
  static thread_local Frame tls_root_;
  static thread_local std::uint64_t tls_root_owner_;
  static thread_local int tls_vp_;

  const std::uint64_t instance_id_;

  Options opts_;
  std::unique_ptr<SchedulingPolicy> policy_;
  mutable RuntimeStats stats_;
  TraceGraph trace_;

  mutable std::mutex mu_;
  std::condition_variable_any ready_cv_;  // workers waiting for ready tasks
  std::condition_variable join_cv_;       // joiners waiting for a finish
  std::unordered_map<TaskId, TaskPtr> live_;
  std::atomic<TaskId> next_id_{1};  // 0 is the root flow
  std::size_t finished_count_ = 0;
  std::atomic<std::size_t> blocked_frames_{0};
  std::atomic<std::size_t> unblocked_frames_{0};
};

}  // namespace anahy
