// The executive kernel: task creation, the four task lists, and join.
//
// Paper §2.2.1: the scheduling algorithm manages four task lists — READY
// (runnable), FINISHED (done, result not yet joined), BLOCKED (flows split
// at a join whose target has not finished) and UNBLOCKED (flows whose join
// target finished, pending resumption). The ready list lives inside the
// pluggable SchedulingPolicy; the other three are bookkeeping owned here.
//
// Join semantics follow the paper's mono-processor description: a flow that
// joins an unfinished task is split — the code after the join is a new
// continuation task T_{i+1}, blocked on the target (T_j < T_{i+1}). In this
// implementation the continuation is the native stack frame of the joining
// virtual processor: while "blocked" the VP keeps the machine busy by
// (1) pulling the join target itself out of the ready list and running it
// inline, or (2) running any other ready task, and only (3) sleeps when the
// target is running on another VP and nothing else is ready.
//
// Concurrency design (docs/SCHEDULER.md): there is no global scheduler
// mutex. The fork/join hot path is lock-free —
//  - task state transitions (kReady -> kRunning -> kFinished -> kJoined)
//    and the join budget are an atomic state machine on Task, so join's
//    fast path acquire-reads the state and CAS-consumes the budget;
//  - the live-task registry is sharded (kRegistryShards buckets keyed by
//    TaskId, each with its own small mutex), so create/find/retire of
//    different tasks never contend;
//  - sleeping uses eventcounts: spawn and finish bump an epoch and only
//    touch a condvar when some VP/joiner is actually asleep.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "anahy/eventcount.hpp"
#include "anahy/observe/profiler.hpp"
#include "anahy/observe/telemetry.hpp"
#include "anahy/policy.hpp"
#include "anahy/stats.hpp"
#include "anahy/task.hpp"
#include "anahy/trace.hpp"
#include "anahy/types.hpp"

namespace anahy {

namespace check {
class Detector;
}  // namespace check

class Scheduler {
 public:
  struct Options {
    int num_vps = 4;
    PolicyKind policy = PolicyKind::kWorkStealing;
    bool trace = false;
    /// Whether external (non-VP) threads blocked in a join may execute
    /// ready tasks while waiting. When false they only sleep, so the task
    /// concurrency bound is exactly the number of worker VPs.
    bool external_helps = true;
    /// Run the determinacy-race detector (anahy::check). Zero cost when
    /// off: the fork/join hot path only tests one pointer.
    bool check = false;
    /// Per-VP telemetry counters (anahy::observe). On by default: a feed is
    /// one relaxed load+store on a VP-private cache line. Turning it off is
    /// the kill switch the overhead benchmark measures against.
    bool telemetry = true;
    /// Span profiling: record every task's execution interval + VP into
    /// per-VP buffers for Chrome-trace export (tools/anahy-profile) and
    /// work/span analysis. Implies `trace`.
    bool profile = false;
  };

  /// Sizes of the four task lists at one instant (monitoring/tests).
  struct ListSnapshot {
    std::size_t ready = 0;
    std::size_t finished = 0;
    std::size_t blocked = 0;
    std::size_t unblocked = 0;
  };

  /// Number of buckets of the sharded live-task registry (power of two;
  /// tasks map to buckets by id, so concurrent create/find/retire of
  /// distinct tasks rarely touch the same bucket mutex).
  static constexpr std::size_t kRegistryShards = 64;

  explicit Scheduler(const Options& opts);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Fork: creates a task in the READY list. `label` is kept in the trace.
  /// The task inherits the forking task's execution context (job identity,
  /// priority class, cancellation/deadline; task_context.hpp) when one is
  /// attached; top-level forks carry none.
  TaskPtr create_task(TaskBody body, void* input, const TaskAttributes& attr,
                      std::string label = {});

  /// Fork with an explicit execution context: the root task of a serve
  /// job. Descendant forks inherit `ctx` automatically; the root task is
  /// exempt from cancellation skipping (ctx->root_task is set here).
  TaskPtr create_task(TaskBody body, void* input, const TaskAttributes& attr,
                      std::string label, TaskContextPtr ctx);

  /// Runs queued tasks on the calling thread until every created task has
  /// executed (service-mode teardown; Options::drain_on_exit). Tasks
  /// forked while draining are drained too. Safe to call while worker VPs
  /// are still running: they keep consuming tasks concurrently and the
  /// call returns once the created == executed fixpoint is reached.
  void drain();

  /// Join: synchronizes with `task`'s completion and retrieves its result.
  /// `vp` identifies the calling virtual processor (kExternalVp for the
  /// program main flow). Returns an `Error` code (kOk on success).
  int join(const TaskPtr& task, void** result, int vp);

  /// Join by id (the athread_t path). Fails with kNotFound when the id was
  /// never created or its join budget is exhausted.
  int join_by_id(TaskId id, void** result, int vp);

  /// Non-blocking join: consumes the result when `task` already finished,
  /// otherwise returns kBusy without waiting (and without helping).
  int try_join(const TaskPtr& task, void** result);

  /// Looks up a live task by id (nullptr if unknown/already reclaimed).
  [[nodiscard]] TaskPtr find(TaskId id) const;

  /// What reap_orphans() released: how many stranded tasks it retired and
  /// the pool bytes their control blocks were charged for.
  struct ReapResult {
    std::size_t tasks = 0;
    std::uint64_t bytes = 0;
  };

  /// Rejuvenation reaper (docs/REJUV.md): retires every registry entry that
  /// is kFinished *and* belongs to a context whose job already resolved.
  /// Such a task exists only because its join budget was never consumed —
  /// the classic serve-layer leak ANAHY-A001/A004 flag — and after
  /// resolution nobody joins it by id anymore (a later join_by_id sees
  /// kNotFound, same as any reclaimed task; joins through a still-held
  /// TaskPtr are unaffected, retire() being idempotent). Ready/running
  /// strays and context-free tasks are left alone.
  ReapResult reap_orphans();

  /// Worker-loop entry: blocks until a ready task is available or stop is
  /// requested; returns nullptr on stop.
  TaskPtr wait_for_task(int vp, const std::stop_token& st);

  /// Executes `task` on the calling thread acting as VP `vp`.
  void run_task(const TaskPtr& task, int vp);

  /// Wakes all sleeping VPs/joiners (used at shutdown).
  void notify_all();

  /// Id of the flow executing on the calling thread (kRootTaskId for the
  /// main flow outside any task).
  [[nodiscard]] static TaskId current_flow_id();

  /// Id of the *task* executing on the calling thread (kRootTaskId for the
  /// main flow). Unlike current_flow_id it never advances to continuation
  /// ids; the race detector keys its graph by task identity.
  [[nodiscard]] static TaskId current_task_id();

  /// Nesting depth of task frames on the calling thread (0 = main flow).
  [[nodiscard]] static std::size_t current_stack_depth();

  /// VP slot the calling thread owns *in this scheduler* (kExternalVp for
  /// foreign threads, or when the thread's binding belongs to another
  /// scheduler instance). Forks and helping joins from a bound thread use
  /// its own lock-free deque; everything else goes through the external
  /// overflow queue.
  [[nodiscard]] int bound_vp() const;

  [[nodiscard]] ListSnapshot lists() const;

  /// Counter snapshot, including steal counters from the active policy.
  [[nodiscard]] RuntimeStats::Snapshot stats_snapshot() const;

  /// Per-VP telemetry snapshot with the ready-task gauge per priority
  /// class filled in from the active policy. Wait-free with respect to the
  /// worker VPs. When Options::telemetry is off the counters are all zero
  /// but the shape (num_vps, ready_by_class) is still filled.
  [[nodiscard]] observe::Snapshot observe_snapshot() const;

  /// The telemetry counter bank (null when Options::telemetry is off).
  [[nodiscard]] observe::Telemetry* telemetry() const { return tele_.get(); }

  /// Drains buffered profiler spans into the trace graph (no-op unless
  /// Options::profile). Idempotent; called before saving the trace.
  void flush_profile();

  [[nodiscard]] RuntimeStats& stats() { return stats_; }

  /// Binds the calling thread to VP slot `vp` of this scheduler: its forks
  /// then push to its own deque (Chase-Lev single-owner discipline).
  /// Called by VirtualProcessor at thread start with worker=true, and by
  /// Runtime for the main thread (main_participates) with worker=false so
  /// main's executions still count as tasks_run_by_main. The binding is
  /// instance-checked: a stale binding from a dead or different scheduler
  /// falls back to the external slot instead of racing a deque owner.
  void bind_thread_to_vp(int vp, bool worker = true);
  [[nodiscard]] TraceGraph& trace() { return trace_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// The determinacy-race detector (null unless Options::check was set).
  [[nodiscard]] check::Detector* detector() { return detector_.get(); }

 private:
  /// Per-thread execution frame: which task this thread is running and the
  /// current flow id (updated when a blocking join splits the flow).
  struct Frame {
    Task* task = nullptr;  // nullptr for the root/main flow
    TaskId flow_id = kRootTaskId;
    std::uint32_t level = 0;
  };

  /// Tiny test-and-set spinlock guarding one registry shard. The critical
  /// sections are a handful of pointer writes (or a short list walk in
  /// find), and 64 shards keep contention rare, so a spinlock beats a
  /// mutex: uncontended acquire is one atomic exchange and release is a
  /// plain store, where pthread mutexes pay a locked RMW on both ends.
  class ShardLock {
   public:
    void lock() {
      while (flag_.exchange(true, std::memory_order_acquire)) {
        while (flag_.load(std::memory_order_relaxed))
          std::this_thread::yield();  // single-core friendly
      }
    }
    void unlock() { flag_.store(false, std::memory_order_release); }

   private:
    std::atomic<bool> flag_{false};
  };

  /// One bucket of the live-task registry: an intrusive doubly-linked list
  /// threaded through the tasks themselves (Task::reg_prev_/reg_next_,
  /// kept alive by Task::registry_guard_). Insert and unlink are O(1) and
  /// allocation-free — a map node per task costs ~10% of a fine-grained
  /// task — while find() (the by-id join path only) walks the bucket.
  struct Shard {
    mutable ShardLock mu;
    Task* head = nullptr;
  };

  [[nodiscard]] Shard& shard(TaskId id) {
    return shards_[static_cast<std::size_t>(id) & (kRegistryShards - 1)];
  }
  [[nodiscard]] const Shard& shard(TaskId id) const {
    return shards_[static_cast<std::size_t>(id) & (kRegistryShards - 1)];
  }

  /// Registers a freshly created task in its shard (O(1), no allocation).
  void register_task(const TaskPtr& task);

  /// Removes a retired (kJoined) task from the registry.
  void retire(Task* task);

  /// Consumes one join on `task` after the caller observed kFinished.
  /// Returns kOk, or kNotFound when the budget raced away.
  int try_consume(const TaskPtr& task, void** result);

  /// join() body; the public wrapper adds the ANAHY-W002 anomaly record
  /// when a join fails because the budget was already exhausted.
  /// Records the ANAHY-W002 anomaly for a join past the budget (cold path).
  void record_double_join(const Task& task);

  /// True when `task` appears in the calling thread's frame stack.
  static bool on_current_stack(const Task* task);

  /// Current frame of the calling thread (the root frame outside any
  /// task). The root frame is lazily re-initialized when the thread last
  /// touched a *different* scheduler instance, so continuation flow ids
  /// never leak across Runtime lifetimes.
  Frame& current_frame();
  Frame& root_frame();

  /// True when the calling thread is a worker VP of this scheduler bound
  /// via bind_thread_to_vp(vp, /*worker=*/true).
  [[nodiscard]] bool is_bound_worker() const;

  static thread_local std::vector<Frame> tls_frames_;
  static thread_local Frame tls_root_;
  static thread_local std::uint64_t tls_root_owner_;
  static thread_local int tls_vp_;
  static thread_local std::uint64_t tls_vp_owner_;
  static thread_local bool tls_worker_;

  const std::uint64_t instance_id_;

  Options opts_;
  std::unique_ptr<SchedulingPolicy> policy_;
  mutable RuntimeStats stats_;
  TraceGraph trace_;
  std::unique_ptr<check::Detector> detector_;
  std::unique_ptr<observe::Telemetry> tele_;       // null = telemetry off
  std::unique_ptr<observe::SpanProfiler> profiler_;  // null = profiling off

  std::array<Shard, kRegistryShards> shards_;
  EventCount ready_ec_;  // workers waiting for ready tasks
  EventCount join_ec_;   // joiners waiting for a finish (or for help work)
  std::atomic<TaskId> next_id_{1};  // 0 is the root flow
  std::atomic<std::size_t> finished_count_{0};
  std::atomic<std::size_t> blocked_frames_{0};
  std::atomic<std::size_t> unblocked_frames_{0};
};

}  // namespace anahy
