// Execution-graph tracer: records the fork/join/continuation structure of a
// run so tools can regenerate the paper's Figures 2, 4 and 5, and so tests
// can assert graph invariants (level monotonicity, matched joins, work/span).
//
// Beyond the structural graph, the trace also carries the bookkeeping the
// DAG linter (trace_analysis.hpp, `anahy-lint`) needs: per-task join budget
// and consumption, declared payload size, and runtime anomaly events
// (double-join, join-on-nonexistent, datalen mismatch) recorded online by
// the scheduler as they happen. A trace can be saved to / loaded from a
// plain-text file, so diagnostics can be replayed offline.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "anahy/types.hpp"

namespace anahy {

/// One traced task (includes the synthetic continuation tasks created when
/// a flow splits at a blocking join, per paper §2.2.1).
struct TraceNode {
  TaskId id = kInvalidTaskId;
  TaskId parent = kInvalidTaskId;   ///< forking task (creation edge)
  std::uint32_t level = 0;          ///< depth in the fork tree
  bool is_continuation = false;     ///< T_{i+1} created by a blocked join
  std::int64_t start_ns = -1;       ///< execution start, relative to the
                                    ///< trace epoch (-1 = never ran)
  std::int64_t exec_ns = 0;         ///< measured execution cost
  int join_number = -1;             ///< declared join budget (-1 = unknown,
                                    ///< e.g. the root flow / continuations)
  int joins_performed = 0;          ///< joins actually consumed on this task
  std::uint64_t data_len = 0;       ///< declared payload size (attr datalen)
  std::uint64_t job = 0;            ///< owning serve job id (0 = none)
  int vp = kUnknownVp;              ///< executing VP slot (trace v3; -2 =
                                    ///< unknown, -1 = external thread)
  std::string label;                ///< optional user label

  /// Sentinel for "profiling was off / pre-v3 trace": distinct from the
  /// external-thread id (kExternalVp == -1).
  static constexpr int kUnknownVp = -2;
};

/// Directed edge kinds of the execution graph.
enum class TraceEdgeKind : std::uint8_t {
  kFork,      ///< parent forked child
  kJoin,      ///< join target -> joiner: result dataflow
  kContinue,  ///< T_i -> T_{i+1}: flow split at a blocking join
};

struct TraceEdge {
  TaskId from = kInvalidTaskId;
  TaskId to = kInvalidTaskId;
  TraceEdgeKind kind = TraceEdgeKind::kFork;
  std::int64_t ts_ns = -1;  ///< when the edge event happened, relative to
                            ///< the trace epoch (trace v3; -1 = unstamped)
  int vp = TraceNode::kUnknownVp;  ///< VP that performed the fork/join
};

/// A runtime anomaly observed online (as opposed to the structural
/// properties the offline linter recomputes from the graph). `code` is a
/// stable `ANAHY-Wxxx` diagnostic code (table in docs/CHECKING.md).
struct TraceAnomaly {
  std::string code;
  TaskId task = kInvalidTaskId;
  std::string detail;
};

/// Thread-safe trace accumulator. Disabled tracing costs one branch per
/// event; enabled tracing serializes on one mutex (fine for analysis runs).
class TraceGraph {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// `job` is the serve-layer job id owning the task (0 = none); it becomes
  /// the trace v2 job column so anahy-lint can slice per job.
  void record_task(TaskId id, TaskId parent, std::uint32_t level,
                   bool is_continuation, std::uint64_t job = 0);
  void record_edge(TaskId from, TaskId to, TraceEdgeKind kind);
  /// record_edge plus the event timestamp and performing VP (trace v3;
  /// written in profile mode so flow arrows can be drawn between tracks).
  void record_edge_stamped(TaskId from, TaskId to, TraceEdgeKind kind,
                           std::int64_t ts_ns, int vp);
  void record_exec_ns(TaskId id, std::int64_t ns);
  /// Records the task's execution interval [start, start + dur) relative
  /// to the trace epoch.
  void record_exec_interval(TaskId id, std::int64_t start_ns,
                            std::int64_t dur_ns);
  /// record_exec_interval plus the executing VP slot (trace v3). This is
  /// the sink SpanProfiler::flush_into drains buffered spans through.
  void record_span(TaskId id, std::int64_t start_ns, std::int64_t dur_ns,
                   int vp);
  void record_label(TaskId id, std::string label);

  /// Records the creation attributes the linter checks against: declared
  /// join budget and payload size.
  void record_task_attrs(TaskId id, int join_number, std::uint64_t data_len);

  /// Counts one successfully consumed join on `id`.
  void record_join_performed(TaskId id);

  /// Records an online anomaly event (stable `ANAHY-Wxxx` code).
  void record_anomaly(std::string code, TaskId task, std::string detail);

  /// True when `id` was ever recorded (used to tell a double-join on a
  /// retired task apart from a join on an id that never existed).
  [[nodiscard]] bool has_node(TaskId id) const;

  /// Nanoseconds elapsed from the trace epoch (object construction or the
  /// last clear()) to now; use for start_ns stamps.
  [[nodiscard]] std::int64_t now_ns() const;

  [[nodiscard]] std::vector<TraceNode> nodes() const;
  [[nodiscard]] std::vector<TraceEdge> edges() const;
  [[nodiscard]] std::vector<TraceAnomaly> anomalies() const;

  /// Total measured execution time over all tasks (the paper-world "T1").
  [[nodiscard]] std::int64_t work_ns() const;

  /// Critical path through fork/join/continue edges (the "T-infinity").
  /// Requires an acyclic trace (always true for fork/join programs).
  [[nodiscard]] std::int64_t span_ns() const;

  /// Histogram: tasks per level (paper Fig. 2 is drawn by levels).
  [[nodiscard]] std::map<std::uint32_t, std::size_t> level_histogram() const;

  /// GraphViz DOT rendering; continuations are drawn as dashed boxes.
  [[nodiscard]] std::string to_dot() const;

  /// Serializes the trace to a line-oriented text format (`anahy-trace v3`
  /// header, then `node`/`edge`/`anomaly` records) that load() reads back
  /// and `anahy-lint` replays. v2 added a per-node job-id column; v3 adds
  /// a per-node vp column and per-edge timestamp/vp columns (filled in
  /// profile mode, sentinel otherwise).
  void save(std::ostream& out) const;

  /// Replaces this graph's contents with a trace parsed from `in`. The
  /// `anahy-trace v1`, `v2` and `v3` headers are all accepted (v1 nodes
  /// load with job = 0; pre-v3 records load with vp unknown and edges
  /// unstamped). Parsing is tolerant: a truncated or partially corrupt file
  /// keeps every record that parsed, returns false, and describes the first
  /// problem in `*error` (when non-null). A missing/foreign header fails
  /// immediately.
  bool load(std::istream& in, std::string* error = nullptr);

  void clear();

 private:
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::map<TaskId, TraceNode> nodes_;
  std::vector<TraceEdge> edges_;
  std::vector<TraceAnomaly> anomalies_;
};

}  // namespace anahy
