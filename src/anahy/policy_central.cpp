#include "anahy/policy_central.hpp"

#include <algorithm>
#include <stdexcept>

namespace anahy {

CentralQueuePolicy::CentralQueuePolicy(PolicyKind kind) : kind_(kind) {
  if (kind != PolicyKind::kFifo && kind != PolicyKind::kLifo)
    throw std::invalid_argument("CentralQueuePolicy: kind must be fifo/lifo");
}

void CentralQueuePolicy::push(TaskPtr task, int /*vp*/) {
  std::lock_guard lock(mu_);
  queue_.push_back(std::move(task));
}

TaskPtr CentralQueuePolicy::pop(int /*vp*/) {
  std::lock_guard lock(mu_);
  if (queue_.empty()) return nullptr;
  TaskPtr task;
  if (kind_ == PolicyKind::kFifo) {
    task = std::move(queue_.front());
    queue_.pop_front();
  } else {
    task = std::move(queue_.back());
    queue_.pop_back();
  }
  return task;
}

bool CentralQueuePolicy::remove_specific(const TaskPtr& task, int /*vp*/) {
  std::lock_guard lock(mu_);
  const auto it = std::find(queue_.begin(), queue_.end(), task);
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

std::size_t CentralQueuePolicy::approx_size() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

}  // namespace anahy
