// Fundamental identifiers, states and error codes of the Anahy runtime.
#pragma once

#include <cstddef>
#include <cstdint>

namespace anahy {

/// Unique, monotonically increasing task identifier. Id 0 is reserved for
/// the implicit root flow (the paper's T0, i.e. the program's main flow).
using TaskId = std::uint64_t;

inline constexpr TaskId kRootTaskId = 0;
inline constexpr TaskId kInvalidTaskId = ~TaskId{0};

/// Life cycle of an Anahy task (paper §2.2.1).
///
/// `Created -> Ready -> Running -> Finished -> Joined` is the normal path.
/// A *flow* that executes a join on an unfinished task is logically split:
/// its continuation is "blocked" until the target finishes ("unblocked"),
/// which the scheduler tracks as continuation records, not task states.
enum class TaskState : std::uint8_t {
  kCreated,   ///< allocated, not yet visible to the scheduler
  kReady,     ///< in the ready list, waiting for a VP
  kRunning,   ///< being executed by a virtual processor
  kFinished,  ///< done; result retained until all joins are performed
  kJoined,    ///< all joins performed; result ownership transferred
};

[[nodiscard]] constexpr const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::kCreated: return "created";
    case TaskState::kReady: return "ready";
    case TaskState::kRunning: return "running";
    case TaskState::kFinished: return "finished";
    case TaskState::kJoined: return "joined";
  }
  return "?";
}

/// POSIX-flavoured error codes returned by the athread layer (and by the
/// anahy::serve job service, which reuses the same numbering).
enum Error : int {
  kOk = 0,
  kInvalid = 22,   ///< EINVAL: bad argument / attribute
  kNotFound = 3,   ///< ESRCH: no such task (or join budget exhausted)
  kDeadlock = 35,  ///< EDEADLK: join on a task in the caller's own stack
  kAgain = 11,     ///< EAGAIN: resource temporarily unavailable
  kPerm = 1,       ///< EPERM: operation not permitted in this context
  kBusy = 16,      ///< EBUSY: target not finished (athread_tryjoin)
  kOverloaded = 105,  ///< ENOBUFS: admission queue full, job rejected
  kTimedOut = 110,    ///< ETIMEDOUT: job deadline elapsed before completion
  kAborted = 125,     ///< ECANCELED: job aborted by shutdown/cancel
  kFaulted = 5,       ///< EIO: a job body threw; message in JobResult
  kUnreachable = 113,  ///< EHOSTUNREACH: remote call retries exhausted
  kMigrated = 18,  ///< EXDEV: queued job exported to another mesh node
};

/// Priority class of a task (and of the serve-layer job that forked it).
/// Smaller value = more urgent; the work-stealing policy services classes
/// in this order at every pop and steal (docs/SERVE.md).
enum class Priority : std::uint8_t {
  kHigh = 0,    ///< latency-sensitive, serviced first
  kNormal = 1,  ///< the default class
  kBatch = 2,   ///< throughput work, runs when nothing better is ready
};

inline constexpr std::size_t kNumPriorities = 3;

[[nodiscard]] constexpr const char* to_string(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

/// Ready-list management strategies supported by the executive kernel.
enum class PolicyKind : std::uint8_t {
  kFifo,               ///< single centralized FIFO queue (breadth-first)
  kLifo,               ///< single centralized LIFO stack (depth-first)
  kWorkStealing,       ///< per-VP lock-free Chase-Lev deques (default)
  kWorkStealingMutex,  ///< mutex-per-deque baseline (benchmark reference)
};

[[nodiscard]] constexpr const char* to_string(PolicyKind p) {
  switch (p) {
    case PolicyKind::kFifo: return "fifo";
    case PolicyKind::kLifo: return "lifo";
    case PolicyKind::kWorkStealing: return "steal";
    case PolicyKind::kWorkStealingMutex: return "steal_mutex";
  }
  return "?";
}

}  // namespace anahy
