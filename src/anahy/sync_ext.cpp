#include "anahy/sync_ext.hpp"

namespace anahy {

// ---------------------------------------------------------------- mutex

int athread_mutex_init(athread_mutex_t* mutex) {
  if (mutex == nullptr) return kInvalid;
  mutex->initialized = true;
  return kOk;
}

int athread_mutex_destroy(athread_mutex_t* mutex) {
  if (mutex == nullptr || !mutex->initialized) return kInvalid;
  mutex->initialized = false;
  return kOk;
}

int athread_mutex_lock(athread_mutex_t* mutex) {
  if (mutex == nullptr || !mutex->initialized) return kInvalid;
  mutex->native.lock();
  return kOk;
}

int athread_mutex_trylock(athread_mutex_t* mutex) {
  if (mutex == nullptr || !mutex->initialized) return kInvalid;
  return mutex->native.try_lock() ? kOk : kAgain;
}

int athread_mutex_unlock(athread_mutex_t* mutex) {
  if (mutex == nullptr || !mutex->initialized) return kInvalid;
  mutex->native.unlock();
  return kOk;
}

// ------------------------------------------------------------- condvar

int athread_cond_init(athread_cond_t* cond) {
  if (cond == nullptr) return kInvalid;
  cond->initialized = true;
  return kOk;
}

int athread_cond_destroy(athread_cond_t* cond) {
  if (cond == nullptr || !cond->initialized) return kInvalid;
  cond->initialized = false;
  return kOk;
}

int athread_cond_wait(athread_cond_t* cond, athread_mutex_t* mutex) {
  if (cond == nullptr || !cond->initialized || mutex == nullptr ||
      !mutex->initialized)
    return kInvalid;
  cond->native.wait(mutex->native);
  return kOk;
}

int athread_cond_signal(athread_cond_t* cond) {
  if (cond == nullptr || !cond->initialized) return kInvalid;
  cond->native.notify_one();
  return kOk;
}

int athread_cond_broadcast(athread_cond_t* cond) {
  if (cond == nullptr || !cond->initialized) return kInvalid;
  cond->native.notify_all();
  return kOk;
}

// ----------------------------------------------------------- semaphore

int athread_sem_init(athread_sem_t* sem, long initial) {
  if (sem == nullptr || initial < 0) return kInvalid;
  sem->value = initial;
  sem->initialized = true;
  return kOk;
}

int athread_sem_destroy(athread_sem_t* sem) {
  if (sem == nullptr || !sem->initialized) return kInvalid;
  sem->initialized = false;
  return kOk;
}

int athread_sem_wait(athread_sem_t* sem) {
  if (sem == nullptr || !sem->initialized) return kInvalid;
  std::unique_lock lock(sem->mu);
  sem->cv.wait(lock, [sem] { return sem->value > 0; });
  --sem->value;
  return kOk;
}

int athread_sem_trywait(athread_sem_t* sem) {
  if (sem == nullptr || !sem->initialized) return kInvalid;
  std::lock_guard lock(sem->mu);
  if (sem->value <= 0) return kAgain;
  --sem->value;
  return kOk;
}

int athread_sem_post(athread_sem_t* sem) {
  if (sem == nullptr || !sem->initialized) return kInvalid;
  {
    std::lock_guard lock(sem->mu);
    ++sem->value;
  }
  sem->cv.notify_one();
  return kOk;
}

long athread_sem_value(athread_sem_t* sem) {
  if (sem == nullptr || !sem->initialized) return -1;
  std::lock_guard lock(sem->mu);
  return sem->value;
}

// ------------------------------------------------------------- barrier

int athread_barrier_init(athread_barrier_t* barrier, unsigned count) {
  if (barrier == nullptr || count == 0) return kInvalid;
  barrier->count = count;
  barrier->waiting = 0;
  barrier->cycle = 0;
  barrier->initialized = true;
  return kOk;
}

int athread_barrier_destroy(athread_barrier_t* barrier) {
  if (barrier == nullptr || !barrier->initialized) return kInvalid;
  barrier->initialized = false;
  return kOk;
}

int athread_barrier_wait(athread_barrier_t* barrier) {
  if (barrier == nullptr || !barrier->initialized) return kInvalid;
  std::unique_lock lock(barrier->mu);
  const std::uint64_t my_cycle = barrier->cycle;
  if (++barrier->waiting == barrier->count) {
    barrier->waiting = 0;
    ++barrier->cycle;
    lock.unlock();
    barrier->cv.notify_all();
    return kBarrierSerial;  // the last arriver is the serial task
  }
  barrier->cv.wait(lock, [&] { return barrier->cycle != my_cycle; });
  return kOk;
}

}  // namespace anahy
