// The seed's mutex-based work-stealing policy, kept as a comparison
// baseline (PolicyKind::kWorkStealingMutex) for the spawn-throughput
// microbenchmark and the policy ablations. Same owner-LIFO / thief-FIFO
// discipline as WorkStealingPolicy, but every deque operation takes that
// deque's mutex and remove_specific / approx_size sweep all deques.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "anahy/policy.hpp"

namespace anahy {

/// Per-VP deques guarded by small mutexes (the owner path and the thief
/// path contend only on the same deque). Slot `num_vps` is the overflow
/// deque used by external (non-VP) threads such as the program main flow.
class MutexWorkStealingPolicy final : public SchedulingPolicy {
 public:
  explicit MutexWorkStealingPolicy(int num_vps);

  void push(TaskPtr task, int vp) override;
  TaskPtr pop(int vp) override;
  bool remove_specific(const TaskPtr& task, int vp) override;
  [[nodiscard]] std::size_t approx_size() const override;
  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::kWorkStealingMutex;
  }

  [[nodiscard]] std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t steal_attempts() const {
    return steal_attempts_.load(std::memory_order_relaxed);
  }

 private:
  struct Deque {
    mutable std::mutex mu;
    std::deque<TaskPtr> q;
  };

  /// Maps a caller id to its deque slot (external callers share the last).
  [[nodiscard]] std::size_t slot(int vp) const;

  TaskPtr steal_from_others(std::size_t self);

  std::vector<Deque> deques_;  // num_vps + 1 slots
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> rr_seed_{0};
};

}  // namespace anahy
