// Typed C++ layer over the fork/join core: anahy::spawn / Handle<T>::join.
//
// The C-style athread API moves raw pointers, as the paper does. This
// header provides the type-safe equivalent for C++ code: the closure and
// the result live in a shared state owned by the handle, so there is no
// manual memory management and no void* casting in user code.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "anahy/runtime.hpp"

namespace anahy {

/// Typed join handle returned by spawn(). Movable, not copyable; join()
/// may be called exactly once (matching the default join budget of 1).
template <typename T>
class Handle {
 public:
  Handle() = default;
  Handle(Runtime* rt, TaskPtr task, std::shared_ptr<std::optional<T>> slot)
      : rt_(rt), task_(std::move(task)), slot_(std::move(slot)) {}

  Handle(Handle&&) noexcept = default;
  Handle& operator=(Handle&&) noexcept = default;
  Handle(const Handle&) = delete;
  Handle& operator=(const Handle&) = delete;

  [[nodiscard]] bool valid() const { return task_ != nullptr; }
  [[nodiscard]] TaskId id() const {
    return task_ ? task_->id() : kInvalidTaskId;
  }

  /// Waits for the task and returns its value. Throws std::runtime_error
  /// on a join error or when the handle was already joined.
  T join() {
    if (!valid()) throw std::runtime_error("join on an invalid Anahy handle");
    const int rc = rt_->join(task_, nullptr);
    if (rc != kOk)
      throw std::runtime_error("athread_join failed, error " +
                               std::to_string(rc));
    task_.reset();
    if (!slot_->has_value())
      throw std::runtime_error("Anahy task finished without a result");
    T value = std::move(**slot_);
    slot_.reset();
    return value;
  }

 private:
  Runtime* rt_ = nullptr;
  TaskPtr task_;
  std::shared_ptr<std::optional<T>> slot_;
};

/// Forks `fn(args...)` as an Anahy task on `rt`; the result is retrieved
/// with Handle::join(). `fn` and `args` are copied/moved into the task.
template <typename F, typename... Args>
auto spawn(Runtime& rt, F&& fn, Args&&... args)
    -> Handle<std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>> {
  using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>;
  static_assert(!std::is_void_v<R>,
                "spawn requires a value-returning callable; return a marker "
                "type for side-effect-only tasks");
  auto slot = std::make_shared<std::optional<R>>();
  auto bound = [slot, fn = std::forward<F>(fn),
                ... as = std::forward<Args>(args)](void*) mutable -> void* {
    slot->emplace(fn(std::move(as)...));
    return nullptr;
  };
  TaskPtr task = rt.fork(std::move(bound), nullptr);
  return Handle<R>{&rt, std::move(task), std::move(slot)};
}

/// spawn() variant that attaches a trace label (shows up in DOT dumps).
template <typename F, typename... Args>
auto spawn_labeled(Runtime& rt, std::string label, F&& fn, Args&&... args)
    -> Handle<std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>> {
  using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Args>...>;
  auto slot = std::make_shared<std::optional<R>>();
  auto bound = [slot, fn = std::forward<F>(fn),
                ... as = std::forward<Args>(args)](void*) mutable -> void* {
    slot->emplace(fn(std::move(as)...));
    return nullptr;
  };
  TaskPtr task =
      rt.fork(std::move(bound), nullptr, TaskAttributes{}, std::move(label));
  return Handle<R>{&rt, std::move(task), std::move(slot)};
}

}  // namespace anahy
