// Eventcount: a wait/notify primitive whose notify path is two atomic
// operations when nobody is sleeping.
//
// The seed scheduler did `notify_one` + `notify_all` on every spawn, i.e. a
// potential syscall on the hot path even with all VPs busy. An eventcount
// splits the protocol: producers always bump an epoch (one uncontended RMW)
// and only touch the mutex/condvar when the waiter count is non-zero;
// consumers announce themselves (prepare_wait), re-check their condition,
// and only then commit to sleeping.
//
// Lost-wakeup argument (store-buffering / Dekker shape):
//   waiter:   waiters_.fetch_add (seq_cst); e = epoch_.load (seq_cst);
//             re-check work; sleep until epoch_ != e
//   notifier: publish work; epoch_.fetch_add (seq_cst); read waiters_
// In the seq_cst total order either the notifier's epoch bump precedes the
// waiter's epoch load — then the waiter reads the bumped epoch, the RMW
// read synchronizes-with it, and the re-check is guaranteed to observe the
// published work — or the waiter's waiters_ increment precedes the
// notifier's waiters_ read, so the notifier sees a sleeper and notifies
// through the mutex; the epoch re-check under the mutex closes the window
// between the waiter's re-check and its actual sleep.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stop_token>

namespace anahy {

class EventCount {
 public:
  using Epoch = std::uint64_t;

  /// Step 1 of waiting: announce intent and snapshot the epoch. The caller
  /// MUST re-check its wait condition between prepare_wait and
  /// commit_wait, and call cancel_wait instead when the condition turned
  /// true.
  Epoch prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  void cancel_wait() { waiters_.fetch_sub(1, std::memory_order_relaxed); }

  /// Step 2: sleep until the epoch moves past the snapshot.
  void commit_wait(Epoch e) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] {
      return epoch_.load(std::memory_order_acquire) != e;
    });
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Stop-token-aware variant; returns false when woken by the stop request
  /// with the epoch unchanged.
  bool commit_wait(Epoch e, const std::stop_token& st) {
    std::unique_lock lock(mu_);
    const bool moved = cv_.wait(lock, st, [&] {
      return epoch_.load(std::memory_order_acquire) != e;
    });
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    return moved;
  }

  void notify_one() { notify(false); }
  void notify_all() { notify(true); }

  /// Notifications that found a sleeper / that skipped the slow path
  /// entirely (monitoring).
  [[nodiscard]] std::uint64_t wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wakeups_skipped() const {
    return skipped_.load(std::memory_order_relaxed);
  }

 private:
  void notify(bool all) {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) {
      skipped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    {
      // Taking the mutex serializes with a waiter between its epoch
      // re-check and its cv wait, so the notify below cannot be lost.
      std::lock_guard lock(mu_);
    }
    if (all) {
      cv_.notify_all();
    } else {
      cv_.notify_one();
    }
  }

  std::atomic<Epoch> epoch_{0};
  std::atomic<std::int64_t> waiters_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> skipped_{0};
  std::mutex mu_;
  std::condition_variable_any cv_;
};

}  // namespace anahy
