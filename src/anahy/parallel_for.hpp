// Loop-parallel conveniences built on fork/join: parallel_for over an
// index range and parallel_reduce with a user combiner. These are the
// split-compute-merge pattern of the paper's applications (§3.1) packaged
// as a library facility.
#pragma once

#include <functional>
#include <stdexcept>
#include <vector>

#include "anahy/runtime.hpp"
#include "anahy/spawn.hpp"

namespace anahy {

/// Contiguous index sub-range [begin, end).
struct IndexRange {
  long begin = 0;
  long end = 0;
};

/// Splits [begin, end) into at most `tasks` contiguous ranges; the last
/// range absorbs the remainder (the paper's band-splitting rule).
[[nodiscard]] inline std::vector<IndexRange> split_range(long begin, long end,
                                                         int tasks) {
  if (end < begin) throw std::invalid_argument("split_range: end < begin");
  if (tasks < 1) throw std::invalid_argument("split_range: tasks < 1");
  const long n = end - begin;
  if (n == 0) return {};
  if (tasks > n) tasks = static_cast<int>(n);
  const long base = n / tasks;
  std::vector<IndexRange> out;
  out.reserve(static_cast<std::size_t>(tasks));
  long at = begin;
  for (int t = 0; t < tasks; ++t) {
    const long hi = t == tasks - 1 ? end : at + base;
    out.push_back({at, hi});
    at = hi;
  }
  return out;
}

/// Runs body(i) for every i in [begin, end), split into `tasks` Anahy
/// tasks. `body` must be safe to call concurrently for distinct i.
template <typename Body>
void parallel_for(Runtime& rt, long begin, long end, int tasks, Body&& body) {
  const auto ranges = split_range(begin, end, tasks);
  if (ranges.size() <= 1) {
    for (long i = begin; i < end; ++i) body(i);
    return;
  }
  std::vector<Handle<int>> handles;
  handles.reserve(ranges.size());
  for (const IndexRange r : ranges) {
    handles.push_back(spawn(rt, [r, &body] {
      for (long i = r.begin; i < r.end; ++i) body(i);
      return 0;
    }));
  }
  for (auto& h : handles) h.join();
}

/// Parallel reduction: combine(map(i)) over [begin, end), associativity
/// required of `combine`; `identity` is its neutral element. Combination
/// happens in deterministic range order, so non-commutative but
/// associative operators work too.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(Runtime& rt, long begin, long end, int tasks,
                                T identity, Map&& map, Combine&& combine) {
  const auto ranges = split_range(begin, end, tasks);
  std::vector<Handle<T>> handles;
  handles.reserve(ranges.size());
  for (const IndexRange r : ranges) {
    handles.push_back(spawn(rt, [r, identity, &map, &combine] {
      T acc = identity;
      for (long i = r.begin; i < r.end; ++i) acc = combine(acc, map(i));
      return acc;
    }));
  }
  T total = identity;
  for (auto& h : handles) total = combine(total, h.join());
  return total;
}

}  // namespace anahy
