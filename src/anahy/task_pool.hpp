// Thread-caching block allocator for Task control blocks.
//
// Every fork allocates one shared_ptr control block (~200 B: the Task plus
// the inplace refcount header) and every last join frees it. At fib-grain
// task sizes the general-purpose allocator is a measurable slice of the
// per-task cost, so freed blocks are kept in a per-thread free list bucketed
// by size class: the dominant pattern — fork and then join-inline on the
// same thread — turns into two pointer moves with no lock and no malloc.
//
// Design:
//  - Blocks are bucketed in 64-byte classes up to 1 KiB. Larger or
//    over-aligned requests fall through to ::operator new / delete.
//  - Each per-thread bucket is capped (kCacheCap blocks). Overflow goes back
//    to the system, so a producer/consumer pattern (allocate on thread A,
//    free on thread B) cannot grow B's cache without bound.
//  - The cache is a function-local thread_local; a trivially destructible
//    tls flag records its destruction so frees that happen during static
//    destruction (e.g. the athread global Runtime torn down after main's
//    thread-locals) fall back to ::operator delete instead of touching a
//    dead cache.
//  - Under AddressSanitizer the cache is a passthrough so use-after-free
//    diagnostics on tasks keep their precision. ThreadSanitizer keeps the
//    cache enabled: it is thread-local by construction, and a racy access
//    to a recycled block still races on the new object, which TSan reports.
#pragma once

#include <array>
#include <cstddef>
#include <new>
#include <vector>

namespace anahy {

namespace pool_detail {

inline constexpr std::size_t kClassBytes = 64;
inline constexpr std::size_t kNumClasses = 16;  // up to 1 KiB
inline constexpr std::size_t kCacheCap = 128;   // blocks kept per class

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ANAHY_POOL_ASAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define ANAHY_POOL_ASAN 1
#endif
#if defined(ANAHY_POOL_ASAN)
inline constexpr bool kCacheEnabled = false;
#else
inline constexpr bool kCacheEnabled = true;
#endif

/// Index of the size class serving `bytes`, or kNumClasses when too large.
[[nodiscard]] inline std::size_t size_class(std::size_t bytes) {
  return (bytes + kClassBytes - 1) / kClassBytes - 1;
}

[[nodiscard]] inline std::size_t class_bytes(std::size_t cls) {
  return (cls + 1) * kClassBytes;
}

struct FreeCache;
inline thread_local bool tls_cache_dead = false;

struct FreeCache {
  std::array<std::vector<void*>, kNumClasses> lists;
  ~FreeCache() {
    tls_cache_dead = true;
    for (auto& list : lists)
      for (void* p : list) ::operator delete(p);
  }
};

[[nodiscard]] inline FreeCache& cache() {
  static thread_local FreeCache c;
  return c;
}

[[nodiscard]] inline void* pool_alloc(std::size_t bytes, std::size_t align) {
  if (kCacheEnabled && align <= alignof(std::max_align_t) &&
      !tls_cache_dead) {
    const std::size_t cls = size_class(bytes);
    if (cls < kNumClasses) {
      auto& list = cache().lists[cls];
      if (!list.empty()) {
        void* p = list.back();
        list.pop_back();
        return p;
      }
      // Allocate the full class size so the block is reusable for any
      // request in this class when it comes back.
      return ::operator new(class_bytes(cls));
    }
  }
  return ::operator new(bytes, std::align_val_t{align});
}

inline void pool_free(void* p, std::size_t bytes, std::size_t align) {
  if (kCacheEnabled && align <= alignof(std::max_align_t)) {
    const std::size_t cls = size_class(bytes);
    if (cls < kNumClasses) {
      if (!tls_cache_dead) {
        auto& list = cache().lists[cls];
        if (list.size() < kCacheCap) {
          list.push_back(p);
          return;
        }
      }
      ::operator delete(p);
      return;
    }
  }
  ::operator delete(p, std::align_val_t{align});
}

}  // namespace pool_detail

/// Minimal allocator over the thread-caching pool, for
/// std::allocate_shared<Task>: the shared_ptr control block and the Task are
/// one block, allocated and usually freed from the calling thread's cache.
template <class T>
class TaskPoolAllocator {
 public:
  using value_type = T;

  TaskPoolAllocator() = default;
  template <class U>
  TaskPoolAllocator(const TaskPoolAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        pool_detail::pool_alloc(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_detail::pool_free(p, n * sizeof(T), alignof(T));
  }

  template <class U>
  bool operator==(const TaskPoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace anahy
