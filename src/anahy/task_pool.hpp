// Thread-caching block allocator for Task control blocks, with memory-
// state accounting for the anahy::aging analysis pass.
//
// Every fork allocates one shared_ptr control block (~200 B: the Task plus
// the inplace refcount header) and every last join frees it. At fib-grain
// task sizes the general-purpose allocator is a measurable slice of the
// per-task cost, so freed blocks are kept in a per-thread free list bucketed
// by size class: the dominant pattern — fork and then join-inline on the
// same thread — turns into two pointer moves with no lock and no malloc.
//
// Design:
//  - Blocks are bucketed in 64-byte classes up to 1 KiB. Larger or
//    over-aligned requests fall through to ::operator new / delete.
//  - Each per-thread bucket is capped (kCacheCap blocks). Overflow goes back
//    to the system, so a producer/consumer pattern (allocate on thread A,
//    free on thread B) cannot grow B's cache without bound.
//  - The cache is a function-local thread_local; a trivially destructible
//    tls flag records its destruction so frees that happen during static
//    destruction (e.g. the athread global Runtime torn down after main's
//    thread-locals) fall back to ::operator delete instead of touching a
//    dead cache.
//  - Under AddressSanitizer the cache is a passthrough (exact request sizes,
//    so use-after-free diagnostics on tasks keep their precision).
//    ThreadSanitizer keeps the cache enabled: it is thread-local by
//    construction, and a racy access to a recycled block still races on the
//    new object, which TSan reports.
//
// Accounting (docs/AGING.md): the title paper detects software aging from
// memory-resource time series, so the pool keeps the books a long-lived
// server needs — per size class, how many blocks were ever allocated and
// freed (their difference is the *outstanding* occupancy a leak shows up
// in) and how many blocks the pool currently holds from the system (the
// *arena*, which includes cached-but-free blocks: arena minus outstanding
// is fragmentation-shaped slack). Counters live in per-thread *leased*
// stripes: a thread claims a private stripe at first use and bumps it with
// plain relaxed load+store — no lock-prefixed RMW on the fork path, which
// is what keeps always-on accounting inside the ≤2% overhead bar
// bench/aging_soak enforces. pool_snapshot() sums the stripes wait-free;
// set_pool_accounting(false) is the kill switch the bench measures against.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace anahy {

namespace pool_detail {

inline constexpr std::size_t kClassBytes = 64;
inline constexpr std::size_t kNumClasses = 16;  // up to 1 KiB
inline constexpr std::size_t kCacheCap = 128;   // blocks kept per class

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ANAHY_POOL_ASAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define ANAHY_POOL_ASAN 1
#endif
#if defined(ANAHY_POOL_ASAN)
inline constexpr bool kCacheEnabled = false;
#else
inline constexpr bool kCacheEnabled = true;
#endif

/// Index of the size class serving `bytes`, or kNumClasses when too large.
[[nodiscard]] inline std::size_t size_class(std::size_t bytes) {
  return (bytes + kClassBytes - 1) / kClassBytes - 1;
}

[[nodiscard]] inline std::size_t class_bytes(std::size_t cls) {
  return (cls + 1) * kClassBytes;
}

/// Global accounting switch (relaxed reads on the alloc/free hot path).
/// Gates only the per-call alloc/free tallies; the cold-path arena books
/// stay on so a mid-flight toggle can never leave an unpaired shrink. Off
/// never corrupts the books: allocs and frees simply both stop being
/// counted, and snapshot arithmetic clamps any alloc/free imbalance a
/// mid-flight toggle leaves behind.
[[nodiscard]] inline std::atomic<bool>& accounting_flag() {
  static std::atomic<bool> on{true};
  return on;
}

/// One stripe of the pool-wide books (see StripeLease for the write
/// discipline: exclusive stripes are single-writer, the overflow stripe is
/// shared and written with fetch_add).
struct alignas(64) StatShard {
  std::array<std::atomic<std::uint64_t>, kNumClasses> allocs{};
  std::array<std::atomic<std::uint64_t>, kNumClasses> frees{};
  /// Blocks this class obtained from / returned to ::operator new|delete
  /// (their difference is the arena: blocks the pool holds, live or cached).
  std::array<std::atomic<std::uint64_t>, kNumClasses> arena_grow{};
  std::array<std::atomic<std::uint64_t>, kNumClasses> arena_shrink{};
  // Over-sized / over-aligned fallthrough allocations (no pooling).
  std::atomic<std::uint64_t> large_allocs{0};
  std::atomic<std::uint64_t> large_frees{0};
  std::atomic<std::uint64_t> large_alloc_bytes{0};
  std::atomic<std::uint64_t> large_free_bytes{0};
};

/// Exclusive stripes available for lease; one extra shared overflow stripe
/// (index kStatShards) absorbs threads that arrive when all leases are out,
/// and cold-path bumps that must not assume a live lease (FreeCache::~).
inline constexpr std::size_t kStatShards = 8;
inline constexpr std::size_t kOverflowStripe = kStatShards;

[[nodiscard]] inline std::atomic<std::uint32_t>& stripe_mask() {
  static std::atomic<std::uint32_t> mask{0};
  return mask;
}

/// Set by ~StripeLease: frees that outlive the thread's lease (e.g. the
/// athread global runtime tearing down tasks after main's thread-locals
/// are gone) book against the overflow stripe instead of the dead lease.
inline thread_local bool tls_lease_dead = false;

/// Per-thread stripe lease. A relaxed fetch_add is a lock-prefixed RMW
/// (~10x a plain store), and the accounting path takes several per task, so
/// the books use single-writer stripes instead: each thread claims a
/// private stripe bit at first use and releases it at thread exit. While
/// exclusive, `bump` below is a plain relaxed load+store. When more than
/// kStatShards threads touch the pool concurrently, late arrivals share the
/// overflow stripe and pay the fetch_add — exactness is kept either way.
struct StripeLease {
  std::size_t index = kOverflowStripe;
  bool exclusive = false;

  StripeLease() {
    auto& mask = stripe_mask();
    std::uint32_t m = mask.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint32_t free = ~m & ((1u << kStatShards) - 1);
      if (free == 0) return;  // all leased: share the overflow stripe
      const int bit = std::countr_zero(free);
      if (mask.compare_exchange_weak(m, m | (1u << bit),
                                     std::memory_order_relaxed)) {
        index = static_cast<std::size_t>(bit);
        exclusive = true;
        return;
      }
    }
  }
  ~StripeLease() {
    tls_lease_dead = true;
    if (exclusive)
      stripe_mask().fetch_and(~(1u << index), std::memory_order_relaxed);
  }
  StripeLease(const StripeLease&) = delete;
  StripeLease& operator=(const StripeLease&) = delete;
};

/// The calling thread's stripe, by value: (index, exclusive). Safe at any
/// point in the thread's life — after lease teardown it degrades to the
/// shared overflow stripe.
struct StripeRef {
  std::size_t index;
  bool exclusive;
};

[[nodiscard]] inline StripeRef my_stripe() {
  if (tls_lease_dead) return {kOverflowStripe, false};
  static thread_local StripeLease lease;
  return {lease.index, lease.exclusive};
}

/// Counter bump honoring the lease discipline: plain load+store on an
/// exclusively-held stripe, fetch_add on the shared overflow stripe.
template <class T>
inline void bump(std::atomic<T>& c, T delta, bool exclusive) {
  if (exclusive)
    c.store(c.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  else
    c.fetch_add(delta, std::memory_order_relaxed);
}

[[nodiscard]] inline std::array<StatShard, kStatShards + 1>& stat_shards() {
  static std::array<StatShard, kStatShards + 1> shards{};
  return shards;
}

[[nodiscard]] inline bool accounting_on() {
  return accounting_flag().load(std::memory_order_relaxed);
}

/// Size of the most recent pool_alloc on this thread. The scheduler reads
/// it right after std::allocate_shared to charge the forked task's exact
/// block size to its job context (allocate is called synchronously on the
/// forking thread, so the value cannot be clobbered in between).
inline thread_local std::size_t tls_last_alloc_bytes = 0;

struct FreeCache;
inline thread_local bool tls_cache_dead = false;

struct FreeCache {
  std::array<std::vector<void*>, kNumClasses> lists;
  ~FreeCache() {
    tls_cache_dead = true;
    for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
      for (void* p : lists[cls]) {
        // Thread teardown: the stripe lease may already be released (and
        // re-leased by another thread), so book against the shared
        // overflow stripe, which is always fetch_add-safe. Arena books are
        // unconditional (see pool_alloc): a grown block must always shrink.
        stat_shards()[kOverflowStripe].arena_shrink[cls].fetch_add(
            1, std::memory_order_relaxed);
        // NOLINTNEXTLINE(cppcoreguidelines-owning-memory): the pool owns.
        ::operator delete(p);
      }
    }
  }
};

[[nodiscard]] inline FreeCache& cache() {
  static thread_local FreeCache c;
  return c;
}

[[nodiscard]] inline void* pool_alloc(std::size_t bytes, std::size_t align) {
  tls_last_alloc_bytes = bytes;
  if (align <= alignof(std::max_align_t)) {
    const std::size_t cls = size_class(bytes);
    if (cls < kNumClasses) {
      if (accounting_on()) {
        const StripeRef lease = my_stripe();
        bump(stat_shards()[lease.index].allocs[cls], std::uint64_t{1},
             lease.exclusive);
      }
      if (kCacheEnabled && !tls_cache_dead) {
        auto& list = cache().lists[cls];
        if (!list.empty()) {
          void* p = list.back();
          list.pop_back();
          return p;
        }
      }
      {
        // Arena books ignore the kill switch: they fire only on actual
        // ::operator new/delete (cache misses, overflow, teardown — once
        // per block lifetime, off the per-task hot path), and gating them
        // would let a mid-flight toggle book a shrink for a never-booked
        // grow, permanently clamping the arena gauge to zero.
        const StripeRef lease = my_stripe();
        bump(stat_shards()[lease.index].arena_grow[cls], std::uint64_t{1},
             lease.exclusive);
      }
      // With the cache on, allocate the full class size so the block is
      // reusable for any request in this class when it comes back. The
      // cacheless (ASan) build keeps the exact request size for redzone
      // precision; plain (un-aligned) new/delete pair on both paths.
      // NOLINTNEXTLINE(cppcoreguidelines-owning-memory): the pool owns.
      return ::operator new(kCacheEnabled ? class_bytes(cls) : bytes);
    }
  }
  if (accounting_on()) {
    const StripeRef lease = my_stripe();
    StatShard& s = stat_shards()[lease.index];
    bump(s.large_allocs, std::uint64_t{1}, lease.exclusive);
    bump(s.large_alloc_bytes, std::uint64_t{bytes}, lease.exclusive);
  }
  // NOLINTNEXTLINE(cppcoreguidelines-owning-memory): the pool owns.
  return ::operator new(bytes, std::align_val_t{align});
}

inline void pool_free(void* p, std::size_t bytes, std::size_t align) {
  if (align <= alignof(std::max_align_t)) {
    const std::size_t cls = size_class(bytes);
    if (cls < kNumClasses) {
      if (accounting_on()) {
        const StripeRef lease = my_stripe();
        bump(stat_shards()[lease.index].frees[cls], std::uint64_t{1},
             lease.exclusive);
      }
      if (kCacheEnabled && !tls_cache_dead) {
        auto& list = cache().lists[cls];
        if (list.size() < kCacheCap) {
          list.push_back(p);
          return;
        }
      }
      {
        // Unconditional for grow/shrink symmetry — see pool_alloc.
        const StripeRef lease = my_stripe();
        bump(stat_shards()[lease.index].arena_shrink[cls], std::uint64_t{1},
             lease.exclusive);
      }
      // NOLINTNEXTLINE(cppcoreguidelines-owning-memory): the pool owns.
      ::operator delete(p);
      return;
    }
  }
  if (accounting_on()) {
    const StripeRef lease = my_stripe();
    StatShard& s = stat_shards()[lease.index];
    bump(s.large_frees, std::uint64_t{1}, lease.exclusive);
    bump(s.large_free_bytes, std::uint64_t{bytes}, lease.exclusive);
  }
  // NOLINTNEXTLINE(cppcoreguidelines-owning-memory): the pool owns.
  ::operator delete(p, std::align_val_t{align});
}

}  // namespace pool_detail

/// Point-in-time view of the task pool's memory state (docs/AGING.md).
/// Computed by pool_snapshot() from the sharded counters; every derived
/// gauge clamps at zero so a mid-flight accounting toggle (or a snapshot
/// racing in-flight increments) can never yield a wrapped huge value.
struct PoolSnapshot {
  struct ClassStats {
    std::size_t block_bytes = 0;       ///< size this class serves
    std::uint64_t allocs = 0;          ///< blocks ever handed out
    std::uint64_t frees = 0;           ///< blocks ever returned
    std::uint64_t outstanding = 0;     ///< allocs - frees (live blocks)
    std::uint64_t arena_blocks = 0;    ///< blocks held from the system
    std::uint64_t cached_blocks = 0;   ///< arena - outstanding (free-list)
  };

  std::array<ClassStats, pool_detail::kNumClasses> classes{};
  std::uint64_t alloc_calls = 0;     ///< pooled + large allocations
  std::uint64_t live_blocks = 0;     ///< Σ outstanding (pooled classes)
  std::uint64_t live_bytes = 0;      ///< pooled outstanding + large live
  std::uint64_t arena_bytes = 0;     ///< pool-held bytes incl. cached slack
  std::uint64_t large_live_bytes = 0;///< over-sized fallthrough, live
};

/// Accounting kill switch (default on). bench/aging_soak flips it to price
/// the books; production leaves it on — the cost is a few plain relaxed
/// load+stores on the thread's exclusively-leased line per task
/// create/destroy (see StripeLease).
inline void set_pool_accounting(bool on) {
  pool_detail::accounting_flag().store(on, std::memory_order_relaxed);
}
[[nodiscard]] inline bool pool_accounting() {
  return pool_detail::accounting_on();
}

/// Releases the calling thread's free-list cache back to the system and
/// returns the bytes handed back. This is the arena-recycle primitive the
/// rejuvenation engine (src/anahy/rejuv/, docs/REJUV.md) uses after a reap:
/// freed task blocks land in the reaping thread's cache, and without a trim
/// they would sit there as arena slack — exactly the fragmentation-shaped
/// growth A002 flags. Per-thread by design: a cache is only ever touched by
/// its owner, so no lock is needed, and a rolling VP restart flushes the
/// worker caches via FreeCache's destructor as each thread exits.
inline std::size_t pool_trim_thread_cache() {
  using namespace pool_detail;
  if (!kCacheEnabled || tls_cache_dead) return 0;
  std::size_t released = 0;
  FreeCache& c = cache();
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    auto& list = c.lists[cls];
    if (list.empty()) continue;
    const StripeRef lease = my_stripe();
    bump(stat_shards()[lease.index].arena_shrink[cls],
         std::uint64_t{list.size()}, lease.exclusive);
    released += list.size() * class_bytes(cls);
    for (void* p : list)
      // NOLINTNEXTLINE(cppcoreguidelines-owning-memory): the pool owns.
      ::operator delete(p);
    list.clear();
    list.shrink_to_fit();
  }
  return released;
}

/// Wait-free sum of the pool books. Process-wide (the pool is shared by
/// every runtime in the process). Monotonic inputs, clamped derivations.
[[nodiscard]] inline PoolSnapshot pool_snapshot() {
  using namespace pool_detail;
  PoolSnapshot s;
  std::uint64_t large_allocs = 0;
  std::uint64_t large_alloc_bytes = 0;
  std::uint64_t large_free_bytes = 0;
  for (const StatShard& sh : stat_shards()) {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      s.classes[c].allocs += sh.allocs[c].load(std::memory_order_relaxed);
      s.classes[c].frees += sh.frees[c].load(std::memory_order_relaxed);
      s.classes[c].arena_blocks +=
          sh.arena_grow[c].load(std::memory_order_relaxed);
      // Defer shrink subtraction: sum first, clamp once below.
      s.classes[c].cached_blocks +=
          sh.arena_shrink[c].load(std::memory_order_relaxed);
    }
    large_allocs += sh.large_allocs.load(std::memory_order_relaxed);
    large_alloc_bytes += sh.large_alloc_bytes.load(std::memory_order_relaxed);
    large_free_bytes += sh.large_free_bytes.load(std::memory_order_relaxed);
  }
  const auto clamped_sub = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : 0;
  };
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    PoolSnapshot::ClassStats& cs = s.classes[c];
    cs.block_bytes = class_bytes(c);
    cs.outstanding = clamped_sub(cs.allocs, cs.frees);
    cs.arena_blocks = clamped_sub(cs.arena_blocks, cs.cached_blocks);
    cs.cached_blocks = clamped_sub(cs.arena_blocks, cs.outstanding);
    s.alloc_calls += cs.allocs;
    s.live_blocks += cs.outstanding;
    s.live_bytes += cs.outstanding * cs.block_bytes;
    s.arena_bytes += cs.arena_blocks * cs.block_bytes;
  }
  s.alloc_calls += large_allocs;
  s.large_live_bytes = clamped_sub(large_alloc_bytes, large_free_bytes);
  s.live_bytes += s.large_live_bytes;
  s.arena_bytes += s.large_live_bytes;
  return s;
}

/// Minimal allocator over the thread-caching pool, for
/// std::allocate_shared<Task>: the shared_ptr control block and the Task are
/// one block, allocated and usually freed from the calling thread's cache.
template <class T>
class TaskPoolAllocator {
 public:
  using value_type = T;

  TaskPoolAllocator() = default;
  template <class U>
  TaskPoolAllocator(const TaskPoolAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        pool_detail::pool_alloc(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_detail::pool_free(p, n * sizeof(T), alignof(T));
  }

  template <class U>
  bool operator==(const TaskPoolAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace anahy
