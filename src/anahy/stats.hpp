// Runtime counters: always-on, lock-free, cheap.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace anahy {

/// Aggregated executive-kernel counters. A plain-struct `Snapshot` can be
/// taken at any time; counters are monotonic within one Runtime lifetime.
class RuntimeStats {
 public:
  struct Snapshot {
    std::uint64_t tasks_created = 0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t joins_total = 0;
    std::uint64_t joins_immediate = 0;  ///< target already finished
    std::uint64_t joins_inlined = 0;    ///< target pulled from ready & run inline
    std::uint64_t joins_helped = 0;     ///< other tasks run while waiting
    std::uint64_t joins_slept = 0;      ///< waits that actually blocked
    std::uint64_t continuations = 0;    ///< logical T_i -> T_{i+1} splits
    std::uint64_t steals = 0;           ///< successful steals (steal policy)
    std::uint64_t steal_attempts = 0;
    std::uint64_t tasks_run_by_main = 0;
    std::uint64_t ready_peak = 0;       ///< high-water mark of the ready list

    [[nodiscard]] std::string to_string() const;
  };

  void on_task_created() { tasks_created_.fetch_add(1, relaxed); }
  void on_task_executed(bool by_main) {
    tasks_executed_.fetch_add(1, relaxed);
    if (by_main) tasks_run_by_main_.fetch_add(1, relaxed);
  }
  void on_join() { joins_total_.fetch_add(1, relaxed); }
  void on_join_immediate() { joins_immediate_.fetch_add(1, relaxed); }
  void on_join_inlined() { joins_inlined_.fetch_add(1, relaxed); }
  void on_join_helped() { joins_helped_.fetch_add(1, relaxed); }
  void on_join_slept() { joins_slept_.fetch_add(1, relaxed); }
  void on_continuation() { continuations_.fetch_add(1, relaxed); }
  void record_ready_len(std::uint64_t len) {
    std::uint64_t peak = ready_peak_.load(relaxed);
    while (len > peak &&
           !ready_peak_.compare_exchange_weak(peak, len, relaxed, relaxed)) {
    }
  }
  void record_steals(std::uint64_t steals, std::uint64_t attempts) {
    steals_.store(steals, relaxed);
    steal_attempts_.store(attempts, relaxed);
  }

  [[nodiscard]] Snapshot snapshot() const;

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> tasks_created_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> joins_total_{0};
  std::atomic<std::uint64_t> joins_immediate_{0};
  std::atomic<std::uint64_t> joins_inlined_{0};
  std::atomic<std::uint64_t> joins_helped_{0};
  std::atomic<std::uint64_t> joins_slept_{0};
  std::atomic<std::uint64_t> continuations_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> tasks_run_by_main_{0};
  std::atomic<std::uint64_t> ready_peak_{0};
};

}  // namespace anahy
