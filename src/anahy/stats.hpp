// Runtime counters: always-on, lock-free, cheap.
//
// The hot event counters (one to eight increments per task on the fork/join
// path) are striped: each thread owns one cache-line-aligned stripe of the
// counter bank, so an increment is a plain relaxed load + store on a
// thread-private line instead of a locked read-modify-write on a shared
// one — roughly 3x cheaper per event, and never a point of contention.
// Totals are exact: `snapshot` sums the stripes, and every stripe has a
// single writer (threads beyond the stripe count share the overflow stripe
// and fall back to fetch_add there, keeping single-writer stripes intact).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace anahy {

/// Aggregated executive-kernel counters. A plain-struct `Snapshot` can be
/// taken at any time; counters are monotonic within one Runtime lifetime.
class RuntimeStats {
 public:
  struct Snapshot {
    std::uint64_t tasks_created = 0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t joins_total = 0;
    std::uint64_t joins_immediate = 0;  ///< target already finished
    std::uint64_t joins_inlined = 0;    ///< target pulled from ready & run inline
    std::uint64_t joins_helped = 0;     ///< other tasks run while waiting
    std::uint64_t joins_slept = 0;      ///< waits that actually blocked
    std::uint64_t continuations = 0;    ///< logical T_i -> T_{i+1} splits
    std::uint64_t steals = 0;           ///< successful steals (steal policy)
    std::uint64_t steal_attempts = 0;
    std::uint64_t tasks_run_by_main = 0;
    std::uint64_t ready_peak = 0;       ///< high-water mark of the ready list
    std::uint64_t wakeups = 0;          ///< eventcount notifies with sleepers
    std::uint64_t wakeups_skipped = 0;  ///< notifies skipped (nobody asleep)

    [[nodiscard]] std::string to_string() const;
  };

  RuntimeStats();

  void on_task_created() { bump(kTasksCreated); }
  void on_task_executed(bool by_main) {
    bump(kTasksExecuted);
    if (by_main) bump(kTasksRunByMain);
  }
  void on_join() { bump(kJoinsTotal); }
  void on_join_immediate() { bump(kJoinsImmediate); }
  void on_join_inlined() { bump(kJoinsInlined); }
  void on_join_helped() { bump(kJoinsHelped); }
  void on_join_slept() { bump(kJoinsSlept); }
  void on_continuation() { bump(kContinuations); }
  void record_ready_len(std::uint64_t len) {
    std::uint64_t peak = ready_peak_.load(relaxed);
    while (len > peak &&
           !ready_peak_.compare_exchange_weak(peak, len, relaxed, relaxed)) {
    }
  }
  void record_steals(std::uint64_t steals, std::uint64_t attempts) {
    steals_.store(steals, relaxed);
    steal_attempts_.store(attempts, relaxed);
  }
  void record_wakeups(std::uint64_t sent, std::uint64_t skipped) {
    wakeups_.store(sent, relaxed);
    wakeups_skipped_.store(skipped, relaxed);
  }

  [[nodiscard]] Snapshot snapshot() const;

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;

  enum HotCounter : unsigned {
    kTasksCreated,
    kTasksExecuted,
    kJoinsTotal,
    kJoinsImmediate,
    kJoinsInlined,
    kJoinsHelped,
    kJoinsSlept,
    kContinuations,
    kTasksRunByMain,
    kNumHotCounters,
  };

  /// One thread's stripe: atomics so cross-thread snapshot reads are
  /// race-free, but written by exactly one thread (plain load + store).
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kNumHotCounters> c{};
  };
  /// Stripe count: enough for every VP plus external threads in normal use;
  /// the last stripe doubles as the shared overflow stripe when more
  /// threads than stripes ever touch this instance.
  static constexpr unsigned kStripes = 32;

  void bump(HotCounter which) {
    Stripe& s = stripe();
    std::atomic<std::uint64_t>& v = s.c[which];
    if (&s == &stripes_[kStripes - 1]) {
      // Overflow stripe: potentially shared, needs the real RMW.
      v.fetch_add(1, relaxed);
    } else {
      v.store(v.load(relaxed) + 1, relaxed);
    }
  }

  /// The calling thread's stripe of this instance (claimed on first use;
  /// instance-checked TLS, same idiom as the scheduler's VP binding).
  [[nodiscard]] Stripe& stripe();

  const std::uint64_t instance_id_;
  std::array<Stripe, kStripes> stripes_;
  std::atomic<unsigned> stripes_used_{0};

  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_attempts_{0};
  std::atomic<std::uint64_t> ready_peak_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> wakeups_skipped_{0};
};

}  // namespace anahy
