// The paper's programming interface: a POSIX-threads-shaped C API.
//
//   athread_create / athread_join   replace pthread_create / pthread_join;
//   athread_attr_setjoinnumber      Anahy extension: join budget of a task;
//   athread_attr_setdatalen         Anahy extension: declared payload size.
//
// All functions return 0 on success or a positive POSIX-style error code
// (EINVAL, ESRCH, EDEADLK), exactly like the pthread family. The API is
// backed by a process-global Runtime created by athread_init().
#pragma once

#include <cstddef>

#include "anahy/runtime.hpp"
#include "anahy/types.hpp"

namespace anahy {

/// Opaque task handle (the paper's `athread_t`).
struct athread_t {
  TaskId id = kInvalidTaskId;
};

/// Task-creation attributes (the paper's `athread_attr_t`).
struct athread_attr_t {
  TaskAttributes attr;
  bool initialized = false;
};

/// Start routine signature, identical to POSIX.
using athread_func_t = void* (*)(void*);

/// Initializes the global runtime with `num_vps` virtual processors
/// (<= 0 selects the library default of 4, or ANAHY_NUM_VPS if set).
/// Returns EAGAIN if already initialized.
int athread_init(int num_vps);

/// Initializes with full options (policy, tracing...).
int athread_init_opts(const Options& opts);

/// Stops the VPs and destroys the global runtime. Returns EPERM when no
/// runtime is active.
int athread_terminate();

/// True between athread_init and athread_terminate.
bool athread_initialized();

/// The global runtime (null when not initialized). Mainly for tests and
/// tools that want statistics or the trace graph.
Runtime* athread_runtime();

int athread_attr_init(athread_attr_t* attr);
int athread_attr_destroy(athread_attr_t* attr);
int athread_attr_setjoinnumber(athread_attr_t* attr, int joins);
int athread_attr_getjoinnumber(const athread_attr_t* attr, int* joins);
int athread_attr_setdatalen(athread_attr_t* attr, std::size_t len);
int athread_attr_getdatalen(const athread_attr_t* attr, std::size_t* len);

/// Anahy extension: opts the task in/out of the determinacy-race checker's
/// datalen auto-instrumentation (in by default; see docs/CHECKING.md).
int athread_attr_setchecked(athread_attr_t* attr, int checked);
int athread_attr_getchecked(const athread_attr_t* attr, int* checked);

/// Fork: creates a new flow executing `func(arg)`. `attr` may be null for
/// defaults. The new flow's id is stored in `*th`.
int athread_create(athread_t* th, const athread_attr_t* attr,
                   athread_func_t func, void* arg);

/// Join: waits for flow `th` and stores its result in `*result` (which may
/// be null to discard the result).
int athread_join(athread_t th, void** result);

/// Join variant that cross-checks the payload size against the datalen the
/// task was created with: a mismatch emits an `ANAHY-W004` diagnostic into
/// the trace (when tracing is on) before joining as usual. The join itself
/// still proceeds - the mismatch is a lint finding, not an error.
int athread_join_len(athread_t th, void** result, std::size_t expected_len);

/// Non-blocking join: EBUSY when `th` has not finished yet.
int athread_tryjoin(athread_t th, void** result);

/// Terminates the calling task immediately with `result`. Undefined when
/// called outside a task body (returns EPERM instead of terminating).
int athread_exit(void* result);

/// Id of the calling flow (id 0 outside any task = the main flow T0).
athread_t athread_self();

}  // namespace anahy
