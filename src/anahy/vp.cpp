#include "anahy/vp.hpp"

namespace anahy {

VirtualProcessor::VirtualProcessor(Scheduler& scheduler, int index)
    : scheduler_(scheduler),
      index_(index),
      thread_([this](std::stop_token st) { loop(st); }) {}

VirtualProcessor::~VirtualProcessor() {
  thread_.request_stop();
  scheduler_.notify_all();
  // jthread joins in its destructor.
}

void VirtualProcessor::loop(const std::stop_token& st) {
  scheduler_.bind_thread_to_vp(index_);
  while (TaskPtr task = scheduler_.wait_for_task(index_, st)) {
    scheduler_.run_task(task, index_);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace anahy
