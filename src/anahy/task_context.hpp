// Shared execution context of a group of related tasks (a serve-layer job).
//
// A context is attached to a root fork (Scheduler::create_task's ctx
// overload) and inherited by every descendant fork automatically, so one
// job's whole DAG shares a single heap object carrying its priority class,
// cancellation state, optional deadline and accounting counters. Tasks
// forked outside any context (the classic single-program mode) carry none
// and pay nothing beyond a null-pointer test.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "anahy/task_pool.hpp"
#include "anahy/types.hpp"

namespace anahy {

struct TaskContext {
  /// Owning job id (serve-layer numbering, 0 = no job). Recorded in the
  /// trace job column (`anahy-trace v2`) and in race reports.
  std::uint64_t job = 0;

  /// Priority class every task of this context is scheduled under
  /// (overrides the per-task attribute).
  Priority priority = Priority::kNormal;

  /// Absolute deadline in steady-clock nanoseconds (now_ns() scale);
  /// negative = none. Tasks of an expired context that have not started
  /// yet are cancelled instead of run.
  std::int64_t deadline_ns = -1;

  /// Whether the determinacy-race detector instruments this context's
  /// tasks (meaningful only when the runtime's detector is on). Serve maps
  /// JobSpec::check here so checking is a per-job decision.
  bool checked = true;

  /// Id of the context's root task (set by create_task when the context is
  /// attached explicitly). The root is exempt from cancellation skipping:
  /// it carries the job bookkeeping and must always run.
  std::uint64_t root_task = 0;

  // Accounting (relaxed atomics; exactness per counter, not cross-counter).
  //
  // The counters sit on the task fork/run hot path of every served job, so
  // a single shared cache line would be bounced across all VPs on every
  // task (a measurable single-job throughput tax at fine grain). They are
  // sharded instead: each incrementing thread sticks to one line-padded
  // shard, and readers (job completion, rare) sum the shards. The shard
  // index is the thread's pool stripe lease (task_pool.hpp), so a thread
  // holding an exclusive lease is the sole writer of its shard here too and
  // the pool-memory counters can use the cheap load+store bump; shard
  // [kStatShards] is the shared overflow every extra thread fetch_adds.
  static constexpr std::size_t kCounterShards = pool_detail::kStatShards + 1;
  struct alignas(64) CounterShard {
    std::atomic<std::uint64_t> tasks_created{0};
    std::atomic<std::uint64_t> tasks_executed{0};   ///< includes cancelled
    std::atomic<std::uint64_t> tasks_cancelled{0};  ///< skipped bodies
    std::atomic<std::uint64_t> steals{0};  ///< this context's tasks stolen
    // Memory accounting (anahy::aging): task-pool bytes charged to this
    // job. `pool_live_bytes` is signed — allocs credit one stripe, the
    // matching free may debit another, so only the cross-shard sum is
    // meaningful (exact once the job quiesces, i.e. at completion).
    std::atomic<std::uint64_t> pool_allocs{0};
    std::atomic<std::int64_t> pool_live_bytes{0};
    std::atomic<std::int64_t> pool_peak_bytes{0};  ///< shard-local high-water
  };

  struct CounterTotals {
    std::uint64_t tasks_created = 0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t tasks_cancelled = 0;
    std::uint64_t steals = 0;
    std::uint64_t pool_allocs = 0;      ///< task blocks charged to the job
    std::uint64_t pool_live_bytes = 0;  ///< blocks still outstanding
    /// Peak concurrent task-pool bytes: the sum of per-shard high-waters,
    /// an upper bound on the true peak (exact when one thread dominates
    /// the job's forks; never above total allocated bytes).
    std::uint64_t pool_peak_bytes = 0;
  };

  void note_created() {
    shard().tasks_created.fetch_add(1, std::memory_order_relaxed);
  }
  void note_executed(bool cancelled) {
    CounterShard& s = shard();
    s.tasks_executed.fetch_add(1, std::memory_order_relaxed);
    if (cancelled) s.tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  void note_steal() {
    shard().steals.fetch_add(1, std::memory_order_relaxed);
  }

  /// Charges `bytes` of task-pool memory to the job (scheduler fork path).
  void note_pool_alloc(std::uint64_t bytes) {
    const pool_detail::StripeRef lease = pool_detail::my_stripe();
    CounterShard& s = shards_[lease.index];
    pool_detail::bump(s.pool_allocs, std::uint64_t{1}, lease.exclusive);
    pool_detail::bump(s.pool_live_bytes, static_cast<std::int64_t>(bytes),
                      lease.exclusive);
    // Shard-local high-water; a lost race between two writers of the
    // overflow stripe can only under-record, and the cross-shard sum stays
    // an upper bound on the true concurrent peak either way.
    const std::int64_t live =
        s.pool_live_bytes.load(std::memory_order_relaxed);
    if (live > s.pool_peak_bytes.load(std::memory_order_relaxed))
      s.pool_peak_bytes.store(live, std::memory_order_relaxed);
  }
  /// Credits `bytes` back when a charged task block is destroyed.
  void note_pool_free(std::uint64_t bytes) {
    const pool_detail::StripeRef lease = pool_detail::my_stripe();
    pool_detail::bump(shards_[lease.index].pool_live_bytes,
                      -static_cast<std::int64_t>(bytes), lease.exclusive);
  }

  [[nodiscard]] CounterTotals totals() const {
    CounterTotals t;
    std::int64_t live = 0;
    std::int64_t peak = 0;
    for (const CounterShard& s : shards_) {
      t.tasks_created += s.tasks_created.load(std::memory_order_relaxed);
      t.tasks_executed += s.tasks_executed.load(std::memory_order_relaxed);
      t.tasks_cancelled += s.tasks_cancelled.load(std::memory_order_relaxed);
      t.steals += s.steals.load(std::memory_order_relaxed);
      t.pool_allocs += s.pool_allocs.load(std::memory_order_relaxed);
      live += s.pool_live_bytes.load(std::memory_order_relaxed);
      peak += s.pool_peak_bytes.load(std::memory_order_relaxed);
    }
    t.pool_live_bytes = live > 0 ? static_cast<std::uint64_t>(live) : 0;
    t.pool_peak_bytes = peak > 0 ? static_cast<std::uint64_t>(peak) : 0;
    return t;
  }

  /// Current steady-clock time on the deadline_ns scale.
  [[nodiscard]] static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void cancel() { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Records that a task body of this context threw (containment: the
  /// scheduler swallows the exception instead of killing the process, and
  /// the job resolves kFaulted). First fault wins; later ones only bump the
  /// count. Also cancels the context so not-yet-started descendants skip.
  void note_fault(const std::string& what) {
    {
      std::lock_guard lock(fault_mu_);
      if (fault_count_++ == 0) fault_msg_ = what;
    }
    faulted_.store(true, std::memory_order_release);
    cancel();
  }
  [[nodiscard]] bool faulted() const {
    return faulted_.load(std::memory_order_acquire);
  }
  /// The first fault's exception message (empty when !faulted()).
  [[nodiscard]] std::string fault_message() const {
    std::lock_guard lock(fault_mu_);
    return fault_msg_;
  }
  [[nodiscard]] std::uint64_t fault_count() const {
    std::lock_guard lock(fault_mu_);
    return fault_count_;
  }

  /// Marks the owning job resolved (serve layer, Job::resolve). Once set,
  /// no code path legitimately joins this context's tasks by id anymore, so
  /// the rejuvenation reaper (Scheduler::reap_orphans) may retire any
  /// kFinished task still pinned in the registry by an unconsumed join
  /// budget — the leak shape ANAHY-A001/A004 detect.
  void mark_resolved() { resolved_.store(true, std::memory_order_release); }
  [[nodiscard]] bool resolved() const {
    return resolved_.load(std::memory_order_acquire);
  }

  /// True when the deadline (if any) has passed.
  [[nodiscard]] bool expired() const {
    return deadline_ns >= 0 && now_ns() >= deadline_ns;
  }

  /// Cancellation test on the task-start path: one atomic load, plus a
  /// clock read only for contexts that actually carry a deadline.
  [[nodiscard]] bool should_skip() const {
    return cancel_requested() || expired();
  }

 private:
  /// Stable per-thread shard choice: the thread's pool stripe lease, so a
  /// thread touches one line per context and the exclusive-writer property
  /// carries over from the pool books (see kCounterShards above).
  [[nodiscard]] CounterShard& shard() {
    return shards_[pool_detail::my_stripe().index];
  }

  std::array<CounterShard, kCounterShards> shards_;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> faulted_{false};
  std::atomic<bool> resolved_{false};
  mutable std::mutex fault_mu_;  // cold path: faults only
  std::string fault_msg_;
  std::uint64_t fault_count_ = 0;
};

using TaskContextPtr = std::shared_ptr<TaskContext>;

}  // namespace anahy
