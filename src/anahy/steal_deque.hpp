// Lock-free Chase-Lev work-stealing deque (bounded, resizable buffer).
//
// This is the ready-deque behind the default WorkStealingPolicy: the owner
// VP calls push_bottom/pop_bottom, any other thread may call steal_top
// concurrently, and no path takes a lock. Memory ordering follows the C11
// formulation of Le, Pop, Cohen & Zappa Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP'13):
//
//  - elements live in *atomic* slots accessed with relaxed ordering (a slow
//    thief may read a slot the owner is concurrently overwriting after the
//    indices wrapped; the thief's CAS on top_ then fails and the torn-free
//    relaxed read is discarded, so the access must be atomic, not plain);
//  - push_bottom publishes the element with a release fence before the
//    relaxed store to bottom_, pairing with the acquire load in steal_top;
//  - pop_bottom and steal_top order their index reads with seq_cst fences
//    so owner and thief cannot both take the last element;
//  - grow() copies into the new buffer with relaxed stores and publishes it
//    with a *release* store on buffer_, pairing with the thief's acquire
//    load, so a thief that sees the new buffer also sees the copied slots.
//
// Retired buffers are kept alive by the owner until the deque is destroyed
// (capacity doubles each grow, so retired memory is bounded by the live
// buffer's size); in-flight thieves may therefore keep reading an old
// buffer safely after a grow.
//
// ThreadSanitizer caveat: TSan does not model std::atomic_thread_fence, so
// the fence-based formulation produces false "data race" reports on memory
// published through the fences (e.g. a task's keep-alive guard written
// before push and read after steal). Under TSan this header compiles the
// per-access variant of the same algorithm — the fences are replaced by
// release/seq_cst orderings on the index accesses themselves, which is
// strictly stronger (it is the paper's portable fallback) and is visible
// to TSan's happens-before machinery. Production builds keep the fences.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define ANAHY_DEQUE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ANAHY_DEQUE_TSAN 1
#endif
#endif

namespace anahy {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "lock-free slots require a trivially copyable element type "
                "(store raw pointers and manage ownership outside the deque)");

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64) {
    all_buffers_.push_back(
        std::make_unique<Buffer>(round_up_pow2(initial_capacity)));
    buffer_.store(all_buffers_.back().get(), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Grows the buffer when full (old buffers are retired and
  /// stay readable for in-flight steals).
  void push_bottom(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->put(b, value);
#if defined(ANAHY_DEQUE_TSAN)
    bottom_.store(b + 1, std::memory_order_release);
#else
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
#endif
  }

  /// Owner only. Returns nullopt when the deque is empty.
  std::optional<T> pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
#if defined(ANAHY_DEQUE_TSAN)
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
#endif
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = buf->get(b);
    if (t == b) {  // last element: race with thieves via CAS on top
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Any thread. Returns nullopt when empty or when it lost a race; callers
  /// that must distinguish can recheck empty() and retry.
  std::optional<T> steal_top() {
#if defined(ANAHY_DEQUE_TSAN)
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (t >= b) return std::nullopt;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T value = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race
    }
    return value;
  }

  /// Racy size estimate (monitoring only).
  [[nodiscard]] std::size_t approx_size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty() const { return approx_size() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap) : capacity(cap), mask(cap - 1), slots(cap) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::vector<std::atomic<T>> slots;

    void put(std::int64_t i, T v) {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  Buffer* grow(const Buffer* old, std::int64_t t, std::int64_t b) {
    all_buffers_.push_back(std::make_unique<Buffer>(old->capacity * 2));
    Buffer* bigger = all_buffers_.back().get();
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    // Release so a thief's acquire load of buffer_ sees the copied slots.
    buffer_.store(bigger, std::memory_order_release);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> all_buffers_;  // owner-only
};

}  // namespace anahy
