// Lock-free Chase-Lev work-stealing deque (bounded, resizable buffer).
//
// Standalone component: the default WorkStealingPolicy uses small mutexes
// (simpler to reason about, and this repo's reference host is single-core),
// but this deque is provided for users who want the classic lock-free owner
// path, and it is exercised by the micro-benchmarks and property tests.
//
// Owner thread calls push_bottom/pop_bottom; any other thread may call
// steal_top concurrently. Memory ordering follows Le, Pop, Cohen &
// Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
// Models" (PPoPP'13).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace anahy {

template <typename T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : buffer_(std::make_shared<Buffer>(round_up_pow2(initial_capacity))) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only. Grows the buffer when full (old buffers are retired via
  /// shared_ptr so in-flight steals stay valid).
  void push_bottom(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    std::shared_ptr<Buffer> buf = std::atomic_load(&buffer_);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->put(b, std::move(value));
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Returns nullopt when the deque is empty.
  std::optional<T> pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    std::shared_ptr<Buffer> buf = std::atomic_load(&buffer_);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = buf->get(b);
    if (t == b) {  // last element: race with thieves via CAS on top
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Any thread. Returns nullopt when empty or when it lost a race.
  std::optional<T> steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    std::shared_ptr<Buffer> buf = std::atomic_load(&buffer_);
    T value = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race
    }
    return value;
  }

  /// Racy size estimate (monitoring only).
  [[nodiscard]] std::size_t approx_size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty() const { return approx_size() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap) : capacity(cap), mask(cap - 1), slots(cap) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::vector<T> slots;

    void put(std::int64_t i, T v) {
      slots[static_cast<std::size_t>(i) & mask] = std::move(v);
    }
    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask];
    }
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::shared_ptr<Buffer> grow(const std::shared_ptr<Buffer>& old,
                               std::int64_t t, std::int64_t b) {
    auto bigger = std::make_shared<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    std::atomic_store(&buffer_, bigger);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::shared_ptr<Buffer> buffer_;  // accessed via std::atomic_load/store
};

}  // namespace anahy
