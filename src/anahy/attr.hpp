// Task creation attributes: the POSIX-attr subset plus Anahy extensions.
#pragma once

#include <cstddef>

#include "anahy/types.hpp"

namespace anahy {

/// Attributes applied to a task at creation time.
///
/// Mirrors the paper's `athread_attr_t`: a subset of the POSIX thread
/// attributes plus the Anahy extensions `joinnumber` (how many joins may be
/// performed on the task before its result is reclaimed) and `datalen`
/// (declared size of the task's input/result payload, used by the cluster
/// prototype to ship tasks between nodes and by us for trace accounting).
class TaskAttributes {
 public:
  /// Default: exactly one join allowed, unknown payload size.
  TaskAttributes() = default;

  /// Number of joins that may be performed on the task. Zero means the task
  /// is detached: nobody may join it and its result is discarded on finish.
  [[nodiscard]] int join_number() const { return join_number_; }

  /// Sets the join budget; returns false (and keeps the old value) when
  /// `n` is negative.
  bool set_join_number(int n) {
    if (n < 0) return false;
    join_number_ = n;
    return true;
  }

  /// Declared payload size in bytes (advisory).
  [[nodiscard]] std::size_t data_len() const { return data_len_; }
  void set_data_len(std::size_t len) { data_len_ = len; }

  /// Priority class the ready-list policy schedules the task under. A task
  /// forked inside a job context inherits the context's class instead
  /// (docs/SERVE.md); this attribute covers context-free tasks.
  [[nodiscard]] Priority priority() const { return priority_; }
  void set_priority(Priority p) { priority_ = p; }

  /// Whether the determinacy-race detector auto-instruments this task's
  /// input/result buffers (of `data_len` bytes) when checking is on. Off
  /// opts a task out, e.g. when its payload is deliberately shared and
  /// protected by means the checker cannot see.
  [[nodiscard]] bool checked() const { return checked_; }
  void set_checked(bool on) { checked_ = on; }

 private:
  int join_number_ = 1;
  std::size_t data_len_ = 0;
  Priority priority_ = Priority::kNormal;
  bool checked_ = true;
};

}  // namespace anahy
