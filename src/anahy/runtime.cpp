#include "anahy/runtime.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace anahy {

namespace {
std::unique_ptr<Runtime> g_runtime;  // the athread-API global instance
}  // namespace

Options Options::from_env() {
  Options opts;
  if (const char* v = std::getenv("ANAHY_NUM_VPS")) opts.num_vps = std::atoi(v);
  if (const char* v = std::getenv("ANAHY_POLICY")) {
    const std::string_view s{v};
    if (s == "fifo") opts.policy = PolicyKind::kFifo;
    else if (s == "lifo") opts.policy = PolicyKind::kLifo;
    else if (s == "steal") opts.policy = PolicyKind::kWorkStealing;
    else if (s == "steal_mutex" || s == "steal-mutex")
      opts.policy = PolicyKind::kWorkStealingMutex;
  }
  if (const char* v = std::getenv("ANAHY_TRACE"))
    opts.trace = std::string_view{v} == "1";
  if (const char* v = std::getenv("ANAHY_CHECK"))
    opts.check = std::string_view{v} == "1";
  if (const char* v = std::getenv("ANAHY_DRAIN_ON_EXIT"))
    opts.drain_on_exit = std::string_view{v} == "1";
  if (const char* v = std::getenv("ANAHY_TELEMETRY"))
    opts.telemetry = std::string_view{v} != "0";
  if (const char* v = std::getenv("ANAHY_PROFILE"))
    opts.profile = std::string_view{v} == "1";
  return opts;
}

Runtime::Runtime(const Options& opts) : opts_(opts) {
  if (opts_.num_vps < 1) throw std::invalid_argument("num_vps must be >= 1");
  Scheduler::Options sopts;
  sopts.num_vps = opts_.num_vps;
  sopts.policy = opts_.policy;
  sopts.trace = opts_.trace;
  sopts.external_helps = opts_.main_participates;
  sopts.check = opts_.check;
  sopts.telemetry = opts_.telemetry;
  sopts.profile = opts_.profile;
  scheduler_ = std::make_unique<Scheduler>(sopts);

  const int workers =
      opts_.main_participates ? opts_.num_vps - 1 : opts_.num_vps;
  vps_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    vps_.push_back(std::make_unique<VirtualProcessor>(*scheduler_, i));

  // When main participates it IS a virtual processor (the paper's model:
  // the main flow T0 is a task executed by a VP), so bind it to the last
  // VP slot. Its forks then use its own lock-free deque instead of the
  // mutex-guarded external overflow queue — the dominant fork/join path
  // of a program that forks from main.
  if (opts_.main_participates)
    scheduler_->bind_thread_to_vp(opts_.num_vps - 1, /*worker=*/false);
}

Runtime::~Runtime() {
  // Drain BEFORE stopping the VPs: they keep consuming ready tasks while
  // the destructing thread helps, so the fixpoint is reached in parallel.
  if (opts_.drain_on_exit) scheduler_->drain();
  for (auto& vp : vps_) vp->request_stop();
  scheduler_->notify_all();
  vps_.clear();  // joins all VP threads
}

bool Runtime::restart_vp(int slot) {
  if (slot < 0 || static_cast<std::size_t>(slot) >= vps_.size()) return false;
  auto& vp = vps_[static_cast<std::size_t>(slot)];
  vp->request_stop();
  // The stop request only takes effect once the thread looks at its token,
  // which it may be doing from inside a sleep on the ready eventcount.
  scheduler_->notify_all();
  vp.reset();  // joins the old thread; its pool cache flushes on exit
  vp = std::make_unique<VirtualProcessor>(*scheduler_, slot);
  return true;
}

TaskPtr Runtime::fork(TaskBody body, void* input, const TaskAttributes& attr,
                      std::string label) {
  return scheduler_->create_task(std::move(body), input, attr,
                                 std::move(label));
}

int Runtime::join(const TaskPtr& task, void** result) {
  // Joins issued from a bound thread (a worker VP, or main when it
  // participates) carry that VP slot so helping pops hit its own deque
  // (LIFO, cache-warm) instead of the external overflow queue; foreign
  // threads stay external.
  return scheduler_->join(task, result, scheduler_->bound_vp());
}

int Runtime::join_by_id(TaskId id, void** result) {
  return scheduler_->join_by_id(id, result, scheduler_->bound_vp());
}

int Runtime::try_join(const TaskPtr& task, void** result) {
  return scheduler_->try_join(task, result);
}

Runtime* Runtime::global() { return g_runtime.get(); }

void Runtime::set_global(std::unique_ptr<Runtime> rt) {
  g_runtime = std::move(rt);
}

void Runtime::clear_global() { g_runtime.reset(); }

}  // namespace anahy
