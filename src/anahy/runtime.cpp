#include "anahy/runtime.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace anahy {

namespace {
std::unique_ptr<Runtime> g_runtime;  // the athread-API global instance
}  // namespace

Options Options::from_env() {
  Options opts;
  if (const char* v = std::getenv("ANAHY_NUM_VPS")) opts.num_vps = std::atoi(v);
  if (const char* v = std::getenv("ANAHY_POLICY")) {
    const std::string_view s{v};
    if (s == "fifo") opts.policy = PolicyKind::kFifo;
    else if (s == "lifo") opts.policy = PolicyKind::kLifo;
    else if (s == "steal") opts.policy = PolicyKind::kWorkStealing;
  }
  if (const char* v = std::getenv("ANAHY_TRACE"))
    opts.trace = std::string_view{v} == "1";
  return opts;
}

Runtime::Runtime(const Options& opts) : opts_(opts) {
  if (opts_.num_vps < 1) throw std::invalid_argument("num_vps must be >= 1");
  Scheduler::Options sopts;
  sopts.num_vps = opts_.num_vps;
  sopts.policy = opts_.policy;
  sopts.trace = opts_.trace;
  sopts.external_helps = opts_.main_participates;
  scheduler_ = std::make_unique<Scheduler>(sopts);

  const int workers =
      opts_.main_participates ? opts_.num_vps - 1 : opts_.num_vps;
  vps_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    vps_.push_back(std::make_unique<VirtualProcessor>(*scheduler_, i));
}

Runtime::~Runtime() {
  for (auto& vp : vps_) vp->request_stop();
  scheduler_->notify_all();
  vps_.clear();  // joins all VP threads
}

TaskPtr Runtime::fork(TaskBody body, void* input, const TaskAttributes& attr,
                      std::string label) {
  return scheduler_->create_task(std::move(body), input, attr,
                                 std::move(label));
}

int Runtime::join(const TaskPtr& task, void** result) {
  return scheduler_->join(task, result, SchedulingPolicy::kExternalVp);
}

int Runtime::join_by_id(TaskId id, void** result) {
  return scheduler_->join_by_id(id, result, SchedulingPolicy::kExternalVp);
}

int Runtime::try_join(const TaskPtr& task, void** result) {
  return scheduler_->try_join(task, result);
}

Runtime* Runtime::global() { return g_runtime.get(); }

void Runtime::set_global(std::unique_ptr<Runtime> rt) {
  g_runtime = std::move(rt);
}

void Runtime::clear_global() { g_runtime.reset(); }

}  // namespace anahy
