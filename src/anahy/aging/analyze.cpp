#include "anahy/aging/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace anahy::aging {

namespace {

/// Median of `v` (by copy; nth_element). 0 for an empty vector.
double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                     v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + v[mid - 1]) / 2.0;
  }
  return m;
}

/// Robust "how much did y grow over the window": median of the last
/// decile minus median of the first decile.
double robust_growth(const std::vector<double>& y) {
  if (y.size() < 4) return 0;
  const std::size_t k = std::max<std::size_t>(3, y.size() / 10);
  const std::size_t kk = std::min(k, y.size() / 2);
  const std::vector<double> head(y.begin(),
                                 y.begin() + static_cast<std::ptrdiff_t>(kk));
  const std::vector<double> tail(y.end() - static_cast<std::ptrdiff_t>(kk),
                                 y.end());
  return median_of(tail) - median_of(head);
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Least-squares slope of y over x (both same size >= 2).
double ls_slope(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  double sx = 0;
  double sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double num = 0;
  double den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den > 0 ? num / den : 0;
}

void json_escape(std::ostream& os, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

/// JSON-safe double: NaN/inf have no JSON spelling, emit 0.
void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os << buf;
}

}  // namespace

double theil_sen_slope(const std::vector<double>& x,
                       const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0;
  // Cap the O(n^2) pair set: stride-sample down to ~1024 points. The
  // estimator is a median — a uniform thinning does not bias it.
  const std::size_t stride = n > 1024 ? (n + 1023) / 1024 : 1;
  std::vector<double> slopes;
  slopes.reserve(1024 * 512);
  for (std::size_t i = 0; i < n; i += stride) {
    for (std::size_t j = i + stride; j < n; j += stride) {
      const double dx = x[j] - x[i];
      if (dx == 0) continue;
      slopes.push_back((y[j] - y[i]) / dx);
    }
  }
  return median_of(std::move(slopes));
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0;
  double sx = 0;
  double sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxy = 0;
  double sxx = 0;
  double syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  const double den = std::sqrt(sxx * syy);
  return den > 0 ? sxy / den : 0;
}

Mfdfa mfdfa_width(const std::vector<double>& x) {
  Mfdfa out;
  const std::size_t n = x.size();
  if (n < 64) return out;

  // Profile: cumulative sum of the mean-subtracted series.
  double mean = 0;
  for (const double v : x) mean += v;
  mean /= static_cast<double>(n);
  std::vector<double> prof(n);
  double acc = 0;
  double var = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += x[i] - mean;
    prof[i] = acc;
    var += (x[i] - mean) * (x[i] - mean);
  }
  var /= static_cast<double>(n);
  if (var <= 0) return out;  // constant series: nothing scales
  // Degenerate-segment floor for the negative moments (a perfectly
  // detrended window has residual 0; q<0 would blow up on it).
  const double eps = 1e-10 * (1.0 + var);

  // Log-spaced scales from 8 to n/4.
  std::vector<std::size_t> scales;
  const double smin = 8.0;
  const double smax = static_cast<double>(n) / 4.0;
  constexpr int kScales = 10;
  for (int i = 0; i < kScales; ++i) {
    const double f = static_cast<double>(i) / (kScales - 1);
    const auto s = static_cast<std::size_t>(
        std::lround(smin * std::pow(smax / smin, f)));
    if (scales.empty() || s > scales.back()) scales.push_back(s);
  }
  if (scales.size() < 4) return out;

  const std::vector<double> qs = {-4, -2, -1, 1, 2, 4};
  std::vector<std::vector<double>> logF(qs.size());  // per q, per scale
  std::vector<double> logS;

  std::vector<double> f2;  // squared fluctuation per segment, one scale
  for (const std::size_t s : scales) {
    const std::size_t segs = n / s;
    if (segs < 4) break;
    f2.clear();
    f2.reserve(2 * segs);
    // Both directions so the tail of a non-multiple length still counts.
    for (int dir = 0; dir < 2; ++dir) {
      for (std::size_t v = 0; v < segs; ++v) {
        const std::size_t base = dir == 0 ? v * s : n - (v + 1) * s;
        // Order-1 detrend: least-squares line over the segment.
        double sy = 0;
        double sxy = 0;
        const double sm = static_cast<double>(s);
        const double sx = sm * (sm - 1) / 2.0;
        const double sxx = (sm - 1) * sm * (2 * sm - 1) / 6.0;
        for (std::size_t i = 0; i < s; ++i) {
          sy += prof[base + i];
          sxy += static_cast<double>(i) * prof[base + i];
        }
        const double den = sm * sxx - sx * sx;
        const double b = den > 0 ? (sm * sxy - sx * sy) / den : 0;
        const double a = (sy - b * sx) / sm;
        double resid = 0;
        for (std::size_t i = 0; i < s; ++i) {
          const double e = prof[base + i] - (a + b * static_cast<double>(i));
          resid += e * e;
        }
        f2.push_back(resid / sm);
      }
    }
    // Scaling needs real structure: if most windows detrend to nothing
    // (e.g. the differenced series of a perfectly linear ramp), the
    // moments measure the epsilon floor, not the data.
    std::size_t degenerate = 0;
    for (const double f : f2)
      if (f <= eps) ++degenerate;
    if (degenerate * 5 > f2.size()) return out;  // > 20% degenerate

    logS.push_back(std::log2(static_cast<double>(s)));
    for (std::size_t qi = 0; qi < qs.size(); ++qi) {
      const double q = qs[qi];
      double m = 0;
      for (const double f : f2) m += std::pow(std::max(f, eps), q / 2.0);
      m /= static_cast<double>(f2.size());
      logF[qi].push_back(std::log2(std::pow(m, 1.0 / q)));
    }
  }
  if (logS.size() < 4) return out;

  const auto h_of = [&](double q_want) {
    for (std::size_t qi = 0; qi < qs.size(); ++qi)
      if (qs[qi] == q_want) return ls_slope(logS, logF[qi]);
    return 0.0;
  };
  out.h_neg = h_of(-4);
  out.h_pos = h_of(4);
  out.hurst = h_of(2);
  out.width = out.h_neg - out.h_pos;
  out.ok = true;
  return out;
}

Analysis analyze(const Series& s, const AnalyzeOptions& opt) {
  Analysis a;
  a.points = s.size();
  a.annotations = s.annotations();
  const std::size_t n = s.size();

  // ---- A005: scan the RAW series for impossible samples and gaps. ------
  {
    std::size_t backwards_t = 0;
    std::size_t backwards_jobs = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (s[i].t_ns <= s[i - 1].t_ns) ++backwards_t;
      if (s[i].jobs < s[i - 1].jobs) ++backwards_jobs;
    }
    if (backwards_t > 0)
      a.findings.push_back(
          {code::kSeriesGap,
           "series-corrupt: " + std::to_string(backwards_t) +
               " sample(s) with non-increasing timestamps"});
    if (backwards_jobs > 0)
      a.findings.push_back(
          {code::kSeriesGap,
           "series-corrupt: " + std::to_string(backwards_jobs) +
               " sample(s) where the cumulative job counter went backwards"});
    if (n >= 8 && backwards_t == 0) {
      std::vector<double> intervals;
      intervals.reserve(n - 1);
      for (std::size_t i = 1; i < n; ++i)
        intervals.push_back(static_cast<double>(s[i].t_ns - s[i - 1].t_ns));
      const double med = median_of(intervals);
      const double limit =
          std::max(static_cast<double>(opt.gap_min_ns), opt.gap_factor * med);
      std::size_t gaps = 0;
      double worst = 0;
      for (const double d : intervals) {
        if (d > limit) {
          ++gaps;
          worst = std::max(worst, d);
        }
      }
      if (gaps > 0)
        a.findings.push_back(
            {code::kSeriesGap,
             "series-gap: " + std::to_string(gaps) + " interval(s) above " +
                 fmt(opt.gap_factor) + "x the median sampling interval (" +
                 fmt(med) + " ns); worst " + fmt(worst) + " ns"});
    }
  }

  // ---- Trend window: drop the warm-up prefix. --------------------------
  const auto start = static_cast<std::size_t>(
      static_cast<double>(n) * std::clamp(opt.warmup_fraction, 0.0, 0.9));
  const std::size_t m = n - start;
  if (n > 0) a.jobs = s.back().jobs - s.front().jobs;
  if (m < opt.min_points) return a;  // too short for any trend verdict

  std::vector<double> jobs(m);
  std::vector<double> heap(m);
  std::vector<double> slack(m);
  std::vector<double> lat(m);
  std::array<std::vector<double>, kPoolClasses> cls;
  for (auto& v : cls) v.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const SeriesPoint& p = s[start + i];
    jobs[i] = static_cast<double>(p.jobs);
    heap[i] = static_cast<double>(p.heap_bytes);
    slack[i] = p.arena_bytes > p.heap_bytes
                   ? static_cast<double>(p.arena_bytes - p.heap_bytes)
                   : 0.0;
    lat[i] = static_cast<double>(p.lat_ns);
    for (std::size_t c = 0; c < kPoolClasses; ++c)
      cls[c][i] = static_cast<double>(p.class_outstanding[c]);
  }

  // ---- A001: sustained heap growth per served job. ---------------------
  a.heap_slope_per_job = theil_sen_slope(jobs, heap);
  a.heap_growth_bytes = robust_growth(heap);
  if (a.heap_slope_per_job >= opt.heap_slope_min &&
      a.heap_growth_bytes >= opt.heap_growth_min) {
    a.findings.push_back(
        {code::kHeapGrowth,
         "sustained heap growth: " + fmt(a.heap_slope_per_job) +
             " bytes/job (Theil-Sen), +" + fmt(a.heap_growth_bytes) +
             " bytes across the window"});
  }

  // ---- A002: fragmentation creep (arena-over-live slack). --------------
  a.frag_slope_per_job = theil_sen_slope(jobs, slack);
  {
    const std::size_t k = std::max<std::size_t>(3, m / 10);
    const std::vector<double> tail(slack.end() - static_cast<std::ptrdiff_t>(
                                                     std::min(k, m)),
                                   slack.end());
    a.frag_bytes_final = median_of(tail);
  }
  if (a.frag_slope_per_job >= opt.frag_slope_min &&
      a.frag_bytes_final >= opt.frag_bytes_min) {
    a.findings.push_back(
        {code::kFragmentationCreep,
         "fragmentation creep: pool slack (arena - live) grows " +
             fmt(a.frag_slope_per_job) + " bytes/job past warm-up, now " +
             fmt(a.frag_bytes_final) + " bytes"});
  }

  // ---- A003: latency creep correlated with heap growth. ----------------
  a.lat_slope_per_job = theil_sen_slope(jobs, lat);
  a.heap_lat_corr = pearson(heap, lat);
  if (a.lat_slope_per_job >= opt.lat_slope_min &&
      a.heap_slope_per_job >= opt.lat_heap_slope_min &&
      a.heap_lat_corr >= opt.lat_corr_min) {
    a.findings.push_back(
        {code::kLatencyCreep,
         "latency creep correlated with heap growth: p99 proxy +" +
             fmt(a.lat_slope_per_job) + " ns/job, heap +" +
             fmt(a.heap_slope_per_job) + " bytes/job, corr " +
             fmt(a.heap_lat_corr)});
  }

  // ---- A004: per-size-class leak. --------------------------------------
  for (std::size_t c = 0; c < kPoolClasses; ++c) {
    a.class_slope_per_job[c] = theil_sen_slope(jobs, cls[c]);
    const double growth = robust_growth(cls[c]);
    if (a.class_slope_per_job[c] >= opt.class_slope_min &&
        growth >= opt.class_growth_min) {
      a.findings.push_back(
          {code::kPoolClassLeak,
           "pool-class leak: class " +
               std::to_string(pool_detail::class_bytes(c)) +
               "B outstanding blocks grow " + fmt(a.class_slope_per_job[c]) +
               " blocks/job (+" + fmt(growth) + " across the window)"});
    }
  }

  // ---- A006: multifractal spectrum widening (MF-DFA halves). -----------
  {
    std::vector<double> diff;
    diff.reserve(m > 0 ? m - 1 : 0);
    for (std::size_t i = 1; i < m; ++i) diff.push_back(heap[i] - heap[i - 1]);
    const Mfdfa whole = mfdfa_width(diff);
    a.hurst = whole.hurst;
    if (diff.size() >= 2 * opt.mfdfa_min_points) {
      const std::size_t half = diff.size() / 2;
      const Mfdfa early = mfdfa_width(
          {diff.begin(), diff.begin() + static_cast<std::ptrdiff_t>(half)});
      const Mfdfa late = mfdfa_width(
          {diff.begin() + static_cast<std::ptrdiff_t>(half), diff.end()});
      if (early.ok && late.ok) {
        a.mf_valid = true;
        a.mf_width_early = early.width;
        a.mf_width_late = late.width;
        if (late.width - early.width >= opt.mf_width_delta_min &&
            late.width >= opt.mf_width_abs_min) {
          a.findings.push_back(
              {code::kSpectrumWidening,
               "multifractal spectrum widening: Dh " + fmt(early.width) +
                   " -> " + fmt(late.width) +
                   " between window halves (h(-4)-h(4) of the heap "
                   "increments; rising width flags aging per the title "
                   "paper)"});
        }
      }
    }
  }

  return a;
}

std::string format_findings(const std::vector<Finding>& v) {
  std::ostringstream os;
  for (const Finding& f : v) os << f.code << ": " << f.detail << "\n";
  return os.str();
}

std::string to_json(const Analysis& a) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"points\": " << a.points << ",\n";
  os << "  \"jobs\": " << a.jobs << ",\n";
  os << "  \"heap_slope_per_job\": ";
  json_number(os, a.heap_slope_per_job);
  os << ",\n  \"heap_growth_bytes\": ";
  json_number(os, a.heap_growth_bytes);
  os << ",\n  \"frag_slope_per_job\": ";
  json_number(os, a.frag_slope_per_job);
  os << ",\n  \"frag_bytes_final\": ";
  json_number(os, a.frag_bytes_final);
  os << ",\n  \"lat_slope_per_job\": ";
  json_number(os, a.lat_slope_per_job);
  os << ",\n  \"heap_lat_corr\": ";
  json_number(os, a.heap_lat_corr);
  os << ",\n  \"hurst\": ";
  json_number(os, a.hurst);
  os << ",\n  \"mf_valid\": " << (a.mf_valid ? "true" : "false");
  os << ",\n  \"mf_width_early\": ";
  json_number(os, a.mf_width_early);
  os << ",\n  \"mf_width_late\": ";
  json_number(os, a.mf_width_late);
  os << ",\n  \"class_slope_per_job\": [";
  for (std::size_t c = 0; c < a.class_slope_per_job.size(); ++c) {
    if (c > 0) os << ", ";
    json_number(os, a.class_slope_per_job[c]);
  }
  os << "],\n  \"findings\": [";
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n    {\"code\": \"";
    json_escape(os, a.findings[i].code);
    os << "\", \"detail\": \"";
    json_escape(os, a.findings[i].detail);
    os << "\"}";
  }
  if (!a.findings.empty()) os << "\n  ";
  os << "],\n  \"annotations\": [";
  for (std::size_t i = 0; i < a.annotations.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n    {\"t_ns\": " << a.annotations[i].t_ns << ", \"code\": \"";
    json_escape(os, a.annotations[i].code);
    os << "\", \"detail\": \"";
    json_escape(os, a.annotations[i].detail);
    os << "\"}";
  }
  if (!a.annotations.empty()) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

}  // namespace anahy::aging
