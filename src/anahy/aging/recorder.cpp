#include "anahy/aging/recorder.hpp"

#include <cstdio>
#include <string>

#include <unistd.h>

namespace anahy::aging {

namespace {

/// a - b for cumulative counters that may reset: never negative.
[[nodiscard]] std::uint64_t clamped_delta(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}
[[nodiscard]] std::int64_t clamped_delta(std::int64_t a, std::int64_t b) {
  return a > b ? a - b : 0;
}

}  // namespace

void Recorder::sample(const Cumulative& cum) {
  SeriesPoint p;
  p.t_ns = cum.t_ns;
  p.heap_bytes = cum.heap_bytes;
  p.arena_bytes = cum.arena_bytes;
  p.rss_bytes = cum.rss_bytes;
  p.ready_tasks = cum.ready_tasks;
  p.class_outstanding = cum.class_outstanding;

  if (have_prev_) {
    const std::uint64_t djobs =
        clamped_delta(cum.jobs_resolved, prev_.jobs_resolved);
    jobs_acc_ += djobs;
    if (djobs > 0) {
      const std::int64_t dwork =
          clamped_delta(cum.queue_wait_ns_sum, prev_.queue_wait_ns_sum) +
          clamped_delta(cum.exec_ns_sum, prev_.exec_ns_sum);
      last_lat_ns_ = dwork / static_cast<std::int64_t>(djobs);
    }
    // djobs == 0: carry the last known latency forward — an idle interval
    // is "no new evidence", not "latency fell to zero".
  }
  p.jobs = jobs_acc_;
  p.lat_ns = last_lat_ns_;

  series_.push(p);
  prev_ = cum;
  have_prev_ = true;
}

void Recorder::clear() {
  series_.clear();
  have_prev_ = false;
  prev_ = Cumulative{};
  jobs_acc_ = 0;
  last_lat_ns_ = 0;
}

std::uint64_t rss_bytes_now() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long total_pages = 0;
  unsigned long long rss_pages = 0;
  const int n = std::fscanf(f, "%llu %llu", &total_pages, &rss_pages);
  std::fclose(f);
  if (n != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

std::vector<observe::ExtraCounter> pool_extra_counters(const PoolSnapshot& s) {
  std::vector<observe::ExtraCounter> out;
  out.push_back({"anahy_pool_live_bytes", "", s.live_bytes});
  out.push_back({"anahy_pool_arena_bytes", "", s.arena_bytes});
  out.push_back({"anahy_pool_alloc_calls_total", "", s.alloc_calls});
  for (const PoolSnapshot::ClassStats& c : s.classes) {
    out.push_back({"anahy_pool_outstanding_blocks",
                   "class=\"" + std::to_string(c.block_bytes) + "\"",
                   c.outstanding});
  }
  return out;
}

}  // namespace anahy::aging
