// anahy::aging analyzers — offline, total-function passes over a memory
// series that decide whether a long-lived server is *aging*.
//
// Following the title paper (DSN 2003: aging shows up in memory-resource
// time series as drift and as changing multifractal structure) the pass
// combines three kinds of evidence over one Series:
//
//  - robust monotonic trends (Theil–Sen slope: the median of pairwise
//    slopes, immune to the occasional GC-ish dip a least-squares fit
//    would chase),
//  - cross-signal correlation (Pearson, for "latency creeps *with* heap"),
//  - multifractal structure (MF-DFA: the generalized Hurst exponents h(q)
//    of the differenced heap series; a widening h(-q)−h(q) spread — the
//    Hölder-spectrum-width proxy — flags the bursty, clustered allocation
//    behaviour the paper observed in aging systems).
//
// Every detector is a threshold on those statistics and emits a stable
// diagnostic code (table in docs/AGING.md):
//
//   ANAHY-A001 sustained heap growth        (bytes per served job)
//   ANAHY-A002 fragmentation creep          (arena-over-live slack grows)
//   ANAHY-A003 latency creep correlated with heap growth
//   ANAHY-A004 pool-class leak              (one size class only grows)
//   ANAHY-A005 series gap / corrupt samples (time or jobs went wrong)
//   ANAHY-A006 multifractal spectrum widening
//
// analyze() never throws and never rejects a series: whatever statistics
// the window supports are computed, the rest stay at their zero defaults
// (a 3-point series simply cannot widen a spectrum). The estimators are
// exported for direct unit testing.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "anahy/aging/series.hpp"

namespace anahy::aging {

/// One detector verdict worth surfacing (exit-code-2 material for the
/// anahy-aging CLI).
struct Finding {
  std::string code;    ///< "ANAHY-A001" ...
  std::string detail;  ///< human-readable evidence with the numbers
};

namespace code {
inline constexpr const char* kHeapGrowth = "ANAHY-A001";
inline constexpr const char* kFragmentationCreep = "ANAHY-A002";
inline constexpr const char* kLatencyCreep = "ANAHY-A003";
inline constexpr const char* kPoolClassLeak = "ANAHY-A004";
inline constexpr const char* kSeriesGap = "ANAHY-A005";
inline constexpr const char* kSpectrumWidening = "ANAHY-A006";
/// Not a detector verdict: the series annotation code the rejuvenation
/// engine stamps after each cycle ("rejuvenation performed"). Carried in
/// Analysis::annotations, never in findings — a rejuvenated-but-healthy
/// series still exits 0 from the CLI.
inline constexpr const char* kRejuvenation = "ANAHY-A007";
}  // namespace code

/// Detector thresholds (documented in docs/AGING.md; tests pin them).
/// Defaults are tuned so a healthy serve workload — thread caches warming
/// up, bounded in-flight jobs — stays silent while a leak of one pool
/// block every few jobs is flagged well before it matters.
struct AnalyzeOptions {
  /// Fraction of leading samples ignored by the trend detectors (thread
  /// caches and arenas legitimately grow from cold; A005 still scans the
  /// full window).
  double warmup_fraction = 0.1;
  /// Minimum post-warmup samples for any trend verdict.
  std::size_t min_points = 16;

  // A001: Theil–Sen slope of heap bytes vs served jobs, plus a robust
  // absolute growth floor so jitter on a tiny heap cannot trip it.
  double heap_slope_min = 16.0;            ///< bytes per job
  double heap_growth_min = 16.0 * 1024.0;  ///< bytes across the window

  // A002: slack = arena − live ("held but not in use"). Creep means the
  // slack still grows past warmup AND is worth caring about in absolute
  // terms (a warmed-up cache plateaus; creep does not).
  double frag_slope_min = 16.0;            ///< slack bytes per job
  double frag_bytes_min = 64.0 * 1024.0;   ///< final slack bytes

  // A003: latency proxy creeps AND moves with the heap.
  double lat_slope_min = 1.0;   ///< ns per job
  double lat_corr_min = 0.5;    ///< Pearson(heap, latency)
  double lat_heap_slope_min = 4.0;  ///< bytes/job floor for "heap grows too"

  // A004: per-size-class outstanding blocks.
  double class_slope_min = 0.02;   ///< blocks per job
  double class_growth_min = 32.0;  ///< blocks across the window

  // A005: sampling gaps and impossible samples.
  double gap_factor = 10.0;            ///< × median inter-sample interval
  std::int64_t gap_min_ns = 1'000'000; ///< ignore sub-ms jitter outright

  // A006: MF-DFA over the differenced heap series, early half vs late
  // half. Fires when the spectrum-width proxy Δh = h(−4) − h(4) widened
  // by `mf_width_delta_min` AND the late half is absolutely wide.
  std::size_t mfdfa_min_points = 128;  ///< per half
  double mf_width_delta_min = 0.5;
  double mf_width_abs_min = 0.8;
};

/// Everything the pass computed: the window statistics (serialized into
/// the CLI's JSON so dashboards can trend them) plus the findings.
struct Analysis {
  std::size_t points = 0;
  std::uint64_t jobs = 0;             ///< served jobs across the window
  double heap_slope_per_job = 0;      ///< Theil–Sen, bytes/job
  double heap_growth_bytes = 0;       ///< robust last-minus-first medians
  double frag_slope_per_job = 0;      ///< slack bytes/job
  double frag_bytes_final = 0;        ///< median slack of the last decile
  double lat_slope_per_job = 0;       ///< ns/job
  double heap_lat_corr = 0;           ///< Pearson(heap, latency)
  double hurst = 0;                   ///< h(2) of the differenced heap
  double mf_width_early = 0;          ///< Δh of the first half
  double mf_width_late = 0;           ///< Δh of the second half
  bool mf_valid = false;              ///< both halves had enough structure
  std::array<double, kPoolClasses> class_slope_per_job{};
  std::vector<Finding> findings;
  /// Timeline annotations carried through from the series (A007 marks).
  /// Deliberately separate from findings: annotations are provenance, not
  /// verdicts, and do not affect the CLI exit code.
  std::vector<SeriesAnnotation> annotations;
};

[[nodiscard]] Analysis analyze(const Series& s, const AnalyzeOptions& opt = {});

/// "ANAHY-A001: ..." lines, one per finding (empty string when clean).
[[nodiscard]] std::string format_findings(const std::vector<Finding>& v);

/// The full analysis as a JSON object (the anahy-aging --json payload).
[[nodiscard]] std::string to_json(const Analysis& a);

// --- estimators (exported for unit tests) --------------------------------

/// Median of pairwise slopes (Theil–Sen). Pairs with equal x are skipped;
/// returns 0 when no valid pair exists. Robust to ~29% outliers.
[[nodiscard]] double theil_sen_slope(const std::vector<double>& x,
                                     const std::vector<double>& y);

/// Pearson correlation coefficient; 0 when either signal is constant.
[[nodiscard]] double pearson(const std::vector<double>& x,
                             const std::vector<double>& y);

/// MF-DFA (multifractal detrended fluctuation analysis, order-1
/// detrending) over a noise-like series. `hurst` is h(2); `width` is the
/// spectrum-width proxy Δh = h(−4) − h(4). ok=false when the series is
/// too short (< 64 points) or has no variance to scale.
struct Mfdfa {
  bool ok = false;
  double hurst = 0;
  double width = 0;
  double h_neg = 0;  ///< h(−4): scaling of the small fluctuations
  double h_pos = 0;  ///< h(+4): scaling of the large fluctuations
};
[[nodiscard]] Mfdfa mfdfa_width(const std::vector<double>& x);

}  // namespace anahy::aging
