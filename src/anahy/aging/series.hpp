// anahy::aging — memory-state time series (docs/AGING.md).
//
// The title paper (DSN 2003) detects software aging by analyzing
// memory-resource time series of long-lived processes: heap growth,
// fragmentation and latency creep show up as trends and changing
// multifractal structure long before the process fails. A Series is that
// raw material: a bounded ring of timestamped samples of the server's
// memory state (task-pool live/arena bytes, per-size-class occupancy,
// process RSS) plus the service gauges the detectors correlate against
// (served jobs, ready depth, a p99 latency proxy).
//
// Persistence is the versioned `anahy-series v1` text format, a sibling of
// `anahy-trace v3`: a declarative header, one `point` line per sample,
// `#` comments. Loading is total and all-or-nothing — a truncated or
// corrupt file yields false plus a diagnostic naming the offending line,
// never a silently partial series (the anahy-aging CLI turns that into an
// ANAHY-F004-style error, exit 1).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "anahy/task_pool.hpp"

namespace anahy::aging {

/// Number of task-pool size classes a series point carries (matches the
/// pool's bucketing: 64-byte classes up to 1 KiB).
inline constexpr std::size_t kPoolClasses = pool_detail::kNumClasses;

/// One sample of a server's memory state. Gauges are instantaneous;
/// `jobs` is cumulative and monotonic within one series (the Recorder
/// keeps it monotonic even across server drain/restart cycles).
struct SeriesPoint {
  std::int64_t t_ns = 0;        ///< sample time (steady clock, monotonic)
  std::uint64_t jobs = 0;       ///< cumulative resolved jobs
  std::uint64_t heap_bytes = 0; ///< task-pool live bytes (+ large blocks)
  std::uint64_t arena_bytes = 0;///< pool-held bytes incl. free-list slack
  std::uint64_t rss_bytes = 0;  ///< process resident set (0 = unavailable)
  std::uint64_t ready_tasks = 0;///< ready-deque depth gauge
  std::int64_t lat_ns = 0;      ///< p99 latency proxy (see Recorder)
  /// Outstanding (live) blocks per pool size class — the column ANAHY-A004
  /// reads: a job that strands blocks grows exactly one of these forever.
  std::array<std::uint64_t, kPoolClasses> class_outstanding{};
};

/// An out-of-band event stamped onto the series timeline — e.g. the
/// ANAHY-A007 "rejuvenation performed" mark the rejuv engine records so an
/// offline analyst can line a sawtooth heap profile up with the cycles
/// that produced it. Annotations ride the same file as `mark` records but
/// are not samples: the detectors ignore them (a rejuvenated-but-healthy
/// series still analyzes clean).
struct SeriesAnnotation {
  std::int64_t t_ns = 0;
  std::string code;    ///< stable ANAHY-A0xx code (single token)
  std::string detail;  ///< free text, single line
};

/// Bounded ring of series points: push at the tail, silently evict the
/// head past `capacity` (dropped() counts evictions so an analyzer knows
/// the window slid). Capacity 0 = unbounded (offline analysis of a file).
class Series {
 public:
  explicit Series(std::size_t capacity = 0) : capacity_(capacity) {}

  void push(const SeriesPoint& p);

  /// Stamps an annotation onto the timeline. Annotations are not evicted
  /// with the ring: there are O(cycles) of them, not O(samples).
  void annotate(SeriesAnnotation a) { marks_.push_back(std::move(a)); }
  [[nodiscard]] const std::vector<SeriesAnnotation>& annotations() const {
    return marks_;
  }

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] const SeriesPoint& operator[](std::size_t i) const {
    return points_[i];
  }
  [[nodiscard]] const SeriesPoint& front() const { return points_.front(); }
  [[nodiscard]] const SeriesPoint& back() const { return points_.back(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Writes the series as `anahy-series v1` text.
  void save(std::ostream& os) const;

  /// Replaces the contents with the series read from `is`. All-or-nothing:
  /// on any parse error the previous contents are preserved, false is
  /// returned and `*error` (optional) names the offending line. The
  /// loaded capacity is unbounded regardless of the writer's ring size.
  [[nodiscard]] bool load(std::istream& is, std::string* error = nullptr);

 private:
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::deque<SeriesPoint> points_;
  std::vector<SeriesAnnotation> marks_;
};

}  // namespace anahy::aging
