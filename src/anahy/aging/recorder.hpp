// anahy::aging::Recorder — turns raw cumulative server counters into a
// well-formed memory-state Series.
//
// The serve layer's counters are cumulative and *reset* whenever a server
// is torn down and rebuilt (a drain/restart rejuvenation cycle), and the
// 64-bit counters may in principle wrap. The recorder owns the delta
// arithmetic so the series it emits is always well-formed:
//
//  - per-sample deltas are clamped at zero — a counter that went backwards
//    (restart) contributes a zero-delta sample, never a negative spike or
//    a wrapped huge value;
//  - the `jobs` column accumulates clamped deltas recorder-side, so it is
//    monotonic across any number of server generations;
//  - the p99 latency proxy is the interval mean of (queue wait + exec) per
//    resolved job; intervals that resolved nothing carry the last known
//    value forward instead of dipping to a fake zero.
//
// One Recorder typically lives inside a JobServer (ServerOptions::
// aging_capacity) and is fed by JobServer::record_aging_sample(); it can
// equally be driven by hand from any Cumulative source (tests, benches).
#pragma once

#include <vector>

#include "anahy/aging/series.hpp"
#include "anahy/observe/exposition.hpp"

namespace anahy::aging {

/// Absolute counter values sampled from a live server. Counters may reset
/// between samples (server restart); gauges are passed through verbatim.
struct Cumulative {
  std::int64_t t_ns = 0;             ///< steady-clock sample time
  std::uint64_t jobs_resolved = 0;   ///< cumulative, may reset
  std::int64_t queue_wait_ns_sum = 0;///< cumulative, may reset
  std::int64_t exec_ns_sum = 0;      ///< cumulative, may reset
  std::uint64_t heap_bytes = 0;      ///< gauge
  std::uint64_t arena_bytes = 0;     ///< gauge
  std::uint64_t rss_bytes = 0;       ///< gauge
  std::uint64_t ready_tasks = 0;     ///< gauge
  std::array<std::uint64_t, kPoolClasses> class_outstanding{};  ///< gauge
};

class Recorder {
 public:
  /// `capacity` bounds the ring (0 = unbounded; default keeps roughly a
  /// shift's worth of minute-grain samples in ~64 KiB).
  explicit Recorder(std::size_t capacity = 512) : series_(capacity) {}

  /// Folds one cumulative sample into the series. The first sample is the
  /// baseline: it is recorded with jobs=0 and latency 0.
  void sample(const Cumulative& cum);

  [[nodiscard]] const Series& series() const { return series_; }
  [[nodiscard]] std::size_t samples() const { return series_.size(); }

  /// Stamps an out-of-band event (e.g. ANAHY-A007 after a rejuvenation
  /// cycle) onto the series timeline; persisted as a `mark` record.
  void annotate(std::int64_t t_ns, std::string code, std::string detail) {
    series_.annotate({t_ns, std::move(code), std::move(detail)});
  }

  /// Drops the series AND the delta baseline (a fresh recorder).
  void clear();

 private:
  Series series_;
  bool have_prev_ = false;
  Cumulative prev_{};
  std::uint64_t jobs_acc_ = 0;
  std::int64_t last_lat_ns_ = 0;
};

/// Current process resident-set bytes from /proc/self/statm (0 when the
/// proc filesystem is unavailable — the series column is then all-zero and
/// the analyzers simply skip RSS evidence).
[[nodiscard]] std::uint64_t rss_bytes_now();

/// The pool gauges as observe::ExtraCounter rows for render_text():
/// anahy_pool_live_bytes, anahy_pool_arena_bytes, anahy_pool_alloc_calls
/// and one anahy_pool_outstanding_blocks{class="<bytes>"} row per class.
[[nodiscard]] std::vector<observe::ExtraCounter> pool_extra_counters(
    const PoolSnapshot& s);

}  // namespace anahy::aging
