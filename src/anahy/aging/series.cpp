#include "anahy/aging/series.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace anahy::aging {

void Series::push(const SeriesPoint& p) {
  if (capacity_ > 0 && points_.size() == capacity_) {
    points_.pop_front();
    ++dropped_;
  }
  points_.push_back(p);
}

void Series::clear() {
  points_.clear();
  marks_.clear();
  dropped_ = 0;
}

void Series::save(std::ostream& os) const {
  os << "anahy-series v1 classes=" << kPoolClasses << "\n";
  os << "# t_ns jobs heap_bytes arena_bytes rss_bytes ready_tasks lat_ns"
        " class_outstanding...\n";
  // Annotations and points are two record streams over one timeline:
  // interleave by timestamp so a human reading the file sees each mark in
  // context (loading does not depend on the order).
  std::size_t m = 0;
  const auto flush_marks = [&](std::int64_t up_to_ns) {
    for (; m < marks_.size() && marks_[m].t_ns <= up_to_ns; ++m)
      os << "mark " << marks_[m].t_ns << ' ' << marks_[m].code << ' '
         << marks_[m].detail << "\n";
  };
  for (const SeriesPoint& p : points_) {
    flush_marks(p.t_ns);
    os << "point " << p.t_ns << ' ' << p.jobs << ' ' << p.heap_bytes << ' '
       << p.arena_bytes << ' ' << p.rss_bytes << ' ' << p.ready_tasks << ' '
       << p.lat_ns;
    for (const std::uint64_t c : p.class_outstanding) os << ' ' << c;
    os << "\n";
  }
  flush_marks(std::numeric_limits<std::int64_t>::max());
}

bool Series::load(std::istream& is, std::string* error) {
  const auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error != nullptr) {
      std::ostringstream e;
      e << "line " << line_no << ": " << why;
      *error = e.str();
    }
    return false;
  };

  std::string line;
  std::size_t line_no = 0;

  // Header: `anahy-series v1 classes=<N>`. N may differ from this build's
  // class count (a future pool re-bucketing): extra columns are dropped,
  // missing ones read as zero — but every point line must carry exactly
  // the N the header declared (total parse, no silent truncation).
  if (!std::getline(is, line)) return fail(1, "empty file (missing header)");
  ++line_no;
  std::size_t declared_classes = 0;
  {
    std::istringstream h(line);
    std::string magic;
    std::string version;
    std::string classes_kv;
    h >> magic >> version >> classes_kv;
    if (magic != "anahy-series" || version != "v1")
      return fail(line_no, "not an anahy-series v1 header");
    if (classes_kv.rfind("classes=", 0) != 0)
      return fail(line_no, "missing classes= declaration");
    std::istringstream n(classes_kv.substr(8));
    long long declared = -1;
    n >> declared;
    if (n.fail() || !n.eof() || declared < 0 || declared > 1024)
      return fail(line_no, "bad classes= value");
    declared_classes = static_cast<std::size_t>(declared);
  }

  std::deque<SeriesPoint> loaded;
  std::vector<SeriesAnnotation> loaded_marks;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "mark") {
      // `mark <t_ns> <code> <detail...>` — an out-of-band timeline event
      // (e.g. ANAHY-A007, rejuvenation performed). The detail is the rest
      // of the line verbatim.
      SeriesAnnotation a;
      ls >> a.t_ns >> a.code;
      if (ls.fail() || a.code.empty())
        return fail(line_no, "truncated mark record");
      std::getline(ls, a.detail);
      if (!a.detail.empty() && a.detail.front() == ' ')
        a.detail.erase(0, 1);
      loaded_marks.push_back(std::move(a));
      continue;
    }
    if (kind != "point")
      return fail(line_no, "unknown record '" + kind + "'");
    SeriesPoint p;
    ls >> p.t_ns >> p.jobs >> p.heap_bytes >> p.arena_bytes >> p.rss_bytes >>
        p.ready_tasks >> p.lat_ns;
    if (ls.fail()) return fail(line_no, "truncated point record");
    for (std::size_t c = 0; c < declared_classes; ++c) {
      std::uint64_t v = 0;
      ls >> v;
      if (ls.fail())
        return fail(line_no, "point carries fewer class columns than the "
                             "header declared");
      if (c < kPoolClasses) p.class_outstanding[c] = v;
    }
    std::string trailing;
    if (ls >> trailing)
      return fail(line_no, "trailing data '" + trailing + "'");
    loaded.push_back(p);
  }

  points_ = std::move(loaded);
  marks_ = std::move(loaded_marks);
  capacity_ = 0;  // offline series are unbounded
  dropped_ = 0;
  return true;
}

}  // namespace anahy::aging
