#include "anahy/trace.hpp"

#include <algorithm>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>

namespace anahy {

void TraceGraph::record_task(TaskId id, TaskId parent, std::uint32_t level,
                             bool is_continuation, std::uint64_t job) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  TraceNode& n = nodes_[id];
  n.id = id;
  n.parent = parent;
  n.level = level;
  n.is_continuation = is_continuation;
  n.job = job;
}

void TraceGraph::record_edge(TaskId from, TaskId to, TraceEdgeKind kind) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  edges_.push_back({from, to, kind});
}

void TraceGraph::record_edge_stamped(TaskId from, TaskId to,
                                     TraceEdgeKind kind, std::int64_t ts_ns,
                                     int vp) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  edges_.push_back({from, to, kind, ts_ns, vp});
}

void TraceGraph::record_exec_ns(TaskId id, std::int64_t ns) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.exec_ns = ns;
}

void TraceGraph::record_exec_interval(TaskId id, std::int64_t start_ns,
                                      std::int64_t dur_ns) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    it->second.start_ns = start_ns;
    it->second.exec_ns = dur_ns;
  }
}

void TraceGraph::record_span(TaskId id, std::int64_t start_ns,
                             std::int64_t dur_ns, int vp) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    it->second.start_ns = start_ns;
    it->second.exec_ns = dur_ns;
    it->second.vp = vp;
  }
}

std::int64_t TraceGraph::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceGraph::record_label(TaskId id, std::string label) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.label = std::move(label);
}

void TraceGraph::record_task_attrs(TaskId id, int join_number,
                                   std::uint64_t data_len) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) {
    it->second.join_number = join_number;
    it->second.data_len = data_len;
  }
}

void TraceGraph::record_join_performed(TaskId id) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  const auto it = nodes_.find(id);
  if (it != nodes_.end()) ++it->second.joins_performed;
}

void TraceGraph::record_anomaly(std::string code, TaskId task,
                                std::string detail) {
  if (!enabled_) return;
  std::lock_guard lock(mu_);
  anomalies_.push_back({std::move(code), task, std::move(detail)});
}

bool TraceGraph::has_node(TaskId id) const {
  std::lock_guard lock(mu_);
  return nodes_.count(id) != 0;
}

std::vector<TraceNode> TraceGraph::nodes() const {
  std::lock_guard lock(mu_);
  std::vector<TraceNode> out;
  out.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) out.push_back(n);
  return out;
}

std::vector<TraceEdge> TraceGraph::edges() const {
  std::lock_guard lock(mu_);
  return edges_;
}

std::vector<TraceAnomaly> TraceGraph::anomalies() const {
  std::lock_guard lock(mu_);
  return anomalies_;
}

std::int64_t TraceGraph::work_ns() const {
  std::lock_guard lock(mu_);
  std::int64_t total = 0;
  for (const auto& [id, n] : nodes_) total += n.exec_ns;
  return total;
}

std::int64_t TraceGraph::span_ns() const {
  std::lock_guard lock(mu_);
  // Longest path over all edge kinds. NOTE on cycles: an *immediate* join
  // does not split the joining flow (paper semantics), so its dataflow
  // edge points back into the same node that earlier forked the target's
  // ancestors - the graph may contain such apparent cycles. The iterative
  // DFS below colours nodes and ignores back edges, which is exactly the
  // "code after the join" reading of those edges; it also avoids native
  // stack overflow on deep traces.
  std::map<TaskId, std::vector<TaskId>> preds;
  for (const TraceEdge& e : edges_) preds[e.to].push_back(e.from);

  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::map<TaskId, Color> color;
  std::map<TaskId, std::int64_t> best;

  struct Frame {
    TaskId id;
    std::size_t next_pred = 0;
  };
  const auto own_cost = [&](TaskId id) {
    const auto n = nodes_.find(id);
    return n == nodes_.end() ? std::int64_t{0} : n->second.exec_ns;
  };

  for (const auto& [root_id, root_node] : nodes_) {
    if (color[root_id] != Color::kWhite) continue;
    std::vector<Frame> stack{{root_id}};
    color[root_id] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto p = preds.find(f.id);
      bool descended = false;
      while (p != preds.end() && f.next_pred < p->second.size()) {
        const TaskId pred = p->second[f.next_pred++];
        Color& c = color[pred];
        if (c == Color::kWhite) {
          c = Color::kGray;
          stack.push_back({pred});
          descended = true;
          break;
        }
        // Gray = back edge (cycle through an un-split flow): ignore.
        // Black = already solved: handled in the reduction below.
      }
      if (descended) continue;
      // All predecessors solved: reduce.
      std::int64_t b = 0;
      if (p != preds.end())
        for (const TaskId pred : p->second)
          if (color[pred] == Color::kBlack)
            b = std::max(b, best[pred]);
      best[f.id] = own_cost(f.id) + b;
      color[f.id] = Color::kBlack;
      stack.pop_back();
    }
  }

  std::int64_t span = 0;
  for (const auto& [id, b] : best) span = std::max(span, b);
  return span;
}

std::map<std::uint32_t, std::size_t> TraceGraph::level_histogram() const {
  std::lock_guard lock(mu_);
  std::map<std::uint32_t, std::size_t> hist;
  for (const auto& [id, n] : nodes_) ++hist[n.level];
  return hist;
}

std::string TraceGraph::to_dot() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "digraph anahy {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  for (const auto& [id, n] : nodes_) {
    out << "  t" << id << " [label=\"T" << id;
    if (!n.label.empty()) out << "\\n" << n.label;
    out << "\\nL" << n.level << "\"";
    if (n.is_continuation) out << ", shape=box, style=dashed";
    out << "];\n";
  }
  for (const TraceEdge& e : edges_) {
    out << "  t" << e.from << " -> t" << e.to;
    switch (e.kind) {
      case TraceEdgeKind::kFork: break;
      case TraceEdgeKind::kJoin: out << " [style=dotted, color=blue]"; break;
      case TraceEdgeKind::kContinue:
        out << " [style=dashed, color=gray]";
        break;
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

namespace {

// The trace file format is line-oriented so a truncated file loses at most
// its last line. Labels/details go last on the line and may contain spaces
// (but not newlines, which record_label callers never produce).
constexpr const char* kTraceHeaderV1 = "anahy-trace v1";
constexpr const char* kTraceHeaderV2 = "anahy-trace v2";
constexpr const char* kTraceHeaderV3 = "anahy-trace v3";

const char* edge_kind_name(TraceEdgeKind k) {
  switch (k) {
    case TraceEdgeKind::kFork: return "fork";
    case TraceEdgeKind::kJoin: return "join";
    case TraceEdgeKind::kContinue: return "continue";
  }
  return "?";
}

bool parse_edge_kind(const std::string& s, TraceEdgeKind* out) {
  if (s == "fork") *out = TraceEdgeKind::kFork;
  else if (s == "join") *out = TraceEdgeKind::kJoin;
  else if (s == "continue") *out = TraceEdgeKind::kContinue;
  else return false;
  return true;
}

// Reads the rest of the stream (after the fixed fields) as a free-form
// trailing string, stripping the single separating space.
std::string rest_of_line(std::istringstream& in) {
  std::string rest;
  std::getline(in, rest);
  if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
  return rest;
}

}  // namespace

void TraceGraph::save(std::ostream& out) const {
  std::lock_guard lock(mu_);
  out << kTraceHeaderV3 << '\n';
  for (const auto& [id, n] : nodes_) {
    out << "node " << n.id << ' ' << static_cast<std::int64_t>(n.parent)
        << ' ' << n.level << ' ' << (n.is_continuation ? 1 : 0) << ' '
        << n.start_ns << ' ' << n.exec_ns << ' ' << n.join_number << ' '
        << n.joins_performed << ' ' << n.data_len << ' ' << n.job << ' '
        << n.vp << ' ' << n.label << '\n';
  }
  for (const TraceEdge& e : edges_)
    out << "edge " << e.from << ' ' << e.to << ' ' << edge_kind_name(e.kind)
        << ' ' << e.ts_ns << ' ' << e.vp << '\n';
  for (const TraceAnomaly& a : anomalies_)
    out << "anomaly " << a.code << ' ' << a.task << ' ' << a.detail << '\n';
}

bool TraceGraph::load(std::istream& in, std::string* error) {
  std::lock_guard lock(mu_);
  // Parse into locals and commit only on success: a truncated or corrupted
  // file must not leave a half-loaded graph behind (the previous contents
  // are preserved too — load is all-or-nothing).
  std::map<TaskId, TraceNode> nodes;
  std::vector<TraceEdge> edges;
  std::vector<TraceAnomaly> anomalies;

  const auto fail = [&](std::size_t line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "trace line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };

  std::string line;
  if (!std::getline(in, line) ||
      (line != kTraceHeaderV1 && line != kTraceHeaderV2 &&
       line != kTraceHeaderV3))
    return fail(1, "missing 'anahy-trace v1'/'v2'/'v3' header");
  const bool v3 = line == kTraceHeaderV3;
  const bool v2 = v3 || line == kTraceHeaderV2;

  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "node") {
      TraceNode n;
      std::int64_t parent = -1;
      int cont = 0;
      ls >> n.id >> parent >> n.level >> cont >> n.start_ns >> n.exec_ns >>
          n.join_number >> n.joins_performed >> n.data_len;
      if (v2) ls >> n.job;
      if (v3) ls >> n.vp;
      if (ls.fail()) return fail(line_no, "malformed node record");
      n.parent = parent < 0 ? kInvalidTaskId : static_cast<TaskId>(parent);
      n.is_continuation = cont != 0;
      n.label = rest_of_line(ls);
      nodes[n.id] = std::move(n);
    } else if (kind == "edge") {
      TraceEdge e;
      std::string ek;
      ls >> e.from >> e.to >> ek;
      if (ls.fail() || !parse_edge_kind(ek, &e.kind))
        return fail(line_no, "malformed edge record");
      if (v3) {
        ls >> e.ts_ns >> e.vp;
        if (ls.fail()) return fail(line_no, "malformed edge record");
      }
      edges.push_back(e);
    } else if (kind == "anomaly") {
      TraceAnomaly a;
      ls >> a.code >> a.task;
      if (ls.fail()) return fail(line_no, "malformed anomaly record");
      a.detail = rest_of_line(ls);
      anomalies.push_back(std::move(a));
    } else {
      return fail(line_no, "unknown record kind '" + kind + "'");
    }
  }
  nodes_ = std::move(nodes);
  edges_ = std::move(edges);
  anomalies_ = std::move(anomalies);
  return true;
}

void TraceGraph::clear() {
  std::lock_guard lock(mu_);
  nodes_.clear();
  edges_.clear();
  anomalies_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace anahy
