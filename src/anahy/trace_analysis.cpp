#include "anahy/trace_analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <sstream>

namespace anahy {

std::vector<ExecInterval> exec_intervals(const TraceGraph& trace) {
  std::vector<ExecInterval> out;
  for (const TraceNode& n : trace.nodes()) {
    if (n.start_ns < 0) continue;  // never executed (or continuation)
    out.push_back({n.id, n.start_ns, n.start_ns + n.exec_ns, n.level,
                   n.label});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns : a.id < b.id;
  });
  return out;
}

std::vector<std::size_t> parallelism_profile(
    const std::vector<ExecInterval>& intervals, std::int64_t bucket_ns) {
  if (intervals.empty() || bucket_ns <= 0) return {};
  std::int64_t lo = intervals.front().start_ns;
  std::int64_t hi = lo;
  for (const auto& iv : intervals) hi = std::max(hi, iv.end_ns);
  if (hi <= lo) return {};

  const auto buckets =
      static_cast<std::size_t>((hi - lo + bucket_ns - 1) / bucket_ns);
  std::vector<std::size_t> profile(buckets, 0);
  for (const auto& iv : intervals) {
    const auto first =
        static_cast<std::size_t>((iv.start_ns - lo) / bucket_ns);
    // end - 1 so zero-length intervals still count in their start bucket.
    const auto last = static_cast<std::size_t>(
        (std::max(iv.end_ns - 1, iv.start_ns) - lo) / bucket_ns);
    for (std::size_t b = first; b <= last && b < buckets; ++b) ++profile[b];
  }
  return profile;
}

std::size_t max_concurrency(const std::vector<ExecInterval>& intervals) {
  // Event sweep: +1 at starts, -1 at ends.
  std::vector<std::pair<std::int64_t, int>> events;
  events.reserve(intervals.size() * 2);
  for (const auto& iv : intervals) {
    events.emplace_back(iv.start_ns, +1);
    events.emplace_back(std::max(iv.end_ns, iv.start_ns + 1), -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              // ends before starts at the same instant
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  std::size_t cur = 0, peak = 0;
  for (const auto& [t, delta] : events) {
    cur = static_cast<std::size_t>(static_cast<std::int64_t>(cur) + delta);
    peak = std::max(peak, cur);
  }
  return peak;
}

double average_parallelism(const TraceGraph& trace) {
  const auto span = trace.span_ns();
  if (span <= 0) return 0.0;
  return static_cast<double>(trace.work_ns()) / static_cast<double>(span);
}

std::vector<TaskId> critical_path(const TraceGraph& trace) {
  const auto nodes = trace.nodes();
  const auto edges = trace.edges();
  std::map<TaskId, std::int64_t> cost;
  for (const TraceNode& n : nodes) cost[n.id] = n.exec_ns;

  std::map<TaskId, std::vector<TaskId>> preds;
  for (const TraceEdge& e : edges) preds[e.to].push_back(e.from);

  // Iterative longest-path DFS. Back edges (cycles through flows that an
  // immediate join did not split - see TraceGraph::span_ns) are ignored,
  // and deep traces cannot overflow the native stack.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::map<TaskId, Color> color;
  std::map<TaskId, std::int64_t> best;
  std::map<TaskId, TaskId> via;

  struct Frame {
    TaskId id;
    std::size_t next_pred = 0;
  };
  for (const TraceNode& root : nodes) {
    if (color[root.id] != Color::kWhite) continue;
    std::vector<Frame> stack{{root.id}};
    color[root.id] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto p = preds.find(f.id);
      bool descended = false;
      while (p != preds.end() && f.next_pred < p->second.size()) {
        const TaskId pred = p->second[f.next_pred++];
        Color& c = color[pred];
        if (c == Color::kWhite) {
          c = Color::kGray;
          stack.push_back({pred});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      std::int64_t b = 0;
      TaskId from = kInvalidTaskId;
      if (p != preds.end()) {
        for (const TaskId pred : p->second) {
          if (color[pred] != Color::kBlack) continue;  // back edge
          if (best[pred] > b || from == kInvalidTaskId) {
            b = best[pred];
            from = pred;
          }
        }
      }
      best[f.id] = b + cost[f.id];
      if (from != kInvalidTaskId) via[f.id] = from;
      color[f.id] = Color::kBlack;
      stack.pop_back();
    }
  }

  TaskId sink = kInvalidTaskId;
  std::int64_t sink_cost = -1;
  for (const TraceNode& n : nodes) {
    if (best[n.id] > sink_cost) {
      sink_cost = best[n.id];
      sink = n.id;
    }
  }

  std::vector<TaskId> path;
  for (TaskId cur = sink; cur != kInvalidTaskId;) {
    path.push_back(cur);
    const auto v = via.find(cur);
    cur = v == via.end() ? kInvalidTaskId : v->second;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string gantt_csv(const TraceGraph& trace) {
  std::ostringstream out;
  out << "task,label,level,start_ns,end_ns,duration_ns\n";
  for (const auto& iv : exec_intervals(trace)) {
    out << 'T' << iv.id << ',' << iv.label << ',' << iv.level << ','
        << iv.start_ns << ',' << iv.end_ns << ',' << (iv.end_ns - iv.start_ns)
        << '\n';
  }
  return out.str();
}

namespace {

/// Longest path (sum of node costs) over `preds`, ignoring back edges the
/// same way TraceGraph::span_ns does. `cost` defines the node universe;
/// predecessors outside it contribute nothing.
std::int64_t longest_path_ns(const std::map<TaskId, std::int64_t>& cost,
                             const std::map<TaskId, std::vector<TaskId>>& preds) {
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::map<TaskId, Color> color;
  std::map<TaskId, std::int64_t> best;
  struct Frame {
    TaskId id;
    std::size_t next_pred = 0;
  };
  for (const auto& [root, root_cost] : cost) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{{root}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto p = preds.find(f.id);
      bool descended = false;
      while (p != preds.end() && f.next_pred < p->second.size()) {
        const TaskId pred = p->second[f.next_pred++];
        if (cost.find(pred) == cost.end()) continue;  // outside the universe
        Color& c = color[pred];
        if (c == Color::kWhite) {
          c = Color::kGray;
          stack.push_back({pred});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      std::int64_t b = 0;
      if (p != preds.end())
        for (const TaskId pred : p->second)
          if (color[pred] == Color::kBlack) b = std::max(b, best[pred]);
      const auto c = cost.find(f.id);
      best[f.id] = (c == cost.end() ? 0 : c->second) + b;
      color[f.id] = Color::kBlack;
      stack.pop_back();
    }
  }
  std::int64_t span = 0;
  for (const auto& [id, b] : best) span = std::max(span, b);
  return span;
}

}  // namespace

std::vector<JobProfile> job_profiles(const TraceGraph& trace) {
  const auto nodes = trace.nodes();
  const auto edges = trace.edges();

  std::map<TaskId, std::uint64_t> job_of;
  std::map<std::uint64_t, JobProfile> jobs;
  std::map<std::uint64_t, std::map<TaskId, std::int64_t>> costs;
  for (const TraceNode& n : nodes) {
    job_of[n.id] = n.job;
    JobProfile& p = jobs[n.job];
    p.job = n.job;
    ++p.tasks;
    if (n.is_continuation) ++p.continuations;
    p.data_len += n.data_len;
    p.work_ns += n.exec_ns;
    costs[n.job][n.id] = n.exec_ns;
  }

  // Span is computed per job over the edges internal to it; a cross-job
  // edge (possible only through hand-edited traces) is simply dropped.
  std::map<std::uint64_t, std::map<TaskId, std::vector<TaskId>>> preds;
  for (const TraceEdge& e : edges) {
    const auto jf = job_of.find(e.from);
    const auto jt = job_of.find(e.to);
    if (jf == job_of.end() || jt == job_of.end() || jf->second != jt->second)
      continue;
    preds[jf->second][e.to].push_back(e.from);
  }

  std::vector<JobProfile> out;
  out.reserve(jobs.size());
  for (auto& [job, profile] : jobs) {
    profile.span_ns = longest_path_ns(costs[job], preds[job]);
    out.push_back(profile);
  }
  return out;
}

std::string trace_stats_text(const TraceGraph& trace) {
  const auto nodes = trace.nodes();
  const auto edges = trace.edges();

  std::size_t continuations = 0;
  std::size_t executed = 0;
  std::map<std::uint32_t, std::size_t> depth_hist;
  for (const TraceNode& n : nodes) {
    if (n.is_continuation) ++continuations;
    if (n.start_ns >= 0) ++executed;
    ++depth_hist[n.level];
  }
  std::size_t forks = 0, joins = 0, continues = 0, stamped = 0;
  for (const TraceEdge& e : edges) {
    switch (e.kind) {
      case TraceEdgeKind::kFork: ++forks; break;
      case TraceEdgeKind::kJoin: ++joins; break;
      case TraceEdgeKind::kContinue: ++continues; break;
    }
    if (e.ts_ns >= 0) ++stamped;
  }

  std::ostringstream out;
  out << "anahy-trace stats\n";
  out << "nodes " << nodes.size() << " (continuations " << continuations
      << ", executed " << executed << ")\n";
  out << "edges " << edges.size() << " (fork " << forks << ", join " << joins
      << ", continue " << continues << ", stamped " << stamped << ")\n";
  out << "anomalies " << trace.anomalies().size() << "\n";
  out << "fork-depth histogram:\n";
  for (const auto& [level, count] : depth_hist)
    out << "  level " << level << ": " << count << "\n";
  out << "jobs:\n";
  char par[32];
  for (const JobProfile& p : job_profiles(trace)) {
    std::snprintf(par, sizeof(par), "%.2f", p.parallelism());
    out << "  job " << p.job << ": tasks " << p.tasks << " (continuations "
        << p.continuations << "), datalen " << p.data_len << ", work_ns "
        << p.work_ns << ", span_ns " << p.span_ns << ", parallelism " << par
        << "\n";
  }
  return out.str();
}

namespace {

/// Cycle detection over the fork/continue subgraph (iterative three-colour
/// DFS; join edges excluded, they legitimately point backwards on immediate
/// joins). Nodes are taken from the edges as well as the node table, so a
/// hand-corrupted trace whose edges mention unknown ids is still covered.
std::vector<TaskId> find_fork_cycle(const std::vector<TraceEdge>& edges) {
  std::map<TaskId, std::vector<TaskId>> succs;
  std::vector<TaskId> ids;
  for (const TraceEdge& e : edges) {
    if (e.kind == TraceEdgeKind::kJoin) continue;
    succs[e.from].push_back(e.to);
    ids.push_back(e.from);
    ids.push_back(e.to);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::map<TaskId, Color> color;
  struct Frame {
    TaskId id;
    std::size_t next = 0;
  };
  for (const TaskId root : ids) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{{root}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& f = stack.back();
      auto s = succs.find(f.id);
      bool descended = false;
      while (s != succs.end() && f.next < s->second.size()) {
        const TaskId to = s->second[f.next++];
        Color& c = color[to];
        if (c == Color::kGray) {
          // Found a cycle: everything on the stack from `to` onward.
          std::vector<TaskId> cycle;
          bool in = false;
          for (const Frame& fr : stack) {
            if (fr.id == to) in = true;
            if (in) cycle.push_back(fr.id);
          }
          return cycle;
        }
        if (c == Color::kWhite) {
          c = Color::kGray;
          stack.push_back({to});
          descended = true;
          break;
        }
      }
      if (descended) continue;
      color[f.id] = Color::kBlack;
      stack.pop_back();
    }
  }
  return {};
}

}  // namespace

std::vector<LintDiagnostic> lint_trace(const TraceGraph& trace) {
  std::vector<LintDiagnostic> out;
  const auto nodes = trace.nodes();

  // Offline: join-budget accounting per task. The root flow and
  // continuation markers carry no budget (join_number stays -1) and
  // detached tasks (join_number 0) cannot leak; both are skipped.
  for (const TraceNode& n : nodes) {
    if (n.is_continuation || n.join_number <= 0) continue;
    if (n.joins_performed == 0) {
      out.push_back({lint_code::kLeakedTask, n.id,
                     "joinable task was never joined (join budget " +
                         std::to_string(n.join_number) + " untouched)"});
    } else if (n.joins_performed < n.join_number) {
      out.push_back({lint_code::kJoinMismatch, n.id,
                     "declared join budget " + std::to_string(n.join_number) +
                         " but only " + std::to_string(n.joins_performed) +
                         " join(s) performed"});
    }
  }

  // Offline: the spawn structure (fork + continue edges) must be acyclic.
  const auto cycle = find_fork_cycle(trace.edges());
  if (!cycle.empty()) {
    std::string path;
    for (const TaskId id : cycle) {
      if (!path.empty()) path += " -> ";
      path += 'T' + std::to_string(id);
    }
    out.push_back({lint_code::kCycle, cycle.front(),
                   "cycle through fork/continue edges: " + path});
  }

  // Online: anomalies the scheduler recorded as they happened.
  for (const TraceAnomaly& a : trace.anomalies())
    out.push_back({a.code, a.task, a.detail});

  std::sort(out.begin(), out.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              return a.code != b.code ? a.code < b.code : a.task < b.task;
            });
  return out;
}

std::string format_diagnostics(const std::vector<LintDiagnostic>& diags) {
  std::ostringstream out;
  for (const LintDiagnostic& d : diags) {
    out << d.code << ": ";
    if (d.task != kInvalidTaskId) out << "task T" << d.task << ": ";
    out << d.message << '\n';
  }
  return out.str();
}

}  // namespace anahy
