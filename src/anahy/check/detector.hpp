// The determinacy-race detector: strand-based series-parallel maintenance
// over the fork/join graph plus a shadow-memory table.
//
// Model. Classic SP-bags (Feng & Leiserson, "On-the-fly detection of
// determinacy races in Cilk programs") certifies every schedule of a
// spawn/sync program from ONE serial execution, using a disjoint-set
// structure whose invariants lean on Cilk's strictly nested sync. Anahy's
// join is more general - any task may join any other task, out of order,
// futures-style - and under individual joins the SP-bags S/P tagging is no
// longer sound. This detector therefore keeps the same "one serial run
// certifies all schedules" property but maintains the series-parallel
// relation explicitly:
//
//  * Execution is cut into *strands*: maximal instruction sequences of one
//    task with no fork or join inside. A fork ends the parent's current
//    strand (the child must not be ordered after the parent's post-fork
//    code); a successful join ends the joiner's current strand (the code
//    after the join IS ordered after the join target).
//  * Every strand carries a happens-before set - a bitset over all earlier
//    strands - built incrementally: child-at-fork and joiner-at-join
//    inherit the union of their predecessors' sets. "Strand a precedes
//    strand b" is then one bit test.
//  * The shadow table maps each 8-byte granule of instrumented memory to
//    the last writer strand and the list of reader strands since that
//    write. An access races when it conflicts with a recorded strand whose
//    bit is not in the current strand's happens-before set.
//
// In serial-elision mode (1 VP, main participates: zero worker threads)
// the single execution visits every access in a canonical order, so the
// verdict is deterministic and certifies all schedules of the traced DAG:
// sound and complete for the accesses that were instrumented. With
// multiple VPs the detector stays memory-safe behind one mutex and still
// reports only true graph races, but which races it observes depends on
// the schedule (best-effort mode; see docs/CHECKING.md).
//
// Memory: happens-before bitsets cost O(strands^2 / 8) bytes total - the
// price of supporting out-of-order joins - which is fine for the debug
// runs this tool targets (~12 MB at 10k strands).
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "anahy/check/check.hpp"
#include "anahy/types.hpp"

namespace anahy::check {

class Detector {
 public:
  /// `serial` marks the canonical serial-elision configuration (1 VP);
  /// only used for reporting, the algorithm is identical.
  explicit Detector(bool serial);

  Detector(const Detector&) = delete;
  Detector& operator=(const Detector&) = delete;

  /// Scheduler hooks (fork/join transitions). `job` is the serve-layer job
  /// id of the child's execution context (0 = none); it lets race reports
  /// be attributed to the job(s) involved.
  void on_fork(TaskId parent, TaskId child, const std::string& label,
               std::uint64_t job = 0);
  void on_finish(TaskId task);
  void on_join(TaskId joiner, TaskId target);

  /// Access instrumentation: called by check::read/write (via the active
  /// detector) and by the scheduler's datalen auto-instrumentation.
  void on_access(TaskId task, const void* ptr, std::size_t len,
                 bool is_write);

  [[nodiscard]] std::vector<RaceReport> reports() const;

  /// Reports involving at least one task of serve job `job` (JobSpec::check
  /// surfaces these in the job's completion status).
  [[nodiscard]] std::vector<RaceReport> reports_for_job(
      std::uint64_t job) const;

  void clear_reports();

  [[nodiscard]] bool serial_mode() const { return serial_; }

  /// Number of strands created so far (monitoring/tests).
  [[nodiscard]] std::size_t strand_count() const;

 private:
  using Strand = std::uint32_t;
  static constexpr Strand kNoStrand = ~Strand{0};
  /// Accesses longer than this many 8-byte granules are clipped (keeps a
  /// huge instrumented memcpy from freezing the debug run).
  static constexpr std::size_t kMaxGranules = 4096;

  struct TaskNode {
    TaskId parent = kInvalidTaskId;
    Strand current = kNoStrand;  ///< strand of the task's executing code
    Strand last = kNoStrand;     ///< strand at finish (what joiners inherit)
    std::uint64_t job = 0;       ///< owning serve job (0 = none)
    std::string label;
  };

  struct Cell {
    Strand writer = kNoStrand;
    std::vector<Strand> readers;  ///< readers since the last write
  };

  /// Creates a strand owned by `owner` whose happens-before set is the
  /// union of each predecessor's set plus the predecessors themselves.
  Strand derive_strand(TaskId owner, std::initializer_list<Strand> preds);

  /// True when everything in strand `a` is ordered before strand `b`.
  [[nodiscard]] bool ordered(Strand a, Strand b) const;

  /// Node for `id`, lazily creating the root flow's node (strand 0).
  TaskNode& node(TaskId id);

  void report(Strand prior, bool prior_is_write, TaskId current_task,
              bool is_write, std::uintptr_t granule_addr);
  [[nodiscard]] std::string fork_path(TaskId task) const;

  const bool serial_;
  mutable std::mutex mu_;
  std::unordered_map<TaskId, TaskNode> tasks_;
  std::vector<std::vector<std::uint64_t>> hb_;  ///< per-strand bitsets
  std::vector<TaskId> strand_owner_;
  std::unordered_map<std::uintptr_t, Cell> shadow_;  ///< key: addr >> 3
  std::vector<RaceReport> reports_;
  std::set<std::tuple<TaskId, TaskId, std::uintptr_t>> reported_;
};

/// Registers `d` as the process-wide active detector the check::read/write
/// entry points feed (null unregisters). The scheduler of a check-enabled
/// runtime calls this on construction/destruction; one checked runtime at
/// a time is supported (last one wins).
void set_active_detector(Detector* d);
[[nodiscard]] Detector* active_detector();

}  // namespace anahy::check
