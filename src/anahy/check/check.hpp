// anahy::check - user-facing entry points of the determinacy-race detector.
//
// Anahy's central claim is determinism: synchronization happens only
// through fork/join dataflow, so a race-free program computes the same
// result under every schedule. This header is how a program (or the
// runtime itself, via the datalen auto-instrumentation) tells the checker
// about shared-memory accesses so that claim can actually be verified:
//
//   anahy::check::write(&acc, sizeof acc);   // before mutating shared data
//   anahy::check::read(&acc, sizeof acc);    // before reading it
//
// The detector is off by default and costs one relaxed atomic load per
// call when off. It is switched on per runtime with `Options::check = true`
// or globally with the environment variable `ANAHY_CHECK=1` (read by
// Options::from_env, i.e. by athread_init). See docs/CHECKING.md for the
// detection model and its serial vs. concurrent mode guarantees.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "anahy/types.hpp"

namespace anahy::check {

class Detector;

/// One detected determinacy race: two accesses to the same location, at
/// least one a write, performed by two tasks that the fork/join graph does
/// not order. Reported once per (task pair, 8-byte granule).
struct RaceReport {
  static constexpr const char* kCode = "ANAHY-R001";

  TaskId first_task = kInvalidTaskId;   ///< earlier access (program order)
  TaskId second_task = kInvalidTaskId;  ///< later, conflicting access
  std::uint64_t first_job = 0;   ///< serve job of the first task (0 = none)
  std::uint64_t second_job = 0;  ///< serve job of the second task
  std::uintptr_t addr = 0;              ///< racy address (granule base)
  bool first_is_write = false;
  bool second_is_write = false;
  std::string first_fork_path;   ///< e.g. "T0 -> T3 -> T7"
  std::string second_fork_path;  ///< fork path of the second task

  /// "ANAHY-R001: determinacy race at 0x...: T3 (write) vs T7 (read) ..."
  [[nodiscard]] std::string to_string() const;
};

namespace internal {
extern std::atomic<bool> g_enabled;
void access(const void* ptr, std::size_t len, bool is_write);
}  // namespace internal

/// True when some live runtime has checking enabled. The off path of
/// read()/write() is this single relaxed load.
[[nodiscard]] inline bool enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Declares that the calling task is about to read [ptr, ptr + len).
inline void read(const void* ptr, std::size_t len) {
  if (enabled()) internal::access(ptr, len, /*is_write=*/false);
}

/// Declares that the calling task is about to write [ptr, ptr + len).
inline void write(const void* ptr, std::size_t len) {
  if (enabled()) internal::access(ptr, len, /*is_write=*/true);
}

/// Races found so far by the active detector (empty when checking is off).
[[nodiscard]] std::vector<RaceReport> reports();

/// Drops the accumulated reports of the active detector.
void clear_reports();

}  // namespace anahy::check
