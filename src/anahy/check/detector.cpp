#include "anahy/check/detector.hpp"

#include <algorithm>
#include <sstream>

#include "anahy/scheduler.hpp"

namespace anahy::check {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {
std::atomic<Detector*> g_active{nullptr};
}  // namespace

void set_active_detector(Detector* d) {
  g_active.store(d, std::memory_order_release);
  internal::g_enabled.store(d != nullptr, std::memory_order_release);
}

Detector* active_detector() {
  return g_active.load(std::memory_order_acquire);
}

void internal::access(const void* ptr, std::size_t len, bool is_write) {
  Detector* d = active_detector();
  if (d == nullptr || ptr == nullptr || len == 0) return;
  d->on_access(Scheduler::current_task_id(), ptr, len, is_write);
}

std::string RaceReport::to_string() const {
  std::ostringstream out;
  out << kCode << ": determinacy race at 0x" << std::hex << addr << std::dec
      << ": T" << first_task << " (" << (first_is_write ? "write" : "read")
      << ") is unordered with T" << second_task << " ("
      << (second_is_write ? "write" : "read") << "); fork paths: "
      << first_fork_path << " | " << second_fork_path;
  return out.str();
}

Detector::Detector(bool serial) : serial_(serial) {}

Detector::TaskNode& Detector::node(TaskId id) {
  auto it = tasks_.find(id);
  if (it != tasks_.end()) return it->second;
  // Unknown id: the root flow (T0 exists before any fork), or - in the
  // concurrent best-effort mode - a task whose fork we have not seen
  // because checking was switched on mid-run. Either way it gets a fresh
  // root-like strand with an empty happens-before set.
  TaskNode n;
  n.parent = kInvalidTaskId;
  n.current = derive_strand(id, {});
  return tasks_.emplace(id, std::move(n)).first->second;
}

Detector::Strand Detector::derive_strand(
    TaskId owner, std::initializer_list<Strand> preds) {
  const Strand s = static_cast<Strand>(hb_.size());
  std::vector<std::uint64_t> bits((s + 63) / 64, 0);
  for (const Strand p : preds) {
    if (p == kNoStrand) continue;
    const auto& pb = hb_[p];
    for (std::size_t w = 0; w < pb.size(); ++w) bits[w] |= pb[w];
    bits[p / 64] |= std::uint64_t{1} << (p % 64);
  }
  hb_.push_back(std::move(bits));
  strand_owner_.push_back(owner);
  return s;
}

bool Detector::ordered(Strand a, Strand b) const {
  if (a == b) return true;
  const auto& bits = hb_[b];
  const std::size_t w = a / 64;
  return w < bits.size() && (bits[w] >> (a % 64)) & 1;
}

void Detector::on_fork(TaskId parent, TaskId child, const std::string& label,
                       std::uint64_t job) {
  std::lock_guard lock(mu_);
  // The fork cuts the parent's current strand: the child is ordered after
  // the parent's pre-fork code only, never after its continuation.
  const Strand parent_strand = node(parent).current;
  TaskNode c;
  c.parent = parent;
  c.label = label;
  c.job = job != 0 ? job : node(parent).job;
  c.current = derive_strand(child, {parent_strand});
  tasks_.emplace(child, std::move(c));
  node(parent).current = derive_strand(parent, {parent_strand});
}

void Detector::on_finish(TaskId task) {
  std::lock_guard lock(mu_);
  TaskNode& n = node(task);
  n.last = n.current;
}

void Detector::on_join(TaskId joiner, TaskId target) {
  std::lock_guard lock(mu_);
  // on_join runs after the joiner consumed the target's kFinished state,
  // so the target's final strand is set; the joiner's post-join code is
  // ordered after both its own prefix and the target's whole execution.
  const Strand target_last = node(target).last;
  TaskNode& j = node(joiner);
  j.current = derive_strand(joiner, {j.current, target_last});
}

void Detector::on_access(TaskId task, const void* ptr, std::size_t len,
                         bool is_write) {
  std::lock_guard lock(mu_);
  const Strand cur = node(task).current;
  const auto base = reinterpret_cast<std::uintptr_t>(ptr);
  const std::uintptr_t first = base >> 3;
  std::uintptr_t last = (base + len - 1) >> 3;
  if (last - first >= kMaxGranules) last = first + kMaxGranules - 1;

  for (std::uintptr_t g = first; g <= last; ++g) {
    Cell& cell = shadow_[g];
    if (cell.writer != kNoStrand && !ordered(cell.writer, cur))
      report(cell.writer, /*prior_is_write=*/true, task, is_write, g << 3);
    if (is_write) {
      for (const Strand r : cell.readers)
        if (!ordered(r, cur))
          report(r, /*prior_is_write=*/false, task, is_write, g << 3);
      cell.writer = cur;
      cell.readers.clear();
    } else {
      // Keep the reader list small: a recorded reader ordered before this
      // one is subsumed (any future strand unordered with it would also be
      // unordered with us only if it misses our bit - but our set contains
      // theirs, so checking against us suffices).
      std::erase_if(cell.readers,
                    [&](Strand r) { return ordered(r, cur); });
      if (std::find(cell.readers.begin(), cell.readers.end(), cur) ==
          cell.readers.end())
        cell.readers.push_back(cur);
    }
  }
}

void Detector::report(Strand prior, bool prior_is_write, TaskId current_task,
                      bool is_write, std::uintptr_t granule_addr) {
  constexpr std::size_t kMaxReports = 1024;
  const TaskId prior_task = strand_owner_[prior];
  if (prior_task == current_task) return;  // self-overlap, not a race
  if (reports_.size() >= kMaxReports) return;
  if (!reported_.emplace(prior_task, current_task, granule_addr).second)
    return;

  RaceReport r;
  r.first_task = prior_task;
  r.second_task = current_task;
  const auto job_of = [&](TaskId id) -> std::uint64_t {
    const auto it = tasks_.find(id);
    return it == tasks_.end() ? 0 : it->second.job;
  };
  r.first_job = job_of(prior_task);
  r.second_job = job_of(current_task);
  r.addr = granule_addr;
  r.first_is_write = prior_is_write;
  r.second_is_write = is_write;
  r.first_fork_path = fork_path(prior_task);
  r.second_fork_path = fork_path(current_task);
  reports_.push_back(std::move(r));
}

std::string Detector::fork_path(TaskId task) const {
  // Reconstructs the fork lineage root -> ... -> task. The chain is short
  // (fork-tree depth); a defensive cap guards against corrupt parent links.
  std::vector<TaskId> chain;
  TaskId cur = task;
  for (int depth = 0; depth < 256 && cur != kInvalidTaskId; ++depth) {
    chain.push_back(cur);
    const auto it = tasks_.find(cur);
    cur = it == tasks_.end() ? kInvalidTaskId : it->second.parent;
  }
  std::ostringstream out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (it != chain.rbegin()) out << " -> ";
    out << 'T' << *it;
    const auto n = tasks_.find(*it);
    if (n != tasks_.end() && !n->second.label.empty())
      out << '(' << n->second.label << ')';
  }
  return out.str();
}

std::vector<RaceReport> Detector::reports() const {
  std::lock_guard lock(mu_);
  return reports_;
}

std::vector<RaceReport> Detector::reports_for_job(std::uint64_t job) const {
  std::lock_guard lock(mu_);
  std::vector<RaceReport> out;
  for (const RaceReport& r : reports_)
    if (r.first_job == job || r.second_job == job) out.push_back(r);
  return out;
}

void Detector::clear_reports() {
  std::lock_guard lock(mu_);
  reports_.clear();
  reported_.clear();
}

std::size_t Detector::strand_count() const {
  std::lock_guard lock(mu_);
  return hb_.size();
}

std::vector<RaceReport> reports() {
  Detector* d = active_detector();
  return d == nullptr ? std::vector<RaceReport>{} : d->reports();
}

void clear_reports() {
  if (Detector* d = active_detector()) d->clear_reports();
}

}  // namespace anahy::check
