// TaskGroup: RAII fork-many / join-all (structured concurrency for the
// split-compute-merge pattern). Guarantees no task outlives the group,
// even on early return or exception in the forking scope.
#pragma once

#include <functional>
#include <vector>

#include "anahy/runtime.hpp"

namespace anahy {

/// Collects forked tasks and joins all of them in wait() (called
/// automatically by the destructor). Non-copyable, non-movable: the group
/// is a scope marker.
class TaskGroup {
 public:
  explicit TaskGroup(Runtime& rt) : rt_(rt) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks `fn()` as a group member. `fn` must be invocable with no
  /// arguments; its return value is discarded (use spawn() + Handle for
  /// value-returning tasks).
  template <typename F>
  void run(F&& fn) {
    tasks_.push_back(rt_.fork(
        [fn = std::forward<F>(fn)](void*) mutable -> void* {
          fn();
          return nullptr;
        },
        nullptr));
  }

  /// Joins every member forked so far. Idempotent; the group can be
  /// reused (run() again after wait()).
  void wait() {
    for (auto& task : tasks_) rt_.join(task, nullptr);
    tasks_.clear();
  }

  /// Members forked and not yet waited for.
  [[nodiscard]] std::size_t pending() const { return tasks_.size(); }

 private:
  Runtime& rt_;
  std::vector<TaskPtr> tasks_;
};

}  // namespace anahy
