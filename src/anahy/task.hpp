// The unit of concurrency: an Anahy task (the paper's "thread Anahy").
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "anahy/attr.hpp"
#include "anahy/task_context.hpp"
#include "anahy/types.hpp"

namespace anahy {

class Task;
using TaskPtr = std::shared_ptr<Task>;

/// A task body receives an opaque input pointer and returns an opaque result
/// pointer, exactly like a POSIX thread start routine (`void* f(void*)`).
using TaskBody = std::function<void*(void*)>;

/// A forked flow of execution plus its dataflow bookkeeping.
///
/// Tasks are created by `fork` (athread_create), enter the ready list, are
/// executed by a virtual processor, and park their result in the finished
/// list until the declared number of `join`s consumes it.
///
/// The life cycle is a lock-free state machine:
///   kCreated/kReady --try_claim--> kRunning --> kFinished --> kJoined
/// `try_claim` is the single consumption point of a ready task: whichever
/// thread wins the CAS (a VP popping its deque, a thief, or a joiner
/// inlining its target) owns the execution; every other path that still
/// holds a reference to the task observes the lost CAS and backs off. The
/// runner publishes the result with the kFinished release store; joiners
/// acquire-read the state, so no lock is needed between finish and join.
class Task {
 public:
  Task(TaskId id, TaskBody body, void* input, const TaskAttributes& attr,
       TaskId parent, std::uint32_t level)
      : id_(id),
        body_(std::move(body)),
        input_(input),
        attr_(attr),
        parent_(parent),
        level_(level),
        joins_remaining_(attr.join_number()),
        priority_(attr.priority()),
        flow_id_(id) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  /// Credits the job's memory account when a charged block dies. The
  /// context is a member, so it is still alive here no matter which thread
  /// drops the last reference (task_context.hpp note_pool_free).
  ~Task() {
    if (ctx_ != nullptr && pool_bytes_ != 0) ctx_->note_pool_free(pool_bytes_);
  }

  [[nodiscard]] TaskId id() const { return id_; }
  [[nodiscard]] TaskId parent() const { return parent_; }

  /// Depth in the fork tree: the root flow is level 0, its forks level 1...
  /// (paper Figure 2 draws tasks by these levels).
  [[nodiscard]] std::uint32_t level() const { return level_; }

  [[nodiscard]] const TaskAttributes& attributes() const { return attr_; }

  /// Shared execution context (serve-layer job), null for context-free
  /// tasks. Set once by the scheduler before the task is published.
  [[nodiscard]] const TaskContextPtr& context() const { return ctx_; }
  void set_context(TaskContextPtr ctx) {
    if (ctx != nullptr) priority_ = ctx->priority;
    ctx_ = std::move(ctx);
  }

  /// Pool bytes charged to the context for this task's block (0 = not
  /// charged: context-free task, or accounting was off at fork time). Set
  /// by the scheduler alongside set_context; consumed by the destructor.
  void set_pool_bytes(std::uint32_t bytes) { pool_bytes_ = bytes; }
  [[nodiscard]] std::uint32_t pool_bytes() const { return pool_bytes_; }

  /// Effective scheduling class: the context's class when the task belongs
  /// to a job, the creation attribute's otherwise. Immutable once the task
  /// is published to the ready list (the policy keys its deques on it).
  [[nodiscard]] Priority priority() const { return priority_; }

  [[nodiscard]] TaskState state() const {
    return state_.load(std::memory_order_acquire);
  }
  void set_state(TaskState s) { state_.store(s, std::memory_order_release); }

  /// Atomically takes the task out of the ready set: CAS kCreated/kReady ->
  /// kRunning. Exactly one caller wins; losers must not run the task.
  [[nodiscard]] bool try_claim() {
    TaskState s = state_.load(std::memory_order_relaxed);
    while (s == TaskState::kCreated || s == TaskState::kReady) {
      if (state_.compare_exchange_weak(s, TaskState::kRunning,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Runs the task body. Must be called exactly once, by the claim winner.
  void* invoke() { return body_(input_); }

  [[nodiscard]] void* input() const { return input_; }

  [[nodiscard]] void* result() const { return result_; }
  void set_result(void* r) { result_ = r; }

  /// Join budget left. Monitoring only: joiners must use try_consume_join.
  [[nodiscard]] int joins_remaining() const {
    return joins_remaining_.load(std::memory_order_acquire);
  }

  /// Atomically consumes one join. Returns the budget remaining *after*
  /// this consumption (0 means the caller performed the last join and must
  /// retire the task), or -1 when the budget was already exhausted.
  [[nodiscard]] int try_consume_join() {
    int j = joins_remaining_.load(std::memory_order_relaxed);
    while (j > 0) {
      if (joins_remaining_.compare_exchange_weak(j, j - 1,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed)) {
        return j - 1;
      }
    }
    return -1;
  }

  /// Keep-alive reference owned by the ready deque entry. The lock-free
  /// policy stores raw Task* in its deques; this self-reference is set by
  /// push and cleared exactly once by whichever pop/steal removes the entry
  /// (claimed or stale), so a Task* sitting in a deque can never dangle.
  void set_ready_guard(TaskPtr self) { ready_guard_ = std::move(self); }
  [[nodiscard]] TaskPtr take_ready_guard() { return std::move(ready_guard_); }

  /// The id of the flow currently carrying this task's code: starts as the
  /// task id and advances to the continuation id each time the flow splits
  /// at a blocking join (trace bookkeeping, paper Figure 2).
  [[nodiscard]] TaskId flow_id() const {
    return flow_id_.load(std::memory_order_relaxed);
  }
  void set_flow_id(TaskId id) {
    flow_id_.store(id, std::memory_order_relaxed);
  }

  /// Execution duration in nanoseconds (0 until finished; for trace/costs).
  [[nodiscard]] std::int64_t exec_ns() const {
    return exec_ns_.load(std::memory_order_relaxed);
  }
  void set_exec_ns(std::int64_t ns) {
    exec_ns_.store(ns, std::memory_order_relaxed);
  }

 private:
  friend class Scheduler;  // intrusive live-registry links (see below)

  const TaskId id_;
  TaskBody body_;
  void* input_ = nullptr;
  void* result_ = nullptr;
  const TaskAttributes attr_;
  const TaskId parent_;
  const std::uint32_t level_;
  std::atomic<int> joins_remaining_;
  TaskContextPtr ctx_;
  Priority priority_;
  std::uint32_t pool_bytes_ = 0;  ///< job-charged block size (see dtor)
  TaskPtr ready_guard_;
  /// Intrusive hooks of the scheduler's sharded live-task registry: links
  /// into the owning shard's list plus a strong self-reference while
  /// registered. Registering a task this way costs no allocation, unlike a
  /// map node per task (guarded by the shard mutex; see scheduler.hpp).
  Task* reg_prev_ = nullptr;
  Task* reg_next_ = nullptr;
  TaskPtr registry_guard_;
  std::atomic<TaskId> flow_id_;
  std::atomic<TaskState> state_{TaskState::kCreated};
  std::atomic<std::int64_t> exec_ns_{0};
};

/// Thrown by athread_exit() to unwind a task body early; caught by the VP.
struct TaskExit {
  void* result;
};

}  // namespace anahy
