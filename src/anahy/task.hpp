// The unit of concurrency: an Anahy task (the paper's "thread Anahy").
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "anahy/attr.hpp"
#include "anahy/types.hpp"

namespace anahy {

class Task;
using TaskPtr = std::shared_ptr<Task>;

/// A task body receives an opaque input pointer and returns an opaque result
/// pointer, exactly like a POSIX thread start routine (`void* f(void*)`).
using TaskBody = std::function<void*(void*)>;

/// A forked flow of execution plus its dataflow bookkeeping.
///
/// Tasks are created by `fork` (athread_create), enter the ready list, are
/// executed by a virtual processor, and park their result in the finished
/// list until the declared number of `join`s consumes it. All mutable state
/// transitions are serialized by the scheduler; the state field itself is
/// atomic so monitors/tests may observe it without locks.
class Task {
 public:
  Task(TaskId id, TaskBody body, void* input, const TaskAttributes& attr,
       TaskId parent, std::uint32_t level)
      : id_(id),
        body_(std::move(body)),
        input_(input),
        attr_(attr),
        parent_(parent),
        level_(level),
        joins_remaining_(attr.join_number()),
        flow_id_(id) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  [[nodiscard]] TaskId id() const { return id_; }
  [[nodiscard]] TaskId parent() const { return parent_; }

  /// Depth in the fork tree: the root flow is level 0, its forks level 1...
  /// (paper Figure 2 draws tasks by these levels).
  [[nodiscard]] std::uint32_t level() const { return level_; }

  [[nodiscard]] const TaskAttributes& attributes() const { return attr_; }

  [[nodiscard]] TaskState state() const {
    return state_.load(std::memory_order_acquire);
  }
  void set_state(TaskState s) { state_.store(s, std::memory_order_release); }

  /// Runs the task body. Must be called exactly once, by the owning VP.
  void* invoke() { return body_(input_); }

  [[nodiscard]] void* input() const { return input_; }

  [[nodiscard]] void* result() const { return result_; }
  void set_result(void* r) { result_ = r; }

  /// Join budget left; guarded by the scheduler mutex.
  [[nodiscard]] int joins_remaining() const { return joins_remaining_; }
  void consume_join() { --joins_remaining_; }

  /// The id of the flow currently carrying this task's code: starts as the
  /// task id and advances to the continuation id each time the flow splits
  /// at a blocking join (trace bookkeeping, paper Figure 2).
  [[nodiscard]] TaskId flow_id() const {
    return flow_id_.load(std::memory_order_relaxed);
  }
  void set_flow_id(TaskId id) {
    flow_id_.store(id, std::memory_order_relaxed);
  }

  /// Execution duration in nanoseconds (0 until finished; for trace/costs).
  [[nodiscard]] std::int64_t exec_ns() const {
    return exec_ns_.load(std::memory_order_relaxed);
  }
  void set_exec_ns(std::int64_t ns) {
    exec_ns_.store(ns, std::memory_order_relaxed);
  }

 private:
  const TaskId id_;
  TaskBody body_;
  void* input_ = nullptr;
  void* result_ = nullptr;
  const TaskAttributes attr_;
  const TaskId parent_;
  const std::uint32_t level_;
  int joins_remaining_;
  std::atomic<TaskId> flow_id_;
  std::atomic<TaskState> state_{TaskState::kCreated};
  std::atomic<std::int64_t> exec_ns_{0};
};

/// Thrown by athread_exit() to unwind a task body early; caught by the VP.
struct TaskExit {
  void* result;
};

}  // namespace anahy
