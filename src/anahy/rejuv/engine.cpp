#include "anahy/rejuv/engine.hpp"

#include <sstream>

#include "anahy/task_pool.hpp"

namespace anahy::rejuv {

std::string CycleReport::summary() const {
  std::ostringstream os;
  os << "reaped " << tasks_reaped << " task(s) (" << reaped_bytes
     << " B), trimmed " << trimmed_bytes << " B, restarted " << vps_restarted
     << " VP(s), arena " << arena_before << " -> " << arena_after << " B";
  return os.str();
}

CycleReport RejuvEngine::cycle() {
  std::lock_guard lock(mu_);
  CycleReport rep;
  rep.arena_before = pool_snapshot().arena_bytes;

  // Reap first: the stranded blocks must be free before the trim and the
  // rolling restarts can hand them back to the system.
  const Scheduler::ReapResult reaped = rt_.scheduler().reap_orphans();
  rep.tasks_reaped = reaped.tasks;
  rep.reaped_bytes = reaped.bytes;

  // The reaped blocks were freed on *this* thread, so they sit in this
  // thread's cache; trim it directly.
  rep.trimmed_bytes = pool_trim_thread_cache();

  // Rolling quiesce-and-restart, one VP at a time so the server stays
  // live. Each exiting worker flushes its own cache on teardown.
  const int workers = rt_.worker_threads();
  for (int slot = 0; slot < workers; ++slot)
    if (rt_.restart_vp(slot)) ++rep.vps_restarted;

  rep.arena_after = pool_snapshot().arena_bytes;
  cycles_.fetch_add(1, std::memory_order_relaxed);
  return rep;
}

}  // namespace anahy::rejuv
