// anahy::rejuv::RejuvEngine — one online rejuvenation cycle
// (docs/REJUV.md).
//
// Classic software rejuvenation restarts the whole process; this engine
// does it *online*, inside a live server, in three steps that together
// undo what a leaking workload did to the task pool:
//
//  1. Reap — Scheduler::reap_orphans() retires every finished task still
//     pinned in the live-task registry by an unconsumed join budget whose
//     job has already resolved. Those are the stranded control blocks the
//     ANAHY-A001/A004 detectors see as linear heap growth; retiring them
//     drops the last reference and frees their pool blocks.
//  2. Trim — the freed blocks land in the calling thread's free-list
//     cache; pool_trim_thread_cache() hands them back to the system so
//     the arena actually shrinks instead of turning into A002-shaped
//     slack.
//  3. Rolling restart — each worker VP is stopped, joined and replaced
//     one at a time (Runtime::restart_vp). The server stays live — the
//     other VPs keep serving, ready deques survive with their slots — and
//     each exiting thread's cache flush returns its slack too.
//
// Exactly-once for in-flight jobs is preserved throughout: the reaper
// only touches finished tasks of resolved jobs, and a VP restart never
// drops queued tasks (the deque belongs to the slot, not the thread).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "anahy/runtime.hpp"

namespace anahy::rejuv {

/// What one cycle did, for counters, logs and the kRejuvenate reply.
struct CycleReport {
  int vps_restarted = 0;
  std::uint64_t tasks_reaped = 0;   ///< stranded tasks retired
  std::uint64_t reaped_bytes = 0;   ///< pool bytes those tasks held
  std::uint64_t trimmed_bytes = 0;  ///< cache bytes handed back to the OS
  std::uint64_t arena_before = 0;   ///< pool arena bytes entering the cycle
  std::uint64_t arena_after = 0;    ///< and leaving it

  /// Arena bytes the cycle actually reclaimed (clamped: concurrent
  /// traffic may legitimately grow the arena mid-cycle).
  [[nodiscard]] std::uint64_t arena_reclaimed() const {
    return arena_before > arena_after ? arena_before - arena_after : 0;
  }

  /// One-line human summary ("reaped N tasks (B bytes), restarted V VPs,
  /// arena X -> Y").
  [[nodiscard]] std::string summary() const;
};

class RejuvEngine {
 public:
  explicit RejuvEngine(Runtime& rt) : rt_(rt) {}

  RejuvEngine(const RejuvEngine&) = delete;
  RejuvEngine& operator=(const RejuvEngine&) = delete;

  /// Runs one full cycle. Serialized internally (concurrent operator
  /// commands and policy trips queue up rather than interleave restarts);
  /// safe from any non-VP thread. Blocks until the last VP was replaced.
  CycleReport cycle();

  [[nodiscard]] std::uint64_t cycles() const {
    return cycles_.load(std::memory_order_relaxed);
  }

 private:
  Runtime& rt_;
  std::mutex mu_;  // one cycle at a time
  std::atomic<std::uint64_t> cycles_{0};
};

}  // namespace anahy::rejuv
