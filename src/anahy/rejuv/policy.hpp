// anahy::rejuv::RejuvPolicy — when to rejuvenate (docs/REJUV.md).
//
// The policy closes the loop the aging pass opened: instead of static
// thresholds on raw gauges, it re-runs the ANAHY-A001/A002/A003 detectors
// over the server's rolling recorder window (the online-telemetry approach
// of "Automatic Detection of Performance Anomalies in Task-Parallel
// Programs", PAPERS.md) and trips a rejuvenation cycle when the window
// shows sustained heap growth, fragmentation creep, or heap-correlated
// latency creep. A cooldown keeps a still-dirty window from re-tripping
// before the next cycle's effect is even sampled.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "anahy/aging/analyze.hpp"

namespace anahy::rejuv {

struct PolicyOptions {
  /// Detector thresholds applied to the rolling window. The defaults are
  /// the offline pass's own (docs/AGING.md); deployments tighten
  /// heap_slope_min to rejuvenate earlier.
  aging::AnalyzeOptions analyze;

  /// Samples the window must hold before any verdict (a cold window of a
  /// few points cannot carry a trend).
  std::size_t min_points = 32;

  /// Minimum time between trips. A rejuvenation cycle's effect only shows
  /// up in the window after more samples land; tripping again off the
  /// same pre-cycle samples would thrash the VPs.
  std::int64_t cooldown_ns = 5'000'000'000;

  /// Which detectors may trip a cycle (A001 heap growth, A002
  /// fragmentation creep, A003 correlated latency creep).
  bool trip_on_heap_growth = true;
  bool trip_on_frag_creep = true;
  bool trip_on_latency_creep = true;
};

class RejuvPolicy {
 public:
  struct Verdict {
    bool trip = false;
    std::string reason;  ///< the finding that tripped (empty otherwise)
  };

  explicit RejuvPolicy(PolicyOptions opts = {}) : opts_(opts) {}

  /// Evaluates one already-computed analysis of the rolling window.
  /// Stateful only for the cooldown clock; safe to call from one thread
  /// (the server's policy thread).
  Verdict evaluate(const aging::Analysis& a, std::int64_t now_ns);

  [[nodiscard]] const PolicyOptions& options() const { return opts_; }
  [[nodiscard]] std::uint64_t trips() const { return trips_; }

 private:
  PolicyOptions opts_;
  std::int64_t last_trip_ns_ = std::numeric_limits<std::int64_t>::min();
  std::uint64_t trips_ = 0;
};

}  // namespace anahy::rejuv
