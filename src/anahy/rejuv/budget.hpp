// anahy::rejuv::MemoryBudget — the memory-pressure model behind admission
// control (docs/REJUV.md).
//
// The title paper's aging story ends in an outage when a leaking server is
// allowed to take work all the way to collapse. The budget is the first
// line of defense: a total task-pool byte budget plus a *per-class share
// ladder*, in the spirit of the MemoryBalancer exemplar (SNIPPETS.md) —
// each priority class is scored against its own slice of the budget, so as
// live pool bytes climb, batch work is shed first, then normal, while
// high-priority traffic keeps flowing until the hard total. Graceful
// degradation, never a cliff.
//
// The score is forward-looking: it asks "if one more job of this class
// landed, where would we be?" using a per-class EWMA of observed per-job
// pool peaks (ServerStats pool_peak_bytes history) — a class whose jobs
// fork wide DAGs is shed earlier than one submitting tiny jobs, at the
// same live occupancy.
//
// total_bytes == kAuto sizes the budget from the deployment environment at
// construction: cgroup v2 memory.max when the process runs in a limited
// cgroup, falling back to a multiple of current RSS (/proc/self/statm),
// falling back to disabled. A mesh operator thus gets a per-node budget
// that tracks the container limit with zero configuration.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "anahy/types.hpp"

namespace anahy::rejuv {

class MemoryBudget {
 public:
  struct Options {
    /// Total task-pool bytes the server is budgeted for. 0 disables the
    /// budget entirely (every score is 0, nothing is ever over). kAuto
    /// resolves from the environment at construction (see auto_total_bytes).
    std::uint64_t total_bytes = 0;

    /// Fraction of `total_bytes` each priority class may fill before its
    /// admissions are shed (indexed by Priority). High gets the whole
    /// budget — it is only ever shed at the hard total — while batch is
    /// shed at half pressure and normal in between: the ladder that turns
    /// rising memory pressure into graceful degradation.
    std::array<double, kNumPriorities> class_share{1.0, 0.75, 0.5};

    /// EWMA smoothing of the per-class per-job peak history.
    double ewma_alpha = 0.2;

    /// Prior for a class that has not completed a job yet (a handful of
    /// pool blocks — one root task plus a small DAG).
    std::uint64_t default_job_bytes = 4 * 1024;

    /// Fraction of the resolved container limit handed to the task pool
    /// when total_bytes == kAuto (the rest is code, stacks, transport
    /// buffers and the allocator's own slack).
    double auto_fraction = 0.5;

    /// Injectable file paths for auto-sizing, so tests can point the
    /// resolver at fake cgroup/statm files. Empty = the real ones.
    std::string cgroup_max_path;  ///< default /sys/fs/cgroup/memory.max
    std::string statm_path;       ///< default /proc/self/statm
  };

  /// Sentinel for Options::total_bytes: resolve the budget from the
  /// environment at construction.
  static constexpr std::uint64_t kAuto = ~std::uint64_t{0};

  /// The environment-derived total `kAuto` resolves to, before
  /// auto_fraction is applied: cgroup v2 memory.max if present and not
  /// "max", else 8x current RSS, else 0 (disabled). Exposed for tests and
  /// the anahy-aging CLI.
  [[nodiscard]] static std::uint64_t auto_total_bytes(
      const std::string& cgroup_max_path, const std::string& statm_path);

  MemoryBudget() : MemoryBudget(Options{}) {}
  explicit MemoryBudget(Options opts);

  /// Folds one completed job's observed pool peak into the class's EWMA.
  void note_job_peak(Priority cls, std::uint64_t peak_bytes);

  /// The EWMA estimate of what one more `cls` job will cost.
  [[nodiscard]] std::uint64_t expected_job_bytes(Priority cls) const;

  /// MemoryBalancer-style pressure score for admitting one more `cls` job
  /// at `live_bytes` of pool occupancy: projected occupancy over the
  /// class's budget slice. >= 1.0 means over budget; always 0 when the
  /// budget is disabled (total_bytes == 0).
  [[nodiscard]] double score(std::uint64_t live_bytes, Priority cls) const;

  [[nodiscard]] bool over(std::uint64_t live_bytes, Priority cls) const {
    return score(live_bytes, cls) >= 1.0;
  }

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] bool enabled() const { return opts_.total_bytes > 0; }

 private:
  Options opts_;
  /// EWMA state (cold path: one update per resolved job). Guarded by a
  /// leaf mutex so callers may hold server locks.
  mutable std::mutex mu_;
  std::array<double, kNumPriorities> ewma_peak_{};
  std::array<bool, kNumPriorities> have_peak_{};
};

}  // namespace anahy::rejuv
