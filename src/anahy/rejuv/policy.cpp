#include "anahy/rejuv/policy.hpp"

namespace anahy::rejuv {

RejuvPolicy::Verdict RejuvPolicy::evaluate(const aging::Analysis& a,
                                           std::int64_t now_ns) {
  Verdict v;
  if (a.points < opts_.min_points) return v;
  if (last_trip_ns_ != std::numeric_limits<std::int64_t>::min() &&
      now_ns - last_trip_ns_ < opts_.cooldown_ns)
    return v;

  for (const aging::Finding& f : a.findings) {
    const bool armed =
        (opts_.trip_on_heap_growth && f.code == aging::code::kHeapGrowth) ||
        (opts_.trip_on_frag_creep &&
         f.code == aging::code::kFragmentationCreep) ||
        (opts_.trip_on_latency_creep &&
         f.code == aging::code::kLatencyCreep);
    if (!armed) continue;
    v.trip = true;
    v.reason = f.code + ": " + f.detail;
    last_trip_ns_ = now_ns;
    ++trips_;
    break;
  }
  return v;
}

}  // namespace anahy::rejuv
