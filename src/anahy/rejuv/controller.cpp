#include "anahy/rejuv/controller.hpp"

#include <bit>

namespace anahy::rejuv {

AdmissionController::AdmissionController(ControllerOptions opts)
    : opts_(opts), budget_(opts.budget) {}

void AdmissionController::refresh(const PoolSnapshot& pool) {
  if (!budget_.enabled()) return;
  for (std::size_t c = 0; c < kNumPriorities; ++c) {
    const auto cls = static_cast<Priority>(c);
    const double s = budget_.score(pool.live_bytes, cls);
    score_bits_[c].store(std::bit_cast<std::uint64_t>(s),
                         std::memory_order_relaxed);
    over_[c].store(s >= 1.0, std::memory_order_relaxed);
  }
}

double AdmissionController::last_score(Priority cls) const {
  return std::bit_cast<double>(
      score_bits_[static_cast<std::size_t>(cls)].load(
          std::memory_order_relaxed));
}

}  // namespace anahy::rejuv
