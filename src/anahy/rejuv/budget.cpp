#include "anahy/rejuv/budget.hpp"

#include <algorithm>

namespace anahy::rejuv {

MemoryBudget::MemoryBudget(Options opts) : opts_(opts) {
  for (double& s : opts_.class_share) s = std::clamp(s, 0.0, 1.0);
  opts_.ewma_alpha = std::clamp(opts_.ewma_alpha, 0.0, 1.0);
}

void MemoryBudget::note_job_peak(Priority cls, std::uint64_t peak_bytes) {
  const auto c = static_cast<std::size_t>(cls);
  std::lock_guard lock(mu_);
  if (!have_peak_[c]) {
    ewma_peak_[c] = static_cast<double>(peak_bytes);
    have_peak_[c] = true;
    return;
  }
  ewma_peak_[c] += opts_.ewma_alpha *
                   (static_cast<double>(peak_bytes) - ewma_peak_[c]);
}

std::uint64_t MemoryBudget::expected_job_bytes(Priority cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::lock_guard lock(mu_);
  if (!have_peak_[c]) return opts_.default_job_bytes;
  return static_cast<std::uint64_t>(std::max(ewma_peak_[c], 0.0));
}

double MemoryBudget::score(std::uint64_t live_bytes, Priority cls) const {
  if (!enabled()) return 0.0;
  const double slice =
      opts_.class_share[static_cast<std::size_t>(cls)] *
      static_cast<double>(opts_.total_bytes);
  if (slice <= 0) return 1.0;  // a zero share admits nothing
  const double projected =
      static_cast<double>(live_bytes + expected_job_bytes(cls));
  return projected / slice;
}

}  // namespace anahy::rejuv
