#include "anahy/rejuv/budget.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace anahy::rejuv {
namespace {

/// First line of a small proc/sys file, "" when unreadable.
std::string read_line(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "re");
  if (f == nullptr) return {};
  char buf[256];
  std::string line;
  if (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
      line.pop_back();
  }
  std::fclose(f);
  return line;
}

}  // namespace

std::uint64_t MemoryBudget::auto_total_bytes(
    const std::string& cgroup_max_path, const std::string& statm_path) {
  // cgroup v2: memory.max holds the hard limit in bytes, or the literal
  // "max" when the group is unlimited.
  const std::string cg = read_line(
      cgroup_max_path.empty() ? "/sys/fs/cgroup/memory.max" : cgroup_max_path);
  if (!cg.empty() && cg != "max") {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cg.c_str(), &end, 10);
    if (end != cg.c_str() && v > 0) return static_cast<std::uint64_t>(v);
  }
  // No cgroup limit: anchor on current RSS (/proc/self/statm field 2,
  // pages). 8x leaves a leaking server real headroom before admission
  // bites while still tripping long before the host swaps.
  const std::string sm =
      read_line(statm_path.empty() ? "/proc/self/statm" : statm_path);
  if (!sm.empty()) {
    unsigned long long size_pages = 0, rss_pages = 0;
    if (std::sscanf(sm.c_str(), "%llu %llu", &size_pages, &rss_pages) == 2 &&
        rss_pages > 0) {
      const long page = sysconf(_SC_PAGESIZE);
      const std::uint64_t page_bytes = page > 0 ? static_cast<std::uint64_t>(page) : 4096;
      return 8 * rss_pages * page_bytes;
    }
  }
  return 0;  // nothing to size from: budget disabled
}

MemoryBudget::MemoryBudget(Options opts) : opts_(opts) {
  for (double& s : opts_.class_share) s = std::clamp(s, 0.0, 1.0);
  opts_.ewma_alpha = std::clamp(opts_.ewma_alpha, 0.0, 1.0);
  opts_.auto_fraction = std::clamp(opts_.auto_fraction, 0.0, 1.0);
  if (opts_.total_bytes == kAuto) {
    const std::uint64_t env =
        auto_total_bytes(opts_.cgroup_max_path, opts_.statm_path);
    opts_.total_bytes = static_cast<std::uint64_t>(
        static_cast<double>(env) * opts_.auto_fraction);
  }
}

void MemoryBudget::note_job_peak(Priority cls, std::uint64_t peak_bytes) {
  const auto c = static_cast<std::size_t>(cls);
  std::lock_guard lock(mu_);
  if (!have_peak_[c]) {
    ewma_peak_[c] = static_cast<double>(peak_bytes);
    have_peak_[c] = true;
    return;
  }
  ewma_peak_[c] += opts_.ewma_alpha *
                   (static_cast<double>(peak_bytes) - ewma_peak_[c]);
}

std::uint64_t MemoryBudget::expected_job_bytes(Priority cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::lock_guard lock(mu_);
  if (!have_peak_[c]) return opts_.default_job_bytes;
  return static_cast<std::uint64_t>(std::max(ewma_peak_[c], 0.0));
}

double MemoryBudget::score(std::uint64_t live_bytes, Priority cls) const {
  if (!enabled()) return 0.0;
  const double slice =
      opts_.class_share[static_cast<std::size_t>(cls)] *
      static_cast<double>(opts_.total_bytes);
  if (slice <= 0) return 1.0;  // a zero share admits nothing
  const double projected =
      static_cast<double>(live_bytes + expected_job_bytes(cls));
  return projected / slice;
}

}  // namespace anahy::rejuv
