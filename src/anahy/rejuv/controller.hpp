// anahy::rejuv::AdmissionController — the budget, cached for the submit
// fast path (docs/REJUV.md).
//
// JobServer::submit() sits on the serve hot path and the bench bar says
// the admission check may cost at most ~2% (bench/rejuv_soak). Scoring a
// MemoryBudget needs a pool_snapshot() — a few hundred relaxed loads —
// which is far too much per submit. The controller therefore caches one
// pre-computed verdict per priority class in an atomic, and submit() pays
// exactly one relaxed load. The cache is refreshed from a fresh snapshot
// at the natural pressure-change points: job completion, aging samples,
// rejuvenation cycles and the dispatcher's deferral ticks.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "anahy/rejuv/budget.hpp"
#include "anahy/task_pool.hpp"
#include "anahy/types.hpp"

namespace anahy::rejuv {

/// What submit() should do with one job of a given class right now.
enum class Decision : std::uint8_t {
  kAdmit,   ///< under budget: enqueue normally
  kDefer,   ///< over budget, batch class: enqueue but hold until the
            ///< pressure clears or the job's defer deadline passes
  kReject,  ///< over budget: resolve kOverloaded immediately
};

struct ControllerOptions {
  MemoryBudget::Options budget;  ///< total_bytes == 0 disables the controller

  /// How an over-budget batch submit is shed. Deferral matches the kBlock
  /// admission temperament (absorb and wait), rejection matches kReject
  /// (fail fast); the server maps its admission policy here by default.
  enum class BatchShed : std::uint8_t { kDefer, kReject };
  BatchShed batch_shed = BatchShed::kDefer;

  /// Upper bound on how long a deferred batch job may be held past its
  /// submit before the dispatcher runs it regardless (bounded deferral,
  /// never starvation; the job's own deadline still caps it first).
  std::int64_t max_defer_ns = 500'000'000;
};

class AdmissionController {
 public:
  explicit AdmissionController(ControllerOptions opts);

  /// Fast path — one relaxed atomic load. High never sheds below the hard
  /// total; normal sheds by rejection; batch sheds per `batch_shed`.
  [[nodiscard]] Decision admit(Priority cls) const {
    if (!over_[static_cast<std::size_t>(cls)].load(std::memory_order_relaxed))
      return Decision::kAdmit;
    switch (cls) {
      case Priority::kHigh: return Decision::kAdmit;
      case Priority::kBatch:
        return opts_.batch_shed == ControllerOptions::BatchShed::kDefer
                   ? Decision::kDefer
                   : Decision::kReject;
      default: return Decision::kReject;
    }
  }

  /// True when `cls` is currently scored over its budget slice (the
  /// dispatcher's hold test for deferred batch work).
  [[nodiscard]] bool over(Priority cls) const {
    return over_[static_cast<std::size_t>(cls)].load(
        std::memory_order_relaxed);
  }

  /// Recomputes the cached per-class verdicts from a live pool snapshot.
  /// Cheap enough for per-job-completion cadence; wait-free readers.
  void refresh(const PoolSnapshot& pool);

  /// Forwards a completed job's pool peak into the budget's EWMA history.
  void note_job_peak(Priority cls, std::uint64_t peak_bytes) {
    budget_.note_job_peak(cls, peak_bytes);
  }

  /// The score of the last refresh (observability; bit-cast through
  /// uint64 so the read stays lock-free).
  [[nodiscard]] double last_score(Priority cls) const;

  [[nodiscard]] const MemoryBudget& budget() const { return budget_; }
  [[nodiscard]] const ControllerOptions& options() const { return opts_; }
  [[nodiscard]] bool enabled() const { return budget_.enabled(); }

 private:
  ControllerOptions opts_;
  MemoryBudget budget_;
  std::array<std::atomic<bool>, kNumPriorities> over_{};
  std::array<std::atomic<std::uint64_t>, kNumPriorities> score_bits_{};
};

}  // namespace anahy::rejuv
