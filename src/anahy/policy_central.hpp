// Centralized single-queue policies: FIFO (breadth-first) and LIFO
// (depth-first). These are the literal reading of the paper's "list of
// ready tasks" description.
#pragma once

#include <deque>
#include <mutex>

#include "anahy/policy.hpp"

namespace anahy {

/// One mutex-guarded deque shared by all VPs. `kFifo` pops the oldest task,
/// `kLifo` the newest (which approximates depth-first execution and keeps
/// the working set small on recursive workloads such as Fibonacci).
class CentralQueuePolicy final : public SchedulingPolicy {
 public:
  explicit CentralQueuePolicy(PolicyKind kind);

  void push(TaskPtr task, int vp) override;
  TaskPtr pop(int vp) override;
  bool remove_specific(const TaskPtr& task, int vp) override;
  [[nodiscard]] std::size_t approx_size() const override;
  [[nodiscard]] PolicyKind kind() const override { return kind_; }

 private:
  const PolicyKind kind_;
  mutable std::mutex mu_;
  std::deque<TaskPtr> queue_;
};

}  // namespace anahy
