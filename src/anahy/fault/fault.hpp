// anahy::fault — deterministic fault injection for the cluster transport.
//
// FaultyTransport decorates any cluster::Transport and misbehaves on
// purpose: it drops, duplicates, delays (and thereby reorders), truncates
// and bit-corrupts outgoing frames, and can sever the link to a peer — on
// a scriptable schedule or by hand. The serve/cluster stack must shrug all
// of this off (docs/FAULT.md): corrupted frames die on the CRC envelope,
// lost requests are retried, retries are deduplicated, dead peers are
// reaped.
//
// Determinism is the point. Every decision derives from splitmix64 over
// (seed, operation index) — not from wall-clock time, thread interleaving
// or rand(). Two runs with the same seed and the same per-endpoint send
// sequence inject the *same* faults on the *same* frames, which is what
// makes a chaos-test failure replayable: re-run with the seed the test
// printed and the exact misbehavior comes back. (What the scheduler does
// with the surviving frames still varies run to run; the injection itself
// does not.)
//
// All faults act on the send path of the decorated endpoint, where the
// frame and its destination are known. recv() only forwards (plus releases
// frames the injector is holding back for delayed delivery).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "anahy/observe/exposition.hpp"
#include "cluster/epoll_transport.hpp"
#include "cluster/transport.hpp"

namespace anahy::fault {

/// Per-fault-kind probabilities (0.0 = never, 1.0 = always) and delay
/// bounds. Probabilities are evaluated independently in a fixed order —
/// drop, duplicate, corrupt, truncate, delay — so a frame can be both
/// duplicated and corrupted, but a dropped frame suffers nothing else.
struct FaultProfile {
  std::uint64_t seed = 1;   ///< same seed → same fault sequence
  double drop = 0.0;        ///< frame vanishes
  double duplicate = 0.0;   ///< frame delivered twice
  double corrupt = 0.0;     ///< one bit of the frame is flipped
  double truncate = 0.0;    ///< frame loses its tail
  double delay = 0.0;       ///< frame held back (reorders past later sends)
  std::chrono::microseconds delay_min{200};
  std::chrono::microseconds delay_max{2'000};
};

/// What the injector has done so far (monotonic).
struct FaultStats {
  std::uint64_t sends = 0;        ///< send() calls observed
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t truncations = 0;
  std::uint64_t delays = 0;
  std::uint64_t severed_sends = 0;  ///< sends discarded on a severed link
};

/// A scheduled link cut: once this endpoint has performed `after_op`
/// send operations, frames to `peer` start disappearing (until heal()).
struct SeverEvent {
  std::uint64_t after_op = 0;
  int peer = 0;
};

class FaultyTransport : public cluster::Transport,
                        public cluster::WireStatsSource {
 public:
  /// Takes ownership of the real endpoint it decorates.
  FaultyTransport(std::unique_ptr<cluster::Transport> inner,
                  FaultProfile profile, std::vector<SeverEvent> severs = {});
  ~FaultyTransport() override;

  void send(int dst, std::vector<std::uint8_t> frame) override;
  bool recv(std::vector<std::uint8_t>& frame,
            std::chrono::microseconds timeout) override;
  [[nodiscard]] int node_id() const override;
  [[nodiscard]] int node_count() const override;

  /// Cuts the link to `peer` immediately: subsequent sends to it vanish.
  void sever(int peer);
  /// Restores the link to `peer`.
  void heal(int peer);

  /// Send operations performed so far (the op index the next send gets).
  [[nodiscard]] std::uint64_t op_index() const;

  [[nodiscard]] FaultStats stats() const;

  /// The injected-fault tallies as exposition counters
  /// (`anahy_fault_injected_total{kind="drop"} …`) — followed by the
  /// decorated endpoint's wire rows when it is an event-loop transport,
  /// so wrapping never hides `anahy_wire_*` — ready to pass as the
  /// `counters` argument of observe::render_text.
  [[nodiscard]] std::vector<observe::ExtraCounter> counters() const;

  /// Passthrough of the decorated endpoint's wire counters (all-zero
  /// when the inner transport is not an event-loop endpoint).
  [[nodiscard]] cluster::WireCounters wire_counters() const override;

 private:
  /// Flushes delayed frames whose release time has come. Caller holds mu_.
  void flush_delayed_locked(std::chrono::steady_clock::time_point now);

  struct Delayed {
    std::chrono::steady_clock::time_point release;
    int dst;
    std::vector<std::uint8_t> frame;
  };

  std::unique_ptr<cluster::Transport> inner_;
  FaultProfile profile_;
  mutable std::mutex mu_;
  std::uint64_t ops_ = 0;
  FaultStats stats_{};
  std::set<int> severed_;
  std::vector<SeverEvent> sever_schedule_;  ///< sorted by after_op
  std::vector<Delayed> delayed_;
};

}  // namespace anahy::fault
