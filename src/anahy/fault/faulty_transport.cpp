#include "anahy/fault/fault.hpp"

#include <algorithm>

namespace anahy::fault {
namespace {

/// splitmix64 step — the whole injector's randomness. Seeded per send
/// operation from (seed, op index) so decisions are a pure function of the
/// send sequence, never of timing.
std::uint64_t mix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform draw in [0, 1).
double u01(std::uint64_t& state) {
  return static_cast<double>(mix(state) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<cluster::Transport> inner,
                                 FaultProfile profile,
                                 std::vector<SeverEvent> severs)
    : inner_(std::move(inner)),
      profile_(profile),
      sever_schedule_(std::move(severs)) {
  std::sort(sever_schedule_.begin(), sever_schedule_.end(),
            [](const SeverEvent& a, const SeverEvent& b) {
              return a.after_op < b.after_op;
            });
}

FaultyTransport::~FaultyTransport() = default;

void FaultyTransport::send(int dst, std::vector<std::uint8_t> frame) {
  std::vector<std::pair<int, std::vector<std::uint8_t>>> deliver;
  {
    std::lock_guard lock(mu_);
    const std::uint64_t op = ops_++;
    ++stats_.sends;

    // Apply the sever schedule up to this operation.
    while (!sever_schedule_.empty() &&
           sever_schedule_.front().after_op <= op) {
      severed_.insert(sever_schedule_.front().peer);
      sever_schedule_.erase(sever_schedule_.begin());
    }

    flush_delayed_locked(std::chrono::steady_clock::now());

    if (severed_.count(dst) != 0) {
      ++stats_.severed_sends;
      return;
    }

    // Per-op decision stream: a pure function of (seed, op).
    std::uint64_t rng = profile_.seed ^ (op * 0xD1B54A32D192ED03ull);

    if (u01(rng) < profile_.drop) {
      ++stats_.drops;
      return;
    }
    const bool dup = u01(rng) < profile_.duplicate;
    if (dup) ++stats_.duplicates;

    if (u01(rng) < profile_.corrupt && !frame.empty()) {
      const std::uint64_t bit = mix(rng) % (frame.size() * 8);
      frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      ++stats_.corruptions;
    }
    if (u01(rng) < profile_.truncate && !frame.empty()) {
      frame.resize(mix(rng) % frame.size());  // loses at least one byte
      ++stats_.truncations;
    }

    if (u01(rng) < profile_.delay) {
      // Held back; released by a later send() or recv() on this endpoint.
      // The hold duration is deterministic; the release point depends on
      // when the endpoint is next pumped, like a real slow link.
      const auto lo = profile_.delay_min.count();
      const auto hi = std::max(profile_.delay_max.count(), lo + 1);
      const auto hold = std::chrono::microseconds{
          lo + static_cast<std::int64_t>(
                   mix(rng) % static_cast<std::uint64_t>(hi - lo))};
      ++stats_.delays;
      delayed_.push_back(
          {std::chrono::steady_clock::now() + hold, dst, std::move(frame)});
      if (dup) {
        // The duplicate of a delayed frame goes out immediately — that is
        // the nastier ordering anyway.
        deliver.push_back({dst, delayed_.back().frame});
      }
    } else {
      if (dup) deliver.push_back({dst, frame});
      deliver.push_back({dst, std::move(frame)});
    }
  }
  // Actual sends happen outside mu_ so a slow inner transport does not
  // serialize concurrent senders more than it already would.
  for (auto& [to, f] : deliver) inner_->send(to, std::move(f));
}

bool FaultyTransport::recv(std::vector<std::uint8_t>& frame,
                           std::chrono::microseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    auto now = std::chrono::steady_clock::now();
    std::chrono::microseconds slice =
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
    {
      std::lock_guard lock(mu_);
      flush_delayed_locked(now);
      if (!delayed_.empty()) {
        // Wake early enough to release the next held frame on time.
        auto next = delayed_.front().release;
        for (const Delayed& d : delayed_) next = std::min(next, d.release);
        const auto until_next =
            std::chrono::duration_cast<std::chrono::microseconds>(next - now);
        slice = std::min(slice, std::max(until_next,
                                         std::chrono::microseconds{50}));
      }
    }
    if (slice.count() > 0 && inner_->recv(frame, slice)) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
  }
}

void FaultyTransport::flush_delayed_locked(
    std::chrono::steady_clock::time_point now) {
  auto due = std::partition(
      delayed_.begin(), delayed_.end(),
      [now](const Delayed& d) { return d.release > now; });
  for (auto it = due; it != delayed_.end(); ++it) {
    if (severed_.count(it->dst) != 0) {
      ++stats_.severed_sends;
      continue;
    }
    inner_->send(it->dst, std::move(it->frame));
  }
  delayed_.erase(due, delayed_.end());
}

int FaultyTransport::node_id() const { return inner_->node_id(); }

int FaultyTransport::node_count() const { return inner_->node_count(); }

void FaultyTransport::sever(int peer) {
  std::lock_guard lock(mu_);
  severed_.insert(peer);
}

void FaultyTransport::heal(int peer) {
  std::lock_guard lock(mu_);
  severed_.erase(peer);
}

std::uint64_t FaultyTransport::op_index() const {
  std::lock_guard lock(mu_);
  return ops_;
}

FaultStats FaultyTransport::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::vector<observe::ExtraCounter> FaultyTransport::counters() const {
  const FaultStats s = stats();
  std::vector<observe::ExtraCounter> rows{
      {"anahy_fault_sends_total", "", s.sends},
      {"anahy_fault_injected_total", "kind=\"drop\"", s.drops},
      {"anahy_fault_injected_total", "kind=\"duplicate\"", s.duplicates},
      {"anahy_fault_injected_total", "kind=\"corrupt\"", s.corruptions},
      {"anahy_fault_injected_total", "kind=\"truncate\"", s.truncations},
      {"anahy_fault_injected_total", "kind=\"delay\"", s.delays},
      {"anahy_fault_injected_total", "kind=\"severed\"", s.severed_sends},
  };
  // Decorating an event-loop endpoint must not hide its wire telemetry.
  if (dynamic_cast<const cluster::WireStatsSource*>(inner_.get()) != nullptr) {
    for (auto& row : cluster::wire_counter_rows(wire_counters()))
      rows.push_back(std::move(row));
  }
  return rows;
}

cluster::WireCounters FaultyTransport::wire_counters() const {
  const auto* src = dynamic_cast<const cluster::WireStatsSource*>(inner_.get());
  return src != nullptr ? src->wire_counters() : cluster::WireCounters{};
}

}  // namespace anahy::fault
