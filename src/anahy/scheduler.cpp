#include "anahy/scheduler.hpp"

#include <cassert>
#include <chrono>

#include "anahy/policy_steal.hpp"

namespace anahy {

thread_local std::vector<Scheduler::Frame> Scheduler::tls_frames_;
thread_local Scheduler::Frame Scheduler::tls_root_{nullptr, kRootTaskId, 0};
thread_local std::uint64_t Scheduler::tls_root_owner_ = 0;
thread_local int Scheduler::tls_vp_ = SchedulingPolicy::kExternalVp;

namespace {
std::atomic<std::uint64_t> g_scheduler_instances{0};
}  // namespace

Scheduler::Scheduler(const Options& opts)
    : instance_id_(g_scheduler_instances.fetch_add(1) + 1),
      opts_(opts),
      policy_(make_policy(opts.policy, opts.num_vps)) {
  trace_.set_enabled(opts.trace);
  if (opts.trace) {
    // The root flow (the paper's T0) exists before any fork.
    trace_.record_task(kRootTaskId, kInvalidTaskId, 0, false);
    trace_.record_label(kRootTaskId, "main");
  }
}

Scheduler::~Scheduler() = default;

void Scheduler::bind_thread_to_vp(int vp) { tls_vp_ = vp; }

Scheduler::Frame& Scheduler::root_frame() {
  if (tls_root_owner_ != instance_id_) {
    tls_root_owner_ = instance_id_;
    tls_root_ = Frame{nullptr, kRootTaskId, 0};
  }
  return tls_root_;
}

Scheduler::Frame& Scheduler::current_frame() {
  return tls_frames_.empty() ? root_frame() : tls_frames_.back();
}

TaskId Scheduler::current_flow_id() {
  // Outside any task frame this is the main flow. We report the stable
  // root id (T0) rather than its latest continuation id, which is what
  // the paper's athread_self means by "the main flow".
  return tls_frames_.empty() ? kRootTaskId : tls_frames_.back().flow_id;
}

std::size_t Scheduler::current_stack_depth() { return tls_frames_.size(); }

bool Scheduler::on_current_stack(const Task* task) {
  for (const Frame& f : tls_frames_)
    if (f.task == task) return true;
  return false;
}

TaskPtr Scheduler::create_task(TaskBody body, void* input,
                               const TaskAttributes& attr, std::string label) {
  Frame& f = current_frame();
  const TaskId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto task = std::make_shared<Task>(id, std::move(body), input, attr,
                                     f.flow_id, f.level + 1);
  task->set_state(TaskState::kReady);

  if (trace_.enabled()) {
    trace_.record_task(id, f.flow_id, f.level + 1, false);
    trace_.record_edge(f.flow_id, id, TraceEdgeKind::kFork);
    if (!label.empty()) trace_.record_label(id, std::move(label));
  }

  {
    // Insert + push under mu_ so sleeping VPs/joiners cannot miss the
    // wake-up (their predicates read the ready list under mu_).
    std::lock_guard lock(mu_);
    live_.emplace(id, task);
    policy_->push(task, tls_vp_);
    stats_.record_ready_len(policy_->approx_size());
  }
  stats_.on_task_created();
  ready_cv_.notify_one();
  join_cv_.notify_all();  // blocked joiners may help with the new task
  return task;
}

TaskPtr Scheduler::find(TaskId id) const {
  std::lock_guard lock(mu_);
  const auto it = live_.find(id);
  return it == live_.end() ? nullptr : it->second;
}

void Scheduler::run_task(const TaskPtr& task, int vp) {
  task->set_state(TaskState::kRunning);
  tls_frames_.push_back({task.get(), task->id(), task->level()});

  const std::int64_t trace_start =
      trace_.enabled() ? trace_.now_ns() : -1;
  const auto t0 = std::chrono::steady_clock::now();
  void* result = nullptr;
  try {
    result = task->invoke();
  } catch (const TaskExit& exit) {
    result = exit.result;
  } catch (...) {
    // Task bodies must not throw (POSIX semantics); restore the frame so
    // the failure is at least attributed to the right flow, then rethrow.
    tls_frames_.pop_back();
    throw;
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  tls_frames_.pop_back();

  task->set_result(result);
  task->set_exec_ns(ns);
  if (trace_start >= 0)
    trace_.record_exec_interval(task->id(), trace_start, ns);

  // Count the execution BEFORE the task becomes observable as finished, so
  // a joiner that consumes the result immediately already sees the counter.
  stats_.on_task_executed(vp == SchedulingPolicy::kExternalVp);

  {
    std::lock_guard lock(mu_);
    if (task->attributes().join_number() == 0) {
      // Detached task: nobody may join it; reclaim immediately.
      task->set_state(TaskState::kJoined);
      live_.erase(task->id());
    } else {
      task->set_state(TaskState::kFinished);
      ++finished_count_;
    }
  }
  join_cv_.notify_all();
}

void Scheduler::consume_finished(const TaskPtr& task, void** result) {
  assert(task->state() == TaskState::kFinished);
  assert(task->joins_remaining() > 0);
  task->consume_join();
  if (result != nullptr) *result = task->result();
  if (task->joins_remaining() == 0) {
    task->set_state(TaskState::kJoined);
    live_.erase(task->id());
    --finished_count_;
  }
  if (trace_.enabled()) {
    trace_.record_edge(task->flow_id(), current_frame().flow_id,
                       TraceEdgeKind::kJoin);
  }
}

int Scheduler::join(const TaskPtr& task, void** result, int vp) {
  stats_.on_join();
  if (!task) return kNotFound;
  if (on_current_stack(task.get())) return kDeadlock;

  {
    std::lock_guard lock(mu_);
    if (task->state() == TaskState::kJoined || task->joins_remaining() <= 0)
      return kNotFound;
    if (task->state() == TaskState::kFinished) {
      consume_finished(task, result);
      stats_.on_join_immediate();
      return kOk;
    }
  }

  // Blocking path: the flow logically splits; the code below this join is
  // the continuation T_{i+1}, blocked on `task` (paper §2.2.1). The VP
  // stays useful: it runs the target inline, or other ready tasks, and
  // sleeps only when the target runs elsewhere and nothing is ready.
  stats_.on_continuation();
  if (trace_.enabled()) {
    Frame& f = current_frame();
    const TaskId cont_id = next_id_.fetch_add(1, std::memory_order_relaxed);
    trace_.record_task(cont_id, f.flow_id, f.level, true);
    trace_.record_edge(f.flow_id, cont_id, TraceEdgeKind::kContinue);
    f.flow_id = cont_id;
    if (f.task != nullptr) f.task->set_flow_id(cont_id);
  }

  const bool may_help =
      vp != SchedulingPolicy::kExternalVp || opts_.external_helps;
  bool slept = false;
  blocked_frames_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    {
      std::unique_lock lock(mu_);
      if (task->state() == TaskState::kJoined || task->joins_remaining() <= 0) {
        blocked_frames_.fetch_sub(1, std::memory_order_relaxed);
        return kNotFound;  // join budget raced away
      }
      if (task->state() == TaskState::kFinished) {
        blocked_frames_.fetch_sub(1, std::memory_order_relaxed);
        unblocked_frames_.fetch_add(1, std::memory_order_relaxed);
        consume_finished(task, result);
        unblocked_frames_.fetch_sub(1, std::memory_order_relaxed);
        return kOk;
      }
    }

    if (may_help) {
      // 1) Join-inlining: pull the target itself out of the ready list.
      if (task->state() == TaskState::kReady &&
          policy_->remove_specific(task)) {
        stats_.on_join_inlined();
        run_task(task, vp);
        continue;
      }
      // 2) Help: run any other ready task while we wait.
      if (TaskPtr other = policy_->pop(vp)) {
        stats_.on_join_helped();
        run_task(other, vp);
        continue;
      }
    }
    // 3) Sleep until the target finishes (or, when helping, until new
    //    ready work appears that we could run meanwhile).
    std::unique_lock lock(mu_);
    if (task->state() != TaskState::kFinished &&
        (!may_help || policy_->approx_size() == 0)) {
      if (!slept) {
        stats_.on_join_slept();
        slept = true;
      }
      join_cv_.wait(lock, [&] {
        return task->state() == TaskState::kFinished ||
               (may_help && policy_->approx_size() > 0);
      });
    }
  }
}

int Scheduler::try_join(const TaskPtr& task, void** result) {
  stats_.on_join();
  if (!task) return kNotFound;
  if (on_current_stack(task.get())) return kDeadlock;
  std::lock_guard lock(mu_);
  if (task->state() == TaskState::kJoined || task->joins_remaining() <= 0)
    return kNotFound;
  if (task->state() != TaskState::kFinished) return kBusy;
  consume_finished(task, result);
  stats_.on_join_immediate();
  return kOk;
}

int Scheduler::join_by_id(TaskId id, void** result, int vp) {
  TaskPtr task = find(id);
  if (!task) return kNotFound;
  return join(task, result, vp);
}

TaskPtr Scheduler::wait_for_task(int vp, const std::stop_token& st) {
  for (;;) {
    if (TaskPtr task = policy_->pop(vp)) return task;
    std::unique_lock lock(mu_);
    const bool have_work = ready_cv_.wait(
        lock, st, [&] { return policy_->approx_size() > 0; });
    if (!have_work) return nullptr;  // stop requested
  }
}

void Scheduler::notify_all() {
  ready_cv_.notify_all();
  join_cv_.notify_all();
}

Scheduler::ListSnapshot Scheduler::lists() const {
  std::lock_guard lock(mu_);
  ListSnapshot s;
  s.ready = policy_->approx_size();
  s.finished = finished_count_;
  s.blocked = blocked_frames_.load(std::memory_order_relaxed);
  s.unblocked = unblocked_frames_.load(std::memory_order_relaxed);
  return s;
}

RuntimeStats::Snapshot Scheduler::stats_snapshot() const {
  if (const auto* ws = dynamic_cast<const WorkStealingPolicy*>(policy_.get()))
    stats_.record_steals(ws->steals(), ws->steal_attempts());
  return stats_.snapshot();
}

}  // namespace anahy
