#include "anahy/scheduler.hpp"

#include <cassert>
#include <chrono>

#include "anahy/check/detector.hpp"
#include "anahy/policy_steal.hpp"
#include "anahy/policy_steal_mutex.hpp"
#include "anahy/task_pool.hpp"
#include "anahy/trace_analysis.hpp"

namespace anahy {

thread_local std::vector<Scheduler::Frame> Scheduler::tls_frames_;
thread_local Scheduler::Frame Scheduler::tls_root_{nullptr, kRootTaskId, 0};
thread_local std::uint64_t Scheduler::tls_root_owner_ = 0;
thread_local int Scheduler::tls_vp_ = SchedulingPolicy::kExternalVp;
thread_local std::uint64_t Scheduler::tls_vp_owner_ = 0;
thread_local bool Scheduler::tls_worker_ = false;

namespace {
std::atomic<std::uint64_t> g_scheduler_instances{0};

/// Best-effort message of the in-flight exception (containment path).
std::string current_exception_message() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}
}  // namespace

Scheduler::Scheduler(const Options& opts)
    : instance_id_(g_scheduler_instances.fetch_add(1) + 1),
      opts_(opts),
      policy_(make_policy(opts.policy, opts.num_vps)) {
  opts_.trace = opts_.trace || opts_.profile;  // spans need the graph
  trace_.set_enabled(opts_.trace);
  if (opts_.trace) {
    // The root flow (the paper's T0) exists before any fork.
    trace_.record_task(kRootTaskId, kInvalidTaskId, 0, false);
    trace_.record_label(kRootTaskId, "main");
  }
  if (opts_.telemetry) {
    tele_ = std::make_unique<observe::Telemetry>(opts_.num_vps);
    policy_->set_telemetry(tele_.get());
  }
  if (opts_.profile)
    profiler_ = std::make_unique<observe::SpanProfiler>(opts_.num_vps);
  if (opts.check) {
    // Serial-elision configuration = one VP (the canonical detection mode;
    // docs/CHECKING.md). The detector also becomes the process-wide sink
    // of the check::read/write instrumentation entry points.
    detector_ = std::make_unique<check::Detector>(opts.num_vps == 1);
    check::set_active_detector(detector_.get());
  }
}

Scheduler::~Scheduler() {
  if (detector_ != nullptr &&
      check::active_detector() == detector_.get()) {
    check::set_active_detector(nullptr);
  }
  // Tasks never joined (or never run) are still registered; break their
  // registry self-references so they are reclaimed with the scheduler.
  for (Shard& sh : shards_) {
    std::lock_guard lock(sh.mu);
    for (Task* t = sh.head; t != nullptr;) {
      Task* next = t->reg_next_;
      t->reg_prev_ = t->reg_next_ = nullptr;
      t->registry_guard_.reset();  // may destroy *t
      t = next;
    }
    sh.head = nullptr;
  }
}

void Scheduler::bind_thread_to_vp(int vp, bool worker) {
  tls_vp_ = vp;
  tls_vp_owner_ = instance_id_;
  tls_worker_ = worker;
}

int Scheduler::bound_vp() const {
  return tls_vp_owner_ == instance_id_ ? tls_vp_
                                       : SchedulingPolicy::kExternalVp;
}

bool Scheduler::is_bound_worker() const {
  return tls_worker_ && tls_vp_owner_ == instance_id_;
}

Scheduler::Frame& Scheduler::root_frame() {
  if (tls_root_owner_ != instance_id_) {
    tls_root_owner_ = instance_id_;
    tls_root_ = Frame{nullptr, kRootTaskId, 0};
  }
  return tls_root_;
}

Scheduler::Frame& Scheduler::current_frame() {
  return tls_frames_.empty() ? root_frame() : tls_frames_.back();
}

TaskId Scheduler::current_flow_id() {
  // Outside any task frame this is the main flow. We report the stable
  // root id (T0) rather than its latest continuation id, which is what
  // the paper's athread_self means by "the main flow".
  return tls_frames_.empty() ? kRootTaskId : tls_frames_.back().flow_id;
}

std::size_t Scheduler::current_stack_depth() { return tls_frames_.size(); }

TaskId Scheduler::current_task_id() {
  return tls_frames_.empty() ? kRootTaskId : tls_frames_.back().task->id();
}

bool Scheduler::on_current_stack(const Task* task) {
  for (const Frame& f : tls_frames_)
    if (f.task == task) return true;
  return false;
}

TaskPtr Scheduler::create_task(TaskBody body, void* input,
                               const TaskAttributes& attr, std::string label) {
  return create_task(std::move(body), input, attr, std::move(label), nullptr);
}

TaskPtr Scheduler::create_task(TaskBody body, void* input,
                               const TaskAttributes& attr, std::string label,
                               TaskContextPtr ctx) {
  Frame& f = current_frame();
  // Context inheritance: a fork issued from inside a job's task joins that
  // job, unless the caller attached a context explicitly (the job root).
  const bool explicit_ctx = ctx != nullptr;
  if (!explicit_ctx && f.task != nullptr) ctx = f.task->context();
  const TaskId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // allocate_shared + the pool allocator: one block per task (control block
  // and Task fused), served from the forking thread's free-list cache.
  auto task =
      std::allocate_shared<Task>(TaskPoolAllocator<Task>{}, id,
                                 std::move(body), input, attr, f.flow_id,
                                 f.level + 1);
  std::uint64_t job = 0;
  if (ctx != nullptr) {
    if (explicit_ctx) ctx->root_task = id;
    ctx->note_created();
    // Memory accounting (anahy::aging): charge the job the exact pool
    // block size allocate_shared just drew on this thread; the Task
    // destructor credits it back wherever the last reference drops.
    if (pool_accounting()) {
      const auto bytes =
          static_cast<std::uint32_t>(pool_detail::tls_last_alloc_bytes);
      task->set_pool_bytes(bytes);
      ctx->note_pool_alloc(bytes);
    }
    job = ctx->job;
    task->set_context(std::move(ctx));
  }
  task->set_state(TaskState::kReady);

  if (detector_ != nullptr) [[unlikely]]
    detector_->on_fork(current_task_id(), id, label, job);

  const int vp = bound_vp();
  if (trace_.enabled()) {
    trace_.record_task(id, f.flow_id, f.level + 1, false, job);
    trace_.record_task_attrs(id, attr.join_number(), attr.data_len());
    // In profile mode the fork edge carries its timestamp and VP so the
    // Chrome export can draw a flow arrow from the fork site to the
    // child's first execution slice.
    if (profiler_ != nullptr)
      trace_.record_edge_stamped(f.flow_id, id, TraceEdgeKind::kFork,
                                 trace_.now_ns(), vp);
    else
      trace_.record_edge(f.flow_id, id, TraceEdgeKind::kFork);
    if (!label.empty()) trace_.record_label(id, std::move(label));
  }

  // Register before publishing to the ready list so a consumer that runs
  // and retires the task instantly always finds the registry entry.
  register_task(task);
  policy_->push(task, vp);
  stats_.record_ready_len(policy_->approx_size());
  stats_.on_task_created();
  if (tele_ != nullptr) tele_->on_fork(vp);
  // Eventcount notifies: a couple of atomic ops when nobody sleeps; the
  // condvar is only touched for genuinely idle VPs/joiners.
  ready_ec_.notify_one();
  join_ec_.notify_all();  // blocked joiners may help with the new task
  return task;
}

void Scheduler::register_task(const TaskPtr& task) {
  Shard& sh = shard(task->id());
  Task* raw = task.get();
  raw->registry_guard_ = task;
  std::lock_guard lock(sh.mu);
  raw->reg_prev_ = nullptr;
  raw->reg_next_ = sh.head;
  if (sh.head != nullptr) sh.head->reg_prev_ = raw;
  sh.head = raw;
}

TaskPtr Scheduler::find(TaskId id) const {
  const Shard& sh = shard(id);
  std::lock_guard lock(sh.mu);
  for (const Task* t = sh.head; t != nullptr; t = t->reg_next_)
    if (t->id() == id) return t->registry_guard_;
  return nullptr;
}

void Scheduler::retire(Task* task) {
  Shard& sh = shard(task->id());
  TaskPtr guard;  // release the self-reference outside the shard lock
  {
    std::lock_guard lock(sh.mu);
    guard = std::move(task->registry_guard_);
    if (guard == nullptr) return;  // already retired
    if (task->reg_prev_ != nullptr) task->reg_prev_->reg_next_ = task->reg_next_;
    else sh.head = task->reg_next_;
    if (task->reg_next_ != nullptr) task->reg_next_->reg_prev_ = task->reg_prev_;
    task->reg_prev_ = task->reg_next_ = nullptr;
  }
}

Scheduler::ReapResult Scheduler::reap_orphans() {
  ReapResult out;
  for (Shard& sh : shards_) {
    // Collect candidates under the shard lock, release their guards (and
    // so, usually, free their pool blocks) outside it: a Task destructor
    // must never run inside a ShardLock critical section.
    std::vector<TaskPtr> doomed;
    {
      std::lock_guard lock(sh.mu);
      for (Task* t = sh.head; t != nullptr; t = t->reg_next_) {
        if (t->state() != TaskState::kFinished) continue;
        const TaskContextPtr& ctx = t->context();
        if (ctx == nullptr || !ctx->resolved()) continue;
        doomed.push_back(t->registry_guard_);
      }
    }
    for (const TaskPtr& t : doomed) {
      out.tasks += 1;
      out.bytes += t->pool_bytes();
      retire(t.get());
    }
  }
  return out;
}

void Scheduler::run_task(const TaskPtr& task, int vp) {
  // Cancellation: a task whose job context was cancelled (or whose
  // deadline passed) before it started is completed without running its
  // body — it "finishes" with a null result, so joiners unblock normally.
  // The job's root task is exempt: it carries the completion bookkeeping
  // of the serve layer and must always run (task_context.hpp).
  TaskContext* ctx = task->context().get();
  const bool cancelled = ctx != nullptr && task->id() != ctx->root_task &&
                         ctx->should_skip();
  task->set_state(TaskState::kRunning);
  tls_frames_.push_back({task.get(), task->id(), task->level()});

  // Checker auto-instrumentation: a task with a declared payload size
  // (attr datalen) reads its input buffer. Explicit instrumentation inside
  // the body goes through check::read/write. A job opts in per JobSpec
  // (ctx->checked); context-free tasks follow the attribute alone.
  const bool instrumented = detector_ != nullptr &&
                            task->attributes().checked() &&
                            (ctx == nullptr || ctx->checked);
  if (instrumented && !cancelled) {
    const std::size_t dl = task->attributes().data_len();
    if (dl > 0 && task->input() != nullptr)
      detector_->on_access(task->id(), task->input(), dl,
                           /*is_write=*/false);
  }

  // Credit the job counters BEFORE invoking the body: the root task of a
  // served job snapshots its context's counters from inside its own body
  // (Job::complete), and must see itself as executed. `cancelled` is final
  // at this point, so the accounting matches the post-body state.
  if (ctx != nullptr) ctx->note_executed(cancelled);
  // Same ordering for the observe counter: a body may publish its own
  // completion (a served job's root resolves its handle from inside
  // invoke()), and an observer that synchronizes with that completion —
  // drain(), JobHandle::wait() — must already find this run counted.
  if (tele_ != nullptr) tele_->on_task_run(vp);

  // Per-task timing feeds the trace; two clock reads per task are a
  // measurable fraction of a fine-grained task, so skip them untraced.
  const bool timed = trace_.enabled();
  const std::int64_t trace_start = timed ? trace_.now_ns() : -1;
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  void* result = nullptr;
  if (!cancelled) {
    try {
      result = task->invoke();
    } catch (const TaskExit& exit) {
      result = exit.result;
    } catch (...) {
      if (ctx == nullptr) {
        // Context-free tasks keep POSIX semantics: bodies must not throw.
        // Restore the frame so the failure is at least attributed to the
        // right flow, then rethrow (which terminates the process).
        tls_frames_.pop_back();
        throw;
      }
      // Containment: a throwing body of a served job must not take the
      // whole process down. Capture the message into the job's context
      // (first fault wins), cancel the rest of the DAG, and let the task
      // finish with a null result so joiners unblock; the serve layer
      // resolves the job kFaulted from the context.
      ctx->note_fault(current_exception_message());
      result = nullptr;
    }
  }
  tls_frames_.pop_back();

  task->set_result(result);
  if (timed) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    task->set_exec_ns(ns);
    if (profiler_ != nullptr) {
      // Profile mode: buffer the span (plus VP and job identity) in the
      // executing VP's private buffer instead of taking the trace mutex on
      // every task; flush_profile() folds them into the graph.
      profiler_->record(vp, task->id(), ctx != nullptr ? ctx->job : 0,
                        trace_start, ns);
    } else {
      trace_.record_exec_interval(task->id(), trace_start, ns);
    }
  }

  // Count the execution BEFORE the task becomes observable as finished, so
  // a joiner that consumes the result immediately already sees the counter.
  // "Run by main" means run by any thread that is not one of this
  // scheduler's worker VPs — the main flow (even when bound to a VP slot
  // via main_participates) or a foreign helping thread.
  stats_.on_task_executed(!is_bound_worker());

  // The finish hook (and the auto-instrumented result write) must precede
  // the kFinished release store: a joiner that acquire-reads kFinished
  // derives its post-join strand from the target's final strand.
  if (detector_ != nullptr) {
    if (instrumented && !cancelled) {
      const std::size_t dl = task->attributes().data_len();
      if (dl > 0 && result != nullptr)
        detector_->on_access(task->id(), result, dl, /*is_write=*/true);
    }
    detector_->on_finish(task->id());
  }

  if (task->attributes().join_number() == 0) {
    // Detached task: nobody may join it; reclaim immediately.
    task->set_state(TaskState::kJoined);
    retire(task.get());
  } else {
    // The increment must precede the kFinished release store: a joiner
    // that acquire-reads kFinished and later decrements cannot underflow.
    finished_count_.fetch_add(1, std::memory_order_relaxed);
    task->set_state(TaskState::kFinished);  // release: publishes the result
  }
  join_ec_.notify_all();
}

int Scheduler::try_consume(const TaskPtr& task, void** result) {
  const int remaining = task->try_consume_join();
  if (remaining < 0) return kNotFound;  // join budget raced away
  if (result != nullptr) *result = task->result();
  if (remaining == 0) {
    // Last join: this caller retires the task. The kFinished -> kJoined
    // transition needs no notification of its own; every waiter was
    // already woken by the finish and re-checks the state.
    task->set_state(TaskState::kJoined);
    retire(task.get());
    finished_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (detector_ != nullptr) {
    // The join edge orders the target's whole execution before this flow's
    // continuation; the joiner then reads the declared result payload.
    detector_->on_join(current_task_id(), task->id());
    const TaskContext* tctx = task->context().get();
    if (task->attributes().checked() && (tctx == nullptr || tctx->checked)) {
      const std::size_t dl = task->attributes().data_len();
      if (dl > 0 && task->result() != nullptr)
        detector_->on_access(current_task_id(), task->result(), dl,
                             /*is_write=*/false);
    }
  }
  if (trace_.enabled()) {
    trace_.record_join_performed(task->id());
    if (profiler_ != nullptr)
      trace_.record_edge_stamped(task->flow_id(), current_frame().flow_id,
                                 TraceEdgeKind::kJoin, trace_.now_ns(),
                                 bound_vp());
    else
      trace_.record_edge(task->flow_id(), current_frame().flow_id,
                         TraceEdgeKind::kJoin);
  }
  if (tele_ != nullptr) tele_->on_join(bound_vp());
  return kOk;
}

void Scheduler::record_double_join(const Task& task) {
  // A kNotFound on a live handle means the join budget was already spent:
  // the POSIX contract returns ESRCH and the linter records a double-join.
  if (!trace_.enabled()) return;
  trace_.record_anomaly(lint_code::kDoubleJoin, task.id(),
                        "join attempted after the join budget of " +
                            std::to_string(task.attributes().join_number()) +
                            " was exhausted");
}

int Scheduler::join(const TaskPtr& task, void** result, int vp) {
  stats_.on_join();
  if (!task) return kNotFound;
  if (on_current_stack(task.get())) return kDeadlock;

  {
    // Lock-free fast path: acquire-read the state, CAS the join budget.
    const TaskState s = task->state();
    if (s == TaskState::kJoined || task->joins_remaining() <= 0) {
      record_double_join(*task);
      return kNotFound;
    }
    if (s == TaskState::kFinished) {
      const int rc = try_consume(task, result);
      if (rc == kOk) stats_.on_join_immediate();
      else if (rc == kNotFound) record_double_join(*task);
      return rc;
    }
  }

  // Blocking path: the flow logically splits; the code below this join is
  // the continuation T_{i+1}, blocked on `task` (paper §2.2.1). The VP
  // stays useful: it runs the target inline, or other ready tasks, and
  // sleeps only when the target runs elsewhere and nothing is ready.
  stats_.on_continuation();
  if (trace_.enabled()) {
    Frame& f = current_frame();
    const TaskId cont_id = next_id_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t job =
        f.task != nullptr && f.task->context() != nullptr
            ? f.task->context()->job
            : 0;
    trace_.record_task(cont_id, f.flow_id, f.level, true, job);
    trace_.record_edge(f.flow_id, cont_id, TraceEdgeKind::kContinue);
    f.flow_id = cont_id;
    if (f.task != nullptr) f.task->set_flow_id(cont_id);
  }

  const bool may_help =
      vp != SchedulingPolicy::kExternalVp || opts_.external_helps;
  bool slept = false;
  blocked_frames_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    TaskState s = task->state();
    if (s == TaskState::kJoined) {
      blocked_frames_.fetch_sub(1, std::memory_order_relaxed);
      record_double_join(*task);
      return kNotFound;  // join budget raced away
    }
    if (s == TaskState::kFinished) {
      blocked_frames_.fetch_sub(1, std::memory_order_relaxed);
      unblocked_frames_.fetch_add(1, std::memory_order_relaxed);
      const int rc = try_consume(task, result);
      unblocked_frames_.fetch_sub(1, std::memory_order_relaxed);
      if (rc == kNotFound) record_double_join(*task);
      return rc;
    }

    if (may_help) {
      // 1) Join-inlining: claim the target itself out of the ready list.
      if (s == TaskState::kReady && policy_->remove_specific(task, vp)) {
        stats_.on_join_inlined();
        run_task(task, vp);
        continue;
      }
      // 2) Help: run any other ready task while we wait.
      if (TaskPtr other = policy_->pop(vp)) {
        stats_.on_join_helped();
        run_task(other, vp);
        continue;
      }
    }
    // 3) Sleep until the target finishes (or, when helping, until new
    //    ready work appears that we could run meanwhile). Eventcount
    //    two-phase wait: announce, re-check, then commit to sleeping.
    const EventCount::Epoch e = join_ec_.prepare_wait();
    s = task->state();
    if (s == TaskState::kFinished || s == TaskState::kJoined ||
        (may_help && policy_->approx_size() > 0)) {
      join_ec_.cancel_wait();
      continue;
    }
    if (!slept) {
      stats_.on_join_slept();
      slept = true;
    }
    join_ec_.commit_wait(e);
  }
}

int Scheduler::try_join(const TaskPtr& task, void** result) {
  stats_.on_join();
  if (!task) return kNotFound;
  if (on_current_stack(task.get())) return kDeadlock;
  const TaskState s = task->state();
  if (s == TaskState::kJoined || task->joins_remaining() <= 0) {
    trace_.record_anomaly(lint_code::kDoubleJoin, task->id(),
                          "tryjoin attempted after the join budget was "
                          "exhausted");
    return kNotFound;
  }
  if (s != TaskState::kFinished) return kBusy;
  const int rc = try_consume(task, result);
  if (rc == kOk) stats_.on_join_immediate();
  return rc;
}

int Scheduler::join_by_id(TaskId id, void** result, int vp) {
  TaskPtr task = find(id);
  if (!task) {
    // Gone from the registry: either the id was never created (W003) or
    // the task was already fully joined and retired - a double-join
    // (W002). The trace, when enabled, can tell the two apart.
    if (trace_.enabled()) {
      if (trace_.has_node(id)) {
        trace_.record_anomaly(lint_code::kDoubleJoin, id,
                              "join on an already-retired task (budget "
                              "exhausted)");
      } else {
        trace_.record_anomaly(lint_code::kJoinNonexistent, id,
                              "join on a task id that was never created");
      }
    }
    return kNotFound;
  }
  return join(task, result, vp);
}

TaskPtr Scheduler::wait_for_task(int vp, const std::stop_token& st) {
  for (;;) {
    if (TaskPtr task = policy_->pop(vp)) return task;
    if (tele_ != nullptr) tele_->on_idle_spin(vp);
    const EventCount::Epoch e = ready_ec_.prepare_wait();
    if (st.stop_requested()) {
      ready_ec_.cancel_wait();
      return nullptr;
    }
    // Re-check after announcing ourselves: a producer that pushed before
    // reading the waiter count is now guaranteed visible here.
    if (TaskPtr task = policy_->pop(vp)) {
      ready_ec_.cancel_wait();
      return task;
    }
    // Committing to sleep is the cold path, so the two extra clock reads
    // that meter parked time (the idle-fraction gauge) cost nothing that
    // matters.
    if (tele_ == nullptr) {
      if (!ready_ec_.commit_wait(e, st)) return nullptr;  // stop requested
    } else {
      const auto park_start = std::chrono::steady_clock::now();
      const bool keep = ready_ec_.commit_wait(e, st);
      tele_->on_idle_park(
          vp, std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - park_start)
                  .count());
      if (!keep) return nullptr;  // stop requested
    }
  }
}

void Scheduler::notify_all() {
  ready_ec_.notify_all();
  join_ec_.notify_all();
}

void Scheduler::drain() {
  // Run ready tasks on this thread until the created == executed fixpoint:
  // nothing queued, nothing running. A task still running on a worker VP
  // may fork more work, so we sleep on the join eventcount (bumped by both
  // spawn and finish) rather than spinning, and re-check after each wake.
  const int vp = bound_vp();
  for (;;) {
    if (TaskPtr t = policy_->pop(vp)) {
      run_task(t, vp);
      continue;
    }
    const auto s = stats_.snapshot();
    if (s.tasks_executed >= s.tasks_created) return;
    const EventCount::Epoch e = join_ec_.prepare_wait();
    if (policy_->approx_size() > 0) {
      join_ec_.cancel_wait();
      continue;
    }
    const auto s2 = stats_.snapshot();
    if (s2.tasks_executed >= s2.tasks_created) {
      join_ec_.cancel_wait();
      return;
    }
    join_ec_.commit_wait(e);
  }
}

Scheduler::ListSnapshot Scheduler::lists() const {
  ListSnapshot s;
  s.ready = policy_->approx_size();
  s.finished = finished_count_.load(std::memory_order_relaxed);
  s.blocked = blocked_frames_.load(std::memory_order_relaxed);
  s.unblocked = unblocked_frames_.load(std::memory_order_relaxed);
  return s;
}

observe::Snapshot Scheduler::observe_snapshot() const {
  observe::Snapshot s;
  if (tele_ != nullptr) {
    s = tele_->snapshot();
  } else {
    // Telemetry off: zero counters, but keep the shape so exposition and
    // the serve stats endpoint still render.
    s.num_vps = opts_.num_vps;
    s.per_vp.resize(static_cast<std::size_t>(opts_.num_vps) + 1);
  }
  const auto by_class = policy_->approx_size_by_class();
  for (std::size_t cls = 0; cls < by_class.size(); ++cls)
    s.ready_by_class[cls] = by_class[cls];
  return s;
}

void Scheduler::flush_profile() {
  if (profiler_ != nullptr) profiler_->flush_into(trace_);
}

RuntimeStats::Snapshot Scheduler::stats_snapshot() const {
  if (const auto* ws = dynamic_cast<const WorkStealingPolicy*>(policy_.get()))
    stats_.record_steals(ws->steals(), ws->steal_attempts());
  else if (const auto* mws =
               dynamic_cast<const MutexWorkStealingPolicy*>(policy_.get()))
    stats_.record_steals(mws->steals(), mws->steal_attempts());
  stats_.record_wakeups(ready_ec_.wakeups() + join_ec_.wakeups(),
                        ready_ec_.wakeups_skipped() +
                            join_ec_.wakeups_skipped());
  return stats_.snapshot();
}

}  // namespace anahy
