// Umbrella header: everything a user of the Anahy library needs.
//
//   #include <anahy/anahy.hpp>
//
//   anahy::Runtime rt({.num_vps = 4});
//   auto h = anahy::spawn(rt, [] { return 21 * 2; });
//   int x = h.join();                      // typed C++ layer
//
// or, with the paper's POSIX-flavoured API:
//
//   anahy::athread_init(4);
//   anahy::athread_t th;
//   anahy::athread_create(&th, nullptr, func, in);
//   anahy::athread_join(th, &out);
//   anahy::athread_terminate();
#pragma once

#include "anahy/athread.hpp"   // IWYU pragma: export
#include "anahy/attr.hpp"          // IWYU pragma: export
#include "anahy/check/check.hpp"   // IWYU pragma: export
#include "anahy/parallel_for.hpp"  // IWYU pragma: export
#include "anahy/runtime.hpp"   // IWYU pragma: export
#include "anahy/spawn.hpp"     // IWYU pragma: export
#include "anahy/stats.hpp"     // IWYU pragma: export
#include "anahy/task.hpp"      // IWYU pragma: export
#include "anahy/task_group.hpp"    // IWYU pragma: export
#include "anahy/trace.hpp"     // IWYU pragma: export
#include "anahy/types.hpp"     // IWYU pragma: export
