// Text exposition and threshold anomaly detection over telemetry snapshots.
//
// render_text() turns an observe::Snapshot into Prometheus-style plain text
// (the same dialect ServerStats::to_metrics_text speaks): counter lines with
// vp="0"/"external" labels, aggregate totals, and the derived gauges
// operators alert on. detect_anomalies() applies fixed thresholds and emits
// coded flags in the ANAHY-Pxxx namespace:
//
//   ANAHY-P001 steal-starvation: many attempts, almost no successes.
//   ANAHY-P002 idle-dominated:   the fleet parked for most of its wall time
//                                while still running work.
//   ANAHY-P003 deadline-risk:    serve-layer queue latency threatens job
//                                deadlines (detected by JobServer, passed in
//                                as an extra anomaly — the snapshot alone
//                                cannot see deadlines).
#pragma once

#include <string>
#include <vector>

#include "anahy/observe/telemetry.hpp"

namespace anahy::observe {

/// A threshold violation worth surfacing to an operator.
struct Anomaly {
  std::string code;    ///< "ANAHY-P001" etc.
  std::string detail;  ///< human-readable evidence
};

namespace anomaly_code {
inline constexpr const char* kStealStarvation = "ANAHY-P001";
inline constexpr const char* kIdleDominated = "ANAHY-P002";
inline constexpr const char* kDeadlineRisk = "ANAHY-P003";
}  // namespace anomaly_code

/// Thresholds (documented in docs/OBSERVE.md; tests pin them).
inline constexpr std::uint64_t kStarvationMinAttempts = 256;
inline constexpr double kStarvationMaxRatio = 0.05;
inline constexpr double kIdleDominatedFraction = 0.5;

/// A counter contributed by a layer the snapshot cannot see (e.g. the
/// fault-injection harness's injected-drop tally). Rendered verbatim as
/// `name{labels} value` (or `name value` when labels is empty).
struct ExtraCounter {
  std::string name;    ///< e.g. "anahy_fault_injected_total"
  std::string labels;  ///< e.g. "kind=\"drop\"" — without the braces
  std::uint64_t value = 0;
};

/// Applies the P001/P002 thresholds to `s`. P003 lives in the serve layer.
[[nodiscard]] std::vector<Anomaly> detect_anomalies(const Snapshot& s);

/// Renders bare ExtraCounter rows in the exposition dialect — the exact
/// formatting render_text uses for its `counters` argument. Layers that
/// compose a document out of several sources (a serve front-end appending
/// its heartbeat/dedup rows to JobServer::observe_text, a mesh node adding
/// anahy_mesh_* rows) reuse this instead of hand-formatting lines.
[[nodiscard]] std::string render_counters(
    const std::vector<ExtraCounter>& counters);

/// Prometheus-style exposition of `s`, followed by any `counters`
/// contributed by higher layers, then one `anahy_observe_anomaly{code="..."}
/// 1` line per detected anomaly plus any `extra` anomalies supplied by a
/// higher layer (e.g. serve's P003).
[[nodiscard]] std::string render_text(
    const Snapshot& s, const std::vector<Anomaly>& extra = {},
    const std::vector<ExtraCounter>& counters = {});

}  // namespace anahy::observe
