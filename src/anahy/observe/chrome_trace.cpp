#include "anahy/observe/chrome_trace.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace anahy::observe {
namespace {

int track_of(int vp) {
  if (vp >= 0) return vp;
  // -1 is SchedulingPolicy::kExternalVp; anything else (kUnknownVp) means
  // the span predates v3 / profiling was off.
  return vp == -1 ? kExternalTrack : kUntrackedTrack;
}

std::string track_name(int tid) {
  if (tid == kExternalTrack) return "external";
  if (tid == kUntrackedTrack) return "(untracked)";
  return "VP " + std::to_string(tid);
}

// Trace timestamps are nanoseconds; Chrome wants microseconds. Emit with
// three decimals so nanosecond precision survives.
std::string us(std::int64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

class EventList {
 public:
  explicit EventList(std::ostream& out) : out_(out) {}

  void emit(const std::string& body) {
    out_ << (first_ ? "\n  {" : ",\n  {") << body << "}";
    first_ = false;
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceGraph& trace) {
  const std::vector<TraceNode> nodes = trace.nodes();
  const std::vector<TraceEdge> edges = trace.edges();
  std::map<TaskId, const TraceNode*> by_id;
  for (const TraceNode& n : nodes) by_id[n.id] = &n;

  out << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [";
  EventList ev(out);

  // Track metadata: name every tid that will carry events, in a stable
  // order (worker VPs first, then external, then untracked).
  std::set<int> tids;
  for (const TraceNode& n : nodes)
    if (n.start_ns >= 0) tids.insert(track_of(n.vp));
  for (const int tid : tids) {
    std::ostringstream b;
    b << "\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
      << tid << ", \"args\": {\"name\": \"" << track_name(tid) << "\"}";
    ev.emit(b.str());
    std::ostringstream s;
    s << "\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, "
      << "\"tid\": " << tid << ", \"args\": {\"sort_index\": " << tid << "}";
    ev.emit(s.str());
  }

  // One complete ("X") slice per executed task.
  for (const TraceNode& n : nodes) {
    if (n.start_ns < 0) continue;  // never ran (or pre-profiling trace)
    std::ostringstream b;
    const std::string name =
        n.label.empty() ? "T" + std::to_string(n.id) : n.label;
    b << "\"name\": \"" << json_escape(name) << "\", \"cat\": \"task\", "
      << "\"ph\": \"X\", \"pid\": 1, \"tid\": " << track_of(n.vp)
      << ", \"ts\": " << us(n.start_ns) << ", \"dur\": " << us(n.exec_ns)
      << ", \"args\": {\"task\": " << n.id << ", \"job\": " << n.job
      << ", \"level\": " << n.level
      << ", \"continuation\": " << (n.is_continuation ? "true" : "false")
      << "}";
    ev.emit(b.str());
  }

  // Flow arrows need stamped edges (profile mode). A fork edge flows from
  // the fork event on the forker's track to the child's execution begin; a
  // join edge flows from the target's execution end to the join event on
  // the joiner's track.
  std::size_t flow_id = 0;
  for (const TraceEdge& e : edges) {
    if (e.ts_ns < 0) continue;
    const char* cat = nullptr;
    int start_tid = 0;
    int finish_tid = 0;
    std::int64_t start_ts = 0;
    std::int64_t finish_ts = 0;
    if (e.kind == TraceEdgeKind::kFork) {
      const auto child = by_id.find(e.to);
      if (child == by_id.end() || child->second->start_ns < 0) continue;
      cat = "fork";
      start_tid = track_of(e.vp);
      start_ts = e.ts_ns;
      finish_tid = track_of(child->second->vp);
      finish_ts = child->second->start_ns;
    } else if (e.kind == TraceEdgeKind::kJoin) {
      const auto target = by_id.find(e.from);
      if (target == by_id.end() || target->second->start_ns < 0) continue;
      cat = "join";
      start_tid = track_of(target->second->vp);
      start_ts = target->second->start_ns + target->second->exec_ns;
      finish_tid = track_of(e.vp);
      finish_ts = e.ts_ns;
    } else {
      continue;  // continuations are already adjacent on the same flow
    }
    // Chrome drops arrows that point backwards in time (clock skew between
    // the fork stamp and the child's begin stamp); clamp to keep them.
    if (finish_ts < start_ts) finish_ts = start_ts;
    const std::size_t id = ++flow_id;
    std::ostringstream s;
    s << "\"name\": \"" << cat << "\", \"cat\": \"" << cat
      << "\", \"ph\": \"s\", \"id\": " << id << ", \"pid\": 1, \"tid\": "
      << start_tid << ", \"ts\": " << us(start_ts) << ", \"args\": {\"from\": "
      << e.from << ", \"to\": " << e.to << "}";
    ev.emit(s.str());
    std::ostringstream f;
    f << "\"name\": \"" << cat << "\", \"cat\": \"" << cat
      << "\", \"ph\": \"f\", \"bp\": \"e\", \"id\": " << id
      << ", \"pid\": 1, \"tid\": " << finish_tid << ", \"ts\": "
      << us(finish_ts) << ", \"args\": {\"from\": " << e.from << ", \"to\": "
      << e.to << "}";
    ev.emit(f.str());
  }

  out << "\n]\n}\n";
}

std::string chrome_trace_json(const TraceGraph& trace) {
  std::ostringstream out;
  write_chrome_trace(out, trace);
  return out.str();
}

}  // namespace anahy::observe
