// Chrome trace-event JSON export of an Anahy execution trace.
//
// Produces the JSON Object Format understood by chrome://tracing and
// Perfetto: one track (tid) per virtual processor, one complete ("X")
// event per executed task, flow arrows ("s"/"f") for fork -> begin and
// end -> join dependencies, and thread-name metadata so the tracks read
// "VP 0", "VP 1", ..., "external". Tasks recorded without a VP (pre-v3
// traces, or profile mode off) are grouped on an "(untracked)" track.
//
// Timestamps: the trace records nanoseconds from the trace epoch; Chrome
// wants microseconds, emitted here with nanosecond precision (3 decimals).
#pragma once

#include <iosfwd>
#include <string>

#include "anahy/trace.hpp"

namespace anahy::observe {

/// Synthetic track ids for spans that carry no VP identity.
inline constexpr int kExternalTrack = 1000;    ///< vp == kExternalVp (-1)
inline constexpr int kUntrackedTrack = 1001;   ///< pre-v3 trace, vp unknown

/// Writes `trace` as Chrome trace-event JSON. Flow arrows are emitted only
/// for edges that carry timestamps (profile mode, trace v3); a plain trace
/// still renders its spans.
void write_chrome_trace(std::ostream& out, const TraceGraph& trace);

/// Convenience wrapper around write_chrome_trace.
[[nodiscard]] std::string chrome_trace_json(const TraceGraph& trace);

}  // namespace anahy::observe
