// anahy::observe — always-available, low-overhead runtime telemetry.
//
// The scheduler's RuntimeStats answers "how many events happened in this
// runtime"; it cannot answer the questions an operator of a long-lived
// serving deployment asks: *which VP* is starving, how much of the fleet's
// time is idle, whether steals are succeeding or spinning. Telemetry keeps
// one cache-line-padded counter slot per virtual processor (plus one shared
// slot for external threads), fed directly from the scheduling hot paths:
//
//   - fork / join / task-run events (scheduler),
//   - steal attempts and successes per thief (work-stealing policy),
//   - idle spins and parks, with parked nanoseconds (VP wait loop),
//   - ready-deque depth samples at push time (policy).
//
// Write discipline mirrors RuntimeStats: every worker slot has exactly one
// writing thread, so an increment is a relaxed load + store on a private
// line; only the shared external slot pays a real fetch_add. Reading never
// stops the workers: snapshot() is wait-free, sums the slots, stamps a
// monotonically increasing epoch, and computes the derived gauges (steal
// success ratio, idle fraction, average deque depth) operators alert on.
// Counters are monotonic within one runtime lifetime, so two snapshots can
// be subtracted (delta) to rate them over an interval.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "anahy/types.hpp"

namespace anahy::observe {

/// One slot's counter values (also used for aggregated totals).
struct VpCounters {
  std::uint64_t forks = 0;
  std::uint64_t joins = 0;
  std::uint64_t tasks_run = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_successes = 0;
  std::uint64_t idle_spins = 0;   ///< wait-loop passes that found no task
  std::uint64_t idle_parks = 0;   ///< waits that committed to sleeping
  std::uint64_t idle_park_ns = 0; ///< total parked time
  std::uint64_t deque_depth_sum = 0;     ///< sum of sampled ready depths
  std::uint64_t deque_depth_samples = 0; ///< number of depth samples
  std::uint64_t deque_depth_peak = 0;    ///< high-water sampled depth

  VpCounters& operator+=(const VpCounters& o);
  [[nodiscard]] VpCounters minus(const VpCounters& earlier) const;
};

/// Wait-free aggregate view. `per_vp` holds one entry per worker VP slot
/// followed by one entry for all external (non-VP) threads combined.
struct Snapshot {
  std::uint64_t epoch = 0;      ///< snapshot generation (1-based, monotonic)
  std::int64_t elapsed_ns = 0;  ///< since telemetry start
  int num_vps = 0;
  std::vector<VpCounters> per_vp;  ///< size num_vps + 1 (last = external)
  VpCounters total;
  /// Ready-task gauge per priority class at snapshot time (filled by the
  /// scheduler from its policy; zero when the policy keeps no classes).
  std::array<std::uint64_t, kNumPriorities> ready_by_class{};

  /// steal_successes / steal_attempts (1.0 when no attempt was made: a
  /// thief that never had to try is not starving).
  [[nodiscard]] double steal_success_ratio() const;

  /// Parked time as a fraction of the fleet's wall time
  /// (idle_park_ns / (elapsed_ns * num_vps)); spin time is not counted,
  /// so this is a lower bound on true idleness.
  [[nodiscard]] double idle_fraction() const;

  /// Mean sampled ready-deque depth (0 when never sampled).
  [[nodiscard]] double avg_deque_depth() const;

  /// Counter-wise difference vs an `earlier` snapshot of the same
  /// telemetry instance; gauges and elapsed are re-derived.
  [[nodiscard]] Snapshot delta(const Snapshot& earlier) const;
};

/// The per-VP counter bank. One instance per Scheduler; thread-safe.
class Telemetry {
 public:
  explicit Telemetry(int num_vps);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Number of worker slots (the external slot is extra).
  [[nodiscard]] int num_vps() const { return num_vps_; }

  // Hot-path feeds. `vp` may be any value the scheduler uses for a caller
  // identity: out-of-range ids (kExternalVp, the policy's external slot
  // index) land on the shared external slot.
  void on_fork(int vp) { add(vp, kForks, 1); }
  void on_join(int vp) { add(vp, kJoins, 1); }
  void on_task_run(int vp) { add(vp, kTasksRun, 1); }
  void on_steal_attempt(int vp) { add(vp, kStealAttempts, 1); }
  void on_steal_success(int vp) { add(vp, kStealSuccesses, 1); }
  void on_idle_spin(int vp) { add(vp, kIdleSpins, 1); }
  void on_idle_park(int vp, std::int64_t ns) {
    add(vp, kIdleParks, 1);
    if (ns > 0) add(vp, kIdleParkNs, static_cast<std::uint64_t>(ns));
  }
  void sample_deque_depth(int vp, std::size_t depth);

  /// Wait-free aggregate: sums every slot without stopping writers.
  /// Cross-slot skew is bounded by in-flight increments; every counter is
  /// individually exact (monotonic, single-writer per worker slot).
  [[nodiscard]] Snapshot snapshot() const;

 private:
  enum Counter : unsigned {
    kForks,
    kJoins,
    kTasksRun,
    kStealAttempts,
    kStealSuccesses,
    kIdleSpins,
    kIdleParks,
    kIdleParkNs,
    kDepthSum,
    kDepthSamples,
    kDepthPeak,
    kNumCounters,
  };

  /// One VP's padded counter bank. Atomics so snapshot reads are race-free;
  /// worker slots are written by exactly one thread (plain load + store).
  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kNumCounters> c{};
  };

  [[nodiscard]] std::size_t slot_of(int vp) const {
    return vp >= 0 && vp < num_vps_ ? static_cast<std::size_t>(vp)
                                    : static_cast<std::size_t>(num_vps_);
  }

  void add(int vp, Counter which, std::uint64_t n) {
    const std::size_t s = slot_of(vp);
    std::atomic<std::uint64_t>& v = slots_[s].c[which];
    if (s == static_cast<std::size_t>(num_vps_)) {
      // External slot: any number of foreign threads share it.
      v.fetch_add(n, std::memory_order_relaxed);
    } else {
      v.store(v.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
    }
  }

  const int num_vps_;
  std::vector<Slot> slots_;  // num_vps_ + 1; never resized after ctor
  mutable std::atomic<std::uint64_t> snapshot_epoch_{0};
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace anahy::observe
