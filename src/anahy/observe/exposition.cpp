#include "anahy/observe/exposition.hpp"

#include <cstdio>
#include <sstream>

namespace anahy::observe {
namespace {

const char* class_name(int cls) {
  switch (cls) {
    case 0:
      return "high";
    case 1:
      return "normal";
    case 2:
      return "batch";
    default:
      return "unknown";
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void emit_per_vp(std::ostream& os, const char* name, const Snapshot& s,
                 std::uint64_t VpCounters::*field) {
  for (std::size_t i = 0; i < s.per_vp.size(); ++i) {
    os << name << "{vp=\"";
    if (i < static_cast<std::size_t>(s.num_vps))
      os << i;
    else
      os << "external";
    os << "\"} " << s.per_vp[i].*field << "\n";
  }
  os << name << "_total " << s.total.*field << "\n";
}

}  // namespace

std::vector<Anomaly> detect_anomalies(const Snapshot& s) {
  std::vector<Anomaly> out;
  if (s.total.steal_attempts >= kStarvationMinAttempts &&
      s.steal_success_ratio() < kStarvationMaxRatio) {
    std::ostringstream d;
    d << "steal-starvation: " << s.total.steal_successes << "/"
      << s.total.steal_attempts << " steal attempts succeeded (ratio "
      << fmt_double(s.steal_success_ratio()) << " < "
      << fmt_double(kStarvationMaxRatio) << ")";
    out.push_back({anomaly_code::kStealStarvation, d.str()});
  }
  if (s.total.tasks_run > 0 && s.idle_fraction() > kIdleDominatedFraction) {
    std::ostringstream d;
    d << "idle-dominated: fleet parked " << fmt_double(s.idle_fraction())
      << " of wall time (> " << fmt_double(kIdleDominatedFraction)
      << ") while running " << s.total.tasks_run << " tasks";
    out.push_back({anomaly_code::kIdleDominated, d.str()});
  }
  return out;
}

std::string render_counters(const std::vector<ExtraCounter>& counters) {
  std::ostringstream os;
  for (const ExtraCounter& c : counters) {
    os << c.name;
    if (!c.labels.empty()) os << "{" << c.labels << "}";
    os << " " << c.value << "\n";
  }
  return os.str();
}

std::string render_text(const Snapshot& s, const std::vector<Anomaly>& extra,
                        const std::vector<ExtraCounter>& counters) {
  std::ostringstream os;
  os << "anahy_observe_epoch " << s.epoch << "\n";
  os << "anahy_observe_elapsed_ns " << s.elapsed_ns << "\n";
  os << "anahy_observe_num_vps " << s.num_vps << "\n";

  emit_per_vp(os, "anahy_observe_forks", s, &VpCounters::forks);
  emit_per_vp(os, "anahy_observe_joins", s, &VpCounters::joins);
  emit_per_vp(os, "anahy_observe_tasks_run", s, &VpCounters::tasks_run);
  emit_per_vp(os, "anahy_observe_steal_attempts", s,
              &VpCounters::steal_attempts);
  emit_per_vp(os, "anahy_observe_steal_successes", s,
              &VpCounters::steal_successes);
  emit_per_vp(os, "anahy_observe_idle_spins", s, &VpCounters::idle_spins);
  emit_per_vp(os, "anahy_observe_idle_parks", s, &VpCounters::idle_parks);
  emit_per_vp(os, "anahy_observe_idle_park_ns", s, &VpCounters::idle_park_ns);
  emit_per_vp(os, "anahy_observe_deque_depth_peak", s,
              &VpCounters::deque_depth_peak);

  os << "anahy_observe_steal_success_ratio "
     << fmt_double(s.steal_success_ratio()) << "\n";
  os << "anahy_observe_idle_fraction " << fmt_double(s.idle_fraction())
     << "\n";
  os << "anahy_observe_avg_deque_depth " << fmt_double(s.avg_deque_depth())
     << "\n";
  for (std::size_t cls = 0; cls < s.ready_by_class.size(); ++cls) {
    os << "anahy_observe_ready_tasks{class=\""
       << class_name(static_cast<int>(cls)) << "\"} " << s.ready_by_class[cls]
       << "\n";
  }

  os << render_counters(counters);

  std::vector<Anomaly> anomalies = detect_anomalies(s);
  anomalies.insert(anomalies.end(), extra.begin(), extra.end());
  os << "anahy_observe_anomaly_count " << anomalies.size() << "\n";
  for (const Anomaly& a : anomalies) {
    os << "anahy_observe_anomaly{code=\"" << a.code << "\"} 1\n";
    os << "# " << a.code << ": " << a.detail << "\n";
  }
  return os.str();
}

}  // namespace anahy::observe
