#include "anahy/observe/telemetry.hpp"

namespace anahy::observe {

VpCounters& VpCounters::operator+=(const VpCounters& o) {
  forks += o.forks;
  joins += o.joins;
  tasks_run += o.tasks_run;
  steal_attempts += o.steal_attempts;
  steal_successes += o.steal_successes;
  idle_spins += o.idle_spins;
  idle_parks += o.idle_parks;
  idle_park_ns += o.idle_park_ns;
  deque_depth_sum += o.deque_depth_sum;
  deque_depth_samples += o.deque_depth_samples;
  deque_depth_peak = deque_depth_peak > o.deque_depth_peak
                         ? deque_depth_peak
                         : o.deque_depth_peak;
  return *this;
}

VpCounters VpCounters::minus(const VpCounters& earlier) const {
  VpCounters d;
  d.forks = forks - earlier.forks;
  d.joins = joins - earlier.joins;
  d.tasks_run = tasks_run - earlier.tasks_run;
  d.steal_attempts = steal_attempts - earlier.steal_attempts;
  d.steal_successes = steal_successes - earlier.steal_successes;
  d.idle_spins = idle_spins - earlier.idle_spins;
  d.idle_parks = idle_parks - earlier.idle_parks;
  d.idle_park_ns = idle_park_ns - earlier.idle_park_ns;
  d.deque_depth_sum = deque_depth_sum - earlier.deque_depth_sum;
  d.deque_depth_samples = deque_depth_samples - earlier.deque_depth_samples;
  d.deque_depth_peak = deque_depth_peak;  // peaks do not subtract
  return d;
}

double Snapshot::steal_success_ratio() const {
  if (total.steal_attempts == 0) return 1.0;
  return static_cast<double>(total.steal_successes) /
         static_cast<double>(total.steal_attempts);
}

double Snapshot::idle_fraction() const {
  if (elapsed_ns <= 0 || num_vps <= 0) return 0.0;
  const double wall =
      static_cast<double>(elapsed_ns) * static_cast<double>(num_vps);
  const double idle = static_cast<double>(total.idle_park_ns);
  const double f = idle / wall;
  return f > 1.0 ? 1.0 : f;
}

double Snapshot::avg_deque_depth() const {
  if (total.deque_depth_samples == 0) return 0.0;
  return static_cast<double>(total.deque_depth_sum) /
         static_cast<double>(total.deque_depth_samples);
}

Snapshot Snapshot::delta(const Snapshot& earlier) const {
  Snapshot d = *this;
  d.elapsed_ns = elapsed_ns - earlier.elapsed_ns;
  for (std::size_t i = 0; i < d.per_vp.size() && i < earlier.per_vp.size();
       ++i)
    d.per_vp[i] = per_vp[i].minus(earlier.per_vp[i]);
  d.total = VpCounters{};
  for (const VpCounters& c : d.per_vp) d.total += c;
  return d;
}

Telemetry::Telemetry(int num_vps)
    : num_vps_(num_vps < 1 ? 1 : num_vps),
      slots_(static_cast<std::size_t>(num_vps_) + 1) {}

void Telemetry::sample_deque_depth(int vp, std::size_t depth) {
  const auto d = static_cast<std::uint64_t>(depth);
  add(vp, kDepthSum, d);
  add(vp, kDepthSamples, 1);
  // Peak needs max semantics, not addition. Worker slots are single-writer
  // (plain read/compare/store); the shared external slot needs a CAS race.
  const std::size_t s = slot_of(vp);
  std::atomic<std::uint64_t>& peak = slots_[s].c[kDepthPeak];
  if (s != static_cast<std::size_t>(num_vps_)) {
    if (d > peak.load(std::memory_order_relaxed))
      peak.store(d, std::memory_order_relaxed);
    return;
  }
  std::uint64_t cur = peak.load(std::memory_order_relaxed);
  while (d > cur && !peak.compare_exchange_weak(cur, d,
                                                std::memory_order_relaxed,
                                                std::memory_order_relaxed)) {
  }
}

Snapshot Telemetry::snapshot() const {
  Snapshot s;
  s.epoch = snapshot_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  s.elapsed_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  s.num_vps = num_vps_;
  s.per_vp.resize(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    VpCounters& c = s.per_vp[i];
    c.forks = slot.c[kForks].load(std::memory_order_relaxed);
    c.joins = slot.c[kJoins].load(std::memory_order_relaxed);
    c.tasks_run = slot.c[kTasksRun].load(std::memory_order_relaxed);
    c.steal_attempts = slot.c[kStealAttempts].load(std::memory_order_relaxed);
    c.steal_successes =
        slot.c[kStealSuccesses].load(std::memory_order_relaxed);
    c.idle_spins = slot.c[kIdleSpins].load(std::memory_order_relaxed);
    c.idle_parks = slot.c[kIdleParks].load(std::memory_order_relaxed);
    c.idle_park_ns = slot.c[kIdleParkNs].load(std::memory_order_relaxed);
    c.deque_depth_sum = slot.c[kDepthSum].load(std::memory_order_relaxed);
    c.deque_depth_samples =
        slot.c[kDepthSamples].load(std::memory_order_relaxed);
    c.deque_depth_peak = slot.c[kDepthPeak].load(std::memory_order_relaxed);
    s.total += c;
  }
  return s;
}

}  // namespace anahy::observe
