#include "anahy/observe/profiler.hpp"

#include "anahy/trace.hpp"

namespace anahy::observe {

SpanProfiler::SpanProfiler(int num_vps)
    : num_vps_(num_vps < 1 ? 1 : num_vps),
      buffers_(static_cast<std::size_t>(num_vps_) + 1) {
  for (Buffer& b : buffers_) b.spans.reserve(1024);
}

void SpanProfiler::record(int vp, TaskId task, std::uint64_t job,
                          std::int64_t start_ns, std::int64_t dur_ns) {
  Buffer& b = buffers_[buffer_of(vp)];
  std::lock_guard lock(b.mu);
  b.spans.push_back({task, job, vp, start_ns, dur_ns});
}

void SpanProfiler::flush_into(TraceGraph& trace) {
  std::vector<Span> drained;
  for (Buffer& b : buffers_) {
    {
      std::lock_guard lock(b.mu);
      if (b.spans.empty()) continue;
      drained.swap(b.spans);
    }
    for (const Span& s : drained)
      trace.record_span(s.task, s.start_ns, s.dur_ns, s.vp);
    drained.clear();
  }
}

std::size_t SpanProfiler::pending() const {
  std::size_t n = 0;
  for (const Buffer& b : buffers_) {
    std::lock_guard lock(b.mu);
    n += b.spans.size();
  }
  return n;
}

}  // namespace anahy::observe
