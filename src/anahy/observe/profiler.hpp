// Span profiler: per-VP buffered task execution intervals.
//
// When Options::profile is on, the scheduler records every task's
// [begin, begin + dur) interval plus the executing VP and owning serve job
// into these buffers instead of taking the TraceGraph mutex per execution.
// Each worker VP appends to its own cache-line-padded buffer under an
// uncontended spinlock (taken only so flush can drain concurrently);
// external helping threads share one buffer. flush_into() folds the
// buffered spans back into the structural trace (TraceGraph::record_span),
// which is what `anahy-profile` turns into Chrome trace-event JSON and
// per-job work/span reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "anahy/types.hpp"

namespace anahy {
class TraceGraph;
}  // namespace anahy

namespace anahy::observe {

class SpanProfiler {
 public:
  struct Span {
    TaskId task = kInvalidTaskId;
    std::uint64_t job = 0;
    int vp = -1;  ///< executing VP slot (-1 = external thread)
    std::int64_t start_ns = -1;  ///< trace-epoch-relative
    std::int64_t dur_ns = 0;
  };

  explicit SpanProfiler(int num_vps);

  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  /// Appends one executed span. Callable from any thread; `vp` picks the
  /// buffer (out-of-range ids share the external buffer) and is also the
  /// value recorded in the span.
  void record(int vp, TaskId task, std::uint64_t job, std::int64_t start_ns,
              std::int64_t dur_ns);

  /// Drains every buffer into `trace` (TraceGraph::record_span). Safe to
  /// call repeatedly and concurrently with record(); spans recorded after
  /// the flush started land in the next flush.
  void flush_into(TraceGraph& trace);

  /// Spans currently buffered (monitoring/tests).
  [[nodiscard]] std::size_t pending() const;

 private:
  /// Tiny test-and-set lock (same idiom as the scheduler's registry
  /// shards): uncontended for worker buffers, cheap enough for the shared
  /// external one.
  class SpinLock {
   public:
    void lock() {
      while (flag_.exchange(true, std::memory_order_acquire)) {
        while (flag_.load(std::memory_order_relaxed))
          std::this_thread::yield();
      }
    }
    void unlock() { flag_.store(false, std::memory_order_release); }

   private:
    std::atomic<bool> flag_{false};
  };

  struct alignas(64) Buffer {
    mutable SpinLock mu;
    std::vector<Span> spans;
  };

  [[nodiscard]] std::size_t buffer_of(int vp) const {
    return vp >= 0 && vp < num_vps_ ? static_cast<std::size_t>(vp)
                                    : static_cast<std::size_t>(num_vps_);
  }

  const int num_vps_;
  std::vector<Buffer> buffers_;  // num_vps_ + 1; never resized after ctor
};

}  // namespace anahy::observe
