#include "anahy/policy_steal.hpp"

#include <algorithm>
#include <stdexcept>

#include "anahy/observe/telemetry.hpp"

namespace anahy {

WorkStealingPolicy::WorkStealingPolicy(int num_vps)
    : num_vps_(static_cast<std::size_t>(std::max(num_vps, 1))) {
  if (num_vps < 1)
    throw std::invalid_argument("WorkStealingPolicy needs >= 1 VP");
  deques_.reserve(num_vps_ * kClasses);
  for (std::size_t i = 0; i < num_vps_ * kClasses; ++i)
    deques_.push_back(std::make_unique<ChaseLevDeque<Task*>>());
  ready_ = std::vector<ReadyBank>(num_vps_ + 1);
}

WorkStealingPolicy::~WorkStealingPolicy() {
  // Tasks still queued at shutdown are never run; break their ready-guard
  // self-references so they are reclaimed. Destruction is single-threaded,
  // so owner-only pop_bottom is safe on every deque.
  for (auto& d : deques_) {
    while (auto e = d->pop_bottom()) (void)(*e)->take_ready_guard();
  }
}

std::size_t WorkStealingPolicy::slot(int vp) const {
  if (vp < 0 || static_cast<std::size_t>(vp) >= num_vps_)
    return num_vps_;  // external / main-flow slot
  return static_cast<std::size_t>(vp);
}

namespace {
bool still_claimable(const Task& t) {
  const TaskState s = t.state();
  return s == TaskState::kCreated || s == TaskState::kReady;
}

std::size_t class_of(const Task& t) {
  return static_cast<std::size_t>(t.priority());
}
}  // namespace

void WorkStealingPolicy::push(TaskPtr task, int vp) {
  const std::size_t s = slot(vp);
  const std::size_t cls = class_of(*task);
  bump_ready(s, cls, +1);
  // Depth is a statistical gauge: sample one push in kDepthSampleStride
  // per slot instead of paying the telemetry call on every push.
  const bool sample_depth = tele_ != nullptr && tick_push(s);
  if (s == num_vps_) {
    std::size_t depth;
    {
      std::lock_guard lock(external_mu_);
      // Amortized stale purge: join-inlining claims tasks in O(1) and
      // leaves their queue entries behind; drop the stale run at the back
      // so a join-heavy flow does not keep every finished task alive. Each
      // entry is dropped at most once, so this is O(1) amortized.
      auto& q = external_q_[cls];
      while (!q.empty() && !still_claimable(*q.back())) q.pop_back();
      q.push_back(std::move(task));
      depth = q.size();
    }
    if (sample_depth) tele_->sample_deque_depth(vp, depth);
    return;
  }
  Task* raw = task.get();
  raw->set_ready_guard(std::move(task));
  ChaseLevDeque<Task*>& d = deque(s, cls);
  // Same purge for the owner's deque (push is owner-only, so pop_bottom is
  // legal here). Only when the deque looks oversized: the common case pays
  // nothing, and a burst purge stops at the first still-claimable entry,
  // which goes straight back to the bottom.
  if (d.approx_size() >= kStalePurgeThreshold) {
    while (auto e = d.pop_bottom()) {
      Task* bottom = *e;
      if (still_claimable(*bottom)) {
        d.push_bottom(bottom);  // keep-alive guard still attached
        break;
      }
      (void)bottom->take_ready_guard();  // stale: release the keep-alive
    }
  }
  d.push_bottom(raw);
  if (sample_depth) tele_->sample_deque_depth(vp, d.approx_size());
}

TaskPtr WorkStealingPolicy::claim_deque_entry(Task* raw, bool stolen,
                                              std::size_t claimer) {
  // We removed the entry, so we clear the guard exactly once — whether the
  // claim wins (the guard becomes our strong reference) or the entry was
  // stale (a joiner inlined the task; drop the keep-alive and move on).
  TaskPtr task = raw->take_ready_guard();
  if (!raw->try_claim()) return nullptr;
  bump_ready(claimer, class_of(*raw), -1);
  if (stolen) {
    if (TaskContext* ctx = raw->context().get())
      ctx->note_steal();
  }
  return task;
}

TaskPtr WorkStealingPolicy::pop(int vp) {
  const std::size_t self = slot(vp);
  if (self == num_vps_) {
    for (std::size_t cls = 0; cls < kClasses; ++cls)
      if (TaskPtr t = pop_external(cls)) return t;
    return steal_from_others(self);
  }
  // Strict class order across the owner's deques: every ready high task on
  // this VP runs before any normal one (LIFO within a class).
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    ChaseLevDeque<Task*>& d = deque(self, cls);
    while (auto e = d.pop_bottom()) {  // owner end: LIFO
      if (TaskPtr t = claim_deque_entry(*e, /*stolen=*/false, self)) return t;
    }
  }
  return steal_from_others(self);
}

TaskPtr WorkStealingPolicy::pop_external(std::size_t cls) {
  std::lock_guard lock(external_mu_);
  auto& q = external_q_[cls];
  while (!q.empty()) {
    TaskPtr task = std::move(q.back());  // owner end: LIFO
    q.pop_back();
    if (task->try_claim()) {
      // pop_external is only reached by external callers (pop() with the
      // external slot), so the debit lands on the shared bank.
      bump_ready(num_vps_, cls, -1);
      return task;
    }
  }
  return nullptr;
}

TaskPtr WorkStealingPolicy::steal_external(std::size_t cls,
                                           std::size_t claimer) {
  std::lock_guard lock(external_mu_);
  auto& q = external_q_[cls];
  while (!q.empty()) {
    TaskPtr task = std::move(q.front());  // thief end: FIFO
    q.pop_front();
    if (task->try_claim()) {
      bump_ready(claimer, cls, -1);
      if (TaskContext* ctx = task->context().get())
        ctx->note_steal();
      return task;
    }
  }
  return nullptr;
}

TaskPtr WorkStealingPolicy::steal_class(std::size_t self, std::size_t cls) {
  const std::size_t n = num_vps_ + 1;  // victims include the external queue
  // Round-robin victim selection seeded by a shared counter: deterministic
  // enough for tests, fair enough for load balancing.
  const std::size_t start =
      rr_seed_.fetch_add(1, std::memory_order_relaxed) % n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t victim = (start + i) % n;
    if (victim == self) continue;
    steal_attempts_.fetch_add(1, std::memory_order_relaxed);
    // Per-thief telemetry: `self` is this policy's slot index, which is
    // exactly the telemetry slot (the external slot maps to "external").
    if (tele_ != nullptr)
      tele_->on_steal_attempt(static_cast<int>(self));
    if (victim == num_vps_) {
      if (TaskPtr t = steal_external(cls, self)) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        if (tele_ != nullptr)
          tele_->on_steal_success(static_cast<int>(self));
        return t;
      }
      continue;
    }
    ChaseLevDeque<Task*>& d = deque(victim, cls);
    for (;;) {
      auto e = d.steal_top();
      if (!e) {
        // steal_top conflates "empty" with "lost a CAS race"; a lost race
        // means another thief made progress, so retry while the victim
        // still looks non-empty instead of giving up on queued work.
        if (d.empty()) break;
        continue;
      }
      if (TaskPtr t = claim_deque_entry(*e, /*stolen=*/true, self)) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        if (tele_ != nullptr)
          tele_->on_steal_success(static_cast<int>(self));
        return t;
      }
    }
  }
  return nullptr;
}

TaskPtr WorkStealingPolicy::steal_from_others(std::size_t self) {
  // Class-major sweep: every victim's high deque is probed before any
  // victim's normal deque, so a thief never picks up batch work while a
  // high task is ready anywhere in the system.
  for (std::size_t cls = 0; cls < kClasses; ++cls)
    if (TaskPtr t = steal_class(self, cls)) return t;
  return nullptr;
}

bool WorkStealingPolicy::remove_specific(const TaskPtr& task, int vp) {
  // O(1) claim instead of scanning the deques: winning the state CAS is
  // what "being removed from the ready list" means in this policy; the
  // entry left behind is recognized as stale and dropped by its popper.
  if (task == nullptr || !task->try_claim()) return false;
  bump_ready(slot(vp), class_of(*task), -1);
  return true;
}

std::size_t WorkStealingPolicy::approx_size() const {
  std::int64_t n = 0;
  for (const ReadyBank& bank : ready_)
    for (const auto& c : bank.c) n += c.load(std::memory_order_relaxed);
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

std::array<std::size_t, kNumPriorities>
WorkStealingPolicy::approx_size_by_class() const {
  std::array<std::size_t, kNumPriorities> by_class{};
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    std::int64_t n = 0;
    for (const ReadyBank& bank : ready_)
      n += bank.c[cls].load(std::memory_order_relaxed);
    by_class[cls] = n > 0 ? static_cast<std::size_t>(n) : 0;
  }
  return by_class;
}

}  // namespace anahy
