// Public entry point: the Anahy runtime (executive kernel + VPs).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "anahy/scheduler.hpp"
#include "anahy/vp.hpp"

namespace anahy {

/// Runtime construction options.
struct Options {
  /// Number of virtual processors. When `main_participates` is true the
  /// program main flow counts as one of them — it is bound to the last VP
  /// slot and `num_vps - 1` worker threads are spawned (slots 0..n-2), so
  /// main's forks use its own lock-free ready deque; `num_vps == 1` then
  /// creates **no** system thread at all, which is the configuration behind
  /// the paper's "no thread is created, no execution overhead" observation
  /// (Tables 3 and 7).
  int num_vps = 4;  // the paper's library default

  /// Ready-list policy of the executive kernel.
  PolicyKind policy = PolicyKind::kWorkStealing;

  /// Record the execution graph (fork/join/continuation edges).
  bool trace = false;

  /// Whether the thread that constructed the runtime helps execute tasks
  /// while it is blocked in a join (the paper's model, where the main flow
  /// T0 is itself a task executed by a VP).
  bool main_participates = true;

  /// Run the determinacy-race detector (anahy::check; docs/CHECKING.md).
  /// Canonical with num_vps == 1 (serial elision), best-effort otherwise.
  /// Zero fork/join overhead when off.
  bool check = false;

  /// Execute every still-queued task before the runtime destructor stops
  /// the VPs. The historical behaviour (false) silently drops forked tasks
  /// that were never joined — acceptable for a batch program exiting, but
  /// a correctness bug for service-style users (anahy::serve relies on
  /// this being true so drain() means "all admitted work ran").
  bool drain_on_exit = false;

  /// Per-VP runtime telemetry (anahy::observe; docs/OBSERVE.md). On by
  /// default — a counter feed is one relaxed load+store on a VP-private
  /// cache line; set false for the measured-zero-overhead configuration.
  bool telemetry = true;

  /// Span profiling: record each task's execution interval and VP for
  /// Chrome-trace export (tools/anahy-profile) and per-job work/span
  /// analysis. Implies `trace`.
  bool profile = false;

  /// Reads ANAHY_NUM_VPS / ANAHY_POLICY / ANAHY_TRACE / ANAHY_CHECK /
  /// ANAHY_DRAIN_ON_EXIT / ANAHY_TELEMETRY / ANAHY_PROFILE from the
  /// environment, falling back to the defaults above.
  static Options from_env();
};

/// RAII runtime: starts the VPs on construction, stops and joins them on
/// destruction. All forked tasks should be joined before destruction;
/// tasks still queued at shutdown are simply never run (like a process
/// exiting with live POSIX threads) unless Options::drain_on_exit asks the
/// destructor to finish them first.
class Runtime {
 public:
  explicit Runtime(const Options& opts = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Fork: creates a ready task executing `body(input)`.
  TaskPtr fork(TaskBody body, void* input,
               const TaskAttributes& attr = TaskAttributes{},
               std::string label = {});

  /// Join: waits for `task` and stores its result pointer in `*result`
  /// (result may be null to discard). Returns an Error code.
  int join(const TaskPtr& task, void** result);

  /// Join by athread-style id.
  int join_by_id(TaskId id, void** result);

  /// Non-blocking join: kOk with the result when finished, kBusy when the
  /// task is still pending/running, kNotFound on a bad id or spent budget.
  int try_join(const TaskPtr& task, void** result);

  [[nodiscard]] const Options& options() const { return opts_; }
  [[nodiscard]] int num_vps() const { return opts_.num_vps; }
  [[nodiscard]] int worker_threads() const {
    return static_cast<int>(vps_.size());
  }

  /// Rejuvenation primitive (docs/REJUV.md): stops, joins and replaces the
  /// worker thread in VP slot `slot`. The old thread's exit flushes its
  /// per-thread pool cache back to the system (FreeCache teardown), which
  /// is the arena-recycle half of a rejuvenation cycle; ready tasks queued
  /// on the slot's deque survive — the deque belongs to the slot, not the
  /// thread — so the replacement picks them up where the old thread left
  /// off. Blocks until the old thread has exited; callers restart one VP at
  /// a time so the server stays live. Returns false for an out-of-range
  /// slot (e.g. the main-participates slot, which has no worker thread).
  bool restart_vp(int slot);

  [[nodiscard]] Scheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] RuntimeStats::Snapshot stats() const {
    return scheduler_->stats_snapshot();
  }
  [[nodiscard]] Scheduler::ListSnapshot lists() const {
    return scheduler_->lists();
  }
  /// Per-VP telemetry snapshot (counters all zero when Options::telemetry
  /// is off; ready_by_class is always live).
  [[nodiscard]] observe::Snapshot observe_snapshot() const {
    return scheduler_->observe_snapshot();
  }
  /// The trace graph, with any buffered profiler spans flushed in first so
  /// callers always see complete execution intervals.
  [[nodiscard]] TraceGraph& trace() {
    scheduler_->flush_profile();
    return scheduler_->trace();
  }

  /// Global runtime used by the C-style athread API. Null until
  /// athread_init (or set_global) is called.
  static Runtime* global();
  static void set_global(std::unique_ptr<Runtime> rt);
  static void clear_global();

 private:
  Options opts_;
  std::unique_ptr<Scheduler> scheduler_;
  std::vector<std::unique_ptr<VirtualProcessor>> vps_;
};

}  // namespace anahy
