// Virtual processor: one system thread running the scheduler loop.
//
// Paper §2.3: the executive kernel bounds the number of simultaneously
// executing application activities by the number of active virtual
// processors; each VP executes one sequential flow at a time and, when
// idle, is reactivated as soon as some activity becomes ready.
#pragma once

#include <cstdint>
#include <thread>

#include "anahy/scheduler.hpp"

namespace anahy {

class VirtualProcessor {
 public:
  /// Starts the VP thread immediately. `index` is the 0-based VP id used
  /// for scheduling locality and statistics.
  VirtualProcessor(Scheduler& scheduler, int index);

  /// Requests stop and joins the thread.
  ~VirtualProcessor();

  VirtualProcessor(const VirtualProcessor&) = delete;
  VirtualProcessor& operator=(const VirtualProcessor&) = delete;

  [[nodiscard]] int index() const { return index_; }

  /// Number of tasks this VP has executed from its main loop.
  [[nodiscard]] std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Asks the VP to exit its loop (idempotent; destructor also calls it).
  void request_stop() { thread_.request_stop(); }

 private:
  void loop(const std::stop_token& st);

  Scheduler& scheduler_;
  const int index_;
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::jthread thread_;  // last member: starts after everything is ready
};

}  // namespace anahy
