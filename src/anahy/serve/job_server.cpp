#include "anahy/serve/job_server.hpp"

#include <algorithm>
#include <chrono>

#include "anahy/check/detector.hpp"

namespace anahy::serve {

JobServer::JobServer(ServerOptions opts)
    : opts_(std::move(opts)), aging_(opts_.aging_capacity) {
  if (opts_.max_pending == 0) opts_.max_pending = 1;
  // A service must never drop admitted work at teardown, and the thread
  // constructing the server is a client, not a VP — it waits on handles,
  // not joins, so binding it to a VP slot would leave that slot idle.
  opts_.runtime.drain_on_exit = true;
  opts_.runtime.main_participates = false;
  if (opts_.check) opts_.runtime.check = true;
  rt_ = std::make_unique<Runtime>(opts_.runtime);
  if (opts_.rejuv_admission.budget.total_bytes > 0)
    admission_ =
        std::make_unique<rejuv::AdmissionController>(opts_.rejuv_admission);
  engine_ = std::make_unique<rejuv::RejuvEngine>(*rt_);
  policy_ = rejuv::RejuvPolicy(opts_.rejuv_policy);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  if (opts_.rejuv_period_ns > 0)
    rejuv_thread_ = std::thread([this] { rejuv_policy_loop(); });
}

JobServer::~JobServer() {
  // The policy thread goes first: it calls rejuvenate(), which restarts
  // VPs, and must never race the runtime teardown below.
  if (rejuv_thread_.joinable()) {
    {
      std::lock_guard lock(rejuv_mu_);
      rejuv_stop_ = true;
    }
    rejuv_cv_.notify_all();
    rejuv_thread_.join();
  }
  // Unbounded shutdown: every admitted handle resolves (actives are
  // cancelled, so their descendants skip and the roots finish fast).
  shutdown(/*deadline_ns=*/-1);
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  dispatch_cv_.notify_all();
  admit_cv_.notify_all();
  dispatcher_.join();
  rt_.reset();  // drain_on_exit runs any straggler tasks before VP stop
}

JobHandle JobServer::rejected_handle(JobId id, JobSpec spec, int error) {
  auto job = std::make_shared<Job>(id, std::move(spec), TaskContext::now_ns());
  job->complete(error, nullptr, {});
  return JobHandle(std::move(job));
}

JobHandle JobServer::submit(JobSpec spec) {
  const Priority cls = spec.priority;
  if (!spec.body || (spec.check && !opts_.check))
    return rejected_handle(0, std::move(spec), kInvalid);

  // Memory-aware admission (docs/REJUV.md). The fast path is one null
  // test plus one relaxed load of the controller's cached verdict — the
  // snapshot-and-score work happens at refresh points, never here.
  rejuv::Decision decision = rejuv::Decision::kAdmit;
  if (admission_ != nullptr) {
    decision = admission_->admit(cls);
    if (decision == rejuv::Decision::kReject) {
      rejuv_shed_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lock(mu_);
      ++agg_.of(cls).rejected;
      return rejected_handle(0, std::move(spec), kOverloaded);
    }
  }

  std::unique_lock lock(mu_);
  if (opts_.admission == ServerOptions::Admission::kBlock)
    admit_cv_.wait(lock, [&] {
      return draining_ || pending_count_ < opts_.max_pending;
    });
  if (draining_) {
    ++agg_.of(cls).rejected;
    lock.unlock();
    return rejected_handle(0, std::move(spec), kPerm);
  }
  if (pending_count_ >= opts_.max_pending) {
    ++agg_.of(cls).rejected;
    lock.unlock();
    return rejected_handle(0, std::move(spec), kOverloaded);
  }

  const JobId id = next_id_++;
  const std::int64_t now = TaskContext::now_ns();
  auto job = std::make_shared<Job>(id, std::move(spec), now);
  if (decision == rejuv::Decision::kDefer) {
    // Admitted but held: the dispatcher skips this batch job while the
    // budget stays over, up to a bounded deadline. The job's own timeout
    // caps the hold first — deferral respects deadlines, a job is never
    // parked past the point where it could still finish in time.
    std::int64_t until = now + admission_->options().max_defer_ns;
    if (job->context()->deadline_ns >= 0)
      until = std::min(until, job->context()->deadline_ns);
    job->set_defer_deadline(until);
    rejuv_deferred_.fetch_add(1, std::memory_order_relaxed);
  }
  pending_[static_cast<std::size_t>(cls)].push_back(job);
  ++pending_count_;
  ++agg_.of(cls).submitted;
  dispatch_cv_.notify_one();
  return JobHandle(std::move(job));
}

void JobServer::dispatcher_loop() {
  for (;;) {
    JobPtr job;
    {
      std::unique_lock lock(mu_);
      dispatch_cv_.wait(lock, [&] {
        return stop_ ||
               (pending_count_ > 0 &&
                (opts_.max_active == 0 || active_.size() < opts_.max_active));
      });
      if (stop_) return;
      // Highest class first; FIFO within a class (admission order). A
      // batch head admitted under deferral (docs/REJUV.md) is *held* —
      // skipped, not popped — while the memory budget stays over and its
      // defer deadline has not passed; draining cancels all holds (drain
      // means "finish the work", pressure or not).
      const std::int64_t now = TaskContext::now_ns();
      for (std::size_t c = 0; c < pending_.size(); ++c) {
        auto& q = pending_[c];
        if (q.empty()) continue;
        if (static_cast<Priority>(c) == Priority::kBatch &&
            admission_ != nullptr && !draining_ &&
            admission_->over(Priority::kBatch) &&
            q.front()->defer_deadline() > now)
          continue;
        job = std::move(q.front());
        q.pop_front();
        break;
      }
      if (job == nullptr) {
        // Everything pending is held batch work: poll on a short tick so
        // a budget clear (the controller refreshes on job completions,
        // aging samples and rejuvenation cycles) or an expiring defer
        // deadline is noticed promptly.
        dispatch_cv_.wait_for(lock, std::chrono::milliseconds{5});
        continue;
      }
      --pending_count_;
      active_.emplace(job->id(), job);
      admit_cv_.notify_one();
    }
    dispatch(job);
  }
}

void JobServer::dispatch(const JobPtr& job) {
  TaskAttributes attr;
  attr.set_join_number(0);  // detached: completion flows through the handle
  attr.set_checked(job->checked());
  JobPtr j = job;
  rt_->scheduler().create_task(
      [this, j](void*) -> void* {
        run_root(j);
        return nullptr;
      },
      job->input(), attr, job->label(), job->context());
}

void JobServer::run_root(const JobPtr& job) {
  job->mark_running();
  const TaskContextPtr& ctx = job->context();
  int err = kOk;
  void* out = nullptr;
  if (ctx->cancel_requested()) {
    err = kAborted;
  } else if (ctx->expired()) {
    err = kTimedOut;
  } else {
    TaskBody body = job->take_body();
    // Containment: the root body runs inside this wrapper, not under the
    // scheduler's catch, so a throw here must be swallowed the same way a
    // descendant's is — the process survives and the job reports kFaulted.
    try {
      out = body(job->input());
    } catch (const std::exception& e) {
      ctx->note_fault(e.what());
    } catch (...) {
      ctx->note_fault("non-standard exception");
    }
    // A fault anywhere in the DAG (root above, or a descendant contained
    // by Scheduler::run_task) outranks the cancel it implies; otherwise
    // cancellation/expiry may have landed mid-run, descendants were then
    // skipped, and the partial result must not report kOk.
    if (ctx->faulted()) err = kFaulted;
    else if (ctx->cancel_requested()) err = kAborted;
    else if (ctx->expired()) err = kTimedOut;
  }

  std::vector<check::RaceReport> races;
  if (job->checked()) {
    if (check::Detector* d = rt_->scheduler().detector())
      races = d->reports_for_job(job->id());
  }
  // Resolve, account, publish, free the slot — in that order. The reply
  // on_complete ships must find the job already counted (a stats scrape
  // can synchronize with it), and drain()/shutdown() promise that every
  // callback has finished, so the active_ erase (what idle_cv_ gates on)
  // comes last.
  const bool first =
      job->resolve(err, err == kOk ? out : nullptr, std::move(races),
                   err == kFaulted ? ctx->fault_message() : std::string{});
  {
    std::lock_guard lock(mu_);
    account_locked(job->result(), job->priority());
  }
  if (first) job->publish();
  finish_job(job);
}

void JobServer::finish_job(const JobPtr& job) {
  // Refresh the admission verdicts at the moment pressure just moved
  // (this job's pool blocks were credited back). Outside mu_: the
  // controller is its own synchronization domain.
  if (admission_ != nullptr) admission_->refresh(pool_snapshot());
  std::lock_guard lock(mu_);
  active_.erase(job->id());
  dispatch_cv_.notify_one();
  idle_cv_.notify_all();
}

void JobServer::account_locked(const JobResult& r, Priority cls) {
  ServerStats::ClassStats& c = agg_.of(cls);
  switch (r.error) {
    case kOk: ++c.completed; break;
    case kTimedOut: ++c.timed_out; break;
    case kFaulted: ++c.faulted; break;
    case kMigrated: ++c.migrated; break;
    default: ++c.aborted; break;
  }
  c.queue_wait_ns_sum += r.stats.queue_wait_ns;
  c.queue_wait_ns_max = std::max(c.queue_wait_ns_max, r.stats.queue_wait_ns);
  c.exec_ns_sum += r.stats.exec_ns;
  c.tasks += r.stats.tasks_executed;
  c.steals += r.stats.steals;
  c.pool_allocs += r.stats.pool_allocs;
  c.pool_peak_bytes = std::max(c.pool_peak_bytes, r.stats.pool_peak_bytes);
  c.pool_leaked_bytes += r.stats.pool_live_bytes;
  // Feed the observed peak into the admission budget's per-class history
  // (EWMA, leaf lock — safe under mu_).
  if (admission_ != nullptr)
    admission_->note_job_peak(cls, r.stats.pool_peak_bytes);
}

std::size_t JobServer::export_queued(
    Priority cls, std::size_t max,
    const std::function<bool(const Job&)>& eligible) {
  std::vector<JobPtr> out;
  {
    std::lock_guard lock(mu_);
    if (draining_ || max == 0) return 0;
    auto& q = pending_[static_cast<std::size_t>(cls)];
    // Newest-first: the back of the FIFO is farthest from local dispatch,
    // so migrating it takes the work with the longest expected local wait.
    for (std::size_t i = q.size(); i-- > 0 && out.size() < max;) {
      const JobPtr& j = q[i];
      if (!j->exportable() || j->context()->cancel_requested()) continue;
      if (eligible && !eligible(*j)) continue;
      out.push_back(j);
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
    }
    pending_count_ -= out.size();
  }
  if (out.empty()) return 0;
  // Same resolve -> account -> publish order as run_root: the on_complete
  // that re-ships the job must find it already counted as migrated.
  for (const JobPtr& j : out) {
    const bool first = j->resolve(kMigrated, nullptr, {});
    {
      std::lock_guard lock(mu_);
      account_locked(j->result(), j->priority());
    }
    if (first) j->publish();
  }
  admit_cv_.notify_all();   // queue space freed
  idle_cv_.notify_all();    // a racing drain()'s predicate may now hold
  return out.size();
}

void JobServer::drain() {
  std::unique_lock lock(mu_);
  draining_ = true;
  admit_cv_.notify_all();  // blocked submitters resolve kPerm
  idle_cv_.wait(lock, [&] { return pending_count_ == 0 && active_.empty(); });
}

bool JobServer::shutdown(std::int64_t deadline_ns) {
  std::vector<JobPtr> doomed;
  {
    std::lock_guard lock(mu_);
    draining_ = true;
    admit_cv_.notify_all();
    for (auto& q : pending_) {
      for (JobPtr& j : q) doomed.push_back(std::move(j));
      q.clear();
    }
    pending_count_ = 0;
    // Running jobs: stop their not-yet-started descendants; the roots
    // observe the cancel and resolve kAborted (or finish first — fine).
    for (auto& [id, j] : active_) j->cancel();
  }
  // Resolve never-dispatched jobs outside the server lock, account them,
  // then publish — the on_complete callbacks (which may call back into the
  // server) and released waiters must observe stats that already include
  // the abort.
  for (const JobPtr& j : doomed) {
    j->cancel();
    (void)j->resolve(kAborted, nullptr, {});
  }
  {
    std::lock_guard lock(mu_);
    for (const JobPtr& j : doomed) account_locked(j->result(), j->priority());
  }
  for (const JobPtr& j : doomed) j->publish();

  // A concurrent drain() may already be parked on idle_cv_ with active_
  // empty: clearing the pending queues made its predicate true, but the
  // doomed path above never notified it — without this wake it hangs
  // forever (regression test: tests/serve/test_serve_races.cpp). Notify
  // only after the doomed handles published, so drain's "every callback
  // finished" promise still holds.
  idle_cv_.notify_all();

  std::unique_lock lock(mu_);
  const auto idle = [&] { return pending_count_ == 0 && active_.empty(); };
  if (deadline_ns < 0) {
    idle_cv_.wait(lock, idle);
    return true;
  }
  return idle_cv_.wait_for(lock, std::chrono::nanoseconds{deadline_ns}, idle);
}

ServerStats JobServer::stats() const {
  const PoolSnapshot pool = pool_snapshot();
  std::lock_guard lock(mu_);
  ServerStats s = agg_;
  s.pending = pending_count_;
  s.active = active_.size();
  for (std::size_t c = 0; c < kNumPriorities; ++c)
    s.by_class[c].pending = pending_[c].size();
  s.pool_live_bytes = pool.live_bytes;
  s.pool_arena_bytes = pool.arena_bytes;
  for (std::size_t c = 0; c < pool_detail::kNumClasses; ++c)
    s.pool_class_outstanding[c] = pool.classes[c].outstanding;
  return s;
}

void JobServer::record_aging_sample() {
  const PoolSnapshot pool = pool_snapshot();
  const observe::Snapshot obs = rt_->observe_snapshot();

  aging::Cumulative cum;
  cum.t_ns = TaskContext::now_ns();
  cum.heap_bytes = pool.live_bytes;
  cum.arena_bytes = pool.arena_bytes;
  cum.rss_bytes = aging::rss_bytes_now();
  for (const std::uint64_t r : obs.ready_by_class) cum.ready_tasks += r;
  for (std::size_t c = 0; c < pool_detail::kNumClasses; ++c)
    cum.class_outstanding[c] = pool.classes[c].outstanding;
  {
    std::lock_guard lock(mu_);
    for (const ServerStats::ClassStats& c : agg_.by_class) {
      cum.jobs_resolved +=
          c.completed + c.timed_out + c.aborted + c.faulted + c.migrated;
      cum.queue_wait_ns_sum += c.queue_wait_ns_sum;
      cum.exec_ns_sum += c.exec_ns_sum;
    }
  }
  {
    std::lock_guard lock(aging_mu_);
    aging_.sample(cum);
  }
  // An aging sample is a natural admission refresh point (the scrape
  // cadence bounds how stale the cached verdicts can get even on an idle
  // server with no completions).
  if (admission_ != nullptr) admission_->refresh(pool);
}

aging::Series JobServer::aging_series() const {
  std::lock_guard lock(aging_mu_);
  return aging_.series();
}

aging::Analysis JobServer::aging_report(const aging::AnalyzeOptions& opt) const {
  return aging::analyze(aging_series(), opt);
}

rejuv::CycleReport JobServer::rejuvenate() {
  const rejuv::CycleReport rep = engine_->cycle();
  rejuv_reaped_tasks_.fetch_add(rep.tasks_reaped, std::memory_order_relaxed);
  rejuv_reclaimed_bytes_.fetch_add(rep.arena_reclaimed(),
                                   std::memory_order_relaxed);
  {
    // ANAHY-A007: make the cycle visible on the series timeline so an
    // offline analyst can line the heap sawtooth up with its cause.
    std::lock_guard lock(aging_mu_);
    aging_.annotate(TaskContext::now_ns(), aging::code::kRejuvenation,
                    "rejuvenation performed: " + rep.summary());
  }
  // The cycle just moved a lot of memory; re-score admissions now rather
  // than waiting for the next completion.
  if (admission_ != nullptr) admission_->refresh(pool_snapshot());
  dispatch_cv_.notify_one();  // held batch work may be dispatchable again
  return rep;
}

JobServer::RejuvCounters JobServer::rejuv_counters() const {
  RejuvCounters c;
  c.cycles = engine_->cycles();
  c.deferred = rejuv_deferred_.load(std::memory_order_relaxed);
  c.shed = rejuv_shed_.load(std::memory_order_relaxed);
  c.reaped_tasks = rejuv_reaped_tasks_.load(std::memory_order_relaxed);
  c.reclaimed_bytes = rejuv_reclaimed_bytes_.load(std::memory_order_relaxed);
  return c;
}

void JobServer::rejuv_policy_loop() {
  const auto period = std::chrono::nanoseconds{opts_.rejuv_period_ns};
  std::unique_lock lock(rejuv_mu_);
  for (;;) {
    if (rejuv_cv_.wait_for(lock, period, [&] { return rejuv_stop_; })) return;
    lock.unlock();
    // Sample first so the window the policy sees includes the present.
    record_aging_sample();
    const aging::Analysis a = aging_report(opts_.rejuv_policy.analyze);
    const rejuv::RejuvPolicy::Verdict v =
        policy_.evaluate(a, TaskContext::now_ns());
    if (v.trip) (void)rejuvenate();
    if (admission_ != nullptr) admission_->refresh(pool_snapshot());
    lock.lock();
  }
}

std::string JobServer::metrics_text() const {
  return stats().to_metrics_text();
}

std::vector<observe::Anomaly> deadline_risk_anomalies(
    const ServerStats& s, std::size_t max_pending) {
  std::vector<observe::Anomaly> out;
  std::uint64_t timed_out = 0;
  for (const auto& c : s.by_class) timed_out += c.timed_out;
  if (timed_out > 0) {
    out.push_back({observe::anomaly_code::kDeadlineRisk,
                   "deadline-risk: " + std::to_string(timed_out) +
                       " job(s) already timed out"});
  }
  const auto threshold = static_cast<std::uint64_t>(
      kDeadlineRiskPendingFraction * static_cast<double>(max_pending));
  if (max_pending > 0 && threshold > 0 && s.pending >= threshold) {
    out.push_back({observe::anomaly_code::kDeadlineRisk,
                   "deadline-risk: pending backlog " +
                       std::to_string(s.pending) + " >= 80% of max_pending " +
                       std::to_string(max_pending)});
  }
  return out;
}

std::string JobServer::observe_text() const {
  const observe::Snapshot snap = rt_->observe_snapshot();
  const std::vector<observe::Anomaly> extra =
      deadline_risk_anomalies(stats(), opts_.max_pending);
  std::vector<observe::ExtraCounter> pool =
      aging::pool_extra_counters(pool_snapshot());
  // Rejuvenation transitions as counter rows (docs/REJUV.md): cycles,
  // load shedding and reclaimed memory, scrapeable next to the pool
  // gauges they act on.
  const RejuvCounters rc = rejuv_counters();
  pool.push_back({"anahy_rejuv_cycles_total", "", rc.cycles});
  pool.push_back({"anahy_rejuv_deferred_total", "", rc.deferred});
  pool.push_back({"anahy_rejuv_shed_total", "", rc.shed});
  pool.push_back({"anahy_rejuv_reaped_tasks_total", "", rc.reaped_tasks});
  pool.push_back(
      {"anahy_rejuv_reclaimed_bytes_total", "", rc.reclaimed_bytes});
  // Per-class admission verdicts (docs/MESH.md): a mesh router parses
  // these rows out of the kStatsReply snapshot and shrinks the routing
  // weight of a node whose budget says a class is over — "budget verdicts
  // feed routing weight". The score is scaled to milli-units so the row
  // stays an integer counter like every other exposition line.
  if (admission_ != nullptr) {
    for (std::size_t c = 0; c < kNumPriorities; ++c) {
      const auto cls = static_cast<Priority>(c);
      pool.push_back({"anahy_admission_over",
                      std::string("class=\"") + to_string(cls) + "\"",
                      admission_->over(cls) ? 1u : 0u});
      pool.push_back({"anahy_admission_score_milli",
                      std::string("class=\"") + to_string(cls) + "\"",
                      static_cast<std::uint64_t>(
                          std::max(0.0, admission_->last_score(cls)) * 1000.0)});
    }
  }
  return observe::render_text(snap, extra, pool) + metrics_text();
}

}  // namespace anahy::serve
