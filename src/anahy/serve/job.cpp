#include "anahy/serve/job.hpp"

#include <chrono>

namespace anahy::serve {

Job::Job(JobId id, JobSpec spec, std::int64_t submit_ns)
    : id_(id), spec_(std::move(spec)), submit_ns_(submit_ns) {
  ctx_ = std::make_shared<TaskContext>();
  ctx_->job = id_;
  ctx_->priority = spec_.priority;
  ctx_->checked = spec_.check;
  if (spec_.timeout_ns >= 0) ctx_->deadline_ns = submit_ns_ + spec_.timeout_ns;
}

JobState Job::state() const {
  std::lock_guard lock(mu_);
  return state_;
}

int Job::wait() {
  // Waiters gate on publish(), not on the kDone flip: between resolve()
  // and publish() the server is still accounting the result, and a waiter
  // released early could read stats that miss its own job.
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return published_; });
  return result_.error;
}

bool Job::wait_for_ns(std::int64_t timeout_ns) {
  std::unique_lock lock(mu_);
  return cv_.wait_for(lock, std::chrono::nanoseconds{timeout_ns},
                      [&] { return published_; });
}

void Job::mark_running() {
  std::lock_guard lock(mu_);
  if (state_ == JobState::kQueued) state_ = JobState::kRunning;
  start_ns_ = TaskContext::now_ns();
}

bool Job::resolve(int error, void* value,
                  std::vector<check::RaceReport> races, std::string message) {
  std::lock_guard lock(mu_);
  if (state_ == JobState::kDone) return false;  // first resolution wins
  const std::int64_t now = TaskContext::now_ns();
  result_.id = id_;
  result_.error = error;
  result_.value = value;
  result_.message = std::move(message);
  result_.races = std::move(races);
  // An aborted-while-queued job never ran: its whole lifetime is queue
  // wait. Otherwise wait ends at the root task's start stamp.
  const std::int64_t started = start_ns_ >= 0 ? start_ns_ : now;
  result_.stats.queue_wait_ns = started - submit_ns_;
  result_.stats.exec_ns = start_ns_ >= 0 ? now - start_ns_ : 0;
  const TaskContext::CounterTotals totals = ctx_->totals();
  result_.stats.tasks_created = totals.tasks_created;
  result_.stats.tasks_executed = totals.tasks_executed;
  result_.stats.tasks_cancelled = totals.tasks_cancelled;
  result_.stats.steals = totals.steals;
  result_.stats.pool_allocs = totals.pool_allocs;
  result_.stats.pool_peak_bytes = totals.pool_peak_bytes;
  result_.stats.pool_live_bytes = totals.pool_live_bytes;
  state_ = JobState::kDone;
  // From here on nobody legitimately joins this job's tasks by id, which
  // is what licenses the rejuvenation reaper to retire any block the job
  // stranded in the registry (Scheduler::reap_orphans).
  ctx_->mark_resolved();
  return true;
}

void Job::publish() {
  std::function<void(const JobResult&)> callback;
  {
    std::lock_guard lock(mu_);
    if (state_ != JobState::kDone || published_) return;
    published_ = true;
    callback = std::move(spec_.on_complete);
  }
  cv_.notify_all();
  // Outside the job mutex: the callback may inspect the handle freely.
  if (callback) callback(result_);
}

void Job::complete(int error, void* value,
                   std::vector<check::RaceReport> races, std::string message) {
  if (resolve(error, value, std::move(races), std::move(message))) publish();
}

}  // namespace anahy::serve
