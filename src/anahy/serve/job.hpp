// anahy::serve jobs: what clients submit and the handle they get back.
//
// A *job* is one unit of client work: a root task body plus scheduling
// metadata (priority class, optional timeout, per-job race checking). The
// server forks the body as a detached root task carrying a TaskContext, so
// every descendant fork inherits the job's identity, class and
// cancellation state without the client threading anything through.
//
// The submit() -> JobHandle contract is the subsystem's core invariant:
// every admitted handle resolves exactly once — with the body's result, or
// with kOverloaded / kTimedOut / kAborted / kPerm — no matter how the
// server goes down (drain, deadline shutdown, or plain destruction).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "anahy/check/check.hpp"
#include "anahy/task.hpp"
#include "anahy/task_context.hpp"
#include "anahy/types.hpp"

namespace anahy::serve {

/// Server-scoped job identifier (1-based; 0 means "no job" everywhere the
/// runtime records job ids — traces, race reports, contexts).
using JobId = std::uint64_t;

/// Lifecycle of a job inside the server.
enum class JobState : std::uint8_t {
  kQueued,   ///< admitted, waiting in the pending queue
  kRunning,  ///< root task dispatched into the runtime
  kDone,     ///< resolved; JobResult is final
};

[[nodiscard]] constexpr const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
  }
  return "?";
}

/// Per-job accounting, filled at completion from the job's TaskContext.
struct JobStats {
  std::int64_t queue_wait_ns = 0;  ///< admission -> root task start
  std::int64_t exec_ns = 0;        ///< root task start -> completion (span)
  std::uint64_t tasks_created = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_cancelled = 0;  ///< bodies skipped (timeout/abort)
  std::uint64_t steals = 0;           ///< job tasks migrated between VPs
  // Task-pool memory charged to the job (anahy::aging; docs/AGING.md).
  std::uint64_t pool_allocs = 0;      ///< pool blocks allocated for the job
  std::uint64_t pool_peak_bytes = 0;  ///< peak concurrent pool bytes (bound)
  /// Pool bytes still live when the job resolved. Non-zero is normal while
  /// descendants finish publishing, but a job whose blocks never return is
  /// exactly what ANAHY-A001/A004 flag.
  std::uint64_t pool_live_bytes = 0;
};

/// Final outcome of a job. `error` uses the anahy::Error numbering:
/// kOk, kOverloaded (rejected at admission), kTimedOut (deadline elapsed),
/// kAborted (cancelled or server shut down), kPerm (submitted after
/// drain), kInvalid (malformed spec), kFaulted (a task body of the job
/// threw — the process survives and `message` carries the exception text).
struct JobResult {
  JobId id = 0;
  int error = kOk;
  void* value = nullptr;  ///< the root body's return value (kOk only)
  std::string message;    ///< diagnostic detail (kFaulted: exception text)
  JobStats stats;
  /// Determinacy races attributed to this job (JobSpec::check; the stable
  /// ANAHY-R001 reports of the anahy::check detector).
  std::vector<check::RaceReport> races;
};

/// What a client submits.
struct JobSpec {
  TaskBody body;          ///< root task body (required)
  void* input = nullptr;  ///< argument passed to the body
  Priority priority = Priority::kNormal;
  /// Relative timeout from admission; negative = none. On expiry the job's
  /// not-yet-started descendants are cancelled and the job resolves with
  /// kTimedOut.
  std::int64_t timeout_ns = -1;
  /// Run the determinacy-race detector over this job's tasks and attach
  /// the reports to the JobResult. Requires a server built with
  /// ServerOptions::check (rejected with kInvalid otherwise).
  bool check = false;
  std::string label;  ///< trace/debug label of the root task
  /// The job can leave this server while still queued: its body is
  /// rebuildable elsewhere from (function name, payload) — true only for
  /// wire-submitted jobs, set by the serve front-end. An exported job
  /// resolves locally with kMigrated (the body never ran here) and the
  /// mesh layer re-ships it (JobServer::export_queued, docs/MESH.md).
  bool exportable = false;
  /// Invoked exactly once when the job resolves, from the completing
  /// thread (a VP, or the shutting-down thread for aborted jobs). Must not
  /// block on the server.
  std::function<void(const JobResult&)> on_complete;
};

/// Internal control block shared by the server and every JobHandle copy.
/// Clients only touch it through JobHandle.
class Job {
 public:
  Job(JobId id, JobSpec spec, std::int64_t submit_ns);

  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] Priority priority() const { return ctx_->priority; }
  [[nodiscard]] const TaskContextPtr& context() const { return ctx_; }
  [[nodiscard]] std::int64_t submit_ns() const { return submit_ns_; }

  [[nodiscard]] JobState state() const;

  /// Blocks until the job resolves; returns JobResult::error.
  int wait();

  /// Bounded wait; false on timeout (job unresolved).
  bool wait_for_ns(std::int64_t timeout_ns);

  /// Requests cancellation: queued jobs resolve kAborted without running,
  /// running jobs stop starting descendant tasks and resolve kAborted.
  void cancel() { ctx_->cancel(); }

  /// Final result; only meaningful once state() == kDone.
  [[nodiscard]] const JobResult& result() const { return result_; }

  // --- server-side hooks -------------------------------------------------

  /// Stamps the root task's start (dispatch -> execution transition).
  void mark_running();

  /// Resolves the job exactly once: fills the result (stats snapshot from
  /// the context, races as given), flips state to kDone, wakes waiters and
  /// fires on_complete. Later calls are no-ops (first resolution wins),
  /// which is what makes shutdown racing normal completion safe.
  /// Equivalent to `if (resolve(...)) publish();`.
  void complete(int error, void* value, std::vector<check::RaceReport> races,
                std::string message = {});

  /// First half of complete(): fills the result and flips state to kDone
  /// WITHOUT waking waiters or firing on_complete. The server accounts the
  /// result between resolve() and publish(), so no observer — a completion
  /// callback shipping a reply over the wire, or a scraper racing that
  /// reply — can see a resolved job the stats don't know about yet.
  /// Returns false when the job was already resolved (the winner
  /// publishes).
  [[nodiscard]] bool resolve(int error, void* value,
                             std::vector<check::RaceReport> races,
                             std::string message = {});

  /// Second half of complete(): wakes waiters and fires on_complete.
  /// Idempotent; a no-op until a resolve() has won.
  void publish();

  /// Moves the user body out for dispatch (server only, called once).
  [[nodiscard]] TaskBody take_body() { return std::move(spec_.body); }
  [[nodiscard]] void* input() const { return spec_.input; }
  [[nodiscard]] const std::string& label() const { return spec_.label; }
  [[nodiscard]] bool checked() const { return spec_.check; }
  [[nodiscard]] bool exportable() const { return spec_.exportable; }

  /// Rejuvenation deferral (docs/REJUV.md): a batch job admitted while the
  /// memory budget was over is *held* in the pending queue — the
  /// dispatcher skips it — until the pressure clears or this deadline
  /// passes (negative = never deferred). Written once at submit, under the
  /// server lock; read by the dispatcher under the same lock.
  void set_defer_deadline(std::int64_t ns) { defer_deadline_ns_ = ns; }
  [[nodiscard]] std::int64_t defer_deadline() const {
    return defer_deadline_ns_;
  }

 private:
  const JobId id_;
  JobSpec spec_;
  const std::int64_t submit_ns_;
  std::int64_t start_ns_ = -1;
  std::int64_t defer_deadline_ns_ = -1;
  TaskContextPtr ctx_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  JobState state_ = JobState::kQueued;
  bool published_ = false;  ///< resolution announced (waiters, on_complete)
  JobResult result_;
};

using JobPtr = std::shared_ptr<Job>;

/// Client-side view of a submitted job. Cheap to copy; all copies observe
/// the same resolution. A default-constructed handle is invalid.
class JobHandle {
 public:
  JobHandle() = default;
  explicit JobHandle(JobPtr job) : job_(std::move(job)) {}

  [[nodiscard]] bool valid() const { return job_ != nullptr; }
  [[nodiscard]] JobId id() const { return job_->id(); }
  [[nodiscard]] JobState state() const { return job_->state(); }
  [[nodiscard]] bool done() const { return state() == JobState::kDone; }

  /// Blocks until resolution; returns the job's error code (kOk, ...).
  int wait() { return job_->wait(); }

  /// Bounded wait; false when the job is still unresolved after `ns`.
  bool wait_for_ns(std::int64_t ns) { return job_->wait_for_ns(ns); }

  /// Requests cancellation (resolves the job with kAborted; idempotent,
  /// loses against an already-completed job).
  void cancel() { job_->cancel(); }

  /// Final result; call only after wait()/done().
  [[nodiscard]] const JobResult& result() const { return job_->result(); }

 private:
  JobPtr job_;
};

}  // namespace anahy::serve
