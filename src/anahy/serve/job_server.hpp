// anahy::serve::JobServer — a persistent multi-client job service on top
// of one Anahy runtime.
//
// The classic Anahy process model is one program, one DAG, one exit. A
// long-lived service inverts that: many clients submit independent job
// DAGs into one resident runtime, and the process only goes down on
// operator request. The JobServer supplies the missing service layer:
//
//  * Admission control — a bounded pending queue with a block-or-reject
//    policy, so a burst of clients degrades into back-pressure (or fast
//    kOverloaded failures), never into unbounded memory growth.
//  * Priority classes — each job's tasks are scheduled under its class
//    (high / normal / batch) by the work-stealing policy's per-class
//    deques, so latency-sensitive jobs overtake batch work at every pop
//    and steal, not just at admission.
//  * Lifecycle — drain() (stop admitting, finish everything), bounded
//    shutdown(deadline) (abort what cannot finish in time), and a
//    destructor that always resolves outstanding handles with kAborted
//    instead of leaving clients blocked forever.
//
// Threading: submit() is safe from any thread. One internal dispatcher
// thread pops admitted jobs (highest class first) and forks each as a
// detached root task carrying the job's TaskContext; completion runs on
// whichever VP finishes the root body. See docs/SERVE.md.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "anahy/aging/analyze.hpp"
#include "anahy/aging/recorder.hpp"
#include "anahy/observe/exposition.hpp"
#include "anahy/rejuv/controller.hpp"
#include "anahy/rejuv/engine.hpp"
#include "anahy/rejuv/policy.hpp"
#include "anahy/runtime.hpp"
#include "anahy/serve/job.hpp"
#include "anahy/serve/stats.hpp"

namespace anahy::serve {

/// ANAHY-P003 deadline-risk detection over a server snapshot: the queue
/// latency threatens job deadlines when jobs already timed out, or the
/// pending backlog reached kDeadlineRiskPendingFraction of `max_pending`.
/// Split out from JobServer so tests can drive it with synthetic stats.
inline constexpr double kDeadlineRiskPendingFraction = 0.8;
[[nodiscard]] std::vector<observe::Anomaly> deadline_risk_anomalies(
    const ServerStats& s, std::size_t max_pending);

struct ServerOptions {
  /// Options of the owned runtime. `drain_on_exit` is forced on: a job
  /// service must never silently drop forked tasks at teardown.
  Options runtime;

  /// Admission bound: jobs admitted but not yet dispatched. Submitting
  /// past it blocks or rejects per `admission`. Must be >= 1.
  std::size_t max_pending = 1024;

  /// Jobs concurrently dispatched into the runtime (0 = unbounded). A
  /// bound keeps one job's wide DAG from monopolizing the ready deques.
  std::size_t max_active = 0;

  /// What happens to a submit() when the pending queue is full.
  enum class Admission : std::uint8_t {
    kBlock,   ///< back-pressure: block the submitter until space frees
    kReject,  ///< fail fast: resolve the handle with kOverloaded
  };
  Admission admission = Admission::kBlock;

  /// Enable per-job determinacy-race checking (JobSpec::check). Turns the
  /// runtime's anahy::check detector on; jobs that do not opt in still
  /// skip instrumentation via their context.
  bool check = false;

  /// Ring capacity of the aging memory-state series the server records
  /// (record_aging_sample(); 0 = unbounded, never for a resident server).
  std::size_t aging_capacity = 512;

  // --- rejuvenation (docs/REJUV.md) --------------------------------------

  /// Memory-aware admission: budget.total_bytes == 0 (the default) keeps
  /// the controller off entirely — submit() then pays one null test. With
  /// a budget set, over-budget batch submits are deferred or rejected and
  /// normal-class submits rejected kOverloaded, while high-class traffic
  /// keeps flowing (rejuv::AdmissionController).
  rejuv::ControllerOptions rejuv_admission;

  /// When to trip an automatic rejuvenation cycle from the rolling aging
  /// window (evaluated by the policy thread below).
  rejuv::PolicyOptions rejuv_policy;

  /// Cadence of the online policy thread: every period it records an
  /// aging sample, re-runs the A001/A002/A003 detectors over the rolling
  /// window and rejuvenates on a trip. 0 (default) = no policy thread;
  /// rejuvenate() stays available as an operator command (kRejuvenate
  /// cluster frame, `anahy-aging --rejuvenate`).
  std::int64_t rejuv_period_ns = 0;
};

class JobServer {
 public:
  explicit JobServer(ServerOptions opts = {});

  /// Resolves every outstanding handle (kAborted for jobs that could not
  /// finish), then tears the runtime down, draining stragglers.
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Submits a job. Always returns a handle that will resolve:
  ///  - kInvalid   — no body, or check requested without ServerOptions::check
  ///  - kPerm      — the server is draining / shut down
  ///  - kOverloaded— pending queue full under the kReject policy
  ///  - otherwise the job's real outcome (kOk / kTimedOut / kAborted).
  /// Under the kBlock policy a full queue blocks the caller instead.
  JobHandle submit(JobSpec spec);

  /// Stops admitting (later submits resolve kPerm) and waits until every
  /// admitted job resolved. Queued jobs still run — drain means "finish
  /// the work", not "discard it".
  void drain();

  /// Mesh export (docs/MESH.md): removes up to `max` queued — never
  /// dispatched — exportable jobs of class `cls` from the pending queue,
  /// newest-first, and resolves each with kMigrated (on_complete fires;
  /// the serve front-end's completion hook re-ships the job from its
  /// captured function/payload). Jobs whose cancellation was requested,
  /// non-exportable jobs (local closures) and everything while draining
  /// are never exported, so started bodies can never run twice. `eligible`
  /// (optional) further filters, e.g. by queue age. Returns the count.
  std::size_t export_queued(
      Priority cls, std::size_t max,
      const std::function<bool(const Job&)>& eligible = {});

  /// Drain with a deadline: stops admitting, aborts still-queued jobs
  /// (kAborted), cancels running jobs' descendants, and waits up to
  /// `deadline_ns` (relative; negative = unbounded) for active jobs to
  /// resolve. Returns true when everything resolved in time.
  bool shutdown(std::int64_t deadline_ns = -1);

  [[nodiscard]] ServerStats stats() const;

  /// Prometheus-style text dump of stats() (ServerStats::to_metrics_text).
  [[nodiscard]] std::string metrics_text() const;

  /// Full observability exposition: the runtime's per-VP telemetry
  /// (observe::render_text with P001/P002 plus this server's P003
  /// deadline-risk flags) followed by metrics_text(). This is the payload
  /// the cluster kStatsQuery frame returns (docs/OBSERVE.md).
  [[nodiscard]] std::string observe_text() const;

  /// The owned runtime (e.g. for trace access in tests/tools).
  [[nodiscard]] Runtime& runtime() { return *rt_; }

  [[nodiscard]] const ServerOptions& options() const { return opts_; }

  // --- aging (docs/AGING.md) ---------------------------------------------

  /// Appends one memory-state sample (pool snapshot, RSS, served-job
  /// counters, ready depth) to the server's aging series. Call it on
  /// whatever cadence suits the deployment — a scraper tick, a timer
  /// thread, a bench loop. Safe from any thread.
  void record_aging_sample();

  /// Copy of the recorded series (save it with Series::save, feed it to
  /// the anahy-aging CLI, or analyze in-process via aging_report()).
  [[nodiscard]] aging::Series aging_series() const;

  /// Runs the ANAHY-A001..A006 detectors over the recorded series.
  [[nodiscard]] aging::Analysis aging_report(
      const aging::AnalyzeOptions& opt = {}) const;

  // --- rejuvenation (docs/REJUV.md) --------------------------------------

  /// Runs one online rejuvenation cycle: reap resolved jobs' stranded
  /// tasks, trim the pool cache, rolling-restart the worker VPs. The
  /// server stays live throughout (jobs keep being admitted, dispatched
  /// and resolved) and every in-flight handle still resolves exactly
  /// once. Stamps an ANAHY-A007 annotation on the aging series and bumps
  /// the anahy_rejuv_* counters. Safe from any non-VP thread; concurrent
  /// calls serialize.
  rejuv::CycleReport rejuvenate();

  /// Lifetime totals of the rejuvenation subsystem (also exposed as
  /// observe ExtraCounter rows in observe_text()).
  struct RejuvCounters {
    std::uint64_t cycles = 0;           ///< rejuvenation cycles performed
    std::uint64_t deferred = 0;         ///< batch jobs admitted-but-held
    std::uint64_t shed = 0;             ///< submits rejected kOverloaded
    std::uint64_t reaped_tasks = 0;     ///< stranded tasks retired
    std::uint64_t reclaimed_bytes = 0;  ///< pool bytes freed by cycles
  };
  [[nodiscard]] RejuvCounters rejuv_counters() const;

  /// The admission controller (null when no budget is configured).
  [[nodiscard]] const rejuv::AdmissionController* admission() const {
    return admission_.get();
  }

 private:
  void dispatcher_loop();

  /// Policy-thread body: sample, analyze the rolling window, rejuvenate
  /// on a trip (ServerOptions::rejuv_period_ns > 0 only).
  void rejuv_policy_loop();

  /// Forks `job`'s root task into the runtime (dispatcher thread only).
  void dispatch(const JobPtr& job);

  /// Root-task wrapper: runs the user body unless the context says skip,
  /// resolves the job and releases its active slot.
  void run_root(const JobPtr& job);

  /// Releases a published job's active slot and wakes the dispatcher and
  /// drain()/shutdown() waiters; stats were accounted before publish.
  void finish_job(const JobPtr& job);

  /// Folds a resolved job's result into `agg_` (mu_ held).
  void account_locked(const JobResult& r, Priority cls);

  /// Immediately-resolved handle for jobs that were never admitted.
  static JobHandle rejected_handle(JobId id, JobSpec spec, int error);

  ServerOptions opts_;
  std::unique_ptr<Runtime> rt_;

  mutable std::mutex mu_;
  std::condition_variable admit_cv_;     // submitters blocked on a full queue
  std::condition_variable dispatch_cv_;  // dispatcher waiting for work/slots
  std::condition_variable idle_cv_;      // drain/shutdown waiting for empty

  std::array<std::deque<JobPtr>, kNumPriorities> pending_;
  std::size_t pending_count_ = 0;
  std::unordered_map<JobId, JobPtr> active_;
  bool draining_ = false;
  bool stop_ = false;
  JobId next_id_ = 1;
  ServerStats agg_;

  /// Guards aging_. Lock order: mu_ before aging_mu_ (record_aging_sample
  /// reads counters under mu_, releases it, then folds under aging_mu_).
  mutable std::mutex aging_mu_;
  aging::Recorder aging_;

  // Rejuvenation (docs/REJUV.md). The engine serializes cycles itself and
  // never touches mu_; the controller is all atomics past construction.
  std::unique_ptr<rejuv::AdmissionController> admission_;  // null = off
  std::unique_ptr<rejuv::RejuvEngine> engine_;
  rejuv::RejuvPolicy policy_;
  std::atomic<std::uint64_t> rejuv_deferred_{0};
  std::atomic<std::uint64_t> rejuv_shed_{0};
  std::atomic<std::uint64_t> rejuv_reaped_tasks_{0};
  std::atomic<std::uint64_t> rejuv_reclaimed_bytes_{0};

  std::mutex rejuv_mu_;  // policy-thread wakeup only
  std::condition_variable rejuv_cv_;
  bool rejuv_stop_ = false;
  std::thread rejuv_thread_;

  std::thread dispatcher_;
};

}  // namespace anahy::serve
