#include "anahy/serve/stats.hpp"

#include <sstream>

namespace anahy::serve {

std::uint64_t ServerStats::submitted_total() const {
  std::uint64_t n = 0;
  for (const ClassStats& c : by_class) n += c.submitted;
  return n;
}

std::uint64_t ServerStats::resolved_total() const {
  std::uint64_t n = 0;
  for (const ClassStats& c : by_class)
    n += c.completed + c.timed_out + c.aborted + c.faulted + c.migrated;
  return n;
}

std::string ServerStats::to_metrics_text() const {
  std::ostringstream out;
  out << "# anahy-serve metrics\n";
  out << "anahy_serve_jobs_pending " << pending << '\n';
  out << "anahy_serve_jobs_active " << active << '\n';

  const auto per_class = [&](const char* name, auto pick) {
    for (std::size_t c = 0; c < kNumPriorities; ++c)
      out << name << "{class=\"" << to_string(static_cast<Priority>(c))
          << "\"} " << pick(by_class[c]) << '\n';
  };
  per_class("anahy_serve_jobs_submitted_total",
            [](const ClassStats& c) { return c.submitted; });
  per_class("anahy_serve_jobs_rejected_total",
            [](const ClassStats& c) { return c.rejected; });
  per_class("anahy_serve_jobs_completed_total",
            [](const ClassStats& c) { return c.completed; });
  per_class("anahy_serve_jobs_timed_out_total",
            [](const ClassStats& c) { return c.timed_out; });
  per_class("anahy_serve_jobs_aborted_total",
            [](const ClassStats& c) { return c.aborted; });
  per_class("anahy_serve_jobs_faulted_total",
            [](const ClassStats& c) { return c.faulted; });
  per_class("anahy_serve_jobs_migrated_total",
            [](const ClassStats& c) { return c.migrated; });
  per_class("anahy_serve_queue_wait_ns_sum",
            [](const ClassStats& c) { return c.queue_wait_ns_sum; });
  per_class("anahy_serve_queue_wait_ns_max",
            [](const ClassStats& c) { return c.queue_wait_ns_max; });
  per_class("anahy_serve_exec_ns_sum",
            [](const ClassStats& c) { return c.exec_ns_sum; });
  per_class("anahy_serve_tasks_total",
            [](const ClassStats& c) { return c.tasks; });
  per_class("anahy_serve_steals_total",
            [](const ClassStats& c) { return c.steals; });
  per_class("anahy_serve_jobs_pending_by_class",
            [](const ClassStats& c) { return c.pending; });
  per_class("anahy_serve_job_pool_allocs_total",
            [](const ClassStats& c) { return c.pool_allocs; });
  per_class("anahy_serve_job_pool_peak_bytes_max",
            [](const ClassStats& c) { return c.pool_peak_bytes; });
  per_class("anahy_serve_job_pool_leaked_bytes_total",
            [](const ClassStats& c) { return c.pool_leaked_bytes; });
  out << "anahy_serve_pool_live_bytes " << pool_live_bytes << '\n';
  out << "anahy_serve_pool_arena_bytes " << pool_arena_bytes << '\n';
  for (std::size_t c = 0; c < pool_class_outstanding.size(); ++c)
    out << "anahy_serve_pool_outstanding_blocks{class=\""
        << pool_detail::class_bytes(c) << "\"} " << pool_class_outstanding[c]
        << '\n';
  return out.str();
}

}  // namespace anahy::serve
