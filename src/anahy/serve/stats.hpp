// Aggregate server counters and their /metrics-style text rendering.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "anahy/task_pool.hpp"
#include "anahy/types.hpp"

namespace anahy::serve {

/// Point-in-time snapshot of a JobServer's counters, sliced by priority
/// class. Monotonic counters only grow; `pending`/`active` are gauges.
struct ServerStats {
  struct ClassStats {
    std::uint64_t submitted = 0;  ///< admitted into the pending queue
    std::uint64_t rejected = 0;   ///< turned away at admission (kOverloaded)
    std::uint64_t completed = 0;  ///< resolved kOk
    std::uint64_t timed_out = 0;  ///< resolved kTimedOut
    std::uint64_t aborted = 0;    ///< resolved kAborted (cancel/shutdown)
    std::uint64_t faulted = 0;    ///< resolved kFaulted (body threw)
    std::uint64_t migrated = 0;   ///< resolved kMigrated (exported to a peer)
    std::int64_t queue_wait_ns_sum = 0;
    std::int64_t queue_wait_ns_max = 0;
    std::int64_t exec_ns_sum = 0;
    std::uint64_t tasks = 0;   ///< tasks executed on behalf of the class
    std::uint64_t steals = 0;  ///< class tasks migrated between VPs
    std::uint64_t pending = 0;  ///< gauge: admitted, not yet dispatched
    // Per-job memory accounting (anahy::aging), folded at job resolution.
    std::uint64_t pool_allocs = 0;      ///< task-pool blocks charged
    std::uint64_t pool_peak_bytes = 0;  ///< max single-job peak pool bytes
    std::uint64_t pool_leaked_bytes = 0;///< bytes still live at resolution
  };

  std::array<ClassStats, kNumPriorities> by_class;
  std::uint64_t pending = 0;  ///< jobs admitted, not yet dispatched
  std::uint64_t active = 0;   ///< jobs dispatched, not yet resolved

  // Task-pool gauges at snapshot time (pool_snapshot(); process-wide).
  std::uint64_t pool_live_bytes = 0;   ///< outstanding pool + large bytes
  std::uint64_t pool_arena_bytes = 0;  ///< pool-held bytes incl. cache slack
  /// Outstanding blocks per pool size class (64 B .. 1 KiB).
  std::array<std::uint64_t, pool_detail::kNumClasses> pool_class_outstanding{};

  [[nodiscard]] const ClassStats& of(Priority p) const {
    return by_class[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] ClassStats& of(Priority p) {
    return by_class[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] std::uint64_t submitted_total() const;
  [[nodiscard]] std::uint64_t resolved_total() const;

  /// Prometheus-flavoured text exposition (`name{class="high"} value`
  /// lines); what JobServer::metrics_text() returns.
  [[nodiscard]] std::string to_metrics_text() const;
};

}  // namespace anahy::serve
