// Pluggable ready-list policies for the executive kernel.
//
// The paper adopts a modular scheduler (Cavalheiro et al. 1998) so that
// "different load-balancing criteria or techniques can be created according
// to the application and target architecture". This interface is that
// extension point: it owns the READY list only; the finished/blocked/
// unblocked bookkeeping lives in the Scheduler.
#pragma once

#include <array>
#include <cstddef>
#include <memory>

#include "anahy/task.hpp"
#include "anahy/types.hpp"

namespace anahy {

namespace observe {
class Telemetry;
}  // namespace observe

/// Abstract ready-task container. All methods must be thread-safe.
///
/// `vp` arguments identify the calling virtual processor (0-based); policies
/// that keep per-VP structures use it for locality, centralized policies
/// ignore it. `vp == kExternalVp` marks calls from a thread that is not a
/// worker (e.g. the program's main flow).
class SchedulingPolicy {
 public:
  static constexpr int kExternalVp = -1;

  virtual ~SchedulingPolicy() = default;

  /// Makes `task` available for execution.
  virtual void push(TaskPtr task, int vp) = 0;

  /// Takes one task for execution, or nullptr when none is available.
  virtual TaskPtr pop(int vp) = 0;

  /// Removes a *specific* ready task so the caller can run it inline
  /// (join-inlining, the mono-processor behaviour of paper §2.2.1).
  /// `vp` identifies the calling thread (kExternalVp for non-VP threads)
  /// so policies with per-caller striped accounting can debit the right
  /// stripe. Returns false when the task is not in the ready list
  /// (already taken).
  virtual bool remove_specific(const TaskPtr& task, int vp) = 0;

  /// Approximate number of queued tasks (monitoring only).
  [[nodiscard]] virtual std::size_t approx_size() const = 0;

  /// Approximate queued tasks per priority class (monitoring only).
  /// Policies without class-aware structures report everything as
  /// Priority::kNormal.
  [[nodiscard]] virtual std::array<std::size_t, kNumPriorities>
  approx_size_by_class() const {
    std::array<std::size_t, kNumPriorities> by_class{};
    by_class[static_cast<std::size_t>(Priority::kNormal)] = approx_size();
    return by_class;
  }

  /// Attaches the scheduler's telemetry sink (observe::Telemetry) so the
  /// policy can feed per-VP steal and deque-depth counters. Null detaches.
  /// Default: the policy records nothing.
  virtual void set_telemetry(observe::Telemetry* /*telemetry*/) {}

  [[nodiscard]] virtual PolicyKind kind() const = 0;
};

/// Factory: builds the policy implementation for `kind` with `num_vps`
/// worker slots (work-stealing keeps one deque per VP plus one external).
std::unique_ptr<SchedulingPolicy> make_policy(PolicyKind kind, int num_vps);

}  // namespace anahy
